package graph

import "testing"

func TestAddEdgeGuards(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(0, 0, 1)   // self loop ignored
	g.AddEdge(1, 2, 0)   // zero weight ignored
	g.AddEdge(1, 2, -1)  // negative ignored
	g.AddEdge(0, 9, 0.5) // out of range ignored
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if len(g.Neighbors(0)) != 1 || g.Neighbors(0)[0].To != 1 {
		t.Errorf("Neighbors(0) = %v", g.Neighbors(0))
	}
	if g.Len() != 3 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestWeightsAndMedian(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 0.1)
	g.AddEdge(1, 2, 0.5)
	g.AddEdge(2, 3, 0.9)
	ws := g.Weights()
	if len(ws) != 3 {
		t.Fatalf("Weights = %v", ws)
	}
	med, ok := g.MedianWeight()
	if !ok || med != 0.5 {
		t.Errorf("MedianWeight = %v, %v", med, ok)
	}
	if _, ok := New(2).MedianWeight(); ok {
		t.Error("edgeless median should be !ok")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("Components = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 || comps[0][2] != 2 {
		t.Errorf("component 0 = %v", comps[0])
	}
	if len(comps[1]) != 2 || comps[1][0] != 3 {
		t.Errorf("component 1 = %v", comps[1])
	}
	if len(comps[2]) != 1 || comps[2][0] != 5 {
		t.Errorf("isolated vertex component = %v", comps[2])
	}
}

func TestSubgraph(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 0.3)
	g.AddEdge(1, 2, 0.7)
	g.AddEdge(3, 4, 0.9)
	sub, back := g.Subgraph([]int{1, 2, 3})
	if sub.Len() != 3 {
		t.Fatalf("subgraph size = %d", sub.Len())
	}
	// Only the 1-2 edge survives (0 and 4 excluded).
	if sub.NumEdges() != 1 {
		t.Errorf("subgraph edges = %d", sub.NumEdges())
	}
	if back[0] != 1 || back[1] != 2 || back[2] != 3 {
		t.Errorf("back map = %v", back)
	}
	found := false
	for _, e := range sub.Neighbors(0) {
		if e.To == 1 && e.Weight == 0.7 {
			found = true
		}
	}
	if !found {
		t.Error("1-2 edge missing from subgraph")
	}
}
