// Package graph provides the sparse weighted undirected graph and
// connected-components decomposition the clustering pipeline preprocesses
// with (Section 6.3): the similarity graph is split into components so MCL
// runs on small inputs, which matters because MCL is cubic in vertices.
package graph

import "sort"

// Edge is one weighted undirected edge.
type Edge struct {
	To     int
	Weight float64
}

// Graph is a weighted undirected graph over dense vertex indices.
type Graph struct {
	adj [][]Edge
}

// New creates a graph with n vertices and no edges.
func New(n int) *Graph {
	return &Graph{adj: make([][]Edge, n)}
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.adj) }

// AddVertex appends a new isolated vertex and returns its index. It is
// the growth primitive of the incremental similarity-graph builder: the
// streaming clusterer creates one vertex per aggregate delta and then
// wires its edges with AddEdge.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge inserts an undirected edge; zero- and negative-weight edges are
// ignored, as are self loops (MCL adds its own).
func (g *Graph) AddEdge(a, b int, w float64) {
	if w <= 0 || a == b || a < 0 || b < 0 || a >= len(g.adj) || b >= len(g.adj) {
		return
	}
	g.adj[a] = append(g.adj[a], Edge{To: b, Weight: w})
	g.adj[b] = append(g.adj[b], Edge{To: a, Weight: w})
}

// Neighbors returns the adjacency list of v (not a copy).
func (g *Graph) Neighbors(v int) []Edge { return g.adj[v] }

// RemoveVertex detaches v: its adjacency list is cleared and it is
// removed from every neighbor's list with order preserved, so the
// surviving lists keep the ascending-neighbor invariant the incremental
// clusterer relies on. The index itself stays allocated — dense vertex
// ids never shift — leaving v an isolated vertex.
func (g *Graph) RemoveVertex(v int) {
	if v < 0 || v >= len(g.adj) {
		return
	}
	for _, e := range g.adj[v] {
		row := g.adj[e.To]
		k := 0
		for _, e2 := range row {
			if e2.To != v {
				row[k] = e2
				k++
			}
		}
		g.adj[e.To] = row[:k]
	}
	g.adj[v] = nil
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total / 2
}

// Weights returns every undirected edge weight once, unsorted.
func (g *Graph) Weights() []float64 {
	var out []float64
	for v, es := range g.adj {
		for _, e := range es {
			if v < e.To {
				out = append(out, e.Weight)
			}
		}
	}
	return out
}

// MedianWeight returns the median edge weight, used by the inflation
// parameter sweep's objective. ok is false for an edgeless graph.
func (g *Graph) MedianWeight() (float64, bool) {
	ws := g.Weights()
	if len(ws) == 0 {
		return 0, false
	}
	sort.Float64s(ws)
	return ws[(len(ws)-1)/2], true
}

// Components splits the graph into connected components, each a sorted
// list of vertex indices, ordered by their smallest vertex. Isolated
// vertices form singleton components.
func (g *Graph) Components() [][]int {
	seen := make([]bool, len(g.adj))
	var comps [][]int
	var stack []int
	for v := range g.adj {
		if seen[v] {
			continue
		}
		var comp []int
		stack = append(stack[:0], v)
		seen[v] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, e := range g.adj[u] {
				if !seen[e.To] {
					seen[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Subgraph extracts the induced subgraph over the given vertices. It
// returns the subgraph and the mapping from subgraph index to original
// vertex.
func (g *Graph) Subgraph(vertices []int) (*Graph, []int) {
	index := make(map[int]int, len(vertices))
	for i, v := range vertices {
		index[v] = i
	}
	sub := New(len(vertices))
	for i, v := range vertices {
		for _, e := range g.adj[v] {
			if j, ok := index[e.To]; ok && i < j {
				sub.AddEdge(i, j, e.Weight)
			}
		}
	}
	return sub, append([]int(nil), vertices...)
}
