// Package rttmodel generates ping round-trip times for simulated hosts and
// implements the cellular-device detector of Section 5.2 / Figure 6.
//
// The model follows the observation of Padmanabhan et al. ("Timeouts:
// Beware surprisingly high delay", IMC 2015) that the paper relies on: the
// first probe to an idle cellular device waits for the radio to be promoted
// out of its power-save state and therefore sees a much higher delay than
// immediately subsequent probes, while wired datacenter and residential
// hosts answer every probe with a stable RTT.
package rttmodel

import (
	"time"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/rng"
	"github.com/hobbitscan/hobbit/internal/stats"
)

// Class describes the delay behaviour of a host population.
type Class int

// Host delay classes.
const (
	ClassWired    Class = iota // stable RTTs (datacenter, fixed broadband)
	ClassCellular              // first probe pays radio-promotion delay
)

// Profile parameterizes RTT generation for a host population.
type Profile struct {
	Class Class
	// Base is the propagation floor of the path.
	Base time.Duration
	// Jitter is the standard deviation of per-probe queueing noise.
	Jitter time.Duration
	// PromotionMean is the mean extra delay the first probe to a
	// cellular device experiences while the radio wakes up.
	PromotionMean time.Duration
}

// Wired returns a stable-latency profile.
func Wired(base, jitter time.Duration) Profile {
	return Profile{Class: ClassWired, Base: base, Jitter: jitter}
}

// Cellular returns a cellular profile with the given radio-promotion mean
// delay.
func Cellular(base, jitter, promotion time.Duration) Profile {
	return Profile{Class: ClassCellular, Base: base, Jitter: jitter, PromotionMean: promotion}
}

// RTT returns the round-trip time of probe number seq (0-based) in a probe
// train toward addr. The draw is a pure function of (seed, addr, seq):
// repeated simulations see identical delays.
func (p Profile) RTT(seed uint64, addr iputil.Addr, seq int) time.Duration {
	noise := rng.Norm(0, float64(p.Jitter), seed, uint64(addr), uint64(seq), 0x1177)
	if noise < 0 {
		noise = -noise
	}
	rtt := p.Base + time.Duration(noise)
	if p.Class == ClassCellular && seq == 0 {
		// Radio promotion: exponential around the mean, floored at a
		// minimum promotion cost so the first probe is reliably slower.
		extra := rng.Exp(float64(p.PromotionMean), seed, uint64(addr), 0x77aa)
		min := float64(p.PromotionMean) / 4
		if extra < min {
			extra = min
		}
		rtt += time.Duration(extra)
	}
	return rtt
}

// Pinger abstracts the probe source the detector uses: send ping number seq
// toward addr and observe its RTT. ok is false when the host does not
// answer.
type Pinger interface {
	PingRTT(addr iputil.Addr, seq int) (rtt time.Duration, ok bool)
}

// DetectorConfig holds the parameters of the Section 5.2 method.
type DetectorConfig struct {
	// BlocksPerAggregate is how many /24s to sample from each aggregate
	// block (the paper uses 200).
	BlocksPerAggregate int
	// PingsPerAddr is the probe-train length per address (the paper
	// uses 20).
	PingsPerAddr int
	// PositiveDiff is the first-minus-max-rest threshold that counts an
	// address as showing promotion delay (the paper highlights 0.5 s).
	PositiveDiff time.Duration
	// CellularFraction is the fraction of addresses that must exceed
	// PositiveDiff for a block to be called cellular (the paper's
	// cellular blocks show ~50% above 0.5 s).
	CellularFraction float64
}

// DefaultDetectorConfig mirrors the paper's parameters.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{
		BlocksPerAggregate: 200,
		PingsPerAddr:       20,
		PositiveDiff:       500 * time.Millisecond,
		CellularFraction:   0.3,
	}
}

// Verdict is the outcome of probing one aggregate block.
type Verdict struct {
	// Diffs is the distribution of firstRTT - max(restRTTs) in seconds
	// across probed addresses: the series plotted in Figure 6.
	Diffs *stats.CDF
	// FractionAbove is the fraction of addresses whose difference
	// exceeded the configured threshold.
	FractionAbove float64
	// Cellular is the classification.
	Cellular bool
	// Probed is the number of addresses that answered all pings.
	Probed int
}

// Detect runs the probe-train experiment over the given addresses and
// classifies the population. Addresses that do not answer every probe in
// the train are skipped, as a timeout would dominate the difference metric.
func Detect(p Pinger, addrs []iputil.Addr, cfg DetectorConfig) Verdict {
	if cfg.PingsPerAddr < 2 {
		cfg.PingsPerAddr = 2
	}
	diffs := &stats.CDF{}
	above := 0
	probed := 0
	for _, a := range addrs {
		first, ok := p.PingRTT(a, 0)
		if !ok {
			continue
		}
		var maxRest time.Duration
		complete := true
		for seq := 1; seq < cfg.PingsPerAddr; seq++ {
			rtt, ok := p.PingRTT(a, seq)
			if !ok {
				complete = false
				break
			}
			if rtt > maxRest {
				maxRest = rtt
			}
		}
		if !complete {
			continue
		}
		probed++
		d := first - maxRest
		diffs.Add(d.Seconds())
		if d > cfg.PositiveDiff {
			above++
		}
	}
	v := Verdict{Diffs: diffs, Probed: probed}
	if probed > 0 {
		v.FractionAbove = float64(above) / float64(probed)
	}
	v.Cellular = probed > 0 && v.FractionAbove >= cfg.CellularFraction
	return v
}
