package rttmodel

import (
	"testing"
	"time"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

const seed = 0xfeed

func TestRTTDeterministic(t *testing.T) {
	p := Cellular(40*time.Millisecond, 10*time.Millisecond, 900*time.Millisecond)
	a := iputil.MustParseAddr("10.0.0.1")
	if p.RTT(seed, a, 0) != p.RTT(seed, a, 0) {
		t.Fatal("RTT not deterministic")
	}
	if p.RTT(seed, a, 1) == p.RTT(seed, a, 2) {
		t.Error("different seqs should (almost surely) differ")
	}
}

func TestCellularFirstProbeInflated(t *testing.T) {
	p := Cellular(40*time.Millisecond, 10*time.Millisecond, 900*time.Millisecond)
	inflated := 0
	n := 200
	for i := 0; i < n; i++ {
		a := iputil.Addr(0x0a000000 + uint32(i))
		first := p.RTT(seed, a, 0)
		var maxRest time.Duration
		for seq := 1; seq < 20; seq++ {
			if r := p.RTT(seed, a, seq); r > maxRest {
				maxRest = r
			}
		}
		if first-maxRest > 100*time.Millisecond {
			inflated++
		}
	}
	if inflated < n*3/4 {
		t.Errorf("only %d/%d cellular hosts showed first-probe inflation", inflated, n)
	}
}

func TestWiredStable(t *testing.T) {
	p := Wired(40*time.Millisecond, 5*time.Millisecond)
	big := 0
	n := 200
	for i := 0; i < n; i++ {
		a := iputil.Addr(0x0b000000 + uint32(i))
		first := p.RTT(seed, a, 0)
		var maxRest time.Duration
		for seq := 1; seq < 20; seq++ {
			if r := p.RTT(seed, a, seq); r > maxRest {
				maxRest = r
			}
		}
		if first-maxRest > 100*time.Millisecond {
			big++
		}
	}
	if big > n/20 {
		t.Errorf("%d/%d wired hosts showed first-probe inflation", big, n)
	}
}

// fakePinger serves RTTs from a profile, optionally dropping replies.
type fakePinger struct {
	profile Profile
	drop    map[iputil.Addr]int // addr -> seq to drop
}

func (f *fakePinger) PingRTT(a iputil.Addr, seq int) (time.Duration, bool) {
	if dseq, ok := f.drop[a]; ok && dseq == seq {
		return 0, false
	}
	return f.profile.RTT(seed, a, seq), true
}

func mkAddrs(base uint32, n int) []iputil.Addr {
	addrs := make([]iputil.Addr, n)
	for i := range addrs {
		addrs[i] = iputil.Addr(base + uint32(i))
	}
	return addrs
}

func TestDetectCellular(t *testing.T) {
	p := &fakePinger{profile: Cellular(60*time.Millisecond, 15*time.Millisecond, 1200*time.Millisecond)}
	v := Detect(p, mkAddrs(0x0a000000, 300), DefaultDetectorConfig())
	if !v.Cellular {
		t.Errorf("cellular block not detected: fractionAbove=%v", v.FractionAbove)
	}
	if v.Probed != 300 {
		t.Errorf("Probed = %d", v.Probed)
	}
	// The paper: ~50% of cellular addresses show diffs > 0.5s.
	if v.FractionAbove < 0.35 {
		t.Errorf("FractionAbove = %v, want >= 0.35", v.FractionAbove)
	}
	if v.Diffs.Median() < 0.1 {
		t.Errorf("median diff = %v, want clearly positive", v.Diffs.Median())
	}
}

func TestDetectWired(t *testing.T) {
	p := &fakePinger{profile: Wired(20*time.Millisecond, 2*time.Millisecond)}
	v := Detect(p, mkAddrs(0x0b000000, 300), DefaultDetectorConfig())
	if v.Cellular {
		t.Errorf("wired block misclassified as cellular: fractionAbove=%v", v.FractionAbove)
	}
	// SingTel/SoftBank in Figure 6: differences nearly zero.
	med := v.Diffs.Median()
	if med > 0.005 {
		t.Errorf("median diff = %vs, want ~0", med)
	}
}

func TestDetectSkipsIncompleteTrains(t *testing.T) {
	addrs := mkAddrs(0x0c000000, 10)
	p := &fakePinger{
		profile: Wired(20*time.Millisecond, 2*time.Millisecond),
		drop:    map[iputil.Addr]int{addrs[0]: 5, addrs[1]: 0},
	}
	v := Detect(p, addrs, DefaultDetectorConfig())
	if v.Probed != 8 {
		t.Errorf("Probed = %d, want 8 (two dropped)", v.Probed)
	}
}

func TestDetectEmpty(t *testing.T) {
	p := &fakePinger{profile: Wired(time.Millisecond, time.Millisecond)}
	v := Detect(p, nil, DefaultDetectorConfig())
	if v.Cellular || v.Probed != 0 || v.FractionAbove != 0 {
		t.Errorf("empty Detect = %+v", v)
	}
}

func TestDetectMinTrainLength(t *testing.T) {
	p := &fakePinger{profile: Wired(time.Millisecond, time.Millisecond)}
	cfg := DefaultDetectorConfig()
	cfg.PingsPerAddr = 0 // must be clamped to 2, not panic
	v := Detect(p, mkAddrs(0x0d000000, 3), cfg)
	if v.Probed != 3 {
		t.Errorf("Probed = %d", v.Probed)
	}
}
