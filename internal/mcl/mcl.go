// Package mcl implements the Markov Cluster Algorithm (van Dongen, 2000)
// the paper selects for aggregating similar-but-not-identical /24 blocks
// (Section 6.2): alternating expansion (random-walk squaring) and
// inflation (entrywise powering that strengthens strong flows) over a
// column-stochastic matrix until the flow matrix converges, then reading
// clusters off the attractor rows.
//
// The flow matrix is held in column-major CSR form (one ptr/rows/vals
// triple per matrix, not one slice per column), double-buffered between
// rounds: a round appends into the spare buffer and swaps, so the steady
// state allocates nothing (asserted by TestStepZeroAlloc under !race).
// The arithmetic — accumulation order in expansion, pow/prune/normalize
// order in inflation — matches the original per-column implementation
// operation for operation, so results are bit-identical to it, which the
// determinism contract (DESIGN.md §4d) and the frozen api goldens rely
// on.
package mcl

import (
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"

	"github.com/hobbitscan/hobbit/internal/graph"
)

// runtimeWorkers is the auto worker count (Workers == 0).
func runtimeWorkers() int { return runtime.GOMAXPROCS(0) }

// Options configures an MCL run.
type Options struct {
	// Inflation is the granularity parameter r (entrywise power);
	// larger values produce finer clusters. Default 2.0.
	Inflation float64
	// MaxIter bounds the expansion/inflation rounds. Default 60.
	MaxIter int
	// Prune drops matrix entries below this value after each round to
	// keep the matrix sparse. Default 1e-5.
	Prune float64
	// SelfLoop is the loop weight added to each vertex before
	// normalization, the standard regularization that guarantees
	// convergence. Default 1.0.
	SelfLoop float64
	// Epsilon is the convergence threshold on the largest entry change
	// between rounds. Default 1e-6.
	Epsilon float64
	// Workers bounds the column shards of the expansion/inflation rounds
	// (0 = GOMAXPROCS, 1 = serial). Every output column of M*M is
	// independent, so sharding cannot change the result; matrices smaller
	// than parallelMinColumns always run serially to keep goroutine
	// overhead off the many tiny per-component runs.
	Workers int
}

// parallelMinColumns is the matrix size below which a round is always
// computed serially: the similarity graphs split into many small
// components, and fan-out overhead would dominate their O(n) columns.
// It doubles as the CSR engine's serial-fallback threshold — below it a
// round runs on the engine's own persistent scratch with zero
// allocations; above it shards append into per-shard buffers that are
// stitched back in shard order.
const parallelMinColumns = 128

func (o Options) withDefaults() Options {
	if o.Inflation <= 1 {
		o.Inflation = 2.0
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 60
	}
	if o.Prune <= 0 {
		o.Prune = 1e-5
	}
	if o.SelfLoop <= 0 {
		o.SelfLoop = 1.0
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-6
	}
	return o
}

// csr is a column-major sparse matrix: column j's entries are
// rows[ptr[j]:ptr[j+1]] (ascending) with values vals[ptr[j]:ptr[j+1]].
type csr struct {
	ptr  []int32
	rows []int32
	vals []float64
}

// reset truncates the matrix for refilling without releasing capacity.
func (m *csr) reset() {
	m.ptr = append(m.ptr[:0], 0)
	m.rows = m.rows[:0]
	m.vals = m.vals[:0]
}

// shardState is one expansion worker's private accumulator and output
// fragment, persisted on the engine so repeated rounds reuse capacity.
type shardState struct {
	dst     csr
	scratch []float64
	touched []int32
}

// engine holds one MCL run's state: the double-buffered flow matrix and
// the expansion scratch. All methods run on the caller's goroutine except
// the shard bodies inside step, which write only shard-private state.
type engine struct {
	n        int
	opts     Options
	workers  int
	cur, nxt csr
	serial   shardState
	shards   []shardState
}

// newEngine builds the initial column-stochastic flow matrix with self
// loops, exactly as the original fromGraph did: per column, self loop
// plus neighbors sorted by row, duplicates merged, then normalized.
func newEngine(g *graph.Graph, opts Options) *engine {
	n := g.Len()
	e := &engine{n: n, opts: opts, workers: opts.Workers}
	if e.workers <= 0 {
		e.workers = runtimeWorkers()
	}
	e.serial.scratch = make([]float64, n)
	e.serial.touched = make([]int32, 0, n)
	e.cur.reset()
	e.nxt.reset()

	type entry struct {
		row int32
		val float64
	}
	var col []entry
	for v := 0; v < n; v++ {
		col = col[:0]
		col = append(col, entry{row: int32(v), val: opts.SelfLoop})
		for _, ed := range g.Neighbors(v) {
			col = append(col, entry{row: int32(ed.To), val: ed.Weight})
		}
		sort.Slice(col, func(i, j int) bool { return col[i].row < col[j].row })
		// Merge duplicate rows (parallel edges).
		out := col[:0]
		for _, c := range col {
			if len(out) > 0 && out[len(out)-1].row == c.row {
				out[len(out)-1].val += c.val
			} else {
				out = append(out, c)
			}
		}
		var sum float64
		for _, c := range out {
			sum += c.val
		}
		for _, c := range out {
			if sum != 0 {
				c.val /= sum
			}
			e.cur.rows = append(e.cur.rows, c.row)
			e.cur.vals = append(e.cur.vals, c.val)
		}
		e.cur.ptr = append(e.cur.ptr, int32(len(e.cur.rows)))
	}
	return e
}

// expandInflateColumn computes column j of M' = M*M, inflates it, and
// appends it to dst. The accumulation order over column j's entries is
// fixed by the CSR layout — identical to the original expandColumn — and
// the inflation replays pow, sum, prune, and the two normalizations in
// the original entry order, so the appended column is bit-identical to
// the per-column implementation's no matter which worker computes it.
//
//hobbit:hotpath
func (e *engine) expandInflateColumn(st *shardState, dst *csr, j int) {
	cur := &e.cur
	touched := st.touched[:0]
	scratch := st.scratch
	for p := cur.ptr[j]; p < cur.ptr[j+1]; p++ {
		i := cur.rows[p]
		ev := cur.vals[p]
		for q := cur.ptr[i]; q < cur.ptr[i+1]; q++ {
			r := cur.rows[q]
			if scratch[r] == 0 {
				touched = append(touched, r)
			}
			scratch[r] += ev * cur.vals[q]
		}
	}
	slices.Sort(touched)
	st.touched = touched

	// Gather the expanded column, then inflate in place: pow and sum in
	// row order, prune against the normalized value, renormalize the
	// survivors.
	start := len(dst.vals)
	for _, r := range touched {
		dst.rows = append(dst.rows, r)
		dst.vals = append(dst.vals, scratch[r])
		scratch[r] = 0
	}
	var sum float64
	for i := start; i < len(dst.vals); i++ {
		v := math.Pow(dst.vals[i], e.opts.Inflation)
		dst.vals[i] = v
		sum += v
	}
	if sum != 0 {
		w := start
		var sum2 float64
		for i := start; i < len(dst.vals); i++ {
			v := dst.vals[i] / sum
			if v >= e.opts.Prune {
				dst.rows[w] = dst.rows[i]
				dst.vals[w] = v
				sum2 += v
				w++
			}
		}
		dst.rows = dst.rows[:w]
		dst.vals = dst.vals[:w]
		if sum2 != 0 {
			for i := start; i < w; i++ {
				dst.vals[i] /= sum2
			}
		}
	}
	dst.ptr = append(dst.ptr, int32(len(dst.rows)))
}

// step computes one expansion + inflation round into the spare buffer and
// swaps it in. Columns are independent: below the serial-fallback
// threshold they run on the engine's persistent scratch (no allocation in
// steady state); above it contiguous shards append into per-shard
// buffers, which are stitched into the output strictly in shard order, so
// the round is bit-identical to a serial pass at any worker count.
//
//hobbit:hotpath
func (e *engine) step() {
	e.nxt.reset()
	if e.n < parallelMinColumns || e.workers <= 1 {
		for j := 0; j < e.n; j++ {
			e.expandInflateColumn(&e.serial, &e.nxt, j)
		}
		e.cur, e.nxt = e.nxt, e.cur
		return
	}
	e.stepParallel()
}

// stepParallel is the sharded body of step, split out so the serial
// fallback's stack frame never materializes the goroutine closures (the
// captured shard-count variable would otherwise be heap-allocated on
// every round, serial or not).
func (e *engine) stepParallel() {
	k := e.workers
	if k > e.n {
		k = e.n
	}
	if e.shards == nil {
		e.shards = make([]shardState, k)
		for s := range e.shards {
			e.shards[s].scratch = make([]float64, e.n)
			e.shards[s].touched = make([]int32, 0, e.n)
		}
	}
	var wg sync.WaitGroup
	wg.Add(k)
	for s := 0; s < k; s++ {
		go func(s int) {
			defer wg.Done()
			st := &e.shards[s]
			st.dst.reset()
			lo, hi := s*e.n/k, (s+1)*e.n/k
			for j := lo; j < hi; j++ {
				e.expandInflateColumn(st, &st.dst, j)
			}
		}(s)
	}
	wg.Wait()
	// Ordered stitch: shard s covers columns [s*n/k, (s+1)*n/k), so
	// appending fragments in shard index order reassembles the exact
	// serial output.
	for s := 0; s < k; s++ {
		st := &e.shards[s]
		base := int32(len(e.nxt.rows))
		for _, p := range st.dst.ptr[1:] {
			e.nxt.ptr = append(e.nxt.ptr, base+p)
		}
		e.nxt.rows = append(e.nxt.rows, st.dst.rows...)
		e.nxt.vals = append(e.nxt.vals, st.dst.vals...)
	}
	e.cur, e.nxt = e.nxt, e.cur
}

// delta returns the largest absolute entry difference between two
// matrices.
//
//hobbit:hotpath
func delta(a, b *csr) float64 {
	var max float64
	for j := 0; j+1 < len(a.ptr); j++ {
		i, iEnd := a.ptr[j], a.ptr[j+1]
		k, kEnd := b.ptr[j], b.ptr[j+1]
		for i < iEnd || k < kEnd {
			switch {
			case k >= kEnd || (i < iEnd && a.rows[i] < b.rows[k]):
				if v := math.Abs(a.vals[i]); v > max {
					max = v
				}
				i++
			case i >= iEnd || b.rows[k] < a.rows[i]:
				if v := math.Abs(b.vals[k]); v > max {
					max = v
				}
				k++
			default:
				if v := math.Abs(a.vals[i] - b.vals[k]); v > max {
					max = v
				}
				i++
				k++
			}
		}
	}
	return max
}

// Cluster runs MCL on the graph and returns the clusters as sorted vertex
// lists, ordered by smallest member. Every vertex appears in exactly one
// cluster; vertices with no surviving attractor become singletons.
func Cluster(g *graph.Graph, opts Options) [][]int {
	opts = opts.withDefaults()
	n := g.Len()
	if n == 0 {
		return nil
	}
	e := newEngine(g, opts)
	for iter := 0; iter < opts.MaxIter; iter++ {
		e.step()
		// After the swap, nxt holds the previous round's matrix.
		if delta(&e.nxt, &e.cur) < opts.Epsilon {
			break
		}
	}
	return interpret(&e.cur, n)
}

// interpret reads clusters from the converged flow matrix: attractors are
// vertices with positive diagonal; an attractor's cluster is the support
// of its row; overlapping clusters merge (standard MCL interpretation).
func interpret(m *csr, n int) [][]int {
	// Row support of attractors via union-find over vertices.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	attractor := make([]bool, n)
	for j := 0; j < n; j++ {
		for p := m.ptr[j]; p < m.ptr[j+1]; p++ {
			if int(m.rows[p]) == j && m.vals[p] > 1e-9 {
				attractor[j] = true
			}
		}
	}
	// A column's mass flows to attractors; join the column vertex with
	// every attractor it supports, and attractors sharing a column.
	for j := 0; j < n; j++ {
		for p := m.ptr[j]; p < m.ptr[j+1]; p++ {
			if attractor[m.rows[p]] && m.vals[p] > 1e-9 {
				union(j, int(m.rows[p]))
			}
		}
	}
	byRoot := make(map[int][]int)
	for v := 0; v < n; v++ {
		r := find(v)
		byRoot[r] = append(byRoot[r], v)
	}
	out := make([][]int, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Ints(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
