// Package mcl implements the Markov Cluster Algorithm (van Dongen, 2000)
// the paper selects for aggregating similar-but-not-identical /24 blocks
// (Section 6.2): alternating expansion (random-walk squaring) and
// inflation (entrywise powering that strengthens strong flows) over a
// column-stochastic matrix until the flow matrix converges, then reading
// clusters off the attractor rows.
package mcl

import (
	"context"
	"math"
	"sort"

	"github.com/hobbitscan/hobbit/internal/graph"
	"github.com/hobbitscan/hobbit/internal/parallel"
)

// Options configures an MCL run.
type Options struct {
	// Inflation is the granularity parameter r (entrywise power);
	// larger values produce finer clusters. Default 2.0.
	Inflation float64
	// MaxIter bounds the expansion/inflation rounds. Default 60.
	MaxIter int
	// Prune drops matrix entries below this value after each round to
	// keep the matrix sparse. Default 1e-5.
	Prune float64
	// SelfLoop is the loop weight added to each vertex before
	// normalization, the standard regularization that guarantees
	// convergence. Default 1.0.
	SelfLoop float64
	// Epsilon is the convergence threshold on the largest entry change
	// between rounds. Default 1e-6.
	Epsilon float64
	// Workers bounds the column shards of the expansion/inflation rounds
	// (0 = GOMAXPROCS, 1 = serial). Every output column of M*M is
	// independent, so sharding cannot change the result; matrices smaller
	// than parallelMinColumns always run serially to keep goroutine
	// overhead off the many tiny per-component runs.
	Workers int
}

// parallelMinColumns is the matrix size below which a round is always
// computed serially: the similarity graphs split into many small
// components, and fan-out overhead would dominate their O(n) columns.
const parallelMinColumns = 128

func (o Options) withDefaults() Options {
	if o.Inflation <= 1 {
		o.Inflation = 2.0
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 60
	}
	if o.Prune <= 0 {
		o.Prune = 1e-5
	}
	if o.SelfLoop <= 0 {
		o.SelfLoop = 1.0
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-6
	}
	return o
}

// entry is one sparse matrix cell within a column.
type entry struct {
	row int
	val float64
}

// matrix is column-major sparse, columns sorted by row.
type matrix [][]entry

// fromGraph builds the initial column-stochastic flow matrix with self
// loops.
func fromGraph(g *graph.Graph, selfLoop float64) matrix {
	n := g.Len()
	m := make(matrix, n)
	for v := 0; v < n; v++ {
		col := make([]entry, 0, len(g.Neighbors(v))+1)
		col = append(col, entry{row: v, val: selfLoop})
		for _, e := range g.Neighbors(v) {
			col = append(col, entry{row: e.To, val: e.Weight})
		}
		sort.Slice(col, func(i, j int) bool { return col[i].row < col[j].row })
		// Merge duplicate rows (parallel edges).
		out := col[:0]
		for _, c := range col {
			if len(out) > 0 && out[len(out)-1].row == c.row {
				out[len(out)-1].val += c.val
			} else {
				out = append(out, c)
			}
		}
		m[v] = normalize(out)
	}
	return m
}

func normalize(col []entry) []entry {
	var sum float64
	for _, e := range col {
		sum += e.val
	}
	if sum == 0 {
		return col
	}
	for i := range col {
		col[i].val /= sum
	}
	return col
}

// expandColumn computes column j of M' = M * M using the caller's dense
// scratch accumulator, returning the sorted sparse column. The
// accumulation order over m[j]'s entries is fixed by the column layout,
// so the floating-point result is identical no matter which worker
// computes the column.
func (m matrix) expandColumn(j int, scratch []float64, touched []int) ([]entry, []int) {
	touched = touched[:0]
	for _, e := range m[j] {
		colI := m[e.row]
		for _, f := range colI {
			if scratch[f.row] == 0 {
				touched = append(touched, f.row)
			}
			scratch[f.row] += e.val * f.val
		}
	}
	sort.Ints(touched)
	col := make([]entry, 0, len(touched))
	for _, r := range touched {
		col = append(col, entry{row: r, val: scratch[r]})
		scratch[r] = 0
	}
	return col, touched
}

// inflateColumn raises the column's entries to the power r, prunes small
// values, and renormalizes.
func inflateColumn(col []entry, r, prune float64) []entry {
	for i := range col {
		col[i].val = math.Pow(col[i].val, r)
	}
	var sum float64
	for _, e := range col {
		sum += e.val
	}
	if sum == 0 {
		return col
	}
	out := col[:0]
	for _, e := range col {
		v := e.val / sum
		if v >= prune {
			out = append(out, entry{row: e.row, val: v})
		}
	}
	return normalize(out)
}

// step computes one expansion + inflation round: out column j is column j
// of M*M, inflated and pruned. Columns are independent, so they are
// computed in contiguous shards — one dense scratch accumulator each —
// and written to distinct slots of the output matrix; shard boundaries
// cannot change any column's value, so the round is bit-identical to a
// serial pass.
func (m matrix) step(pool parallel.Pool, r, prune float64) matrix {
	n := len(m)
	out := make(matrix, n)
	if n < parallelMinColumns {
		pool.Workers = 1
	}
	// Background context: a round is the unit of cancellation-free work;
	// callers cancel between MCL runs, not inside one.
	_ = pool.Shards(context.Background(), n, func(_, lo, hi int) {
		scratch := make([]float64, n)
		touched := make([]int, 0, n)
		for j := lo; j < hi; j++ {
			var col []entry
			col, touched = m.expandColumn(j, scratch, touched)
			out[j] = inflateColumn(col, r, prune)
		}
	})
	return out
}

// delta returns the largest absolute entry difference between two
// matrices.
func delta(a, b matrix) float64 {
	var max float64
	for j := range a {
		ai, bi := a[j], b[j]
		i, k := 0, 0
		for i < len(ai) || k < len(bi) {
			switch {
			case k >= len(bi) || (i < len(ai) && ai[i].row < bi[k].row):
				if v := math.Abs(ai[i].val); v > max {
					max = v
				}
				i++
			case i >= len(ai) || bi[k].row < ai[i].row:
				if v := math.Abs(bi[k].val); v > max {
					max = v
				}
				k++
			default:
				if v := math.Abs(ai[i].val - bi[k].val); v > max {
					max = v
				}
				i++
				k++
			}
		}
	}
	return max
}

// Cluster runs MCL on the graph and returns the clusters as sorted vertex
// lists, ordered by smallest member. Every vertex appears in exactly one
// cluster; vertices with no surviving attractor become singletons.
func Cluster(g *graph.Graph, opts Options) [][]int {
	opts = opts.withDefaults()
	n := g.Len()
	if n == 0 {
		return nil
	}
	m := fromGraph(g, opts.SelfLoop)
	pool := parallel.Pool{Workers: opts.Workers}
	for iter := 0; iter < opts.MaxIter; iter++ {
		next := m.step(pool, opts.Inflation, opts.Prune)
		if delta(m, next) < opts.Epsilon {
			m = next
			break
		}
		m = next
	}
	return interpret(m, n)
}

// interpret reads clusters from the converged flow matrix: attractors are
// vertices with positive diagonal; an attractor's cluster is the support
// of its row; overlapping clusters merge (standard MCL interpretation).
func interpret(m matrix, n int) [][]int {
	// Row support of attractors via union-find over vertices.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	attractor := make([]bool, n)
	for j := range m {
		for _, e := range m[j] {
			if e.row == j && e.val > 1e-9 {
				attractor[j] = true
			}
		}
	}
	// A column's mass flows to attractors; join the column vertex with
	// every attractor it supports, and attractors sharing a column.
	for j := range m {
		for _, e := range m[j] {
			if attractor[e.row] && e.val > 1e-9 {
				union(j, e.row)
			}
		}
	}
	byRoot := make(map[int][]int)
	for v := 0; v < n; v++ {
		r := find(v)
		byRoot[r] = append(byRoot[r], v)
	}
	out := make([][]int, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Ints(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
