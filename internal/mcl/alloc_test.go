//go:build !race

package mcl

import (
	"testing"
)

// TestStepZeroAlloc pins the CSR engine's steady-state contract: once the
// double buffers and scratch have warmed up, a serial expansion +
// inflation round performs no heap allocation at all. The matrix is kept
// below parallelMinColumns so the round takes the serial fallback — the
// path every small similarity-graph component runs — and the engine is
// first driven to convergence so buffer capacities have reached their
// fixed point before counting.
//
// The assertion lives behind !race because the race runtime instruments
// allocations and would report false positives.
func TestStepZeroAlloc(t *testing.T) {
	g := bridgedFamilies(3, 20) // 60 vertices: serial fallback path
	opts := Options{Workers: 1}.withDefaults()
	e := newEngine(g, opts)
	for i := 0; i < opts.MaxIter; i++ {
		e.step()
		if delta(&e.nxt, &e.cur) < opts.Epsilon {
			break
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		e.step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state step allocates %.1f times per round; want 0", allocs)
	}

	// delta itself must also stay off the allocator: it runs once per
	// round over the full matrix pair.
	allocs = testing.AllocsPerRun(50, func() {
		_ = delta(&e.nxt, &e.cur)
	})
	if allocs != 0 {
		t.Fatalf("delta allocates %.1f times per call; want 0", allocs)
	}
}
