package mcl_test

import (
	"fmt"

	"github.com/hobbitscan/hobbit/internal/graph"
	"github.com/hobbitscan/hobbit/internal/mcl"
)

// Clustering a weighted graph: two dense families bridged by one weak
// edge separate cleanly.
func ExampleCluster() {
	g := graph.New(6)
	// Family A: 0-1-2, Family B: 3-4-5.
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(3, 5, 1)
	// A weak bridge.
	g.AddEdge(2, 3, 0.05)

	for _, cluster := range mcl.Cluster(g, mcl.Options{}) {
		fmt.Println(cluster)
	}
	// Output:
	// [0 1 2]
	// [3 4 5]
}
