package mcl

import (
	"math"
	"math/rand"
	"testing"

	"github.com/hobbitscan/hobbit/internal/graph"
)

// twoCliques builds two dense clusters joined by one weak edge.
func twoCliques(n int, bridge float64) *graph.Graph {
	g := graph.New(2 * n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, 1)
			g.AddEdge(n+i, n+j, 1)
		}
	}
	if bridge > 0 {
		g.AddEdge(0, n, bridge)
	}
	return g
}

func clusterOf(clusters [][]int, v int) []int {
	for _, c := range clusters {
		for _, m := range c {
			if m == v {
				return c
			}
		}
	}
	return nil
}

func TestClusterSeparatesCliques(t *testing.T) {
	g := twoCliques(6, 0.05)
	clusters := Cluster(g, Options{})
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v", clusters)
	}
	c0 := clusterOf(clusters, 0)
	if len(c0) != 6 || c0[5] != 5 {
		t.Errorf("first clique cluster = %v", c0)
	}
	c6 := clusterOf(clusters, 6)
	if len(c6) != 6 || c6[0] != 6 {
		t.Errorf("second clique cluster = %v", c6)
	}
}

func TestClusterPartition(t *testing.T) {
	// Every vertex appears exactly once regardless of structure.
	rng := rand.New(rand.NewSource(11))
	g := graph.New(40)
	for i := 0; i < 120; i++ {
		g.AddEdge(rng.Intn(40), rng.Intn(40), rng.Float64())
	}
	clusters := Cluster(g, Options{})
	seen := make(map[int]int)
	for _, c := range clusters {
		for _, v := range c {
			seen[v]++
		}
	}
	if len(seen) != 40 {
		t.Fatalf("covered %d of 40 vertices", len(seen))
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("vertex %d appears %d times", v, n)
		}
	}
}

func TestInflationGranularity(t *testing.T) {
	// A chain graph: higher inflation must produce at least as many
	// clusters (finer granularity), the property the parameter sweep
	// exploits.
	g := graph.New(24)
	for i := 0; i+1 < 24; i++ {
		g.AddEdge(i, i+1, 1)
	}
	coarse := Cluster(g, Options{Inflation: 1.3})
	fine := Cluster(g, Options{Inflation: 3.5})
	if len(fine) < len(coarse) {
		t.Errorf("inflation 3.5 gave %d clusters, 1.3 gave %d", len(fine), len(coarse))
	}
}

func TestIsolatedVerticesSingletons(t *testing.T) {
	g := graph.New(3) // no edges at all
	clusters := Cluster(g, Options{})
	if len(clusters) != 3 {
		t.Fatalf("clusters = %v", clusters)
	}
	for i, c := range clusters {
		if len(c) != 1 || c[0] != i {
			t.Errorf("cluster %d = %v", i, c)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	if got := Cluster(graph.New(0), Options{}); got != nil {
		t.Errorf("empty graph clusters = %v", got)
	}
}

func TestMatrixStochasticInvariant(t *testing.T) {
	g := twoCliques(5, 0.2)
	e := newEngine(g, Options{}.withDefaults())
	checkStochastic := func(m *csr, stage string) {
		t.Helper()
		for j := 0; j+1 < len(m.ptr); j++ {
			var sum float64
			for p := m.ptr[j]; p < m.ptr[j+1]; p++ {
				sum += m.vals[p]
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s: column %d sums to %v", stage, j, sum)
			}
		}
	}
	checkStochastic(&e.cur, "initial")
	// A full round (expand + inflate + renormalize) must preserve column
	// stochasticity.
	e.step()
	checkStochastic(&e.cur, "after step")
}

// bridgedFamilies builds several dense families joined by weak bridges,
// the shape of the real similarity-graph components, large enough that
// the column shards of step actually engage (n >= parallelMinColumns).
func bridgedFamilies(families, size int) *graph.Graph {
	g := graph.New(families * size)
	for f := 0; f < families; f++ {
		base := f * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if (i+j)%3 == 0 {
					g.AddEdge(base+i, base+j, 0.8)
				}
			}
		}
		if f > 0 {
			g.AddEdge(base, base-size, 0.05)
		}
	}
	return g
}

// TestClusterWorkersIdentical is the mcl half of the PR's determinism
// contract: serial (Workers=1) and sharded (Workers=8) runs must produce
// identical clusterings, and the underlying flow matrices must match
// entry for entry (bit-identical floats — sharding only moves columns
// between goroutines, never reorders the arithmetic inside one).
func TestClusterWorkersIdentical(t *testing.T) {
	g := bridgedFamilies(8, 32) // 256 vertices: above parallelMinColumns
	serial := Cluster(g, Options{Workers: 1})
	sharded := Cluster(g, Options{Workers: 8})
	if len(serial) != len(sharded) {
		t.Fatalf("cluster counts differ: %d vs %d", len(serial), len(sharded))
	}
	for i := range serial {
		if len(serial[i]) != len(sharded[i]) {
			t.Fatalf("cluster %d sizes differ", i)
		}
		for j := range serial[i] {
			if serial[i][j] != sharded[i][j] {
				t.Fatalf("cluster %d member %d differs", i, j)
			}
		}
	}

	// One full round, CSR matrices compared exactly: the sharded round
	// must reassemble the serial one's ptr/rows/vals byte for byte.
	e1 := newEngine(g, Options{Workers: 1}.withDefaults())
	e8 := newEngine(g, Options{Workers: 8}.withDefaults())
	e1.step()
	e8.step()
	if len(e1.cur.ptr) != len(e8.cur.ptr) || len(e1.cur.rows) != len(e8.cur.rows) {
		t.Fatalf("matrix shapes differ: %d/%d ptr, %d/%d entries",
			len(e1.cur.ptr), len(e8.cur.ptr), len(e1.cur.rows), len(e8.cur.rows))
	}
	for i := range e1.cur.ptr {
		if e1.cur.ptr[i] != e8.cur.ptr[i] {
			t.Fatalf("ptr[%d] differs: %d vs %d", i, e1.cur.ptr[i], e8.cur.ptr[i])
		}
	}
	for i := range e1.cur.rows {
		if e1.cur.rows[i] != e8.cur.rows[i] || e1.cur.vals[i] != e8.cur.vals[i] {
			t.Fatalf("entry %d differs: (%d, %v) vs (%d, %v)", i,
				e1.cur.rows[i], e1.cur.vals[i], e8.cur.rows[i], e8.cur.vals[i])
		}
	}
}

func TestDeterministic(t *testing.T) {
	g := twoCliques(5, 0.1)
	a := Cluster(g, Options{})
	b := Cluster(g, Options{})
	if len(a) != len(b) {
		t.Fatal("nondeterministic cluster count")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("nondeterministic cluster sizes")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("nondeterministic membership")
			}
		}
	}
}

func TestWeightSensitivity(t *testing.T) {
	// Vertex 4 is tied strongly to clique A and weakly to clique B; it
	// must cluster with A.
	g := graph.New(9)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	for i := 5; i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	g.AddEdge(4, 0, 0.9)
	g.AddEdge(4, 1, 0.9)
	g.AddEdge(4, 5, 0.05)
	clusters := Cluster(g, Options{})
	c := clusterOf(clusters, 4)
	has0 := false
	has5 := false
	for _, v := range c {
		if v == 0 {
			has0 = true
		}
		if v == 5 {
			has5 = true
		}
	}
	if !has0 || has5 {
		t.Errorf("vertex 4 clustered as %v; want with clique A only", c)
	}
}
