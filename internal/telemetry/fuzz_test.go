package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"unicode/utf8"
)

// FuzzSnapshot drives a registry with arbitrary metric names and values
// and checks the snapshot invariants: freezing never panics, the
// deterministic marshal is stable call to call, the JSON round-trips,
// and the frozen values match what was recorded.
func FuzzSnapshot(f *testing.F) {
	f.Add("census.scan_pings", int64(42), int64(-3), int64(7))
	f.Add("a.b", int64(0), int64(0), int64(0))
	f.Add("", int64(-1), int64(1<<62), int64(-1<<62))
	f.Add("weird/NAME with spaces\x00", int64(1), int64(2), int64(3))
	f.Fuzz(func(t *testing.T, name string, add, gauge, obs int64) {
		r := NewRegistry()
		r.Counter(name).Add(add)
		r.Gauge(name).Set(gauge)
		h := r.Histogram(name, []int64{4, 16, 64})
		h.Observe(obs)
		r.StartSpan(name).End() // timings must stay out of MarshalCounters

		snap := r.Snapshot()
		if got := snap.Counters[name]; got != add {
			t.Fatalf("counter %q = %d, want %d", name, got, add)
		}
		if got := snap.Gauges[name]; got != gauge {
			t.Fatalf("gauge %q = %d, want %d", name, got, gauge)
		}
		hs, ok := snap.Histograms[name]
		if !ok || hs.Count != 1 || hs.Sum != obs {
			t.Fatalf("histogram %q = %+v, want one observation of %d", name, hs, obs)
		}

		j1, err := r.MarshalCounters()
		if err != nil {
			t.Fatalf("MarshalCounters: %v", err)
		}
		j2, err := r.MarshalCounters()
		if err != nil {
			t.Fatalf("second MarshalCounters: %v", err)
		}
		if !bytes.Equal(j1, j2) {
			t.Fatalf("MarshalCounters not stable:\n%s\n%s", j1, j2)
		}
		var back Snapshot
		if err := json.Unmarshal(j1, &back); err != nil {
			t.Fatalf("marshaled snapshot does not round-trip: %v", err)
		}
		// encoding/json replaces invalid UTF-8 in map keys, so the
		// by-name lookup is only meaningful for valid names.
		if utf8.ValidString(name) && back.Counters[name] != add {
			t.Fatalf("round-trip counter %q = %d, want %d", name, back.Counters[name], add)
		}
		if len(back.Stages) != 0 {
			t.Fatalf("MarshalCounters leaked %d stage timings", len(back.Stages))
		}
	})
}
