package telemetry

import (
	"encoding/json"
	"net/http"
)

// HistogramSnapshot is the frozen state of one Histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bucket bounds; Counts has one extra
	// trailing overflow bucket.
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
}

// SpanSnapshot is the frozen state of one stage span.
type SpanSnapshot struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
	Running    bool    `json:"running,omitempty"`
}

// Snapshot is the frozen state of a whole registry. Counters, gauges, and
// histograms hold only measurement-load state and are deterministic for a
// fixed seed; Stages hold wall-clock timings and are not. Consumers that
// need byte-identical output across same-seed runs (regression checks on
// measurement load) should compare MarshalCounters, which excludes
// timings.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Stages     []SpanSnapshot               `json:"stages,omitempty"`
}

// Snapshot freezes the registry. Safe to call at any time, including while
// instrumented stages are still running. A nil registry yields an empty
// (but non-nil-map) snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Counters: map[string]int64{}}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	if len(gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(gauges))
		for k, g := range gauges {
			snap.Gauges[k] = g.Value()
		}
	}
	if len(hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for k, h := range hists {
			snap.Histograms[k] = h.snapshot()
		}
	}
	snap.Stages = r.Spans()
	return snap
}

// MarshalCounters renders the deterministic part of the registry —
// counters, gauges, and histograms, with timings excluded — as canonical
// JSON (encoding/json sorts map keys). Two same-seed runs of the pipeline
// must produce byte-identical output here; it doubles as a regression
// check on measurement load.
func (r *Registry) MarshalCounters() ([]byte, error) {
	snap := r.Snapshot()
	snap.Stages = nil
	return json.Marshal(snap)
}

// ServeHTTP serves the full registry snapshot as JSON, making *Registry an
// http.Handler for live inspection of a running measurement (`hobbit
// -metrics-addr`).
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(r.Snapshot())
}
