// Package telemetry is the observability layer of the measurement
// pipeline: a concurrency-safe metrics registry (counters, gauges, bounded
// histograms), named pipeline-stage spans with wall-clock timing, and a
// progress-event sink. The paper's campaign is fundamentally a
// load-accounting exercise — 64.45M destinations probed, per-class block
// tallies, per-stage costs — and this package is where that accounting
// lives for every stage of the reproduction.
//
// All instrument handles and the registry itself are nil-safe: a nil
// *Registry hands out nil instruments whose methods are no-ops, so
// instrumented code never branches on "is telemetry enabled". Counter
// state is deterministic for a fixed seed; wall-clock state (spans) is
// kept separate so snapshots can exclude it (see Snapshot).
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value is
// ready to use; a nil Counter discards updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 metric. A nil Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the current value (0 for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a bounded histogram over int64 observations (latencies in
// microseconds, sizes in probes, …). Observations are bucketed by the
// inclusive upper bounds given at creation, with one implicit overflow
// bucket, so memory stays fixed no matter how many values arrive. A nil
// Histogram discards observations.
type Histogram struct {
	mu     sync.Mutex
	bounds []int64 // inclusive upper bounds, ascending
	counts []int64 // len(bounds)+1; last is overflow
	count  int64
	sum    int64
	min    int64
	max    int64
}

// newHistogram builds a histogram with the given inclusive upper bounds.
func newHistogram(bounds []int64) *Histogram {
	cp := append([]int64(nil), bounds...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return &Histogram{bounds: cp, counts: make([]int64, len(cp)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
}

// Count returns the number of observations (0 for a nil Histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations (0 for a nil Histogram).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshotLocked returns a copy of the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
}

// Registry is a concurrency-safe collection of named instruments. Looking
// up a name that does not exist yet creates the instrument, so callers
// hold handles rather than strings on hot paths. A nil *Registry is a
// valid no-op registry: every lookup returns a nil instrument.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []*Span
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// inclusive upper bucket bounds on first use (later calls may pass nil
// bounds to mean "whatever it was created with").
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}
