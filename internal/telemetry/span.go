package telemetry

import (
	"sync/atomic"
	"time"
)

// Span is one named pipeline stage with wall-clock timing. Spans are
// created by Registry.StartSpan and closed with End; a span that is never
// ended reports the time elapsed so far, so a snapshot taken mid-run still
// shows where the pipeline is spending its time. A nil Span is a no-op.
type Span struct {
	name  string
	start time.Time
	durNS atomic.Int64 // 0 while running
	done  atomic.Bool
}

// StartSpan opens a named stage span and registers it in creation order.
// The same name may be started more than once (repeated stages each get
// their own span).
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{name: name, start: time.Now()}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
	return s
}

// End closes the span and returns its duration. Ending twice keeps the
// first duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	if s.done.CompareAndSwap(false, true) {
		s.durNS.Store(int64(time.Since(s.start)))
	}
	return time.Duration(s.durNS.Load())
}

// Name returns the span's stage name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's wall-clock duration: final if ended,
// elapsed-so-far otherwise.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	if s.done.Load() {
		return time.Duration(s.durNS.Load())
	}
	return time.Since(s.start)
}

// Spans returns a snapshot of all spans in start order.
func (r *Registry) Spans() []SpanSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	spans := append([]*Span(nil), r.spans...)
	r.mu.Unlock()
	out := make([]SpanSnapshot, len(spans))
	for i, s := range spans {
		out[i] = SpanSnapshot{
			Name:       s.Name(),
			DurationMS: float64(s.Duration()) / float64(time.Millisecond),
			Running:    !s.done.Load(),
		}
	}
	return out
}
