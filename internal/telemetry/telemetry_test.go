package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.probes")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("test.probes") != c {
		t.Error("second lookup returned a different counter")
	}
	g := r.Gauge("test.inflation_milli")
	g.Set(1800)
	if got := g.Value(); got != 1800 {
		t.Errorf("gauge = %d, want 1800", got)
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("test.x")
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	r.Gauge("test.g").Set(3)
	h := r.Histogram("test.h", []int64{1, 2})
	h.Observe(7)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram accumulated")
	}
	s := r.StartSpan("census")
	if d := s.End(); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || snap.Stages != nil {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.probed_per_block", []int64{4, 8, 16})
	for _, v := range []int64{1, 4, 5, 9, 100} {
		h.Observe(v)
	}
	snap := h.snapshot()
	wantCounts := []int64{2, 1, 1, 1} // <=4, <=8, <=16, overflow
	for i, w := range wantCounts {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (%+v)", i, snap.Counts[i], w, snap)
		}
	}
	if snap.Count != 5 || snap.Sum != 119 || snap.Min != 1 || snap.Max != 100 {
		t.Errorf("summary stats wrong: %+v", snap)
	}
}

func TestSpanTiming(t *testing.T) {
	r := NewRegistry()
	s := r.StartSpan("measure")
	time.Sleep(time.Millisecond)
	d := s.End()
	if d <= 0 {
		t.Errorf("duration = %v", d)
	}
	if again := s.End(); again != d {
		t.Errorf("second End changed the duration: %v != %v", again, d)
	}
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Name != "measure" || spans[0].Running {
		t.Errorf("spans = %+v", spans)
	}
	// A still-running span reports elapsed time in snapshots.
	open := r.StartSpan("validate")
	if r.Spans()[1].Name != "validate" || !r.Spans()[1].Running {
		t.Errorf("open span not reported running: %+v", r.Spans())
	}
	open.End()
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("b.probes").Add(10)
		r.Counter("a.pings").Add(3)
		r.Gauge("test.inflation").Set(2)
		h := r.Histogram("test.sizes", []int64{2, 8})
		h.Observe(1)
		h.Observe(5)
		r.StartSpan("census").End() // timing must be excluded
		return r
	}
	j1, err := build().MarshalCounters()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := build().MarshalCounters()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("counter snapshots differ:\n%s\n%s", j1, j2)
	}
	if strings.Contains(string(j1), "stages") {
		t.Errorf("counter snapshot leaked timings: %s", j1)
	}
}

// TestConcurrentRegistry exercises the registry the way campaign workers
// do — many goroutines resolving and bumping the same names — and is the
// unit-level half of the -race guarantee.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("campaign.blocks_measured").Inc()
				r.Histogram("campaign.probed_per_block", []int64{4, 16, 64}).Observe(int64(i))
				r.Gauge("campaign.last").Set(int64(i))
				sp := r.StartSpan("hot")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("campaign.blocks_measured").Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("campaign.probed_per_block", nil).Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("census.scan_pings").Add(42)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if snap.Counters["census.scan_pings"] != 42 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestLineSinkThrottle(t *testing.T) {
	var buf bytes.Buffer
	s := NewLineSink(&buf, 10)
	for i := 1; i <= 25; i++ {
		s.Emit(ProgressEvent{
			Stage: "measure", Done: i, Total: 25,
			Classes: map[string]int{"Same last-hop router": i},
			Pings:   int64(i), Probes: int64(2 * i),
		})
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Done=1 (first), 10, 20, and 25 (final) should print.
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	last := lines[len(lines)-1]
	for _, want := range []string{"measure: 25/25", "Same last-hop router=25", "pings=25", "probes=50"} {
		if !strings.Contains(last, want) {
			t.Errorf("final line %q missing %q", last, want)
		}
	}
}
