package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// ProgressEvent is one live observation of a running measurement stage:
// how many blocks have been measured so far, the running per-class
// tallies, and the probing load emitted to date. Events are emitted by
// pipeline stages (hobbit.Campaign after every measured block) and
// consumed by a Sink.
type ProgressEvent struct {
	// Stage names the emitting pipeline stage ("measure", "validate").
	Stage string
	// Done and Total count blocks measured so far out of the stage's
	// workload (Total 0 when unknown).
	Done, Total int
	// Classes are the running per-class block tallies.
	Classes map[string]int
	// Pings and Probes are the echo requests and TTL-limited probes
	// emitted so far (0 when the probing surface is not instrumented).
	Pings, Probes int64
}

// Sink consumes progress events. Emit may be called from the stage's
// collector goroutine and must not block for long.
type Sink interface {
	Emit(ev ProgressEvent)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(ProgressEvent)

// Emit implements Sink.
func (f SinkFunc) Emit(ev ProgressEvent) { f(ev) }

// LineSink renders progress events as single text lines ("hobbit
// -progress" writes them to stderr), throttled to every Nth event plus
// the final one so a multi-million-block campaign does not drown its own
// output.
type LineSink struct {
	W io.Writer
	// Every emits one line per that many Done increments (default 100).
	// The first and last events of a stage always print.
	Every int

	mu sync.Mutex
}

// NewLineSink returns a LineSink writing to w.
func NewLineSink(w io.Writer, every int) *LineSink {
	return &LineSink{W: w, Every: every}
}

// Emit implements Sink.
func (s *LineSink) Emit(ev ProgressEvent) {
	every := s.Every
	if every <= 0 {
		every = 100
	}
	if ev.Done%every != 0 && ev.Done != ev.Total && ev.Done != 1 {
		return
	}
	classes := make([]string, 0, len(ev.Classes))
	for name, n := range ev.Classes {
		classes = append(classes, fmt.Sprintf("%s=%d", name, n))
	}
	sort.Strings(classes)
	line := fmt.Sprintf("%s: %d", ev.Stage, ev.Done)
	if ev.Total > 0 {
		line = fmt.Sprintf("%s: %d/%d", ev.Stage, ev.Done, ev.Total)
	}
	if len(classes) > 0 {
		line += " [" + strings.Join(classes, " ") + "]"
	}
	if ev.Pings > 0 || ev.Probes > 0 {
		line += fmt.Sprintf(" pings=%d probes=%d", ev.Pings, ev.Probes)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintln(s.W, line)
}
