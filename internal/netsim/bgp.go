package netsim

import (
	"math/bits"
	"sort"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

// BGPPrefixes synthesizes the routing table a RouteViews-style snapshot of
// the world would contain: maximal CIDR aggregates of each contiguous
// same-pop run, with larger aggregates de-aggregated until /24s make up
// roughly the share the paper reports (53% of BGP prefixes are /24s).
func (w *World) BGPPrefixes() []iputil.Prefix {
	var prefixes []iputil.Prefix

	// Group the universe into per-AS allocation runs: consecutive /24s
	// owned by the same AS, tolerating the small unallocated gaps
	// between aggregate segments — a registry hands out allocations, not
	// exact host runs, so announcements cover the gaps too.
	const gapTolerance = 31
	var runStart, runEnd iputil.Block24
	var runASN = -1
	flush := func() {
		if runASN >= 0 {
			prefixes = append(prefixes, cidrDecompose(runStart, int(runEnd-runStart)+1)...)
		}
		runASN = -1
	}
	for i, b := range w.blockList {
		asn := int(w.recs[i].asn)
		if runASN == asn && b >= runEnd && int(b-runEnd) <= gapTolerance {
			runEnd = b
			continue
		}
		flush()
		runStart, runEnd, runASN = b, b, asn
	}
	flush()

	// De-aggregate until /24s reach the target share. Splitting the
	// shortest prefixes first mirrors how traffic engineering fragments
	// large allocations.
	const target = 0.53
	count24 := 0
	for _, p := range prefixes {
		if p.Len == 24 {
			count24++
		}
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Len < prefixes[j].Len })
	for i := 0; float64(count24)/float64(len(prefixes)) < target && i < len(prefixes); {
		p := prefixes[i]
		if p.Len >= 24 {
			i++
			continue
		}
		half := iputil.Prefix{Base: p.Base, Len: p.Len + 1}
		other := iputil.Prefix{Base: p.Base + iputil.Addr(half.Size()), Len: p.Len + 1}
		prefixes[i] = half
		prefixes = append(prefixes, other)
		if half.Len == 24 {
			count24 += 2
		}
	}
	sort.Slice(prefixes, func(i, j int) bool {
		if prefixes[i].Base != prefixes[j].Base {
			return prefixes[i].Base < prefixes[j].Base
		}
		return prefixes[i].Len < prefixes[j].Len
	})
	return prefixes
}

// cidrDecompose covers the run of n /24s starting at base with maximal
// aligned CIDR prefixes.
func cidrDecompose(base iputil.Block24, n int) []iputil.Prefix {
	var out []iputil.Prefix
	idx := uint32(base)
	remaining := uint32(n)
	for remaining > 0 {
		// Largest aligned power-of-two chunk that fits.
		align := idx & -idx
		if align == 0 || align > remaining {
			align = 1 << (31 - uint(bits.LeadingZeros32(remaining)))
		}
		for align > remaining {
			align >>= 1
		}
		ln := 24 - bits.TrailingZeros32(align)
		out = append(out, iputil.PrefixOf(iputil.Block24(idx).Base(), ln))
		idx += align
		remaining -= align
	}
	return out
}
