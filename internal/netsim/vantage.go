package netsim

import (
	"fmt"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/rng"
)

// Vantage is a view of the world from one of its probing vantage points.
// Vantage 0 behaves exactly like the World's own probe methods (the
// paper's single UMD source); other vantages see different source access
// routers and — for aggregates whose load balancers hash the source
// address — different per-destination branches and last hops, the
// Section 6.1 effect that multi-vantage probing exploits.
type Vantage struct {
	w *World
	v int
}

// Vantage returns the v-th vantage point; it panics if v is out of range
// (Config.Vantages bounds the count).
func (w *World) Vantage(v int) *Vantage {
	if v < 0 || v >= len(w.srcHops) {
		panic(fmt.Sprintf("netsim: vantage %d out of range [0, %d)", v, len(w.srcHops)))
	}
	return &Vantage{w: w, v: v}
}

// NumVantages returns the number of vantage points the world supports.
func (w *World) NumVantages() int { return len(w.srcHops) }

// Ping mirrors World.Ping from this vantage.
func (vt *Vantage) Ping(dst iputil.Addr, seq int) (ProbeReply, bool) {
	w := vt.w
	p, routed := w.popOf(dst)
	if !routed || !w.RespondsNow(dst) {
		return ProbeReply{}, false
	}
	if w.faultBlackholed(dst) {
		return ProbeReply{}, false
	}
	if rng.Bool(w.faultPingLoss(vt.v), w.seed, uint64(dst), uint64(seq), uint64(vt.v), saltLoss) {
		return ProbeReply{}, false
	}
	dist, _ := w.forwardDist(vt.v, dst)
	rev := dist + w.revSkew(dst)
	if rev < 1 {
		rev = 1
	}
	respTTL := w.hostDefaultTTL(dst) - rev
	if respTTL < 1 {
		respTTL = 1
	}
	return ProbeReply{
		Kind:    EchoReply,
		RespTTL: respTTL,
		RTT:     w.rttProfile(p).RTT(w.seed, dst, seq),
	}, true
}

// Probe mirrors World.Probe from this vantage.
func (vt *Vantage) Probe(dst iputil.Addr, ttl int, flowID uint16, salt uint32) ProbeReply {
	w := vt.w
	if ttl < 1 {
		return ProbeReply{}
	}
	n, routed, hop := w.probeHop(vt.v, dst, flowID, ttl)
	if ttl <= n {
		if ttl > blackholeCoreHops && w.faultBlackholed(dst) {
			return ProbeReply{}
		}
		r := w.routers[hop]
		if !r.responsive {
			return ProbeReply{}
		}
		if rng.Bool(w.faultRateLimit(vt.v, dst), w.seed, uint64(dst), uint64(ttl), uint64(flowID), uint64(salt), uint64(vt.v), saltRate) {
			return ProbeReply{}
		}
		return ProbeReply{Kind: TTLExceeded, From: r.addr}
	}
	if !routed || !w.RespondsNow(dst) || w.faultBlackholed(dst) {
		return ProbeReply{}
	}
	if rng.Bool(w.faultPingLoss(vt.v), w.seed, uint64(dst), uint64(ttl), uint64(salt), uint64(vt.v), saltLoss) {
		return ProbeReply{}
	}
	dist := n + 1
	rev := dist + w.revSkew(dst)
	if rev < 1 {
		rev = 1
	}
	respTTL := w.hostDefaultTTL(dst) - rev
	if respTTL < 1 {
		respTTL = 1
	}
	p, _ := w.popOf(dst)
	return ProbeReply{Kind: EchoReply, RespTTL: respTTL, RTT: w.rttProfile(p).RTT(w.seed, dst, int(salt))}
}

// ScanPing mirrors World.ScanPing (the census answer does not depend on
// the vantage).
func (vt *Vantage) ScanPing(a iputil.Addr) bool { return vt.w.ScanPing(a) }

// SrcSensitive reports whether the block's per-destination load balancers
// hash the source address (ground truth for the multi-vantage ablation).
func (w *World) SrcSensitive(b iputil.Block24) bool {
	rec := w.rec(b)
	if rec == nil {
		return false
	}
	return w.pops[w.activeEntries(rec)[0].pop].srcSens
}
