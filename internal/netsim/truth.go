package netsim

import (
	"github.com/hobbitscan/hobbit/internal/iputil"
)

// TrueHomogeneous reports the planted homogeneity of a /24 at the current
// epoch: true unless the block carries (or has grown) split route
// entries. known is false for blocks outside the universe.
func (w *World) TrueHomogeneous(b iputil.Block24) (homogeneous, known bool) {
	rec := w.rec(b)
	if rec == nil {
		return false, false
	}
	return !rec.hetero() && !rec.splitAt(w.epoch), true
}

// TrueEntries returns the planted route-entry prefixes covering the block
// at the current epoch (a single /24 for homogeneous blocks).
func (w *World) TrueEntries(b iputil.Block24) []iputil.Prefix {
	rec := w.rec(b)
	if rec == nil {
		return nil
	}
	entries := w.activeEntries(rec)
	out := make([]iputil.Prefix, len(entries))
	for i, e := range entries {
		out[i] = e.prefix
	}
	return out
}

// TrueAggregate returns the pop identifier of a homogeneous block: blocks
// with the same identifier are truly co-located behind the same last-hop
// routers. ok is false for heterogeneous or unknown blocks.
func (w *World) TrueAggregate(b iputil.Block24) (int32, bool) {
	rec := w.rec(b)
	if rec == nil || rec.hetero() || rec.splitAt(w.epoch) {
		return 0, false
	}
	return w.entriesOf(rec)[0].pop, true
}

// AggregateBlocks returns the sorted /24s of a pop at the current epoch.
func (w *World) AggregateBlocks(popID int32) []iputil.Block24 {
	if popID < 0 || int(popID) >= len(w.pops) {
		return nil
	}
	var out []iputil.Block24
	for _, b := range w.blockList {
		if id, ok := w.TrueAggregate(b); ok && id == popID {
			out = append(out, b)
		}
	}
	return out
}

// HeteroBlocks returns the planted heterogeneous /24s in sorted order.
func (w *World) HeteroBlocks() []iputil.Block24 {
	out := append([]iputil.Block24(nil), w.heteroBlocks...)
	iputil.SortBlocks(out)
	return out
}

// IsStarved reports whether the block belongs to an observation-starved
// aggregate.
func (w *World) IsStarved(b iputil.Block24) bool {
	rec := w.rec(b)
	return rec != nil && rec.starved()
}

// TrueLastHopCardinality returns the planted number of last-hop routers
// (K) serving the block's first route entry; 0 for unknown blocks.
func (w *World) TrueLastHopCardinality(b iputil.Block24) int {
	rec := w.rec(b)
	if rec == nil {
		return 0
	}
	return len(w.pops[w.entriesOf(rec)[0].pop].lastHops)
}

// FlowDivergentLast reports whether the block's pop hashes flow fields
// into its last-hop choice (per-flow paths toward one address may end at
// different last hops).
func (w *World) FlowDivergentLast(b iputil.Block24) bool {
	rec := w.rec(b)
	if rec == nil {
		return false
	}
	return w.pops[w.entriesOf(rec)[0].pop].flowDiv
}

// UnresponsiveLastHop reports whether the block's pop has last-hop routers
// that never answer probes.
func (w *World) UnresponsiveLastHop(b iputil.Block24) bool {
	rec := w.rec(b)
	if rec == nil {
		return false
	}
	return w.pops[w.entriesOf(rec)[0].pop].unresp
}

// BigBlockPops returns, for each named planted aggregate, the pop
// identifiers generated for it (one per spec, several for split specs).
func (w *World) BigBlockPops() map[string][]int32 {
	out := make(map[string][]int32)
	for _, p := range w.pops {
		if p.big >= 0 {
			name := w.cfg.BigBlocks[p.big].Name
			out[name] = append(out[name], p.id)
		}
	}
	return out
}

// PopKind returns the host-population kind of the given pop.
func (w *World) PopKind(popID int32) BlockKind {
	if popID < 0 || int(popID) >= len(w.pops) {
		return KindResidential
	}
	return w.pops[popID].kind
}

// PopOfAddr returns the pop identifier serving an address.
func (w *World) PopOfAddr(a iputil.Addr) (int32, bool) {
	p, ok := w.popOf(a)
	if !ok {
		return 0, false
	}
	return p.id, true
}
