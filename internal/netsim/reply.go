package netsim

import (
	"hash/fnv"
	"time"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/rng"
	"github.com/hobbitscan/hobbit/internal/rttmodel"
)

// ReplyKind classifies a probe outcome.
type ReplyKind int

// Probe outcomes.
const (
	NoReply ReplyKind = iota
	TTLExceeded
	EchoReply
)

// ProbeReply is the world's answer to one TTL-limited probe.
type ProbeReply struct {
	Kind ReplyKind
	// From is the router interface that sent a TTL-exceeded message.
	From iputil.Addr
	// RespTTL is the received TTL field of an echo reply, which encodes
	// the destination's default TTL minus the reverse hop count.
	RespTTL int
	// RTT is the probe round-trip time for replies.
	RTT time.Duration
}

// --- Host model: pure functions of (seed, address) ---

func (w *World) activityMean(rec *blockRec) float64 {
	switch {
	case rec.starved():
		return w.cfg.ActiveMeanStarved
	case rec.lowActivity():
		return w.cfg.ActiveMeanLow
	default:
		return w.cfg.ActiveMeanHigh
	}
}

// buildRate26 derives the activity rate stored in blockRec.rate26; kept
// identical to the historical per-probe computation so precomputing it
// changes no reply.
func (w *World) buildRate26(b iputil.Block24, rec *blockRec, q int) float64 {
	mu := w.activityMean(rec)
	noisy := rng.Norm(mu, mu/2.5, w.seed, uint64(b), uint64(q), saltRate26)
	if noisy < 0.15 {
		noisy = 0.15
	}
	if noisy > 48 {
		noisy = 48
	}
	return noisy / 64
}

// ScanActive reports whether the address answered the ICMP census scan
// (the ZMap snapshot taken the day before the current epoch's
// measurement). Activity is correlated across epochs: a host flips state
// with probability EpochChurn per epoch, keeping population density
// stable while individual hosts come and go.
//
//hobbit:hotpath
func (w *World) ScanActive(a iputil.Addr) bool {
	rec := w.rec(a.Block24())
	if rec == nil {
		return false
	}
	return w.scanActiveRec(rec, a)
}

// scanActiveRec is ScanActive with the block record already resolved
// (rates are clamped ≥ 0.15/64 at build time, so a present record always
// has a non-zero rate — the zero-rate guard is the nil-record case).
//
//hobbit:hotpath
func (w *World) scanActiveRec(rec *blockRec, a iputil.Addr) bool {
	rate := rec.rate26[a.Block26()]
	active := rng.Bool(rate, w.seed, uint64(a), saltActive)
	if w.epoch > 0 && w.cfg.EpochChurn > 0 {
		if active {
			if rng.Bool(w.cfg.EpochChurn, w.seed, uint64(a), uint64(w.epoch), saltEpochAct) {
				active = false
			}
		} else if rate < 1 {
			// Arrivals balance departures so density stays stable.
			pOn := w.cfg.EpochChurn * rate / (1 - rate)
			if pOn > 1 {
				pOn = 1
			}
			if rng.Bool(pOn, w.seed, uint64(a), uint64(w.epoch), saltEpochAct) {
				active = true
			}
		}
	}
	return active
}

// persists reports whether a scan-active host still answers at probe time;
// the paper saw 54.05M of 64.45M probed destinations respond. Hosts in
// low-activity blocks churn harder.
//
//hobbit:hotpath
func (w *World) persists(a iputil.Addr) bool {
	rec := w.rec(a.Block24())
	p := w.cfg.PersistProb
	if rec != nil && rec.lowActivity() {
		p = w.cfg.PersistProbLow
	}
	return rng.Bool(p, w.seed, w.epochKey(a), saltPersist)
}

// persistsRec is persists with the block record already resolved.
//
//hobbit:hotpath
func (w *World) persistsRec(rec *blockRec, a iputil.Addr) bool {
	p := w.cfg.PersistProb
	if rec.lowActivity() {
		p = w.cfg.PersistProbLow
	}
	return rng.Bool(p, w.seed, w.epochKey(a), saltPersist)
}

// RespondsNow reports whether the destination answers probes at
// measurement time: the host must be up and its aggregate's edge must not
// be suffering an outage.
//
//hobbit:hotpath
func (w *World) RespondsNow(a iputil.Addr) bool {
	rec := w.rec(a.Block24())
	if rec == nil {
		return false
	}
	return w.respondsNowRec(rec, a)
}

// respondsNowRec is RespondsNow with the block record already resolved.
//
//hobbit:hotpath
func (w *World) respondsNowRec(rec *blockRec, a iputil.Addr) bool {
	if !w.scanActiveRec(rec, a) || !w.persistsRec(rec, a) {
		return false
	}
	if w.epoch > 0 {
		if p, ok := w.popOfRec(rec, a); ok && w.popDown(p) {
			return false
		}
	}
	return true
}

// ScanPing answers an echo request sent at census time (the ZMap snapshot
// taken the day before the measurement): availability churn between scan
// and measurement has not yet happened.
//
//hobbit:hotpath
func (w *World) ScanPing(a iputil.Addr) bool {
	rec := w.rec(a.Block24())
	if rec == nil {
		return false
	}
	if _, ok := w.popOfRec(rec, a); !ok {
		return false
	}
	return w.scanActiveRec(rec, a)
}

var defaultTTLs = [3]int{64, 128, 255}

// hostDefaultTTL returns the initial TTL the destination's OS writes into
// echo replies.
//
//hobbit:hotpath
func (w *World) hostDefaultTTL(a iputil.Addr) int {
	return defaultTTLs[rng.WeightedChoice(w.cfg.TTLWeights[:], w.seed, uint64(a), saltTTL)]
}

// revSkewWeights is the distribution of non-zero reverse-minus-forward
// path-length skews; hoisted to package scope so the hot path builds no
// slice literal.
var revSkewWeights = []float64{0.4, 0.4, 0.2}

// revSkew is the difference between the host's reverse and forward path
// lengths; non-zero skews exercise the prober's first_ttl halving logic.
//
//hobbit:hotpath
func (w *World) revSkew(a iputil.Addr) int {
	if !rng.Bool(w.cfg.PReverseSkew, w.seed, uint64(a), saltSkew) {
		return 0
	}
	switch rng.WeightedChoice(revSkewWeights, w.seed, uint64(a), saltSkew, 1) {
	case 0:
		return -1
	case 1:
		return 1
	default:
		return 2
	}
}

// hashString is the build-time string hash behind region RTT bases. It
// allocates (fnv.New64a escapes through the hash.Hash64 interface), so the
// probe hot path never calls it: precompute stores the result on the
// region and the derived profile on each pop.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// rttProfile returns the delay model for the pop's host population,
// precomputed at World construction.
//
//hobbit:hotpath
func (w *World) rttProfile(p *pop) rttmodel.Profile {
	return p.rtt
}

// buildRTTProfile derives a pop's delay model from its region and kind;
// called once per pop by precompute. The base draw is keyed by the
// region-name hash exactly as the historical per-probe path was.
func (w *World) buildRTTProfile(p *pop) rttmodel.Profile {
	base := time.Duration(20+rng.Float64(w.seed, p.as.region.nameHash)*180) * time.Millisecond
	switch p.kind {
	case KindCellular:
		return rttmodel.Cellular(base, 15*time.Millisecond, 900*time.Millisecond)
	case KindDatacenter:
		return rttmodel.Wired(base, 2*time.Millisecond)
	default:
		return rttmodel.Wired(base, 8*time.Millisecond)
	}
}

// precompute derives every build-time constant the probe hot path reads:
// region-name hashes, per-pop RTT profiles, and per-(block, /26) activity
// rates. Called once at the end of New, after populations exist.
func (w *World) precompute() {
	for _, r := range w.regions {
		r.nameHash = hashString(r.name)
	}
	for _, p := range w.pops {
		p.rtt = w.buildRTTProfile(p)
	}
	for i, b := range w.blockList {
		rec := &w.recs[i]
		for q := 0; q < 4; q++ {
			rec.rate26[q] = w.buildRate26(b, rec, q)
		}
	}
}

// --- Probe primitives ---

// Ping sends an ICMP echo request to dst. seq distinguishes probes in a
// train (the first probe to a cellular host pays the radio-promotion
// delay). ok is false when the destination does not answer.
//
//hobbit:hotpath
func (w *World) Ping(dst iputil.Addr, seq int) (ProbeReply, bool) {
	rec := w.rec(dst.Block24())
	if rec == nil {
		return ProbeReply{}, false
	}
	p, routed := w.popOfRec(rec, dst)
	if !routed || !w.respondsNowRec(rec, dst) {
		return ProbeReply{}, false
	}
	if w.faultBlackholed(dst) {
		return ProbeReply{}, false
	}
	if rng.Bool(w.faultPingLoss(0), w.seed, uint64(dst), uint64(seq), saltLoss) {
		return ProbeReply{}, false
	}
	dist, _ := w.forwardDist(0, dst)
	rev := dist + w.revSkew(dst)
	if rev < 1 {
		rev = 1
	}
	respTTL := w.hostDefaultTTL(dst) - rev
	if respTTL < 1 {
		respTTL = 1
	}
	return ProbeReply{
		Kind:    EchoReply,
		RespTTL: respTTL,
		RTT:     w.rttProfile(p).RTT(w.seed, dst, seq),
	}, true
}

// PingRTT implements rttmodel.Pinger for the cellular detector.
func (w *World) PingRTT(dst iputil.Addr, seq int) (time.Duration, bool) {
	r, ok := w.Ping(dst, seq)
	if !ok {
		return 0, false
	}
	return r.RTT, true
}

// Probe sends a TTL-limited probe toward dst. flowID selects the per-flow
// load-balanced path (the header fields Paris traceroute controls); salt
// distinguishes retransmissions so that rate-limiting drops are not
// deterministic across retries.
//
//hobbit:hotpath
func (w *World) Probe(dst iputil.Addr, ttl int, flowID uint16, salt uint32) ProbeReply {
	if ttl < 1 {
		return ProbeReply{}
	}
	n, routed, hop := w.probeHop(0, dst, flowID, ttl)
	if ttl <= n {
		if ttl > blackholeCoreHops && w.faultBlackholed(dst) {
			// The withdrawn entry keeps traffic from reaching routers
			// past the backbone core.
			return ProbeReply{}
		}
		r := w.routers[hop]
		if !r.responsive {
			return ProbeReply{}
		}
		if rng.Bool(w.faultRateLimit(0, dst), w.seed, uint64(dst), uint64(ttl), uint64(flowID), uint64(salt), saltRate) {
			return ProbeReply{}
		}
		return ProbeReply{Kind: TTLExceeded, From: r.addr}
	}
	if !routed {
		// Beyond the vantage point's access routers there is no route
		// toward an unallocated destination.
		return ProbeReply{}
	}
	rec := w.rec(dst.Block24())
	if rec == nil || !w.respondsNowRec(rec, dst) || w.faultBlackholed(dst) {
		return ProbeReply{}
	}
	if rng.Bool(w.faultPingLoss(0), w.seed, uint64(dst), uint64(ttl), uint64(salt), saltLoss) {
		return ProbeReply{}
	}
	dist := n + 1
	rev := dist + w.revSkew(dst)
	if rev < 1 {
		rev = 1
	}
	respTTL := w.hostDefaultTTL(dst) - rev
	if respTTL < 1 {
		respTTL = 1
	}
	p, _ := w.popOfRec(rec, dst)
	return ProbeReply{Kind: EchoReply, RespTTL: respTTL, RTT: w.rttProfile(p).RTT(w.seed, dst, int(salt))}
}
