package netsim

import (
	"sort"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/rng"
)

// Epoch support: the paper's stated future work is a longitudinal analysis
// of /24 homogeneity — how availability churn and address-exhaustion-driven
// re-allocation change the block map over time. The world models time as
// discrete epochs: host availability re-draws each epoch, DHCP-style
// subscriber populations re-address within their aggregate, and a small
// fraction of homogeneous /24s get split into sub-allocations as epochs
// advance (the Table 4 phenomenon, which the paper dates to 2015-16).

// Epoch state is separate from the immutable world so concurrent probing
// within one epoch stays race-free; advance epochs only between
// measurement campaigns.

const (
	saltEpochAct = 0xe1
	saltEpochSub = 0xe2
	saltOutage   = 0xe4
)

// popDown reports whether the pop's edge is suffering a whole-aggregate
// outage this epoch. Epoch 0 is outage-free so baselines are clean.
func (w *World) popDown(p *pop) bool {
	if w.epoch == 0 || w.cfg.POutage <= 0 {
		return false
	}
	return rng.Bool(w.cfg.POutage, w.seed, uint64(p.id), uint64(w.epoch), saltOutage)
}

// TrueOutage reports whether the block's aggregate is dark at the current
// epoch (ground truth for outage-tracking experiments).
func (w *World) TrueOutage(b iputil.Block24) bool {
	rec := w.rec(b)
	if rec == nil {
		return false
	}
	for _, e := range w.activeEntries(rec) {
		if !w.popDown(w.pops[e.pop]) {
			return false
		}
	}
	return true
}

// SetEpoch switches the world's measurement epoch. Epoch 0 reproduces the
// original single-snapshot behaviour exactly. Must not be called
// concurrently with probing. Advancing the epoch drops the route cache:
// split blocks re-enter with different entries.
func (w *World) SetEpoch(e int) {
	if e < 0 {
		e = 0
	}
	w.epoch = e
	w.invalidateRoutes()
}

// Epoch returns the current measurement epoch.
func (w *World) Epoch() int { return w.epoch }

// epochKey folds the epoch into an address-derived hash key; epoch 0 keeps
// the original key so all calibration holds.
func (w *World) epochKey(a iputil.Addr) uint64 {
	if w.epoch == 0 {
		return uint64(a)
	}
	return rng.Mix(w.seed, uint64(a), uint64(w.epoch), saltEpochAct)
}

// splitAt reports whether the block's pending sub-allocation split has
// happened by the current epoch.
func (rec *blockRec) splitAt(epoch int) bool {
	return rec.splitEpoch > 0 && epoch >= int(rec.splitEpoch)
}

// activeEntries returns the route entries in force at the current epoch.
func (w *World) activeEntries(rec *blockRec) []entry {
	if rec.splitAt(w.epoch) {
		return w.futureOf(rec)
	}
	return w.entriesOf(rec)
}

// --- Subscriber model (DHCP re-addressing) ---

// Fingerprint identifies a subscriber (an application-layer identity such
// as an SSH host key or TLS certificate) independent of its current
// address.
type Fingerprint uint64

// HostFingerprint returns the identity of the subscriber using the
// address at the current epoch. ok is false when the address does not
// answer probes (no host to fingerprint). Within one epoch the mapping is
// stable; across epochs subscribers of an aggregate re-draw addresses
// within the same aggregate, the way DHCP pools reassign leases.
func (w *World) HostFingerprint(a iputil.Addr) (Fingerprint, bool) {
	if !w.RespondsNow(a) {
		return 0, false
	}
	p, ok := w.popOf(a)
	if !ok {
		return 0, false
	}
	actives := w.popActives(p)
	i := sort.Search(len(actives), func(i int) bool { return actives[i] >= a })
	if i >= len(actives) || actives[i] != a {
		return 0, false
	}
	// The permutation assigns subscriber k to the perm[k]-th active
	// address; invert it for lookups by address.
	inv := w.popPerm(p, len(actives))
	return Fingerprint(rng.Mix(w.seed, uint64(p.id), uint64(inv[i]), saltEpochSub)), true
}

// SubscriberAddr returns the address subscriber k of the pop serving
// `anchor` uses at the current epoch. ok is false when the pop has fewer
// responsive addresses than k+1 this epoch.
func (w *World) SubscriberAddr(anchor iputil.Addr, k int) (iputil.Addr, bool) {
	p, ok := w.popOf(anchor)
	if !ok {
		return 0, false
	}
	actives := w.popActives(p)
	if k < 0 || k >= len(actives) {
		return 0, false
	}
	perm := w.popPermFwd(p, len(actives))
	return actives[perm[k]], true
}

// popActives lists the pop's probe-time responsive addresses this epoch,
// cached per (pop, epoch).
func (w *World) popActives(p *pop) []iputil.Addr {
	key := popEpochKey{pop: p.id, epoch: w.epoch}
	w.epochMu.Lock()
	if w.popActiveCache == nil {
		w.popActiveCache = make(map[popEpochKey][]iputil.Addr)
	}
	if got, ok := w.popActiveCache[key]; ok {
		w.epochMu.Unlock()
		return got
	}
	w.epochMu.Unlock()

	var out []iputil.Addr
	for i := range w.blockList {
		rec := &w.recs[i]
		for _, e := range w.activeEntries(rec) {
			if e.pop != p.id {
				continue
			}
			lo, hi := e.prefix.First(), e.prefix.Last()
			for a := lo; ; a++ {
				if w.RespondsNow(a) {
					out = append(out, a)
				}
				if a == hi {
					break
				}
			}
		}
	}
	w.epochMu.Lock()
	w.popActiveCache[key] = out
	w.epochMu.Unlock()
	return out
}

type popEpochKey struct {
	pop   int32
	epoch int
}

// popPermFwd maps subscriber index -> active-address index this epoch.
func (w *World) popPermFwd(p *pop, n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i+1, w.seed, uint64(p.id), uint64(w.epoch), uint64(i), saltEpochSub)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// popPerm returns the inverse permutation: active-address index ->
// subscriber index.
func (w *World) popPerm(p *pop, n int) []int {
	fwd := w.popPermFwd(p, n)
	inv := make([]int, n)
	for k, idx := range fwd {
		inv[idx] = k
	}
	return inv
}

// FutureSplitters returns the homogeneous /24s that will split into
// sub-allocations at a later epoch, with the epoch each splits at.
func (w *World) FutureSplitters() map[iputil.Block24]int {
	out := make(map[iputil.Block24]int)
	for i, b := range w.blockList {
		if e := w.recs[i].splitEpoch; e > 0 {
			out[b] = int(e)
		}
	}
	return out
}
