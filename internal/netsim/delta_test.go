package netsim

import (
	"reflect"
	"testing"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

// fakeDeltaFaults extends fakeFaults with a canned EpochDelta answer.
type fakeDeltaFaults struct {
	fakeFaults
	delta RouteDelta
}

func (f *fakeDeltaFaults) EpochDelta(e1, e2 int) RouteDelta { return f.delta }

func TestSetFaultEpochPinsFaultQueriesOnly(t *testing.T) {
	w := testWorld(t, 120)
	var seen []int
	w.SetFaults(&fakeFaults{
		flap: func(epoch int, b iputil.Block24) (uint64, bool) {
			seen = append(seen, epoch)
			return 0, false
		},
	})

	if got := w.FaultEpoch(); got != 0 {
		t.Fatalf("FaultEpoch with no pin = %d, want measurement epoch 0", got)
	}
	w.SetFaultEpoch(7)
	if got := w.FaultEpoch(); got != 7 {
		t.Fatalf("FaultEpoch after pin = %d, want 7", got)
	}
	if got := w.Epoch(); got != 0 {
		t.Fatalf("measurement epoch moved to %d on SetFaultEpoch", got)
	}
	b := w.Blocks()[0]
	w.faultFlap(b)
	if len(seen) == 0 || seen[len(seen)-1] != 7 {
		t.Fatalf("faultFlap consulted epochs %v, want pinned 7", seen)
	}
	w.SetFaultEpoch(-1)
	if got := w.FaultEpoch(); got != 0 {
		t.Fatalf("FaultEpoch after clearing pin = %d, want 0", got)
	}
	w.faultFlap(b)
	if seen[len(seen)-1] != 0 {
		t.Fatalf("faultFlap consulted epoch %d after clear, want 0", seen[len(seen)-1])
	}
}

// The whole point of the fault-epoch split: advancing it must not
// re-draw host availability, or the monitor's cached measurements for
// unchanged blocks would diverge from a from-scratch run.
func TestSetFaultEpochKeepsCensusFixed(t *testing.T) {
	w := testWorld(t, 120)
	w.SetFaults(&fakeFaults{})
	scan := func() []bool {
		var out []bool
		for _, b := range w.Blocks()[:20] {
			for i := 0; i < 256; i++ {
				out = append(out, w.ScanPing(b.Addr(i)))
			}
		}
		return out
	}
	before := scan()
	w.SetFaultEpoch(5)
	if !reflect.DeepEqual(before, scan()) {
		t.Fatal("census changed when only the fault epoch advanced")
	}
}

func TestEpochDeltaDegradedCases(t *testing.T) {
	w := testWorld(t, 120)

	if blocks, all := w.EpochDelta(0, 1); blocks != nil || all {
		t.Fatalf("clean world EpochDelta = (%v, %v), want (nil, false)", blocks, all)
	}
	w.SetFaults(&fakeFaults{})
	if blocks, all := w.EpochDelta(2, 2); blocks != nil || all {
		t.Fatalf("equal-epoch EpochDelta = (%v, %v), want (nil, false)", blocks, all)
	}
	// A FaultView without delta information forces a full reprobe.
	if blocks, all := w.EpochDelta(0, 1); blocks != nil || !all {
		t.Fatalf("non-DeltaView EpochDelta = (%v, %v), want (nil, true)", blocks, all)
	}
	w.SetFaults(&fakeDeltaFaults{delta: RouteDelta{All: true}})
	if blocks, all := w.EpochDelta(0, 1); blocks != nil || !all {
		t.Fatalf("All-delta EpochDelta = (%v, %v), want (nil, true)", blocks, all)
	}
}

func TestEpochDeltaExpandsScopes(t *testing.T) {
	w := testWorld(t, 400)
	universe := w.Blocks()

	// One direct block, one prefix covering a run of universe blocks,
	// and one pop scope; plus a block outside the universe and an
	// unknown pop, which must both expand to nothing.
	direct := universe[len(universe)-1]
	prefix := iputil.PrefixOf(universe[3].Addr(0), 20)
	var wantPrefix []iputil.Block24
	for _, b := range universe {
		if prefix.Contains(b.Addr(0)) {
			wantPrefix = append(wantPrefix, b)
		}
	}
	if len(wantPrefix) < 2 {
		t.Fatalf("test prefix %v covers %d universe blocks, want >= 2", prefix, len(wantPrefix))
	}
	popID, ok := w.PopOfAddr(universe[0].Addr(10))
	if !ok {
		t.Fatalf("no pop for %v", universe[0].Addr(10))
	}
	outside := iputil.Block24(0) // 0.0.0.0/24 is never in a generated universe

	w.SetFaults(&fakeDeltaFaults{delta: RouteDelta{
		Blocks:   []iputil.Block24{direct, direct, outside},
		Prefixes: []iputil.Prefix{prefix},
		Pops:     []int32{popID, 1 << 30},
	}})
	blocks, all := w.EpochDelta(0, 1)
	if all {
		t.Fatal("scoped delta reported all=true")
	}
	want := map[iputil.Block24]bool{direct: true}
	for _, b := range wantPrefix {
		want[b] = true
	}
	got := make(map[iputil.Block24]bool, len(blocks))
	for i, b := range blocks {
		if i > 0 && blocks[i-1] >= b {
			t.Fatalf("EpochDelta result unsorted or duplicated at %d: %v >= %v", i, blocks[i-1], b)
		}
		got[b] = true
	}
	if got[outside] {
		t.Fatal("EpochDelta returned a block outside the universe")
	}
	for b := range want {
		if !got[b] {
			t.Fatalf("EpochDelta missing scoped block %v", b)
		}
	}
	// The pop's member blocks must all be present.
	popHit := false
	for _, b := range universe {
		member := false
		for i := 0; i < 256 && !member; i += 32 {
			if id, ok := w.PopOfAddr(b.Addr(i)); ok && id == popID {
				member = true
			}
		}
		if member {
			popHit = true
			if !got[b] {
				t.Fatalf("EpochDelta missing pop member block %v", b)
			}
		}
	}
	if !popHit {
		t.Fatal("pop scope matched no universe blocks")
	}
}
