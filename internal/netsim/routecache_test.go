package netsim

import (
	"context"
	"testing"

	"github.com/hobbitscan/hobbit/internal/parallel"
)

// TestProbeCacheIdentical holds a cached and a cache-disabled world side by
// side and demands bit-identical replies — across epochs (which change
// routes for split blocks and draw outages), flow identifiers, TTLs,
// retransmission salts, vantages, and pings. This is the cache's whole
// contract: memoization may change timing, never bytes.
func TestProbeCacheIdentical(t *testing.T) {
	cfg := testConfig(160)
	cached := MustNew(cfg)
	cfg.DisableRouteCache = true
	plain := MustNew(cfg)
	if cached.routes == nil || plain.routes != nil {
		t.Fatal("cache flag did not take effect")
	}

	for epoch := 0; epoch <= 2; epoch++ {
		cached.SetEpoch(epoch)
		plain.SetEpoch(epoch)
		for _, b := range cached.Blocks() {
			for _, i := range []int{0, 1, 97, 255} {
				dst := b.Addr(i)
				for _, flow := range []uint16{0, 1, 5} {
					for ttl := 1; ttl <= 10; ttl++ {
						for _, salt := range []uint32{1, 2} {
							got := cached.Probe(dst, ttl, flow, salt)
							want := plain.Probe(dst, ttl, flow, salt)
							if got != want {
								t.Fatalf("epoch %d Probe(%v, ttl=%d, flow=%d, salt=%d): cached %+v != plain %+v",
									epoch, dst, ttl, flow, salt, got, want)
							}
						}
					}
				}
				for seq := 0; seq < 2; seq++ {
					gr, gok := cached.Ping(dst, seq)
					wr, wok := plain.Ping(dst, seq)
					if gr != wr || gok != wok {
						t.Fatalf("epoch %d Ping(%v, %d): cached (%+v, %v) != plain (%+v, %v)",
							epoch, dst, seq, gr, gok, wr, wok)
					}
				}
			}
		}
		for v := 0; v < cached.NumVantages(); v++ {
			cv, pv := cached.Vantage(v), plain.Vantage(v)
			for _, b := range cached.Blocks()[:40] {
				dst := b.Addr(9)
				for ttl := 1; ttl <= 9; ttl++ {
					got := cv.Probe(dst, ttl, 3, 1)
					want := pv.Probe(dst, ttl, 3, 1)
					if got != want {
						t.Fatalf("epoch %d vantage %d Probe(%v, ttl=%d): cached %+v != plain %+v",
							epoch, v, dst, ttl, got, want)
					}
				}
			}
		}
	}
}

// TestRouteCacheReuse pins the memoization itself: once a (dst, flow)
// route is materialized, repeating the probe must not add misses, and
// SetEpoch must drop every entry.
func TestRouteCacheReuse(t *testing.T) {
	w := testWorld(t, 40)
	dst := w.Blocks()[0].Addr(7)
	for ttl := 1; ttl <= 8; ttl++ {
		w.Probe(dst, ttl, 2, 1)
	}
	misses, capacity := w.RouteCacheStats()
	if capacity == 0 {
		t.Fatal("route cache disabled in default config")
	}
	if misses == 0 {
		t.Fatal("no route was materialized")
	}
	for ttl := 1; ttl <= 8; ttl++ {
		w.Probe(dst, ttl, 2, 99)
	}
	if again, _ := w.RouteCacheStats(); again != misses {
		t.Fatalf("repeat probes added misses: %d -> %d", misses, again)
	}
	w.SetEpoch(1)
	if after, _ := w.RouteCacheStats(); after != 0 {
		t.Fatalf("SetEpoch kept %d misses of state", after)
	}
}

// TestRouteCacheConcurrent hammers one world from the sanctioned worker
// pool under -race: concurrent hits, misses, and slot overwrites must stay
// race-free and agree with a serial replay.
func TestRouteCacheConcurrent(t *testing.T) {
	w := testWorld(t, 60)
	blocks := w.Blocks()
	replies := make([]ProbeReply, len(blocks)*8)
	pool := parallel.Pool{Workers: 8}
	if err := pool.ForEach(context.Background(), len(blocks), func(i int) {
		dst := blocks[i%len(blocks)].Addr(i % 256)
		for ttl := 1; ttl <= 8; ttl++ {
			replies[i*8+ttl-1] = w.Probe(dst, ttl, uint16(i%4), 1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i, b := range blocks {
		dst := b.Addr(i % 256)
		for ttl := 1; ttl <= 8; ttl++ {
			if want := w.Probe(dst, ttl, uint16(i%4), 1); replies[i*8+ttl-1] != want {
				t.Fatalf("concurrent Probe(%v, ttl=%d) = %+v, serial replay %+v",
					dst, ttl, replies[i*8+ttl-1], want)
			}
		}
	}
}
