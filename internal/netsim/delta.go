package netsim

import (
	"sort"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

// Fault-epoch separation: the continuous-monitoring mode advances fault
// plans epoch by epoch while holding everything else about the world —
// host availability, scheduled splits, pop outages, subscriber
// re-addressing — fixed. That split is what makes selective reprobing
// sound: SetEpoch re-draws per-address persistence for the whole
// universe (epochKey), so advancing it invalidates every measurement,
// while SetFaultEpoch moves only the epoch the FaultView is evaluated
// at, so measurements can change only inside the scopes the plan
// touches. EpochDelta is the query that names those scopes as /24
// blocks; everything outside the returned set is bit-identical across
// the two epochs, which the differential harness
// (harness.CheckIncremental) enforces.

// SetFaultEpoch pins the epoch the active fault plan is evaluated at,
// independent of the world's measurement epoch. Like SetEpoch it must
// not be called concurrently with probing: flaps change routes, so the
// route cache is dropped wholesale. A negative epoch clears the pin,
// returning fault evaluation to the measurement epoch.
func (w *World) SetFaultEpoch(e int) {
	if e < 0 {
		w.faultEpochSet = false
		w.faultEpoch = 0
	} else {
		w.faultEpochSet = true
		w.faultEpoch = e
	}
	w.invalidateRoutes()
}

// FaultEpoch returns the epoch fault queries are evaluated at: the
// pinned fault epoch when SetFaultEpoch set one, the measurement epoch
// otherwise.
func (w *World) FaultEpoch() int { return w.faultsEpoch() }

// RouteDelta names the fault-plan scopes whose measurement-visible
// state differs between two epochs. Scopes are conservative supersets:
// a listed block may measure identically, but no unlisted block can
// measure differently (unless All is set).
type RouteDelta struct {
	// Blocks are /24s whose last-hop partition can remap (route flaps).
	Blocks []iputil.Block24
	// Prefixes are route entries whose blackhole state toggled.
	Prefixes []iputil.Prefix
	// Pops are points of presence whose rate-storm state toggled.
	Pops []int32
	// All marks a vantage-global change (congestion onset or recovery):
	// every block's measurement may differ.
	All bool
}

// DeltaView is the optional FaultView extension the monitoring mode
// keys selective reprobing off: implementations report which scopes can
// answer differently between two epochs. faultplan.Schedule implements
// it exactly (its events are the only epoch-dependent state).
type DeltaView interface {
	FaultView
	EpochDelta(e1, e2 int) RouteDelta
}

// EpochDelta returns the sorted /24 blocks whose measurements may
// differ between fault epochs e1 and e2, expanding the active plan's
// changed scopes (flapped blocks, toggled blackhole prefixes, toggled
// storm pops) against the universe. all is true when every block may
// differ: a vantage-global change, or a fault view that does not
// implement DeltaView (no delta information — reprobe everything).
// Blocks outside the returned set answer every probe identically at
// both epochs, because the reply path's only epoch-dependent inputs
// are the fault queries and each is scoped to a destination block, a
// route prefix, a destination pop, or the vantage (faults.go).
func (w *World) EpochDelta(e1, e2 int) (blocks []iputil.Block24, all bool) {
	if e1 == e2 || w.faults == nil {
		return nil, false
	}
	dv, ok := w.faults.(DeltaView)
	if !ok {
		return nil, true
	}
	d := dv.EpochDelta(e1, e2)
	if d.All {
		return nil, true
	}
	seen := make(map[iputil.Block24]bool)
	add := func(b iputil.Block24) {
		if !seen[b] && w.rec(b) != nil {
			seen[b] = true
			blocks = append(blocks, b)
		}
	}
	for _, b := range d.Blocks {
		add(b)
	}
	for _, p := range d.Prefixes {
		lo, hi := p.First().Block24(), p.Last().Block24()
		// Blocks are sorted; binary-search the covered range instead of
		// scanning the universe per prefix.
		i := sort.Search(len(w.blockList), func(i int) bool { return w.blockList[i] >= lo })
		for ; i < len(w.blockList) && w.blockList[i] <= hi; i++ {
			add(w.blockList[i])
		}
	}
	if len(d.Pops) > 0 {
		idx := w.popBlocks()
		for _, id := range d.Pops {
			for _, b := range idx[id] {
				add(b)
			}
		}
	}
	iputil.SortBlocks(blocks)
	return blocks, false
}

// popBlocks returns the pop -> member-/24 index for the current
// measurement epoch, built lazily (splits move blocks between pops, so
// the index is epoch-keyed like popActiveCache).
func (w *World) popBlocks() map[int32][]iputil.Block24 {
	w.epochMu.Lock()
	if w.popBlockCache != nil && w.popBlockEpoch == w.epoch {
		idx := w.popBlockCache
		w.epochMu.Unlock()
		return idx
	}
	w.epochMu.Unlock()

	idx := make(map[int32][]iputil.Block24)
	for i, b := range w.blockList {
		rec := &w.recs[i]
		prev := int32(-1)
		for _, e := range w.activeEntries(rec) {
			if e.pop == prev {
				continue
			}
			prev = e.pop
			members := idx[e.pop]
			if n := len(members); n == 0 || members[n-1] != b {
				idx[e.pop] = append(members, b)
			}
		}
	}
	w.epochMu.Lock()
	w.popBlockCache = idx
	w.popBlockEpoch = w.epoch
	w.epochMu.Unlock()
	return idx
}
