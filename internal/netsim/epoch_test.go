package netsim

import (
	"testing"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

func TestEpochZeroUnchanged(t *testing.T) {
	w1 := testWorld(t, 400)
	w2 := testWorld(t, 400)
	w2.SetEpoch(3)
	w2.SetEpoch(0)
	// Returning to epoch 0 restores the original behaviour exactly.
	for _, b := range w1.Blocks()[:40] {
		for i := 0; i < 256; i += 17 {
			a := b.Addr(i)
			if w1.RespondsNow(a) != w2.RespondsNow(a) {
				t.Fatalf("epoch-0 behaviour changed for %v", a)
			}
		}
	}
	if w1.Epoch() != 0 {
		t.Error("default epoch should be 0")
	}
	w1.SetEpoch(-3)
	if w1.Epoch() != 0 {
		t.Error("negative epochs clamp to 0")
	}
}

func TestEpochChurn(t *testing.T) {
	w := testWorld(t, 400)
	same, diff := 0, 0
	for _, b := range w.Blocks()[:60] {
		for i := 0; i < 256; i += 5 {
			a := b.Addr(i)
			w.SetEpoch(0)
			r0 := w.RespondsNow(a)
			w.SetEpoch(1)
			r1 := w.RespondsNow(a)
			if r0 == r1 {
				same++
			} else {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("no availability churn between epochs")
	}
	// Churn is partial, not total: most addresses are inactive in both
	// epochs.
	if same == 0 || diff > same {
		t.Errorf("implausible churn: same=%d diff=%d", same, diff)
	}
}

func TestFutureSplitters(t *testing.T) {
	w := testWorld(t, 4000)
	splitters := w.FutureSplitters()
	if len(splitters) == 0 {
		t.Fatal("no future splitters planted")
	}
	for b, epoch := range splitters {
		if epoch < 1 || epoch > 6 {
			t.Fatalf("split epoch %d out of range", epoch)
		}
		w.SetEpoch(0)
		if hom, _ := w.TrueHomogeneous(b); !hom {
			t.Fatalf("splitter %v not homogeneous at epoch 0", b)
		}
		if len(w.TrueEntries(b)) != 1 {
			t.Fatalf("splitter %v has multiple entries at epoch 0", b)
		}
		w.SetEpoch(epoch)
		if hom, _ := w.TrueHomogeneous(b); hom {
			t.Fatalf("splitter %v still homogeneous at epoch %d", b, epoch)
		}
		entries := w.TrueEntries(b)
		if len(entries) < 2 {
			t.Fatalf("splitter %v has %d entries after split", b, len(entries))
		}
		// The split is WHOIS-visible (registered at build).
		if !w.Whois().IsSplit(b) {
			t.Fatalf("splitter %v missing WHOIS records", b)
		}
		// Probing an address now routes to a sub-pop last hop distinct
		// from the original pop's.
		w.SetEpoch(0)
		lh0, _ := w.TrueLastHops(b.Addr(1))
		w.SetEpoch(epoch)
		lh1, _ := w.TrueLastHops(b.Addr(1))
		if len(lh0) == 0 || len(lh1) == 0 {
			t.Fatal("missing last hops")
		}
		if lh0[0] == lh1[0] {
			t.Fatalf("splitter %v kept its last hop across the split", b)
		}
		break // one detailed check suffices; the loop head covers the rest
	}
	w.SetEpoch(0)
}

func TestSubscriberModel(t *testing.T) {
	w := testWorld(t, 300)
	// Find a responsive address in a homogeneous block.
	var anchor iputil.Addr
	for _, b := range w.Blocks() {
		if hom, _ := w.TrueHomogeneous(b); !hom {
			continue
		}
		for i := 1; i < 255; i++ {
			if a := b.Addr(i); w.RespondsNow(a) {
				anchor = a
				break
			}
		}
		if anchor != 0 {
			break
		}
	}
	if anchor == 0 {
		t.Fatal("no responsive anchor")
	}
	fp, ok := w.HostFingerprint(anchor)
	if !ok {
		t.Fatal("responsive address has no fingerprint")
	}
	// The mapping is stable within an epoch.
	fp2, _ := w.HostFingerprint(anchor)
	if fp != fp2 {
		t.Error("fingerprint not stable within epoch")
	}
	// SubscriberAddr inverts HostFingerprint: find the subscriber index
	// whose address is the anchor.
	found := false
	for k := 0; k < 4096; k++ {
		a, ok := w.SubscriberAddr(anchor, k)
		if !ok {
			break
		}
		if a == anchor {
			found = true
			// The same subscriber at the next epoch sits at some
			// address of the same pop and carries the same
			// fingerprint.
			w.SetEpoch(1)
			a1, ok1 := w.SubscriberAddr(anchor, k)
			if ok1 {
				fp1, okf := w.HostFingerprint(a1)
				if !okf {
					t.Error("subscriber's new address has no fingerprint")
				}
				if okf && fp1 != fingerprintAt(w, anchor, k) {
					t.Error("fingerprint changed across epochs")
				}
				pop0, _ := w.PopOfAddr(anchor)
				pop1, _ := w.PopOfAddr(a1)
				if pop0 != pop1 {
					t.Error("subscriber left its aggregate")
				}
			}
			w.SetEpoch(0)
			break
		}
	}
	if !found {
		t.Fatal("anchor not found among subscribers")
	}
	// Unresponsive addresses have no fingerprint.
	if _, ok := w.HostFingerprint(iputil.MustParseAddr("223.255.255.1")); ok {
		t.Error("unrouted address has a fingerprint")
	}
}

// fingerprintAt recomputes a subscriber's fingerprint from its index.
func fingerprintAt(w *World, anchor iputil.Addr, k int) Fingerprint {
	a, ok := w.SubscriberAddr(anchor, k)
	if !ok {
		return 0
	}
	fp, _ := w.HostFingerprint(a)
	return fp
}
