package netsim

import (
	"testing"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

// fakeFaults is a programmable FaultView; nil hooks answer "no fault",
// so each test wires only the surface it exercises. (The real
// implementation lives in internal/faultplan, which imports netsim — so
// netsim's own tests use this double.)
type fakeFaults struct {
	blackhole func(epoch int, dst iputil.Addr) bool
	rate      func(epoch int, pop int32) float64
	loss      func(epoch int, v int) float64
	flap      func(epoch int, b iputil.Block24) (uint64, bool)
}

func (f *fakeFaults) Blackholed(epoch int, dst iputil.Addr) bool {
	if f.blackhole == nil {
		return false
	}
	return f.blackhole(epoch, dst)
}

func (f *fakeFaults) RateBoost(epoch int, pop int32) float64 {
	if f.rate == nil {
		return 0
	}
	return f.rate(epoch, pop)
}

func (f *fakeFaults) LossBoost(epoch int, v int) float64 {
	if f.loss == nil {
		return 0
	}
	return f.loss(epoch, v)
}

func (f *fakeFaults) FlapKey(epoch int, b iputil.Block24) (uint64, bool) {
	if f.flap == nil {
		return 0, false
	}
	return f.flap(epoch, b)
}

// respondingAddr finds an address in b that answers pings on the clean
// world; ok is false when the block has none.
func respondingAddr(w *World, b iputil.Block24) (iputil.Addr, bool) {
	for i := 0; i < 256; i++ {
		a := b.Addr(i)
		if _, ok := w.Ping(a, 0); ok {
			return a, true
		}
	}
	return 0, false
}

func TestFaultBlackhole(t *testing.T) {
	w := testWorld(t, 60)
	blocks := w.Blocks()
	victim := blocks[0]
	var dst iputil.Addr
	found := false
	for _, b := range blocks {
		if a, ok := respondingAddr(w, b); ok {
			victim, dst, found = b, a, true
			break
		}
	}
	if !found {
		t.Fatal("no responding address in any block")
	}
	scanBefore := w.ScanPing(dst)

	w.SetFaults(&fakeFaults{blackhole: func(_ int, a iputil.Addr) bool {
		return a.Block24() == victim
	}})
	defer w.SetFaults(nil)

	if _, ok := w.Ping(dst, 0); ok {
		t.Error("blackholed destination answered a ping")
	}
	if _, ok := w.Vantage(0).Ping(dst, 0); ok {
		t.Error("blackholed destination answered a vantage ping")
	}
	// The census snapshot predates the fault window.
	if got := w.ScanPing(dst); got != scanBefore {
		t.Error("blackhole changed the census answer")
	}
	// Probes die past the backbone core but transit still answers:
	// every reply at ttl <= blackholeCoreHops is allowed, everything
	// beyond must be silence.
	sawTransit := false
	for ttl := 1; ttl <= 24; ttl++ {
		for flow := uint16(0); flow < 4; flow++ {
			r := w.Probe(dst, ttl, flow, uint32(ttl))
			if r.Kind == NoReply {
				continue
			}
			if ttl > blackholeCoreHops {
				t.Fatalf("reply kind %d at ttl %d past the core toward a blackholed dst", r.Kind, ttl)
			}
			sawTransit = true
		}
	}
	if !sawTransit {
		t.Error("no transit replies at all below the core boundary")
	}
	// Unrelated destinations reply exactly as on a clean world.
	if other, ok := respondingAddr(w, blocks[len(blocks)-1]); ok && other.Block24() != victim {
		if _, okPing := w.Ping(other, 0); !okPing {
			t.Error("blackhole leaked onto an unrelated block")
		}
	}

	// Removing the plan restores the clean world bit-for-bit.
	w.SetFaults(nil)
	if _, ok := w.Ping(dst, 0); !ok {
		t.Error("destination still dark after SetFaults(nil)")
	}
}

func TestFaultRateStormDropsTransit(t *testing.T) {
	w := testWorld(t, 60)
	dst, ok := respondingAddr(w, w.Blocks()[0])
	if !ok {
		t.Skip("no responding address in first block")
	}
	pop, ok := w.PopOfAddr(dst)
	if !ok {
		t.Fatal("responding address not routed")
	}
	// A full-severity storm saturates the drop probability: every
	// TTL-exceeded reply toward the pop disappears, while echo replies
	// (the destination itself) survive.
	w.SetFaults(&fakeFaults{rate: func(_ int, p int32) float64 {
		if p == pop {
			return 1
		}
		return 0
	}})
	defer w.SetFaults(nil)
	for ttl := 1; ttl <= 11; ttl++ {
		for flow := uint16(0); flow < 4; flow++ {
			if r := w.Probe(dst, ttl, flow, 1); r.Kind == TTLExceeded {
				t.Fatalf("TTL-exceeded reply at ttl %d under a saturating storm", ttl)
			}
			if r := w.Vantage(0).Probe(dst, ttl, flow, 1); r.Kind == TTLExceeded {
				t.Fatalf("vantage TTL-exceeded reply at ttl %d under a saturating storm", ttl)
			}
		}
	}
	if _, ok := w.Ping(dst, 0); !ok {
		t.Error("storm killed echo replies; it must only drop transit replies")
	}
}

func TestFaultCongestionKillsVantage(t *testing.T) {
	w := testWorld(t, 60)
	dst, ok := respondingAddr(w, w.Blocks()[0])
	if !ok {
		t.Skip("no responding address in first block")
	}
	// Saturating loss on vantage 0 only.
	w.SetFaults(&fakeFaults{loss: func(_ int, v int) float64 {
		if v == 0 {
			return 1
		}
		return 0
	}})
	defer w.SetFaults(nil)
	if _, ok := w.Ping(dst, 0); ok {
		t.Error("ping survived saturating congestion on its vantage")
	}
	// Another vantage still reaches the destination (its loss draw is
	// independent; try a few sequence numbers).
	okOther := false
	for seq := 0; seq < 8 && !okOther; seq++ {
		_, okOther = w.Vantage(1).Ping(dst, seq)
	}
	if !okOther {
		t.Error("congestion on vantage 0 silenced vantage 1 too")
	}
}

// TestFaultFlapRemapsLastHops asserts a flap changes observed routes for
// the flapped block only, identically with and without the route cache,
// and reverts when the plan is removed.
func TestFaultFlapRemapsLastHops(t *testing.T) {
	cached := testWorld(t, 60)
	cfg := testConfig(60)
	cfg.DisableRouteCache = true
	uncached, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	lastReply := func(w *World, dst iputil.Addr) (ProbeReply, bool) {
		d, ok := w.forwardDist(0, dst)
		if !ok {
			return ProbeReply{}, false
		}
		// The last hop sits one before the destination; scan flows so
		// rate-limit losses cannot fake a mismatch.
		for flow := uint16(0); flow < 8; flow++ {
			for salt := uint32(0); salt < 4; salt++ {
				if r := w.Probe(dst, d-1, flow, salt); r.Kind == TTLExceeded {
					return r, true
				}
			}
		}
		return ProbeReply{}, false
	}

	// Pick a flap victim whose pop has several last hops (a single-hop
	// pop has nothing to remap) and a control block left alone.
	var flapped iputil.Block24
	foundVictim := false
	for _, b := range cached.Blocks() {
		if cached.TrueLastHopCardinality(b) >= 2 {
			flapped = b
			foundVictim = true
			break
		}
	}
	if !foundVictim {
		t.Fatal("no block with a multi-last-hop pop")
	}
	control := cached.Blocks()[0]
	if control == flapped {
		control = cached.Blocks()[1]
	}
	key := uint64(0xfeedbeef)
	view := &fakeFaults{flap: func(_ int, b iputil.Block24) (uint64, bool) {
		if b == flapped {
			return key, true
		}
		return 0, false
	}}

	// Collect pre-fault last hops per address, then flap and diff.
	type sample struct {
		addr  iputil.Addr
		hop   iputil.Addr
		inner bool
	}
	var samples []sample
	for _, b := range []iputil.Block24{flapped, control} {
		for i := 0; i < 256; i += 16 {
			a := b.Addr(i)
			if r, ok := lastReply(cached, a); ok {
				samples = append(samples, sample{addr: a, hop: r.From, inner: b == flapped})
			}
		}
	}
	if len(samples) == 0 {
		t.Fatal("no last-hop samples on the clean world")
	}

	cached.SetFaults(view)
	uncached.SetFaults(view)
	defer cached.SetFaults(nil)
	defer uncached.SetFaults(nil)

	changed := 0
	for _, s := range samples {
		r1, ok1 := lastReply(cached, s.addr)
		r2, ok2 := lastReply(uncached, s.addr)
		if ok1 != ok2 || (ok1 && r1.From != r2.From) {
			t.Fatalf("cached and uncached disagree for %v under a flap", s.addr)
		}
		if !ok1 {
			continue
		}
		if s.inner && r1.From != s.hop {
			changed++
		}
		if !s.inner && r1.From != s.hop {
			t.Errorf("flap leaked onto unflapped block: %v moved %v -> %v", s.addr, s.hop, r1.From)
		}
	}
	if changed == 0 {
		t.Error("flap remapped no last hop in the flapped block (pop may have one last hop; widen the sample)")
	}

	// Revert: the clean route map returns exactly.
	cached.SetFaults(nil)
	for _, s := range samples {
		if r, ok := lastReply(cached, s.addr); ok && r.From != s.hop {
			t.Errorf("route for %v did not revert after SetFaults(nil)", s.addr)
		}
	}
}

// TestFaultEpochWindow pins that the reply path hands the current epoch
// to the view, and that SetEpoch after a fault window restores clean
// behavior (the route cache is invalidated on both transitions).
func TestFaultEpochWindow(t *testing.T) {
	w := testWorld(t, 60)
	dst, ok := respondingAddr(w, w.Blocks()[0])
	if !ok {
		t.Skip("no responding address in first block")
	}
	w.SetFaults(&fakeFaults{blackhole: func(epoch int, a iputil.Addr) bool {
		return epoch == 1 && a.Block24() == dst.Block24()
	}})
	defer func() {
		w.SetFaults(nil)
		w.SetEpoch(0)
	}()

	if _, ok := w.Ping(dst, 0); !ok {
		t.Fatal("fault fired at epoch 0 despite its [1,1] window")
	}
	w.SetEpoch(1)
	if _, ok := w.Ping(dst, 0); ok {
		t.Fatal("fault inactive inside its window")
	}
	w.SetEpoch(2)
	// Epoch churn may have turned the host off at epoch 2 for reasons
	// unrelated to faults, so compare against a fault-free twin at the
	// same epoch instead of assuming ok.
	twin := testWorld(t, 60)
	twin.SetEpoch(2)
	_, wantOK := twin.Ping(dst, 0)
	if _, gotOK := w.Ping(dst, 0); gotOK != wantOK {
		t.Fatalf("post-window behavior differs from a clean world at the same epoch (got %v, want %v)", gotOK, wantOK)
	}
}

// TestFaultProbeCacheIdenticalUnderFaults extends the PR-4 cache pinning
// to faulted worlds: cached and uncached replies must match for every
// probe shape while a plan is active.
func TestFaultProbeCacheIdenticalUnderFaults(t *testing.T) {
	cfg := testConfig(40)
	cached, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgNo := testConfig(40)
	cfgNo.DisableRouteCache = true
	uncached, err := New(cfgNo)
	if err != nil {
		t.Fatal(err)
	}
	view := &fakeFaults{
		blackhole: func(_ int, a iputil.Addr) bool { return a%7 == 0 },
		rate:      func(_ int, p int32) float64 { return float64(p%3) * 0.2 },
		loss:      func(_ int, v int) float64 { return float64(v) * 0.1 },
		flap: func(_ int, b iputil.Block24) (uint64, bool) {
			if b%2 == 0 {
				return uint64(b) * 31, true
			}
			return 0, false
		},
	}
	cached.SetFaults(view)
	uncached.SetFaults(view)
	for _, b := range cached.Blocks()[:8] {
		for i := 0; i < 256; i += 32 {
			dst := b.Addr(i)
			for ttl := 1; ttl <= 12; ttl += 3 {
				for flow := uint16(0); flow < 3; flow++ {
					r1 := cached.Probe(dst, ttl, flow, 9)
					r2 := uncached.Probe(dst, ttl, flow, 9)
					if r1 != r2 {
						t.Fatalf("cached/uncached mismatch dst=%v ttl=%d flow=%d: %+v vs %+v", dst, ttl, flow, r1, r2)
					}
				}
			}
		}
	}
}
