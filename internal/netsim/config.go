// Package netsim implements the synthetic Internet substrate the Hobbit
// pipeline is measured against. It stands in for the live IPv4 network of
// the original study: a deterministic world of autonomous systems, route
// entries, router topology with per-flow and per-destination ECMP load
// balancers, and host populations with realistic ICMP behaviour (default
// TTLs, rate limiting, unresponsive routers, availability churn).
//
// The world answers exactly the two probe primitives the measurement stack
// needs — ICMP echo and TTL-limited probes — through pure functions of a
// seed, so replies are reproducible and independent of probe order, just
// as a (quiescent) real network would behave. Ground-truth accessors
// expose the planted homogeneity structure for validation.
package netsim

import (
	"errors"
	"fmt"

	"github.com/hobbitscan/hobbit/internal/metadata"
)

// BlockKind describes the delay/rDNS behaviour of the hosts in a block
// population.
type BlockKind int

// Block population kinds.
const (
	KindResidential BlockKind = iota
	KindDatacenter
	KindCellular
)

// BigBlockSpec plants one named large homogeneous aggregate (the
// populations of Table 5 plus the Dublin EC2 block that surfaces in the
// clustering experiment of Figure 10).
type BigBlockSpec struct {
	Name    string
	ASN     int
	Org     string
	Country string
	City    string
	Type    metadata.OrgType
	// Size is the number of /24 blocks in the aggregate at scale 1.0.
	Size int
	Kind BlockKind
	RDNS metadata.NameKind
	// Region names both the topology region and the rDNS region label.
	Region string
	// K is the number of last-hop routers the aggregate's addresses are
	// spread across by per-destination load balancing.
	K int
	// Starved marks the aggregate's blocks as having very few active
	// hosts, so that observed last-hop sets are partial. These are the
	// aggregates that identical-set aggregation fragments and MCL
	// clustering recovers (Section 6).
	Starved bool
	// SplitInto, when positive, expands the spec into many independent
	// aggregates of at most this many /24s instead of one large one.
	// Used for the Time Warner population of the sampling experiment,
	// which needs many Hobbit blocks with distinct naming schemes.
	SplitInto int
}

// HeteroASSpec describes one AS of Table 3 that splits /24s into sub-block
// allocations, with its share of the world's heterogeneous /24s.
type HeteroASSpec struct {
	ASN     int
	Org     string
	Country string
	Type    metadata.OrgType
	// Weight is proportional to the AS's share of heterogeneous /24s.
	Weight float64
}

// Config parameterizes world generation. DefaultConfig documents the
// values tuned to reproduce the shapes of the paper's tables and figures.
type Config struct {
	Seed uint64
	// NumBlocks is the total number of /24 destination blocks in the
	// universe, including planted big aggregates and heterogeneous
	// blocks.
	NumBlocks int
	// BigBlockScale scales the planted aggregate sizes, letting tests
	// build small worlds that keep the full structure.
	BigBlockScale float64

	// --- Host population ---

	// PLowActivity is the fraction of regular blocks with marginal
	// active populations; these supply the paper's "too few active"
	// category and the /26-coverage exclusions.
	PLowActivity float64
	// ActiveMeanHigh and ActiveMeanLow are the mean number of
	// scan-active hosts per /26 in normal and low-activity blocks;
	// ActiveMeanStarved applies to observation-starved aggregates: a
	// mild reduction that keeps blocks measurable (the exhaustive
	// reprobe can still complete their last-hop sets) while the normal
	// strategy's early termination records only partial sets.
	ActiveMeanHigh    float64
	ActiveMeanLow     float64
	ActiveMeanStarved float64
	// PersistProb is the probability that a scan-active host still
	// answers at probe time; the paper observed 54.05M responsive of
	// 64.45M probed (0.84). PersistProbLow applies to hosts in
	// low-activity blocks, whose availability churns harder — these
	// supply the bulk of the "too few active at probe time" category.
	PersistProb    float64
	PersistProbLow float64
	// TTLWeights are the relative frequencies of host default TTLs
	// 64, 128, and 255.
	TTLWeights [3]float64
	// PReverseSkew is the probability that a host's reverse path length
	// differs from its forward length (exercising first_ttl halving).
	PReverseSkew float64
	// PPingLoss is the per-probe probability an echo reply is lost.
	PPingLoss float64

	// --- Routing structure ---

	// PHeterogeneous is the fraction of the universe planted as truly
	// heterogeneous /24s (split route entries).
	PHeterogeneous float64
	// PEpochSplit is the per-block probability that a regular
	// homogeneous /24 splits into sub-allocations at a later epoch,
	// driving the longitudinal drift (the paper's future work).
	PEpochSplit float64
	// POutage is the per-epoch probability that an aggregate's edge
	// goes dark (all its hosts stop answering) — the whole-block outages
	// a Trinocular-style tracker detects. Epoch 0 never has outages so
	// the baseline snapshot is clean.
	POutage float64
	// EpochChurn is the per-epoch probability that a host's long-term
	// activity flips (an active host goes away or a new one appears).
	// Availability is otherwise correlated across epochs, as real hosts
	// are.
	EpochChurn float64
	// PUnresponsiveLastHop is the fraction of aggregates whose last-hop
	// routers never answer probes.
	PUnresponsiveLastHop float64
	// PSingleLastHop is the probability that a regular aggregate has a
	// single last-hop router (K = 1).
	PSingleLastHop float64
	// KValues/KWeights give the distribution of last-hop cardinality
	// for aggregates with K > 1.
	KValues  []int
	KWeights []float64
	// PerFlowFanout is the width of the per-flow ECMP diamond in the
	// core; PerDestFanout and PerDestFanout2 are the widths of the two
	// cascaded per-destination branch stages in the destination AS
	// (cascading multiplies whole-path diversity without multiplying
	// last hops, the Section 3.1 effect).
	PerFlowFanout  int
	PerDestFanout  int
	PerDestFanout2 int
	// PFlowDivergentLast is the probability that a multi-last-hop
	// aggregate's load balancing hashes flow fields into the last-hop
	// choice too, so per-flow paths toward one address end at different
	// last hops — the Section 2.3 "routes differ due to load balancing
	// but do not converge" case.
	PFlowDivergentLast float64
	// PNoPerDestLB is the probability that a single-last-hop aggregate
	// has no per-destination branching at all, so every address shares
	// every route — the /24s the straw-man whole-route comparison still
	// judges homogeneous (the paper's residual 12%).
	PNoPerDestLB float64
	// PSharedLastHop is the probability that a regular multi-last-hop
	// aggregate reuses one last-hop router of another aggregate in the
	// same AS. Distinct aggregates then have overlapping-but-different
	// last-hop sets, which is what makes some MCL clusters genuinely
	// wrong — the population Figure 9's rule screening separates.
	PSharedLastHop float64
	// Vantages is the number of probing vantage points the world
	// supports (Section 6.1 discusses varying vantage points to reveal
	// more per-destination paths); vantage 0 is the paper's UMD source.
	Vantages int
	// DisableRouteCache turns off the per-epoch route memo (routecache.go),
	// forcing every probe to re-walk its route. Replies are bit-identical
	// either way; the switch exists for the equivalence tests and for
	// memory-constrained runs.
	DisableRouteCache bool
	// PSrcSensitiveLB is the probability that an aggregate's
	// per-destination load balancers hash the source address too, so a
	// different vantage reveals different last-hop choices.
	PSrcSensitiveLB float64
	// PRouterUnresponsive is the fraction of transit routers that never
	// answer TTL-exceeded probes (beyond last-hop behaviour).
	PRouterUnresponsive float64
	// PRateLimit is the per-probe probability that a responsive router
	// drops a TTL-exceeded reply (ICMP rate limiting).
	PRateLimit float64

	// --- Aggregate structure ---

	// AggSizeValues/AggSizeWeights give the size distribution (in /24s)
	// of regular aggregates; the heavy tail of Figure 5 comes from the
	// planted big blocks.
	AggSizeValues  []int
	AggSizeWeights []float64
	// SegmentsPerAggregate bounds how many separated contiguous runs an
	// aggregate's /24s are scattered into (Figures 7 and 8).
	SegmentsPerAggregate int
	// PStarved is the fraction of regular multi-/24 aggregates that are
	// observation-starved (low activity), feeding the clustering
	// experiment alongside the starved big blocks.
	PStarved float64

	// --- Planted populations ---

	BigBlocks []BigBlockSpec
	HeteroAS  []HeteroASSpec
	// HeteroCompositions/HeteroCompWeights give the sub-block splits of
	// heterogeneous /24s (Table 2); each composition lists prefix
	// lengths that must tile a /24.
	HeteroCompositions [][]int
	HeteroCompWeights  []float64
}

// DefaultConfig returns the configuration tuned to the paper's measured
// shapes at the given universe size.
func DefaultConfig(numBlocks int) Config {
	return Config{
		Seed:          0x40bb17,
		NumBlocks:     numBlocks,
		BigBlockScale: 1.0,

		PLowActivity:      0.84,
		ActiveMeanHigh:    10.5,
		ActiveMeanLow:     0.95,
		ActiveMeanStarved: 9.5,
		PersistProb:       0.87,
		PersistProbLow:    0.50,
		TTLWeights:        [3]float64{0.52, 0.42, 0.06},
		PReverseSkew:      0.25,
		PPingLoss:         0.01,

		PHeterogeneous:       0.013,
		PEpochSplit:          0.012,
		POutage:              0.04,
		EpochChurn:           0.15,
		PUnresponsiveLastHop: 0.26,
		PSingleLastHop:       0.55,
		KValues:              []int{2, 3, 4, 6, 8, 12, 16, 24, 32},
		KWeights:             []float64{0.18, 0.30, 0.20, 0.13, 0.09, 0.05, 0.028, 0.016, 0.011},
		PerFlowFanout:        4,
		PerDestFanout:        4,
		PerDestFanout2:       4,
		PFlowDivergentLast:   0.4,
		PNoPerDestLB:         0.40,
		PSharedLastHop:       0.35,
		Vantages:             3,
		PSrcSensitiveLB:      0.5,
		PRouterUnresponsive:  0.06,
		PRateLimit:           0.02,

		AggSizeValues:        []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 256},
		AggSizeWeights:       []float64{0.72, 0.10, 0.05, 0.04, 0.025, 0.02, 0.012, 0.009, 0.006, 0.004, 0.002, 0.0012, 0.0006, 0.0003, 0.0001},
		SegmentsPerAggregate: 5,
		PStarved:             0.05,

		BigBlocks:          PaperBigBlocks(),
		HeteroAS:           PaperHeteroASes(),
		HeteroCompositions: paperCompositions(),
		HeteroCompWeights:  paperCompositionWeights(),
	}
}

// PaperBigBlocks returns the Table 5 aggregates plus the Dublin EC2 block
// of Section 6.6 at their published sizes.
func PaperBigBlocks() []BigBlockSpec {
	return []BigBlockSpec{
		{Name: "egi", ASN: 18779, Org: "EGI Hosting", Country: "US", City: "Santa Clara", Type: metadata.OrgHosting, Size: 1251, Kind: KindDatacenter, RDNS: metadata.NameGenericISP, Region: "us-west", K: 3},
		{Name: "tele2-a", ASN: 1257, Org: "Tele2", Country: "Sweden", City: "Stockholm", Type: metadata.OrgBroadbandISP, Size: 1187, Kind: KindCellular, RDNS: metadata.NameTele2Cellular, Region: "eu-north", K: 4},
		{Name: "amazon-apne", ASN: 16509, Org: "Amazon", Country: "Japan", City: "Tokyo", Type: metadata.OrgHostingCloud, Size: 1122, Kind: KindDatacenter, RDNS: metadata.NameEC2, Region: "ap-northeast-1", K: 6},
		{Name: "ntt", ASN: 2914, Org: "NTT America", Country: "US", City: "Dallas", Type: metadata.OrgHostingCloud, Size: 1071, Kind: KindDatacenter, RDNS: metadata.NameGenericISP, Region: "us-east", K: 4},
		{Name: "opentransfer-a", ASN: 32392, Org: "OPENTRANSFER", Country: "US", City: "Orlando", Type: metadata.OrgHosting, Size: 940, Kind: KindDatacenter, RDNS: metadata.NameGenericISP, Region: "us-east", K: 2},
		{Name: "tele2-b", ASN: 1257, Org: "Tele2", Country: "Sweden", City: "Stockholm", Type: metadata.OrgBroadbandISP, Size: 857, Kind: KindCellular, RDNS: metadata.NameTele2Cellular, Region: "eu-north", K: 3},
		{Name: "ocn-a", ASN: 4713, Org: "OCN", Country: "Japan", City: "Tokyo", Type: metadata.OrgBroadbandISP, Size: 840, Kind: KindCellular, RDNS: metadata.NameOCNOmed, Region: "tokyo", K: 4},
		{Name: "amazon-usw", ASN: 16509, Org: "Amazon", Country: "US", City: "San Jose", Type: metadata.OrgHostingCloud, Size: 835, Kind: KindDatacenter, RDNS: metadata.NameEC2, Region: "us-west-1", K: 6},
		{Name: "ocn-b", ASN: 4713, Org: "OCN", Country: "Japan", City: "Osaka", Type: metadata.OrgBroadbandISP, Size: 783, Kind: KindCellular, RDNS: metadata.NameOCNOmed, Region: "osaka", K: 3},
		{Name: "singtel", ASN: 9506, Org: "SingTel", Country: "Singapore", City: "Singapore", Type: metadata.OrgBroadbandISP, Size: 732, Kind: KindDatacenter, RDNS: metadata.NameGenericISP, Region: "ap-se", K: 2},
		{Name: "softbank", ASN: 17676, Org: "SoftBank", Country: "Japan", City: "Tokyo", Type: metadata.OrgBroadbandISP, Size: 731, Kind: KindDatacenter, RDNS: metadata.NameGenericISP, Region: "ap-ne", K: 2},
		{Name: "godaddy", ASN: 26496, Org: "GoDaddy", Country: "US", City: "Scottsdale", Type: metadata.OrgHosting, Size: 703, Kind: KindDatacenter, RDNS: metadata.NameGenericISP, Region: "us-west", K: 3},
		{Name: "verizon", ASN: 22394, Org: "Verizon Wireless", Country: "US", City: "Newark", Type: metadata.OrgMobileISP, Size: 699, Kind: KindCellular, RDNS: metadata.NameGenericISP, Region: "us-east", K: 4},
		{Name: "opentransfer-b", ASN: 32392, Org: "OPENTRANSFER", Country: "US", City: "Orlando", Type: metadata.OrgHosting, Size: 698, Kind: KindDatacenter, RDNS: metadata.NameGenericISP, Region: "us-east", K: 2},
		{Name: "cox", ASN: 22773, Org: "Cox", Country: "US", City: "Phoenix", Type: metadata.OrgFixedISP, Size: 679, Kind: KindDatacenter, RDNS: metadata.NameCoxBusiness, Region: "ph.ph", K: 2},
		// Section 6.6: the Amazon Dublin aggregate only surfaces after
		// MCL because its blocks are observation-starved.
		{Name: "amazon-dub", ASN: 16509, Org: "Amazon", Country: "Ireland", City: "Dublin", Type: metadata.OrgHostingCloud, Size: 1217, Kind: KindDatacenter, RDNS: metadata.NameEC2, Region: "eu-west-1", K: 8, Starved: true},
		// Time Warner population for the sampling experiment (Fig. 12).
		{Name: "twc", ASN: 11351, Org: "Time Warner Cable", Country: "US", City: "Syracuse", Type: metadata.OrgBroadbandISP, Size: 900, Kind: KindResidential, RDNS: metadata.NameTimeWarner, Region: "nyroc", K: 2, SplitInto: 48},
	}
}

// PaperHeteroASes returns the Table 3 ASes with weights proportional to
// their published heterogeneous /24 counts.
func PaperHeteroASes() []HeteroASSpec {
	return []HeteroASSpec{
		{ASN: 4766, Org: "Korea Telecom", Country: "Korea", Type: metadata.OrgBroadbandISP, Weight: 8207},
		{ASN: 9318, Org: "SK Broadband", Country: "Korea", Type: metadata.OrgBroadbandISP, Weight: 1798},
		{ASN: 15557, Org: "SFR", Country: "France", Type: metadata.OrgBroadbandISP, Weight: 499},
		{ASN: 3292, Org: "TDC A/S", Country: "Denmark", Type: metadata.OrgBroadbandISP, Weight: 486},
		{ASN: 4788, Org: "TM Net", Country: "Malaysia", Type: metadata.OrgBroadbandISP, Weight: 242},
		{ASN: 9158, Org: "Telenor A/S", Country: "Denmark", Type: metadata.OrgBroadbandISP, Weight: 172},
		{ASN: 36352, Org: "ColoCrossing", Country: "US", Type: metadata.OrgHosting, Weight: 125},
		{ASN: 28751, Org: "Caucasus", Country: "Georgia", Type: metadata.OrgBroadbandISP, Weight: 115},
		{ASN: 20751, Org: "Magticom", Country: "Georgia", Type: metadata.OrgBroadbandISP, Weight: 108},
		{ASN: 35632, Org: "IRIS64", Country: "France", Type: metadata.OrgBroadbandISP, Weight: 106},
	}
}

// paperCompositions returns the Table 2 sub-block compositions as prefix
// length multisets; each tiles a /24 exactly.
func paperCompositions() [][]int {
	return [][]int{
		{25, 25},
		{25, 26, 26},
		{26, 26, 26, 26},
		{25, 26, 27, 27},
		{26, 26, 26, 27, 27},
		{26, 26, 27, 27, 27, 27},
		{25, 26, 27, 28, 28},
		{25, 27, 27, 27, 27},
	}
}

func paperCompositionWeights() []float64 {
	return []float64{50.48, 20.65, 15.79, 5.92, 4.63, 1.13, 0.81, 0.58}
}

// Validate checks the configuration for structural errors.
func (c *Config) Validate() error {
	if c.NumBlocks <= 0 {
		return errors.New("netsim: NumBlocks must be positive")
	}
	if c.BigBlockScale < 0 {
		return errors.New("netsim: BigBlockScale must be non-negative")
	}
	if len(c.KValues) != len(c.KWeights) || len(c.KValues) == 0 {
		return errors.New("netsim: KValues/KWeights length mismatch or empty")
	}
	for _, k := range c.KValues {
		if k < 2 {
			return errors.New("netsim: KValues entries must be >= 2")
		}
	}
	if len(c.AggSizeValues) != len(c.AggSizeWeights) || len(c.AggSizeValues) == 0 {
		return errors.New("netsim: AggSize values/weights mismatch or empty")
	}
	if c.PerFlowFanout < 1 || c.PerDestFanout < 1 || c.PerDestFanout2 < 1 {
		return errors.New("netsim: fanouts must be >= 1")
	}
	if c.Vantages < 1 {
		return errors.New("netsim: Vantages must be >= 1")
	}
	if len(c.HeteroCompositions) != len(c.HeteroCompWeights) {
		return errors.New("netsim: hetero compositions/weights mismatch")
	}
	for i, comp := range c.HeteroCompositions {
		total := 0
		for _, ln := range comp {
			if ln < 25 || ln > 30 {
				return fmt.Errorf("netsim: composition %d has invalid prefix length %d", i, ln)
			}
			total += 1 << (32 - uint(ln))
		}
		if total != 256 {
			return fmt.Errorf("netsim: composition %d does not tile a /24 (covers %d addresses)", i, total)
		}
	}
	for _, p := range []float64{c.PLowActivity, c.PersistProb, c.PersistProbLow, c.PHeterogeneous, c.PEpochSplit, c.POutage, c.EpochChurn,
		c.PUnresponsiveLastHop, c.PSingleLastHop, c.PRouterUnresponsive,
		c.PRateLimit, c.PReverseSkew, c.PPingLoss, c.PStarved} {
		if p < 0 || p > 1 {
			return fmt.Errorf("netsim: probability %v out of [0,1]", p)
		}
	}
	return nil
}
