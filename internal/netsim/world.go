package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/metadata"
	"github.com/hobbitscan/hobbit/internal/rttmodel"
)

// World is a generated synthetic Internet. It is immutable after Build and
// safe for concurrent probing.
type World struct {
	cfg  Config
	seed uint64

	routers []router
	regions []*region
	ases    []*asRec
	pops    []*pop

	blocks    map[iputil.Block24]*blockRec
	blockList []iputil.Block24 // sorted universe

	// srcHops holds the access-router pair of each vantage point.
	srcHops [][2]routerID

	geo   *metadata.GeoDB
	whois *metadata.Whois

	// heteroBlocks lists the planted heterogeneous /24s (ground truth).
	heteroBlocks []iputil.Block24

	// epoch is the current measurement epoch (see epoch.go); the cache
	// holds per-(pop, epoch) responsive-address lists for the
	// subscriber model.
	epoch          int
	epochMu        sync.Mutex
	popActiveCache map[popEpochKey][]iputil.Addr

	// routes memoizes materialized hop arrays for the current epoch (see
	// routecache.go); nil when Config.DisableRouteCache is set.
	routes *routeCache

	// faults is the active fault plan (see faults.go); nil for a clean
	// world. Set via SetFaults, never concurrently with probing.
	faults FaultView
}

type routerID int32

type router struct {
	addr       iputil.Addr
	responsive bool
	region     string
}

type region struct {
	name    string
	coreIn  routerID
	coreMid []routerID
	coreOut routerID
	// nameHash is hashString(name), precomputed so the probe path never
	// hashes strings (see precompute in reply.go).
	nameHash uint64
}

type asRec struct {
	asn     int
	org     string
	country string
	otype   metadata.OrgType
	region  *region
	ingress routerID
	chain   []routerID
}

// pop is one point of presence: the unit of true topological homogeneity.
// All addresses routed to a pop share its set of last-hop routers.
type pop struct {
	id        int32
	as        *asRec
	lastHops  []routerID
	destMid   []routerID
	destMid2  []routerID
	flowDiv   bool // per-flow hashing reaches the last-hop choice
	srcSens   bool // per-destination hashing includes the source address
	kind      BlockKind
	big       int // index into cfg.BigBlocks, or -1
	starved   bool
	unresp    bool // last-hop routers never answer
	rdnsKind  metadata.NameKind
	rdnsReg   string
	rdnsVar   int
	size      int // /24 count (0 for hetero sub-pops)
	heteroSub bool
	// rtt is the pop's delay model, precomputed at build time so probes
	// never re-derive it (see precompute in reply.go).
	rtt rttmodel.Profile
}

// entry maps a sub-prefix of a /24 to its pop: one entry for homogeneous
// blocks, several for heterogeneous blocks.
type entry struct {
	prefix iputil.Prefix
	pop    int32
}

type blockRec struct {
	entries     []entry
	asn         int
	lowActivity bool
	starved     bool
	hetero      bool
	twcVariant2 bool // block hosts a second Time Warner naming scheme
	// splitEpoch > 0 schedules an address-exhaustion-driven split: from
	// that epoch on, futureEntries (sub-allocations) replace entries.
	splitEpoch    int
	futureEntries []entry
	// rate26 holds the per-/26 activity rates, precomputed at build time
	// (see buildRate26 in reply.go).
	rate26 [4]float64
}

// New builds a world from the configuration. Building is deterministic in
// Config (including Seed).
func New(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &World{
		cfg:    cfg,
		seed:   cfg.Seed,
		blocks: make(map[iputil.Block24]*blockRec, cfg.NumBlocks),
		geo:    metadata.NewGeoDB(),
		whois:  metadata.NewWhois(),
	}
	genRand := rand.New(rand.NewSource(int64(cfg.Seed)))
	w.buildTopologyCore(genRand)
	if err := w.buildPopulations(genRand); err != nil {
		return nil, err
	}
	w.populateMetadata()
	sort.Slice(w.blockList, func(i, j int) bool { return w.blockList[i] < w.blockList[j] })
	w.precompute()
	if !cfg.DisableRouteCache {
		w.routes = newRouteCache()
	}
	return w, nil
}

// MustNew builds a world and panics on configuration errors; intended for
// tests and examples.
func MustNew(cfg Config) *World {
	w, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// Config returns the configuration the world was built from.
func (w *World) Config() Config { return w.cfg }

// Blocks returns the sorted universe of /24 blocks.
func (w *World) Blocks() []iputil.Block24 { return w.blockList }

// NumRouters returns the number of router interfaces in the topology.
func (w *World) NumRouters() int { return len(w.routers) }

// Geo returns the GeoLite-style metadata database for the world.
func (w *World) Geo() *metadata.GeoDB { return w.geo }

// Whois returns the WHOIS registry for the world.
func (w *World) Whois() *metadata.Whois { return w.whois }

func (w *World) popOf(a iputil.Addr) (*pop, bool) {
	rec, ok := w.blocks[a.Block24()]
	if !ok {
		return nil, false
	}
	entries := w.activeEntries(rec)
	for i := range entries {
		if entries[i].prefix.Contains(a) {
			return w.pops[entries[i].pop], true
		}
	}
	return nil, false
}

func (w *World) routerAddr(id routerID) iputil.Addr { return w.routers[id].addr }

func (w *World) checkInvariants() error {
	check := func(b iputil.Block24, entries []entry) error {
		covered := 0
		for _, e := range entries {
			if e.prefix.Base.Block24() != b && e.prefix.Len > 8 {
				return fmt.Errorf("netsim: entry %v outside block %v", e.prefix, b)
			}
			covered += e.prefix.Size()
		}
		if covered != 256 {
			return fmt.Errorf("netsim: block %v entries cover %d addresses", b, covered)
		}
		return nil
	}
	for b, rec := range w.blocks {
		if err := check(b, rec.entries); err != nil {
			return err
		}
		if rec.splitEpoch > 0 {
			if err := check(b, rec.futureEntries); err != nil {
				return err
			}
		}
	}
	return nil
}
