package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/metadata"
	"github.com/hobbitscan/hobbit/internal/rttmodel"
)

// World is a generated synthetic Internet. It is immutable after Build and
// safe for concurrent probing.
type World struct {
	cfg  Config
	seed uint64

	routers []router
	regions []*region
	ases    []*asRec
	pops    []*pop

	// Per-block state is flat: recs[i] describes blockList[i], with the
	// two kept sorted in lockstep, and every route entry of every block
	// lives in one shared arena the records index into. A /16-bucketed
	// offset table narrows lookups to one bucket's worth of binary
	// search. The layout holds a million-block universe in three large
	// allocations instead of millions of small heap objects (map buckets,
	// per-block records, per-block entry slices), which is what lets the
	// census scale to the paper's full-address-space sweeps.
	recs       []blockRec
	blockList  []iputil.Block24 // sorted universe
	entryArena []entry
	// idx16[h] is the index in blockList of the first block whose /16
	// equals h; idx16 has 1<<16+1 elements so idx16[h+1] closes bucket h.
	idx16 []int32

	// srcHops holds the access-router pair of each vantage point.
	srcHops [][2]routerID

	geo   *metadata.GeoDB
	whois *metadata.Whois

	// heteroBlocks lists the planted heterogeneous /24s (ground truth).
	heteroBlocks []iputil.Block24

	// epoch is the current measurement epoch (see epoch.go); the cache
	// holds per-(pop, epoch) responsive-address lists for the
	// subscriber model.
	epoch          int
	epochMu        sync.Mutex
	popActiveCache map[popEpochKey][]iputil.Addr

	// faultEpoch, when pinned via SetFaultEpoch, is the epoch the fault
	// plan is evaluated at — decoupled from the measurement epoch so the
	// monitoring mode can advance route churn without re-drawing host
	// availability (see delta.go). popBlockCache is the lazy pop ->
	// member-/24 index EpochDelta expands storm scopes with.
	faultEpoch    int
	faultEpochSet bool
	popBlockCache map[int32][]iputil.Block24
	popBlockEpoch int

	// routes memoizes materialized hop arrays for the current epoch (see
	// routecache.go); nil when Config.DisableRouteCache is set.
	routes *routeCache

	// faults is the active fault plan (see faults.go); nil for a clean
	// world. Set via SetFaults, never concurrently with probing.
	faults FaultView
}

type routerID int32

type router struct {
	addr       iputil.Addr
	responsive bool
	region     string
}

type region struct {
	name    string
	coreIn  routerID
	coreMid []routerID
	coreOut routerID
	// nameHash is hashString(name), precomputed so the probe path never
	// hashes strings (see precompute in reply.go).
	nameHash uint64
}

type asRec struct {
	asn     int
	org     string
	country string
	otype   metadata.OrgType
	region  *region
	ingress routerID
	chain   []routerID
}

// pop is one point of presence: the unit of true topological homogeneity.
// All addresses routed to a pop share its set of last-hop routers.
type pop struct {
	id        int32
	as        *asRec
	lastHops  []routerID
	destMid   []routerID
	destMid2  []routerID
	flowDiv   bool // per-flow hashing reaches the last-hop choice
	srcSens   bool // per-destination hashing includes the source address
	kind      BlockKind
	big       int // index into cfg.BigBlocks, or -1
	starved   bool
	unresp    bool // last-hop routers never answer
	rdnsKind  metadata.NameKind
	rdnsReg   string
	rdnsVar   int
	size      int // /24 count (0 for hetero sub-pops)
	heteroSub bool
	// rtt is the pop's delay model, precomputed at build time so probes
	// never re-derive it (see precompute in reply.go).
	rtt rttmodel.Profile
}

// entry maps a sub-prefix of a /24 to its pop: one entry for homogeneous
// blocks, several for heterogeneous blocks.
type entry struct {
	prefix iputil.Prefix
	pop    int32
}

// blockRec flags (see the accessor methods below).
const (
	blockLowActivity = 1 << iota
	blockStarved
	blockHetero
	blockTWCVariant2 // block hosts a second Time Warner naming scheme
)

// blockRec is the per-/24 record: 48 bytes of plain values, no pointers.
// Route entries live in World.entryArena; entryIdx/entryN (and, for
// scheduled splits, futureIdx/futureN) address the block's slice of it.
type blockRec struct {
	entryIdx  int32
	futureIdx int32
	asn       int32
	entryN    uint8
	futureN   uint8
	// splitEpoch > 0 schedules an address-exhaustion-driven split: from
	// that epoch on, the future entries (sub-allocations) replace entries.
	splitEpoch uint8
	flags      uint8
	// rate26 holds the per-/26 activity rates, precomputed at build time
	// (see buildRate26 in reply.go).
	rate26 [4]float64
}

func (rec *blockRec) lowActivity() bool { return rec.flags&blockLowActivity != 0 }
func (rec *blockRec) starved() bool     { return rec.flags&blockStarved != 0 }
func (rec *blockRec) hetero() bool      { return rec.flags&blockHetero != 0 }
func (rec *blockRec) twcVariant2() bool { return rec.flags&blockTWCVariant2 != 0 }

// rec returns the block's record, or nil for blocks outside the universe.
// The /16 bucket bounds the binary search to at most 256 candidates, so
// the probe hot path pays a handful of cache-resident compares instead of
// a map lookup, and allocates nothing.
//
//hobbit:hotpath
func (w *World) rec(b iputil.Block24) *blockRec {
	h := b >> 8
	lo, hi := w.idx16[h], w.idx16[h+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case w.blockList[mid] < b:
			lo = mid + 1
		case w.blockList[mid] > b:
			hi = mid
		default:
			return &w.recs[mid]
		}
	}
	return nil
}

// entriesOf returns the block's original route entries (in force before
// any scheduled split).
func (w *World) entriesOf(rec *blockRec) []entry {
	return w.entryArena[rec.entryIdx : rec.entryIdx+int32(rec.entryN)]
}

// futureOf returns the sub-allocation entries a scheduled split installs.
func (w *World) futureOf(rec *blockRec) []entry {
	return w.entryArena[rec.futureIdx : rec.futureIdx+int32(rec.futureN)]
}

// New builds a world from the configuration. Building is deterministic in
// Config (including Seed).
func New(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &World{
		cfg:   cfg,
		seed:  cfg.Seed,
		geo:   metadata.NewGeoDB(),
		whois: metadata.NewWhois(),
	}
	genRand := rand.New(rand.NewSource(int64(cfg.Seed)))
	w.buildTopologyCore(genRand)
	if err := w.buildPopulations(genRand); err != nil {
		return nil, err
	}
	sort.Sort(blockSorter{w})
	w.buildIdx16()
	w.populateMetadata()
	w.precompute()
	if !cfg.DisableRouteCache {
		w.routes = newRouteCache()
	}
	return w, nil
}

// MustNew builds a world and panics on configuration errors; intended for
// tests and examples.
func MustNew(cfg Config) *World {
	w, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// Config returns the configuration the world was built from.
func (w *World) Config() Config { return w.cfg }

// Blocks returns the sorted universe of /24 blocks.
func (w *World) Blocks() []iputil.Block24 { return w.blockList }

// NumRouters returns the number of router interfaces in the topology.
func (w *World) NumRouters() int { return len(w.routers) }

// Geo returns the GeoLite-style metadata database for the world.
func (w *World) Geo() *metadata.GeoDB { return w.geo }

// Whois returns the WHOIS registry for the world.
func (w *World) Whois() *metadata.Whois { return w.whois }

func (w *World) popOf(a iputil.Addr) (*pop, bool) {
	rec := w.rec(a.Block24())
	if rec == nil {
		return nil, false
	}
	return w.popOfRec(rec, a)
}

// popOfRec is popOf with the block record already resolved; the reply
// hot paths look a record up once per call and thread it through these
// …Rec variants instead of re-searching the block index per predicate.
//
//hobbit:hotpath
func (w *World) popOfRec(rec *blockRec, a iputil.Addr) (*pop, bool) {
	entries := w.activeEntries(rec)
	for i := range entries {
		if entries[i].prefix.Contains(a) {
			return w.pops[entries[i].pop], true
		}
	}
	return nil, false
}

func (w *World) routerAddr(id routerID) iputil.Addr { return w.routers[id].addr }

// blockSorter co-sorts blockList and recs by block so the two stay
// parallel; entry-arena indices are positional and unaffected by the sort.
type blockSorter struct{ w *World }

func (s blockSorter) Len() int           { return len(s.w.blockList) }
func (s blockSorter) Less(i, j int) bool { return s.w.blockList[i] < s.w.blockList[j] }
func (s blockSorter) Swap(i, j int) {
	s.w.blockList[i], s.w.blockList[j] = s.w.blockList[j], s.w.blockList[i]
	s.w.recs[i], s.w.recs[j] = s.w.recs[j], s.w.recs[i]
}

// buildIdx16 derives the /16 bucket offsets from the sorted blockList.
func (w *World) buildIdx16() {
	w.idx16 = make([]int32, (1<<16)+1)
	pos := 0
	for h := 0; h < 1<<16; h++ {
		w.idx16[h] = int32(pos)
		for pos < len(w.blockList) && w.blockList[pos]>>8 == iputil.Block24(h) {
			pos++
		}
	}
	w.idx16[1<<16] = int32(pos)
}

func (w *World) checkInvariants() error {
	check := func(b iputil.Block24, entries []entry) error {
		covered := 0
		for _, e := range entries {
			if e.prefix.Base.Block24() != b && e.prefix.Len > 8 {
				return fmt.Errorf("netsim: entry %v outside block %v", e.prefix, b)
			}
			covered += e.prefix.Size()
		}
		if covered != 256 {
			return fmt.Errorf("netsim: block %v entries cover %d addresses", b, covered)
		}
		return nil
	}
	for i, b := range w.blockList {
		rec := &w.recs[i]
		if err := check(b, w.entriesOf(rec)); err != nil {
			return err
		}
		if rec.splitEpoch > 0 {
			if err := check(b, w.futureOf(rec)); err != nil {
				return err
			}
		}
	}
	return nil
}
