package netsim

import (
	"testing"
	"testing/quick"
)

// TestRouteProperties checks structural invariants of path construction
// over arbitrary destinations and flows: determinism, length bounds, and
// the flow-independence of everything before the core diamond.
func TestRouteProperties(t *testing.T) {
	w := testWorld(t, 600)
	blocks := w.Blocks()
	f := func(blockIdx uint16, host uint8, flow uint16, vRaw uint8) bool {
		b := blocks[int(blockIdx)%len(blocks)]
		dst := b.Addr(int(host))
		v := int(vRaw) % w.NumVantages()
		var h1, h2 [maxHops]routerID
		n1, ok1 := w.route(v, dst, flow, &h1)
		n2, ok2 := w.route(v, dst, flow, &h2)
		if n1 != n2 || ok1 != ok2 {
			return false // deterministic
		}
		for i := 0; i < n1; i++ {
			if h1[i] != h2[i] {
				return false
			}
		}
		if !ok1 {
			return true
		}
		if n1 < 5 || n1 > maxHops {
			return false // plausible path length
		}
		// Hops reference real routers.
		for i := 0; i < n1; i++ {
			if int(h1[i]) >= len(w.routers) {
				return false
			}
		}
		// A different flow may change the core diamond and (for
		// flow-divergent pops) the last hop, but never the access
		// routers, core in/out, or AS ingress.
		var h3 [maxHops]routerID
		n3, _ := w.route(v, dst, flow+7, &h3)
		if n3 != n1 {
			return false
		}
		for _, i := range []int{0, 1, 2, 4, 5} {
			if h1[i] != h3[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

// TestProbeTTLWalk checks that walking TTLs toward any destination sees
// the hop sequence route() promises, with silence only from unresponsive
// or rate-limited routers.
func TestProbeTTLWalk(t *testing.T) {
	w := testWorld(t, 300)
	blocks := w.Blocks()
	f := func(blockIdx uint16, host uint8) bool {
		b := blocks[int(blockIdx)%len(blocks)]
		dst := b.Addr(int(host))
		var hops [maxHops]routerID
		n, ok := w.route(0, dst, 3, &hops)
		if !ok {
			return true
		}
		for ttl := 1; ttl <= n; ttl++ {
			var got ProbeReply
			for salt := uint32(0); salt < 6; salt++ {
				got = w.Probe(dst, ttl, 3, salt)
				if got.Kind == TTLExceeded {
					break
				}
			}
			r := w.routers[hops[ttl-1]]
			switch got.Kind {
			case TTLExceeded:
				if got.From != r.addr {
					return false // wrong router answered
				}
			case NoReply:
				if r.responsive {
					// Responsive routers only stay silent under
					// rate limiting; six salts at 2% each make
					// that astronomically unlikely.
					return false
				}
			case EchoReply:
				return false // destination cannot answer below its TTL
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestVantageZeroMatchesWorld checks that vantage 0 is byte-identical to
// the World's own probe surface.
func TestVantageZeroMatchesWorld(t *testing.T) {
	w := testWorld(t, 200)
	vt := w.Vantage(0)
	blocks := w.Blocks()
	f := func(blockIdx uint16, host uint8, ttl uint8) bool {
		b := blocks[int(blockIdx)%len(blocks)]
		dst := b.Addr(int(host))
		t1 := int(ttl)%maxHops + 1
		var hops [maxHops]routerID
		nw, _ := w.route(0, dst, 2, &hops)
		nv, _ := w.route(0, dst, 2, &hops)
		if nw != nv {
			return false
		}
		// Same TTL-exceeded responders (rate-limit salts match too
		// because vantage 0 reuses the world's key order only when the
		// replies agree in kind and source).
		a := w.Probe(dst, t1, 2, 1)
		bv := vt.Probe(dst, t1, 2, 1)
		if a.Kind == TTLExceeded && bv.Kind == TTLExceeded && a.From != bv.From {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
