package netsim

import (
	"github.com/hobbitscan/hobbit/internal/iputil"
)

// Fault injection: the reply path consults an optional FaultView so a
// deterministic, time-phased adversity plan (internal/faultplan) can
// perturb measurements without touching the world's own structure. The
// same purity rules as the rest of the reply path apply: every answer a
// faulted world gives is a pure function of (seed, plan, epoch, probe
// arguments), so faulted runs replay bit-identically and are independent
// of probe order and worker count.
//
// The four perturbation surfaces:
//
//   - Blackholed(dst): the destination's route entry is withdrawn. Echo
//     replies stop entirely and TTL-exceeded replies stop past the
//     backbone core (hops beyond blackholeCoreHops go dark) — transit
//     routers up to the core still answer, as they would for a prefix
//     withdrawn inside the destination AS.
//   - RateBoost(pop): an ICMP rate-limit storm at the pop's edge. The
//     boost adds to Config.PRateLimit for TTL-exceeded replies on paths
//     toward the pop's addresses.
//   - LossBoost(vantage): vantage-local congestion. The boost adds to
//     Config.PPingLoss for echo replies and to the TTL-exceeded drop
//     probability for probes sent from that vantage.
//   - FlapKey(block): a route flap re-draws the block's per-destination
//     last-hop choices with the returned key folded into the hash, so
//     the observed last-hop partition of the /24 remaps for as long as
//     the flap is active.
//
// Faults never alter the census (ScanPing/ScanActive): the ZMap snapshot
// predates the measurement window, so eligibility is held fixed while
// measurement-time adversity varies — exactly the comparison the
// accuracy harness needs.

// blackholeCoreHops is the last hop index that still answers toward a
// blackholed destination: the two source access routers plus the
// region's core ingress, ECMP middle, and core egress. Everything past
// the core (the destination AS) is dark.
const blackholeCoreHops = 5

// FaultView is the reply path's view of an active fault plan. Epoch is
// passed explicitly so implementations stay stateless and replayable;
// implementations must be safe for concurrent calls and must answer as
// pure functions of their construction state and the arguments.
type FaultView interface {
	// Blackholed reports whether dst's route entry is withdrawn at the
	// epoch.
	Blackholed(epoch int, dst iputil.Addr) bool
	// RateBoost returns the additive TTL-exceeded drop probability for
	// probes toward the pop's addresses at the epoch.
	RateBoost(epoch int, popID int32) float64
	// LossBoost returns the additive reply-loss probability for probes
	// sent from the vantage at the epoch.
	LossBoost(epoch int, vantage int) float64
	// FlapKey returns the extra hash key remapping the block's last-hop
	// choices at the epoch; ok is false when no flap is active.
	FlapKey(epoch int, b iputil.Block24) (key uint64, ok bool)
}

// SetFaults installs (or, with nil, removes) the active fault plan.
// Like SetEpoch it must not be called concurrently with probing: flaps
// change routes, so the route cache is dropped wholesale.
func (w *World) SetFaults(f FaultView) {
	w.faults = f
	w.invalidateRoutes()
}

// Faults returns the active fault plan (nil when the world is clean).
func (w *World) Faults() FaultView { return w.faults }

// faultBlackholed reports whether dst sits behind a withdrawn route
// entry this epoch.
//
//hobbit:hotpath
func (w *World) faultBlackholed(dst iputil.Addr) bool {
	return w.faults != nil && w.faults.Blackholed(w.faultsEpoch(), dst)
}

// faultRateLimit returns the effective TTL-exceeded drop probability for
// a probe from vantage v toward dst: the configured base plus any active
// rate-storm boost at dst's pop and congestion boost at the vantage.
//
//hobbit:hotpath
func (w *World) faultRateLimit(v int, dst iputil.Addr) float64 {
	p := w.cfg.PRateLimit
	if w.faults == nil {
		return p
	}
	if pop, ok := w.popOf(dst); ok {
		p += w.faults.RateBoost(w.faultsEpoch(), pop.id)
	}
	p += w.faults.LossBoost(w.faultsEpoch(), v)
	if p > 1 {
		p = 1
	}
	return p
}

// faultPingLoss returns the effective echo-reply loss probability for
// probes from vantage v.
//
//hobbit:hotpath
func (w *World) faultPingLoss(v int) float64 {
	p := w.cfg.PPingLoss
	if w.faults == nil {
		return p
	}
	p += w.faults.LossBoost(w.faultsEpoch(), v)
	if p > 1 {
		p = 1
	}
	return p
}

// faultFlap returns the active route-flap key for the block, if any.
//
//hobbit:hotpath
func (w *World) faultFlap(b iputil.Block24) (uint64, bool) {
	if w.faults == nil {
		return 0, false
	}
	return w.faults.FlapKey(w.faultsEpoch(), b)
}

// faultsEpoch is the epoch fault queries evaluate at: the pinned fault
// epoch when one is set (monitoring mode), the measurement epoch
// otherwise.
//
//hobbit:hotpath
func (w *World) faultsEpoch() int {
	if w.faultEpochSet {
		return w.faultEpoch
	}
	return w.epoch
}
