package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/metadata"
)

// twcRegions are the regional labels of Time Warner's documented naming
// schemes; pops of the TWC population cycle through them.
var twcRegions = []string{
	"socal", "nyc", "nyroc", "austin", "columbus",
	"kc", "maine", "carolina", "hawaii", "texas",
}

// fillerCountries cycles countries over the synthetic filler ASes.
var fillerCountries = []string{
	"US", "US", "Japan", "Korea", "France", "Denmark",
	"Sweden", "Malaysia", "Georgia", "Singapore", "US", "Ireland",
}

// segment is a contiguous run of /24s awaiting address allocation. Hetero
// segments always have size 1 and materialize a split block.
type segment struct {
	pop    int32
	size   int
	hetero bool
	as     *asRec
	// idx is the segment's ordinal within its pop; segments of one pop
	// are placed in different allocation regions so aggregates span the
	// address space (Figure 7b).
	idx int
}

func (w *World) buildPopulations(genRand *rand.Rand) error {
	cfg := &w.cfg
	asByASN := make(map[int]*asRec)
	lookupAS := func(asn int, org, country string, otype metadata.OrgType) *asRec {
		if a, ok := asByASN[asn]; ok {
			return a
		}
		a := w.newAS(asn, org, country, otype, genRand)
		asByASN[asn] = a
		return a
	}

	nFiller := cfg.NumBlocks / 500
	if nFiller < 8 {
		nFiller = 8
	}
	fillers := make([]*asRec, nFiller)
	for i := range fillers {
		country := fillerCountries[i%len(fillerCountries)]
		fillers[i] = lookupAS(60000+i, fmt.Sprintf("NetCo-%d", i+1), country, metadata.OrgBroadbandISP)
	}

	var segs []segment
	budget := cfg.NumBlocks

	// Planted big aggregates.
	for i := range cfg.BigBlocks {
		spec := &cfg.BigBlocks[i]
		size := int(float64(spec.Size)*cfg.BigBlockScale + 0.5)
		if size < 1 {
			size = 1
		}
		if size > budget {
			size = budget
		}
		if size == 0 {
			continue
		}
		budget -= size
		as := lookupAS(spec.ASN, spec.Org, spec.Country, spec.Type)
		if spec.SplitInto > 0 {
			// Expand into many aggregates (the TWC population).
			// Cap chunk size so scaled-down worlds still split into
			// several pops.
			limit := spec.SplitInto
			if cap := size / 3; cap >= 1 && cap < limit {
				limit = cap
			}
			variant := 0
			for size > 0 {
				// Power-law pop sizes: a few large blocks dominate
				// the population, so random samples keep drawing
				// the same host types (the Figure 12 effect).
				psize := limit >> uint(genRand.Intn(6))
				if psize < 1 {
					psize = 1
				}
				if psize > size {
					psize = size
				}
				size -= psize
				p := w.newPop(as, spec.K, false, genRand)
				p.big = i
				p.kind = spec.Kind
				p.rdnsKind = spec.RDNS
				p.rdnsReg = twcRegions[variant%len(twcRegions)]
				p.rdnsVar = variant
				p.size = psize
				variant++
				segs = append(segs, w.splitSegments(p, psize, genRand)...)
			}
			continue
		}
		p := w.newPop(as, spec.K, false, genRand)
		p.big = i
		p.kind = spec.Kind
		p.starved = spec.Starved
		if p.starved && len(p.lastHops) >= 3 {
			// Starved aggregates are the ones the Section 6 clustering
			// must reassemble: their initial measurements stop early
			// with partial last-hop sets, and the flow-divergent
			// hashing lets the exhaustive reprobe complete them.
			p.flowDiv = true
		}
		p.rdnsKind = spec.RDNS
		p.rdnsReg = spec.Region
		p.rdnsVar = i
		p.size = size
		segs = append(segs, w.splitSegments(p, size, genRand)...)
	}

	// Heterogeneous /24s (each consumes one universe slot).
	nHetero := int(cfg.PHeterogeneous*float64(cfg.NumBlocks) + 0.5)
	if nHetero > budget {
		nHetero = budget
	}
	budget -= nHetero
	heteroAS := make([]*asRec, 0, len(cfg.HeteroAS))
	heteroW := make([]float64, 0, len(cfg.HeteroAS))
	for _, spec := range cfg.HeteroAS {
		heteroAS = append(heteroAS, lookupAS(spec.ASN, spec.Org, spec.Country, spec.Type))
		heteroW = append(heteroW, spec.Weight)
	}
	for i := 0; i < nHetero; i++ {
		var as *asRec
		if len(heteroAS) > 0 && genRand.Float64() < 0.70 {
			as = heteroAS[weightedIdx(genRand, heteroW)]
		} else {
			// The long tail of splitting ASes outside the top 10.
			as = fillers[genRand.Intn(len(fillers))]
		}
		segs = append(segs, segment{pop: -1, size: 1, hetero: true, as: as})
	}

	// Regular aggregates.
	prevPop := make(map[*asRec]*pop)
	for budget > 0 {
		size := cfg.AggSizeValues[weightedIdx(genRand, cfg.AggSizeWeights)]
		if size > budget {
			size = budget
		}
		budget -= size
		as := fillers[genRand.Intn(len(fillers))]
		k := 1
		if genRand.Float64() >= cfg.PSingleLastHop {
			k = cfg.KValues[weightedIdx(genRand, cfg.KWeights)]
		}
		unresp := genRand.Float64() < cfg.PUnresponsiveLastHop
		p := w.newPop(as, k, unresp, genRand)
		// Edge routers serve several prefixes in practice: some
		// aggregates of one AS share most of a neighbor's last-hop
		// routers without being co-located, producing the
		// similar-but-different sets MCL can wrongly merge (the
		// population Figure 9's screening rule separates).
		if prev := prevPop[as]; prev != nil && k >= 2 && !unresp && !prev.unresp &&
			genRand.Float64() < cfg.PSharedLastHop {
			shared := 1 + genRand.Intn(k-1+1)
			if shared >= k {
				shared = k - 1 // keep at least one own router
			}
			if shared > len(prev.lastHops) {
				shared = len(prev.lastHops)
			}
			for i := 0; i < shared; i++ {
				p.lastHops[i] = prev.lastHops[i%len(prev.lastHops)]
			}
		}
		prevPop[as] = p
		p.kind = KindResidential
		p.rdnsKind = metadata.NameGenericISP
		p.rdnsReg = as.region.name
		p.rdnsVar = int(p.id)
		p.size = size
		p.starved = size > 1 && genRand.Float64() < cfg.PStarved
		if p.starved && len(p.lastHops) >= 3 {
			p.flowDiv = true
		}
		segs = append(segs, w.splitSegments(p, size, genRand)...)
	}

	// Fill in the AS of every non-hetero segment from its pop.
	for i := range segs {
		if segs[i].as == nil {
			segs[i].as = w.pops[segs[i].pop].as
		}
	}

	// Group segments into per-AS allocation regions. A registry hands an
	// AS a few contiguous allocations scattered through the address
	// space; the AS lays its aggregates out inside them. This yields
	// both the wide min/max separation of Figure 7b (an aggregate's
	// segments land in different regions) and a realistic BGP mix.
	type allocRegion struct {
		as   *asRec
		segs []segment
	}
	byAS := make(map[*asRec][]segment)
	var asOrder []*asRec
	genRand.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })
	for _, s := range segs {
		if _, ok := byAS[s.as]; !ok {
			asOrder = append(asOrder, s.as)
		}
		byAS[s.as] = append(byAS[s.as], s)
	}
	var regions []allocRegion
	for _, as := range asOrder {
		asSegs := byAS[as]
		nRegions := 2 + genRand.Intn(2)
		if nRegions > len(asSegs) {
			nRegions = len(asSegs)
		}
		regs := make([]allocRegion, nRegions)
		for i := range regs {
			regs[i].as = as
		}
		for _, s := range asSegs {
			// A pop's segments cycle through the AS's regions, so a
			// multi-segment aggregate is guaranteed to span them.
			regs[s.idx%nRegions].segs = append(regs[s.idx%nRegions].segs, s)
		}
		regions = append(regions, regs...)
	}
	genRand.Shuffle(len(regions), func(i, j int) { regions[i], regions[j] = regions[j], regions[i] })

	alloc := newAllocator(genRand)
	for _, reg := range regions {
		for i, seg := range reg.segs {
			gapBefore := genRand.Intn(8)
			if i == 0 {
				// Each allocation region starts in a fresh arena
				// scattered somewhere in the unicast space.
				alloc.nextArena()
				gapBefore = genRand.Intn(64)
			}
			base, err := alloc.take(seg.size, gapBefore)
			if err != nil {
				return err
			}
			if seg.hetero {
				w.materializeHetero(base, seg.as, genRand)
				continue
			}
			p := w.pops[seg.pop]
			for j := 0; j < seg.size; j++ {
				b := base + iputil.Block24(j)
				rec := blockRec{asn: int32(p.as.asn)}
				if p.starved {
					rec.flags |= blockStarved
				}
				var future []entry
				if !p.starved && p.big < 0 {
					if genRand.Float64() < cfg.PLowActivity {
						rec.flags |= blockLowActivity
					}
					// Address exhaustion keeps splitting blocks: a
					// few homogeneous /24s get sub-allocated to
					// distinct customers at a later epoch (the
					// longitudinal future work). Blocks worth
					// splitting are in active use.
					if genRand.Float64() < cfg.PEpochSplit {
						rec.splitEpoch = uint8(1 + genRand.Intn(6))
						future = w.splitEntries(b, p.as, 2016+int(rec.splitEpoch), genRand)
						rec.flags &^= blockLowActivity
					}
				}
				if p.rdnsKind == metadata.NameTimeWarner && genRand.Float64() < 0.2 {
					rec.flags |= blockTWCVariant2
				}
				w.addBlock(b, rec,
					[]entry{{prefix: iputil.PrefixOf(b.Base(), 24), pop: p.id}}, future)
			}
		}
	}
	return w.checkInvariants()
}

func weightedIdx(genRand *rand.Rand, weights []float64) int {
	var total float64
	for _, v := range weights {
		total += v
	}
	target := genRand.Float64() * total
	for i, v := range weights {
		target -= v
		if target < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// splitSegments divides a pop's /24 span into up to SegmentsPerAggregate
// contiguous runs so that large aggregates appear as separated contiguous
// sub-blocks (Section 5.3).
func (w *World) splitSegments(p *pop, size int, genRand *rand.Rand) []segment {
	if size <= 1 {
		return []segment{{pop: p.id, size: size}}
	}
	maxSegs := w.cfg.SegmentsPerAggregate
	if maxSegs < 2 {
		maxSegs = 2
	}
	// Multi-/24 aggregates always split into at least two runs: real
	// allocations of one customer accrete over time in different parts
	// of the registry's space (the Figure 7b separation).
	n := 2 + genRand.Intn(maxSegs-1)
	if n > size {
		n = size
	}
	// Random composition of size into n positive parts.
	cuts := make([]int, 0, n-1)
	for len(cuts) < n-1 {
		c := 1 + genRand.Intn(size-1)
		cuts = append(cuts, c)
	}
	sort.Ints(cuts)
	segs := make([]segment, 0, n)
	prev := 0
	for _, c := range cuts {
		if c > prev {
			segs = append(segs, segment{pop: p.id, size: c - prev, idx: len(segs)})
			prev = c
		}
	}
	if size > prev {
		segs = append(segs, segment{pop: p.id, size: size - prev, idx: len(segs)})
	}
	return segs
}

// addBlock registers one /24: its entries (and any future sub-allocation
// entries) are appended to the shared entry arena, the record's index
// fields are filled in, and the record joins the flat recs/blockList
// pair (co-sorted by New once the build finishes).
func (w *World) addBlock(b iputil.Block24, rec blockRec, entries, future []entry) {
	rec.entryIdx = int32(len(w.entryArena))
	rec.entryN = uint8(len(entries))
	w.entryArena = append(w.entryArena, entries...)
	if len(future) > 0 {
		rec.futureIdx = int32(len(w.entryArena))
		rec.futureN = uint8(len(future))
		w.entryArena = append(w.entryArena, future...)
	}
	w.recs = append(w.recs, rec)
	w.blockList = append(w.blockList, b)
}

// splitEntries creates sub-block route entries at base: one mini-pop per
// sub-prefix of a Table-2 composition, plus the WHOIS customer allocations
// that Table 4 verifies against. regYear is the first possible
// registration year (later epochs register later).
func (w *World) splitEntries(base iputil.Block24, as *asRec, regYear int, genRand *rand.Rand) []entry {
	cfg := &w.cfg
	comp := cfg.HeteroCompositions[weightedIdx(genRand, cfg.HeteroCompWeights)]
	lens := append([]int(nil), comp...)
	sort.Ints(lens) // ascending prefix length = descending size: always tiles
	mirror := genRand.Float64() < 0.5

	var entries []entry
	offset := 0
	for i, ln := range lens {
		size := 1 << (32 - uint(ln))
		start := offset
		if mirror {
			start = 256 - offset - size
		}
		offset += size
		prefix := iputil.PrefixOf(base.Addr(start), ln)
		sub := w.newPop(as, 1, false, genRand)
		sub.kind = KindResidential
		sub.rdnsKind = metadata.NameGenericISP
		sub.rdnsReg = as.region.name
		sub.rdnsVar = int(sub.id)
		sub.heteroSub = true
		entries = append(entries, entry{prefix: prefix, pop: sub.id})

		year := regYear + genRand.Intn(2)
		w.whois.Register(metadata.Allocation{
			Prefix:   prefix,
			OrgName:  fmt.Sprintf("Customer-%d-%d-%d", as.asn, base, i),
			NetType:  "CUSTOMER",
			Address:  fmt.Sprintf("%s customer site %d", as.country, i+1),
			Province: as.region.name,
			ZipCode:  fmt.Sprintf("%05d", 10000+genRand.Intn(89999)),
			RegDate:  fmt.Sprintf("%d%02d%02d", year, 1+genRand.Intn(12), 1+genRand.Intn(28)),
		})
	}
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].prefix.Base < entries[j].prefix.Base
	})
	return entries
}

// materializeHetero creates one heterogeneous /24 at base.
func (w *World) materializeHetero(base iputil.Block24, as *asRec, genRand *rand.Rand) {
	rec := blockRec{asn: int32(as.asn), flags: blockHetero}
	w.addBlock(base, rec, w.splitEntries(base, as, 2015, genRand), nil)
	w.heteroBlocks = append(w.heteroBlocks, base)
}

// allocator hands out contiguous /24 runs from arenas scattered across the
// whole usable unicast space in a shuffled order, so the allocation
// regions of different ASes land far apart — the property behind the wide
// min/max separation within aggregates (Figure 7b).
type allocator struct {
	cur    uint32 // next /24 index (addr >> 8)
	arenas []allocSpan
	arena  int
}

type allocSpan struct{ lo, hi uint32 } // /24 index range, inclusive

// arenaBlocks is the arena size in /24s (a /11 worth of space).
const arenaBlocks = 8192

func newAllocator(genRand *rand.Rand) *allocator {
	a := &allocator{}
	// Usable /8s, skipping reserved and special-purpose space as well as
	// 100/8 (router interfaces live in 100.64/10).
	for o := 1; o <= 223; o++ {
		switch o {
		case 10, 100, 127, 169, 172, 192, 198, 203:
			continue
		}
		lo := uint32(o) << 16
		for off := uint32(0); off < 0x10000; off += arenaBlocks {
			a.arenas = append(a.arenas, allocSpan{lo: lo + off, hi: lo + off + arenaBlocks - 1})
		}
	}
	genRand.Shuffle(len(a.arenas), func(i, j int) { a.arenas[i], a.arenas[j] = a.arenas[j], a.arenas[i] })
	a.cur = a.arenas[0].lo
	return a
}

// leave records the unused remainder of the current arena before moving
// on, so a later wrap over the list hands the remainder out instead of
// treating the arena as spent. Before remainders existed, every region's
// arena jump burned the arena's unused tail, and a million-block world
// exhausted the address space with most of it never allocated.
func (a *allocator) leave() {
	sp := &a.arenas[a.arena]
	if a.cur > sp.lo {
		sp.lo = a.cur // may exceed hi: the arena is then empty
	}
}

// next moves to the next arena, wrapping past the end of the shuffled
// list back to the recorded remainders.
func (a *allocator) next() {
	a.leave()
	a.arena++
	if a.arena >= len(a.arenas) {
		a.arena = 0
	}
	a.cur = a.arenas[a.arena].lo
}

// nextArena jumps to the next shuffled arena; allocation regions start
// here so they scatter over the whole space. Worlds small enough that
// fresh arenas never run out — every world that built before wrapping
// existed — allocate identically, because wrapping only changes where
// the allocator lands after the list is spent.
func (a *allocator) nextArena() { a.next() }

var errExhausted = errors.New("netsim: /24 address space exhausted")

// take skips gapBefore /24s and then returns the base of a run of size
// contiguous /24s, spilling into the next arena when the current one is
// full. A full cycle over the list without a fit means no remainder can
// hold the run: the space is genuinely exhausted.
func (a *allocator) take(size, gapBefore int) (iputil.Block24, error) {
	a.cur += uint32(gapBefore)
	for tries := 0; tries <= len(a.arenas); tries++ {
		sp := a.arenas[a.arena]
		if a.cur < sp.lo {
			a.cur = sp.lo
		}
		if a.cur >= sp.lo && a.cur+uint32(size)-1 <= sp.hi {
			base := iputil.Block24(a.cur)
			a.cur += uint32(size)
			return base, nil
		}
		a.next()
	}
	return 0, errExhausted
}
