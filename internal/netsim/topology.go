package netsim

import (
	"math/rand"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/metadata"
	"github.com/hobbitscan/hobbit/internal/rng"
)

// Router interfaces are allocated from 100.64.0.0/10 (the shared address
// space), which is disjoint from the destination universe.
const routerSpaceBase = iputil.Addr(100<<24 | 64<<16)

// topologyRegions are the backbone regions; ASes attach to one by country.
var topologyRegions = []string{
	"us-east", "us-west", "eu-west", "eu-north", "eu-east",
	"ap-ne", "ap-se", "kr", "sa-east",
}

// regionOfCountry maps AS countries onto backbone regions.
func regionOfCountry(country string) string {
	switch country {
	case "US":
		return "us-east"
	case "Korea":
		return "kr"
	case "Japan":
		return "ap-ne"
	case "Singapore", "Malaysia":
		return "ap-se"
	case "Sweden":
		return "eu-north"
	case "France", "Denmark", "Ireland":
		return "eu-west"
	case "Georgia":
		return "eu-east"
	default:
		return "us-west"
	}
}

func (w *World) newRouter(regionName string, responsive bool) routerID {
	id := routerID(len(w.routers))
	w.routers = append(w.routers, router{
		addr:       routerSpaceBase + iputil.Addr(len(w.routers)),
		responsive: responsive,
		region:     regionName,
	})
	return id
}

func (w *World) buildTopologyCore(genRand *rand.Rand) {
	// Each vantage point's access routers (always responsive: they are
	// one hop from the prober).
	for v := 0; v < w.cfg.Vantages; v++ {
		w.srcHops = append(w.srcHops, [2]routerID{
			w.newRouter("src", true),
			w.newRouter("src", true),
		})
	}

	for _, name := range topologyRegions {
		r := &region{name: name}
		r.coreIn = w.newRouter(name, w.routerResponsive(genRand))
		for i := 0; i < w.cfg.PerFlowFanout; i++ {
			r.coreMid = append(r.coreMid, w.newRouter(name, w.routerResponsive(genRand)))
		}
		r.coreOut = w.newRouter(name, w.routerResponsive(genRand))
		w.regions = append(w.regions, r)
	}
}

func (w *World) routerResponsive(genRand *rand.Rand) bool {
	return genRand.Float64() >= w.cfg.PRouterUnresponsive
}

func (w *World) regionByName(name string) *region {
	for _, r := range w.regions {
		if r.name == name {
			return r
		}
	}
	return w.regions[0]
}

func (w *World) newAS(asn int, org, country string, otype metadata.OrgType, genRand *rand.Rand) *asRec {
	reg := w.regionByName(regionOfCountry(country))
	a := &asRec{
		asn:     asn,
		org:     org,
		country: country,
		otype:   otype,
		region:  reg,
		ingress: w.newRouter(reg.name, w.routerResponsive(genRand)),
	}
	// Vary path length per AS with a short intra-AS chain.
	for i, n := 0, genRand.Intn(3); i < n; i++ {
		a.chain = append(a.chain, w.newRouter(reg.name, w.routerResponsive(genRand)))
	}
	w.ases = append(w.ases, a)
	return a
}

// newPop creates a point of presence under the given AS with k last-hop
// routers. unrespLast makes all its last-hop routers unresponsive.
func (w *World) newPop(as *asRec, k int, unrespLast bool, genRand *rand.Rand) *pop {
	p := &pop{
		id:  int32(len(w.pops)),
		as:  as,
		big: -1,
	}
	// Some single-last-hop edges have no per-destination branching at
	// all: every address shares every route, so even the straw-man
	// whole-route comparison sees them as homogeneous.
	df1, df2 := w.cfg.PerDestFanout, w.cfg.PerDestFanout2
	if k == 1 && genRand.Float64() < w.cfg.PNoPerDestLB {
		df1, df2 = 1, 1
	}
	for i := 0; i < df1; i++ {
		p.destMid = append(p.destMid, w.newRouter(as.region.name, w.routerResponsive(genRand)))
	}
	for i := 0; i < df2; i++ {
		p.destMid2 = append(p.destMid2, w.newRouter(as.region.name, w.routerResponsive(genRand)))
	}
	for i := 0; i < k; i++ {
		responsive := !unrespLast
		p.lastHops = append(p.lastHops, w.newRouter(as.region.name, responsive))
	}
	p.unresp = unrespLast
	// Flow-divergent last hops only occur at k >= 3: with two last hops
	// a per-flow split makes both groups span the whole block and the
	// range test degenerates to inclusion.
	p.flowDiv = k >= 3 && genRand.Float64() < w.cfg.PFlowDivergentLast
	// Some per-destination load balancers hash the source address too,
	// so probing from another vantage reveals different branches
	// (Section 6.1).
	p.srcSens = genRand.Float64() < w.cfg.PSrcSensitiveLB
	w.pops = append(w.pops, p)
	return p
}

// Hash-key salts for probe-time decisions.
const (
	saltFlow    = 0x11
	saltDest    = 0x22
	saltLast    = 0x33
	saltRate    = 0x44
	saltActive  = 0x55
	saltPersist = 0x66
	saltTTL     = 0x77
	saltSkew    = 0x88
	saltLoss    = 0x99
	saltRate26  = 0xaa
	saltTWCVar  = 0xbb
)

// maxHops bounds the forward path length (src hops + core + AS + pop).
const maxHops = 12

// route materializes the hop sequence from vantage v toward dst for the
// given flow identifier, into hops. It returns the number of hops
// written; the destination itself sits one hop past the last entry. ok is
// false when dst is not a routed destination, in which case the returned
// hops are the partial path that probes would still traverse (the source
// access routers).
func (w *World) route(v int, dst iputil.Addr, flowID uint16, hops *[maxHops]routerID) (n int, ok bool) {
	if v < 0 || v >= len(w.srcHops) {
		v = 0
	}
	hops[0] = w.srcHops[v][0]
	hops[1] = w.srcHops[v][1]
	n = 2
	p, found := w.popOf(dst)
	if !found {
		return n, false
	}
	// srcKey folds the vantage into hashes of source-sensitive load
	// balancers only.
	var srcKey uint64
	if p.srcSens {
		srcKey = uint64(v)
	}
	reg := p.as.region
	hops[n] = reg.coreIn
	n++
	// Per-flow ECMP: the hash covers (src, dst, flowID), as a router
	// hashing the five-tuple would.
	mid := rng.Intn(len(reg.coreMid), w.seed, uint64(dst), uint64(flowID), uint64(v), saltFlow)
	hops[n] = reg.coreMid[mid]
	n++
	hops[n] = reg.coreOut
	n++
	hops[n] = p.as.ingress
	n++
	for _, c := range p.as.chain {
		hops[n] = c
		n++
	}
	// Per-destination ECMP, two cascaded stages: both hash the
	// destination only (plus the source for source-sensitive balancers),
	// so every probe toward dst takes the same branch while adjacent
	// addresses diverge (the Section 2.2 effect) and whole-path
	// diversity multiplies across the cascade.
	dm := rng.Intn(len(p.destMid), w.seed, uint64(dst), uint64(p.id), srcKey, saltDest)
	hops[n] = p.destMid[dm]
	n++
	dm2 := rng.Intn(len(p.destMid2), w.seed, uint64(dst), uint64(p.id), srcKey, saltDest, 2)
	hops[n] = p.destMid2[dm2]
	n++
	// Flow-divergent load balancers fold flow fields into the last-hop
	// hash too, so paths toward one destination need not converge
	// (Section 2.3). An active route flap folds an extra per-epoch key
	// into the same hash, remapping the block's last-hop partition for
	// as long as the flap lasts (the route cache is dropped on
	// SetFaults/SetEpoch, so cached hops never outlive a flap window).
	flapKey, flapping := w.faultFlap(dst.Block24())
	var lh int
	switch {
	case p.flowDiv:
		bucket := rng.Intn(2, w.seed, uint64(dst), uint64(flowID), saltFlow, 7)
		if flapping {
			lh = rng.Intn(len(p.lastHops), w.seed, uint64(dst), uint64(p.id), srcKey, saltLast, uint64(bucket), flapKey)
		} else {
			lh = rng.Intn(len(p.lastHops), w.seed, uint64(dst), uint64(p.id), srcKey, saltLast, uint64(bucket))
		}
	case flapping:
		lh = rng.Intn(len(p.lastHops), w.seed, uint64(dst), uint64(p.id), srcKey, saltLast, flapKey)
	default:
		lh = rng.Intn(len(p.lastHops), w.seed, uint64(dst), uint64(p.id), srcKey, saltLast)
	}
	hops[n] = p.lastHops[lh]
	n++
	return n, true
}

// forwardDist returns the forward hop distance from a vantage point to
// dst (the TTL needed for a probe to reach the destination itself).
func (w *World) forwardDist(v int, dst iputil.Addr) (int, bool) {
	if rv := w.cachedRoute(v, dst, 0); rv != nil {
		if !rv.ok {
			return 0, false
		}
		return int(rv.n) + 1, true
	}
	var hops [maxHops]routerID
	n, ok := w.route(v, dst, 0, &hops)
	if !ok {
		return 0, false
	}
	return n + 1, true
}

// TrueLastHops returns the ground-truth last-hop router addresses of the
// pop serving dst; ok is false for unrouted addresses.
func (w *World) TrueLastHops(dst iputil.Addr) ([]iputil.Addr, bool) {
	p, found := w.popOf(dst)
	if !found {
		return nil, false
	}
	out := make([]iputil.Addr, len(p.lastHops))
	for i, id := range p.lastHops {
		out[i] = w.routerAddr(id)
	}
	iputil.SortAddrs(out)
	return out, true
}
