package netsim

import (
	"testing"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

func TestOutagesEpochZeroClean(t *testing.T) {
	w := testWorld(t, 600)
	for _, b := range w.Blocks()[:100] {
		if w.TrueOutage(b) {
			t.Fatalf("block %v dark at epoch 0", b)
		}
	}
}

func TestOutagesDarkenWholeAggregates(t *testing.T) {
	w := testWorld(t, 1200)
	w.SetEpoch(1)
	defer w.SetEpoch(0)

	dark, lit := 0, 0
	for _, b := range w.Blocks() {
		if w.TrueOutage(b) {
			dark++
		} else {
			lit++
		}
	}
	if dark == 0 {
		t.Fatal("no outages at epoch 1 with POutage > 0")
	}
	frac := float64(dark) / float64(dark+lit)
	if frac < 0.005 || frac > 0.15 {
		t.Errorf("outage fraction = %v, want around POutage", frac)
	}

	// Fate sharing: every block of a dark pop is dark, and none of its
	// hosts answer.
	var darkBlock iputil.Block24
	for _, b := range w.Blocks() {
		if hom, _ := w.TrueHomogeneous(b); hom && w.TrueOutage(b) {
			darkBlock = b
			break
		}
	}
	if darkBlock == 0 {
		t.Skip("no homogeneous dark block found")
	}
	pid, _ := w.TrueAggregate(darkBlock)
	for _, b := range w.AggregateBlocks(pid) {
		if !w.TrueOutage(b) {
			t.Fatalf("aggregate %d block %v escaped its outage", pid, b)
		}
		for i := 0; i < 256; i += 19 {
			if w.RespondsNow(b.Addr(i)) {
				t.Fatalf("host %v answers during its aggregate's outage", b.Addr(i))
			}
		}
	}

	// Outages are epoch-local: the same block is back at epoch 2 or 3
	// with high probability; at minimum epoch 0 is always clean.
	w.SetEpoch(0)
	if w.TrueOutage(darkBlock) {
		t.Error("outage leaked into epoch 0")
	}
}

func TestEpochChurnDensityStable(t *testing.T) {
	w := testWorld(t, 800)
	count := func() int {
		n := 0
		for _, b := range w.Blocks()[:200] {
			for i := 0; i < 256; i += 3 {
				if w.ScanActive(b.Addr(i)) {
					n++
				}
			}
		}
		return n
	}
	w.SetEpoch(0)
	base := count()
	w.SetEpoch(2)
	later := count()
	w.SetEpoch(0)
	if base == 0 {
		t.Fatal("no actives")
	}
	ratio := float64(later) / float64(base)
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("population density drifted: %d -> %d (%.2fx)", base, later, ratio)
	}
}
