// The zero-alloc assertions run only without -race: the race detector
// instruments allocation sites and perturbs the counts AllocsPerRun sees.
//
//go:build !race

package netsim

import (
	"testing"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

// findEcho locates a destination and TTL whose probe elicits an echo
// reply, so the allocation test covers the reply path (RTT model, default
// TTL, reverse skew), not just the TTL-exceeded path.
func findEcho(t *testing.T, w *World) (iputil.Addr, int) {
	t.Helper()
	for _, b := range w.Blocks() {
		for i := 0; i < 256; i += 3 {
			dst := b.Addr(i)
			for ttl := 1; ttl <= 12; ttl++ {
				if w.Probe(dst, ttl, 0, 1).Kind == EchoReply {
					return dst, ttl
				}
			}
		}
	}
	t.Fatal("no echo-replying destination found")
	return 0, 0
}

// TestProbeZeroAlloc asserts the steady-state probe contract: with routes
// and profiles precomputed, Ping, Probe (both reply kinds), and ScanPing
// perform zero allocations per call.
func TestProbeZeroAlloc(t *testing.T) {
	w := testWorld(t, 60)
	echoDst, echoTTL := findEcho(t, w)
	vt := w.Vantage(1)

	cases := []struct {
		name string
		fn   func()
	}{
		{"Probe/ttl-exceeded", func() { w.Probe(echoDst, 1, 2, 1) }},
		{"Probe/echo", func() { w.Probe(echoDst, echoTTL, 0, 1) }},
		{"Ping", func() { w.Ping(echoDst, 0) }},
		{"ScanPing", func() { w.ScanPing(echoDst) }},
		{"Vantage.Probe", func() { vt.Probe(echoDst, 2, 1, 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if avg := testing.AllocsPerRun(200, tc.fn); avg != 0 {
				t.Errorf("%s allocates %.1f times per call, want 0", tc.name, avg)
			}
		})
	}
}

// TestProbeZeroAllocUncached asserts the same for the cache-disabled
// world: the stack-array route walk must not allocate either.
func TestProbeZeroAllocUncached(t *testing.T) {
	cfg := testConfig(60)
	cfg.DisableRouteCache = true
	w := MustNew(cfg)
	dst := w.Blocks()[0].Addr(7)
	if avg := testing.AllocsPerRun(200, func() { w.Probe(dst, 2, 1, 1) }); avg != 0 {
		t.Errorf("uncached Probe allocates %.1f times per call, want 0", avg)
	}
}
