package netsim

import (
	"testing"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/metadata"
)

// testConfig builds a small world that keeps the full planted structure.
func testConfig(n int) Config {
	cfg := DefaultConfig(n)
	cfg.BigBlockScale = 0.02
	return cfg
}

func testWorld(t *testing.T, n int) *World {
	t.Helper()
	w, err := New(testConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(100)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig(0)
	if err := bad.Validate(); err == nil {
		t.Error("NumBlocks=0 should fail")
	}
	bad = DefaultConfig(100)
	bad.KValues = []int{1, 2}
	bad.KWeights = []float64{1, 1}
	if err := bad.Validate(); err == nil {
		t.Error("K=1 in KValues should fail")
	}
	bad = DefaultConfig(100)
	bad.HeteroCompositions = [][]int{{25, 26}} // does not tile
	bad.HeteroCompWeights = []float64{1}
	if err := bad.Validate(); err == nil {
		t.Error("non-tiling composition should fail")
	}
	bad = DefaultConfig(100)
	bad.PersistProb = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("probability out of range should fail")
	}
}

func TestCompositionsTile(t *testing.T) {
	for i, comp := range paperCompositions() {
		total := 0
		for _, ln := range comp {
			total += 1 << (32 - uint(ln))
		}
		if total != 256 {
			t.Errorf("composition %d covers %d addresses", i, total)
		}
	}
}

func TestWorldUniverseSize(t *testing.T) {
	w := testWorld(t, 2000)
	if got := len(w.Blocks()); got != 2000 {
		t.Fatalf("universe = %d blocks, want 2000", got)
	}
	// Sorted and unique.
	prev := iputil.Block24(0)
	for i, b := range w.Blocks() {
		if i > 0 && b <= prev {
			t.Fatalf("blockList not strictly sorted at %d", i)
		}
		prev = b
	}
}

func TestWorldDeterministic(t *testing.T) {
	w1 := testWorld(t, 500)
	w2 := testWorld(t, 500)
	b1, b2 := w1.Blocks(), w2.Blocks()
	if len(b1) != len(b2) {
		t.Fatal("universes differ in size")
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("universe differs at %d: %v vs %v", i, b1[i], b2[i])
		}
	}
	// Same probe, same answer.
	dst := b1[42].Addr(77)
	for ttl := 1; ttl < 14; ttl++ {
		r1 := w1.Probe(dst, ttl, 3, 9)
		r2 := w2.Probe(dst, ttl, 3, 9)
		if r1 != r2 {
			t.Fatalf("probe differs at ttl %d: %+v vs %+v", ttl, r1, r2)
		}
	}
}

func TestHeterogeneousPlanting(t *testing.T) {
	w := testWorld(t, 4000)
	hs := w.HeteroBlocks()
	if len(hs) == 0 {
		t.Fatal("no heterogeneous blocks planted")
	}
	want := int(0.013*4000.0) + 1
	if len(hs) < want/2 || len(hs) > want*2 {
		t.Errorf("hetero count = %d, want ~%d", len(hs), want)
	}
	for _, b := range hs {
		entries := w.TrueEntries(b)
		if len(entries) < 2 {
			t.Fatalf("hetero block %v has %d entries", b, len(entries))
		}
		covered := 0
		for _, p := range entries {
			if p.Base.Block24() != b {
				t.Fatalf("entry %v outside block %v", p, b)
			}
			covered += p.Size()
		}
		if covered != 256 {
			t.Fatalf("hetero block %v entries cover %d addresses", b, covered)
		}
		if hom, known := w.TrueHomogeneous(b); hom || !known {
			t.Fatalf("hetero block %v reported homogeneous=%v known=%v", b, hom, known)
		}
		// WHOIS must confirm the split (Table 4's verification).
		if !w.Whois().IsSplit(b) {
			t.Fatalf("hetero block %v has no split WHOIS allocation", b)
		}
		// Sub-entries must map to distinct last-hop routers.
		lh0, _ := w.TrueLastHops(entries[0].Base)
		lh1, _ := w.TrueLastHops(entries[1].Base)
		if len(lh0) == 0 || len(lh1) == 0 {
			t.Fatal("missing true last hops for hetero entries")
		}
		if lh0[0] == lh1[0] {
			t.Fatalf("hetero sub-blocks of %v share a last hop", b)
		}
	}
}

func TestHomogeneousGroundTruth(t *testing.T) {
	w := testWorld(t, 1000)
	homog := 0
	for _, b := range w.Blocks() {
		hom, known := w.TrueHomogeneous(b)
		if !known {
			t.Fatalf("block %v unknown", b)
		}
		if hom {
			homog++
			if len(w.TrueEntries(b)) != 1 {
				t.Fatalf("homogeneous block %v has multiple entries", b)
			}
			if _, ok := w.TrueAggregate(b); !ok {
				t.Fatalf("homogeneous block %v has no aggregate", b)
			}
		}
	}
	if homog < 900 {
		t.Errorf("homogeneous count = %d of 1000, want > 900", homog)
	}
}

func TestAggregateConsistency(t *testing.T) {
	w := testWorld(t, 1500)
	// Every pair of blocks in the same aggregate shares true last hops.
	seen := make(map[int32]iputil.Block24)
	for _, b := range w.Blocks() {
		pid, ok := w.TrueAggregate(b)
		if !ok {
			continue
		}
		if first, dup := seen[pid]; dup {
			lhA, _ := w.TrueLastHops(first.Addr(1))
			lhB, _ := w.TrueLastHops(b.Addr(1))
			if len(lhA) != len(lhB) {
				t.Fatalf("aggregate %d blocks disagree on K", pid)
			}
			for i := range lhA {
				if lhA[i] != lhB[i] {
					t.Fatalf("aggregate %d blocks disagree on last hops", pid)
				}
			}
		} else {
			seen[pid] = b
		}
	}
}

func TestProbeSemantics(t *testing.T) {
	w := testWorld(t, 500)
	// Find a responsive destination.
	var dst iputil.Addr
	var found bool
	for _, b := range w.Blocks() {
		for i := 1; i < 255; i++ {
			a := b.Addr(i)
			if w.RespondsNow(a) {
				dst, found = a, true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no responsive destination in world")
	}

	dist, ok := w.forwardDist(0, dst)
	if !ok {
		t.Fatal("no forward distance for routed destination")
	}
	if dist < 5 || dist > maxHops+1 {
		t.Fatalf("forward distance = %d", dist)
	}
	// A probe with enough TTL reaches the destination (retry across salt
	// to ride over simulated loss).
	gotEcho := false
	for salt := uint32(0); salt < 8; salt++ {
		if r := w.Probe(dst, dist, 1, salt); r.Kind == EchoReply {
			gotEcho = true
			break
		}
	}
	if !gotEcho {
		t.Error("no echo reply at forward distance")
	}
	// A probe one hop short gets a TTL-exceeded from the last-hop router
	// (or silence if that router is unresponsive/rate-limited).
	trueLH, _ := w.TrueLastHops(dst)
	sawLH := false
	for salt := uint32(0); salt < 8; salt++ {
		r := w.Probe(dst, dist-1, 1, salt)
		if r.Kind == TTLExceeded {
			for _, lh := range trueLH {
				if r.From == lh {
					sawLH = true
				}
			}
			if !sawLH {
				t.Fatalf("TTL-exceeded from %v which is not a true last hop %v", r.From, trueLH)
			}
			break
		}
	}
	// TTL zero and negative never answer.
	if r := w.Probe(dst, 0, 1, 0); r.Kind != NoReply {
		t.Error("ttl=0 should not reply")
	}
	// First hop is the vantage access router and always responds
	// (modulo rate limiting; retry).
	sawFirst := false
	for salt := uint32(0); salt < 8; salt++ {
		if r := w.Probe(dst, 1, 1, salt); r.Kind == TTLExceeded {
			sawFirst = true
			break
		}
	}
	if !sawFirst {
		t.Error("no reply from first hop")
	}
}

func TestUnroutedDestination(t *testing.T) {
	w := testWorld(t, 100)
	// 223.255.255.0/24 is far beyond the small allocation walk.
	dst := iputil.MustParseAddr("223.255.255.7")
	if _, ok := w.popOf(dst); ok {
		t.Skip("address unexpectedly allocated")
	}
	if _, ok := w.Ping(dst, 0); ok {
		t.Error("unrouted destination answered ping")
	}
	if r := w.Probe(dst, 10, 1, 0); r.Kind != NoReply {
		t.Error("unrouted destination answered probe beyond access hops")
	}
	// Access routers still answer low-TTL probes.
	sawAccess := false
	for salt := uint32(0); salt < 8; salt++ {
		if r := w.Probe(dst, 2, 1, salt); r.Kind == TTLExceeded {
			sawAccess = true
			break
		}
	}
	if !sawAccess {
		t.Error("access routers should answer probes toward unrouted space")
	}
}

func TestPerFlowAndPerDestDiversity(t *testing.T) {
	w := testWorld(t, 800)
	// Find a /24 on a pop with K > 1.
	var blk iputil.Block24
	for _, b := range w.Blocks() {
		if w.TrueLastHopCardinality(b) > 1 && !w.UnresponsiveLastHop(b) {
			if hom, _ := w.TrueHomogeneous(b); hom {
				blk = b
				break
			}
		}
	}
	if blk == 0 {
		t.Fatal("no multi-last-hop block found")
	}
	// Per-flow: same destination, different flows -> multiple mid hops.
	dst := blk.Addr(10)
	var hops [maxHops]routerID
	mids := make(map[routerID]struct{})
	for flow := uint16(0); flow < 64; flow++ {
		n, ok := w.route(0, dst, flow, &hops)
		if !ok || n < 6 {
			t.Fatal("short route")
		}
		mids[hops[3]] = struct{}{}
	}
	if len(mids) < 2 {
		t.Errorf("per-flow diversity = %d mid hops, want >= 2", len(mids))
	}
	// Per-destination: same flow, different destinations -> multiple
	// last hops within the /24.
	lasts := make(map[routerID]struct{})
	for i := 0; i < 128; i++ {
		n, ok := w.route(0, blk.Addr(i), 1, &hops)
		if !ok {
			t.Fatal("unrouted address inside universe block")
		}
		lasts[hops[n-1]] = struct{}{}
	}
	if len(lasts) < 2 {
		t.Errorf("per-destination diversity = %d last hops, want >= 2", len(lasts))
	}
	// For a non-flow-divergent pop, the per-destination choice is
	// stable across flows.
	var stable iputil.Block24
	for _, b := range w.Blocks() {
		if w.TrueLastHopCardinality(b) > 1 && !w.FlowDivergentLast(b) {
			stable = b
			break
		}
	}
	if stable != 0 {
		sdst := stable.Addr(10)
		n1, _ := w.route(0, sdst, 1, &hops)
		lh1 := hops[n1-1]
		n2, _ := w.route(0, sdst, 9999, &hops)
		lh2 := hops[n2-1]
		if lh1 != lh2 {
			t.Error("last hop must not depend on flow ID for stable pops")
		}
	}
	// For a flow-divergent pop, some flow pair must disagree.
	var div iputil.Block24
	for _, b := range w.Blocks() {
		if w.FlowDivergentLast(b) {
			div = b
			break
		}
	}
	if div != 0 {
		ddst := div.Addr(10)
		lhSet := map[routerID]struct{}{}
		for f := uint16(0); f < 32; f++ {
			n, _ := w.route(0, ddst, f, &hops)
			lhSet[hops[n-1]] = struct{}{}
		}
		if len(lhSet) > 2 {
			t.Errorf("flow-divergent pop exposed %d last hops for one dst, want <= 2", len(lhSet))
		}
	}
}

func TestScanActivePersistRates(t *testing.T) {
	w := testWorld(t, 2000)
	// The paper's 84% responsiveness (54.05M of 64.45M) is over probed
	// destinations, i.e. blocks passing the census criteria — which are
	// dominated by high-activity populations. Measure the same way:
	// count only blocks with at least 4 actives covering every /26.
	active, persist, total := 0, 0, 0
	for _, b := range w.Blocks()[:800] {
		var perQ [4]int
		var addrs []iputil.Addr
		for i := 0; i < 256; i++ {
			a := b.Addr(i)
			if w.ScanActive(a) {
				perQ[a.Block26()]++
				addrs = append(addrs, a)
			}
		}
		if len(addrs) < 4 || perQ[0] == 0 || perQ[1] == 0 || perQ[2] == 0 || perQ[3] == 0 {
			continue
		}
		total += 256
		for _, a := range addrs {
			active++
			if w.persists(a) {
				persist++
			}
		}
	}
	if active == 0 {
		t.Fatal("no active hosts")
	}
	rate := float64(persist) / float64(active)
	if rate < 0.75 || rate > 0.92 {
		t.Errorf("persist rate = %v, want ~0.84", rate)
	}
	frac := float64(active) / float64(total)
	if frac < 0.05 || frac > 0.35 {
		t.Errorf("scan-active fraction among eligible blocks = %v", frac)
	}
}

func TestDefaultTTLDistribution(t *testing.T) {
	w := testWorld(t, 200)
	counts := map[int]int{}
	for i := 0; i < 20000; i++ {
		counts[w.hostDefaultTTL(iputil.Addr(0x01000000+uint32(i)))]++
	}
	if counts[64] < counts[128] {
		t.Error("TTL 64 should dominate 128")
	}
	if counts[255] == 0 || counts[255] > counts[128] {
		t.Errorf("TTL 255 count = %d out of balance", counts[255])
	}
}

func TestBigBlockPopsPresent(t *testing.T) {
	w := testWorld(t, 3000)
	pops := w.BigBlockPops()
	for _, name := range []string{"egi", "tele2-a", "amazon-apne", "cox", "twc", "amazon-dub"} {
		if len(pops[name]) == 0 {
			t.Errorf("big block %q missing", name)
		}
	}
	if len(pops["twc"]) < 2 {
		t.Errorf("twc should split into several pops, got %d", len(pops["twc"]))
	}
	// Named aggregates carry their AS metadata.
	egi := pops["egi"][0]
	blocks := w.AggregateBlocks(egi)
	if len(blocks) == 0 {
		t.Fatal("egi aggregate empty")
	}
	info, ok := w.Geo().Lookup(blocks[0])
	if !ok || info.ASN != 18779 || info.Org != "EGI Hosting" {
		t.Errorf("egi geo = %+v, %v", info, ok)
	}
}

func TestRDNSNames(t *testing.T) {
	w := testWorld(t, 3000)
	pops := w.BigBlockPops()
	// Tele2 cellular names match the paper's regex.
	tele2 := w.AggregateBlocks(pops["tele2-a"][0])
	if len(tele2) == 0 {
		t.Fatal("tele2 aggregate empty")
	}
	name, ok := w.RDNSName(tele2[0].Addr(5))
	if !ok || !metadata.Tele2CellularPattern.MatchString(name) {
		t.Errorf("tele2 rDNS = %q, %v", name, ok)
	}
	// EC2 names carry the region endpoint.
	apne := w.AggregateBlocks(pops["amazon-apne"][0])
	name, ok = w.RDNSName(apne[0].Addr(5))
	if !ok || !contains(name, "ap-northeast-1") {
		t.Errorf("EC2 rDNS = %q", name)
	}
	// Router interfaces have router names.
	name, ok = w.RDNSName(routerSpaceBase + 3)
	if !ok || !contains(name, "transit") {
		t.Errorf("router rDNS = %q", name)
	}
	// Unallocated space has no PTR.
	if _, ok := w.RDNSName(iputil.MustParseAddr("223.255.255.1")); ok {
		t.Error("unallocated address has a PTR record")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && indexOf(s, sub) >= 0))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestBGPPrefixShare(t *testing.T) {
	w := testWorld(t, 2000)
	prefixes := w.BGPPrefixes()
	if len(prefixes) == 0 {
		t.Fatal("empty BGP table")
	}
	n24 := 0
	for _, p := range prefixes {
		if p.Len < 8 || p.Len > 24 {
			t.Fatalf("implausible BGP prefix %v", p)
		}
		if p.Len == 24 {
			n24++
		}
	}
	share := float64(n24) / float64(len(prefixes))
	if share < 0.50 || share > 0.62 {
		t.Errorf("/24 share = %v, want ~0.53", share)
	}
}

func TestCIDRDecompose(t *testing.T) {
	cases := []struct {
		base iputil.Block24
		n    int
		want int // number of prefixes
	}{
		{iputil.MustParseBlock24("10.0.0.0"), 1, 1},
		{iputil.MustParseBlock24("10.0.0.0"), 2, 1},   // aligned /23
		{iputil.MustParseBlock24("10.0.1.0"), 2, 2},   // misaligned
		{iputil.MustParseBlock24("10.0.0.0"), 256, 1}, // /16
		{iputil.MustParseBlock24("10.0.1.0"), 3, 2},   // /24 + /23
	}
	for _, c := range cases {
		got := cidrDecompose(c.base, c.n)
		if len(got) != c.want {
			t.Errorf("cidrDecompose(%v, %d) = %v, want %d prefixes", c.base, c.n, got, c.want)
		}
		covered := 0
		for _, p := range got {
			covered += p.Size() / 256
		}
		if covered != c.n {
			t.Errorf("cidrDecompose(%v, %d) covers %d /24s", c.base, c.n, covered)
		}
	}
}

func TestStarvedBlocks(t *testing.T) {
	w := testWorld(t, 3000)
	pops := w.BigBlockPops()
	dub := pops["amazon-dub"]
	if len(dub) == 0 {
		t.Skip("dublin aggregate not planted at this scale")
	}
	blocks := w.AggregateBlocks(dub[0])
	if len(blocks) == 0 {
		t.Fatal("dublin aggregate empty")
	}
	for _, b := range blocks {
		if !w.IsStarved(b) {
			t.Fatalf("dublin block %v not starved", b)
		}
	}
	// Starved blocks should have markedly fewer actives than normal.
	countActives := func(bs []iputil.Block24) float64 {
		total := 0
		for _, b := range bs {
			for i := 0; i < 256; i++ {
				if w.ScanActive(b.Addr(i)) {
					total++
				}
			}
		}
		return float64(total) / float64(len(bs))
	}
	// Starvation is a mild activity reduction: the fragmentation of
	// starved aggregates is driven by Hobbit's early termination, while
	// enough hosts remain for the exhaustive reprobe to complete their
	// last-hop sets. Per-/26 noise makes small-sample comparisons
	// flaky, so allow a small margin over the normal population.
	egi := w.AggregateBlocks(pops["egi"][0])
	if sa, na := countActives(blocks), countActives(egi); sa > na*1.1 {
		t.Errorf("starved actives/block = %v vs normal %v", sa, na)
	}
	if w.Config().ActiveMeanStarved >= w.Config().ActiveMeanHigh {
		t.Error("starved activity mean should be below normal")
	}
	// And the Dublin pop must be flow-divergent so reprobing can
	// enumerate last hops past the early-stop view.
	if !w.FlowDivergentLast(blocks[0]) {
		t.Error("starved aggregate should be flow-divergent")
	}
}
