package netsim

import (
	"sync/atomic"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

// Route caching: MDA walks one destination TTL by TTL and then revisits
// flows while assembling per-flow paths, so the same (vantage, dst, flowID)
// route is recomputed dozens of times per destination. The route is a pure
// function of that triple for a fixed epoch (per-flow and per-destination
// load balancers hash header fields; activeEntries only changes when the
// epoch advances past a block's split), so the world memoizes materialized
// hop arrays in a direct-mapped table sharded across independent atomic
// slots: a hit is one atomic pointer load plus a key compare, with no lock
// and no allocation. A colliding insert simply overwrites the slot — both
// values are pure functions of their keys, so eviction can change only
// timing, never replies. The table is replaced wholesale on SetEpoch,
// which also covers outage state: outages are drawn per (pop, epoch) and
// never alter routes, only RespondsNow, which stays uncached. Replies are
// therefore bit-identical with the cache on or off —
// TestProbeCacheIdentical holds the two worlds side by side.

// routeTabBits sizes the direct-mapped table; 2^17 slots bound the cache
// at one pointer per slot plus one entry per occupied slot.
const routeTabBits = 17

// routeKey identifies one materialized route.
type routeKey struct {
	dst  iputil.Addr
	flow uint16
	v    uint16
}

// routeEnt is one materialized route: the hop array route() would have
// written plus its length and routed verdict. Entries are immutable once
// published in a table slot.
type routeEnt struct {
	key  routeKey
	hops [maxHops]routerID
	n    int8
	ok   bool
}

// routeCache is the per-epoch memo. Misses are observable through
// RouteCacheStats for tests and tuning; a repeated probe must not add any.
type routeCache struct {
	tab    []atomic.Pointer[routeEnt]
	misses atomic.Int64
}

func newRouteCache() *routeCache {
	return &routeCache{tab: make([]atomic.Pointer[routeEnt], 1<<routeTabBits)}
}

// slotOf spreads keys over the table with a multiply-shift hash; the low
// destination bits alone would put a whole /24 in one slot neighborhood.
func slotOf(k routeKey) int {
	h := (uint64(k.dst)<<32 | uint64(k.flow)<<16 | uint64(k.v)) * 0x9e3779b97f4a7c15
	return int(h >> (64 - routeTabBits))
}

// cachedRoute returns the memoized route for (v, dst, flowID), computing
// and publishing it on first use. It returns nil when caching is disabled,
// in which case the caller walks route() directly. The hit path performs
// no allocation and takes no lock.
func (w *World) cachedRoute(v int, dst iputil.Addr, flowID uint16) *routeEnt {
	rc := w.routes
	if rc == nil {
		return nil
	}
	k := routeKey{dst: dst, flow: flowID, v: uint16(v)}
	slot := &rc.tab[slotOf(k)]
	if e := slot.Load(); e != nil && e.key == k {
		return e
	}
	rc.misses.Add(1)
	e := &routeEnt{key: k}
	n, ok := w.route(v, dst, flowID, &e.hops)
	e.n, e.ok = int8(n), ok
	slot.Store(e)
	return e
}

// probeHop is the cache-aware route query the probe primitives need: the
// routed-path length toward dst for the flow, and the router interface a
// probe with the given ttl expires at (meaningful only when ttl <= n).
// With caching disabled it walks route() on a stack array, so neither
// path allocates.
//
//hobbit:hotpath
func (w *World) probeHop(v int, dst iputil.Addr, flowID uint16, ttl int) (n int, routed bool, hop routerID) {
	if e := w.cachedRoute(v, dst, flowID); e != nil {
		n, routed = int(e.n), e.ok
		if ttl >= 1 && ttl <= n {
			hop = e.hops[ttl-1]
		}
		return n, routed, hop
	}
	var hops [maxHops]routerID
	n, routed = w.route(v, dst, flowID, &hops)
	if ttl >= 1 && ttl <= n {
		hop = hops[ttl-1]
	}
	return n, routed, hop
}

// RouteCacheStats returns the number of route computations the cache has
// absorbed since the epoch began (misses — each one a route() walk that
// was then published) and the table capacity in slots. Zeros when caching
// is disabled. A workload that revisits routes shows misses well below
// its probe count; tests assert misses stay flat across repeats.
func (w *World) RouteCacheStats() (misses int64, capacity int) {
	rc := w.routes
	if rc == nil {
		return 0, 0
	}
	return rc.misses.Load(), len(rc.tab)
}

// invalidateRoutes drops every memoized route; called when the epoch
// changes (split blocks re-enter with different entries).
func (w *World) invalidateRoutes() {
	if w.routes != nil {
		w.routes = newRouteCache()
	}
}
