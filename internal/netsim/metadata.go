package netsim

import (
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/metadata"
	"github.com/hobbitscan/hobbit/internal/rng"
)

// populateMetadata fills the GeoLite-style database from the generated
// world. WHOIS records are registered during heterogeneous-block
// materialization; rDNS names are generated lazily by RDNSName.
func (w *World) populateMetadata() {
	for _, a := range w.ases {
		w.geo.AddAS(metadata.ASInfo{ASN: a.asn, Org: a.org, Country: a.country, Type: a.otype})
	}
	for i, b := range w.blockList {
		rec := &w.recs[i]
		w.geo.Assign(b, int(rec.asn))
		p := w.pops[w.entriesOf(rec)[0].pop]
		if p.big >= 0 {
			w.geo.AssignCity(b, w.cfg.BigBlocks[p.big].City)
		}
	}
}

// RDNSName returns the reverse-DNS name of an address: PTR records exist
// for destination hosts (per their population's naming scheme) and for
// router interfaces. ok is false when no PTR record exists.
func (w *World) RDNSName(a iputil.Addr) (string, bool) {
	// Router interface space.
	if a >= routerSpaceBase && int(a-routerSpaceBase) < len(w.routers) {
		r := w.routers[a-routerSpaceBase]
		return metadata.GenerateName(metadata.NameRouter, a, r.region, int(a)), true
	}
	rec := w.rec(a.Block24())
	if rec == nil {
		return "", false
	}
	var p *pop
	entries := w.activeEntries(rec)
	for i := range entries {
		if entries[i].prefix.Contains(a) {
			p = w.pops[entries[i].pop]
			break
		}
	}
	if p == nil || p.rdnsKind == metadata.NameNone {
		return "", false
	}
	kind, variant := p.rdnsKind, p.rdnsVar
	switch kind {
	case metadata.NameTimeWarner:
		// Some blocks host a second naming scheme (the paper's
		// stratified sample misses 27% of patterns because blocks can
		// contain several).
		if rec.twcVariant2() && rng.Bool(0.5, w.seed, uint64(a), saltTWCVar) {
			variant++
		}
	case metadata.NameCoxBusiness:
		// Cox mixes business ("wsip") and residential ("ip") names.
		if rng.Bool(0.1, w.seed, uint64(a), saltTWCVar) {
			kind = metadata.NameCoxResidential
		}
	}
	return metadata.GenerateName(kind, a, p.rdnsReg, variant), true
}
