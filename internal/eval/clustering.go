package eval

import (
	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/stats"
)

func init() {
	register("fig9", "Figure 9: identical-pair ratio for rule-matching vs non-matching clusters", runFig9)
	register("fig10", "Figure 10: cluster-size distribution change from MCL", runFig10)
	register("mclstats", "Section 6.4-6.6: clustering pipeline statistics", runMCLStats)
}

func runFig9(l *Lab) (*Report, error) {
	r := newReport("fig9", "identical-pair ratio by rule match")
	out, err := l.Pipeline()
	if err != nil {
		return nil, err
	}
	if out.Clustering == nil || len(out.Clustering.Clusters) == 0 {
		r.printf("no clusters formed")
		return r, nil
	}
	var matched, unmatched stats.CDF
	for _, c := range out.Clustering.Clusters {
		v, ok := out.Validations[c.ID]
		if !ok || v.PairsChecked == 0 {
			continue
		}
		if c.MatchesRule() {
			matched.Add(v.Ratio())
		} else {
			unmatched.Add(v.Ratio())
		}
	}
	renderCDFLine(r, "clusters matching rule", &matched)
	renderCDFLine(r, "clusters not matching", &unmatched)
	if matched.N() > 0 {
		r.Metrics["matched_median_ratio"] = matched.Median()
		r.Metrics["matched_frac_ge06"] = 1 - matched.At(0.6-1e-9)
	}
	if unmatched.N() > 0 {
		r.Metrics["unmatched_median_ratio"] = unmatched.Median()
	}
	r.printf("paper: ~90%% of rule-matching clusters have ratio > 0.6; ~60%% of the rest have ratio 0")
	return r, nil
}

func runFig10(l *Lab) (*Report, error) {
	r := newReport("fig10", "cluster-size distribution change")
	out, err := l.Pipeline()
	if err != nil {
		return nil, err
	}
	before := aggregate.SizeHistogram(out.Aggregates)
	after := aggregate.SizeHistogram(out.Final)
	r.printf("%-14s %10s %10s %10s", "size bucket", "before", "after", "change")
	bb := bucketsMap(before)
	ab := bucketsMap(after)
	for exp := 0; exp <= 11; exp++ {
		b, a := bb[exp], ab[exp]
		if b == 0 && a == 0 {
			continue
		}
		r.printf("  [2^%-2d,2^%-2d) %10d %10d %+10d", exp, exp+1, b, a, a-b)
	}
	validated := 0
	mergedMembers := 0
	for _, c := range out.Clustering.Clusters {
		if out.Validated[c.ID] {
			validated++
			mergedMembers += len(c.Members)
		}
	}
	r.Metrics["blocks_before"] = float64(len(out.Aggregates))
	r.Metrics["blocks_after"] = float64(len(out.Final))
	r.Metrics["clusters_validated"] = float64(validated)
	r.Metrics["aggregates_merged"] = float64(mergedMembers)
	r.printf("blocks: %d -> %d; %d validated clusters merged %d aggregates",
		len(out.Aggregates), len(out.Final), validated, mergedMembers)
	r.printf("paper: 8,931 clusters merged 33,023 aggregates; 532,850 -> 508,758 blocks")

	// The Dublin EC2 story: the starved aggregate should reassemble.
	if pops := l.World.BigBlockPops()["amazon-dub"]; len(pops) > 0 {
		truth := l.World.AggregateBlocks(pops[0])
		bestBefore := largestCovering(out.Aggregates, truth)
		bestAfter := largestCovering(out.Final, truth)
		r.Metrics["dublin_before"] = float64(bestBefore)
		r.Metrics["dublin_after"] = float64(bestAfter)
		r.printf("Dublin EC2 aggregate: largest single block covering it: %d /24s before, %d after (planted: %d)",
			bestBefore, bestAfter, len(truth))
	}
	return r, nil
}

func bucketsMap(h *stats.Histogram) map[int]int {
	out := make(map[int]int)
	for _, bc := range h.PowBuckets() {
		out[bc.Exp] = bc.Count
	}
	return out
}

// largestCovering returns the size of the largest aggregate consisting
// solely of /24s from the truth set.
func largestCovering(blocks []*aggregate.Block, truth []iputil.Block24) int {
	inTruth := make(map[iputil.Block24]bool, len(truth))
	for _, b := range truth {
		inTruth[b] = true
	}
	best := 0
	for _, blk := range blocks {
		all := true
		for _, b := range blk.Blocks24 {
			if !inTruth[b] {
				all = false
				break
			}
		}
		if all && blk.Size() > best {
			best = blk.Size()
		}
	}
	return best
}

func runMCLStats(l *Lab) (*Report, error) {
	r := newReport("mclstats", "clustering pipeline statistics")
	out, err := l.Pipeline()
	if err != nil {
		return nil, err
	}
	cl := out.Clustering
	if cl == nil {
		r.printf("clustering skipped")
		return r, nil
	}
	clusteredAggs := 0
	for _, c := range cl.Clusters {
		clusteredAggs += len(c.Members)
	}
	r.printf("aggregates (vertices): %d", len(out.Aggregates))
	r.printf("connected components: %d", cl.Components)
	r.printf("MCL clusters (multi-member): %d covering %d aggregates; unclustered: %d",
		len(cl.Clusters), clusteredAggs, len(cl.Unclustered))
	r.printf("chosen inflation: %.2f (sweep: %v)", cl.ChosenInflation, cl.SweepScores)
	validated := 0
	for _, c := range cl.Clusters {
		if out.Validated[c.ID] {
			validated++
		}
	}
	r.printf("clusters validated homogeneous by reprobing: %d", validated)
	r.Metrics["vertices"] = float64(len(out.Aggregates))
	r.Metrics["components"] = float64(cl.Components)
	r.Metrics["clusters"] = float64(len(cl.Clusters))
	r.Metrics["clustered_aggregates"] = float64(clusteredAggs)
	r.Metrics["validated"] = float64(validated)
	r.printf("paper: 0.53M vertices; 17,563 components; 58k clusters over 413k vertices; ~9k validated")
	return r, nil
}
