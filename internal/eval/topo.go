package eval

import (
	"fmt"
	"sort"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/rng"
	"github.com/hobbitscan/hobbit/internal/trace"
)

func init() {
	register("fig11", "Figure 11: discovered-links ratio, Hobbit blocks vs /24s", runFig11)
}

// runFig11 reproduces the topology-discovery experiment: choosing
// destinations per Hobbit block discovers more links per probe than
// choosing per /24, because traceroutes within one Hobbit block are
// largely redundant.
func runFig11(l *Lab) (*Report, error) {
	r := newReport("fig11", "discovered-links ratio")
	ds, err := l.TraceDataset()
	if err != nil {
		return nil, err
	}
	out, err := l.Pipeline()
	if err != nil {
		return nil, err
	}
	if len(ds.Blocks) == 0 {
		r.printf("empty trace dataset")
		return r, nil
	}

	// Total distinct links across the dataset.
	allLinks := make(map[trace.Link]struct{})
	byBlock := make(map[iputil.Block24]*BlockTraces, len(ds.Blocks))
	for _, bt := range ds.Blocks {
		byBlock[bt.Block] = bt
		for ln := range bt.Links() {
			allLinks[ln] = struct{}{}
		}
	}
	if len(allLinks) == 0 {
		r.printf("no links in dataset")
		return r, nil
	}

	// Group the dataset's /24s by the Hobbit aggregate they belong to;
	// /24s outside any aggregate form their own group.
	groupOf := make(map[iputil.Block24]int)
	for _, agg := range out.Final {
		for _, b := range agg.Blocks24 {
			groupOf[b] = agg.ID
		}
	}
	hobbitGroups := make(map[int][]*BlockTraces)
	next := len(out.Final)
	for _, bt := range ds.Blocks {
		id, ok := groupOf[bt.Block]
		if !ok {
			id = next
			next++
		}
		hobbitGroups[id] = append(hobbitGroups[id], bt)
	}

	num24 := len(ds.Blocks)
	r.printf("dataset: %d /24s in %d Hobbit blocks; %d distinct links",
		num24, len(hobbitGroups), len(allLinks))
	r.printf("%-26s %12s %12s", "avg dests per /24", "per-/24", "per-Hobbit")

	for _, k := range []int{1, 2, 4, 8, 16, 32, 64, 96} {
		budget := k * num24
		r24 := linkRatio(select24(ds, k, l.Seed), allLinks)
		rHob := linkRatio(selectHobbit(hobbitGroups, budget, l.Seed), allLinks)
		r.printf("%-26d %11.1f%% %11.1f%%", k, 100*r24, 100*rHob)
		r.Metrics[fmt.Sprintf("ratio24_k%d", k)] = r24
		r.Metrics[fmt.Sprintf("ratioHobbit_k%d", k)] = rHob
	}
	r.printf("paper: selecting from Hobbit blocks always discovers more links at equal budget")
	return r, nil
}

// select24 picks k destinations from each /24 (round-robin over its
// addresses) and returns their traces.
func select24(ds *TraceDataset, k int, seed uint64) []*trace.PathSet {
	var out []*trace.PathSet
	for _, bt := range ds.Blocks {
		n := k
		if n > len(bt.Sets) {
			n = len(bt.Sets)
		}
		perm := permIndices(len(bt.Sets), seed, uint64(bt.Block))
		for i := 0; i < n; i++ {
			out = append(out, bt.Sets[perm[i]])
		}
	}
	return out
}

// selectHobbit spreads the total budget across Hobbit blocks round-robin
// (one destination per block per round, like the paper's repeated
// selection).
func selectHobbit(groups map[int][]*BlockTraces, budget int, seed uint64) []*trace.PathSet {
	// Flatten each group's destinations into one rotation.
	ids := make([]int, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	type cursor struct {
		sets []*trace.PathSet
		pos  int
	}
	cursors := make([]*cursor, 0, len(ids))
	for _, id := range ids {
		c := &cursor{}
		for _, bt := range groups[id] {
			c.sets = append(c.sets, bt.Sets...)
		}
		perm := permIndices(len(c.sets), seed, uint64(id))
		shuffled := make([]*trace.PathSet, len(c.sets))
		for i, p := range perm {
			shuffled[i] = c.sets[p]
		}
		c.sets = shuffled
		cursors = append(cursors, c)
	}
	var out []*trace.PathSet
	for len(out) < budget {
		advanced := false
		for _, c := range cursors {
			if len(out) >= budget {
				break
			}
			if c.pos < len(c.sets) {
				out = append(out, c.sets[c.pos])
				c.pos++
				advanced = true
			}
		}
		if !advanced {
			break
		}
	}
	return out
}

func permIndices(n int, seed uint64, key uint64) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i+1, seed, key, uint64(i), 0xf11)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

func linkRatio(sets []*trace.PathSet, all map[trace.Link]struct{}) float64 {
	found := make(map[trace.Link]struct{})
	for _, s := range sets {
		for _, p := range s.Paths() {
			for _, ln := range p.Links() {
				found[ln] = struct{}{}
			}
		}
	}
	return float64(len(found)) / float64(len(all))
}
