package eval

import (
	"fmt"
	"sort"

	"github.com/hobbitscan/hobbit/internal/confidence"
	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/stats"
)

func init() {
	register("coverage", "Section 3.1: Hobbit coverage, last-hop vs entire traceroute", runCoverage)
	register("fig3a", "Figure 3a: cardinality CDF for detected vs undetected homogeneous /24s", runFig3a)
	register("fig3b", "Figure 3b: cardinality CDF by metric (last-hop, sub-path, entire path)", runFig3b)
	register("fig3c", "Figure 3c: probed-address CDF for detected vs undetected blocks", runFig3c)
	register("fig4", "Figure 4: confidence per <cardinality, probed> cell", runFig4)
}

// staticJudge applies Hobbit's determination to a full grouping: a single
// group (>= 6 members) or a non-hierarchical relationship means
// homogeneous.
func staticJudge(groups map[iputil.Addr][]iputil.Addr) bool {
	gs := make([]hobbit.Group, 0, len(groups))
	for lh, addrs := range groups {
		cp := append([]iputil.Addr(nil), addrs...)
		iputil.SortAddrs(cp)
		gs = append(gs, hobbit.Group{LastHop: lh, Addrs: cp})
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i].LastHop < gs[j].LastHop })
	if len(gs) == 1 {
		return len(gs[0].Addrs) >= 6
	}
	return hobbit.NonHierarchical(gs)
}

// pathGroups groups a block's addresses by their full path-set signature,
// the "entire traceroute" metric of Section 3.1.
func pathGroups(bt *BlockTraces) map[iputil.Addr][]iputil.Addr {
	bySig := make(map[string][]iputil.Addr)
	for i, s := range bt.Sets {
		keys := make([]string, 0, s.Len())
		for _, p := range s.Paths() {
			keys = append(keys, p.Key())
		}
		sort.Strings(keys)
		sig := ""
		for _, k := range keys {
			sig += k + "|"
		}
		bySig[sig] = append(bySig[sig], bt.Addrs[i])
	}
	// Re-key by a synthetic group id (the signature itself is not an
	// address; use the group's first address as its label).
	out := make(map[iputil.Addr][]iputil.Addr, len(bySig))
	for _, addrs := range bySig {
		iputil.SortAddrs(addrs)
		out[addrs[0]] = append([]iputil.Addr(nil), addrs...)
	}
	return out
}

// runCoverage compares Hobbit's coverage when applied to last-hop routers
// vs entire traceroutes over truly homogeneous blocks whose last hops
// differ (the paper's fair-comparison selection): 92% vs 70%.
func runCoverage(l *Lab) (*Report, error) {
	r := newReport("coverage", "Hobbit coverage by metric")
	ds, err := l.TraceDataset()
	if err != nil {
		return nil, err
	}
	lastHopOK, pathOK, total := 0, 0, 0
	for _, bt := range ds.Blocks {
		groups := bt.LastHopGroups()
		if len(groups) < 2 {
			// The paper selects blocks with differing last hops, where
			// the hierarchy test is actually exercised.
			continue
		}
		total++
		if staticJudge(groups) {
			lastHopOK++
		}
		if staticJudge(pathGroups(bt)) {
			pathOK++
		}
	}
	if total == 0 {
		r.printf("no multi-last-hop homogeneous blocks traced")
		return r, nil
	}
	r.Metrics["coverage_lasthop"] = ratio(lastHopOK, total)
	r.Metrics["coverage_path"] = ratio(pathOK, total)
	r.printf("homogeneous /24s with differing last hops: %d", total)
	r.printf("  judged homogeneous via last-hop routers:   %5.1f%%   (paper: 92%%)", 100*ratio(lastHopOK, total))
	r.printf("  judged homogeneous via entire traceroute:  %5.1f%%   (paper: 70%%)", 100*ratio(pathOK, total))
	return r, nil
}

func renderCDFLine(r *Report, label string, c *stats.CDF) {
	if c.N() == 0 {
		r.printf("  %-22s (no data)", label)
		return
	}
	r.printf("  %-22s n=%-5d p25=%-6.1f median=%-6.1f p90=%-6.1f max=%-6.1f %s",
		label, c.N(), c.Quantile(0.25), c.Median(), c.Quantile(0.9), c.Max(), c.RenderCDF(24))
}

func runFig3a(l *Lab) (*Report, error) {
	r := newReport("fig3a", "cardinality CDF, detected vs undetected")
	ds, err := l.TraceDataset()
	if err != nil {
		return nil, err
	}
	var det, undet, all stats.CDF
	for _, bt := range ds.Blocks {
		card := float64(bt.CardinalityPaths())
		all.Add(card)
		if bt.Detected {
			det.Add(card)
		} else {
			undet.Add(card)
		}
	}
	renderCDFLine(r, "detected /24s", &det)
	renderCDFLine(r, "undetected /24s", &undet)
	renderCDFLine(r, "all /24s", &all)
	if det.N() > 0 {
		r.Metrics["detected_median_cardinality"] = det.Median()
	}
	if undet.N() > 0 {
		r.Metrics["undetected_median_cardinality"] = undet.Median()
		r.printf("paper: undetected blocks skew toward higher cardinalities")
	}
	return r, nil
}

func runFig3b(l *Lab) (*Report, error) {
	r := newReport("fig3b", "cardinality CDF by metric")
	ds, err := l.TraceDataset()
	if err != nil {
		return nil, err
	}
	var lastHop, subPath, whole stats.CDF
	for _, bt := range ds.Blocks {
		lastHop.Add(float64(bt.CardinalityLastHops()))
		subPath.Add(float64(bt.CardinalitySubPaths()))
		whole.Add(float64(bt.CardinalityPaths()))
	}
	renderCDFLine(r, "last-hop", &lastHop)
	renderCDFLine(r, "sub-path", &subPath)
	renderCDFLine(r, "entire path", &whole)
	if lastHop.N() > 0 {
		r.Metrics["median_lasthop"] = lastHop.Median()
		r.Metrics["median_subpath"] = subPath.Median()
		r.Metrics["median_path"] = whole.Median()
		r.printf("paper: cardinality shrinks with smaller path parts (last-hop << sub-path << entire)")
	}
	return r, nil
}

func runFig3c(l *Lab) (*Report, error) {
	r := newReport("fig3c", "probed addresses, detected vs undetected")
	ds, err := l.TraceDataset()
	if err != nil {
		return nil, err
	}
	var det, undet stats.CDF
	for _, bt := range ds.Blocks {
		n := float64(bt.ProbedBySequential)
		if bt.Detected {
			det.Add(n)
		} else {
			undet.Add(n)
		}
	}
	renderCDFLine(r, "detected /24s", &det)
	renderCDFLine(r, "undetected /24s", &undet)
	if det.N() > 0 {
		r.Metrics["detected_median_probed"] = det.Median()
	}
	if undet.N() > 0 {
		r.Metrics["undetected_median_probed"] = undet.Median()
	}
	return r, nil
}

// BuildConfidence constructs the Figure 4 table from the trace dataset's
// full last-hop groupings.
func (l *Lab) BuildConfidence(samples int) (*confidence.Table, error) {
	ds, err := l.TraceDataset()
	if err != nil {
		return nil, err
	}
	var obs []confidence.BlockObservation
	for _, bt := range ds.Blocks {
		groups := bt.LastHopGroups()
		o := confidence.BlockObservation{Block: bt.Block}
		for lh, addrs := range groups {
			cp := append([]iputil.Addr(nil), addrs...)
			iputil.SortAddrs(cp)
			o.Groups = append(o.Groups, hobbit.Group{LastHop: lh, Addrs: cp})
		}
		sort.Slice(o.Groups, func(i, j int) bool { return o.Groups[i].LastHop < o.Groups[j].LastHop })
		obs = append(obs, o)
	}
	b := confidence.DefaultBuilder(l.Seed)
	b.Samples = samples
	return b.Build(obs)
}

func runFig4(l *Lab) (*Report, error) {
	r := newReport("fig4", "confidence per <cardinality, probed> cell")
	tbl, err := l.BuildConfidence(2000)
	if err != nil {
		return nil, err
	}
	cells := tbl.Cells()
	if len(cells) == 0 {
		r.printf("no populated cells")
		return r, nil
	}
	// Render one row per cardinality at a few probe counts.
	byCard := make(map[int][]confidence.Cell)
	var cards []int
	for _, c := range cells {
		if _, ok := byCard[c.Cardinality]; !ok {
			cards = append(cards, c.Cardinality)
		}
		byCard[c.Cardinality] = append(byCard[c.Cardinality], c)
	}
	sort.Ints(cards)
	probePoints := []int{4, 6, 10, 16, 24, 32, 44}
	header := "  card |"
	for _, n := range probePoints {
		header += sprintfPad(n)
	}
	r.printf("%s", header)
	atLeast95 := 0
	for _, k := range cards {
		line := sprintfCard(k)
		for _, n := range probePoints {
			c, ok := tbl.Confidence(k, n)
			if !ok {
				line += "   -- "
				continue
			}
			line += sprintfConf(c)
			if c >= 0.95 {
				atLeast95++
			}
		}
		r.printf("%s", line)
	}
	r.Metrics["cells"] = float64(len(cells))
	r.Metrics["cells_at_95_rendered"] = float64(atLeast95)
	r.printf("paper: confidence rises with probed addresses; falls with cardinality near the diagonal")
	return r, nil
}

func sprintfPad(n int) string      { return fmt.Sprintf("%5d ", n) }
func sprintfCard(k int) string     { return fmt.Sprintf("  %4d |", k) }
func sprintfConf(c float64) string { return fmt.Sprintf(" %4.2f ", c) }
