package eval

import (
	"os"
	"sync"
	"testing"
)

var (
	labOnce sync.Once
	sharedL *Lab
	labErr  error
)

// sharedLab builds one laboratory world for all eval tests; the pipeline
// and trace dataset are cached inside it.
func sharedLab(t *testing.T) *Lab {
	t.Helper()
	if testing.Short() {
		t.Skip("eval experiments are slow")
	}
	labOnce.Do(func() {
		sharedL, labErr = NewLab(LabConfig{NumBlocks: 3000, BigBlockScale: 0.04, TraceBlocks: 200})
	})
	if labErr != nil {
		t.Fatal(labErr)
	}
	return sharedL
}

func runExp(t *testing.T, id string) *Report {
	t.Helper()
	l := sharedLab(t)
	r, err := Run(l, id)
	if err != nil {
		t.Fatalf("experiment %s: %v", id, err)
	}
	if testing.Verbose() {
		r.WriteTo(os.Stderr)
	}
	return r
}

func metricBetween(t *testing.T, r *Report, key string, lo, hi float64) {
	t.Helper()
	v, ok := r.Metrics[key]
	if !ok {
		t.Fatalf("%s: metric %q missing (have %v)", r.ID, key, r.Metrics)
	}
	if v < lo || v > hi {
		t.Errorf("%s: metric %s = %v, want in [%v, %v]", r.ID, key, v, lo, hi)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"bgpmix", "coverage", "fig10", "fig11", "fig12", "fig3a",
		"fig3b", "fig3c", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"longitudinal", "mclstats", "outage", "prelim", "table1",
		"table2", "table3", "table4", "table5", "vantage",
	}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	if _, err := Run(&Lab{}, "nope"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestBGPMix(t *testing.T) {
	r := runExp(t, "bgpmix")
	metricBetween(t, r, "share_24", 0.45, 0.70)
	metricBetween(t, r, "prefixes", 100, 1e9)
}

func TestPrelim(t *testing.T) {
	r := runExp(t, "prelim")
	// The straw-man must call the vast majority heterogeneous.
	metricBetween(t, r, "strawman_heterogeneous", 0.6, 1.0)
	// Wildcards help only slightly.
	if r.Metrics["strawman_heterogeneous_wildcard"] > r.Metrics["strawman_heterogeneous"]+1e-9 {
		t.Error("wildcard matching increased heterogeneity")
	}
	// Per-destination load balancing: most /31 pairs differ in routes,
	// a minority in last hops.
	metricBetween(t, r, "pair31_distinct_routes", 0.5, 1.0)
	metricBetween(t, r, "pair31_distinct_lasthops", 0.1, 0.55)
	if r.Metrics["pair31_distinct_lasthops"] >= r.Metrics["pair31_distinct_routes"] {
		t.Error("last-hop differences should be rarer than route differences")
	}
}

func TestCoverage(t *testing.T) {
	r := runExp(t, "coverage")
	// The paper reports 92%; our synthetic K-mix carries more of the
	// statically-hard K=2 case, landing lower — the reproduction target
	// is the wide margin over the entire-traceroute metric below.
	metricBetween(t, r, "coverage_lasthop", 0.55, 1.0)
	// Last-hop coverage must beat entire-traceroute coverage.
	if r.Metrics["coverage_lasthop"] <= r.Metrics["coverage_path"] {
		t.Errorf("last-hop coverage %v should exceed path coverage %v",
			r.Metrics["coverage_lasthop"], r.Metrics["coverage_path"])
	}
}

func TestFig3(t *testing.T) {
	a := runExp(t, "fig3a")
	if a.Metrics["undetected_median_cardinality"] > 0 &&
		a.Metrics["undetected_median_cardinality"] < a.Metrics["detected_median_cardinality"] {
		t.Log("note: undetected blocks did not skew to higher cardinality at this scale")
	}
	b := runExp(t, "fig3b")
	// Fig 3b's ordering: last-hop << sub-path <= entire path.
	if b.Metrics["median_lasthop"] >= b.Metrics["median_path"] {
		t.Errorf("last-hop cardinality %v should be far below path cardinality %v",
			b.Metrics["median_lasthop"], b.Metrics["median_path"])
	}
	if b.Metrics["median_subpath"] > b.Metrics["median_path"] {
		t.Errorf("sub-path cardinality %v should not exceed path cardinality %v",
			b.Metrics["median_subpath"], b.Metrics["median_path"])
	}
	c := runExp(t, "fig3c")
	if c.Metrics["detected_median_probed"] <= 0 {
		t.Error("fig3c produced no detected series")
	}
}

func TestFig4(t *testing.T) {
	r := runExp(t, "fig4")
	metricBetween(t, r, "cells", 10, 1e9)
}

func TestTable1(t *testing.T) {
	r := runExp(t, "table1")
	metricBetween(t, r, "homogeneous_of_measurable", 0.80, 0.97)
	metricBetween(t, r, "share_too_few_active", 0.10, 0.35)
	metricBetween(t, r, "share_unresponsive_last-hop", 0.08, 0.28)
	metricBetween(t, r, "share_same_last-hop_router", 0.10, 0.28)
	metricBetween(t, r, "share_non-hierarchical", 0.25, 0.55)
	metricBetween(t, r, "share_different_but_hierarchical", 0.02, 0.15)
}

func TestTable2(t *testing.T) {
	r := runExp(t, "table2")
	if r.Metrics["very_likely_hetero"] < 5 {
		t.Skip("too few heterogeneous blocks at this scale")
	}
	// {/25, /25} must dominate, as in the paper (50.48%).
	metricBetween(t, r, "share_25_25", 0.3, 0.75)
}

func TestTable3(t *testing.T) {
	r := runExp(t, "table3")
	if _, ok := r.Metrics["top2_share"]; !ok {
		t.Skip("no heterogeneous blocks at this scale")
	}
	metricBetween(t, r, "top2_share", 0.35, 0.85)
}

func TestTable4(t *testing.T) {
	r := runExp(t, "table4")
	if _, ok := r.Metrics["whois_confirmed"]; !ok {
		t.Skip("no blocks verified at this scale")
	}
	metricBetween(t, r, "whois_confirmed", 0.95, 1.0)
	metricBetween(t, r, "median_reg_year", 2015, 2016)
}

func TestFig5(t *testing.T) {
	r := runExp(t, "fig5")
	if r.Metrics["aggregates"] >= r.Metrics["homogeneous_24s"] {
		t.Error("aggregation did not reduce the block count")
	}
	if r.Metrics["size1"] <= 0 {
		t.Error("no singleton aggregates")
	}
	if r.Metrics["size_ge16"] <= 0 {
		t.Error("no large aggregates")
	}
}

func TestTable5(t *testing.T) {
	r := runExp(t, "table5")
	metricBetween(t, r, "top1_size", 10, 1e9)
	metricBetween(t, r, "hosting_in_top", 3, 15)
}

func TestFig6(t *testing.T) {
	r := runExp(t, "fig6")
	metricBetween(t, r, "cellular_blocks", 1, 15)
	metricBetween(t, r, "stable_blocks", 1, 15)
}

func TestFig7(t *testing.T) {
	r := runExp(t, "fig7")
	// Many adjacent pairs are contiguous; min/max spans are wide.
	metricBetween(t, r, "adjacent_lcp_ge20", 0.4, 1.0)
	metricBetween(t, r, "minmax_lcp_le1", 0.1, 0.95)
}

func TestFig8(t *testing.T) {
	r := runExp(t, "fig8")
	metricBetween(t, r, "rendered", 1, 9)
}

func TestFig9(t *testing.T) {
	r := runExp(t, "fig9")
	if _, ok := r.Metrics["matched_median_ratio"]; !ok {
		t.Skip("no rule-matching clusters at this scale")
	}
	// Rule-matching clusters have high identical-pair ratios.
	metricBetween(t, r, "matched_median_ratio", 0.5, 1.0)
}

func TestFig10(t *testing.T) {
	r := runExp(t, "fig10")
	if r.Metrics["blocks_after"] > r.Metrics["blocks_before"] {
		t.Error("clustering increased the block count")
	}
	if _, ok := r.Metrics["dublin_before"]; ok {
		// The starved Dublin aggregate must reassemble substantially.
		if r.Metrics["dublin_after"] < r.Metrics["dublin_before"] {
			t.Errorf("Dublin aggregate shrank: %v -> %v",
				r.Metrics["dublin_before"], r.Metrics["dublin_after"])
		}
	}
}

func TestFig11(t *testing.T) {
	r := runExp(t, "fig11")
	// At k=1 both strategies probe roughly one address per group, so
	// allow sampling noise; from k=4 on the Hobbit selection must win
	// clearly.
	if r.Metrics["ratioHobbit_k1"] < r.Metrics["ratio24_k1"]-0.02 {
		t.Errorf("Hobbit selection lost at k=1: %v vs %v",
			r.Metrics["ratioHobbit_k1"], r.Metrics["ratio24_k1"])
	}
	for _, k := range []string{"k4", "k8", "k16"} {
		if r.Metrics["ratioHobbit_"+k] <= r.Metrics["ratio24_"+k] {
			t.Errorf("Hobbit selection lost at %s: %v vs %v",
				k, r.Metrics["ratioHobbit_"+k], r.Metrics["ratio24_"+k])
		}
	}
	// Ratios are monotone in budget for both strategies.
	if r.Metrics["ratio24_k16"] < r.Metrics["ratio24_k1"] {
		t.Error("per-/24 ratio not monotone")
	}
}

func TestFig12(t *testing.T) {
	r := runExp(t, "fig12")
	if _, ok := r.Metrics["advantage_1x"]; !ok {
		t.Skip("TWC population too small at this scale")
	}
	// The stratified sample must beat the equal-size random sample.
	metricBetween(t, r, "advantage_1x", 1.1, 10)
	// And random sampling catches up as its budget grows.
	if r.Metrics["random4_schemes"] < r.Metrics["random1_schemes"] {
		t.Error("random sampling not monotone in budget")
	}
}

func TestLongitudinal(t *testing.T) {
	r := runExp(t, "longitudinal")
	// The population-level share stays roughly stable across epochs.
	metricBetween(t, r, "share_epoch0", 0.75, 1.0)
	metricBetween(t, r, "share_epoch3", 0.75, 1.0)
	if d := r.Metrics["share_epoch0"] - r.Metrics["share_epoch3"]; d > 0.1 || d < -0.1 {
		t.Errorf("homogeneity share drifted by %v", d)
	}
	if tracked, ok := r.Metrics["splitters_tracked"]; ok && tracked > 0 {
		// Scheduled splits must be observed as homogeneity loss.
		if r.Metrics["splitters_flipped"] < tracked*0.5 {
			t.Errorf("only %v of %v splitters flipped",
				r.Metrics["splitters_flipped"], tracked)
		}
	}
}

func TestVantage(t *testing.T) {
	r := runExp(t, "vantage")
	if _, ok := r.Metrics["sensitive_one"]; !ok {
		t.Skip("no source-sensitive blocks examined")
	}
	// Extra vantages must raise completeness for source-hashing
	// balancers and do nearly nothing otherwise (Section 6.1).
	if r.Metrics["sensitive_multi"] < r.Metrics["sensitive_one"] {
		t.Errorf("multi-vantage completeness fell: %v -> %v",
			r.Metrics["sensitive_one"], r.Metrics["sensitive_multi"])
	}
	if gain, ok := r.Metrics["insensitive_gain"]; ok && gain > 0.05 {
		t.Errorf("vantage diversity should not help destination-only balancers (gain %v)", gain)
	}
}

func TestOutage(t *testing.T) {
	r := runExp(t, "outage")
	if _, ok := r.Metrics["probes_per24"]; !ok {
		t.Skip("nothing tracked at this scale")
	}
	// Per-block tracking must be cheaper at equal recall.
	if r.Metrics["probes_block"] >= r.Metrics["probes_per24"] {
		t.Errorf("per-block tracking used %v probes vs %v per /24",
			r.Metrics["probes_block"], r.Metrics["probes_per24"])
	}
	if r.Metrics["recall_block"] < r.Metrics["recall_per24"]-0.05 {
		t.Errorf("per-block recall %v fell below per-/24 %v",
			r.Metrics["recall_block"], r.Metrics["recall_per24"])
	}
	metricBetween(t, r, "precision_block", 0.7, 1.0)
}

func TestMCLStats(t *testing.T) {
	r := runExp(t, "mclstats")
	metricBetween(t, r, "vertices", 10, 1e9)
	if r.Metrics["clusters"] > 0 && r.Metrics["clustered_aggregates"] < 2*r.Metrics["clusters"] {
		t.Error("clusters must have at least two members each")
	}
}
