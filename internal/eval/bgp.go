package eval

import "sort"

func init() {
	register("bgpmix", "Section 1: BGP prefix-length mix (53% of prefixes are /24s)", runBGPMix)
}

// runBGPMix reproduces the introductory statistic that motivates the /24
// as a unit: in a RouteViews-style snapshot of the world's routing table,
// /24s are the most common prefix length by far.
func runBGPMix(l *Lab) (*Report, error) {
	r := newReport("bgpmix", "BGP prefix-length mix")
	prefixes := l.World.BGPPrefixes()
	if len(prefixes) == 0 {
		r.printf("empty BGP table")
		return r, nil
	}
	counts := make(map[int]int)
	for _, p := range prefixes {
		counts[p.Len]++
	}
	lens := make([]int, 0, len(counts))
	for ln := range counts {
		lens = append(lens, ln)
	}
	sort.Ints(lens)
	r.printf("%-8s %10s %8s", "prefix", "count", "share")
	for _, ln := range lens {
		r.printf("/%-7d %10d %7.1f%%", ln, counts[ln],
			100*float64(counts[ln])/float64(len(prefixes)))
	}
	share24 := float64(counts[24]) / float64(len(prefixes))
	r.Metrics["prefixes"] = float64(len(prefixes))
	r.Metrics["share_24"] = share24
	r.printf("table size: %d prefixes; /24 share: %.1f%% (paper: 53%% of the RouteViews snapshot)",
		len(prefixes), 100*share24)
	return r, nil
}
