package eval

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/stats"
)

func init() {
	register("table1", "Table 1: homogeneity classification of measured /24s", runTable1)
	register("table2", "Table 2: sub-block composition of very-likely-heterogeneous /24s", runTable2)
	register("table3", "Table 3: top ASes by heterogeneous /24 count", runTable3)
	register("table4", "Table 4: WHOIS verification of split /24s", runTable4)
}

func runTable1(l *Lab) (*Report, error) {
	r := newReport("table1", "classification of measured /24s")
	out, err := l.Pipeline()
	if err != nil {
		return nil, err
	}
	sum := out.Campaign.Summary()
	paper := map[hobbit.Class]float64{
		hobbit.ClassTooFewActive:        24.9,
		hobbit.ClassUnresponsiveLastHop: 16.8,
		hobbit.ClassSameLastHop:         18.2,
		hobbit.ClassNonHierarchical:     34.2,
		hobbit.ClassHierarchical:        5.9,
	}
	r.printf("%-28s %8s %8s %10s", "classification", "count", "share", "paper")
	for _, cls := range []hobbit.Class{
		hobbit.ClassTooFewActive, hobbit.ClassUnresponsiveLastHop,
		hobbit.ClassSameLastHop, hobbit.ClassNonHierarchical,
		hobbit.ClassHierarchical,
	} {
		share := 100 * ratio(sum.Counts[cls], sum.Total)
		r.printf("%-28s %8d %7.1f%% %9.1f%%", cls, sum.Counts[cls], share, paper[cls])
		r.Metrics["share_"+metricKey(cls)] = share / 100
	}
	homShare := ratio(sum.Homogeneous(), sum.Measurable())
	r.Metrics["homogeneous_of_measurable"] = homShare
	r.printf("measured /24s: %d; homogeneous of measurable: %.1f%% (paper: 90%%)",
		sum.Total, 100*homShare)
	return r, nil
}

func metricKey(c hobbit.Class) string {
	return strings.ReplaceAll(strings.ToLower(c.String()), " ", "_")
}

func runTable2(l *Lab) (*Report, error) {
	r := newReport("table2", "sub-block compositions")
	out, err := l.Pipeline()
	if err != nil {
		return nil, err
	}
	// Examine the flagged blocks closely (as Section 4.2 does): an
	// exhaustive measurement fills in the sub-block groups the early
	// termination left sparse, so enclosing prefixes reach their true
	// extent.
	ex := &hobbit.Measurer{Net: l.Net, Seed: l.Seed, Exhaustive: true, Term: hobbit.ProbeAll{}}
	comps := make(map[string]int)
	total := 0
	for _, br := range out.Campaign.ClassBlocks(hobbit.ClassHierarchical) {
		if !br.VeryLikelyHetero {
			continue
		}
		full := ex.MeasureBlock(br.Block, out.Dataset.ActivesBy26(br.Block))
		subs, ok := hobbit.AlignedDisjoint(full.Groups)
		if !ok {
			// The denser view no longer matches the criterion.
			continue
		}
		// The paper's Table 2 lists compositions that tile the /24;
		// blocks where a sub-allocation has no responsive host yield a
		// partial view and are tallied separately.
		covered := 0
		for _, s := range subs {
			covered += s.Size()
		}
		total++
		if covered != 256 {
			comps["(partial view)"]++
			continue
		}
		comps[compKey(hobbit.Composition(subs))]++
	}
	if total == 0 {
		r.printf("no very-likely-heterogeneous blocks found")
		return r, nil
	}
	type row struct {
		key   string
		count int
	}
	rows := make([]row, 0, len(comps))
	for k, c := range comps {
		rows = append(rows, row{key: k, count: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].key < rows[j].key
	})
	paper := map[string]float64{
		"{/25, /25}":                     50.48,
		"{/25, /26, /26}":                20.65,
		"{/26, /26, /26, /26}":           15.79,
		"{/25, /26, /27, /27}":           5.92,
		"{/26, /26, /26, /27, /27}":      4.63,
		"{/26, /26, /27, /27, /27, /27}": 1.13,
		"{/25, /26, /27, /28, /28}":      0.81,
		"{/25, /27, /27, /27, /27}":      0.58,
	}
	r.printf("very-likely-heterogeneous /24s: %d", total)
	r.Metrics["very_likely_hetero"] = float64(total)
	r.printf("%-36s %8s %8s %9s", "composition", "count", "share", "paper")
	for _, rw := range rows {
		share := 100 * ratio(rw.count, total)
		p, ok := paper[rw.key]
		ps := "   --"
		if ok {
			ps = fmt.Sprintf("%8.2f%%", p)
		}
		r.printf("%-36s %8d %7.2f%% %s", rw.key, rw.count, share, ps)
	}
	if n := comps["{/25, /25}"]; n > 0 {
		r.Metrics["share_25_25"] = ratio(n, total)
	}
	return r, nil
}

func compKey(lengths []int) string {
	parts := make([]string, len(lengths))
	for i, l := range lengths {
		parts[i] = fmt.Sprintf("/%d", l)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func runTable3(l *Lab) (*Report, error) {
	r := newReport("table3", "top ASes by heterogeneous /24s")
	out, err := l.Pipeline()
	if err != nil {
		return nil, err
	}
	var hetero []iputil.Block24
	for _, br := range out.Campaign.ClassBlocks(hobbit.ClassHierarchical) {
		if br.VeryLikelyHetero {
			hetero = append(hetero, br.Block)
		}
	}
	if len(hetero) == 0 {
		r.printf("no very-likely-heterogeneous blocks found")
		return r, nil
	}
	groups := l.World.Geo().GroupByAS(hetero)
	r.printf("%-6s %-8s %-22s %-10s %-14s %s", "rank", "#/24s", "organization", "country", "type", "AS")
	top := 0
	var topTwoShare int
	for i, g := range groups {
		if i >= 10 {
			break
		}
		top++
		if i < 2 {
			topTwoShare += len(g.Blocks)
		}
		r.printf("%-6d %-8d %-22s %-10s %-14s AS%d",
			i+1, len(g.Blocks), g.AS.Org, g.AS.Country, g.AS.Type, g.AS.ASN)
	}
	r.Metrics["top2_share"] = ratio(topTwoShare, len(hetero))
	r.printf("top-2 AS share of heterogeneous /24s: %.1f%% (paper: ~60%%)", 100*ratio(topTwoShare, len(hetero)))
	return r, nil
}

func runTable4(l *Lab) (*Report, error) {
	r := newReport("table4", "WHOIS verification")
	out, err := l.Pipeline()
	if err != nil {
		return nil, err
	}
	confirmed, checked := 0, 0
	var exampleShown bool
	for _, br := range out.Campaign.ClassBlocks(hobbit.ClassHierarchical) {
		if !br.VeryLikelyHetero {
			continue
		}
		checked++
		if l.World.Whois().IsSplit(br.Block) {
			confirmed++
			if !exampleShown {
				exampleShown = true
				r.printf("example WHOIS response for %v:", br.Block)
				for _, rec := range l.World.Whois().Query(br.Block) {
					r.printf("  %-20v org=%-24s type=%-9s reg=%s",
						rec.Prefix, rec.OrgName, rec.NetType, rec.RegDate)
				}
			}
		}
	}
	if checked == 0 {
		r.printf("no blocks to verify")
		return r, nil
	}
	r.Metrics["whois_confirmed"] = ratio(confirmed, checked)
	r.printf("WHOIS-confirmed splits: %d / %d (%.1f%%)", confirmed, checked, 100*ratio(confirmed, checked))
	regDates := &stats.CDF{}
	for _, br := range out.Campaign.ClassBlocks(hobbit.ClassHierarchical) {
		if !br.VeryLikelyHetero {
			continue
		}
		for _, rec := range l.World.Whois().Query(br.Block) {
			if len(rec.RegDate) >= 4 {
				var year float64
				fmt.Sscanf(rec.RegDate[:4], "%f", &year)
				regDates.Add(year)
			}
		}
	}
	if regDates.N() > 0 {
		r.printf("median registration year of sub-allocations: %.0f (paper: 2015 or later)", regDates.Median())
		r.Metrics["median_reg_year"] = regDates.Median()
	}
	return r, nil
}
