// Package eval regenerates every table and figure of the paper's
// evaluation over the synthetic substrate: each experiment runs the same
// code path the original measurement campaign did — census, probing,
// classification, aggregation, clustering — and reports the rows or
// series the paper reports, for side-by-side comparison in EXPERIMENTS.md.
package eval

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/probe"
)

// Lab is the shared environment experiments run in: one world, one probing
// surface, and the cached end-to-end pipeline output.
type Lab struct {
	World *netsim.World
	Net   *probe.SimNetwork
	Seed  uint64

	mu      sync.Mutex
	out     *core.Output
	dataset *TraceDataset
}

// LabConfig sizes the laboratory world.
type LabConfig struct {
	// NumBlocks is the /24 universe size (default 4000).
	NumBlocks int
	// BigBlockScale scales the planted Table 5 aggregates (default
	// 0.05 so laboratory runs stay fast; 1.0 reproduces paper-sized
	// blocks).
	BigBlockScale float64
	// Seed defaults to the netsim default seed.
	Seed uint64
	// TraceBlocks bounds the homogeneous blocks fully traced for the
	// dataset-driven experiments (default 250).
	TraceBlocks int
}

func (c LabConfig) withDefaults() LabConfig {
	if c.NumBlocks <= 0 {
		c.NumBlocks = 4000
	}
	if c.BigBlockScale <= 0 {
		c.BigBlockScale = 0.05
	}
	if c.TraceBlocks <= 0 {
		c.TraceBlocks = 250
	}
	if c.Seed == 0 {
		c.Seed = 0x40bb17
	}
	return c
}

// NewLab builds a laboratory world.
func NewLab(cfg LabConfig) (*Lab, error) {
	cfg = cfg.withDefaults()
	wcfg := netsim.DefaultConfig(cfg.NumBlocks)
	wcfg.BigBlockScale = cfg.BigBlockScale
	wcfg.Seed = cfg.Seed
	w, err := netsim.New(wcfg)
	if err != nil {
		return nil, err
	}
	return &Lab{
		World: w,
		Net:   probe.NewSimNetwork(w),
		Seed:  cfg.Seed,
	}, nil
}

// traceBlockCap returns the block budget for full-trace datasets.
func (l *Lab) traceBlockCap() int { return 250 }

// strideSample picks up to n elements spread evenly across a slice, so
// bounded experiment samples stay representative of the whole universe
// (consecutive /24s share allocation regions and pops).
func strideSample[T any](in []T, n int) []T {
	if n <= 0 || len(in) <= n {
		return in
	}
	out := make([]T, 0, n)
	step := float64(len(in)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, in[int(float64(i)*step)])
	}
	return out
}

// Pipeline returns the cached end-to-end output, running it on first use.
func (l *Lab) Pipeline() (*core.Output, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.out != nil {
		return l.out, nil
	}
	p := &core.Pipeline{
		Net:     l.Net,
		Scanner: l.World,
		Blocks:  l.World.Blocks(),
		Seed:    l.Seed,
		Options: core.Options{ValidatePairs: 2000},
	}
	// The lock deliberately serializes the one expensive pipeline run:
	// concurrent experiments sharing a Lab must see a single memoized
	// output, and the double-check pattern would instead run the
	// campaign once per racer.
	//lint:ignore lock-discipline memoization lock intentionally covers the single pipeline run
	out, err := p.Run(context.Background())
	if err != nil {
		return nil, err
	}
	l.out = out
	return out, nil
}

// Report is an experiment's structured outcome: rendered lines for the
// terminal plus named metrics for tests and EXPERIMENTS.md.
type Report struct {
	ID      string
	Title   string
	Lines   []string
	Metrics map[string]float64
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Metrics: make(map[string]float64)}
}

func (r *Report) printf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// WriteTo renders the report.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var n int64
	k, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, line := range r.Lines {
		k, err = fmt.Fprintln(w, line)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Experiment is a registered table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(l *Lab) (*Report, error)
}

var registry []Experiment

func register(id, title string, run func(l *Lab) (*Report, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// Experiments lists registered experiments sorted by ID.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Run executes one experiment by ID.
func Run(l *Lab, id string) (*Report, error) {
	for _, e := range registry {
		if e.ID == id {
			return e.Run(l)
		}
	}
	return nil, fmt.Errorf("eval: unknown experiment %q", id)
}
