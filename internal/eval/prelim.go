package eval

import (
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/trace"
)

func init() {
	register("prelim", "Section 2 preliminary analysis: route comparison and per-destination load balancing", runPrelim)
}

// prelimBlockCap bounds the /24s examined by the preliminary analyses.
const prelimBlockCap = 220

// runPrelim reproduces the Section 2 numbers:
//   - the straw-man whole-route comparison calls ~88% of /24s
//     heterogeneous (87% with unresponsive-hop wildcards);
//   - ~77% of /31 pairs have distinct route sets and ~30% distinct
//     last-hop routers, implicating per-destination load balancing.
func runPrelim(l *Lab) (*Report, error) {
	r := newReport("prelim", "Section 2 preliminary analysis")
	out, err := l.Pipeline()
	if err != nil {
		return nil, err
	}

	blocks := strideSample(out.Eligible, prelimBlockCap)

	// --- Straw-man: one destination per /26, enumerate all routes,
	// identical iff the sets share at least one route. Single-shot
	// probes (no retransmissions), like a classic traceroute practice,
	// leave the unresponsive-hop holes that Section 2.1's wildcard rule
	// tolerates. ---
	singleShot := probe.MDAOptions{Retries: -1}
	hetExact, hetWild, tested := 0, 0, 0
	for _, b := range blocks {
		by26 := out.Dataset.ActivesBy26(b)
		var sets []*trace.PathSet
		for q := 0; q < 4; q++ {
			for _, a := range by26[q] {
				res := probe.MDA(l.Net, a, singleShot)
				if res.DestReached && res.Paths.Len() > 0 {
					sets = append(sets, res.Paths)
					break
				}
			}
		}
		if len(sets) < 4 {
			continue
		}
		tested++
		if !allShareRoute(sets, false) {
			hetExact++
		}
		if !allShareRoute(sets, true) {
			hetWild++
		}
	}
	if tested == 0 {
		r.printf("no measurable blocks for the straw-man analysis")
		return r, nil
	}
	r.Metrics["strawman_heterogeneous"] = ratio(hetExact, tested)
	r.Metrics["strawman_heterogeneous_wildcard"] = ratio(hetWild, tested)
	r.printf("straw-man whole-route comparison over %d /24s:", tested)
	r.printf("  heterogeneous (exact matching):      %5.1f%%   (paper: 88%%)", 100*ratio(hetExact, tested))
	r.printf("  heterogeneous (wildcard matching):   %5.1f%%   (paper: 87%%)", 100*ratio(hetWild, tested))

	// --- /31 experiment: two addresses within one /31 per /24. ---
	distinctRoutes, distinctLastHops, pairs := 0, 0, 0
	for _, b := range blocks {
		a1, a2, ok := respondingPair31(out.Dataset.Actives(b))
		if !ok {
			continue
		}
		r1 := probe.MDA(l.Net, a1, probe.MDAOptions{})
		r2 := probe.MDA(l.Net, a2, probe.MDAOptions{})
		if !r1.DestReached || !r2.DestReached || r1.Paths.Len() == 0 || r2.Paths.Len() == 0 {
			continue
		}
		pairs++
		if !r1.Paths.SharesRoute(r2.Paths, true) {
			distinctRoutes++
		}
		lh1, _ := r1.Paths.LastHops()
		lh2, _ := r2.Paths.LastHops()
		if len(lh1) > 0 && len(lh2) > 0 && !shareAddr(lh1, lh2) {
			distinctLastHops++
		}
	}
	if pairs > 0 {
		r.Metrics["pair31_distinct_routes"] = ratio(distinctRoutes, pairs)
		r.Metrics["pair31_distinct_lasthops"] = ratio(distinctLastHops, pairs)
		r.printf("/31 pairs measured: %d", pairs)
		r.printf("  distinct route sets:                 %5.1f%%   (paper: 77%%)", 100*ratio(distinctRoutes, pairs))
		r.printf("  distinct last-hop routers:           %5.1f%%   (paper: 30%%)", 100*ratio(distinctLastHops, pairs))
	}
	return r, nil
}

// allShareRoute reports whether every pair of sets shares at least one
// route under the chosen matching.
func allShareRoute(sets []*trace.PathSet, wildcard bool) bool {
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			if !sets[i].SharesRoute(sets[j], wildcard) {
				return false
			}
		}
	}
	return true
}

// respondingPair31 finds two census-active addresses within one /31.
func respondingPair31(actives []iputil.Addr) (iputil.Addr, iputil.Addr, bool) {
	for i := 0; i+1 < len(actives); i++ {
		if actives[i].Block31() == actives[i+1].Block31() {
			return actives[i], actives[i+1], true
		}
	}
	return 0, 0, false
}

func shareAddr(a, b []iputil.Addr) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
