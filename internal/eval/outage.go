package eval

import (
	"github.com/hobbitscan/hobbit/internal/iputil"
)

func init() {
	register("outage", "Extension (Trinocular implication): block-level outage tracking", runOutage)
}

// runOutage demonstrates the paper's first motivating implication: an
// outage tracker that probes per Hobbit block instead of per /24 spends
// far fewer probes for the same verdicts, because members of a
// homogeneous block share fate. Epoch 1 introduces whole-aggregate
// outages; both strategies re-probe known responders and flag units where
// nobody answers.
func runOutage(l *Lab) (*Report, error) {
	r := newReport("outage", "outage tracking per /24 vs per block")
	out, err := l.Pipeline()
	if err != nil {
		return nil, err
	}
	defer l.World.SetEpoch(0)

	// Tracked universe: measured /24s with their epoch-0 responders.
	const perUnit = 10
	responders := make(map[iputil.Block24][]iputil.Addr)
	var tracked []iputil.Block24
	for _, b := range out.Eligible {
		var rs []iputil.Addr
		for _, a := range out.Dataset.Actives(b) {
			if l.World.RespondsNow(a) {
				rs = append(rs, a)
				if len(rs) >= perUnit+4 {
					break
				}
			}
		}
		if len(rs) >= perUnit {
			responders[b] = rs
			tracked = append(tracked, b)
		}
	}
	if len(tracked) == 0 {
		r.printf("nothing to track")
		return r, nil
	}

	blockOf := make(map[iputil.Block24]int)
	members := make(map[int][]iputil.Block24)
	for _, agg := range out.Final {
		for _, b := range agg.Blocks24 {
			if _, ok := responders[b]; ok {
				blockOf[b] = agg.ID
				members[agg.ID] = append(members[agg.ID], b)
			}
		}
	}
	nextID := len(out.Final)
	for _, b := range tracked {
		if _, ok := blockOf[b]; !ok {
			blockOf[b] = nextID
			members[nextID] = append(members[nextID], b)
			nextID++
		}
	}

	// The outage epoch.
	l.World.SetEpoch(1)
	probes := 0
	unitDown := func(bs []iputil.Block24) bool {
		// Probe up to perUnit known responders spread over the unit.
		n := 0
		for _, b := range bs {
			for _, a := range responders[b] {
				probes++
				n++
				if l.World.RespondsNow(a) {
					return false
				}
				if n >= perUnit {
					return true
				}
			}
		}
		return true
	}

	evaluate := func(verdict map[iputil.Block24]bool) (tp, fp, fn int) {
		for _, b := range tracked {
			truth := l.World.TrueOutage(b)
			switch {
			case truth && verdict[b]:
				tp++
			case !truth && verdict[b]:
				fp++
			case truth && !verdict[b]:
				fn++
			}
		}
		return tp, fp, fn
	}

	// Strategy A: per /24.
	probes = 0
	per24 := make(map[iputil.Block24]bool, len(tracked))
	for _, b := range tracked {
		per24[b] = unitDown([]iputil.Block24{b})
	}
	probes24 := probes
	tp24, fp24, fn24 := evaluate(per24)

	// Strategy B: per Hobbit block; the verdict fans out to members.
	probes = 0
	perBlock := make(map[iputil.Block24]bool, len(tracked))
	for _, bs := range members {
		down := unitDown(bs)
		for _, b := range bs {
			perBlock[b] = down
		}
	}
	probesBlock := probes
	tpB, fpB, fnB := evaluate(perBlock)

	rate := func(a, b int) float64 {
		if a+b == 0 {
			return 1
		}
		return float64(a) / float64(a+b)
	}
	r.printf("tracking %d /24s in %d Hobbit blocks; %d truly dark this epoch",
		len(tracked), len(members), func() int {
			n := 0
			for _, b := range tracked {
				if l.World.TrueOutage(b) {
					n++
				}
			}
			return n
		}())
	r.printf("%-22s %10s %10s %10s", "strategy", "probes", "recall", "precision")
	r.printf("%-22s %10d %9.1f%% %9.1f%%", "per /24", probes24,
		100*rate(tp24, fn24), 100*rate(tp24, fp24))
	r.printf("%-22s %10d %9.1f%% %9.1f%%", "per Hobbit block", probesBlock,
		100*rate(tpB, fnB), 100*rate(tpB, fpB))
	r.Metrics["probes_per24"] = float64(probes24)
	r.Metrics["probes_block"] = float64(probesBlock)
	r.Metrics["recall_per24"] = rate(tp24, fn24)
	r.Metrics["recall_block"] = rate(tpB, fnB)
	r.Metrics["precision_block"] = rate(tpB, fpB)
	r.printf("members of a homogeneous block share fate, so per-block probing saves probes")
	return r, nil
}
