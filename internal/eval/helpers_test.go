package eval

import (
	"strings"
	"testing"

	"github.com/hobbitscan/hobbit/internal/stats"
)

func TestStrideSample(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	got := strideSample(in, 10)
	if len(got) != 10 {
		t.Fatalf("len = %d", len(got))
	}
	// Spread: first element near the start, last near the end.
	if got[0] != 0 || got[9] < 80 {
		t.Errorf("sample not spread: %v", got)
	}
	// Strictly increasing (a stride never revisits).
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("not increasing at %d: %v", i, got)
		}
	}
	// Degenerate cases.
	if got := strideSample(in, 200); len(got) != 100 {
		t.Errorf("over-asking should return all, got %d", len(got))
	}
	if got := strideSample(in, 0); len(got) != 100 {
		t.Errorf("n=0 should return all, got %d", len(got))
	}
	if got := strideSample([]int{}, 5); len(got) != 0 {
		t.Errorf("empty in = %v", got)
	}
}

func TestRenderLines(t *testing.T) {
	if got := renderLines(nil, 10); got != "(empty)" {
		t.Errorf("empty = %q", got)
	}
	got := renderLines([]float64{1, 2, 11}, 11)
	if len(got) != 11 {
		t.Fatalf("width = %d", len(got))
	}
	if got[0] != '|' || got[10] != '|' {
		t.Errorf("endpoints not drawn: %q", got)
	}
	if !strings.Contains(got, ".") {
		t.Errorf("gaps not drawn: %q", got)
	}
	// A single line still renders.
	if got := renderLines([]float64{1}, 5); got[0] != '|' {
		t.Errorf("singleton = %q", got)
	}
}

func TestCompKey(t *testing.T) {
	if got := compKey([]int{25, 26, 26}); got != "{/25, /26, /26}" {
		t.Errorf("compKey = %q", got)
	}
	if got := compKey(nil); got != "{}" {
		t.Errorf("empty compKey = %q", got)
	}
}

func TestRenderCDFLine(t *testing.T) {
	r := newReport("x", "y")
	renderCDFLine(r, "empty", &stats.CDF{})
	var c stats.CDF
	c.AddAll([]float64{1, 2, 3, 4, 5})
	renderCDFLine(r, "five", &c)
	if len(r.Lines) != 2 {
		t.Fatalf("lines = %d", len(r.Lines))
	}
	if !strings.Contains(r.Lines[0], "(no data)") {
		t.Errorf("empty line = %q", r.Lines[0])
	}
	if !strings.Contains(r.Lines[1], "median=3") {
		t.Errorf("data line = %q", r.Lines[1])
	}
}

func TestReportWriteTo(t *testing.T) {
	r := newReport("id1", "a title")
	r.printf("value %d", 42)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "id1") || !strings.Contains(out, "a title") || !strings.Contains(out, "value 42") {
		t.Errorf("WriteTo = %q", out)
	}
}
