package eval

import (
	"runtime"
	"sync"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/trace"
)

// BlockTraces holds the full Paris-traceroute MDA results for every
// responsive address of one /24 — the dataset of Section 3.1 that feeds
// Figures 3, 4 and 11.
type BlockTraces struct {
	Block iputil.Block24
	// Addrs and Sets are parallel: the path set enumerated toward each
	// responsive address.
	Addrs []iputil.Addr
	Sets  []*trace.PathSet
	// Detected records the sequential Hobbit verdict for the block
	// (homogeneous or not) from the campaign.
	Detected bool
	// ProbedBySequential is how many destinations the sequential
	// measurement probed before terminating.
	ProbedBySequential int
}

// CardinalityPaths returns the number of distinct whole paths across all
// addresses.
func (bt *BlockTraces) CardinalityPaths() int {
	keys := make(map[string]struct{})
	for _, s := range bt.Sets {
		for _, p := range s.Paths() {
			keys[p.Key()] = struct{}{}
		}
	}
	return len(keys)
}

// CardinalityLastHops returns the number of distinct responsive last-hop
// routers.
func (bt *BlockTraces) CardinalityLastHops() int {
	seen := make(map[iputil.Addr]struct{})
	for _, s := range bt.Sets {
		hops, _ := s.LastHops()
		for _, h := range hops {
			seen[h] = struct{}{}
		}
	}
	return len(seen)
}

// CardinalitySubPaths returns the number of distinct path suffixes below
// the deepest router common to all addresses (the sub-path metric of
// Figure 3b).
func (bt *BlockTraces) CardinalitySubPaths() int {
	depth := trace.DeepestCommonDepth(bt.Sets)
	keys := make(map[string]struct{})
	for _, s := range bt.Sets {
		for _, p := range s.Paths() {
			keys[trace.SubPathKey(p, depth)] = struct{}{}
		}
	}
	return len(keys)
}

// LastHopGroups groups the addresses by (single) last-hop router for the
// static Hobbit judgment; addresses whose paths end at several distinct
// responsive last hops join each group.
func (bt *BlockTraces) LastHopGroups() map[iputil.Addr][]iputil.Addr {
	groups := make(map[iputil.Addr][]iputil.Addr)
	for i, s := range bt.Sets {
		hops, _ := s.LastHops()
		for _, h := range hops {
			groups[h] = append(groups[h], bt.Addrs[i])
		}
	}
	return groups
}

// Links returns the distinct router links across all traces of the block.
func (bt *BlockTraces) Links() map[trace.Link]struct{} {
	out := make(map[trace.Link]struct{})
	for _, s := range bt.Sets {
		for _, p := range s.Paths() {
			for _, ln := range p.Links() {
				out[ln] = struct{}{}
			}
		}
	}
	return out
}

// TraceDataset is the full-trace corpus over a set of homogeneous /24s.
type TraceDataset struct {
	Blocks []*BlockTraces
}

// TraceDataset builds (and caches) the corpus: it takes the campaign's
// homogeneous blocks plus, for Figure 3a's undetected series, analyzable
// blocks that are truly homogeneous but were classified hierarchical,
// then fully traces every responsive address.
func (l *Lab) TraceDataset() (*TraceDataset, error) {
	l.mu.Lock()
	if l.dataset != nil {
		defer l.mu.Unlock()
		return l.dataset, nil
	}
	l.mu.Unlock()

	out, err := l.Pipeline()
	if err != nil {
		return nil, err
	}

	type job struct {
		block    iputil.Block24
		detected bool
		probed   int
	}
	var jobs []job
	for _, b := range out.Campaign.Order {
		br := out.Campaign.Blocks[b]
		if !br.Class.Analyzable() {
			continue
		}
		hom, known := l.World.TrueHomogeneous(b)
		if !known || !hom {
			continue
		}
		jobs = append(jobs, job{block: b, detected: br.Class.Homogeneous(), probed: br.Probed})
	}
	jobs = strideSample(jobs, l.traceBlockCap())

	ds := &TraceDataset{Blocks: make([]*BlockTraces, len(jobs))}
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			bt := &BlockTraces{Block: j.block, Detected: j.detected, ProbedBySequential: j.probed}
			for _, a := range out.Dataset.Actives(j.block) {
				res := probe.MDA(l.Net, a, probe.MDAOptions{})
				if !res.DestReached || res.Paths.Len() == 0 {
					continue
				}
				bt.Addrs = append(bt.Addrs, a)
				bt.Sets = append(bt.Sets, res.Paths)
			}
			ds.Blocks[i] = bt
		}(i, j)
	}
	wg.Wait()

	// Drop blocks whose hosts all churned away.
	kept := ds.Blocks[:0]
	for _, bt := range ds.Blocks {
		if bt != nil && len(bt.Addrs) >= 4 {
			kept = append(kept, bt)
		}
	}
	ds.Blocks = kept

	l.mu.Lock()
	l.dataset = ds
	l.mu.Unlock()
	return ds, nil
}
