package eval

import (
	"strings"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/rttmodel"
	"github.com/hobbitscan/hobbit/internal/stats"
)

func init() {
	register("fig5", "Figure 5: size distribution of identical-set aggregates", runFig5)
	register("table5", "Table 5: top 15 largest homogeneous blocks", runTable5)
	register("fig6", "Figure 6: first-RTT inflation of broadband blocks (cellular detection)", runFig6)
	register("fig7", "Figure 7: longest-common-prefix distributions within aggregates", runFig7)
	register("fig8", "Figure 8: adjacency visualization of the top 9 blocks", runFig8)
}

func runFig5(l *Lab) (*Report, error) {
	r := newReport("fig5", "aggregate size distribution")
	out, err := l.Pipeline()
	if err != nil {
		return nil, err
	}
	h := aggregate.SizeHistogram(out.Aggregates)
	homog := 0
	for _, b := range out.Aggregates {
		homog += b.Size()
	}
	r.printf("homogeneous /24s: %d -> aggregates: %d", homog, len(out.Aggregates))
	r.Metrics["homogeneous_24s"] = float64(homog)
	r.Metrics["aggregates"] = float64(len(out.Aggregates))
	r.Metrics["size1"] = float64(h.Count(1))
	r.Metrics["size_ge16"] = float64(h.CountAtLeast(16))
	r.printf("size 1 aggregates: %d; size >= 16: %d; size >= 64: %d",
		h.Count(1), h.CountAtLeast(16), h.CountAtLeast(64))
	r.printf("%-14s %s", "size bucket", "count")
	for _, bc := range h.PowBuckets() {
		r.printf("  [2^%-2d,2^%-2d) %8d", bc.Exp, bc.Exp+1, bc.Count)
	}
	r.printf("paper: 1.77M /24s -> 0.53M aggregates; 21,513 with >=16 /24s; 2,430 with >=64")
	return r, nil
}

func runTable5(l *Lab) (*Report, error) {
	r := newReport("table5", "top 15 largest homogeneous blocks")
	out, err := l.Pipeline()
	if err != nil {
		return nil, err
	}
	top := aggregate.TopBySize(out.Aggregates, 15)
	r.printf("%-5s %-6s %-10s %-22s %-18s %s", "rank", "size", "AS", "organization", "geo-location", "type")
	hostingCount := 0
	for i, b := range top {
		info, ok := l.World.Geo().Lookup(b.Blocks24[0])
		org, loc, typ, asn := "?", "?", "?", 0
		if ok {
			org, loc, typ, asn = info.Org, info.Country, info.Type.String(), info.ASN
			if city := l.World.Geo().City(b.Blocks24[0]); city != "" {
				loc = loc + " (" + city + ")"
			}
			if strings.HasPrefix(typ, "Hosting") {
				hostingCount++
			}
		}
		r.printf("%-5d %-6d AS%-8d %-22s %-18s %s", i+1, b.Size(), asn, org, loc, typ)
	}
	if len(top) > 0 {
		r.Metrics["top1_size"] = float64(top[0].Size())
		r.Metrics["hosting_in_top"] = float64(hostingCount)
	}
	r.printf("paper: sizes 1251..679; 7 of 15 blocks are hosting companies")
	return r, nil
}

func runFig6(l *Lab) (*Report, error) {
	r := newReport("fig6", "first-RTT inflation per block")
	out, err := l.Pipeline()
	if err != nil {
		return nil, err
	}
	cfgDet := rttmodel.DefaultDetectorConfig()
	// Sample a bounded number of addresses per aggregate (the paper
	// probes 200 /24s x all actives; we bound for laboratory scale).
	top := aggregate.TopBySize(out.Aggregates, 15)
	r.printf("%-22s %-8s %10s %12s %10s", "block", "kind", "median(s)", "frac>0.5s", "verdict")
	cellularFound := 0
	stableFound := 0
	for _, b := range top {
		info, _ := l.World.Geo().Lookup(b.Blocks24[0])
		addrs := sampleActives(l, out, b, 400)
		if len(addrs) < 30 {
			continue
		}
		v := rttmodel.Detect(l.Net.World, addrs, cfgDet)
		if v.Probed < 20 {
			continue
		}
		verdict := "stable"
		if v.Cellular {
			verdict = "cellular"
			cellularFound++
		} else {
			stableFound++
		}
		r.printf("%-22s %-8s %10.3f %11.1f%% %10s",
			info.Org, info.Type, v.Diffs.Median(), 100*v.FractionAbove, verdict)
	}
	r.Metrics["cellular_blocks"] = float64(cellularFound)
	r.Metrics["stable_blocks"] = float64(stableFound)
	r.printf("paper: Tele2/OCN/Verizon blocks show >=0.5s first-RTT inflation; SingTel/SoftBank are ~0")
	return r, nil
}

// sampleActives draws up to n probe-time-responsive addresses from an
// aggregate.
func sampleActives(l *Lab, out *core.Output, b *aggregate.Block, n int) []iputil.Addr {
	var addrs []iputil.Addr
	for _, blk := range b.Blocks24 {
		for _, a := range out.Dataset.Actives(blk) {
			if l.World.RespondsNow(a) {
				addrs = append(addrs, a)
				if len(addrs) >= n {
					return addrs
				}
			}
		}
	}
	return addrs
}

func runFig7(l *Lab) (*Report, error) {
	r := newReport("fig7", "LCP distributions")
	out, err := l.Pipeline()
	if err != nil {
		return nil, err
	}
	var adjacent, minmax stats.CDF
	for _, b := range out.Aggregates {
		for _, lcp := range aggregate.AdjacentLCPs(b) {
			adjacent.Add(float64(lcp))
		}
		if mm, ok := aggregate.MinMaxLCP(b); ok {
			minmax.Add(float64(mm))
		}
	}
	if adjacent.N() == 0 {
		r.printf("no multi-/24 aggregates")
		return r, nil
	}
	fracAdj23 := 1 - adjacent.At(22)
	fracAdj20 := 1 - adjacent.At(19)
	fracMM1 := minmax.At(1)
	r.printf("adjacent-pair LCPs: n=%d; =23: %.1f%%; >=20: %.1f%% (paper: >30%% and ~70%%)",
		adjacent.N(), 100*fracAdj23, 100*fracAdj20)
	r.printf("min/max LCPs: n=%d; <=1: %.1f%% (paper: ~40%%); =23: %.1f%% (paper: ~5%%)",
		minmax.N(), 100*fracMM1, 100*(1-minmax.At(22)))
	r.Metrics["adjacent_lcp23"] = fracAdj23
	r.Metrics["adjacent_lcp_ge20"] = fracAdj20
	r.Metrics["minmax_lcp_le1"] = fracMM1
	r.printf("adjacent CDF: %s", adjacent.RenderCDF(24))
	r.printf("min/max  CDF: %s", minmax.RenderCDF(24))
	return r, nil
}

func runFig8(l *Lab) (*Report, error) {
	r := newReport("fig8", "adjacency visualization")
	out, err := l.Pipeline()
	if err != nil {
		return nil, err
	}
	top := aggregate.TopBySize(out.Aggregates, 9)
	for i, b := range top {
		info, _ := l.World.Geo().Lookup(b.Blocks24[0])
		r.printf("#%d %s (size %d)", i+1, info.Org, b.Size())
		r.printf("  %s", renderLines(aggregate.AdjacencyLines(b), 72))
	}
	if len(top) > 0 {
		r.Metrics["rendered"] = float64(len(top))
	}
	r.printf("paper: large blocks consist of several contiguous segments separated by gaps")
	return r, nil
}

// renderLines draws the Figure 8 vertical-line strip in ASCII: '|' where a
// /24 lands, '.' in gaps, scaled to the given width.
func renderLines(xs []float64, width int) string {
	if len(xs) == 0 {
		return "(empty)"
	}
	span := xs[len(xs)-1] - 1
	if span <= 0 {
		span = 1
	}
	row := make([]byte, width)
	for i := range row {
		row[i] = '.'
	}
	for _, x := range xs {
		pos := int((x - 1) / span * float64(width-1))
		if pos >= 0 && pos < width {
			row[pos] = '|'
		}
	}
	return string(row)
}
