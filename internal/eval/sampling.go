package eval

import (
	"sort"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/metadata"
	"github.com/hobbitscan/hobbit/internal/rng"
)

func init() {
	register("fig12", "Figure 12: stratified vs random sampling of rDNS patterns", runFig12)
}

// runFig12 reproduces the sampling experiment over the Time Warner
// population: drawing one address per Hobbit block (stratified) captures
// far more distinct rDNS naming schemes than simple random samples of
// equal or larger size.
func runFig12(l *Lab) (*Report, error) {
	r := newReport("fig12", "stratified vs random sampling")
	out, err := l.Pipeline()
	if err != nil {
		return nil, err
	}

	// The Time Warner population: its measured /24s and their final
	// Hobbit blocks. Stratum ids are iterated in sorted order below so the
	// sample is identical run to run.
	twcASN := 11351
	var population []iputil.Addr
	strata := make(map[int][]iputil.Addr)
	for _, agg := range out.Final {
		for _, b := range agg.Blocks24 {
			info, ok := l.World.Geo().Lookup(b)
			if !ok || info.ASN != twcASN {
				continue
			}
			for _, a := range out.Dataset.Actives(b) {
				population = append(population, a)
				strata[agg.ID] = append(strata[agg.ID], a)
			}
		}
	}
	if len(strata) < 3 || len(population) < 50 {
		r.printf("Time Warner population too small (blocks=%d addrs=%d)", len(strata), len(population))
		return r, nil
	}

	// Total distinct schemes in the whole population (for the 73%
	// observation).
	allSchemes := countSchemes(l, population)
	n := len(strata) // stratified sample size: one per Hobbit block

	ids := make([]int, 0, len(strata))
	for id := range strata {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	const reps = 25
	stratMean := 0.0
	randMeans := map[int]float64{1: 0, 2: 0, 4: 0}
	for rep := 0; rep < reps; rep++ {
		// Stratified: one random address per stratum.
		var sample []iputil.Addr
		for _, id := range ids {
			addrs := strata[id]
			sample = append(sample, addrs[rng.Intn(len(addrs), l.Seed, uint64(id), uint64(rep), 0xa1)])
		}
		stratMean += float64(countSchemes(l, sample))
		// Random: k*n draws from the whole population.
		for mult := range randMeans {
			var rs []iputil.Addr
			for d := 0; d < mult*n; d++ {
				rs = append(rs, population[rng.Intn(len(population), l.Seed, uint64(rep), uint64(mult), uint64(d), 0xa2)])
			}
			randMeans[mult] += float64(countSchemes(l, rs))
		}
	}
	stratMean /= reps
	for k := range randMeans {
		randMeans[k] /= reps
	}

	r.printf("Time Warner: %d Hobbit blocks, %d active addresses, %d distinct rDNS schemes",
		len(strata), len(population), allSchemes)
	r.printf("%-28s %10s %12s", "method", "schemes", "normalized")
	r.printf("%-28s %10.1f %11.2fx", "stratified (1 per block)", stratMean, 1.0)
	for _, mult := range []int{1, 2, 4} {
		r.printf("%-28s %10.1f %11.2fx",
			sprintfRandom(mult), randMeans[mult], randMeans[mult]/stratMean)
	}
	r.Metrics["stratified_schemes"] = stratMean
	r.Metrics["random1_schemes"] = randMeans[1]
	r.Metrics["random2_schemes"] = randMeans[2]
	r.Metrics["random4_schemes"] = randMeans[4]
	r.Metrics["stratified_coverage"] = stratMean / float64(allSchemes)
	r.Metrics["advantage_1x"] = stratMean / randMeans[1]
	r.printf("stratified coverage of all schemes: %.0f%% (paper: 73%%)", 100*stratMean/float64(allSchemes))
	r.printf("paper: stratified finds ~2.5x the patterns of an equal-size random sample")
	return r, nil
}

func sprintfRandom(mult int) string {
	switch mult {
	case 1:
		return "random (1x sample size)"
	case 2:
		return "random (2x)"
	default:
		return "random (4x)"
	}
}

func countSchemes(l *Lab, addrs []iputil.Addr) int {
	seen := make(map[string]struct{})
	for _, a := range addrs {
		if name, ok := l.World.RDNSName(a); ok {
			seen[metadata.Scheme(name)] = struct{}{}
		}
	}
	return len(seen)
}
