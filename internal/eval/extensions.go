package eval

import (
	"context"

	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/probe"
)

func init() {
	register("longitudinal", "Extension (paper future work): homogeneity drift across epochs", runLongitudinal)
	register("vantage", "Extension (Section 6.1): multi-vantage probing completes last-hop sets", runVantage)
}

// runLongitudinal re-measures the same universe at successive epochs:
// availability churn moves blocks in and out of measurability, and
// address-exhaustion-driven splits convert homogeneous /24s into
// heterogeneous ones over time — the longitudinal study the paper names
// as future work.
func runLongitudinal(l *Lab) (*Report, error) {
	r := newReport("longitudinal", "homogeneity drift across epochs")
	defer l.World.SetEpoch(0)

	type snapshot struct {
		homog    map[iputil.Block24]bool
		share    float64
		measured int
	}
	const epochs = 4
	snaps := make([]snapshot, 0, epochs)
	blocks := strideSample(l.World.Blocks(), 1500)

	for e := 0; e < epochs; e++ {
		l.World.SetEpoch(e)
		p := &core.Pipeline{
			Net:     l.Net,
			Scanner: l.World,
			Blocks:  blocks,
			Seed:    l.Seed + uint64(e),
			Options: core.Options{SkipClustering: true},
		}
		out, err := p.Run(context.Background())
		if err != nil {
			return nil, err
		}
		sum := out.Campaign.Summary()
		snap := snapshot{homog: make(map[iputil.Block24]bool), measured: sum.Measurable()}
		for b, br := range out.Campaign.Blocks {
			if br.Class.Homogeneous() {
				snap.homog[b] = true
			}
		}
		if sum.Measurable() > 0 {
			snap.share = float64(sum.Homogeneous()) / float64(sum.Measurable())
		}
		snaps = append(snaps, snap)
	}

	r.printf("%-8s %10s %12s %10s %10s", "epoch", "measured", "homog-share", "gained", "lost")
	for e, s := range snaps {
		gained, lost := 0, 0
		if e > 0 {
			for b := range s.homog {
				if !snaps[e-1].homog[b] {
					gained++
				}
			}
			for b := range snaps[e-1].homog {
				if !s.homog[b] {
					lost++
				}
			}
		}
		r.printf("%-8d %10d %11.1f%% %10d %10d", e, s.measured, 100*s.share, gained, lost)
	}
	r.Metrics["share_epoch0"] = snaps[0].share
	r.Metrics["share_epoch3"] = snaps[len(snaps)-1].share

	// Scheduled splitters that were measured before and after their
	// split epoch should flip from homogeneous to not.
	flips, tracked := 0, 0
	for b, se := range l.World.FutureSplitters() {
		if se >= epochs {
			continue
		}
		before, after := false, false
		for e := 0; e < se && !before; e++ {
			before = snaps[e].homog[b]
		}
		if before {
			tracked++
			for e := se; e < epochs; e++ {
				after = after || snaps[e].homog[b]
			}
			if !after {
				flips++
			}
		}
	}
	if tracked > 0 {
		r.Metrics["splitters_tracked"] = float64(tracked)
		r.Metrics["splitters_flipped"] = float64(flips)
		r.printf("scheduled splits observed: %d of %d tracked splitters left the homogeneous set", flips, tracked)
	}
	r.printf("homogeneity share stays stable while individual blocks churn and split")
	return r, nil
}

// runVantage measures multi-last-hop homogeneous blocks from one vantage
// and from three, comparing how complete the observed last-hop sets are —
// Section 6.1's argument that varying vantage points reveals more
// per-destination paths for source-hashing load balancers.
func runVantage(l *Lab) (*Report, error) {
	r := newReport("vantage", "multi-vantage last-hop completeness")
	out, err := l.Pipeline()
	if err != nil {
		return nil, err
	}
	nv := l.World.NumVantages()
	if nv < 2 {
		r.printf("world has a single vantage")
		return r, nil
	}

	nets := make([]probe.Network, nv)
	nets[0] = l.Net
	for v := 1; v < nv; v++ {
		nets[v] = probe.NewVantageNetwork(l.World.Vantage(v))
	}

	type tally struct {
		one, multi, blocks float64
	}
	var sens, insens tally
	examined := 0
	for _, b := range strideSample(out.Eligible, 400) {
		k := l.World.TrueLastHopCardinality(b)
		if k < 2 || l.World.UnresponsiveLastHop(b) {
			continue
		}
		if hom, _ := l.World.TrueHomogeneous(b); !hom {
			continue
		}
		by26 := out.Dataset.ActivesBy26(b)
		union := make(map[iputil.Addr]struct{})
		var oneVantage int
		for v := 0; v < nv; v++ {
			m := &hobbit.Measurer{Net: nets[v], Seed: l.Seed, Exhaustive: true}
			br := m.MeasureBlock(b, by26)
			for _, lh := range br.LastHops {
				union[lh] = struct{}{}
			}
			if v == 0 {
				oneVantage = len(br.LastHops)
			}
		}
		t := &insens
		if l.World.SrcSensitive(b) {
			t = &sens
		}
		t.one += float64(oneVantage) / float64(k)
		t.multi += float64(len(union)) / float64(k)
		t.blocks++
		if examined++; examined >= 120 {
			break
		}
	}
	if sens.blocks == 0 && insens.blocks == 0 {
		r.printf("no multi-last-hop blocks examined")
		return r, nil
	}
	r.printf("%-28s %10s %14s %14s", "load-balancer hashing", "blocks", "1 vantage", "3 vantages")
	if insens.blocks > 0 {
		r.printf("%-28s %10.0f %13.1f%% %13.1f%%", "destination only",
			insens.blocks, 100*insens.one/insens.blocks, 100*insens.multi/insens.blocks)
		r.Metrics["insensitive_gain"] = insens.multi/insens.blocks - insens.one/insens.blocks
	}
	if sens.blocks > 0 {
		r.printf("%-28s %10.0f %13.1f%% %13.1f%%", "source + destination",
			sens.blocks, 100*sens.one/sens.blocks, 100*sens.multi/sens.blocks)
		r.Metrics["sensitive_one"] = sens.one / sens.blocks
		r.Metrics["sensitive_multi"] = sens.multi / sens.blocks
	}
	r.printf("completeness = observed last hops / planted K, exhaustive strategy")
	r.printf("Section 6.1: extra vantages only help when balancers hash the source address")
	return r, nil
}
