package harness

import (
	"fmt"
	"testing"
)

// TestCheckIncrementalMatrix is the tier-1 differential gate for the
// monitoring mode: every fault plan × worker count × reference stream
// chunk must produce epoch-by-epoch byte-identical Outputs between the
// incremental monitor and a from-scratch run. Workers exercise the
// monitor's internal concurrency; the stream chunk exercises the
// reference's execution shapes (materialized chunk=0 equivalence is
// already covered by the streaming tests).
func TestCheckIncrementalMatrix(t *testing.T) {
	plans := []string{"baseline", "flap", "blackhole", "rate-storm"}
	for _, plan := range plans {
		for _, workers := range []int{1, 8} {
			for _, chunk := range []int{1, 4096} {
				plan, workers, chunk := plan, workers, chunk
				t.Run(fmt.Sprintf("%s/w%d/c%d", plan, workers, chunk), func(t *testing.T) {
					t.Parallel()
					opt := DefaultOptions()
					opt.Workers = workers
					opt.CensusWorkers = workers
					opt.ClusterWorkers = workers
					sc := IncrementalScenario{Plan: plan, Epochs: 3, StreamChunk: chunk}
					if err := CheckIncremental(sc, opt); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestCheckIncrementalChurn runs the monitoring-specific churn plan —
// the one the nightly scale session uses — through the same
// differential check, over more epochs so flap windows open and close
// while the session is live.
func TestCheckIncrementalChurn(t *testing.T) {
	opt := DefaultOptions()
	opt.Workers = 8
	opt.ClusterWorkers = 8
	sc := IncrementalScenario{Plan: "churn", Epochs: 5, StreamChunk: 4096}
	if err := CheckIncremental(sc, opt); err != nil {
		t.Fatal(err)
	}
}
