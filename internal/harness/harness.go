// Package harness is the accuracy-regression harness: it runs the full
// pipeline over a synthetic world under a named fault plan and scores
// the homogeneity verdicts and aggregation purity against the world's
// ground truth (netsim/truth.go). Its tests assert per-scenario
// precision/recall floors, making inference quality a hard CI gate the
// same way cmd/benchdiff gates performance.
package harness

import (
	"context"
	"fmt"

	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/faultplan"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/probe"
)

// Options shapes the synthetic world and pipeline a scenario runs over.
// The zero value is not useful; start from DefaultOptions.
type Options struct {
	// Blocks is the /24 universe size.
	Blocks int
	// BigBlockScale scales the planted big aggregates (the core tests'
	// 0.02 keeps small worlds interesting).
	BigBlockScale float64
	// Seed drives the pipeline's deterministic shuffles.
	Seed uint64
	// Epoch is the measurement epoch faults and churn key off.
	Epoch int
	// Workers, CensusWorkers, and ClusterWorkers bound stage
	// concurrency exactly as on core.Pipeline (0 = GOMAXPROCS).
	Workers, CensusWorkers, ClusterWorkers int
}

// DefaultOptions returns the harness's standard small-world setup: big
// enough for every class and fault kind to occur, small enough for five
// scenarios to run in a CI test.
func DefaultOptions() Options {
	return Options{Blocks: 300, BigBlockScale: 0.02, Seed: 7}
}

// Floors are the per-scenario accuracy minima Check enforces.
type Floors struct {
	// Precision and Recall bound the homogeneity confusion matrix
	// (verdicts rendered vs ground truth).
	Precision float64
	Recall    float64
	// Purity bounds the fraction of multi-member final aggregates whose
	// member /24s truly share one pop.
	Purity float64
	// MinVerdicts is the least number of (TP+FP+FN+TN) verdicts the run
	// must render — the guard that keeps a fault from trivially
	// satisfying the ratios by silencing every block.
	MinVerdicts int
}

// Scenario names a built-in fault plan and the floors it must clear.
type Scenario struct {
	Plan   string
	Floors Floors
}

// Report is the scored outcome of one scenario run.
type Report struct {
	Plan     string `json:"plan"`
	Eligible int    `json:"eligible"`

	// Homogeneity confusion matrix over analyzable verdicts.
	TP int `json:"tp"` // called homogeneous, truly homogeneous
	FP int `json:"fp"` // called homogeneous, truly heterogeneous
	FN int `json:"fn"` // called heterogeneous, truly homogeneous
	TN int `json:"tn"` // called heterogeneous, truly heterogeneous
	// NoVerdict counts eligible blocks the run could not classify
	// (too few active, unresponsive last hop).
	NoVerdict int `json:"no_verdict"`

	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`

	// Aggregation purity over multi-member final blocks.
	FinalBlocks int     `json:"final_blocks"`
	MultiBlocks int     `json:"multi_blocks"`
	PureBlocks  int     `json:"pure_blocks"`
	Purity      float64 `json:"purity"`

	// Degradation accounting.
	DegradedBlocks int `json:"degraded_blocks"`
	LowConfidence  int `json:"low_confidence"`
}

// Verdicts returns the number of classified blocks behind the matrix.
func (r *Report) Verdicts() int { return r.TP + r.FP + r.FN + r.TN }

// Check compares the report against the floors; the returned error
// lists every floor missed (nil when all clear).
func (r *Report) Check(f Floors) error {
	var errs []string
	if r.Precision < f.Precision {
		errs = append(errs, fmt.Sprintf("precision %.4f < floor %.4f", r.Precision, f.Precision))
	}
	if r.Recall < f.Recall {
		errs = append(errs, fmt.Sprintf("recall %.4f < floor %.4f", r.Recall, f.Recall))
	}
	if r.Purity < f.Purity {
		errs = append(errs, fmt.Sprintf("purity %.4f < floor %.4f", r.Purity, f.Purity))
	}
	if v := r.Verdicts(); v < f.MinVerdicts {
		errs = append(errs, fmt.Sprintf("verdicts %d < floor %d", v, f.MinVerdicts))
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("harness: plan %q: %v", r.Plan, errs)
}

// Run executes one scenario: build the world, derive and install the
// named built-in fault plan, set the epoch, run the full pipeline with
// adaptive probing on, and score the output against ground truth. The
// whole path is deterministic in (Options, Scenario.Plan).
func Run(sc Scenario, opt Options) (*Report, *core.Output, error) {
	cfg := netsim.DefaultConfig(opt.Blocks)
	cfg.BigBlockScale = opt.BigBlockScale
	w, err := netsim.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	sched, err := faultplan.CompileBuiltin(sc.Plan, w)
	if err != nil {
		return nil, nil, err
	}
	w.SetFaults(sched)
	w.SetEpoch(opt.Epoch)

	p := &core.Pipeline{
		Net:     probe.NewSimNetwork(w),
		Scanner: w,
		Blocks:  w.Blocks(),
		Seed:    opt.Seed,
		Options: core.Options{
			Workers:        opt.Workers,
			CensusWorkers:  opt.CensusWorkers,
			ClusterWorkers: opt.ClusterWorkers,
			MDA:            probe.MDAOptions{Adaptive: true},
		},
	}
	out, err := p.Run(context.Background())
	if err != nil {
		return nil, nil, err
	}
	return Score(sc.Plan, w, out), out, nil
}

// Score builds the accuracy report for a pipeline output against the
// world's ground truth.
func Score(plan string, w *netsim.World, out *core.Output) *Report {
	r := &Report{Plan: plan, Eligible: len(out.Eligible)}
	for _, b := range out.Campaign.Order {
		br, ok := out.Campaign.Blocks[b]
		if !ok {
			continue
		}
		truth, known := w.TrueHomogeneous(b)
		if !known {
			continue
		}
		if br.Degraded > 0 {
			r.DegradedBlocks++
		}
		if !br.Class.Analyzable() {
			r.NoVerdict++
			continue
		}
		switch {
		case br.Class.Homogeneous() && truth:
			r.TP++
		case br.Class.Homogeneous():
			r.FP++
		case truth:
			r.FN++
		default:
			r.TN++
		}
	}
	r.Precision = ratio(r.TP, r.TP+r.FP)
	r.Recall = ratio(r.TP, r.TP+r.FN)

	r.LowConfidence = len(out.LowConfidence)

	r.FinalBlocks = len(out.Final)
	for _, agg := range out.Final {
		if agg.Size() < 2 {
			continue
		}
		r.MultiBlocks++
		pure := true
		first, ok := w.TrueAggregate(agg.Blocks24[0])
		if !ok {
			pure = false
		}
		for _, m := range agg.Blocks24[1:] {
			pop, ok := w.TrueAggregate(m)
			if !ok || pop != first {
				pure = false
				break
			}
		}
		if pure {
			r.PureBlocks++
		}
	}
	r.Purity = ratio(r.PureBlocks, r.MultiBlocks)
	return r
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

// BuiltinScenarios returns the CI scenario set: every built-in fault
// plan with its calibrated floors. Floors sit below the observed values
// with margin (they are regression alarms, not sharpness records), but
// high enough that a real inference regression — aggregation poisoning,
// retry logic broken, degradation marking everything — trips them.
func BuiltinScenarios() []Scenario {
	return []Scenario{
		{Plan: "baseline", Floors: Floors{Precision: 0.97, Recall: 0.87, Purity: 0.95, MinVerdicts: 250}},
		{Plan: "blackhole", Floors: Floors{Precision: 0.97, Recall: 0.86, Purity: 0.95, MinVerdicts: 235}},
		{Plan: "rate-storm", Floors: Floors{Precision: 0.95, Recall: 0.85, Purity: 0.90, MinVerdicts: 250}},
		{Plan: "flap", Floors: Floors{Precision: 0.95, Recall: 0.86, Purity: 0.90, MinVerdicts: 250}},
		{Plan: "congestion", Floors: Floors{Precision: 0.95, Recall: 0.85, Purity: 0.90, MinVerdicts: 245}},
	}
}
