package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/netsim"
)

// snapshot serializes everything an operator would diff between runs:
// the accuracy report plus the pipeline artifacts a fault could perturb.
func snapshot(t *testing.T, sc Scenario, opt Options) []byte {
	t.Helper()
	rep, out, err := Run(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	j, err := json.Marshal(struct {
		Report        interface{}
		Eligible      interface{}
		LowConfidence interface{}
		Aggregates    interface{}
		Validations   interface{}
		Validated     interface{}
		Final         interface{}
	}{rep, out.Eligible, out.LowConfidence, out.Aggregates, out.Validations, out.Validated, out.Final})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestScenarioFloors is the accuracy-regression gate: every built-in
// fault plan must clear its precision/recall/purity floors against the
// world's ground truth. A failure here means a change made inference
// worse under adversity — treat it like a failing perf gate, not flake
// (the whole path is deterministic).
func TestScenarioFloors(t *testing.T) {
	for _, sc := range BuiltinScenarios() {
		sc := sc
		t.Run(sc.Plan, func(t *testing.T) {
			t.Parallel()
			rep, _, err := Run(sc, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Check(sc.Floors); err != nil {
				t.Errorf("%v\nreport: %+v", err, rep)
			}
			if rep.Eligible == 0 || rep.Verdicts() == 0 {
				t.Fatalf("vacuous run: %+v", rep)
			}
		})
	}
}

// TestScenarioDeterministic extends the core pipeline's byte-identical
// pinning to faulted runs: for every plan, a serial (ClusterWorkers=1)
// run, two parallel runs, and a sharded-census run must all serialize
// identically — fault injection must not introduce any order or
// concurrency dependence.
func TestScenarioDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every scenario three times")
	}
	for _, sc := range BuiltinScenarios() {
		sc := sc
		t.Run(sc.Plan, func(t *testing.T) {
			t.Parallel()
			serialOpt := DefaultOptions()
			serialOpt.Workers, serialOpt.CensusWorkers, serialOpt.ClusterWorkers = 1, 1, 1
			parOpt := DefaultOptions()
			parOpt.Workers, parOpt.CensusWorkers, parOpt.ClusterWorkers = 4, 8, 8
			serial := snapshot(t, sc, serialOpt)
			par1 := snapshot(t, sc, parOpt)
			par2 := snapshot(t, sc, parOpt)
			if !bytes.Equal(serial, par1) {
				t.Errorf("serial and parallel faulted runs differ:\n%.400s\n%.400s", serial, par1)
			}
			if !bytes.Equal(par1, par2) {
				t.Errorf("same-seed faulted runs differ:\n%.400s\n%.400s", par1, par2)
			}
		})
	}
}

// TestScenarioAdversityVisible pins that the fault plans actually bite:
// the rate-storm scenario must degrade strictly more blocks than the
// baseline, and the blackhole scenario must silence blocks the baseline
// could classify. Guards against the plans silently becoming no-ops.
func TestScenarioAdversityVisible(t *testing.T) {
	opt := DefaultOptions()
	base, _, err := Run(Scenario{Plan: "baseline"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	storm, _, err := Run(Scenario{Plan: "rate-storm"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if storm.DegradedBlocks <= base.DegradedBlocks {
		t.Errorf("rate-storm degraded %d blocks, baseline %d — storm is a no-op",
			storm.DegradedBlocks, base.DegradedBlocks)
	}
	hole, _, err := Run(Scenario{Plan: "blackhole"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if hole.NoVerdict <= base.NoVerdict {
		t.Errorf("blackhole silenced %d blocks, baseline %d — blackhole is a no-op",
			hole.NoVerdict, base.NoVerdict)
	}
}

// TestUnknownPlan pins the error path.
func TestUnknownPlan(t *testing.T) {
	if _, _, err := Run(Scenario{Plan: "nope"}, DefaultOptions()); err == nil {
		t.Fatal("expected error for unknown plan")
	}
}

// TestCheck exercises the floor comparison itself.
func TestCheck(t *testing.T) {
	r := &Report{Plan: "x", TP: 90, FP: 10, FN: 10, TN: 10, Precision: 0.9, Recall: 0.9, Purity: 1}
	if err := r.Check(Floors{Precision: 0.9, Recall: 0.9, Purity: 1, MinVerdicts: 120}); err != nil {
		t.Errorf("floors met exactly should pass: %v", err)
	}
	if err := r.Check(Floors{Precision: 0.95}); err == nil {
		t.Error("precision floor miss not reported")
	}
	if err := r.Check(Floors{Recall: 0.95}); err == nil {
		t.Error("recall floor miss not reported")
	}
	if err := (&Report{Purity: 0.8}).Check(Floors{Purity: 0.9}); err == nil {
		t.Error("purity floor miss not reported")
	}
	if err := r.Check(Floors{MinVerdicts: 121}); err == nil {
		t.Error("verdict floor miss not reported")
	}
}

// TestScoreMatrix drives Score over a handcrafted Output against a real
// world, covering every confusion-matrix cell, the no-verdict and
// unknown-block skips, and the purity arithmetic — the cells the e2e
// scenarios rarely reach (this world has almost no eligible
// heterogeneous blocks, so FP/TN stay zero there).
func TestScoreMatrix(t *testing.T) {
	cfg := netsim.DefaultConfig(120)
	// Keep the planted big aggregates tiny so the universe budget is not
	// spent before heterogeneous planting, then plant plenty of them.
	cfg.BigBlockScale = 0.005
	cfg.PHeterogeneous = 0.2
	w, err := netsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var homs, hets []iputil.Block24
	popOf := map[iputil.Block24]int32{}
	for _, b := range w.Blocks() {
		truth, known := w.TrueHomogeneous(b)
		if !known {
			continue
		}
		if truth {
			pop, _ := w.TrueAggregate(b)
			popOf[b] = pop
			homs = append(homs, b)
		} else {
			hets = append(hets, b)
		}
	}
	if len(homs) < 4 || len(hets) < 2 {
		t.Fatalf("world composition unusable: %d homog, %d hetero", len(homs), len(hets))
	}
	// Two homogeneous blocks sharing a pop (a truly pure pair) and one
	// from a different pop (an impure partner).
	var pureA, pureB, other iputil.Block24
	found := false
	for i := 0; i < len(homs) && !found; i++ {
		for j := i + 1; j < len(homs); j++ {
			if popOf[homs[i]] == popOf[homs[j]] {
				pureA, pureB, found = homs[i], homs[j], true
				break
			}
		}
	}
	if !found {
		t.Fatal("no two homogeneous blocks share a pop")
	}
	for _, b := range homs {
		if popOf[b] != popOf[pureA] {
			other = b
			break
		}
	}
	outside := iputil.Addr(0xdfffff00).Block24()
	if _, known := w.TrueHomogeneous(outside); known {
		t.Fatal("probe block unexpectedly inside the universe")
	}

	res := func(b iputil.Block24, c hobbit.Class, degraded int) *hobbit.BlockResult {
		return &hobbit.BlockResult{Block: b, Class: c, Degraded: degraded}
	}
	campaign := &hobbit.Result{Blocks: map[iputil.Block24]*hobbit.BlockResult{
		pureA:   res(pureA, hobbit.ClassSameLastHop, 1),    // TP (degraded)
		hets[0]: res(hets[0], hobbit.ClassSameLastHop, 0),  // FP
		pureB:   res(pureB, hobbit.ClassHierarchical, 0),   // FN
		hets[1]: res(hets[1], hobbit.ClassHierarchical, 0), // TN
		other:   res(other, hobbit.ClassTooFewActive, 0),   // no verdict
		outside: res(outside, hobbit.ClassSameLastHop, 0),  // unknown: skipped
	}}
	for b := range campaign.Blocks {
		campaign.Order = append(campaign.Order, b)
	}
	out := &core.Output{
		Eligible:      campaign.Order,
		Campaign:      campaign,
		LowConfidence: []iputil.Block24{pureA},
		Final: []*aggregate.Block{
			{Blocks24: []iputil.Block24{pureA}},          // singleton: not scored
			{Blocks24: []iputil.Block24{pureA, pureB}},   // pure
			{Blocks24: []iputil.Block24{pureA, other}},   // impure: pops differ
			{Blocks24: []iputil.Block24{hets[0], pureA}}, // impure: hetero member
		},
	}
	r := Score("matrix", w, out)
	if r.TP != 1 || r.FP != 1 || r.FN != 1 || r.TN != 1 || r.NoVerdict != 1 {
		t.Errorf("matrix = TP%d FP%d FN%d TN%d NoVerdict%d, want all ones", r.TP, r.FP, r.FN, r.TN, r.NoVerdict)
	}
	if r.Precision != 0.5 || r.Recall != 0.5 {
		t.Errorf("precision %v recall %v, want 0.5 each", r.Precision, r.Recall)
	}
	if r.DegradedBlocks != 1 || r.LowConfidence != 1 {
		t.Errorf("degraded %d low-confidence %d, want 1 each", r.DegradedBlocks, r.LowConfidence)
	}
	if r.FinalBlocks != 4 || r.MultiBlocks != 3 || r.PureBlocks != 1 {
		t.Errorf("final %d multi %d pure %d, want 4/3/1", r.FinalBlocks, r.MultiBlocks, r.PureBlocks)
	}
	if want := 1.0 / 3; r.Purity < want-1e-12 || r.Purity > want+1e-12 {
		t.Errorf("purity %v, want 1/3", r.Purity)
	}

	// An empty output renders no verdicts and no aggregates: every ratio
	// sits on a zero denominator and reports a vacuous 1.
	empty := Score("empty", w, &core.Output{Campaign: &hobbit.Result{}})
	if empty.Precision != 1 || empty.Recall != 1 || empty.Purity != 1 {
		t.Errorf("vacuous ratios = %v/%v/%v, want 1s", empty.Precision, empty.Recall, empty.Purity)
	}
}

// TestRunBadWorld pins Run's world-construction error path.
func TestRunBadWorld(t *testing.T) {
	opt := DefaultOptions()
	opt.Blocks = -1
	if _, _, err := Run(Scenario{Plan: "baseline"}, opt); err == nil {
		t.Fatal("negative universe accepted")
	}
}
