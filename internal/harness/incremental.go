package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/cluster"
	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/faultplan"
	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/monitor"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/probe"
)

// encOutput is the canonical serialization of an Output's artifacts:
// every map is flattened into a deterministically ordered slice, so two
// byte-equal encodings mean artifact-identical runs. Telemetry is
// excluded by construction — it accounts execution (which differs
// between incremental and from-scratch paths), not results.
type encOutput struct {
	TotalActive   int
	Eligible      []iputil.Block24
	Results       []*hobbit.BlockResult // in campaign order
	Aggregates    []*aggregate.Block
	LowConfidence []iputil.Block24
	Clusters      []encCluster
	Unclustered   []*aggregate.Block
	Sweep         [][2]float64
	Inflation     float64
	Components    int
	Validations   []encValidation
	Validated     []int
	Final         []*aggregate.Block
}

type encCluster struct {
	ID      int
	Members []*aggregate.Block
}

type encValidation struct {
	ID int
	V  cluster.Validation
}

// EncodeOutput renders a pipeline Output into one canonical byte string
// for differential comparison. Two Outputs are artifact-identical iff
// their encodings are byte-equal.
func EncodeOutput(out *core.Output) []byte {
	e := &encOutput{
		Eligible:      out.Eligible,
		LowConfidence: out.LowConfidence,
		Aggregates:    out.Aggregates,
		Final:         out.Final,
	}
	if out.Dataset != nil {
		e.TotalActive = out.Dataset.TotalActive()
	}
	if out.Campaign != nil {
		for _, b := range out.Campaign.Order {
			e.Results = append(e.Results, out.Campaign.Blocks[b])
		}
	}
	if out.Clustering != nil {
		for _, c := range out.Clustering.Clusters {
			e.Clusters = append(e.Clusters, encCluster{ID: c.ID, Members: c.Members})
		}
		e.Unclustered = out.Clustering.Unclustered
		e.Inflation = out.Clustering.ChosenInflation
		e.Components = out.Clustering.Components
		for k, v := range out.Clustering.SweepScores {
			e.Sweep = append(e.Sweep, [2]float64{k, v})
		}
		sort.Slice(e.Sweep, func(i, j int) bool { return e.Sweep[i][0] < e.Sweep[j][0] })
	}
	for id, v := range out.Validations {
		e.Validations = append(e.Validations, encValidation{ID: id, V: v})
	}
	sort.Slice(e.Validations, func(i, j int) bool { return e.Validations[i].ID < e.Validations[j].ID })
	for id, ok := range out.Validated {
		if ok {
			e.Validated = append(e.Validated, id)
		}
	}
	sort.Ints(e.Validated)
	b, err := json.Marshal(e)
	if err != nil {
		// Every field is a plain value type; a marshal failure is a
		// programming error, not a data condition.
		panic(err)
	}
	return b
}

// IncrementalScenario configures one differential monitoring check.
type IncrementalScenario struct {
	// Plan is the built-in fault plan driving the churn.
	Plan string
	// Epochs is how many epochs the monitor steps through (including
	// the epoch-0 bootstrap).
	Epochs int
	// StreamChunk is applied to the from-scratch reference pipeline, so
	// the monitor is checked against the streamed execution shape too.
	StreamChunk int
}

// CheckIncremental is the differential harness for the monitoring mode:
// it steps a Monitor epoch by epoch over a faulted world and, at every
// epoch, demands the incremental Output be byte-identical (under
// EncodeOutput) to a from-scratch pipeline run against the same world
// pinned at the same epoch. It also enforces the point of the exercise:
// under a partial-churn plan, later epochs must reprobe strictly fewer
// blocks than the universe.
func CheckIncremental(sc IncrementalScenario, opt Options) error {
	cfg := netsim.DefaultConfig(opt.Blocks)
	cfg.BigBlockScale = opt.BigBlockScale
	w, err := netsim.New(cfg)
	if err != nil {
		return err
	}
	sched, err := faultplan.CompileBuiltin(sc.Plan, w)
	if err != nil {
		return err
	}
	w.SetFaults(sched)
	w.SetEpoch(opt.Epoch)
	defer w.SetFaultEpoch(-1)

	mkPipe := func(chunk int) *core.Pipeline {
		return &core.Pipeline{
			Net:         probe.NewSimNetwork(w),
			Scanner:     w,
			Blocks:      w.Blocks(),
			Seed:        opt.Seed,
			StreamChunk: chunk,
			Options: core.Options{
				Workers:        opt.Workers,
				CensusWorkers:  opt.CensusWorkers,
				ClusterWorkers: opt.ClusterWorkers,
				MDA:            probe.MDAOptions{Adaptive: true},
			},
		}
	}
	mon := &monitor.Monitor{Pipeline: mkPipe(0), Source: &monitor.WorldSource{W: w}}
	defer mon.Close()

	ctx := context.Background()
	fullReprobes := 0
	for e := 0; e < sc.Epochs; e++ {
		rep, err := mon.Step(ctx)
		if err != nil {
			return fmt.Errorf("harness: plan %q epoch %d: monitor: %w", sc.Plan, e, err)
		}
		// The monitor left the world pinned at e; the reference runs
		// from scratch against exactly that network state.
		want, err := mkPipe(sc.StreamChunk).Run(ctx)
		if err != nil {
			return fmt.Errorf("harness: plan %q epoch %d: reference: %w", sc.Plan, e, err)
		}
		got, ref := EncodeOutput(rep.Output), EncodeOutput(want)
		if !bytes.Equal(got, ref) {
			return fmt.Errorf("harness: plan %q epoch %d: incremental output diverged from from-scratch (%d vs %d bytes)",
				sc.Plan, e, len(got), len(ref))
		}
		if e == 0 {
			if !rep.All || rep.Reprobed != len(rep.Output.Eligible) {
				return fmt.Errorf("harness: plan %q: bootstrap epoch measured %d of %d eligible", sc.Plan, rep.Reprobed, len(rep.Output.Eligible))
			}
			continue
		}
		if rep.All {
			fullReprobes++
		}
	}
	if sc.Epochs > 1 && fullReprobes == sc.Epochs-1 {
		return fmt.Errorf("harness: plan %q: every post-bootstrap epoch degraded to a full reprobe", sc.Plan)
	}
	return nil
}
