package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLimiterBoundsConcurrency(t *testing.T) {
	const slots, tasks = 3, 50
	l := NewLimiter(slots)
	if l.Cap() != slots {
		t.Fatalf("Cap = %d, want %d", l.Cap(), slots)
	}
	var cur, peak, over atomic.Int64
	var wg sync.WaitGroup
	wg.Add(tasks)
	for i := 0; i < tasks; i++ {
		go func() {
			defer wg.Done()
			if err := l.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			defer l.Release()
			n := cur.Add(1)
			defer cur.Add(-1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			if n > slots {
				over.Add(1)
			}
		}()
	}
	wg.Wait()
	if over.Load() > 0 {
		t.Errorf("%d admissions exceeded the %d-slot bound (peak %d)", over.Load(), slots, peak.Load())
	}
	if l.InUse() != 0 {
		t.Errorf("InUse = %d after all releases", l.InUse())
	}
}

func TestLimiterAcquireCancellation(t *testing.T) {
	l := NewLimiter(1)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A waiter blocked on a full limiter unblocks with ctx.Err.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		errc <- l.Acquire(ctx)
	}()
	cancel()
	wg.Wait()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("blocked Acquire = %v, want context.Canceled", err)
	}
	// A pre-cancelled context never steals a free slot.
	l.Release()
	if err := l.Acquire(ctx); err != context.Canceled {
		t.Fatalf("pre-cancelled Acquire = %v, want context.Canceled", err)
	}
	if l.InUse() != 0 {
		t.Fatalf("pre-cancelled Acquire leaked a slot (InUse = %d)", l.InUse())
	}
}

func TestLimiterTryAcquire(t *testing.T) {
	l := NewLimiter(2)
	if !l.TryAcquire() || !l.TryAcquire() {
		t.Fatal("TryAcquire failed with free slots")
	}
	if l.TryAcquire() {
		t.Fatal("TryAcquire succeeded on a full limiter")
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("TryAcquire failed after a release")
	}
	l.Release()
	l.Release()
}

func TestLimiterReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Release on an idle limiter did not panic")
		}
	}()
	NewLimiter(1).Release()
}

func TestLimiterDefaultCap(t *testing.T) {
	if NewLimiter(0).Cap() < 1 {
		t.Error("zero-slot default should be at least one slot")
	}
}
