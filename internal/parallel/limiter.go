package parallel

import (
	"context"
	"runtime"
)

// Limiter is a context-aware counting semaphore: the admission-control
// sibling of Pool. Where Pool bounds the fan-out *inside* one pipeline
// stage, Limiter bounds how many long-lived activities — whole campaign
// runs in hobbitd — may hold a slot at once, with the same policy
// surface: 0 means GOMAXPROCS, cancellation is honored while waiting,
// and slots are handed out in FIFO arrival order (channel semantics), so
// a burst of admissions drains fairly instead of starving early waiters.
type Limiter struct {
	slots chan struct{}
}

// NewLimiter returns a limiter with n slots (n <= 0 uses GOMAXPROCS).
func NewLimiter(n int) *Limiter {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Limiter{slots: make(chan struct{}, n)}
}

// Cap returns the number of slots.
func (l *Limiter) Cap() int { return cap(l.slots) }

// InUse returns the number of currently held slots (advisory: it may be
// stale by the time the caller reads it).
func (l *Limiter) InUse() int { return len(l.slots) }

// Acquire blocks until a slot is free or ctx is cancelled. It returns
// nil exactly when the caller now holds a slot and must eventually
// Release it; on cancellation it returns ctx.Err() and the caller holds
// nothing. A pre-cancelled context never steals a free slot.
func (l *Limiter) Acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot without blocking, reporting whether it got one.
func (l *Limiter) TryAcquire() bool {
	select {
	case l.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot taken by Acquire or TryAcquire. Releasing a
// slot that was never acquired panics — that is a bookkeeping bug, not a
// recoverable condition.
func (l *Limiter) Release() {
	select {
	case <-l.slots:
	default:
		panic("parallel: Limiter.Release without a held slot")
	}
}
