package parallel

import (
	"context"
	"sync/atomic"
	"testing"

	"github.com/hobbitscan/hobbit/internal/telemetry"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		p := Pool{Workers: workers}
		n := 500
		hits := make([]int32, n)
		if err := p.ForEach(context.Background(), n, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestMapOrderedMerge(t *testing.T) {
	p := Pool{Workers: 7}
	out, err := Map(context.Background(), p, 100, func(i int) int { return i * i })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	// Empty index space: empty result, no error.
	out, err = Map(context.Background(), p, 0, func(i int) int { return i })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map = %v, %v", out, err)
	}
}

func TestForEachCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		p := Pool{Workers: workers}
		var done atomic.Int64
		err := p.ForEach(ctx, 10000, func(i int) {
			if done.Add(1) == 5 {
				cancel()
			}
		})
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := done.Load(); n == 0 || n == 10000 {
			t.Fatalf("workers=%d: cancellation did not land mid-run (%d items)", workers, n)
		}
	}
}

func TestShardsPartitionExactly(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{n: 10, workers: 3}, {n: 3, workers: 10}, {n: 1, workers: 1},
		{n: 64, workers: 8}, {n: 7, workers: 2}, {n: 100, workers: 0},
	} {
		p := Pool{Workers: tc.workers}
		covered := make([]int32, tc.n)
		if err := p.Shards(context.Background(), tc.n, func(shard, lo, hi int) {
			if lo >= hi {
				t.Errorf("n=%d workers=%d: empty shard [%d,%d)", tc.n, tc.workers, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d workers=%d: index %d covered %d times", tc.n, tc.workers, i, c)
			}
		}
	}
	// n = 0 is a no-op.
	if err := (Pool{}).Shards(context.Background(), 0, func(_, _, _ int) {
		t.Error("shard invoked for empty space")
	}); err != nil {
		t.Fatal(err)
	}
}

func TestShardsCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := Pool{Workers: 1}.Shards(ctx, 10, func(_, _, _ int) { ran = true })
	if err != context.Canceled || ran {
		t.Fatalf("err = %v, ran = %v", err, ran)
	}
}

func TestPoolTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := Pool{Workers: 2, Telemetry: reg, Stage: "cluster"}
	if err := p.ForEach(context.Background(), 40, func(int) {}); err != nil {
		t.Fatal(err)
	}
	if err := p.Shards(context.Background(), 10, func(_, _, _ int) {}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["cluster.parallel_items"]; got != 50 {
		t.Errorf("parallel_items = %d, want 50", got)
	}
	if got := snap.Counters["cluster.parallel_runs"]; got != 2 {
		t.Errorf("parallel_runs = %d, want 2", got)
	}

	// Cancelled fan-outs are not counted: snapshots stay deterministic.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.ForEach(ctx, 40, func(int) {}); err == nil {
		t.Fatal("cancelled ForEach returned nil")
	}
	if got := reg.Snapshot().Counters["cluster.parallel_items"]; got != 50 {
		t.Errorf("cancelled run leaked into parallel_items: %d", got)
	}
}
