// Package parallel is the sanctioned worker pool of the pipeline: a
// bounded, context-aware fan-out over an index space with a deterministic
// ordered merge. Every post-campaign stage that shards work — similarity
// graph construction, MCL expansion, reprobe validation — runs through
// this package, so concurrency policy (worker bounds, cancellation,
// telemetry accounting) lives in exactly one place and the
// goroutine-leak analyzer can treat its launch sites as the approved
// idiom.
//
// The determinism contract: callers hand the pool an index space [0, n)
// and a function whose result for index i depends only on i and on
// inputs that existed before the fan-out. Results land in caller-owned,
// index-addressed storage (slot i of a pre-sized slice), and the caller
// merges them by ascending index after the pool drains. Scheduling then
// affects only *when* a slot is written, never *what* it holds or the
// order the merge reads it, so a Workers=1 run and a Workers=8 run
// produce byte-identical output.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/hobbitscan/hobbit/internal/telemetry"
)

// Pool bounds and observes a family of fan-outs. The zero value is ready
// to use: GOMAXPROCS workers, no telemetry.
type Pool struct {
	// Workers bounds concurrency: 0 uses GOMAXPROCS, 1 runs serially on
	// the calling goroutine.
	Workers int
	// Telemetry receives "<Stage>.parallel_items" / "<Stage>.parallel_runs"
	// counters for completed fan-outs; nil (or an empty Stage) disables
	// the accounting. Cancelled fan-outs are not counted, so counter
	// snapshots stay deterministic for a fixed seed.
	Telemetry *telemetry.Registry
	// Stage is the metric-name prefix, following the stage.metric_name
	// convention ("cluster", "validate").
	Stage string
}

func (p Pool) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// count records a completed fan-out of n items.
func (p Pool) count(n int) {
	if p.Telemetry == nil || p.Stage == "" {
		return
	}
	p.Telemetry.Counter(p.Stage + ".parallel_items").Add(int64(n))
	p.Telemetry.Counter(p.Stage + ".parallel_runs").Inc()
}

// ForEach invokes fn(i) once for every i in [0, n), running at most
// Workers goroutines. Indices are handed out dynamically, so uneven
// per-item cost load-balances; fn must therefore write its result only
// into index-addressed storage it owns (slot i), never append to shared
// state. Cancellation is checked between items: on ctx cancellation
// ForEach stops handing out indices, drains in-flight items, and returns
// ctx.Err() — completed slots remain valid.
func (p Pool) ForEach(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := p.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		p.count(n)
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go claim(ctx, &wg, &next, n, fn)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	p.count(n)
	return nil
}

// claim is one ForEach worker: it draws indices from the shared cursor
// until the space is exhausted or the context is cancelled, and signals
// the pool's WaitGroup on exit.
func claim(ctx context.Context, wg *sync.WaitGroup, next *atomic.Int64, n int, fn func(int)) {
	defer wg.Done()
	for ctx.Err() == nil {
		i := int(next.Add(1)) - 1
		if i >= n {
			return
		}
		fn(i)
	}
}

// Shards splits [0, n) into at most Workers contiguous ranges and invokes
// fn(shard, lo, hi) for each concurrently. Shards exists for stages whose
// workers carry scratch state (MCL's dense column accumulator): allocating
// once per shard instead of once per item keeps the per-item loop
// allocation-free. The ranges partition [0, n) exactly, in order, so the
// ordered-merge contract is the same as ForEach's. Cancellation is
// checked before each shard starts; started shards run to completion.
func (p Pool) Shards(ctx context.Context, n int, fn func(shard, lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	k := p.workers()
	if k > n {
		k = n
	}
	if k <= 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		fn(0, 0, n)
		p.count(n)
		return nil
	}
	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		lo, hi := s*n/k, (s+1)*n/k
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			fn(s, lo, hi)
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	p.count(n)
	return nil
}

// Map computes out[i] = fn(i) for every i in [0, n) on the pool and
// returns the results in index order — the shard → ordered-merge contract
// packaged for the common collect case. On cancellation it returns nil
// and ctx.Err().
func Map[T any](ctx context.Context, p Pool, n int, fn func(i int) T) ([]T, error) {
	out := make([]T, n)
	if err := p.ForEach(ctx, n, func(i int) { out[i] = fn(i) }); err != nil {
		return nil, err
	}
	return out, nil
}
