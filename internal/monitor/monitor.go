// Package monitor is the continuous-monitoring mode: instead of
// re-running the whole pipeline when the network moves, a Monitor
// watches epochs advance, asks the probing surface which /24s could
// have changed routes since the previous epoch, reprobes exactly those,
// and repairs the aggregation and clustering incrementally.
//
// The headline contract is byte-identity (DESIGN.md §4j): every epoch's
// Output is exactly what a from-scratch core.Pipeline.Run would produce
// against the same surface pinned at that epoch. The incremental path
// is an execution strategy, never a different answer. Three properties
// of the stack carry it: per-/24 measurements are pure in the block
// (unchanged blocks' cached results equal a fresh measurement), the
// census ignores fault state (the /24 universe and eligibility are
// epoch-invariant), and the rolling clusterer (cluster.Rolling)
// guarantees per-epoch results identical to a from-scratch clustering
// of the same aggregate list.
package monitor

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"sync"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/cluster"
	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/parallel"
	"github.com/hobbitscan/hobbit/internal/zmap"
)

// Stage names for monitor spans and probe attribution.
const (
	StageReprobe  = "monitor.reprobe"
	StageCluster  = "monitor.cluster"
	StageValidate = "monitor.validate"
)

// Source is the epoch feed: Advance pins the probing surface at an
// epoch, Changed answers which /24s could have changed routes between
// two pinned epochs. A conservative superset is always safe — extra
// blocks cost reprobes, never correctness; all=true degrades to a full
// reprobe.
type Source interface {
	Advance(epoch int)
	Changed(prev, next int) (blocks []iputil.Block24, all bool)
}

// WorldSource adapts a simulated world to the Source interface through
// the fault-epoch pin: the world's measurement epoch stays fixed (so
// availability draws — and with them the census — never move), while
// the fault schedule alone advances, and the schedule's own delta
// analysis bounds the changed set.
type WorldSource struct {
	W *netsim.World
}

func (s *WorldSource) Advance(epoch int) { s.W.SetFaultEpoch(epoch) }

func (s *WorldSource) Changed(prev, next int) ([]iputil.Block24, bool) {
	return s.W.EpochDelta(prev, next)
}

// EpochReport accounts one epoch's incremental work.
type EpochReport struct {
	// Epoch is the epoch index this report covers (0 = bootstrap).
	Epoch int
	// Changed is the size of the changed-block superset the source
	// reported; All whether it degraded to the full universe. Reprobed
	// is the eligible subset actually re-measured.
	Changed  int
	All      bool
	Reprobed int
	// Cluster is the rolling clusterer's work accounting.
	Cluster cluster.EpochStats
	// ValReused and ValRecomputed count validation-cache hits and the
	// clusters revalidated with live reprobes.
	ValReused, ValRecomputed int
	// Output is the epoch's full artifact set, byte-identical to a
	// from-scratch run at this epoch.
	Output *core.Output
}

// valEntry is one cached cluster validation: the outcome plus the
// member /24s whose reprobe responses it rests on, kept for eviction
// against later change sets.
type valEntry struct {
	v       cluster.Validation
	members []iputil.Block24
}

// Monitor runs the continuous-monitoring loop over a pipeline
// configuration. A Pipeline plus a Source makes it ready; the first
// Step bootstraps (census plus full measurement), later Steps cost work
// proportional to the churned blocks. End with Close.
type Monitor struct {
	// Pipeline supplies the probing surface, universe, seed, and run
	// options. The monitor never calls its Run; it drives the same
	// stage building blocks incrementally.
	Pipeline *core.Pipeline
	// Source feeds epochs and change sets.
	Source Source

	epoch    int
	ds       *zmap.Dataset
	eligible []iputil.Block24
	results  map[iputil.Block24]*hobbit.BlockResult
	roll     *cluster.Rolling
	vals     map[string]valEntry
	// lastHops caches exhaustive validation reprobes across epochs,
	// evicted by the same conservative change sets as the validation
	// cache. Validation is the epoch's dominant probe cost — every
	// recomputed cluster reprobes up to 2·ValidatePairs members — and
	// per-/24 measurement purity makes an unchanged block's cached
	// response exactly what a live reprobe would return.
	lastHops map[iputil.Block24][]iputil.Addr
}

// Step advances to the next epoch: pins the source, reprobes the
// changed eligible blocks, replays aggregation over the merged result
// set, repairs the clustering, and revalidates only clusters touched by
// the change set. The returned report's Output is byte-identical to a
// from-scratch run at the new epoch; on error the report carries
// whatever completed.
func (m *Monitor) Step(ctx context.Context) (*EpochReport, error) {
	p := m.Pipeline
	if p == nil || m.Source == nil {
		return nil, errors.New("monitor: Monitor needs Pipeline and Source")
	}
	if p.Net == nil || p.Scanner == nil {
		return nil, errors.New("monitor: Pipeline needs Net and Scanner")
	}
	if len(p.Blocks) == 0 {
		return nil, errors.New("monitor: no blocks to monitor")
	}
	if err := p.Options.Validate(); err != nil {
		return nil, err
	}
	reg := p.Telemetry
	e := m.epoch
	m.Source.Advance(e)
	rep := &EpochReport{Epoch: e}
	var reprobe []iputil.Block24

	if m.results == nil {
		// Bootstrap census: the census ignores fault state, so one sweep
		// serves every epoch — the universe and eligibility never move.
		span := reg.StartSpan(core.StageCensus)
		m.ds = zmap.ScanWith(p.Scanner, p.Blocks, zmap.ScanOptions{Workers: p.CensusWorkers, Telemetry: reg})
		m.eligible = m.ds.EligibleBlocks(p.Blocks, p.MinActiveOrDefault())
		reg.Counter("census.eligible_blocks").Add(int64(len(m.eligible)))
		span.End()
		m.results = make(map[iputil.Block24]*hobbit.BlockResult, len(m.eligible))
		if !p.SkipClustering {
			m.roll = (&cluster.Pipeline{Seed: p.Seed, Workers: p.ClusterWorkers, Telemetry: reg}).Rolling()
		}
		m.vals = make(map[string]valEntry)
		m.lastHops = make(map[iputil.Block24][]iputil.Addr)
		rep.All = true
		reprobe = m.eligible
	} else {
		changed, all := m.Source.Changed(e-1, e)
		rep.All = all
		rep.Changed = len(changed)
		if all {
			rep.Changed = len(p.Blocks)
			reprobe = m.eligible
		} else {
			// Intersect with the eligible list in eligible order, so the
			// sub-campaign is a strict subsequence of the from-scratch one.
			changedSet := make(map[iputil.Block24]bool, len(changed))
			for _, b := range changed {
				changedSet[b] = true
			}
			for _, b := range m.eligible {
				if changedSet[b] {
					reprobe = append(reprobe, b)
				}
			}
		}
		m.dropStaleValidations(changed, all)
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}

	rep.Reprobed = len(reprobe)
	reg.Counter("monitor.epochs").Inc()
	reg.Counter("monitor.changed_blocks").Add(int64(rep.Changed))
	reg.Counter("monitor.reprobed_blocks").Add(int64(rep.Reprobed))

	span := reg.StartSpan(StageReprobe)
	m.setStage(StageReprobe)
	campaign := &hobbit.Campaign{
		Measurer:  p.Measurer(false),
		Dataset:   m.ds,
		Workers:   p.Workers,
		Telemetry: reg,
		Progress:  p.Progress,
		Stage:     StageReprobe,
	}
	res, err := campaign.Run(ctx, reprobe)
	span.End()
	if res != nil {
		for b, br := range res.Blocks {
			m.results[b] = br
		}
	}
	if err != nil {
		return rep, err
	}

	out, err := m.assemble(ctx, rep)
	rep.Output = out
	if err != nil {
		return rep, err
	}
	if p.ResultSink != nil {
		for _, b := range out.Campaign.Order {
			p.ResultSink(out.Campaign.Blocks[b])
		}
	}
	m.epoch++
	return rep, nil
}

// assemble replays aggregation over the merged per-block results and
// repairs clustering and validation, producing the epoch's Output.
func (m *Monitor) assemble(ctx context.Context, rep *EpochReport) (*core.Output, error) {
	p := m.Pipeline
	reg := p.Telemetry
	out := &core.Output{Dataset: m.ds, Eligible: m.eligible}
	blocks := make(map[iputil.Block24]*hobbit.BlockResult, len(m.results))
	for b, br := range m.results {
		blocks[b] = br
	}
	out.Campaign = &hobbit.Result{Blocks: blocks, Order: m.eligible}

	// Aggregation replay: cheap string grouping over cached results,
	// and exactly the from-scratch loop including the low-confidence
	// exclusion — a block whose reprobe exhausted its budget this epoch
	// drops out of aggregation this epoch.
	span := reg.StartSpan(core.StageAggregate)
	interner := aggregate.NewInterner()
	builder := aggregate.NewBuilder(interner)
	for _, br := range out.Campaign.HomogeneousBlocks() {
		if br.LowConfidence() {
			out.LowConfidence = append(out.LowConfidence, br.Block)
			continue
		}
		builder.Add(br)
	}
	out.Aggregates = builder.Finish()
	span.End()
	if p.SkipClustering {
		out.Final = out.Aggregates
		return out, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}

	span = reg.StartSpan(StageCluster)
	clRes, stats := m.roll.Epoch(out.Aggregates)
	out.Clustering = clRes
	rep.Cluster = stats
	reg.Counter("monitor.components_reused").Add(int64(stats.Reused))
	reg.Counter("monitor.components_recomputed").Add(int64(stats.Recomputed))
	reg.Counter("monitor.delta_edges").Add(int64(stats.DeltaEdges))
	span.End()
	if err := ctx.Err(); err != nil {
		return out, err
	}

	return out, m.validate(ctx, out, rep, interner)
}

// validate merges cached and recomputed cluster validations. A cache
// entry is keyed by cluster identity — ID plus member /24s, because the
// reprobe pair sampling is keyed by cluster ID — and entries whose
// members appeared in any change set since computation were already
// evicted, so a hit is provably what a live revalidation would return.
func (m *Monitor) validate(ctx context.Context, out *core.Output, rep *EpochReport, interner *aggregate.Interner) error {
	p := m.Pipeline
	reg := p.Telemetry
	span := reg.StartSpan(StageValidate)
	defer span.End()
	m.setStage(StageValidate)

	clusters := out.Clustering.Clusters
	keys := make([]string, len(clusters))
	vals := make([]cluster.Validation, len(clusters))
	done := make([]bool, len(clusters))
	var misses []int
	for i, c := range clusters {
		keys[i] = valKey(c)
		if ent, ok := m.vals[keys[i]]; ok {
			vals[i] = ent.v
			done[i] = true
			rep.ValReused++
			continue
		}
		misses = append(misses, i)
	}
	rp := &reprober{m: p.Measurer(true), ds: m.ds, mon: m}
	pool := parallel.Pool{Workers: p.ClusterWorkers, Telemetry: reg, Stage: StageValidate}
	perr := pool.ForEach(ctx, len(misses), func(k int) {
		i := misses[k]
		vals[i] = cluster.Validate(clusters[i], rp, p.ValidatePairs, p.Seed)
		done[i] = true
	})
	rep.ValRecomputed = len(misses)
	reg.Counter("monitor.validations_reused").Add(int64(rep.ValReused))
	reg.Counter("monitor.validations_recomputed").Add(int64(rep.ValRecomputed))

	// Merge in cluster-ID order and rebuild the cache from this epoch's
	// validations only, so clusters that dissolved do not accumulate.
	out.Validations = make(map[int]cluster.Validation, len(clusters))
	validated := make(map[int]bool)
	next := make(map[string]valEntry, len(clusters))
	for i, c := range clusters {
		if !done[i] {
			continue
		}
		v := vals[i]
		out.Validations[c.ID] = v
		next[keys[i]] = valEntry{v: v, members: c.Blocks24()}
		if v.Passes() {
			validated[c.ID] = true
		}
	}
	out.Validated = validated
	if perr != nil {
		// Cancelled mid-validation: keep the old cache (it stays sound —
		// eviction already happened against this epoch's change set).
		return perr
	}
	m.vals = next
	out.Final = cluster.ApplyValidatedInterned(out.Clustering, validated, interner)
	reg.Counter("validate.final_blocks").Add(int64(len(out.Final)))
	return nil
}

// dropStaleValidations evicts validation-cache entries whose member
// /24s intersect the epoch's change set (all of them when the delta
// degraded to All) — their reprobe responses may differ this epoch —
// and the changed blocks' cached reprobe responses with them.
func (m *Monitor) dropStaleValidations(changed []iputil.Block24, all bool) {
	if all {
		clear(m.vals)
		clear(m.lastHops)
		return
	}
	if len(changed) == 0 {
		return
	}
	changedSet := make(map[iputil.Block24]bool, len(changed))
	for _, b := range changed {
		changedSet[b] = true
		delete(m.lastHops, b)
	}
	for k, ent := range m.vals {
		for _, b := range ent.members {
			if changedSet[b] {
				delete(m.vals, k)
				break
			}
		}
	}
}

// valKey is a cluster's validation-cache identity: the ID (the reprobe
// pair sampling is keyed by it) plus the member /24 list.
func valKey(c *cluster.Cluster) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(c.ID))
	for _, blk := range c.Blocks24() {
		b.WriteByte(0)
		b.WriteString(blk.String())
	}
	return b.String()
}

// Epoch returns the next epoch Step will pin (equivalently, how many
// epochs have completed).
func (m *Monitor) Epoch() int { return m.epoch }

// Run steps through n epochs and returns their reports; on error the
// reports completed so far are returned alongside it.
func (m *Monitor) Run(ctx context.Context, n int) ([]*EpochReport, error) {
	var reps []*EpochReport
	for i := 0; i < n; i++ {
		rep, err := m.Step(ctx)
		if rep != nil {
			reps = append(reps, rep)
		}
		if err != nil {
			return reps, err
		}
	}
	return reps, nil
}

// Close releases the rolling clusterer's worker pool. The Monitor is
// dead afterwards.
func (m *Monitor) Close() {
	if m.roll != nil {
		m.roll.Close()
		m.roll = nil
	}
}

func (m *Monitor) setStage(stage string) {
	if s, ok := m.Pipeline.Net.(interface{ SetStage(string) }); ok {
		s.SetStage(stage)
	}
}

// reprober adapts the exhaustive measurement strategy to the
// cluster.Reprober interface, exactly as the from-scratch validation
// stage does, but consults the monitor's cross-epoch reprobe cache
// first: a block absent from every change set since its last reprobe
// answers from the cache (purity makes the bytes identical), so a
// revalidated cluster only pays live probes for its churned members.
type reprober struct {
	m   *hobbit.Measurer
	ds  *zmap.Dataset
	mon *Monitor

	mu sync.Mutex
}

func (r *reprober) Reprobe(b iputil.Block24) []iputil.Addr {
	r.mu.Lock()
	lhs, ok := r.mon.lastHops[b]
	r.mu.Unlock()
	if !ok {
		// A concurrent miss on the same block measures twice; purity makes
		// both answers identical, so last-write-wins is safe.
		lhs = r.m.MeasureBlock(b, r.ds.ActivesBy26(b)).LastHops
		r.mu.Lock()
		r.mon.lastHops[b] = lhs
		r.mu.Unlock()
	}
	// Callers sort the returned slice in place, and concurrent
	// validations may share a member: hand each its own copy.
	if lhs == nil {
		return nil
	}
	out := make([]iputil.Addr, len(lhs))
	copy(out, lhs)
	return out
}
