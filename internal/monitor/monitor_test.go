package monitor

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/faultplan"
	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

// monitorWorld builds a small faulted world plus a pipeline config over
// it, the same shape the harness uses.
func monitorWorld(t *testing.T, plan string) (*netsim.World, *core.Pipeline) {
	t.Helper()
	cfg := netsim.DefaultConfig(200)
	cfg.BigBlockScale = 0.02
	w, err := netsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan != "" {
		sched, err := faultplan.CompileBuiltin(plan, w)
		if err != nil {
			t.Fatal(err)
		}
		w.SetFaults(sched)
	}
	p := &core.Pipeline{
		Net:     probe.NewSimNetwork(w),
		Scanner: w,
		Blocks:  w.Blocks(),
		Seed:    3,
		Options: core.Options{Workers: 4, MDA: probe.MDAOptions{Adaptive: true}},
	}
	return w, p
}

func TestMonitorConfigErrors(t *testing.T) {
	ctx := context.Background()
	for name, m := range map[string]*Monitor{
		"empty":     {},
		"no source": {Pipeline: &core.Pipeline{}},
		"no net":    {Pipeline: &core.Pipeline{}, Source: &WorldSource{}},
		"no blocks": {Pipeline: &core.Pipeline{Net: probe.NewSimNetwork(nil), Scanner: netsim.MustNew(netsim.DefaultConfig(8))}, Source: &WorldSource{}},
	} {
		if _, err := m.Step(ctx); err == nil {
			t.Errorf("%s: Step accepted a broken config", name)
		}
	}
}

// TestMonitorEpochLoop drives a flap-churned session and checks the
// loop accounting: bootstrap measures everything, later epochs reprobe
// strict subsets, validation and component caches hit, counters tally.
func TestMonitorEpochLoop(t *testing.T) {
	w, p := monitorWorld(t, "flap")
	reg := telemetry.NewRegistry()
	p.Telemetry = reg
	var sunk int
	p.ResultSink = func(_ *hobbit.BlockResult) { sunk++ }
	m := &Monitor{Pipeline: p, Source: &WorldSource{W: w}}
	defer m.Close()
	defer w.SetFaultEpoch(-1)

	reps, err := m.Run(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 4 || m.Epoch() != 4 {
		t.Fatalf("ran %d epochs, Epoch()=%d", len(reps), m.Epoch())
	}
	eligible := len(reps[0].Output.Eligible)
	if !reps[0].All || reps[0].Reprobed != eligible {
		t.Fatalf("bootstrap: All=%v Reprobed=%d eligible=%d", reps[0].All, reps[0].Reprobed, eligible)
	}
	if sunk != 4*eligible {
		t.Errorf("ResultSink saw %d results, want %d", sunk, 4*eligible)
	}
	reusedSomewhere := false
	for _, rep := range reps[1:] {
		if rep.All || rep.Reprobed >= eligible {
			t.Errorf("epoch %d: reprobed %d of %d (All=%v), not incremental", rep.Epoch, rep.Reprobed, eligible, rep.All)
		}
		if rep.Reprobed > rep.Changed {
			t.Errorf("epoch %d: reprobed %d > changed %d", rep.Epoch, rep.Reprobed, rep.Changed)
		}
		if rep.Output == nil || rep.Output.Final == nil {
			t.Fatalf("epoch %d: incomplete output", rep.Epoch)
		}
		if rep.Cluster.Reused > 0 || rep.ValReused > 0 {
			reusedSomewhere = true
		}
	}
	if !reusedSomewhere {
		t.Error("no epoch reused any cluster or validation work")
	}
	snap, err := reg.MarshalCounters()
	if err != nil {
		t.Fatal(err)
	}
	counters := string(snap)
	for _, c := range []string{"monitor.epochs", "monitor.reprobed_blocks", "monitor.validations_reused"} {
		if !strings.Contains(counters, c) {
			t.Errorf("counter %s missing from registry", c)
		}
	}
}

// TestMonitorSkipClustering checks the monitoring loop degrades the
// same way Run does when clustering is off: aggregates pass through.
func TestMonitorSkipClustering(t *testing.T) {
	w, p := monitorWorld(t, "baseline")
	p.SkipClustering = true
	m := &Monitor{Pipeline: p, Source: &WorldSource{W: w}}
	defer m.Close()
	defer w.SetFaultEpoch(-1)
	reps, err := m.Run(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reps {
		out := rep.Output
		if out.Clustering != nil || out.Validations != nil {
			t.Fatalf("epoch %d: clustering artifacts present with SkipClustering", rep.Epoch)
		}
		if !reflect.DeepEqual(out.Final, out.Aggregates) {
			t.Fatalf("epoch %d: Final != Aggregates", rep.Epoch)
		}
	}
}

func TestMonitorContextCancel(t *testing.T) {
	w, p := monitorWorld(t, "baseline")
	m := &Monitor{Pipeline: p, Source: &WorldSource{W: w}}
	defer m.Close()
	defer w.SetFaultEpoch(-1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Step(ctx); err == nil {
		t.Fatal("Step ignored a cancelled context")
	}
}

func TestWorldSourcePins(t *testing.T) {
	w := netsim.MustNew(netsim.DefaultConfig(8))
	s := &WorldSource{W: w}
	s.Advance(5)
	if got := w.FaultEpoch(); got != 5 {
		t.Fatalf("FaultEpoch=%d after Advance(5)", got)
	}
	w.SetFaultEpoch(-1)
	if blocks, all := s.Changed(0, 1); blocks != nil || all {
		t.Fatalf("faultless world Changed=(%v,%v), want empty", blocks, all)
	}
}
