// Package ip6util lays the groundwork for the paper's first-named future
// work: "we intend to apply Hobbit to IPv6 networks." It provides 128-bit
// address and prefix arithmetic plus the hierarchy test over the
// measurement unit that plays the /24's role in IPv6 — the /64 subnet,
// whose 64-bit interface identifiers Hobbit groups by last-hop router
// exactly as it groups the /24's host octet.
//
// The sparse v6 space rules out census scanning, so destination selection
// would come from hitlists rather than a ZMap sweep; everything after
// selection — MDA, last-hop grouping, the hierarchy test, aggregation —
// carries over unchanged, which is what this package demonstrates.
package ip6util

import (
	"fmt"
	"math/bits"
	"strings"
)

// Addr is a 128-bit IPv6 address as (high, low) 64-bit halves.
type Addr struct {
	Hi, Lo uint64
}

// MustParseAddr parses an RFC 4291 textual address and panics on error.
// It is intended for fixtures.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// ParseAddr parses a textual IPv6 address (with optional "::"
// compression; embedded IPv4 notation is not supported).
func ParseAddr(s string) (Addr, error) {
	var head, tail []uint16
	parts := strings.Split(s, "::")
	switch len(parts) {
	case 1:
		var err error
		head, err = parseGroups(parts[0])
		if err != nil {
			return Addr{}, err
		}
		if len(head) != 8 {
			return Addr{}, fmt.Errorf("ip6util: %q has %d groups, want 8", s, len(head))
		}
	case 2:
		var err error
		if parts[0] != "" {
			if head, err = parseGroups(parts[0]); err != nil {
				return Addr{}, err
			}
		}
		if parts[1] != "" {
			if tail, err = parseGroups(parts[1]); err != nil {
				return Addr{}, err
			}
		}
		if len(head)+len(tail) >= 8 {
			return Addr{}, fmt.Errorf("ip6util: %q compresses nothing", s)
		}
	default:
		return Addr{}, fmt.Errorf("ip6util: %q has multiple '::'", s)
	}
	var groups [8]uint16
	copy(groups[:], head)
	copy(groups[8-len(tail):], tail)
	var a Addr
	for i := 0; i < 4; i++ {
		a.Hi = a.Hi<<16 | uint64(groups[i])
	}
	for i := 4; i < 8; i++ {
		a.Lo = a.Lo<<16 | uint64(groups[i])
	}
	return a, nil
}

func parseGroups(s string) ([]uint16, error) {
	var out []uint16
	for _, g := range strings.Split(s, ":") {
		if g == "" || len(g) > 4 {
			return nil, fmt.Errorf("ip6util: bad group %q", g)
		}
		var v uint64
		for _, c := range g {
			switch {
			case c >= '0' && c <= '9':
				v = v<<4 | uint64(c-'0')
			case c >= 'a' && c <= 'f':
				v = v<<4 | uint64(c-'a'+10)
			case c >= 'A' && c <= 'F':
				v = v<<4 | uint64(c-'A'+10)
			default:
				return nil, fmt.Errorf("ip6util: bad hex digit %q", c)
			}
		}
		out = append(out, uint16(v))
	}
	return out, nil
}

// String renders the address with the longest zero run compressed.
func (a Addr) String() string {
	var groups [8]uint16
	for i := 0; i < 4; i++ {
		groups[i] = uint16(a.Hi >> uint(48-16*i))
		groups[i+4] = uint16(a.Lo >> uint(48-16*i))
	}
	// Longest run of zero groups (length >= 2) gets "::".
	bestStart, bestLen := -1, 1
	for i := 0; i < 8; {
		if groups[i] != 0 {
			i++
			continue
		}
		j := i
		for j < 8 && groups[j] == 0 {
			j++
		}
		if j-i > bestLen {
			bestStart, bestLen = i, j-i
		}
		i = j
	}
	var sb strings.Builder
	for i := 0; i < 8; {
		if i == bestStart {
			sb.WriteString("::")
			i += bestLen
			continue
		}
		if i > 0 && !strings.HasSuffix(sb.String(), "::") {
			sb.WriteByte(':')
		}
		fmt.Fprintf(&sb, "%x", groups[i])
		i++
	}
	if sb.Len() == 0 {
		return "::"
	}
	return sb.String()
}

// Cmp returns -1, 0, or 1 comparing a and b numerically.
func (a Addr) Cmp(b Addr) int {
	switch {
	case a.Hi < b.Hi:
		return -1
	case a.Hi > b.Hi:
		return 1
	case a.Lo < b.Lo:
		return -1
	case a.Lo > b.Lo:
		return 1
	default:
		return 0
	}
}

// CommonPrefixLen returns the longest common prefix length of a and b,
// between 0 and 128.
func CommonPrefixLen(a, b Addr) int {
	if x := a.Hi ^ b.Hi; x != 0 {
		return bits.LeadingZeros64(x)
	}
	if x := a.Lo ^ b.Lo; x != 0 {
		return 64 + bits.LeadingZeros64(x)
	}
	return 128
}

// Prefix is an IPv6 CIDR prefix with a canonical (host-bits-zero) base.
type Prefix struct {
	Base Addr
	Len  int
}

// MustParsePrefix parses "addr/len" CIDR notation and panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses CIDR notation; the base must be aligned.
func ParsePrefix(s string) (Prefix, error) {
	i := strings.LastIndexByte(s, '/')
	if i < 0 {
		return Prefix{}, fmt.Errorf("ip6util: missing '/' in %q", s)
	}
	a, err := ParseAddr(s[:i])
	if err != nil {
		return Prefix{}, err
	}
	var n int
	if _, err := fmt.Sscanf(s[i+1:], "%d", &n); err != nil || n < 0 || n > 128 {
		return Prefix{}, fmt.Errorf("ip6util: bad prefix length in %q", s)
	}
	p := PrefixOf(a, n)
	if p.Base != a {
		return Prefix{}, fmt.Errorf("ip6util: %q has host bits set", s)
	}
	return p, nil
}

// PrefixOf returns the length-n prefix containing a.
func PrefixOf(a Addr, n int) Prefix {
	p := Prefix{Len: n}
	switch {
	case n <= 0:
	case n <= 64:
		p.Base.Hi = a.Hi &^ (^uint64(0) >> uint(n))
	default:
		p.Base.Hi = a.Hi
		if n < 128 {
			p.Base.Lo = a.Lo &^ (^uint64(0) >> uint(n-64))
		} else {
			p.Base.Lo = a.Lo
		}
	}
	return p
}

// Contains reports whether the prefix covers a.
func (p Prefix) Contains(a Addr) bool {
	return PrefixOf(a, p.Len).Base == p.Base
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Base, p.Len)
}

// Subnet64 identifies the IPv6 measurement unit: the /64 containing an
// address (the role the /24 plays in v4).
func Subnet64(a Addr) Prefix { return PrefixOf(a, 64) }

// IID returns the 64-bit interface identifier within the address's /64 —
// the quantity Hobbit's hierarchy test ranges over in IPv6.
func IID(a Addr) uint64 { return a.Lo }

// Range is an inclusive IID span; the hierarchy test of the paper carries
// over verbatim with 64-bit interface identifiers in place of host
// octets.
type Range struct {
	Lo, Hi uint64
}

// RangeOfIIDs computes the enclosing range of a non-empty IID set.
func RangeOfIIDs(iids []uint64) Range {
	if len(iids) == 0 {
		panic("ip6util: RangeOfIIDs of empty set")
	}
	r := Range{Lo: iids[0], Hi: iids[0]}
	for _, v := range iids[1:] {
		if v < r.Lo {
			r.Lo = v
		}
		if v > r.Hi {
			r.Hi = v
		}
	}
	return r
}

// Hierarchical reports whether the pair relationship is disjoint or
// inclusive (Figure 2's criterion over IIDs).
func (r Range) Hierarchical(s Range) bool {
	disjoint := r.Hi < s.Lo || s.Hi < r.Lo
	rInS := s.Lo <= r.Lo && r.Hi <= s.Hi
	sInR := r.Lo <= s.Lo && s.Hi <= r.Hi
	return disjoint || rInS || sInR
}

// Group is a set of IIDs within one /64 sharing a last-hop router,
// labelled by that router (any comparable label works; string keeps the
// package self-contained).
type Group struct {
	LastHop string
	IIDs    []uint64
}

// NonHierarchical applies Hobbit's homogeneity evidence to a /64: some
// pair of last-hop groups partially overlaps, which only per-destination
// load balancing produces.
func NonHierarchical(groups []Group) bool {
	ranges := make([]Range, len(groups))
	for i, g := range groups {
		ranges[i] = RangeOfIIDs(g.IIDs)
	}
	for i := 0; i < len(ranges); i++ {
		for j := i + 1; j < len(ranges); j++ {
			if !ranges[i].Hierarchical(ranges[j]) {
				return true
			}
		}
	}
	return false
}
