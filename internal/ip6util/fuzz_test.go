package ip6util

import "testing"

func FuzzParseAddr(f *testing.F) {
	for _, seed := range []string{
		"::", "::1", "2001:db8::1", "1:2:3:4:5:6:7:8", "fe80::",
		"1::2::3", "12345::", "g::", ":", ":::", "1:2:3:4:5:6:7:8:9",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		if err != nil {
			return
		}
		back, err := ParseAddr(a.String())
		if err != nil || back != a {
			t.Fatalf("round trip failed for %q -> %v", s, a)
		}
	})
}
