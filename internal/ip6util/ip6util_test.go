package ip6util

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in string
		hi uint64
		lo uint64
		ok bool
	}{
		{"::", 0, 0, true},
		{"::1", 0, 1, true},
		{"2001:db8::1", 0x20010db800000000, 1, true},
		{"fe80::1:2:3:4", 0xfe80000000000000, 0x0001000200030004, true},
		{"2001:db8:0:0:0:0:0:1", 0x20010db800000000, 1, true},
		{"1:2:3:4:5:6:7:8", 0x0001000200030004, 0x0005000600070008, true},
		{"1:2:3", 0, 0, false},
		{"1::2::3", 0, 0, false},
		{"1:2:3:4:5:6:7:8:9", 0, 0, false},
		{"12345::", 0, 0, false},
		{"g::", 0, 0, false},
		{"1:2:3:4::5:6:7:8", 0, 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseAddr(%q) err=%v want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && (got.Hi != c.hi || got.Lo != c.lo) {
			t.Errorf("ParseAddr(%q) = %x:%x, want %x:%x", c.in, got.Hi, got.Lo, c.hi, c.lo)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		a := Addr{Hi: hi, Lo: lo}
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Compression picks the longest zero run.
	if got := MustParseAddr("2001:0:0:1:0:0:0:1").String(); got != "2001:0:0:1::1" {
		t.Errorf("compression = %q", got)
	}
	if got := (Addr{}).String(); got != "::" {
		t.Errorf("zero address = %q", got)
	}
}

func TestCmpAndCommonPrefix(t *testing.T) {
	a := MustParseAddr("2001:db8::1")
	b := MustParseAddr("2001:db8::2")
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Error("Cmp ordering broken")
	}
	if got := CommonPrefixLen(a, b); got != 126 {
		t.Errorf("CommonPrefixLen = %d, want 126", got)
	}
	if got := CommonPrefixLen(a, a); got != 128 {
		t.Errorf("self CommonPrefixLen = %d", got)
	}
	c := MustParseAddr("3001::")
	if got := CommonPrefixLen(a, c); got != 3 {
		t.Errorf("CommonPrefixLen(2001::, 3001::) = %d, want 3", got)
	}
}

func TestPrefix(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	if !p.Contains(MustParseAddr("2001:db8:ffff::1")) {
		t.Error("prefix should contain subnet address")
	}
	if p.Contains(MustParseAddr("2001:db9::")) {
		t.Error("prefix should not contain neighbor")
	}
	if p.String() != "2001:db8::/32" {
		t.Errorf("String = %q", p.String())
	}
	for _, bad := range []string{"2001:db8::1/32", "2001:db8::", "::/129", "x/64"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) unexpectedly succeeded", bad)
		}
	}
	// /0 and /128 edge cases.
	if !MustParsePrefix("::/0").Contains(MustParseAddr("ffff::1")) {
		t.Error("/0 contains everything")
	}
	host := MustParsePrefix("2001:db8::7/128")
	if !host.Contains(MustParseAddr("2001:db8::7")) || host.Contains(MustParseAddr("2001:db8::8")) {
		t.Error("/128 must match exactly")
	}
	// Lengths crossing the 64-bit boundary.
	p72 := PrefixOf(MustParseAddr("2001:db8::ff00:0:0:1"), 72)
	if !p72.Contains(MustParseAddr("2001:db8::ff00:0:0:2")) {
		t.Error("/72 prefix broken")
	}
}

func TestSubnet64AndIID(t *testing.T) {
	a := MustParseAddr("2001:db8:1:2:aaaa:bbbb:cccc:dddd")
	s := Subnet64(a)
	if s.String() != "2001:db8:1:2::/64" {
		t.Errorf("Subnet64 = %v", s)
	}
	if IID(a) != 0xaaaabbbbccccdddd {
		t.Errorf("IID = %x", IID(a))
	}
}

func TestHierarchyOverIIDs(t *testing.T) {
	// The v4 Figure 2 cases transliterated to interface identifiers.
	disjoint := []Group{
		{LastHop: "r1", IIDs: []uint64{2, 126}},
		{LastHop: "r2", IIDs: []uint64{130, 237}},
	}
	if NonHierarchical(disjoint) {
		t.Error("disjoint IID groups should be hierarchical")
	}
	interleaved := []Group{
		{LastHop: "r1", IIDs: []uint64{2, 130}},
		{LastHop: "r2", IIDs: []uint64{126, 237}},
	}
	if !NonHierarchical(interleaved) {
		t.Error("interleaved IID groups should be non-hierarchical")
	}
	// SLAAC-style IIDs scattered over the full 64-bit space behave the
	// same way.
	rng := rand.New(rand.NewSource(6))
	groups := []Group{{LastHop: "r1"}, {LastHop: "r2"}, {LastHop: "r3"}}
	for i := 0; i < 60; i++ {
		g := &groups[rng.Intn(3)]
		g.IIDs = append(g.IIDs, rng.Uint64())
	}
	if !NonHierarchical(groups) {
		t.Error("hash-assigned SLAAC IIDs should interleave")
	}
}

func TestRangeOfIIDsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty RangeOfIIDs should panic")
		}
	}()
	RangeOfIIDs(nil)
}
