package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite the golden wire-format files")

// golden compares got against testdata/<name>, rewriting the file under
// -update. The golden files ARE the v1 wire contract: a diff here means a
// client-visible format change, which the package comment's version
// policy forbids within v1.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/api -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: wire format drifted from golden file\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// fixtureSummary is a fully-populated summary covering every v1 field,
// including one histogram and one span, so the golden bytes exercise the
// whole schema.
func fixtureSummary() RunSummaryV1 {
	return RunSummaryV1{
		Universe:    300,
		Eligible:    120,
		Pings:       4096,
		Probes:      16384,
		Retries:     37,
		Classes:     map[string]int{"same-last-hop": 70, "hierarchical": 30, "too-few-active": 20},
		Homogeneous: 80,
		Measurable:  110,
		Aggregates:  22,
		Clusters:    5,
		Validated:   3,
		Final:       18,
		FaultPlan:   "rate-storm",
		LowConf:     2,
		Telemetry: telemetry.Snapshot{
			Counters: map[string]int64{
				"campaign.blocks_measured": 120,
				"census.eligible_blocks":   120,
				"probe.measure.probes":     16000,
			},
			Histograms: map[string]telemetry.HistogramSnapshot{
				"campaign.probed_per_block": {
					Bounds: []int64{8, 16, 32},
					Counts: []int64{10, 40, 60, 10},
					Count:  120, Sum: 3000, Min: 4, Max: 190,
				},
			},
			Stages: []telemetry.SpanSnapshot{{Name: "census", DurationMS: 12.5}},
		},
	}
}

func TestRunSummaryV1Golden(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeRunSummaryV1(&buf, fixtureSummary()); err != nil {
		t.Fatal(err)
	}
	golden(t, "run_summary_v1.json", buf.Bytes())
}

func TestSessionV1Golden(t *testing.T) {
	s := SessionV1{
		ID:       "s-42",
		State:    StateDone,
		CacheHit: true,
		World:    WorldSpecV1{Blocks: 300, Scale: 0.02, Seed: 7, FaultPlan: "flap", Epoch: 1},
		Options: core.Options{
			Workers:       4,
			MDA:           probe.MDAOptions{Adaptive: true},
			ValidatePairs: 20000,
		},
		CreatedUnixMS:  1700000000000,
		StartedUnixMS:  1700000000100,
		FinishedUnixMS: 1700000007500,
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		t.Fatal(err)
	}
	golden(t, "session_v1.json", buf.Bytes())
}

func TestSubmitRequestV1Golden(t *testing.T) {
	r := SubmitRequestV1{
		World:     WorldSpecV1{Blocks: 2000, Scale: 0.25, Seed: 0x40bb17},
		Options:   core.Options{SkipClustering: true, MinActive: 4},
		TimeoutMS: 60000,
		Wait:      true,
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		t.Fatal(err)
	}
	golden(t, "submit_request_v1.json", buf.Bytes())
}

func TestProgressEventV1Golden(t *testing.T) {
	ev := Progress(telemetry.ProgressEvent{
		Stage:   "measure",
		Done:    50,
		Total:   120,
		Classes: map[string]int{"same-last-hop": 31, "hierarchical": 19},
		Pings:   900,
		Probes:  4100,
	})
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ev); err != nil {
		t.Fatal(err)
	}
	golden(t, "progress_event_v1.json", buf.Bytes())
}

func TestErrorV1Golden(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, 404, CodeNotFound, "no session s-99")
	if rec.Code != 404 {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	golden(t, "error_v1.json", rec.Body.Bytes())
}

// TestRunSummaryV1RoundTrip guards field coverage: decoding the canonical
// encoding reproduces the value, so no field is silently dropped or
// duplicated by tag typos.
func TestRunSummaryV1RoundTrip(t *testing.T) {
	want := fixtureSummary()
	var buf bytes.Buffer
	if err := EncodeRunSummaryV1(&buf, want); err != nil {
		t.Fatal(err)
	}
	var got RunSummaryV1
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := EncodeRunSummaryV1(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Errorf("round trip not stable:\n%s\n%s", buf.Bytes(), again.Bytes())
	}
}
