// Package api defines the versioned wire types of the Hobbit measurement
// service: the campaign-submission request schema, the session resource,
// the streamed progress event, the run summary, and the error envelope.
//
// Version policy (DESIGN.md §4g): every type name and every URL path
// carries an explicit version suffix ("V1", "/v1/"). Within a version the
// wire format may only grow — new optional fields with omitempty — and
// must never rename, retype, or repurpose an existing field; anything
// incompatible ships as V2 types under /v2/ next to the V1 ones. The
// golden files under testdata/ pin the v1 byte format, so an accidental
// break fails the tier-1 gate instead of a client.
//
// Both consumers of these types — the hobbitd daemon and cmd/hobbit
// -json — marshal through this package, so a summary produced by the CLI
// is byte-for-byte the summary the service caches and serves.
package api

import (
	"encoding/json"
	"io"
	"net/http"

	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/monitor"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

// Version is the current API version, the prefix of every route.
const Version = "v1"

// Session states. A session is born queued (or directly done on a cache
// hit), becomes running once it holds a campaign slot, and terminates in
// exactly one of done, failed, or cancelled.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// WorldSpecV1 names a synthetic world: the /24 universe size, the
// planted-aggregate scale, the world seed, and the adversity view (fault
// plan and epoch). Together with core.Options it fully determines a
// campaign's output, which is why the result cache keys on the pair.
type WorldSpecV1 struct {
	// Blocks is the number of /24 blocks in the universe (the daemon
	// applies its default when 0 and enforces its ceiling).
	Blocks int `json:"blocks"`
	// Scale is the scale factor for the planted Table-5 aggregates
	// (0 = the daemon's default).
	Scale float64 `json:"scale"`
	// Seed is the world and measurement seed.
	Seed uint64 `json:"seed"`
	// FaultPlan names a built-in fault plan to inject (empty = clean
	// world). A non-empty plan also enables adaptive probing, matching
	// cmd/hobbit -fault-plan.
	FaultPlan string `json:"fault_plan,omitempty"`
	// Epoch is the world epoch to measure at (0 = first epoch).
	Epoch int `json:"epoch,omitempty"`
}

// SubmitRequestV1 is the POST /v1/campaigns body.
type SubmitRequestV1 struct {
	World   WorldSpecV1  `json:"world"`
	Options core.Options `json:"options"`
	// TimeoutMS bounds the run's wall-clock time (0 = the daemon's
	// default; values above the daemon's ceiling are clamped).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Wait makes the submission synchronous: the response arrives only
	// once the session terminates, and the run is tied to the request —
	// a client disconnect aborts the campaign.
	Wait bool `json:"wait,omitempty"`
	// MonitorEpochs, when > 0, turns the campaign into a monitoring
	// session: after the epoch-0 bootstrap the daemon advances the
	// world's fault epoch this many times, re-measuring incrementally
	// (mirrors cmd/hobbit -monitor-epochs). The result summary then
	// carries a monitor section, and its headline fields describe the
	// final epoch. Values above the daemon's ceiling are rejected.
	MonitorEpochs int `json:"monitor_epochs,omitempty"`
}

// SessionV1 is the campaign-session resource: POST /v1/campaigns returns
// it, GET /v1/campaigns/{id} refreshes it, and the SSE progress stream
// closes with it.
type SessionV1 struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// CacheHit reports that the result was served from the cache without
	// reprobing.
	CacheHit bool         `json:"cache_hit"`
	World    WorldSpecV1  `json:"world"`
	Options  core.Options `json:"options"`
	// CreatedUnixMS / StartedUnixMS / FinishedUnixMS are wall-clock
	// timestamps (milliseconds since the Unix epoch); zero means "not
	// yet". They describe the service, not the measurement: cached and
	// cold sessions differ here even though their results are
	// byte-identical.
	CreatedUnixMS  int64 `json:"created_unix_ms"`
	StartedUnixMS  int64 `json:"started_unix_ms,omitempty"`
	FinishedUnixMS int64 `json:"finished_unix_ms,omitempty"`
	// Error carries the failure message of a failed (or cancelled)
	// session.
	Error string `json:"error,omitempty"`
}

// SessionListV1 is the GET /v1/campaigns body.
type SessionListV1 struct {
	Sessions []SessionV1 `json:"sessions"`
}

// ProgressEventV1 is one live observation of a running campaign stage,
// the SSE "progress" event payload. It mirrors telemetry.ProgressEvent
// onto stable wire names.
type ProgressEventV1 struct {
	Stage   string         `json:"stage"`
	Done    int            `json:"done"`
	Total   int            `json:"total"`
	Classes map[string]int `json:"classes,omitempty"`
	Pings   int64          `json:"pings"`
	Probes  int64          `json:"probes"`
}

// Progress converts a telemetry progress event to its v1 wire form.
func Progress(ev telemetry.ProgressEvent) ProgressEventV1 {
	return ProgressEventV1{
		Stage:   ev.Stage,
		Done:    ev.Done,
		Total:   ev.Total,
		Classes: ev.Classes,
		Pings:   ev.Pings,
		Probes:  ev.Probes,
	}
}

// Error codes used by the v1 endpoints.
const (
	CodeBadRequest   = "bad_request"
	CodeNotFound     = "not_found"
	CodeNotDone      = "not_done"
	CodeRunFailed    = "run_failed"
	CodeOverloaded   = "overloaded"
	CodeShuttingDown = "shutting_down"
)

// ErrorV1 is the error envelope: every non-2xx response body is exactly
// this shape.
type ErrorV1 struct {
	Error ErrorDetailV1 `json:"error"`
}

// ErrorDetailV1 carries a stable machine code and a human message.
type ErrorDetailV1 struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// WriteError writes the envelope with the given HTTP status.
func WriteError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(ErrorV1{Error: ErrorDetailV1{Code: code, Message: message}})
}

// RunSummaryV1 is the full result of a pipeline run: cmd/hobbit -json
// emits it, and GET /v1/campaigns/{id}/result serves it. The flat probe
// totals and the classification map summarize the run; the telemetry
// section carries per-stage counters, histograms, and span timings.
// Counters and histograms are deterministic for a fixed (world, options)
// pair; span durations are wall-clock and are not.
type RunSummaryV1 struct {
	Universe    int                `json:"universe_blocks"`
	Eligible    int                `json:"eligible_blocks"`
	Pings       int64              `json:"pings"`
	Probes      int64              `json:"probes"`
	Retries     int64              `json:"retries"`
	Classes     map[string]int     `json:"classification"`
	Homogeneous int                `json:"homogeneous_blocks"`
	Measurable  int                `json:"measurable_blocks"`
	Aggregates  int                `json:"identical_set_aggregates"`
	Clusters    int                `json:"mcl_clusters"`
	Validated   int                `json:"validated_clusters"`
	Final       int                `json:"final_blocks"`
	FaultPlan   string             `json:"fault_plan,omitempty"`
	LowConf     int                `json:"low_confidence_blocks"`
	Telemetry   telemetry.Snapshot `json:"telemetry"`
	// Monitor is present only for monitoring sessions (cmd/hobbit
	// -monitor-epochs, or MonitorEpochs on the submit request): one
	// entry per epoch stepped, bootstrap included. The headline fields
	// above then describe the final epoch's output.
	Monitor *MonitorSummaryV1 `json:"monitor,omitempty"`
}

// MonitorSummaryV1 is the monitoring section of a run summary.
type MonitorSummaryV1 struct {
	Epochs []MonitorEpochV1 `json:"epochs"`
}

// MonitorEpochV1 accounts one epoch of a monitoring session: how much
// of the universe the change feed implicated, how much was actually
// re-measured, and how much cached clustering and validation work
// survived.
type MonitorEpochV1 struct {
	Epoch int `json:"epoch"`
	// All marks an epoch whose change feed degraded to the whole
	// universe (the bootstrap always does).
	All      bool `json:"all,omitempty"`
	Changed  int  `json:"changed_blocks"`
	Reprobed int  `json:"reprobed_blocks"`
	// Component and validation cache accounting (zero when the run
	// skips clustering).
	ComponentsReused      int `json:"components_reused"`
	ComponentsRecomputed  int `json:"components_recomputed"`
	ValidationsReused     int `json:"validations_reused"`
	ValidationsRecomputed int `json:"validations_recomputed"`
	// Final is the epoch's final block count.
	Final int `json:"final_blocks"`
}

// BuildRunSummaryV1 assembles the summary from a finished run's
// artifacts: the pipeline output, the instrumented probing surface, and
// the telemetry registry. universe is the size of the full /24 universe
// (len(world.Blocks())); faultPlan echoes the injected plan name.
func BuildRunSummaryV1(universe int, faultPlan string, out *core.Output, net *probe.Instrumented, reg *telemetry.Registry) RunSummaryV1 {
	sum := out.Campaign.Summary()
	s := RunSummaryV1{
		Universe:    universe,
		Eligible:    len(out.Eligible),
		Pings:       net.Pings(),
		Probes:      net.Probes(),
		Retries:     net.PingRetries() + net.ProbeRetries(),
		Classes:     make(map[string]int),
		Homogeneous: sum.Homogeneous(),
		Measurable:  sum.Measurable(),
		Aggregates:  len(out.Aggregates),
		Final:       len(out.Final),
		FaultPlan:   faultPlan,
		LowConf:     len(out.LowConfidence),
		Telemetry:   reg.Snapshot(),
	}
	for cls, n := range sum.Counts {
		s.Classes[cls.String()] = n
	}
	if out.Clustering != nil {
		s.Clusters = len(out.Clustering.Clusters)
		for _, ok := range out.Validated {
			if ok {
				s.Validated++
			}
		}
	}
	return s
}

// BuildMonitorSummaryV1 converts a monitoring session's epoch reports
// to their wire form (nil for an empty session).
func BuildMonitorSummaryV1(reps []*monitor.EpochReport) *MonitorSummaryV1 {
	if len(reps) == 0 {
		return nil
	}
	s := &MonitorSummaryV1{}
	for _, r := range reps {
		e := MonitorEpochV1{
			Epoch:                 r.Epoch,
			All:                   r.All,
			Changed:               r.Changed,
			Reprobed:              r.Reprobed,
			ComponentsReused:      r.Cluster.Reused,
			ComponentsRecomputed:  r.Cluster.Recomputed,
			ValidationsReused:     r.ValReused,
			ValidationsRecomputed: r.ValRecomputed,
		}
		if r.Output != nil {
			e.Final = len(r.Output.Final)
		}
		s.Epochs = append(s.Epochs, e)
	}
	return s
}

// EncodeRunSummaryV1 writes the summary in the canonical rendering — two-
// space indent, trailing newline, map keys sorted by encoding/json — the
// exact bytes cmd/hobbit -json prints and the daemon's result cache
// stores and replays.
func EncodeRunSummaryV1(w io.Writer, s RunSummaryV1) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
