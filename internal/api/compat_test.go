package api_test

import (
	"testing"

	"github.com/hobbitscan/hobbit/internal/lint"
)

// TestAPICompatLock re-renders the exported V<n> wire shape of this
// package and diffs it against the checked-in compat.lock through the
// api-compat analyzer. Deleting a field from RunSummaryV1, retyping
// one, or editing a JSON tag fails this test — the freeze gates plain
// `go test`, not only the hobbitlint sweep. Deliberate additive v1
// extensions regenerate the lock:
//
//	go run ./cmd/hobbitlint -write-compat ./internal/api
func TestAPICompatLock(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("internal/api")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	diags := lint.Run(loader, pkgs, []*lint.Analyzer{lint.AnalyzerAPICompat})
	for _, d := range diags {
		t.Errorf("%s", d.String())
	}
}
