package metadata

import (
	"strings"
	"testing"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

func b24(s string) iputil.Block24 { return iputil.MustParseBlock24(s) }

func TestGeoDBLookup(t *testing.T) {
	db := NewGeoDB()
	db.AddAS(ASInfo{ASN: 4766, Org: "Korea Telecom", Country: "Korea", Type: OrgBroadbandISP})
	blk := b24("220.83.88.0/24")
	db.Assign(blk, 4766)
	db.AssignCity(blk, "Cheongju-Si")

	info, ok := db.Lookup(blk)
	if !ok || info.Org != "Korea Telecom" || info.String() != "AS4766" {
		t.Fatalf("Lookup = %+v, %v", info, ok)
	}
	if db.City(blk) != "Cheongju-Si" {
		t.Errorf("City = %q", db.City(blk))
	}
	if _, ok := db.Lookup(b24("10.0.0.0/24")); ok {
		t.Error("unknown block should miss")
	}
	if db.NumBlocks() != 1 {
		t.Errorf("NumBlocks = %d", db.NumBlocks())
	}
}

func TestGeoDBGroupByAS(t *testing.T) {
	db := NewGeoDB()
	db.AddAS(ASInfo{ASN: 1, Org: "big"})
	db.AddAS(ASInfo{ASN: 2, Org: "small"})
	blocks := []iputil.Block24{b24("1.0.0.0"), b24("1.0.1.0"), b24("2.0.0.0"), b24("9.9.9.0")}
	db.Assign(blocks[0], 1)
	db.Assign(blocks[1], 1)
	db.Assign(blocks[2], 2)
	// blocks[3] unassigned: should be dropped.
	groups := db.GroupByAS(blocks)
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].AS.Org != "big" || len(groups[0].Blocks) != 2 {
		t.Errorf("top group = %+v", groups[0])
	}
	if groups[1].AS.Org != "small" || len(groups[1].Blocks) != 1 {
		t.Errorf("second group = %+v", groups[1])
	}
}

func TestOrgTypeString(t *testing.T) {
	cases := map[OrgType]string{
		OrgBroadbandISP: "Broadband ISP",
		OrgHosting:      "Hosting",
		OrgHostingCloud: "Hosting/Cloud",
		OrgMobileISP:    "Mobile ISP",
		OrgFixedISP:     "Fixed ISP",
		OrgUnknown:      "Unknown",
	}
	for ot, want := range cases {
		if got := ot.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ot, got, want)
		}
	}
}

func TestWhoisSplit(t *testing.T) {
	w := NewWhois()
	// The paper's Table 4 example: 220.83.88.0/24 split in three.
	w.Register(Allocation{Prefix: iputil.MustParsePrefix("220.83.88.0/25"), OrgName: "KT Chungbukbonbujang", NetType: "CUSTOMER", RegDate: "20160112"})
	w.Register(Allocation{Prefix: iputil.MustParsePrefix("220.83.88.128/26"), OrgName: "Donghajeongmil", NetType: "CUSTOMER", RegDate: "20150317"})
	w.Register(Allocation{Prefix: iputil.MustParsePrefix("220.83.88.192/26"), OrgName: "Jincheon", NetType: "CUSTOMER", RegDate: "20150317"})

	blk := b24("220.83.88.0/24")
	if !w.IsSplit(blk) {
		t.Fatal("block should be split")
	}
	recs := w.Query(blk)
	if len(recs) != 3 {
		t.Fatalf("Query = %d records", len(recs))
	}
	if recs[0].Prefix.Len != 25 || recs[1].Prefix.Base != iputil.MustParseAddr("220.83.88.128") {
		t.Errorf("records out of order: %+v", recs)
	}
	if w.IsSplit(b24("10.0.0.0/24")) {
		t.Error("unknown block should not be split")
	}
	if got := w.Query(b24("10.0.0.0/24")); len(got) != 0 {
		t.Errorf("unknown block query = %v", got)
	}
}

func TestGenerateNamePatterns(t *testing.T) {
	a := iputil.MustParseAddr("90.129.199.7")
	tele2 := GenerateName(NameTele2Cellular, a, "com", 0)
	if !Tele2CellularPattern.MatchString(tele2) {
		t.Errorf("tele2 name %q does not match the paper's regex", tele2)
	}
	ocn := GenerateName(NameOCNOmed, a, "tokyo", 0)
	if !IsOCNOmed(ocn) {
		t.Errorf("OCN name %q missing omed keyword", ocn)
	}
	ec2 := GenerateName(NameEC2, a, "ap-northeast-1", 0)
	if !strings.HasPrefix(ec2, "ec2-") || !strings.Contains(ec2, "ap-northeast-1") {
		t.Errorf("EC2 name = %q", ec2)
	}
	cox := GenerateName(NameCoxBusiness, a, "ph.ph", 0)
	if !strings.HasPrefix(cox, "wsip") {
		t.Errorf("Cox business name = %q", cox)
	}
	res := GenerateName(NameCoxResidential, a, "ph.ph", 0)
	if !strings.HasPrefix(res, "ip") || strings.HasPrefix(res, "wsip") {
		t.Errorf("Cox residential name = %q", res)
	}
	if GenerateName(NameNone, a, "x", 0) != "" {
		t.Error("NameNone should generate empty name")
	}
	// Router and generic names must not match the cellular patterns
	// (the paper's negative check in Section 7.2).
	router := GenerateName(NameRouter, a, "iad", 3)
	generic := GenerateName(NameGenericISP, a, "east", 0)
	for _, n := range []string{router, generic, ec2, cox, res} {
		if Tele2CellularPattern.MatchString(n) || IsOCNOmed(n) {
			t.Errorf("non-cellular name %q matches a cellular pattern", n)
		}
	}
}

func TestTimeWarnerVariants(t *testing.T) {
	a := iputil.MustParseAddr("24.24.24.24")
	seen := make(map[string]struct{})
	for v := 0; v < 8; v++ {
		n := GenerateName(NameTimeWarner, a, "socal", v)
		seen[Scheme(n)] = struct{}{}
	}
	if len(seen) != 8 {
		t.Errorf("expected 8 distinct Time Warner schemes, got %d", len(seen))
	}
	// Negative variant must not panic and must map into range.
	if GenerateName(NameTimeWarner, a, "socal", -1) == "" {
		t.Error("negative variant should still produce a name")
	}
}

func TestSchemeCollapsesDigits(t *testing.T) {
	a1 := GenerateName(NameEC2, iputil.MustParseAddr("1.2.3.4"), "us-west-1", 0)
	a2 := GenerateName(NameEC2, iputil.MustParseAddr("9.8.7.6"), "us-west-1", 0)
	if Scheme(a1) != Scheme(a2) {
		t.Errorf("same scheme should collapse equal: %q vs %q", Scheme(a1), Scheme(a2))
	}
	b := GenerateName(NameCoxBusiness, iputil.MustParseAddr("1.2.3.4"), "ph", 0)
	if Scheme(a1) == Scheme(b) {
		t.Error("different schemes should stay distinct")
	}
}

func TestRDNSStore(t *testing.T) {
	r := NewRDNS()
	a1 := iputil.MustParseAddr("1.2.3.4")
	a2 := iputil.MustParseAddr("1.2.3.5")
	a3 := iputil.MustParseAddr("1.2.3.6")
	r.Set(a1, GenerateName(NameEC2, a1, "us-west-1", 0))
	r.Set(a2, GenerateName(NameEC2, a2, "us-west-1", 0))
	r.Set(a3, GenerateName(NameCoxBusiness, a3, "ph", 0))
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
	if _, ok := r.Lookup(a1); !ok {
		t.Error("Lookup miss")
	}
	if _, ok := r.Lookup(iputil.MustParseAddr("9.9.9.9")); ok {
		t.Error("unknown address should miss")
	}
	// Two EC2 names share a scheme; Cox adds a second. Unknown addresses
	// are skipped.
	got := r.CountSchemes([]iputil.Addr{a1, a2, a3, iputil.MustParseAddr("9.9.9.9")})
	if got != 2 {
		t.Errorf("CountSchemes = %d, want 2", got)
	}
}

func TestGeoDBASes(t *testing.T) {
	db := NewGeoDB()
	if got := db.ASes(); len(got) != 0 {
		t.Fatalf("empty db ASes = %v", got)
	}
	db.AddAS(ASInfo{ASN: 9318, Org: "SK Broadband", Country: "KR", Type: OrgBroadbandISP})
	db.AddAS(ASInfo{ASN: 4766, Org: "Korea Telecom", Country: "KR", Type: OrgBroadbandISP})
	db.AddAS(ASInfo{ASN: 16509, Org: "Amazon", Country: "US", Type: OrgHostingCloud})
	got := db.ASes()
	if len(got) != 3 || got[0].ASN != 4766 || got[1].ASN != 9318 || got[2].ASN != 16509 {
		t.Fatalf("ASes not sorted by ASN: %v", got)
	}
	if db.NumBlocks() != 0 {
		t.Errorf("NumBlocks = %d before any Assign", db.NumBlocks())
	}
}

func TestGeoDBGroupByASSkipsUnassigned(t *testing.T) {
	db := NewGeoDB()
	db.AddAS(ASInfo{ASN: 4766, Org: "Korea Telecom"})
	a, b := iputil.Block24(0x010100), iputil.Block24(0x010200)
	db.Assign(a, 4766)
	groups := db.GroupByAS([]iputil.Block24{b, a})
	if len(groups) != 1 || len(groups[0].Blocks) != 1 || groups[0].Blocks[0] != a {
		t.Fatalf("GroupByAS = %+v, want only the assigned block", groups)
	}
}
