package metadata

import (
	"sort"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

// Allocation is one WHOIS assignment record, mirroring the fields the paper
// shows in its KRNIC example (Table 4): a sub-/24 prefix allocated to a
// named customer at a postal address on a registration date.
type Allocation struct {
	Prefix   iputil.Prefix
	OrgName  string
	NetType  string // e.g. "CUSTOMER"
	Address  string
	Province string
	ZipCode  string
	RegDate  string // yyyymmdd
}

// Whois is a registry of address allocations, standing in for national
// Internet registries such as KRNIC.
type Whois struct {
	byBlock map[iputil.Block24][]Allocation
}

// NewWhois returns an empty registry.
func NewWhois() *Whois {
	return &Whois{byBlock: make(map[iputil.Block24][]Allocation)}
}

// Register adds an allocation record. Records for the same /24 accumulate.
func (w *Whois) Register(a Allocation) {
	b := a.Prefix.Base.Block24()
	w.byBlock[b] = append(w.byBlock[b], a)
}

// Query returns all allocations intersecting the given /24 sorted by base
// address, like a WHOIS query for the block would.
func (w *Whois) Query(b iputil.Block24) []Allocation {
	recs := append([]Allocation(nil), w.byBlock[b]...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Prefix.Base < recs[j].Prefix.Base })
	return recs
}

// IsSplit reports whether the /24 is allocated as more than one sub-block —
// the paper's verification that heterogeneous /24s really are split between
// distinct customers.
func (w *Whois) IsSplit(b iputil.Block24) bool { return len(w.byBlock[b]) > 1 }
