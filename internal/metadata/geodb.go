// Package metadata provides the lookup side-channels the paper joins
// against its measurement results: a GeoLite-style ASN/organization/
// geolocation database, a KRNIC-style WHOIS registry with sub-/24 customer
// allocations, and a reverse-DNS store with per-population naming patterns.
//
// In the original study these were external data sources (Maxmind GeoLite,
// KRNIC WHOIS, live rDNS). Here they are populated by the netsim world
// builder, but the query interfaces are source-agnostic so a user with real
// databases can implement the same lookups.
package metadata

import (
	"fmt"
	"sort"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

// OrgType classifies the owning organization of an address block, following
// the categories of Tables 3 and 5.
type OrgType int

// Organization types used in the paper's tables.
const (
	OrgUnknown OrgType = iota
	OrgBroadbandISP
	OrgHosting
	OrgHostingCloud
	OrgMobileISP
	OrgFixedISP
)

// String renders the organization type as the paper's table labels.
func (t OrgType) String() string {
	switch t {
	case OrgBroadbandISP:
		return "Broadband ISP"
	case OrgHosting:
		return "Hosting"
	case OrgHostingCloud:
		return "Hosting/Cloud"
	case OrgMobileISP:
		return "Mobile ISP"
	case OrgFixedISP:
		return "Fixed ISP"
	default:
		return "Unknown"
	}
}

// ASInfo describes one autonomous system.
type ASInfo struct {
	ASN     int
	Org     string
	Country string
	Type    OrgType
}

// String renders the AS the way the paper's tables do, e.g. "AS4766".
func (a ASInfo) String() string { return fmt.Sprintf("AS%d", a.ASN) }

// GeoDB maps /24 blocks to their AS-level metadata, standing in for the
// Maxmind GeoLite ASN and geolocation databases.
type GeoDB struct {
	ases   map[int]ASInfo
	blocks map[iputil.Block24]int // block -> ASN
	cities map[iputil.Block24]string
}

// NewGeoDB returns an empty database.
func NewGeoDB() *GeoDB {
	return &GeoDB{
		ases:   make(map[int]ASInfo),
		blocks: make(map[iputil.Block24]int),
		cities: make(map[iputil.Block24]string),
	}
}

// AddAS registers an autonomous system.
func (db *GeoDB) AddAS(info ASInfo) { db.ases[info.ASN] = info }

// Assign maps a /24 block to an ASN previously registered with AddAS.
func (db *GeoDB) Assign(b iputil.Block24, asn int) { db.blocks[b] = asn }

// AssignCity records a city-level geolocation for a block.
func (db *GeoDB) AssignCity(b iputil.Block24, city string) { db.cities[b] = city }

// Lookup returns the AS metadata for a block.
func (db *GeoDB) Lookup(b iputil.Block24) (ASInfo, bool) {
	asn, ok := db.blocks[b]
	if !ok {
		return ASInfo{}, false
	}
	info, ok := db.ases[asn]
	return info, ok
}

// City returns the recorded city for a block, or "" if unknown.
func (db *GeoDB) City(b iputil.Block24) string { return db.cities[b] }

// ASes returns all registered ASes sorted by ASN.
func (db *GeoDB) ASes() []ASInfo {
	out := make([]ASInfo, 0, len(db.ases))
	for _, info := range db.ases {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// NumBlocks returns the number of /24 assignments in the database.
func (db *GeoDB) NumBlocks() int { return len(db.blocks) }

// GroupByAS buckets the given blocks by their owning AS and returns the
// groups sorted by descending size then ascending ASN — the arrangement of
// Table 3.
func (db *GeoDB) GroupByAS(blocks []iputil.Block24) []ASGroup {
	byASN := make(map[int][]iputil.Block24)
	for _, b := range blocks {
		if asn, ok := db.blocks[b]; ok {
			byASN[asn] = append(byASN[asn], b)
		}
	}
	out := make([]ASGroup, 0, len(byASN))
	for asn, bs := range byASN {
		iputil.SortBlocks(bs)
		out = append(out, ASGroup{AS: db.ases[asn], Blocks: bs})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Blocks) != len(out[j].Blocks) {
			return len(out[i].Blocks) > len(out[j].Blocks)
		}
		return out[i].AS.ASN < out[j].AS.ASN
	})
	return out
}

// ASGroup is a set of blocks owned by one AS.
type ASGroup struct {
	AS     ASInfo
	Blocks []iputil.Block24
}
