package blockmap

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/iputil"
)

func sample() []*aggregate.Block {
	return []*aggregate.Block{
		{
			ID: 0,
			Blocks24: []iputil.Block24{
				iputil.MustParseBlock24("192.0.2.0/24"),
				iputil.MustParseBlock24("198.51.100.0/24"),
			},
			LastHops: []iputil.Addr{
				iputil.MustParseAddr("203.0.113.1"),
				iputil.MustParseAddr("203.0.113.9"),
			},
		},
		{
			ID:       1,
			Blocks24: []iputil.Block24{iputil.MustParseBlock24("10.1.2.0/24")},
			LastHops: []iputil.Addr{iputil.MustParseAddr("10.0.0.1")},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if len(got) != len(want) {
		t.Fatalf("round trip lost blocks: %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != i {
			t.Errorf("block %d ID = %d", i, got[i].ID)
		}
		if len(got[i].Blocks24) != len(want[i].Blocks24) || len(got[i].LastHops) != len(want[i].LastHops) {
			t.Fatalf("block %d shape mismatch", i)
		}
		for j := range want[i].Blocks24 {
			if got[i].Blocks24[j] != want[i].Blocks24[j] {
				t.Errorf("block %d member %d differs", i, j)
			}
		}
		for j := range want[i].LastHops {
			if got[i].LastHops[j] != want[i].LastHops[j] {
				t.Errorf("block %d hop %d differs", i, j)
			}
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var blocks []*aggregate.Block
	for i := 0; i < 200; i++ {
		b := &aggregate.Block{ID: i}
		for j := 0; j <= rng.Intn(6); j++ {
			b.Blocks24 = append(b.Blocks24, iputil.Block24(rng.Uint32()>>8))
		}
		for j := 0; j <= rng.Intn(4); j++ {
			b.LastHops = append(b.LastHops, iputil.Addr(rng.Uint32()))
		}
		iputil.SortBlocks(b.Blocks24)
		iputil.SortAddrs(b.LastHops)
		blocks = append(blocks, b)
	}
	var buf bytes.Buffer
	if err := Write(&buf, blocks); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("lost blocks: %d != %d", len(got), len(blocks))
	}
	for i := range blocks {
		if aggregate.Key(got[i].LastHops) != aggregate.Key(blocks[i].LastHops) {
			t.Fatalf("block %d hops differ", i)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"192.0.2.0/24 no tab here",
		"192.0.2.0/24\tnope=1.2.3.4",
		"not-a-block\tlast-hops=1.2.3.4",
		"192.0.2.0/24\tlast-hops=not-an-ip",
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) unexpectedly succeeded", c)
		}
	}
	// Comments and blank lines are fine.
	got, err := Read(strings.NewReader("# header\n\n192.0.2.0/24\tlast-hops=1.2.3.4\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("comment handling broken: %v, %d", err, len(got))
	}
	// Empty hop set parses.
	got, err = Read(strings.NewReader("192.0.2.0/24\tlast-hops=\n"))
	if err != nil || len(got) != 1 || len(got[0].LastHops) != 0 {
		t.Fatalf("empty hops broken: %v", err)
	}
}

func TestMapLookups(t *testing.T) {
	m := New(sample())
	if m.Len() != 2 || len(m.Blocks()) != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	a := iputil.MustParseAddr("192.0.2.55")
	b := iputil.MustParseAddr("198.51.100.1")
	c := iputil.MustParseAddr("10.1.2.3")
	if blk, ok := m.Of(a); !ok || blk.ID != 0 {
		t.Error("Of(a) failed")
	}
	if _, ok := m.Of(iputil.MustParseAddr("8.8.8.8")); ok {
		t.Error("unknown address should miss")
	}
	if blk, ok := m.Of24(iputil.MustParseBlock24("10.1.2.0/24")); !ok || blk.ID != 1 {
		t.Error("Of24 failed")
	}
	if !m.SameBlock(a, b) {
		t.Error("a and b share a block")
	}
	if m.SameBlock(a, c) {
		t.Error("a and c do not share a block")
	}
	if m.SameBlock(iputil.MustParseAddr("8.8.8.8"), a) {
		t.Error("unknown address cannot share a block")
	}
}
