package blockmap_test

import (
	"fmt"
	"strings"

	"github.com/hobbitscan/hobbit/internal/blockmap"
	"github.com/hobbitscan/hobbit/internal/iputil"
)

// Consuming a published block map: parse it and answer colocation
// queries.
func ExampleRead() {
	published := `# hobbit block map: 2 blocks covering 3 /24s
192.0.2.0/24,198.51.100.0/24	last-hops=203.0.113.1,203.0.113.9
10.1.2.0/24	last-hops=10.0.0.1
`
	blocks, err := blockmap.Read(strings.NewReader(published))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	m := blockmap.New(blocks)

	a := iputil.MustParseAddr("192.0.2.55")
	b := iputil.MustParseAddr("198.51.100.200")
	c := iputil.MustParseAddr("10.1.2.3")
	fmt.Println("a and b colocated:", m.SameBlock(a, b))
	fmt.Println("a and c colocated:", m.SameBlock(a, c))
	if blk, ok := m.Of(a); ok {
		fmt.Println("a's block spans", blk.Size(), "/24s")
	}
	// Output:
	// a and b colocated: true
	// a and c colocated: false
	// a's block spans 2 /24s
}
