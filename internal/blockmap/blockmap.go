// Package blockmap serializes and queries the Hobbit block map — the
// artifact the paper publishes ("We make the Hobbit blocks publicly
// available"). The format is line-oriented text: the member /24s of one
// block, a tab, and the shared last-hop set, both comma-separated:
//
//	192.0.2.0/24,198.51.100.0/24	last-hops=203.0.113.1,203.0.113.9
//
// Lines starting with '#' are comments. The format round-trips through
// Write and Read, and Map serves address-to-block lookups over it.
package blockmap

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/iputil"
)

// Write emits the block map, one block per line, preceded by a summary
// comment.
func Write(w io.Writer, blocks []*aggregate.Block) error {
	bw := bufio.NewWriter(w)
	total := 0
	for _, b := range blocks {
		total += b.Size()
	}
	fmt.Fprintf(bw, "# hobbit block map: %d blocks covering %d /24s\n", len(blocks), total)
	for _, b := range blocks {
		members := make([]string, len(b.Blocks24))
		for i, blk := range b.Blocks24 {
			members[i] = blk.String()
		}
		hops := make([]string, len(b.LastHops))
		for i, lh := range b.LastHops {
			hops[i] = lh.String()
		}
		if _, err := fmt.Fprintf(bw, "%s\tlast-hops=%s\n",
			strings.Join(members, ","), strings.Join(hops, ",")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a block map written by Write. Member lists and last-hop
// sets are sorted; IDs are assigned densely in file order.
func Read(r io.Reader) ([]*aggregate.Block, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []*aggregate.Block
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 || !strings.HasPrefix(parts[1], "last-hops=") {
			return nil, fmt.Errorf("blockmap: line %d: malformed record", lineNo)
		}
		b := &aggregate.Block{ID: len(out)}
		for _, m := range strings.Split(parts[0], ",") {
			blk, err := iputil.ParseBlock24(m)
			if err != nil {
				return nil, fmt.Errorf("blockmap: line %d: %w", lineNo, err)
			}
			b.Blocks24 = append(b.Blocks24, blk)
		}
		hopsField := strings.TrimPrefix(parts[1], "last-hops=")
		if hopsField != "" {
			for _, h := range strings.Split(hopsField, ",") {
				a, err := iputil.ParseAddr(h)
				if err != nil {
					return nil, fmt.Errorf("blockmap: line %d: %w", lineNo, err)
				}
				b.LastHops = append(b.LastHops, a)
			}
		}
		iputil.SortBlocks(b.Blocks24)
		iputil.SortAddrs(b.LastHops)
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("blockmap: %w", err)
	}
	return out, nil
}

// Map indexes a block list for address lookups, the way a consumer
// (a topology mapper, a sampler) would use the published artifact.
type Map struct {
	blocks []*aggregate.Block
	by24   map[iputil.Block24]*aggregate.Block
}

// New indexes the blocks. Later blocks win on (unexpected) duplicate
// member /24s.
func New(blocks []*aggregate.Block) *Map {
	m := &Map{
		blocks: blocks,
		by24:   make(map[iputil.Block24]*aggregate.Block),
	}
	for _, b := range blocks {
		for _, blk := range b.Blocks24 {
			m.by24[blk] = b
		}
	}
	return m
}

// Blocks returns the indexed block list.
func (m *Map) Blocks() []*aggregate.Block { return m.blocks }

// Len returns the number of blocks.
func (m *Map) Len() int { return len(m.blocks) }

// Of returns the block containing the address's /24, if any.
func (m *Map) Of(a iputil.Addr) (*aggregate.Block, bool) {
	b, ok := m.by24[a.Block24()]
	return b, ok
}

// Of24 returns the block containing the /24, if any.
func (m *Map) Of24(b iputil.Block24) (*aggregate.Block, bool) {
	blk, ok := m.by24[b]
	return blk, ok
}

// SameBlock reports whether two addresses fall in the same homogeneous
// block — the colocation question downstream systems ask.
func (m *Map) SameBlock(a, b iputil.Addr) bool {
	ba, ok := m.by24[a.Block24()]
	if !ok {
		return false
	}
	bb, ok := m.by24[b.Block24()]
	return ok && ba == bb
}
