package blockmap

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzRead(f *testing.F) {
	f.Add("# comment\n192.0.2.0/24\tlast-hops=1.2.3.4\n")
	f.Add("192.0.2.0/24,198.51.100.0/24\tlast-hops=1.2.3.4,5.6.7.8\n")
	f.Add("192.0.2.0/24\tlast-hops=\n")
	f.Add("garbage without a tab\n")
	f.Add("a\tb\n")
	f.Fuzz(func(t *testing.T, s string) {
		blocks, err := Read(strings.NewReader(s))
		if err != nil {
			return
		}
		// Whatever parses must survive a write/read cycle unchanged in
		// shape.
		var buf bytes.Buffer
		if err := Write(&buf, blocks); err != nil {
			t.Fatalf("Write after Read failed: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-Read failed: %v", err)
		}
		if len(again) != len(blocks) {
			t.Fatalf("round trip changed block count: %d -> %d", len(blocks), len(again))
		}
		for i := range blocks {
			if blocks[i].Size() != again[i].Size() || len(blocks[i].LastHops) != len(again[i].LastHops) {
				t.Fatalf("round trip changed block %d shape", i)
			}
		}
	})
}
