package hobbit

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

// FeedItem is one block handed to a streaming campaign: the /24 to
// measure and its census actives split by /26. Carrying the actives on
// the item lets a census stream feed the campaign chunk by chunk, with
// no materialized dataset behind the feeder.
type FeedItem struct {
	Block iputil.Block24
	By26  [4][]iputil.Addr
}

// RunStream measures blocks as a feeder produces them, instead of taking
// the full block list up front the way Run does. Workers drain feed
// through a bounded handout window; results are re-sequenced so that the
// sink — and the Result's Order — observe them strictly in feed order,
// no matter how the workers interleaved. A campaign fed the blocks Run
// would have been given therefore produces Run's exact Result, and a
// sink consuming results incrementally (the pipeline's aggregation
// builder) sees them in the order the materialized path iterates them
// (TestRunStreamMatchesRun pins this).
//
// The re-sequencing window is bounded: a worker may hold at most one
// out-of-order result and at most 4×Workers items are in flight beyond
// the emitted prefix, so a single slow block stalls the feeder rather
// than buffering the campaign.
//
// sink may be nil. On cancellation RunStream stops consuming the feed,
// drains in-flight blocks, and returns the emitted prefix together with
// ctx.Err(); Order then lists only the emitted blocks.
func (c *Campaign) RunStream(ctx context.Context, feed <-chan FeedItem, sink func(*BlockResult)) (*Result, error) {
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &Result{Blocks: make(map[iputil.Block24]*BlockResult)}
	met := c.metrics()
	load, _ := c.Measurer.Net.(loadReporter)

	type job struct {
		seq int
		it  FeedItem
	}
	type item struct {
		seq int
		br  *BlockResult
	}
	// gate holds one token per item handed out but not yet emitted to
	// the sink; the feeder takes a token before forwarding an item and
	// the collector returns it when the item leaves the reorder buffer.
	gate := make(chan struct{}, 4*workers)
	in := make(chan job)
	out := make(chan item)
	var fed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for j := range in {
				br := c.Measurer.MeasureBlock(j.it.Block, j.it.By26)
				met.measured.Inc()
				met.classes[br.Class].Inc()
				met.probed.Observe(int64(br.Probed))
				met.responded.Observe(int64(br.Responded))
				if br.Degraded > 0 {
					met.degraded.Inc()
				}
				if br.LowConfidence() {
					met.lowConf.Inc()
				}
				out <- item{seq: j.seq, br: &br}
			}
		}()
	}
	go func() {
		defer func() {
			close(in)
			wg.Wait()
			close(out)
		}()
		seq := 0
		for {
			var it FeedItem
			var ok bool
			select {
			case it, ok = <-feed:
				if !ok {
					return
				}
			case <-ctx.Done():
				return
			}
			select {
			case gate <- struct{}{}:
			case <-ctx.Done():
				return
			}
			fed.Add(1)
			select {
			case in <- job{seq: seq, it: it}:
			case <-ctx.Done():
				return
			}
			seq++
		}
	}()

	var classes map[string]int
	if c.Progress != nil {
		classes = make(map[string]int)
	}
	pending := make(map[int]*BlockResult)
	next := 0
	for it := range out {
		pending[it.seq] = it.br
		// Drain the contiguous prefix: bounded by len(pending), which the
		// gate caps at 4×workers, so no ctx check is needed per step.
		for br, ok := pending[next]; ok; br, ok = pending[next] {
			delete(pending, next)
			next++
			// A token was banked before this item was handed out, so the
			// receive never blocks on a healthy run; the Done case only
			// matters after cancellation, when tokens stop circulating.
			select {
			case <-gate:
			case <-ctx.Done():
			}
			res.Blocks[br.Block] = br
			res.Order = append(res.Order, br.Block)
			if sink != nil {
				sink(br)
			}
			if c.Progress != nil {
				classes[br.Class.String()]++
				ev := telemetry.ProgressEvent{
					Stage:   c.stage(),
					Done:    next,
					Total:   int(fed.Load()),
					Classes: classes,
				}
				if load != nil {
					ev.Pings = load.Pings()
					ev.Probes = load.Probes()
				}
				c.Progress.Emit(ev)
			}
		}
	}
	return res, ctx.Err()
}
