package hobbit

import (
	"testing"
	"testing/quick"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

// genGroups derives a grouping from fuzz input: each byte places one
// address (base + offset) into one of up to four groups.
func genGroups(raw []uint8) []Group {
	base := iputil.MustParseAddr("10.0.0.0")
	members := make([][]iputil.Addr, 4)
	for i, b := range raw {
		g := int(b) % 4
		members[g] = append(members[g], base+iputil.Addr(i%256))
	}
	var out []Group
	for g, addrs := range members {
		if len(addrs) > 0 {
			iputil.SortAddrs(addrs)
			out = append(out, Group{LastHop: iputil.Addr(0x64400000 + uint32(g)), Addrs: addrs})
		}
	}
	return out
}

func TestNonHierarchicalOrderInvariant(t *testing.T) {
	f := func(raw []uint8) bool {
		groups := genGroups(raw)
		got := NonHierarchical(groups)
		// Reverse the group order: the verdict must not change.
		rev := make([]Group, len(groups))
		for i, g := range groups {
			rev[len(groups)-1-i] = g
		}
		return got == NonHierarchical(rev)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAlignedDisjointImpliesHierarchical(t *testing.T) {
	// The very-likely-heterogeneous criterion is a strict subset of
	// hierarchical relationships: a non-hierarchical grouping can never
	// be aligned-disjoint.
	f := func(raw []uint8) bool {
		groups := genGroups(raw)
		if _, ok := AlignedDisjoint(groups); ok && NonHierarchical(groups) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestAlignedDisjointPrefixesDisjoint(t *testing.T) {
	// When the criterion fires, the returned sub-prefixes are pairwise
	// disjoint and each contains its own group's addresses.
	f := func(raw []uint8) bool {
		groups := genGroups(raw)
		subs, ok := AlignedDisjoint(groups)
		if !ok {
			return true
		}
		for i := 0; i < len(subs); i++ {
			for j := i + 1; j < len(subs); j++ {
				if subs[i].Overlaps(subs[j]) {
					return false
				}
			}
		}
		return len(subs) == len(groups)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestFewerThanFourAlwaysHierarchical(t *testing.T) {
	// Section 3.3: with fewer than 4 addresses any grouping is
	// hierarchical, so Hobbit requires at least 4 actives.
	f := func(raw []uint8) bool {
		if len(raw) > 3 {
			raw = raw[:3]
		}
		return !NonHierarchical(genGroups(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCompositionSortedAndSized(t *testing.T) {
	f := func(raw []uint8) bool {
		groups := genGroups(raw)
		subs, ok := AlignedDisjoint(groups)
		if !ok {
			return true
		}
		comp := Composition(subs)
		if len(comp) != len(subs) {
			return false
		}
		for i := 1; i < len(comp); i++ {
			if comp[i] < comp[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
