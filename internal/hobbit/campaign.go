package hobbit

import (
	"context"
	"runtime"
	"sync"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/telemetry"
	"github.com/hobbitscan/hobbit/internal/zmap"
)

// Campaign measures many /24 blocks in parallel with a worker pool, the
// way the paper's single-vantage measurement iterated over 3.37M blocks.
type Campaign struct {
	// Measurer is the per-block configuration; its Net must be safe for
	// concurrent use (SimNetwork is).
	Measurer *Measurer
	// Dataset supplies the census actives per block.
	Dataset *zmap.Dataset
	// Workers bounds concurrency; 0 uses GOMAXPROCS.
	Workers int
	// Telemetry receives per-block accounting ("campaign.…" counters and
	// histograms); nil disables it.
	Telemetry *telemetry.Registry
	// Progress receives a ProgressEvent after every measured block; nil
	// disables it. Stage names the emitting stage in events (default
	// "measure").
	Progress telemetry.Sink
	Stage    string
}

// Summary tallies a campaign by class.
type Summary struct {
	Counts map[Class]int
	Total  int
}

// Homogeneous returns the number of homogeneous blocks.
func (s Summary) Homogeneous() int {
	return s.Counts[ClassSameLastHop] + s.Counts[ClassNonHierarchical]
}

// Measurable returns the number of analyzable blocks.
func (s Summary) Measurable() int {
	return s.Homogeneous() + s.Counts[ClassHierarchical]
}

// Result is the output of a campaign run.
type Result struct {
	// Blocks maps each measured /24 to its outcome.
	Blocks map[iputil.Block24]*BlockResult
	// Order preserves the input block order for deterministic reports.
	Order []iputil.Block24
}

// Summary tallies the result.
func (r *Result) Summary() Summary {
	s := Summary{Counts: make(map[Class]int)}
	for _, br := range r.Blocks {
		s.Counts[br.Class]++
		s.Total++
	}
	return s
}

// HomogeneousBlocks returns the homogeneous /24s with their observed
// last-hop sets, sorted — the input to aggregation (Section 5).
func (r *Result) HomogeneousBlocks() []*BlockResult {
	var out []*BlockResult
	for _, b := range r.Order {
		if br, ok := r.Blocks[b]; ok && br.Class.Homogeneous() {
			out = append(out, br)
		}
	}
	return out
}

// ClassBlocks returns the blocks of one class in input order.
func (r *Result) ClassBlocks(c Class) []*BlockResult {
	var out []*BlockResult
	for _, b := range r.Order {
		if br, ok := r.Blocks[b]; ok && br.Class == c {
			out = append(out, br)
		}
	}
	return out
}

// loadReporter is the slice of probe.Instrumented the campaign needs for
// progress events; declared locally so the coupling stays structural.
type loadReporter interface {
	Pings() int64
	Probes() int64
}

// campaignMetrics caches the telemetry handles workers write to.
type campaignMetrics struct {
	measured  *telemetry.Counter
	classes   map[Class]*telemetry.Counter
	probed    *telemetry.Histogram
	responded *telemetry.Histogram
	degraded  *telemetry.Counter
	lowConf   *telemetry.Counter
}

func (c *Campaign) metrics() campaignMetrics {
	reg := c.Telemetry
	m := campaignMetrics{
		measured:  reg.Counter("campaign.blocks_measured"),
		classes:   make(map[Class]*telemetry.Counter),
		probed:    reg.Histogram("campaign.probed_per_block", []int64{8, 16, 32, 64, 128, 256}),
		responded: reg.Histogram("campaign.responded_per_block", []int64{4, 8, 16, 32, 64, 128, 256}),
		degraded:  reg.Counter("campaign.degraded_blocks"),
		lowConf:   reg.Counter("campaign.low_confidence_blocks"),
	}
	for _, cls := range []Class{
		ClassTooFewActive, ClassUnresponsiveLastHop,
		ClassSameLastHop, ClassNonHierarchical, ClassHierarchical,
	} {
		m.classes[cls] = reg.Counter("campaign.class." + cls.MetricName())
	}
	return m
}

func (c *Campaign) stage() string {
	if c.Stage != "" {
		return c.Stage
	}
	return "measure"
}

// Run measures the given blocks (typically Dataset.EligibleBlocks),
// checking ctx between blocks: on cancellation it stops handing out work,
// drains the in-flight blocks, and returns the partial Result together
// with ctx.Err(). A nil error means every block was measured.
func (c *Campaign) Run(ctx context.Context, blocks []iputil.Block24) (*Result, error) {
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &Result{
		Blocks: make(map[iputil.Block24]*BlockResult, len(blocks)),
		Order:  append([]iputil.Block24(nil), blocks...),
	}
	met := c.metrics()
	load, _ := c.Measurer.Net.(loadReporter)

	type item struct {
		b  iputil.Block24
		br *BlockResult
	}
	in := make(chan iputil.Block24)
	out := make(chan item)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range in {
				br := c.Measurer.MeasureBlock(b, c.Dataset.ActivesBy26(b))
				met.measured.Inc()
				met.classes[br.Class].Inc()
				met.probed.Observe(int64(br.Probed))
				met.responded.Observe(int64(br.Responded))
				if br.Degraded > 0 {
					met.degraded.Inc()
				}
				if br.LowConfidence() {
					met.lowConf.Inc()
				}
				out <- item{b: b, br: &br}
			}
		}()
	}
	go func() {
		defer func() {
			close(in)
			wg.Wait()
			close(out)
		}()
		for _, b := range blocks {
			select {
			case in <- b:
			case <-ctx.Done():
				return
			}
		}
	}()

	var classes map[string]int
	if c.Progress != nil {
		classes = make(map[string]int)
	}
	for it := range out {
		res.Blocks[it.b] = it.br
		if c.Progress != nil {
			classes[it.br.Class.String()]++
			ev := telemetry.ProgressEvent{
				Stage:   c.stage(),
				Done:    len(res.Blocks),
				Total:   len(blocks),
				Classes: classes,
			}
			if load != nil {
				ev.Pings = load.Pings()
				ev.Probes = load.Probes()
			}
			c.Progress.Emit(ev)
		}
	}
	return res, ctx.Err()
}
