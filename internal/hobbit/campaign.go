package hobbit

import (
	"runtime"
	"sync"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/zmap"
)

// Campaign measures many /24 blocks in parallel with a worker pool, the
// way the paper's single-vantage measurement iterated over 3.37M blocks.
type Campaign struct {
	// Measurer is the per-block configuration; its Net must be safe for
	// concurrent use (SimNetwork is).
	Measurer *Measurer
	// Dataset supplies the census actives per block.
	Dataset *zmap.Dataset
	// Workers bounds concurrency; 0 uses GOMAXPROCS.
	Workers int
}

// Summary tallies a campaign by class.
type Summary struct {
	Counts map[Class]int
	Total  int
}

// Homogeneous returns the number of homogeneous blocks.
func (s Summary) Homogeneous() int {
	return s.Counts[ClassSameLastHop] + s.Counts[ClassNonHierarchical]
}

// Measurable returns the number of analyzable blocks.
func (s Summary) Measurable() int {
	return s.Homogeneous() + s.Counts[ClassHierarchical]
}

// Result is the output of a campaign run.
type Result struct {
	// Blocks maps each measured /24 to its outcome.
	Blocks map[iputil.Block24]*BlockResult
	// Order preserves the input block order for deterministic reports.
	Order []iputil.Block24
}

// Summary tallies the result.
func (r *Result) Summary() Summary {
	s := Summary{Counts: make(map[Class]int)}
	for _, br := range r.Blocks {
		s.Counts[br.Class]++
		s.Total++
	}
	return s
}

// HomogeneousBlocks returns the homogeneous /24s with their observed
// last-hop sets, sorted — the input to aggregation (Section 5).
func (r *Result) HomogeneousBlocks() []*BlockResult {
	var out []*BlockResult
	for _, b := range r.Order {
		if br := r.Blocks[b]; br.Class.Homogeneous() {
			out = append(out, br)
		}
	}
	return out
}

// ClassBlocks returns the blocks of one class in input order.
func (r *Result) ClassBlocks(c Class) []*BlockResult {
	var out []*BlockResult
	for _, b := range r.Order {
		if br := r.Blocks[b]; br.Class == c {
			out = append(out, br)
		}
	}
	return out
}

// Run measures the given blocks (typically Dataset.EligibleBlocks).
func (c *Campaign) Run(blocks []iputil.Block24) *Result {
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &Result{
		Blocks: make(map[iputil.Block24]*BlockResult, len(blocks)),
		Order:  append([]iputil.Block24(nil), blocks...),
	}
	type item struct {
		b  iputil.Block24
		br *BlockResult
	}
	in := make(chan iputil.Block24)
	out := make(chan item)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range in {
				br := c.Measurer.MeasureBlock(b, c.Dataset.ActivesBy26(b))
				out <- item{b: b, br: &br}
			}
		}()
	}
	go func() {
		for _, b := range blocks {
			in <- b
		}
		close(in)
		wg.Wait()
		close(out)
	}()
	for it := range out {
		res.Blocks[it.b] = it.br
	}
	return res
}
