package hobbit

import (
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/rng"
	"github.com/hobbitscan/hobbit/internal/trace"
)

// Terminator decides when enough destinations have been probed to call a
// hierarchical-looking /24 heterogeneous with the desired confidence
// (Section 3.5). The empirical Figure-4 table implements this; the default
// falls back to the MDA stopping rule with the observed last-hop
// cardinality standing in for the interface count, as the paper's
// generalization of the single-next-hop rule suggests.
type Terminator interface {
	// Enough reports whether `probed` responsive destinations suffice
	// at the observed last-hop cardinality.
	Enough(cardinality, probed int) bool
}

// MDATerminator is the default Terminator: probed >= StoppingPoint(k).
type MDATerminator struct {
	// Confidence defaults to 0.95.
	Confidence float64
}

// Enough implements Terminator.
func (t MDATerminator) Enough(cardinality, probed int) bool {
	conf := t.Confidence
	if conf == 0 {
		conf = 0.95
	}
	return probed >= probe.StoppingPoint(cardinality, conf)
}

// ProbeAll never terminates early: every active address is probed. It is
// the densest (and most expensive) strategy, used when a block deserves a
// close look (Table 2's composition analysis) and as an ablation baseline.
type ProbeAll struct{}

// Enough implements Terminator.
func (ProbeAll) Enough(int, int) bool { return false }

// Measurer runs Hobbit over individual /24 blocks.
type Measurer struct {
	// Net is the probing surface.
	Net probe.Network
	// Opts configures the per-destination MDA runs.
	Opts probe.MDAOptions
	// Term decides hierarchical-verdict sufficiency; nil uses
	// MDATerminator at 95%.
	Term Terminator
	// MinActive is the minimum number of responsive destinations for a
	// block to be analyzable (the paper requires 4).
	MinActive int
	// SingleLastHopProbes is how many responsive destinations with a
	// common single last hop suffice to call the block homogeneous (the
	// paper adopts the 6-probe / 95% MDA rule).
	SingleLastHopProbes int
	// Exhaustive disables early termination (the Section 6.5 reprobing
	// strategy): probing continues past non-hierarchical findings and
	// the last-hop enumeration bound replaces the hierarchy bound.
	Exhaustive bool
	// SequentialOrder replaces the Section 3.3 shuffled /26 round-robin
	// with naive ascending-address probing — an ablation baseline that
	// shows why the paper's selection covers the /26s early.
	SequentialOrder bool
	// Seed drives the deterministic destination-order shuffles.
	Seed uint64
}

// BlockResult is the measurement outcome for one /24.
type BlockResult struct {
	Block iputil.Block24
	Class Class
	// Groups are the probed addresses grouped by last-hop router.
	Groups []Group
	// LastHops is the observed set of distinct last-hop routers, sorted
	// — the block's signature for aggregation (Section 5).
	LastHops []iputil.Addr
	// Probed counts destinations probed; Responded those that answered;
	// UnrespLastHop those whose last-hop router never answered.
	Probed        int
	Responded     int
	UnrespLastHop int
	// VeryLikelyHetero marks blocks meeting the aligned-disjoint
	// criterion; SubBlocks holds their sub-prefixes.
	VeryLikelyHetero bool
	SubBlocks        []iputil.Prefix
	// Paths aggregates every path suffix observed toward the block
	// (used by dataset-building experiments; nil unless KeepPaths).
	Paths []*trace.PathSet
	// Degraded counts probed destinations whose measurement crossed the
	// adaptive prober's loss threshold; BudgetExhausted those whose
	// escalation budget ran dry (see probe.MDAOptions.Adaptive).
	Degraded        int
	BudgetExhausted int
}

// LowConfidence reports whether the block's verdict rests on too many
// budget-exhausted measurements to feed aggregation: at least one
// exhausted destination, and exhausted destinations making up half or
// more of everything probed. Such blocks keep their class for reporting
// but are excluded from aggregation (see core.Pipeline).
func (r *BlockResult) LowConfidence() bool {
	return r.BudgetExhausted > 0 && 2*r.BudgetExhausted >= r.Probed
}

func (m *Measurer) term() Terminator {
	if m.Term != nil {
		return m.Term
	}
	return MDATerminator{}
}

func (m *Measurer) minActive() int {
	if m.MinActive > 0 {
		return m.MinActive
	}
	return 4
}

func (m *Measurer) singleRule() int {
	if m.SingleLastHopProbes > 0 {
		return m.SingleLastHopProbes
	}
	return 6
}

// Order produces the probing order of Section 3.3: the block's active
// addresses grouped by /26, visited round-robin with the /26 order
// reshuffled after each round. With SequentialOrder set it degrades to
// ascending addresses.
func (m *Measurer) Order(b iputil.Block24, by26 [4][]iputil.Addr) []iputil.Addr {
	if m.SequentialOrder {
		var out []iputil.Addr
		for _, q := range by26 {
			out = append(out, q...)
		}
		iputil.SortAddrs(out)
		return out
	}
	var quarters [][]iputil.Addr
	total := 0
	for _, q := range by26 {
		if len(q) > 0 {
			cp := append([]iputil.Addr(nil), q...)
			quarters = append(quarters, cp)
			total += len(cp)
		}
	}
	out := make([]iputil.Addr, 0, total)
	idx := make([]int, len(quarters))
	for round := 0; len(out) < total; round++ {
		// Shuffle the /26 visiting order each round.
		perm := deterministicPerm(len(quarters), m.Seed, uint64(b), uint64(round))
		for _, qi := range perm {
			if idx[qi] < len(quarters[qi]) {
				out = append(out, quarters[qi][idx[qi]])
				idx[qi]++
			}
		}
	}
	return out
}

// deterministicPerm produces a seeded Fisher-Yates permutation of [0, n).
func deterministicPerm(n int, seed, k1, k2 uint64) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i+1, seed, k1, k2, uint64(i))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// MeasureBlock classifies one /24 given its census-active addresses
// grouped by /26.
func (m *Measurer) MeasureBlock(b iputil.Block24, by26 [4][]iputil.Addr) BlockResult {
	res := BlockResult{Block: b}
	order := m.Order(b, by26)
	gm := make(groupMap)
	term := m.term()

	for _, dst := range order {
		lr := probe.FindLastHops(m.Net, dst, m.Opts)
		res.Probed++
		if lr.Degraded {
			res.Degraded++
		}
		if lr.BudgetExhausted {
			res.BudgetExhausted++
		}
		if !lr.Responded {
			continue
		}
		res.Responded++
		if len(lr.LastHops) == 0 {
			res.UnrespLastHop++
			continue
		}
		for _, lh := range lr.LastHops {
			gm.add(lh, dst)
		}

		if m.Exhaustive {
			// Reprobing strategy: enumerate last hops to the MDA
			// bound rather than the hierarchy bound, and never
			// stop on a non-hierarchical finding.
			if term.Enough(len(gm), res.Responded) && res.Responded >= m.singleRule() {
				break
			}
			continue
		}
		if len(gm) == 1 && res.Responded >= m.singleRule() {
			break
		}
		if len(gm) > 1 {
			groups := gm.groups()
			if NonHierarchical(groups) {
				break
			}
			if term.Enough(len(gm), res.Responded) {
				break
			}
		}
	}

	res.Groups = gm.groups()
	res.LastHops = make([]iputil.Addr, 0, len(res.Groups))
	for _, g := range res.Groups {
		res.LastHops = append(res.LastHops, g.LastHop)
	}
	res.Class = m.classify(&res, term)
	if res.Class == ClassHierarchical {
		if subs, ok := AlignedDisjoint(res.Groups); ok {
			res.VeryLikelyHetero = true
			res.SubBlocks = subs
		}
	}
	return res
}

// classify applies the Table 1 decision procedure to the accumulated
// observations.
func (m *Measurer) classify(res *BlockResult, term Terminator) Class {
	switch {
	case res.Responded < m.minActive():
		return ClassTooFewActive
	case len(res.Groups) == 0:
		return ClassUnresponsiveLastHop
	case len(res.Groups) == 1:
		if res.Responded-res.UnrespLastHop >= m.singleRule() {
			return ClassSameLastHop
		}
		return ClassTooFewActive
	case NonHierarchical(res.Groups):
		return ClassNonHierarchical
	case term.Enough(len(res.Groups), res.Responded-res.UnrespLastHop):
		return ClassHierarchical
	default:
		// Hierarchical-looking but under-probed: the block had fewer
		// active addresses than the confidence level requires.
		return ClassTooFewActive
	}
}
