package hobbit

import (
	"context"
	"testing"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/telemetry"
	"github.com/hobbitscan/hobbit/internal/zmap"
)

func campaignWorld(t *testing.T, n int) (*netsim.World, *Campaign, []iputil.Block24) {
	t.Helper()
	cfg := netsim.DefaultConfig(n)
	cfg.BigBlockScale = 0.02
	w, err := netsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := zmap.Scan(w, w.Blocks())
	c := &Campaign{
		Measurer: &Measurer{Net: probe.NewSimNetwork(w), Seed: 1},
		Dataset:  ds,
	}
	return w, c, ds.EligibleBlocks(w.Blocks(), 4)
}

func TestCampaignAgainstGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test is slow")
	}
	w, c, eligible := campaignWorld(t, 700)
	if len(eligible) < 200 {
		t.Fatalf("only %d eligible blocks", len(eligible))
	}
	res, err := c.Run(context.Background(), eligible)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary()
	if sum.Total != len(eligible) {
		t.Fatalf("summary total = %d, want %d", sum.Total, len(eligible))
	}

	// Verdicts must agree with planted truth at high rates.
	var homTrue, homCalledHet, hetTrue, hetDetected int
	for b, br := range res.Blocks {
		hom, _ := w.TrueHomogeneous(b)
		if !br.Class.Analyzable() {
			continue
		}
		if hom {
			homTrue++
			if !br.Class.Homogeneous() {
				homCalledHet++
			}
		} else {
			hetTrue++
			if br.Class == ClassHierarchical {
				hetDetected++
			}
		}
	}
	if homTrue == 0 {
		t.Fatal("no analyzable homogeneous blocks")
	}
	// The paper bounds the misclassification of homogeneous blocks at
	// the 5% confidence level.
	if frac := float64(homCalledHet) / float64(homTrue); frac > 0.12 {
		t.Errorf("homogeneous misclassified as hierarchical: %.1f%%", 100*frac)
	}
	// Planted heterogeneous blocks that were analyzable should land in
	// the hierarchical class.
	if hetTrue > 0 && hetDetected < hetTrue/2 {
		t.Errorf("heterogeneous detected %d of %d", hetDetected, hetTrue)
	}

	// All five classes should be populated in a default world.
	for _, cls := range []Class{ClassTooFewActive, ClassSameLastHop, ClassNonHierarchical} {
		if sum.Counts[cls] == 0 {
			t.Errorf("class %v empty", cls)
		}
	}
}

func TestMeasureBlockSameLastHop(t *testing.T) {
	w, c, eligible := campaignWorld(t, 600)
	// Find an eligible K=1 block with responsive last hop.
	var target iputil.Block24
	for _, b := range eligible {
		if w.TrueLastHopCardinality(b) == 1 && !w.UnresponsiveLastHop(b) {
			if hom, _ := w.TrueHomogeneous(b); hom && !w.IsStarved(b) {
				target = b
				break
			}
		}
	}
	if target == 0 {
		t.Skip("no K=1 block eligible")
	}
	br := c.Measurer.MeasureBlock(target, c.Dataset.ActivesBy26(target))
	if br.Class != ClassSameLastHop && br.Class != ClassTooFewActive {
		t.Errorf("K=1 block classified %v", br.Class)
	}
	if br.Class == ClassSameLastHop {
		if len(br.LastHops) != 1 {
			t.Errorf("LastHops = %v", br.LastHops)
		}
		trueLH, _ := w.TrueLastHops(target.Addr(1))
		if br.LastHops[0] != trueLH[0] {
			t.Errorf("last hop %v, truth %v", br.LastHops[0], trueLH)
		}
		// Early termination: 6 probes suffice for a single last hop.
		if br.Responded > 8 {
			t.Errorf("probed %d responsive destinations for a K=1 block", br.Responded)
		}
	}
}

func TestMeasureBlockHetero(t *testing.T) {
	w, c, _ := campaignWorld(t, 1500)
	found := 0
	for _, b := range w.HeteroBlocks() {
		if !c.Dataset.Eligible(b, 4) {
			continue
		}
		br := c.Measurer.MeasureBlock(b, c.Dataset.ActivesBy26(b))
		if !br.Class.Analyzable() {
			continue
		}
		found++
		if br.Class.Homogeneous() {
			t.Errorf("hetero block %v classified %v", b, br.Class)
			continue
		}
		if br.VeryLikelyHetero {
			// Sub-blocks must be consistent with planted entries:
			// every observed sub-prefix lies within one true entry.
			entries := w.TrueEntries(b)
			for _, sub := range br.SubBlocks {
				inside := false
				for _, e := range entries {
					if e.ContainsPrefix(sub) {
						inside = true
					}
				}
				if !inside {
					t.Errorf("block %v sub %v not within any true entry %v", b, sub, entries)
				}
			}
		}
		if found >= 5 {
			break
		}
	}
	if found == 0 {
		t.Skip("no analyzable hetero blocks at this scale")
	}
}

func TestExhaustiveReprobe(t *testing.T) {
	w, c, eligible := campaignWorld(t, 600)
	// On a K>=2 block, the exhaustive strategy should observe at least
	// as many last hops as the normal strategy.
	var target iputil.Block24
	for _, b := range eligible {
		if w.TrueLastHopCardinality(b) >= 3 && !w.UnresponsiveLastHop(b) && !w.IsStarved(b) {
			if hom, _ := w.TrueHomogeneous(b); hom {
				target = b
				break
			}
		}
	}
	if target == 0 {
		t.Skip("no K>=3 block eligible")
	}
	by26 := c.Dataset.ActivesBy26(target)
	normal := c.Measurer.MeasureBlock(target, by26)
	ex := *c.Measurer
	ex.Exhaustive = true
	exhaustive := ex.MeasureBlock(target, by26)
	if len(exhaustive.LastHops) < len(normal.LastHops) {
		t.Errorf("exhaustive found %d last hops, normal %d",
			len(exhaustive.LastHops), len(normal.LastHops))
	}
	if exhaustive.Responded < normal.Responded {
		t.Errorf("exhaustive responded %d < normal %d", exhaustive.Responded, normal.Responded)
	}
}

func TestOrderCoversAllActives(t *testing.T) {
	_, c, eligible := campaignWorld(t, 300)
	b := eligible[0]
	by26 := c.Dataset.ActivesBy26(b)
	order := c.Measurer.Order(b, by26)
	seen := make(map[iputil.Addr]bool, len(order))
	for _, a := range order {
		if seen[a] {
			t.Fatalf("duplicate %v in order", a)
		}
		seen[a] = true
	}
	total := 0
	for q := 0; q < 4; q++ {
		total += len(by26[q])
		for _, a := range by26[q] {
			if !seen[a] {
				t.Fatalf("active %v missing from order", a)
			}
		}
	}
	if len(order) != total {
		t.Fatalf("order length %d, want %d", len(order), total)
	}
	// First round visits each /26 once before revisiting any.
	quarterSeen := map[int]bool{}
	for i := 0; i < 4 && i < len(order); i++ {
		q := order[i].Block26()
		if quarterSeen[q] {
			t.Errorf("quarter %d revisited within first round", q)
		}
		quarterSeen[q] = true
	}
}

// TestCampaignTelemetry runs an instrumented campaign with many workers —
// the -race half of the concurrent-registry guarantee — and checks the
// accounting against the result.
func TestCampaignTelemetry(t *testing.T) {
	w, c, eligible := campaignWorld(t, 400)
	if len(eligible) > 120 {
		eligible = eligible[:120]
	}
	reg := telemetry.NewRegistry()
	c.Telemetry = reg
	c.Workers = 8
	c.Measurer.Net = probe.Instrument(probe.NewSimNetwork(w), reg, "measure")
	var events int
	var last telemetry.ProgressEvent
	c.Progress = telemetry.SinkFunc(func(ev telemetry.ProgressEvent) {
		events++
		last = ev
	})
	res, err := c.Run(context.Background(), eligible)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary()
	snap := reg.Snapshot()
	if got := snap.Counters["campaign.blocks_measured"]; got != int64(sum.Total) {
		t.Errorf("blocks_measured = %d, summary total = %d", got, sum.Total)
	}
	for cls, n := range sum.Counts {
		if got := snap.Counters["campaign.class."+cls.MetricName()]; got != int64(n) {
			t.Errorf("class counter %v = %d, summary = %d", cls, got, n)
		}
	}
	if snap.Histograms["campaign.probed_per_block"].Count != int64(sum.Total) {
		t.Errorf("histogram count = %d, want %d",
			snap.Histograms["campaign.probed_per_block"].Count, sum.Total)
	}
	if events != len(eligible) {
		t.Errorf("progress events = %d, want %d", events, len(eligible))
	}
	if last.Done != len(eligible) || last.Total != len(eligible) || last.Stage != "measure" {
		t.Errorf("final event = %+v", last)
	}
	if last.Probes == 0 || last.Pings == 0 {
		t.Errorf("final event missing probe load: %+v", last)
	}
}

func TestCampaignCancellation(t *testing.T) {
	_, c, eligible := campaignWorld(t, 400)
	if len(eligible) < 20 {
		t.Fatalf("only %d eligible blocks", len(eligible))
	}
	c.Workers = 2
	ctx, cancel := context.WithCancel(context.Background())
	done := 0
	c.Progress = telemetry.SinkFunc(func(telemetry.ProgressEvent) {
		if done++; done == 3 {
			cancel()
		}
	})
	res, err := c.Run(ctx, eligible)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Blocks) == 0 {
		t.Error("partial result lost")
	}
	if len(res.Blocks) == len(eligible) {
		t.Error("campaign ran to completion despite cancellation")
	}
	// The partial result stays consistent: every measured block is in
	// Order, and the class accessors skip unmeasured ones.
	if got := len(res.HomogeneousBlocks()); got > len(res.Blocks) {
		t.Errorf("HomogeneousBlocks returned %d of %d measured", got, len(res.Blocks))
	}
}

func TestCampaignDeterministic(t *testing.T) {
	_, c1, elig1 := campaignWorld(t, 250)
	_, c2, elig2 := campaignWorld(t, 250)
	r1, err1 := c1.Run(context.Background(), elig1[:50])
	r2, err2 := c2.Run(context.Background(), elig2[:50])
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for b, br1 := range r1.Blocks {
		br2 := r2.Blocks[b]
		if br2 == nil || br1.Class != br2.Class || len(br1.LastHops) != len(br2.LastHops) {
			t.Fatalf("nondeterministic result for %v", b)
		}
	}
}
