// Package hobbit implements the paper's primary contribution: the
// homogeneous block identification technique. Hobbit decides whether the
// addresses of a /24 block are topologically co-located by grouping them
// by last-hop router and testing whether the groups' address ranges are
// hierarchical (distinct route entries) or non-hierarchical (per-
// destination load balancing), with the destination-selection and
// termination strategies of Section 3.
package hobbit

import (
	"sort"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

// Class is the Table 1 classification of one measured /24 block.
type Class int

// Block classifications. The first two are the "Not analyzable"
// categories; SameLastHop and NonHierarchical are homogeneous;
// Hierarchical is "different but hierarchical" (heterogeneous with ≤5%
// error at the default confidence).
const (
	ClassTooFewActive Class = iota
	ClassUnresponsiveLastHop
	ClassSameLastHop
	ClassNonHierarchical
	ClassHierarchical
)

// String renders the class as the paper's table rows.
func (c Class) String() string {
	switch c {
	case ClassTooFewActive:
		return "Too few active"
	case ClassUnresponsiveLastHop:
		return "Unresponsive last-hop"
	case ClassSameLastHop:
		return "Same last-hop router"
	case ClassNonHierarchical:
		return "Non-hierarchical"
	case ClassHierarchical:
		return "Different but hierarchical"
	default:
		return "Unknown"
	}
}

// MetricName renders the class as a snake_case telemetry metric segment
// (the display String above has spaces and capitals, which the
// stage.metric_name convention forbids).
func (c Class) MetricName() string {
	switch c {
	case ClassTooFewActive:
		return "too_few_active"
	case ClassUnresponsiveLastHop:
		return "unresponsive_last_hop"
	case ClassSameLastHop:
		return "same_last_hop"
	case ClassNonHierarchical:
		return "non_hierarchical"
	case ClassHierarchical:
		return "hierarchical"
	default:
		return "unknown"
	}
}

// Homogeneous reports whether the class counts as homogeneous.
func (c Class) Homogeneous() bool {
	return c == ClassSameLastHop || c == ClassNonHierarchical
}

// Analyzable reports whether the class carries a verdict at all.
func (c Class) Analyzable() bool {
	return c != ClassTooFewActive && c != ClassUnresponsiveLastHop
}

// Group is the set of probed addresses sharing one last-hop router.
type Group struct {
	LastHop iputil.Addr
	Addrs   []iputil.Addr
}

// Range returns the group's address range (numerically smallest to
// largest member), the representation the hierarchy test operates on.
func (g Group) Range() iputil.Range { return iputil.RangeOf(g.Addrs) }

// groupMap accumulates address → last-hop observations.
type groupMap map[iputil.Addr][]iputil.Addr

func (m groupMap) add(lastHop, dst iputil.Addr) {
	m[lastHop] = append(m[lastHop], dst)
}

// groups converts the accumulator to sorted Group records (by last-hop
// address) with sorted members.
func (m groupMap) groups() []Group {
	out := make([]Group, 0, len(m))
	for lh, addrs := range m {
		iputil.SortAddrs(addrs)
		out = append(out, Group{LastHop: lh, Addrs: addrs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LastHop < out[j].LastHop })
	return out
}

// NonHierarchical reports whether any pair of group ranges partially
// overlaps — the signature of per-destination load balancing rather than
// distinct route entries (Figure 2c). With fewer than four addresses in
// total the relationships are always hierarchical, so this cannot trigger.
func NonHierarchical(groups []Group) bool {
	for i := 0; i < len(groups); i++ {
		ri := groups[i].Range()
		for j := i + 1; j < len(groups); j++ {
			if !ri.Hierarchical(groups[j].Range()) {
				return true
			}
		}
	}
	return false
}

// AlignedDisjoint implements the Section 4.2 "very likely heterogeneous"
// criterion: every pair of groups is disjoint (not inclusive), and each
// group's enclosing subnet — the prefix whose network bits are the longest
// common prefix of the group's addresses — contains no address of any
// other group. When the criterion holds it returns the sub-block prefixes
// sorted by base address.
func AlignedDisjoint(groups []Group) ([]iputil.Prefix, bool) {
	if len(groups) < 2 {
		return nil, false
	}
	prefixes := make([]iputil.Prefix, len(groups))
	for i, g := range groups {
		ri := g.Range()
		for j := i + 1; j < len(groups); j++ {
			if !ri.Disjoint(groups[j].Range()) {
				return nil, false
			}
		}
		prefixes[i] = iputil.EnclosingPrefix(g.Addrs)
	}
	// Alignment: no foreign address inside any group's subnet.
	for i, p := range prefixes {
		for j, g := range groups {
			if i == j {
				continue
			}
			for _, a := range g.Addrs {
				if p.Contains(a) {
					return nil, false
				}
			}
		}
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Base < prefixes[j].Base })
	return prefixes, true
}

// Composition returns the multiset of prefix lengths of the sub-blocks,
// sorted ascending — the rows of Table 2.
func Composition(prefixes []iputil.Prefix) []int {
	out := make([]int, len(prefixes))
	for i, p := range prefixes {
		out[i] = p.Len
	}
	sort.Ints(out)
	return out
}
