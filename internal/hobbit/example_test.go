package hobbit_test

import (
	"fmt"

	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/iputil"
)

// The hierarchy test at the heart of Hobbit: grouping addresses by their
// last-hop router and asking whether the groups' ranges interleave.
func ExampleNonHierarchical() {
	addr := iputil.MustParseAddr

	// Figure 2a: two disjoint groups — consistent with distinct route
	// entries, so Hobbit cannot call the block homogeneous.
	disjoint := []hobbit.Group{
		{LastHop: addr("203.0.113.1"), Addrs: []iputil.Addr{addr("192.0.2.2"), addr("192.0.2.126")}},
		{LastHop: addr("203.0.113.2"), Addrs: []iputil.Addr{addr("192.0.2.130"), addr("192.0.2.237")}},
	}
	fmt.Println("disjoint groups non-hierarchical:", hobbit.NonHierarchical(disjoint))

	// Figure 2c: interleaved groups — only load balancing produces
	// this, so the block is homogeneous.
	interleaved := []hobbit.Group{
		{LastHop: addr("203.0.113.1"), Addrs: []iputil.Addr{addr("192.0.2.2"), addr("192.0.2.130")}},
		{LastHop: addr("203.0.113.2"), Addrs: []iputil.Addr{addr("192.0.2.126"), addr("192.0.2.237")}},
	}
	fmt.Println("interleaved groups non-hierarchical:", hobbit.NonHierarchical(interleaved))
	// Output:
	// disjoint groups non-hierarchical: false
	// interleaved groups non-hierarchical: true
}

// The Section 4.2 criterion for blocks that are very likely split into
// sub-allocations: disjoint groups aligned to subnet boundaries.
func ExampleAlignedDisjoint() {
	addr := iputil.MustParseAddr
	groups := []hobbit.Group{
		{LastHop: addr("203.0.113.1"), Addrs: []iputil.Addr{addr("192.0.2.2"), addr("192.0.2.125")}},
		{LastHop: addr("203.0.113.2"), Addrs: []iputil.Addr{addr("192.0.2.129"), addr("192.0.2.254")}},
	}
	subs, ok := hobbit.AlignedDisjoint(groups)
	fmt.Println("very likely heterogeneous:", ok)
	for _, s := range subs {
		fmt.Println("  sub-block:", s)
	}
	fmt.Println("composition:", hobbit.Composition(subs))
	// Output:
	// very likely heterogeneous: true
	//   sub-block: 192.0.2.0/25
	//   sub-block: 192.0.2.128/25
	// composition: [25 25]
}
