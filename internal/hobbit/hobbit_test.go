package hobbit

import (
	"testing"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

func ip(s string) iputil.Addr { return iputil.MustParseAddr(s) }

func grp(lh string, addrs ...string) Group {
	g := Group{LastHop: ip(lh)}
	for _, a := range addrs {
		g.Addrs = append(g.Addrs, ip(a))
	}
	return g
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[Class]string{
		ClassTooFewActive:        "Too few active",
		ClassUnresponsiveLastHop: "Unresponsive last-hop",
		ClassSameLastHop:         "Same last-hop router",
		ClassNonHierarchical:     "Non-hierarchical",
		ClassHierarchical:        "Different but hierarchical",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
	if !ClassSameLastHop.Homogeneous() || !ClassNonHierarchical.Homogeneous() {
		t.Error("homogeneous classes misreported")
	}
	if ClassHierarchical.Homogeneous() || ClassTooFewActive.Homogeneous() {
		t.Error("non-homogeneous classes misreported")
	}
	if ClassTooFewActive.Analyzable() || ClassUnresponsiveLastHop.Analyzable() {
		t.Error("not-analyzable classes misreported")
	}
	if !ClassHierarchical.Analyzable() {
		t.Error("hierarchical should be analyzable")
	}
}

func TestNonHierarchical(t *testing.T) {
	// Figure 2a: disjoint groups -> hierarchical.
	disjoint := []Group{
		grp("9.9.9.1", "10.0.0.2", "10.0.0.126"),
		grp("9.9.9.2", "10.0.0.130", "10.0.0.237"),
	}
	if NonHierarchical(disjoint) {
		t.Error("disjoint groups should be hierarchical")
	}
	// Figure 2b: inclusive groups -> hierarchical.
	inclusive := []Group{
		grp("9.9.9.1", "10.0.0.2", "10.0.0.237"),
		grp("9.9.9.2", "10.0.0.130", "10.0.0.200"),
	}
	if NonHierarchical(inclusive) {
		t.Error("inclusive groups should be hierarchical")
	}
	// Figure 2c: interleaved groups -> non-hierarchical.
	interleaved := []Group{
		grp("9.9.9.1", "10.0.0.2", "10.0.0.126", "10.0.0.237"),
		grp("9.9.9.2", "10.0.0.130", "10.0.0.2"),
		grp("9.9.9.3", "10.0.0.126", "10.0.0.130", "10.0.0.237"),
	}
	if !NonHierarchical(interleaved) {
		t.Error("interleaved groups should be non-hierarchical")
	}
	// Fewer than 4 addresses are always hierarchical no matter the
	// grouping (Section 3.3's minimum).
	three := []Group{
		grp("9.9.9.1", "10.0.0.1"),
		grp("9.9.9.2", "10.0.0.2"),
		grp("9.9.9.3", "10.0.0.3"),
	}
	if NonHierarchical(three) {
		t.Error("singleton groups can never be non-hierarchical")
	}
	if NonHierarchical(nil) {
		t.Error("empty groups should be hierarchical")
	}
}

func TestAlignedDisjoint(t *testing.T) {
	// The paper's example: <X.Y.Z.2, X.Y.Z.125> and <X.Y.Z.129,
	// X.Y.Z.254> are disjoint and aligned to the two /25s.
	aligned := []Group{
		grp("9.9.9.1", "10.0.0.2", "10.0.0.125"),
		grp("9.9.9.2", "10.0.0.129", "10.0.0.254"),
	}
	subs, ok := AlignedDisjoint(aligned)
	if !ok {
		t.Fatal("aligned example should match")
	}
	if len(subs) != 2 || subs[0].String() != "10.0.0.0/25" || subs[1].String() != "10.0.0.128/25" {
		t.Errorf("sub-blocks = %v", subs)
	}
	if got := Composition(subs); len(got) != 2 || got[0] != 25 || got[1] != 25 {
		t.Errorf("composition = %v", got)
	}

	// The paper's counterexample: second group <X.Y.Z.127, X.Y.Z.254>
	// is disjoint but not aligned (its subnet /24 swallows group one).
	misaligned := []Group{
		grp("9.9.9.1", "10.0.0.2", "10.0.0.125"),
		grp("9.9.9.2", "10.0.0.127", "10.0.0.254"),
	}
	if _, ok := AlignedDisjoint(misaligned); ok {
		t.Error("misaligned example should not match")
	}

	// Overlapping groups never match.
	overlapping := []Group{
		grp("9.9.9.1", "10.0.0.2", "10.0.0.200"),
		grp("9.9.9.2", "10.0.0.100", "10.0.0.220"),
	}
	if _, ok := AlignedDisjoint(overlapping); ok {
		t.Error("overlapping groups should not match")
	}

	// A single group is not a split.
	if _, ok := AlignedDisjoint(aligned[:1]); ok {
		t.Error("single group should not match")
	}

	// Three-way split {/25, /26, /26}.
	threeWay := []Group{
		grp("9.9.9.1", "10.0.0.2", "10.0.0.120"),
		grp("9.9.9.2", "10.0.0.130", "10.0.0.190"),
		grp("9.9.9.3", "10.0.0.194", "10.0.0.254"),
	}
	subs, ok = AlignedDisjoint(threeWay)
	if !ok {
		t.Fatal("three-way split should match")
	}
	if got := Composition(subs); len(got) != 3 || got[0] != 25 || got[1] != 26 || got[2] != 26 {
		t.Errorf("three-way composition = %v", got)
	}
}

func TestMDATerminator(t *testing.T) {
	term := MDATerminator{}
	if term.Enough(1, 5) {
		t.Error("5 probes must not suffice at cardinality 1")
	}
	if !term.Enough(1, 6) {
		t.Error("6 probes suffice at cardinality 1")
	}
	if term.Enough(2, 10) || !term.Enough(2, 11) {
		t.Error("cardinality 2 requires 11 probes")
	}
	strict := MDATerminator{Confidence: 0.99}
	if strict.Enough(1, 6) {
		t.Error("99% confidence needs more than 6 probes")
	}
}

func TestGroupRange(t *testing.T) {
	g := grp("9.9.9.9", "10.0.0.7", "10.0.0.3", "10.0.0.5")
	r := g.Range()
	if r.Lo != ip("10.0.0.3") || r.Hi != ip("10.0.0.7") {
		t.Errorf("Range = %v", r)
	}
}
