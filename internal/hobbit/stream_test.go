package hobbit

import (
	"context"
	"reflect"
	"testing"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

// feedBlocks pushes the blocks (with their dataset actives) through a
// fresh feed channel the way the core pipeline's census feeder does.
func feedBlocks(c *Campaign, blocks []iputil.Block24) <-chan FeedItem {
	feed := make(chan FeedItem)
	go func() {
		defer close(feed)
		for _, b := range blocks {
			feed <- FeedItem{Block: b, By26: c.Dataset.ActivesBy26(b)}
		}
	}()
	return feed
}

// TestRunStreamMatchesRun pins the streaming campaign's half of the
// determinism contract: fed the same blocks Run is given, RunStream must
// produce Run's exact Result — same verdicts, same Order — with the sink
// observing results strictly in feed order, at any worker count.
func TestRunStreamMatchesRun(t *testing.T) {
	_, c, eligible := campaignWorld(t, 300)
	if len(eligible) < 40 {
		t.Fatalf("only %d eligible blocks", len(eligible))
	}
	regWant := telemetry.NewRegistry()
	c.Workers, c.Telemetry = 4, regWant
	want, err := c.Run(context.Background(), eligible)
	if err != nil {
		t.Fatal(err)
	}
	snapWant := regWant.Snapshot()

	for _, workers := range []int{1, 8} {
		reg := telemetry.NewRegistry()
		c.Workers, c.Telemetry = workers, reg
		var sunk []iputil.Block24
		got, err := c.RunStream(context.Background(), feedBlocks(c, eligible), func(br *BlockResult) {
			sunk = append(sunk, br.Block)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Order, want.Order) {
			t.Fatalf("workers=%d: Order differs from Run", workers)
		}
		if !reflect.DeepEqual(sunk, eligible) {
			t.Fatalf("workers=%d: sink did not observe results in feed order", workers)
		}
		if len(got.Blocks) != len(want.Blocks) {
			t.Fatalf("workers=%d: %d blocks, want %d", workers, len(got.Blocks), len(want.Blocks))
		}
		for b, br := range want.Blocks {
			if !reflect.DeepEqual(got.Blocks[b], br) {
				t.Fatalf("workers=%d: block %v result differs", workers, b)
			}
		}
		snap := reg.Snapshot()
		if !reflect.DeepEqual(snap.Counters, snapWant.Counters) {
			t.Errorf("workers=%d: counters differ:\nstream: %v\nrun:    %v",
				workers, snap.Counters, snapWant.Counters)
		}
		if !reflect.DeepEqual(snap.Histograms, snapWant.Histograms) {
			t.Errorf("workers=%d: histograms differ", workers)
		}
	}
}

// TestRunStreamCancel: cancelling mid-campaign returns the emitted
// prefix (in feed order) with ctx.Err, and the feeder is not wedged.
func TestRunStreamCancel(t *testing.T) {
	_, c, eligible := campaignWorld(t, 300)
	c.Workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	feed := make(chan FeedItem)
	go func() {
		defer close(feed)
		for i, b := range eligible {
			if i == 10 {
				cancel()
			}
			select {
			case feed <- FeedItem{Block: b, By26: c.Dataset.ActivesBy26(b)}:
			case <-ctx.Done():
				return
			}
		}
	}()
	res, err := c.RunStream(ctx, feed, nil)
	if err == nil {
		t.Fatal("cancelled RunStream returned nil error")
	}
	for i, b := range res.Order {
		if b != eligible[i] {
			t.Fatalf("partial Order[%d] = %v, want %v", i, b, eligible[i])
		}
	}
}

// TestRunStreamEmptyFeed: a feed that closes without items completes
// with an empty result.
func TestRunStreamEmptyFeed(t *testing.T) {
	_, c, _ := campaignWorld(t, 60)
	feed := make(chan FeedItem)
	close(feed)
	res, err := c.RunStream(context.Background(), feed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) != 0 || len(res.Order) != 0 {
		t.Fatalf("empty feed produced %d blocks", len(res.Blocks))
	}
}
