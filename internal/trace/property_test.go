package trace

import (
	"testing"
	"testing/quick"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

// genPath builds a path from raw fuzz input: each element becomes a hop,
// zero values become wildcards.
func genPath(raw []uint32) Path {
	p := make(Path, len(raw))
	for i, v := range raw {
		if v == 0 {
			p[i] = Star
		} else {
			p[i] = R(iputil.Addr(v))
		}
	}
	return p
}

func TestPathMatchReflexiveSymmetric(t *testing.T) {
	f := func(raw []uint32, raw2 []uint32) bool {
		p, q := genPath(raw), genPath(raw2)
		if !p.MatchesWildcard(p) {
			return false // reflexive
		}
		if p.MatchesWildcard(q) != q.MatchesWildcard(p) {
			return false // symmetric
		}
		// Exact equality implies wildcard match.
		if p.Equal(q) && !p.MatchesWildcard(q) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPathKeyInjective(t *testing.T) {
	// Key collides exactly when paths are Equal.
	f := func(raw []uint32, raw2 []uint32) bool {
		p, q := genPath(raw), genPath(raw2)
		return (p.Key() == q.Key()) == p.Equal(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPathCloneIndependent(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		p := genPath(raw)
		c := p.Clone()
		c[0] = R(iputil.Addr(0xdeadbeef))
		return p.Equal(genPath(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPathSetAddIdempotent(t *testing.T) {
	f := func(raws [][]uint32) bool {
		s := NewPathSet()
		for _, raw := range raws {
			s.Add(genPath(raw))
		}
		n := s.Len()
		for _, raw := range raws {
			if s.Add(genPath(raw)) {
				return false // second insertion must be a no-op
			}
		}
		return s.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLinksNeverWildcard(t *testing.T) {
	f := func(raw []uint32) bool {
		for _, ln := range genPath(raw).Links() {
			if ln.From == 0 || ln.To == 0 {
				// genPath maps 0 to Star, so links never carry it.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
