package trace

import (
	"testing"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

func ip(s string) iputil.Addr { return iputil.MustParseAddr(s) }

func TestHopMatches(t *testing.T) {
	a := R(ip("10.0.0.1"))
	b := R(ip("10.0.0.2"))
	if a.Matches(b) {
		t.Error("distinct responsive hops should not match")
	}
	if !a.Matches(a) {
		t.Error("hop should match itself")
	}
	if !a.Matches(Star) || !Star.Matches(a) || !Star.Matches(Star) {
		t.Error("wildcard should match anything")
	}
	if a.String() != "10.0.0.1" || Star.String() != "*" {
		t.Errorf("String = %q / %q", a.String(), Star.String())
	}
}

func mkPath(hops ...string) Path {
	p := make(Path, len(hops))
	for i, h := range hops {
		if h == "*" {
			p[i] = Star
		} else {
			p[i] = R(ip(h))
		}
	}
	return p
}

func TestPathWildcardMatching(t *testing.T) {
	// The paper's example: <A, B, C>, <A, *, C> and <*, B, C> are all
	// considered identical.
	full := mkPath("1.1.1.1", "2.2.2.2", "3.3.3.3")
	midStar := mkPath("1.1.1.1", "*", "3.3.3.3")
	headStar := mkPath("*", "2.2.2.2", "3.3.3.3")
	other := mkPath("1.1.1.1", "9.9.9.9", "3.3.3.3")

	if !full.MatchesWildcard(midStar) || !full.MatchesWildcard(headStar) {
		t.Error("wildcard paths should match the full path")
	}
	if !midStar.MatchesWildcard(headStar) {
		t.Error("two wildcard paths should match")
	}
	if full.MatchesWildcard(other) {
		t.Error("paths differing at a responsive hop should not match")
	}
	if full.MatchesWildcard(mkPath("1.1.1.1", "2.2.2.2")) {
		t.Error("length mismatch should not match")
	}
	if full.Equal(midStar) {
		t.Error("Equal must be exact")
	}
	if !full.Equal(full.Clone()) {
		t.Error("clone should be Equal")
	}
}

func TestPathLastHop(t *testing.T) {
	if _, ok := (Path{}).LastHop(); ok {
		t.Error("empty path has no last hop")
	}
	if _, ok := mkPath("1.1.1.1", "*").LastHop(); ok {
		t.Error("unresponsive final hop should report !ok")
	}
	a, ok := mkPath("1.1.1.1", "2.2.2.2").LastHop()
	if !ok || a != ip("2.2.2.2") {
		t.Errorf("LastHop = %v, %v", a, ok)
	}
}

func TestPathKeyDistinguishesStar(t *testing.T) {
	// An unresponsive hop must not collide with address 0.0.0.0.
	zeroHop := Path{R(0)}
	star := Path{Star}
	if zeroHop.Key() == star.Key() {
		t.Error("wildcard key collides with 0.0.0.0")
	}
	if mkPath("1.1.1.1", "2.2.2.2").Key() == mkPath("1.1.1.1").Key() {
		t.Error("different lengths must have different keys")
	}
}

func TestPathString(t *testing.T) {
	got := mkPath("1.1.1.1", "*").String()
	if got != "<1.1.1.1, *>" {
		t.Errorf("String = %q", got)
	}
}

func TestPathLinks(t *testing.T) {
	p := mkPath("1.1.1.1", "2.2.2.2", "*", "4.4.4.4", "5.5.5.5")
	links := p.Links()
	want := []Link{
		{From: ip("1.1.1.1"), To: ip("2.2.2.2")},
		{From: ip("4.4.4.4"), To: ip("5.5.5.5")},
	}
	if len(links) != len(want) {
		t.Fatalf("Links = %v", links)
	}
	for i := range want {
		if links[i] != want[i] {
			t.Errorf("link %d = %v, want %v", i, links[i], want[i])
		}
	}
	if got := mkPath("1.1.1.1").Links(); got != nil {
		t.Errorf("single-hop path links = %v", got)
	}
}

func TestPathSetDedup(t *testing.T) {
	s := NewPathSet(mkPath("1.1.1.1"), mkPath("1.1.1.1"), mkPath("2.2.2.2"))
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Add(mkPath("2.2.2.2")) {
		t.Error("duplicate Add should report false")
	}
	if !s.Add(mkPath("3.3.3.3")) {
		t.Error("fresh Add should report true")
	}
}

func TestPathSetZeroValueAdd(t *testing.T) {
	var s PathSet
	if !s.Add(mkPath("1.1.1.1")) {
		t.Error("zero-value PathSet Add failed")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSharesRoute(t *testing.T) {
	// The paper's false-difference example: A has {r1, r2}, B has {r2}.
	r1 := mkPath("1.1.1.1", "3.3.3.3")
	r2 := mkPath("2.2.2.2", "3.3.3.3")
	a := NewPathSet(r1, r2)
	b := NewPathSet(r2)
	if !a.SharesRoute(b, false) {
		t.Error("sets sharing r2 should share a route")
	}
	c := NewPathSet(mkPath("9.9.9.9", "3.3.3.3"))
	if a.SharesRoute(c, false) {
		t.Error("disjoint sets should not share a route")
	}
	// With wildcards, <*, 3.3.3.3> matches r1.
	d := NewPathSet(mkPath("*", "3.3.3.3"))
	if a.SharesRoute(d, false) {
		t.Error("exact comparison should reject wildcard path")
	}
	if !a.SharesRoute(d, true) {
		t.Error("wildcard comparison should accept wildcard path")
	}
}

func TestLastHops(t *testing.T) {
	s := NewPathSet(
		mkPath("1.1.1.1", "5.5.5.5"),
		mkPath("2.2.2.2", "5.5.5.5"),
		mkPath("2.2.2.2", "6.6.6.6"),
		mkPath("2.2.2.2", "*"),
	)
	hops, anyUnresp := s.LastHops()
	if !anyUnresp {
		t.Error("expected unresponsive last hop")
	}
	if len(hops) != 2 || hops[0] != ip("5.5.5.5") || hops[1] != ip("6.6.6.6") {
		t.Errorf("LastHops = %v", hops)
	}
}

func TestCommonPrefixDepth(t *testing.T) {
	a := NewPathSet(mkPath("1.1.1.1", "2.2.2.2", "3.3.3.3"))
	b := NewPathSet(mkPath("1.1.1.1", "2.2.2.2", "4.4.4.4"))
	if got := CommonPrefixDepth([]*PathSet{a, b}); got != 2 {
		t.Errorf("CommonPrefixDepth = %d, want 2", got)
	}
	c := NewPathSet(mkPath("9.9.9.9"))
	if got := CommonPrefixDepth([]*PathSet{a, c}); got != 0 {
		t.Errorf("CommonPrefixDepth disjoint = %d, want 0", got)
	}
	if got := CommonPrefixDepth(nil); got != 0 {
		t.Errorf("CommonPrefixDepth empty = %d", got)
	}
	// Identical sets: depth is the full length.
	if got := CommonPrefixDepth([]*PathSet{a, a}); got != 3 {
		t.Errorf("CommonPrefixDepth identical = %d, want 3", got)
	}
}

func TestDeepestCommonDepth(t *testing.T) {
	// Paths share a prefix, diverge at a flow diamond, reconverge at an
	// ingress, then diverge again toward last hops: the deepest common
	// hop is the ingress, not the (shallower) shared prefix.
	a := NewPathSet(
		mkPath("1.1.1.1", "2.2.2.2", "5.5.5.5", "7.7.7.7"),
		mkPath("1.1.1.1", "3.3.3.3", "5.5.5.5", "7.7.7.7"),
	)
	b := NewPathSet(
		mkPath("1.1.1.1", "2.2.2.2", "5.5.5.5", "8.8.8.8"),
		mkPath("1.1.1.1", "3.3.3.3", "5.5.5.5", "8.8.8.8"),
	)
	if got := DeepestCommonDepth([]*PathSet{a, b}); got != 3 {
		t.Errorf("DeepestCommonDepth = %d, want 3 (suffix after 5.5.5.5)", got)
	}
	// Within one set, the paths reconverge at the shared last hop
	// (position 3), so the whole length is common.
	if got := DeepestCommonDepth([]*PathSet{a, a}); got != 4 {
		t.Errorf("DeepestCommonDepth(identical set) = %d, want 4", got)
	}
	// Unresponsive hops never count as common.
	c := NewPathSet(mkPath("1.1.1.1", "*", "9.9.9.9"))
	d := NewPathSet(mkPath("1.1.1.1", "*", "6.6.6.6"))
	if got := DeepestCommonDepth([]*PathSet{c, d}); got != 1 {
		t.Errorf("DeepestCommonDepth with wildcard = %d, want 1", got)
	}
	if got := DeepestCommonDepth(nil); got != 0 {
		t.Errorf("empty DeepestCommonDepth = %d", got)
	}
	// Disjoint from position 0: nothing common.
	e := NewPathSet(mkPath("2.2.2.2"))
	if got := DeepestCommonDepth([]*PathSet{c, e}); got != 0 {
		t.Errorf("disjoint DeepestCommonDepth = %d", got)
	}
}

func TestSubPathKey(t *testing.T) {
	p := mkPath("1.1.1.1", "2.2.2.2", "3.3.3.3")
	if SubPathKey(p, 1) != Path(p[1:]).Key() {
		t.Error("SubPathKey mismatch")
	}
	if SubPathKey(p, 3) != "" || SubPathKey(p, 10) != "" {
		t.Error("past-end SubPathKey should be empty")
	}
}

func TestPathSetCloneIsolation(t *testing.T) {
	p := mkPath("1.1.1.1", "2.2.2.2")
	s := NewPathSet(p)
	p[0] = R(ip("9.9.9.9")) // mutate the original
	if s.Paths()[0][0].Addr != ip("1.1.1.1") {
		t.Error("PathSet must store a copy of added paths")
	}
}
