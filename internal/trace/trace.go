// Package trace defines the route representations shared by the prober and
// the Hobbit classifier: hops, paths, and sets of load-balanced paths, with
// the wildcard-aware comparison rules from Section 2.1 of the paper
// (unresponsive hops match any address) and the last-hop / sub-path / whole
// path metrics compared in Section 3.1.
package trace

import (
	"strconv"
	"strings"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

// Hop is one position in an IP-level route: either the address of the
// responding router interface, or an unresponsive hop ("*" in traceroute
// output) that acts as a wildcard in comparisons.
type Hop struct {
	Addr       iputil.Addr
	Responsive bool
}

// R is shorthand for a responsive hop, for fixtures and simulators.
func R(a iputil.Addr) Hop { return Hop{Addr: a, Responsive: true} }

// Star is the unresponsive wildcard hop.
var Star = Hop{}

// String renders the hop as traceroute would: the interface address, or "*".
func (h Hop) String() string {
	if !h.Responsive {
		return "*"
	}
	return h.Addr.String()
}

// Matches reports whether the two hops are compatible under the wildcard
// rule: any hop matches an unresponsive hop, and responsive hops match only
// if their addresses are equal.
func (h Hop) Matches(o Hop) bool {
	if !h.Responsive || !o.Responsive {
		return true
	}
	return h.Addr == o.Addr
}

// Path is an IP-level route: the sequence of router hops from (but not
// including) the source up to and including the destination's last-hop
// router. The destination itself is not part of the path.
type Path []Hop

// Equal reports exact hop-by-hop equality with no wildcard tolerance.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// MatchesWildcard reports whether two paths are considered identical under
// Section 2.1's rule: equal length, and every hop pair matches with
// unresponsive hops acting as wildcards.
func (p Path) MatchesWildcard(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if !p[i].Matches(q[i]) {
			return false
		}
	}
	return true
}

// LastHop returns the destination's last-hop router, which is the final hop
// of the path. ok is false when the path is empty or the last hop did not
// respond (the paper's "Unresponsive last-hop" category).
func (p Path) LastHop() (iputil.Addr, bool) {
	if len(p) == 0 {
		return 0, false
	}
	h := p[len(p)-1]
	return h.Addr, h.Responsive
}

// Key returns a canonical string encoding usable as a map key. Wildcards
// are encoded distinctly from any address. The encoding is appended to a
// stack buffer so building a key costs one string allocation, not one per
// hop.
func (p Path) Key() string {
	var stack [128]byte
	buf := stack[:0]
	if n := len(p) * 9; n > len(stack) {
		buf = make([]byte, 0, n)
	}
	for i, h := range p {
		if i > 0 {
			buf = append(buf, ',')
		}
		if !h.Responsive {
			buf = append(buf, '*')
		} else {
			buf = strconv.AppendUint(buf, uint64(h.Addr), 16)
		}
	}
	return string(buf)
}

// String renders the path like a one-line traceroute.
func (p Path) String() string {
	parts := make([]string, len(p))
	for i, h := range p {
		parts[i] = h.String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// Clone returns a copy of the path.
func (p Path) Clone() Path {
	q := make(Path, len(p))
	copy(q, p)
	return q
}

// Links returns the router-level links (ordered hop pairs) present in the
// path, skipping pairs with an unresponsive endpoint. This is the unit
// counted by the topology-discovery experiment (Figure 11).
func (p Path) Links() []Link {
	var links []Link
	for i := 0; i+1 < len(p); i++ {
		if p[i].Responsive && p[i+1].Responsive {
			links = append(links, Link{From: p[i].Addr, To: p[i+1].Addr})
		}
	}
	return links
}

// Link is a directed router-level adjacency discovered by traceroute.
type Link struct {
	From, To iputil.Addr
}

// PathSet is the set of distinct routes observed toward one destination
// (the output of Paris-traceroute MDA, which enumerates per-flow
// load-balanced paths).
type PathSet struct {
	paths []Path
	keys  map[string]struct{}
}

// NewPathSet builds a set from the given paths, deduplicating exact
// duplicates.
func NewPathSet(paths ...Path) *PathSet {
	s := &PathSet{keys: make(map[string]struct{}, len(paths))}
	for _, p := range paths {
		s.Add(p)
	}
	return s
}

// Add inserts a path if an exactly equal path is not already present and
// reports whether it was inserted.
func (s *PathSet) Add(p Path) bool {
	if s.keys == nil {
		s.keys = make(map[string]struct{})
	}
	k := p.Key()
	if _, dup := s.keys[k]; dup {
		return false
	}
	s.keys[k] = struct{}{}
	s.paths = append(s.paths, p.Clone())
	return true
}

// Len returns the number of distinct paths.
func (s *PathSet) Len() int { return len(s.paths) }

// Paths returns the distinct paths. The returned slice must not be
// modified.
func (s *PathSet) Paths() []Path { return s.paths }

// SharesRoute reports whether the two sets share at least one route, which
// is Section 2.1's criterion for two destinations having identical routes.
// If wildcard is true, unresponsive hops match any hop.
func (s *PathSet) SharesRoute(o *PathSet, wildcard bool) bool {
	for _, p := range s.paths {
		for _, q := range o.paths {
			if wildcard {
				if p.MatchesWildcard(q) {
					return true
				}
			} else if p.Equal(q) {
				return true
			}
		}
	}
	return false
}

// LastHops returns the set of distinct responsive last-hop routers across
// all paths, plus whether any path ended in an unresponsive hop.
func (s *PathSet) LastHops() (hops []iputil.Addr, anyUnresponsive bool) {
	seen := make(map[iputil.Addr]struct{})
	for _, p := range s.paths {
		a, ok := p.LastHop()
		if !ok {
			anyUnresponsive = true
			continue
		}
		if _, dup := seen[a]; !dup {
			seen[a] = struct{}{}
			hops = append(hops, a)
		}
	}
	iputil.SortAddrs(hops)
	return hops, anyUnresponsive
}

// CommonPrefixDepth returns the number of leading hops shared by every path
// in the union of the given sets, comparing responsive hops exactly. This
// locates "the routers that are common to all the destinations within /24
// and closest to the /24" for the sub-path metric of Figure 3b.
func CommonPrefixDepth(sets []*PathSet) int {
	var all []Path
	for _, s := range sets {
		all = append(all, s.paths...)
	}
	if len(all) == 0 {
		return 0
	}
	depth := 0
	for {
		if depth >= len(all[0]) {
			return depth
		}
		h := all[0][depth]
		for _, p := range all {
			if depth >= len(p) || p[depth] != h {
				return depth
			}
		}
		depth++
	}
}

// DeepestCommonDepth returns one past the deepest position at which every
// path in the union of the given sets carries the same responsive hop —
// i.e. the index where suffixes below "the router common to all the
// destinations and closest to the /24" begin. It returns 0 when no
// position is common.
func DeepestCommonDepth(sets []*PathSet) int {
	var all []Path
	minLen := -1
	for _, s := range sets {
		for _, p := range s.paths {
			all = append(all, p)
			if minLen < 0 || len(p) < minLen {
				minLen = len(p)
			}
		}
	}
	if len(all) == 0 {
		return 0
	}
	for pos := minLen - 1; pos >= 0; pos-- {
		h := all[0][pos]
		if !h.Responsive {
			continue
		}
		same := true
		for _, p := range all[1:] {
			if p[pos] != h {
				same = false
				break
			}
		}
		if same {
			return pos + 1
		}
	}
	return 0
}

// SubPathKey returns a canonical key for the path suffix starting at depth,
// used to count sub-path cardinality.
func SubPathKey(p Path, depth int) string {
	if depth >= len(p) {
		return ""
	}
	return Path(p[depth:]).Key()
}
