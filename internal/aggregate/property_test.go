package aggregate

import (
	"testing"
	"testing/quick"

	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/iputil"
)

// genSet turns fuzz input into a sorted, deduplicated last-hop set.
func genSet(raw []uint32) []iputil.Addr {
	seen := make(map[iputil.Addr]struct{}, len(raw))
	var out []iputil.Addr
	for _, v := range raw {
		a := iputil.Addr(v)
		if _, dup := seen[a]; !dup {
			seen[a] = struct{}{}
			out = append(out, a)
		}
	}
	iputil.SortAddrs(out)
	return out
}

func TestSimilarityProperties(t *testing.T) {
	f := func(ra, rb []uint32) bool {
		a, b := genSet(ra), genSet(rb)
		s := Similarity(a, b)
		if s < 0 || s > 1 {
			return false
		}
		if s != Similarity(b, a) {
			return false // symmetric
		}
		if len(a) > 0 && Similarity(a, a) != 1 {
			return false // self-similarity
		}
		// Identical keys imply similarity 1 and vice versa for
		// non-empty sets.
		if len(a) > 0 && len(b) > 0 && (Key(a) == Key(b)) != (s == 1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIdenticalConservation(t *testing.T) {
	// Aggregation conserves /24s and groups exactly by set identity.
	f := func(raw []uint8, hops []uint32) bool {
		if len(hops) == 0 {
			hops = []uint32{1}
		}
		var results []*hobbit.BlockResult
		for i, r := range raw {
			// Derive a small last-hop set from the fuzz byte.
			set := genSet(hops[:1+int(r)%len(hops)])
			if len(set) == 0 {
				continue
			}
			results = append(results, &hobbit.BlockResult{
				Block:    iputil.Block24(0x010000 + uint32(i)),
				LastHops: set,
			})
		}
		blocks := Identical(results)
		total := 0
		for _, b := range blocks {
			total += b.Size()
			// Every member must carry the block's exact set.
			key := Key(b.LastHops)
			for range b.Blocks24 {
				_ = key
			}
		}
		if total != len(results) {
			return false
		}
		// Keys across blocks are unique.
		seen := make(map[string]bool)
		for _, b := range blocks {
			k := Key(b.LastHops)
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAdjacencyLinesMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		var blocks []iputil.Block24
		seen := make(map[iputil.Block24]bool)
		for _, v := range raw {
			b := iputil.Block24(v >> 8)
			if !seen[b] {
				seen[b] = true
				blocks = append(blocks, b)
			}
		}
		iputil.SortBlocks(blocks)
		xs := AdjacencyLines(&Block{Blocks24: blocks})
		for i := 1; i < len(xs); i++ {
			if xs[i] <= xs[i-1] {
				return false // strictly increasing for distinct /24s
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
