// Package aggregate implements Section 5: merging homogeneous /24 blocks
// that share identical last-hop-router sets into larger homogeneous
// blocks, plus the numerical-adjacency analyses of Section 5.3
// (Figures 5, 7 and 8).
package aggregate

import (
	"strconv"
	"strings"

	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/stats"
)

// Block is one aggregated homogeneous block: a set of /24s observed to
// share exactly the same set of last-hop routers.
type Block struct {
	// ID is a dense index assigned by Identical.
	ID int
	// Blocks24 lists the member /24s in ascending order.
	Blocks24 []iputil.Block24
	// LastHops is the shared last-hop set in ascending order.
	LastHops []iputil.Addr
}

// Size returns the number of member /24s.
func (b *Block) Size() int { return len(b.Blocks24) }

// Key canonicalizes a sorted last-hop set for identity comparison: two
// sets are identical iff their sizes match and every member of one is in
// the other (footnote 9 of the paper), which for sorted sets is string
// equality of this encoding.
func Key(lastHops []iputil.Addr) string {
	var sb strings.Builder
	sb.Grow(len(lastHops) * 9)
	for i, a := range lastHops {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatUint(uint64(a), 16))
	}
	return sb.String()
}

// Identical aggregates measurement results by identical last-hop sets.
// Results with empty last-hop sets are skipped. Output blocks are ordered
// by their smallest member /24; member lists and last-hop sets are sorted.
func Identical(results []*hobbit.BlockResult) []*Block {
	return IdenticalInterned(results, NewInterner())
}

// IdenticalInterned is Identical drawing its last-hop storage from the
// given interner: every output block's LastHops is the interner's
// canonical slice for its set, so blocks with equal sets — within this
// call and across calls sharing the interner — alias the same backing
// array.
func IdenticalInterned(results []*hobbit.BlockResult, in *Interner) []*Block {
	bd := NewBuilder(in)
	for _, r := range results {
		bd.Add(r)
	}
	return bd.Finish()
}

// Builder is the incremental form of IdenticalInterned: results are
// folded in one at a time as a pipelined campaign emits them, and Finish
// seals the aggregation. Feeding a Builder the same results in the same
// order as an IdenticalInterned call produces exactly its output — group
// membership, block order, member sorting, and dense IDs — which is what
// lets the streaming pipeline aggregate against the measurement campaign
// without a barrier and still stay byte-identical to the materialized
// path.
type Builder struct {
	in    *Interner
	byKey map[string]*Block
	order []*Block
}

// NewBuilder returns an empty builder drawing last-hop storage from in.
func NewBuilder(in *Interner) *Builder {
	return &Builder{in: in, byKey: make(map[string]*Block)}
}

// Add folds one measurement result into the aggregation. Results with
// empty last-hop sets are skipped, exactly as Identical skips them
// (returning nil, false). Otherwise it returns the aggregate the result
// landed in and whether this call created it — the delta signal the
// streaming clusterer keys its incremental graph build on: a new
// aggregate is a new similarity-graph vertex (its LastHops are final the
// moment it is created), while a repeat only grows a member list, which
// no edge depends on.
func (bd *Builder) Add(r *hobbit.BlockResult) (*Block, bool) {
	if len(r.LastHops) == 0 {
		return nil, false
	}
	set, k := bd.in.Intern(r.LastHops)
	blk, ok := bd.byKey[k]
	if !ok {
		blk = &Block{LastHops: set}
		bd.byKey[k] = blk
		bd.order = append(bd.order, blk)
	}
	blk.Blocks24 = append(blk.Blocks24, r.Block)
	return blk, !ok
}

// Finish sorts every block's member list, assigns dense IDs in
// first-seen order, and returns the aggregated blocks. The builder must
// not be used after Finish.
func (bd *Builder) Finish() []*Block {
	for i, b := range bd.order {
		iputil.SortBlocks(b.Blocks24)
		b.ID = i
	}
	return bd.order
}

// SizeHistogram tallies aggregate sizes in /24s — the series of Figure 5.
func SizeHistogram(blocks []*Block) *stats.Histogram {
	h := stats.NewHistogram()
	for _, b := range blocks {
		h.Add(b.Size())
	}
	return h
}

// AdjacentLCPs returns the longest-common-prefix lengths (0..23) between
// numerically adjacent member /24s — Figure 7a's distribution. Blocks of
// size 1 contribute nothing.
func AdjacentLCPs(b *Block) []int {
	if b.Size() < 2 {
		return nil
	}
	out := make([]int, 0, b.Size()-1)
	for i := 1; i < len(b.Blocks24); i++ {
		l := iputil.CommonPrefixLen24(b.Blocks24[i-1], b.Blocks24[i])
		if l > 23 {
			l = 23
		}
		out = append(out, l)
	}
	return out
}

// MinMaxLCP returns the longest common prefix length between the smallest
// and largest member /24s — Figure 7b's metric. ok is false for blocks of
// size < 2.
func MinMaxLCP(b *Block) (int, bool) {
	if b.Size() < 2 {
		return 0, false
	}
	l := iputil.CommonPrefixLen24(b.Blocks24[0], b.Blocks24[len(b.Blocks24)-1])
	if l > 23 {
		l = 23
	}
	return l, true
}

// AdjacencyLines computes the Figure 8 visualization coordinates: for the
// sorted member list {p1..pn}, x1 = 1 and xi = x(i-1) + (24 -
// LCPLEN(p(i-1), pi)), so the gap between consecutive lines grows as
// adjacency falls.
func AdjacencyLines(b *Block) []float64 {
	if b.Size() == 0 {
		return nil
	}
	xs := make([]float64, b.Size())
	xs[0] = 1
	for i := 1; i < len(b.Blocks24); i++ {
		lcp := iputil.CommonPrefixLen24(b.Blocks24[i-1], b.Blocks24[i])
		xs[i] = xs[i-1] + float64(24-lcp)
	}
	return xs
}

// TopBySize returns the n largest blocks, ties broken by smallest member,
// for the Table 5 characterization.
func TopBySize(blocks []*Block, n int) []*Block {
	sorted := append([]*Block(nil), blocks...)
	// Simple selection sort of the top n (n is small, e.g. 15).
	for i := 0; i < n && i < len(sorted); i++ {
		best := i
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j].Size() > sorted[best].Size() ||
				(sorted[j].Size() == sorted[best].Size() &&
					len(sorted[j].Blocks24) > 0 && len(sorted[best].Blocks24) > 0 &&
					sorted[j].Blocks24[0] < sorted[best].Blocks24[0]) {
				best = j
			}
		}
		sorted[i], sorted[best] = sorted[best], sorted[i]
	}
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// Similarity is the Section 6.3 score between two sorted last-hop sets:
// |A ∩ B| / max(|A|, |B|).
func Similarity(a, b []iputil.Addr) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	max := len(a)
	if len(b) > max {
		max = len(b)
	}
	return float64(inter) / float64(max)
}
