package aggregate

import (
	"github.com/hobbitscan/hobbit/internal/iputil"
)

// Interner deduplicates last-hop router sets: every distinct set is stored
// once, as a single canonical sorted []iputil.Addr plus its Key encoding,
// and every block observed to share that set points at the same backing
// slice. A 64.45M-destination campaign observes the same few last-hop sets
// millions of times, so interning collapses the aggregation and clustering
// stages' dominant storage cost to one copy per distinct set. Interned
// slices are shared and must be treated as immutable.
//
// An Interner is not safe for concurrent use; the pipeline threads one
// through its serial aggregation and merge steps.
type Interner struct {
	byKey map[string]internEnt
}

type internEnt struct {
	set []iputil.Addr
	key string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{byKey: make(map[string]internEnt)}
}

// Intern returns the canonical slice and Key for the given sorted last-hop
// set. The first caller to present a set pays one copy; every later caller
// with an equal set gets the same backing slice and the same key string.
// The input slice is not retained.
func (in *Interner) Intern(set []iputil.Addr) ([]iputil.Addr, string) {
	k := Key(set)
	if e, ok := in.byKey[k]; ok {
		return e.set, e.key
	}
	e := internEnt{set: append([]iputil.Addr(nil), set...), key: k}
	in.byKey[k] = e
	return e.set, e.key
}

// Len returns the number of distinct sets interned so far.
func (in *Interner) Len() int { return len(in.byKey) }
