package aggregate

import (
	"testing"

	"github.com/hobbitscan/hobbit/internal/hobbit"
)

// TestInternSharing pins the interning contract: two blocks with equal
// last-hop sets — within one aggregation and across aggregations sharing
// the interner — alias the same backing slice.
func TestInternSharing(t *testing.T) {
	in := NewInterner()
	first := IdenticalInterned([]*hobbit.BlockResult{
		res("10.0.0.0", "1.1.1.1", "2.2.2.2"),
		res("10.0.1.0", "3.3.3.3"),
	}, in)
	second := IdenticalInterned([]*hobbit.BlockResult{
		res("10.0.2.0", "2.2.2.2", "1.1.1.1"),
	}, in)
	if len(first) != 2 || len(second) != 1 {
		t.Fatalf("aggregation shape: %d, %d blocks", len(first), len(second))
	}
	a, b := first[0].LastHops, second[0].LastHops
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("last-hop sets: %v, %v", a, b)
	}
	if &a[0] != &b[0] {
		t.Error("equal last-hop sets do not share a backing slice")
	}
	if &a[0] == &first[1].LastHops[0] {
		t.Error("distinct sets must not share storage")
	}
	if in.Len() != 2 {
		t.Errorf("interner holds %d sets, want 2", in.Len())
	}
}

// TestInternCanonical checks Intern's basic contract directly.
func TestInternCanonical(t *testing.T) {
	in := NewInterner()
	input := hops("9.9.9.9", "8.8.8.8")
	s1, k1 := in.Intern(input)
	input[0] = 0 // the interner must not retain the caller's slice
	s2, k2 := in.Intern(hops("9.9.9.9", "8.8.8.8"))
	if k1 != k2 {
		t.Fatalf("keys differ: %q vs %q", k1, k2)
	}
	if &s1[0] != &s2[0] {
		t.Error("second Intern did not return the canonical slice")
	}
	want := hops("9.9.9.9", "8.8.8.8")
	for i := range want {
		if s2[i] != want[i] {
			t.Fatalf("canonical slice corrupted: %v", s2)
		}
	}
}
