package aggregate

import (
	"testing"

	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/iputil"
)

func ip(s string) iputil.Addr     { return iputil.MustParseAddr(s) }
func b24(s string) iputil.Block24 { return iputil.MustParseBlock24(s) }
func hops(ss ...string) []iputil.Addr {
	out := make([]iputil.Addr, len(ss))
	for i, s := range ss {
		out[i] = ip(s)
	}
	iputil.SortAddrs(out)
	return out
}

func res(block string, lastHops ...string) *hobbit.BlockResult {
	return &hobbit.BlockResult{Block: b24(block), LastHops: hops(lastHops...)}
}

func TestKeyIdentity(t *testing.T) {
	a := Key(hops("1.1.1.1", "2.2.2.2"))
	b := Key(hops("2.2.2.2", "1.1.1.1"))
	if a != b {
		t.Error("Key must be order-insensitive for sorted inputs")
	}
	if Key(hops("1.1.1.1")) == Key(hops("1.1.1.1", "2.2.2.2")) {
		t.Error("different sizes must differ")
	}
	// No separator ambiguity: {0x12, 0x34} vs {0x1234}.
	if Key([]iputil.Addr{0x12, 0x34}) == Key([]iputil.Addr{0x1234}) {
		t.Error("key collision between distinct sets")
	}
}

func TestIdenticalAggregation(t *testing.T) {
	results := []*hobbit.BlockResult{
		res("1.0.0.0", "9.9.9.1", "9.9.9.2"),
		res("1.0.5.0", "9.9.9.2", "9.9.9.1"), // same set, different order
		res("2.0.0.0", "9.9.9.1"),            // subset: NOT identical
		res("3.0.0.0", "8.8.8.8"),
		{Block: b24("4.0.0.0")}, // empty set skipped
	}
	blocks := Identical(results)
	if len(blocks) != 3 {
		t.Fatalf("aggregated into %d blocks", len(blocks))
	}
	if blocks[0].Size() != 2 || blocks[0].Blocks24[0] != b24("1.0.0.0") || blocks[0].Blocks24[1] != b24("1.0.5.0") {
		t.Errorf("first block = %+v", blocks[0])
	}
	if blocks[1].Size() != 1 || blocks[2].Size() != 1 {
		t.Error("subset and disjoint sets must not merge")
	}
	for i, b := range blocks {
		if b.ID != i {
			t.Errorf("ID %d != %d", b.ID, i)
		}
	}
}

func TestSizeHistogram(t *testing.T) {
	blocks := []*Block{
		{Blocks24: make([]iputil.Block24, 1)},
		{Blocks24: make([]iputil.Block24, 1)},
		{Blocks24: make([]iputil.Block24, 7)},
	}
	h := SizeHistogram(blocks)
	if h.Count(1) != 2 || h.Count(7) != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestAdjacencyMetrics(t *testing.T) {
	b := &Block{Blocks24: []iputil.Block24{
		b24("10.0.0.0"), b24("10.0.1.0"), // adjacent: LCP 23
		b24("10.4.0.0"), // LCP(10.0.1.0, 10.4.0.0) = 13
	}}
	lcps := AdjacentLCPs(b)
	if len(lcps) != 2 || lcps[0] != 23 || lcps[1] != 13 {
		t.Errorf("AdjacentLCPs = %v", lcps)
	}
	mm, ok := MinMaxLCP(b)
	if !ok || mm != 13 {
		t.Errorf("MinMaxLCP = %d, %v", mm, ok)
	}
	if _, ok := MinMaxLCP(&Block{Blocks24: []iputil.Block24{b24("10.0.0.0")}}); ok {
		t.Error("singleton MinMaxLCP should be !ok")
	}
	if AdjacentLCPs(&Block{}) != nil {
		t.Error("empty AdjacentLCPs should be nil")
	}
}

func TestAdjacencyLines(t *testing.T) {
	b := &Block{Blocks24: []iputil.Block24{
		b24("10.0.0.0"), b24("10.0.1.0"), b24("10.4.0.0"),
	}}
	xs := AdjacencyLines(b)
	// x1 = 1; x2 = 1 + (24-23) = 2; x3 = 2 + (24-13) = 13.
	if len(xs) != 3 || xs[0] != 1 || xs[1] != 2 || xs[2] != 13 {
		t.Errorf("AdjacencyLines = %v", xs)
	}
	if AdjacencyLines(&Block{}) != nil {
		t.Error("empty block should have no lines")
	}
}

func TestTopBySize(t *testing.T) {
	blocks := []*Block{
		{ID: 0, Blocks24: make([]iputil.Block24, 3)},
		{ID: 1, Blocks24: make([]iputil.Block24, 9)},
		{ID: 2, Blocks24: make([]iputil.Block24, 5)},
	}
	top := TopBySize(blocks, 2)
	if len(top) != 2 || top[0].ID != 1 || top[1].ID != 2 {
		t.Errorf("TopBySize = %v, %v", top[0].ID, top[1].ID)
	}
	if got := TopBySize(blocks, 10); len(got) != 3 {
		t.Errorf("over-asking should return all: %d", len(got))
	}
	// Input order preserved.
	if blocks[0].ID == blocks[1].ID {
		t.Error("input mutated")
	}
}

func TestSimilarity(t *testing.T) {
	// The paper's example: {1.1.1.1, 2.2.2.2, 3.3.3.3} vs {3.3.3.3,
	// 4.4.4.4} scores 1/3.
	a := hops("1.1.1.1", "2.2.2.2", "3.3.3.3")
	b := hops("3.3.3.3", "4.4.4.4")
	if got := Similarity(a, b); got != 1.0/3.0 {
		t.Errorf("Similarity = %v, want 1/3", got)
	}
	if Similarity(a, a) != 1 {
		t.Error("self similarity should be 1")
	}
	if Similarity(a, hops("9.9.9.9")) != 0 {
		t.Error("disjoint similarity should be 0")
	}
	if Similarity(nil, a) != 0 {
		t.Error("empty set similarity should be 0")
	}
	if Similarity(a, b) != Similarity(b, a) {
		t.Error("similarity must be symmetric")
	}
}
