// Package core is the public face of the Hobbit reproduction: one Pipeline
// that runs the paper end to end — census scan, per-/24 homogeneity
// measurement, identical-set aggregation, MCL clustering of similar
// blocks, and reprobe validation — over any probing surface.
//
// The stages can also be driven individually through the packages they
// live in (zmap, hobbit, aggregate, cluster); Pipeline wires them together
// with the paper's defaults.
package core

import (
	"errors"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/cluster"
	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/zmap"
)

// Pipeline configures an end-to-end run.
type Pipeline struct {
	// Net answers measurement-time probes; Scanner answers census-time
	// echo requests. A netsim.World (wrapped in probe.SimNetwork for
	// Net) satisfies both.
	Net     probe.Network
	Scanner zmap.Scanner
	// Blocks is the /24 universe to consider.
	Blocks []iputil.Block24
	// Seed drives the deterministic shuffles and samples.
	Seed uint64
	// Workers bounds measurement concurrency (0 = GOMAXPROCS).
	Workers int
	// MDAOpts tunes the per-destination MDA runs.
	MDAOpts probe.MDAOptions
	// Terminator overrides the hierarchical-sufficiency rule (nil uses
	// the MDA stopping rule; a confidence.Table reproduces Figure 4's).
	Terminator hobbit.Terminator
	// MinActive is the census/probe-time eligibility threshold (4).
	MinActive int
	// ValidatePairs bounds reprobed pairs per cluster (the paper uses
	// 20,000; 0 means all pairs).
	ValidatePairs int
	// SkipClustering stops after identical-set aggregation.
	SkipClustering bool
}

// Output carries every intermediate and final artifact of a run.
type Output struct {
	// Dataset is the census result; Eligible the /24s meeting the
	// selection criteria.
	Dataset  *zmap.Dataset
	Eligible []iputil.Block24
	// Campaign is the per-/24 measurement result.
	Campaign *hobbit.Result
	// Aggregates are the Section 5 identical-set blocks.
	Aggregates []*aggregate.Block
	// Clustering and Validations are the Section 6 artifacts (nil when
	// SkipClustering). Validated records which clusters were accepted
	// for merging.
	Clustering  *cluster.Result
	Validations map[int]cluster.Validation
	Validated   map[int]bool
	// Final is the post-validation block list: validated clusters
	// merged, everything else passed through.
	Final []*aggregate.Block
}

func (p *Pipeline) minActive() int {
	if p.MinActive > 0 {
		return p.MinActive
	}
	return 4
}

// Run executes the pipeline.
func (p *Pipeline) Run() (*Output, error) {
	if p.Net == nil || p.Scanner == nil {
		return nil, errors.New("core: Pipeline needs Net and Scanner")
	}
	if len(p.Blocks) == 0 {
		return nil, errors.New("core: no blocks to measure")
	}
	out := &Output{}
	out.Dataset = zmap.Scan(p.Scanner, p.Blocks)
	out.Eligible = out.Dataset.EligibleBlocks(p.Blocks, p.minActive())

	measurer := &hobbit.Measurer{
		Net:       p.Net,
		Opts:      p.MDAOpts,
		Term:      p.Terminator,
		MinActive: p.minActive(),
		Seed:      p.Seed,
	}
	campaign := &hobbit.Campaign{Measurer: measurer, Dataset: out.Dataset, Workers: p.Workers}
	out.Campaign = campaign.Run(out.Eligible)

	out.Aggregates = aggregate.Identical(out.Campaign.HomogeneousBlocks())
	if p.SkipClustering {
		out.Final = out.Aggregates
		return out, nil
	}

	pipe := &cluster.Pipeline{Seed: p.Seed}
	out.Clustering = pipe.Run(out.Aggregates)

	rp := &exhaustiveReprober{m: &hobbit.Measurer{
		Net:        p.Net,
		Opts:       p.MDAOpts,
		Term:       p.Terminator,
		MinActive:  p.minActive(),
		Seed:       p.Seed,
		Exhaustive: true,
	}, ds: out.Dataset}
	out.Validations = make(map[int]cluster.Validation, len(out.Clustering.Clusters))
	validated := make(map[int]bool)
	for _, c := range out.Clustering.Clusters {
		v := cluster.Validate(c, rp, p.ValidatePairs, p.Seed)
		out.Validations[c.ID] = v
		// Accept the paper's strict all-pairs-identical criterion, or a
		// dominant modal set: availability churn leaves a few members
		// of a truly homogeneous cluster with incomplete observations,
		// and a >=90% modal agreement cannot come from a cluster that
		// wrongly mixed two aggregates.
		if v.Homogeneous || (v.Reprobed >= 4 && v.ModalShare >= 0.9) {
			validated[c.ID] = true
		}
	}
	out.Validated = validated
	out.Final = cluster.ApplyValidated(out.Clustering, validated)
	return out, nil
}

// exhaustiveReprober adapts the Section 6.5 modified probing strategy to
// the cluster.Reprober interface.
type exhaustiveReprober struct {
	m  *hobbit.Measurer
	ds *zmap.Dataset
}

// Reprobe measures the block exhaustively and returns its observed
// last-hop set (nil when the block no longer answers usefully).
func (r *exhaustiveReprober) Reprobe(b iputil.Block24) []iputil.Addr {
	br := r.m.MeasureBlock(b, r.ds.ActivesBy26(b))
	return br.LastHops
}
