// Package core is the public face of the Hobbit reproduction: one Pipeline
// that runs the paper end to end — census scan, per-/24 homogeneity
// measurement, identical-set aggregation, MCL clustering of similar
// blocks, and reprobe validation — over any probing surface.
//
// The stages can also be driven individually through the packages they
// live in (zmap, hobbit, aggregate, cluster); Pipeline wires them together
// with the paper's defaults. A run is observable through the optional
// telemetry registry (per-stage spans, probe/ping counters, progress
// events) and cancellable through its context: Run checks ctx between
// stages and between blocks inside the measurement campaign, returning
// the artifacts completed so far alongside ctx.Err().
package core

import (
	"context"
	"errors"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/cluster"
	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/parallel"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/telemetry"
	"github.com/hobbitscan/hobbit/internal/zmap"
)

// Stage names used for spans and per-stage probe attribution.
const (
	StageCensus    = "census"
	StageMeasure   = "measure"
	StageAggregate = "aggregate"
	StageCluster   = "cluster"
	StageValidate  = "validate"
)

// Pipeline configures an end-to-end run.
type Pipeline struct {
	// Net answers measurement-time probes; Scanner answers census-time
	// echo requests. A netsim.World (wrapped in probe.SimNetwork for
	// Net) satisfies both. Wrapping Net in probe.Instrument additionally
	// attributes every probe to the pipeline stage that sent it.
	Net     probe.Network
	Scanner zmap.Scanner
	// Blocks is the /24 universe to consider.
	Blocks []iputil.Block24
	// Seed drives the deterministic shuffles and samples.
	Seed uint64
	// Options are the serializable run knobs (worker bounds, MDA tuning,
	// eligibility threshold, validation budget, clustering switch). The
	// embedding promotes every knob, so p.Workers and friends read and
	// assign exactly as they did when the fields lived on Pipeline
	// directly; construction sites spell the nested literal.
	Options
	// StreamChunk, when > 0, runs the census as a zmap.Stream of
	// StreamChunk-block chunks and pipelines it against the measurement
	// campaign and incremental aggregation, instead of materializing
	// each stage before the next begins. It is an execution strategy
	// like the worker counts, not behaviour: every artifact and counter
	// is byte-identical to a materialized run (DESIGN.md §4d), which is
	// why it lives on Pipeline next to the other local resource-shaping
	// fields rather than in the serializable Options. Use it when the
	// block universe is large enough (100k+) that holding the full
	// census and campaign intermediates would dominate memory.
	StreamChunk int
	// ResultSink, when non-nil, receives every per-/24 measurement result
	// in campaign order as soon as it is final — before clustering and
	// validation run — so callers can stream results to disk instead of
	// holding a rendered report for the whole run. The callback runs on
	// the collector goroutine (never concurrently) and must not retain
	// the pointer past the call if it mutates.
	ResultSink func(*hobbit.BlockResult)
	// Terminator overrides the hierarchical-sufficiency rule (nil uses
	// the MDA stopping rule; a confidence.Table reproduces Figure 4's).
	Terminator hobbit.Terminator
	// Telemetry records per-stage spans, counters, and histograms for
	// the run; nil disables observation. Counter state is deterministic
	// for a fixed Seed (see telemetry.Registry.MarshalCounters).
	Telemetry *telemetry.Registry
	// Progress receives live measurement progress events; nil disables
	// them.
	Progress telemetry.Sink
}

// Output carries every intermediate and final artifact of a run.
type Output struct {
	// Dataset is the census result; Eligible the /24s meeting the
	// selection criteria.
	Dataset  *zmap.Dataset
	Eligible []iputil.Block24
	// Campaign is the per-/24 measurement result.
	Campaign *hobbit.Result
	// Aggregates are the Section 5 identical-set blocks.
	Aggregates []*aggregate.Block
	// LowConfidence lists homogeneous-looking blocks excluded from
	// aggregation because their measurements exhausted the adaptive
	// probing budget (hobbit.BlockResult.LowConfidence), in campaign
	// order. Empty unless a fault plan (or real adversity) degraded the
	// run.
	LowConfidence []iputil.Block24
	// Clustering and Validations are the Section 6 artifacts (nil when
	// SkipClustering). Validated records which clusters were accepted
	// for merging.
	Clustering  *cluster.Result
	Validations map[int]cluster.Validation
	Validated   map[int]bool
	// Final is the post-validation block list: validated clusters
	// merged, everything else passed through.
	Final []*aggregate.Block
}

func (p *Pipeline) minActive() int {
	if p.MinActive > 0 {
		return p.MinActive
	}
	return 4
}

// MinActiveOrDefault resolves the census eligibility threshold exactly
// as Run does (0 means the paper's default of 4). The monitor replays
// the census selection epoch over epoch and must agree with Run on it.
func (p *Pipeline) MinActiveOrDefault() int { return p.minActive() }

// Measurer builds the same per-block Measurer a Run would use —
// exhaustive=false for the measurement campaign, exhaustive=true for
// reprobe validation — so incremental drivers measure byte-identically
// to a from-scratch run.
func (p *Pipeline) Measurer(exhaustive bool) *hobbit.Measurer {
	return p.newMeasurer(exhaustive)
}

// newMeasurer builds the per-block Measurer shared by the measurement
// campaign (exhaustive=false) and the Section 6.5 reprobe validation
// (exhaustive=true), so every option — probing surface, MDA tuning,
// terminator, eligibility threshold, seed — is set in exactly one place.
func (p *Pipeline) newMeasurer(exhaustive bool) *hobbit.Measurer {
	return &hobbit.Measurer{
		Net:        p.Net,
		Opts:       p.MDA,
		Term:       p.Terminator,
		MinActive:  p.minActive(),
		Seed:       p.Seed,
		Exhaustive: exhaustive,
	}
}

// setStage attributes subsequent probes on the probing surface to the
// named stage, when the surface supports attribution.
func (p *Pipeline) setStage(stage string) {
	if s, ok := p.Net.(interface{ SetStage(string) }); ok {
		s.SetStage(stage)
	}
}

// Run executes the pipeline. It checks ctx between stages (and, inside
// the measurement campaign, between blocks): on cancellation it returns
// the Output artifacts completed so far together with ctx.Err(), so a
// partial run remains inspectable.
func (p *Pipeline) Run(ctx context.Context) (*Output, error) {
	if p.Net == nil || p.Scanner == nil {
		return nil, errors.New("core: Pipeline needs Net and Scanner")
	}
	if len(p.Blocks) == 0 {
		return nil, errors.New("core: no blocks to measure")
	}
	if err := p.Options.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateStreamChunk(p.StreamChunk); err != nil {
		return nil, err
	}
	if p.StreamChunk > 0 {
		return p.runStreamed(ctx)
	}
	reg := p.Telemetry
	out := &Output{}

	span := reg.StartSpan(StageCensus)
	out.Dataset = zmap.ScanWith(p.Scanner, p.Blocks, zmap.ScanOptions{Workers: p.CensusWorkers, Telemetry: reg})
	out.Eligible = out.Dataset.EligibleBlocks(p.Blocks, p.minActive())
	reg.Counter("census.eligible_blocks").Add(int64(len(out.Eligible)))
	span.End()
	if err := ctx.Err(); err != nil {
		return out, err
	}

	span = reg.StartSpan(StageMeasure)
	p.setStage(StageMeasure)
	campaign := &hobbit.Campaign{
		Measurer:  p.newMeasurer(false),
		Dataset:   out.Dataset,
		Workers:   p.Workers,
		Telemetry: reg,
		Progress:  p.Progress,
		Stage:     StageMeasure,
	}
	res, err := campaign.Run(ctx, out.Eligible)
	out.Campaign = res
	span.End()
	if p.ResultSink != nil && res != nil {
		for _, b := range res.Order {
			p.ResultSink(res.Blocks[b])
		}
	}
	if err != nil {
		return out, err
	}

	span = reg.StartSpan(StageAggregate)
	homogeneous := out.Campaign.HomogeneousBlocks()
	// One interner backs both the aggregation and the post-validation
	// merge, so every block that shares a last-hop set — before and after
	// cluster merging — shares one canonical slice.
	interner := aggregate.NewInterner()
	builder := aggregate.NewBuilder(interner)
	str := p.clusterStream()
	homogeneousIn := 0
	// Graceful degradation: verdicts that rest on budget-exhausted
	// measurements stay in the campaign result for reporting but are
	// kept out of aggregation, so one faulted window cannot poison a
	// multi-/24 aggregate. The loop preserves campaign order, so the
	// exclusion list — like every other artifact — is byte-identical
	// across worker counts, and the streaming clusterer observes the
	// exact aggregate-delta sequence the pipelined path feeds it (same
	// logical clock, so its seal counters match too).
	for _, br := range homogeneous {
		if br.LowConfidence() {
			out.LowConfidence = append(out.LowConfidence, br.Block)
			continue
		}
		homogeneousIn++
		blk, isNew := builder.Add(br)
		if str != nil && blk != nil {
			str.Observe(blk, isNew)
		}
	}
	out.Aggregates = builder.Finish()
	reg.Counter("aggregate.homogeneous_in").Add(int64(homogeneousIn))
	reg.Counter("aggregate.low_confidence_excluded").Add(int64(len(out.LowConfidence)))
	reg.Counter("aggregate.blocks_out").Add(int64(len(out.Aggregates)))
	span.End()
	return p.finishRun(ctx, out, interner, str)
}

// clusterStream starts the incremental clustering stage — nil when the
// run skips clustering. Both run shapes create it before their
// aggregation loop and feed it one Observe per kept homogeneous result,
// so graph construction and per-component MCL overlap whatever stage is
// still producing aggregates.
func (p *Pipeline) clusterStream() *cluster.Streamer {
	if p.SkipClustering {
		return nil
	}
	pipe := &cluster.Pipeline{Seed: p.Seed, Workers: p.ClusterWorkers, Telemetry: p.Telemetry}
	return pipe.Stream()
}

// finishRun executes the barrier-synchronized tail every run shape
// shares — the parameter-sweep merge and reprobe validation need the
// complete aggregate set, so the streamed and materialized paths
// converge here. str is the incremental clustering stage both paths fed
// during aggregation (nil when SkipClustering); Finish joins its worker
// pool, runs MCL on whatever components were not sealed early, and
// merges the inflation sweep.
func (p *Pipeline) finishRun(ctx context.Context, out *Output, interner *aggregate.Interner, str *cluster.Streamer) (*Output, error) {
	reg := p.Telemetry
	if p.SkipClustering {
		out.Final = out.Aggregates
		return out, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		str.Abort()
		return out, err
	}

	span := reg.StartSpan(StageCluster)
	out.Clustering = str.Finish()
	span.End()
	if err := ctx.Err(); err != nil {
		return out, err
	}

	span = reg.StartSpan(StageValidate)
	defer span.End()
	p.setStage(StageValidate)
	rp := &exhaustiveReprober{m: p.newMeasurer(true), ds: out.Dataset}
	pairsChecked := reg.Counter("validate.pairs_checked")
	identicalPairs := reg.Counter("validate.identical_pairs")
	reprobed := reg.Counter("validate.blocks_reprobed")
	accepted := reg.Counter("validate.clusters_validated")
	// Clusters validate independently (each owns its member /24s, and
	// reprobe randomness is keyed by cluster ID), so they fan out over
	// the pool; the measurer and probing surface are the same
	// concurrency-safe objects the measurement campaign already shares
	// across workers. Results land in per-cluster slots and merge below
	// in cluster-ID order, so counters and maps tally identically whether
	// the run was serial or sharded.
	clusters := out.Clustering.Clusters
	vals := make([]cluster.Validation, len(clusters))
	done := make([]bool, len(clusters))
	pool := parallel.Pool{Workers: p.ClusterWorkers, Telemetry: reg, Stage: StageValidate}
	perr := pool.ForEach(ctx, len(clusters), func(i int) {
		vals[i] = cluster.Validate(clusters[i], rp, p.ValidatePairs, p.Seed)
		done[i] = true
	})
	out.Validations = make(map[int]cluster.Validation, len(clusters))
	validated := make(map[int]bool)
	for i, c := range clusters {
		if !done[i] {
			continue
		}
		v := vals[i]
		out.Validations[c.ID] = v
		pairsChecked.Add(int64(v.PairsChecked))
		identicalPairs.Add(int64(v.IdenticalPairs))
		reprobed.Add(int64(v.Reprobed))
		if v.Passes() {
			validated[c.ID] = true
			accepted.Inc()
		}
	}
	out.Validated = validated
	if perr != nil {
		// Cancelled mid-validation: the merged prefix stays inspectable,
		// but no final block list is produced.
		return out, perr
	}
	out.Final = cluster.ApplyValidatedInterned(out.Clustering, validated, interner)
	reg.Counter("validate.final_blocks").Add(int64(len(out.Final)))
	return out, nil
}

// exhaustiveReprober adapts the Section 6.5 modified probing strategy to
// the cluster.Reprober interface.
type exhaustiveReprober struct {
	m  *hobbit.Measurer
	ds *zmap.Dataset
}

// Reprobe measures the block exhaustively and returns its observed
// last-hop set (nil when the block no longer answers usefully).
func (r *exhaustiveReprober) Reprobe(b iputil.Block24) []iputil.Addr {
	br := r.m.MeasureBlock(b, r.ds.ActivesBy26(b))
	return br.LastHops
}
