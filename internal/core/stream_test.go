package core

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"github.com/hobbitscan/hobbit/internal/faultplan"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

// marshalOutput serializes every deterministic artifact of a run the way
// TestPipelineOutputDeterministic does, so streamed and materialized
// runs can be compared byte for byte.
func marshalOutput(t *testing.T, out *Output) []byte {
	t.Helper()
	j, err := json.Marshal(struct {
		Eligible      interface{}
		Campaign      interface{}
		Aggregates    interface{}
		LowConfidence interface{}
		Validations   interface{}
		Validated     interface{}
		Final         interface{}
	}{out.Eligible, out.Campaign.Order, out.Aggregates, out.LowConfidence,
		out.Validations, out.Validated, out.Final})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestPipelineStreamedIdentical pins the tentpole invariant of the
// streaming path: a pipelined run (census chunks feeding the campaign
// feeding incremental aggregation) must produce byte-identical artifacts
// — and an identical telemetry counter state — to the materialized
// barrier-stage run, at 1 and 8 workers and across chunk sizes that do
// and do not divide the universe.
func TestPipelineStreamedIdentical(t *testing.T) {
	run := func(streamChunk, workers int) ([]byte, *telemetry.Snapshot, *Output) {
		_, p := testPipeline(t, 300)
		reg := telemetry.NewRegistry()
		p.Telemetry = reg
		p.Workers = workers
		p.CensusWorkers = workers
		p.ClusterWorkers = workers
		p.StreamChunk = streamChunk
		out, err := p.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		snap := reg.Snapshot()
		return marshalOutput(t, out), &snap, out
	}

	wantJSON, wantSnap, wantOut := run(0, 4)
	if len(wantOut.Eligible) == 0 || len(wantOut.Final) == 0 {
		t.Fatal("materialized baseline produced no output")
	}
	for _, tc := range []struct {
		name           string
		chunk, workers int
	}{
		{"chunk=32/workers=1", 32, 1},
		{"chunk=32/workers=8", 32, 8},
		{"odd-chunk", 7, 8},
		{"one-chunk", 1 << 20, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			gotJSON, gotSnap, gotOut := run(tc.chunk, tc.workers)
			if !bytes.Equal(gotJSON, wantJSON) {
				t.Errorf("streamed output differs from materialized:\n%.300s\n%.300s", gotJSON, wantJSON)
			}
			if !gotOut.Dataset.Equal(wantOut.Dataset) {
				t.Error("streamed dataset differs from materialized")
			}
			if !reflect.DeepEqual(gotSnap.Counters, wantSnap.Counters) {
				t.Errorf("counters differ:\nstreamed:     %v\nmaterialized: %v",
					gotSnap.Counters, wantSnap.Counters)
			}
			if !reflect.DeepEqual(gotSnap.Histograms, wantSnap.Histograms) {
				t.Error("histograms differ between streamed and materialized runs")
			}
		})
	}
}

// TestPipelineClusteringMatrix is the PR's acceptance matrix for the
// streaming clustering stage: {ClusterWorkers 1, 8} × {StreamChunk 1,
// 64, 4096}, on an unfaulted world and on a blackhole-faulted world with
// adaptive probing (the shape that produces low-confidence exclusions),
// each compared byte for byte — artifacts, counters, histograms —
// against that world's materialized barrier run.
func TestPipelineClusteringMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("14 full pipeline runs are slow")
	}
	for _, faulted := range []bool{false, true} {
		name := "unfaulted"
		if faulted {
			name = "faulted"
		}
		t.Run(name, func(t *testing.T) {
			run := func(streamChunk, clusterWorkers int) ([]byte, *telemetry.Snapshot) {
				w, p := testPipeline(t, 300)
				if faulted {
					sched, err := faultplan.CompileBuiltin("blackhole", w)
					if err != nil {
						t.Fatal(err)
					}
					w.SetFaults(sched)
					p.MDA.Adaptive = true
				}
				reg := telemetry.NewRegistry()
				p.Telemetry = reg
				p.ClusterWorkers = clusterWorkers
				p.StreamChunk = streamChunk
				out, err := p.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				snap := reg.Snapshot()
				return marshalOutput(t, out), &snap
			}
			wantJSON, wantSnap := run(0, 4)
			if wantSnap.Counters["cluster.clusters"] == 0 {
				t.Fatal("baseline run produced no clusters; the matrix would compare nothing")
			}
			for _, cw := range []int{1, 8} {
				for _, chunk := range []int{1, 64, 4096} {
					gotJSON, gotSnap := run(chunk, cw)
					if !bytes.Equal(gotJSON, wantJSON) {
						t.Errorf("chunk=%d workers=%d: output differs from materialized baseline", chunk, cw)
					}
					if !reflect.DeepEqual(gotSnap.Counters, wantSnap.Counters) {
						t.Errorf("chunk=%d workers=%d: counters differ:\ngot:  %v\nwant: %v",
							chunk, cw, gotSnap.Counters, wantSnap.Counters)
					}
					if !reflect.DeepEqual(gotSnap.Histograms, wantSnap.Histograms) {
						t.Errorf("chunk=%d workers=%d: histograms differ", chunk, cw)
					}
				}
			}
		})
	}
}

// TestPipelineStreamedCancel: cancelling a streamed run returns the
// partial artifacts with ctx.Err and leaves no stage wedged.
func TestPipelineStreamedCancel(t *testing.T) {
	_, p := testPipeline(t, 200)
	p.StreamChunk = 8
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := p.Run(ctx)
	if err == nil {
		t.Fatal("cancelled streamed run returned nil error")
	}
	if out == nil {
		t.Fatal("cancelled streamed run returned nil output")
	}
}
