package core_test

import (
	"context"
	"fmt"

	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/probe"
)

// Running the paper end to end: build (or connect to) a probing surface,
// hand the pipeline a /24 universe, and read the homogeneous block map.
func Example() {
	cfg := netsim.DefaultConfig(600)
	cfg.BigBlockScale = 0.01
	world := netsim.MustNew(cfg)

	pipeline := &core.Pipeline{
		Net:     probe.NewSimNetwork(world),
		Scanner: world,
		Blocks:  world.Blocks(),
		Seed:    42,
	}
	out, err := pipeline.Run(context.Background())
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	sum := out.Campaign.Summary()
	fmt.Println("measured:", sum.Total == len(out.Eligible))
	fmt.Println("homogeneous blocks found:", sum.Homogeneous() > 0)
	fmt.Println("aggregation reduced the map:", len(out.Final) < sum.Homogeneous())

	// Every final block is internally consistent: members share one
	// last-hop signature.
	consistent := true
	for _, b := range out.Final {
		if b.Size() == 0 || len(b.LastHops) == 0 {
			consistent = false
		}
	}
	fmt.Println("blocks well-formed:", consistent)
	// Output:
	// measured: true
	// homogeneous blocks found: true
	// aggregation reduced the map: true
	// blocks well-formed: true
}
