package core

import (
	"context"
	"sync"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/zmap"
)

// runStreamed is Run with the census, measurement, and aggregation
// stages pipelined: census chunks stream off zmap.Stream, a feeder
// filters each chunk for eligibility and hands the eligible blocks —
// with their chunk-local actives — to the campaign workers, and the
// campaign's in-order result stream drives the incremental aggregation
// builder. Block handout, MDA probing, and aggregation therefore overlap
// in wall-clock time, while every ordering the materialized path relies
// on is preserved: chunks arrive in block order, so the eligible list,
// the campaign Order, the low-confidence exclusions, and the aggregation
// grouping are byte-identical to Run's (TestPipelineStreamedIdentical
// pins this). Clustering and validation still need the complete
// aggregate set and run as barrier stages via finishRun.
//
// Peak memory is bounded by the stream window plus the campaign handout
// window; the merged dataset and the campaign result are still retained,
// because validation reprobes against the full census.
func (p *Pipeline) runStreamed(ctx context.Context) (*Output, error) {
	reg := p.Telemetry
	out := &Output{}

	// The pipelined stages overlap, so their spans do too: each span
	// covers the window its stage was active in.
	censusSpan := reg.StartSpan(StageCensus)
	measureSpan := reg.StartSpan(StageMeasure)
	p.setStage(StageMeasure)

	// The stream's context is cancelled as soon as the campaign stops
	// consuming (error or not), so scan workers never outlive the run.
	sctx, cancelScan := context.WithCancel(ctx)
	defer cancelScan()
	chunks := zmap.Stream(sctx, p.Scanner, p.Blocks, zmap.StreamOptions{
		Workers:   p.CensusWorkers,
		ChunkSize: p.StreamChunk,
		Telemetry: reg,
	})

	// The feeder owns dataset and eligible until feedWG.Wait below, then
	// hands them to the collector goroutine (this one) with the Wait as
	// the memory barrier.
	dataset := zmap.NewDataset()
	var eligible []iputil.Block24
	feed := make(chan hobbit.FeedItem)
	var feedWG sync.WaitGroup
	feedWG.Add(1)
	go func() {
		defer feedWG.Done()
		defer close(feed)
		defer censusSpan.End() // idempotent; covers cancelled sweeps too
		for c := range chunks {
			dataset.MergeChunk(c)
			for _, b := range c.Data.EligibleBlocks(c.Blocks, p.minActive()) {
				eligible = append(eligible, b)
				select {
				case feed <- hobbit.FeedItem{Block: b, By26: c.Data.ActivesBy26(b)}:
				case <-ctx.Done():
					return
				}
			}
		}
		// The census stage ends when its last chunk has been handed
		// over; the eligibility counter lands here, after the full
		// universe was filtered, matching the materialized total.
		reg.Counter("census.eligible_blocks").Add(int64(len(eligible)))
		censusSpan.End()
	}()

	interner := aggregate.NewInterner()
	builder := aggregate.NewBuilder(interner)
	// The clustering stage streams too: every aggregate delta the builder
	// reports flows into the incremental graph on the spot, and components
	// that go quiet are sealed and dispatched onto the MCL pool while the
	// campaign is still probing (DESIGN.md §4i). Sealing runs on a logical
	// clock of Observe calls — the same sequence the materialized path
	// replays — so artifacts and counters stay byte-identical.
	str := p.clusterStream()
	aggSpan := reg.StartSpan(StageAggregate)
	homogeneousIn := 0
	campaign := &hobbit.Campaign{
		Measurer:  p.newMeasurer(false),
		Workers:   p.Workers,
		Telemetry: reg,
		Progress:  p.Progress,
		Stage:     StageMeasure,
	}
	res, cerr := campaign.RunStream(ctx, feed, func(br *hobbit.BlockResult) {
		if p.ResultSink != nil {
			p.ResultSink(br)
		}
		if !br.Class.Homogeneous() {
			return
		}
		// Same graceful degradation as the materialized path:
		// budget-exhausted verdicts are reported but kept out of
		// aggregation, in campaign order.
		if br.LowConfidence() {
			out.LowConfidence = append(out.LowConfidence, br.Block)
			return
		}
		homogeneousIn++
		blk, isNew := builder.Add(br)
		if str != nil && blk != nil {
			str.Observe(blk, isNew)
		}
	})
	cancelScan()
	feedWG.Wait()
	out.Dataset = dataset
	out.Eligible = eligible
	out.Campaign = res
	measureSpan.End()
	if cerr != nil {
		aggSpan.End()
		str.Abort()
		return out, cerr
	}

	out.Aggregates = builder.Finish()
	reg.Counter("aggregate.homogeneous_in").Add(int64(homogeneousIn))
	reg.Counter("aggregate.low_confidence_excluded").Add(int64(len(out.LowConfidence)))
	reg.Counter("aggregate.blocks_out").Add(int64(len(out.Aggregates)))
	aggSpan.End()
	return p.finishRun(ctx, out, interner, str)
}
