package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/hobbitscan/hobbit/internal/probe"
)

func TestOptionsValidate(t *testing.T) {
	ok := []Options{
		{},
		DefaultOptions(),
		{Workers: 8, CensusWorkers: 1, ClusterWorkers: 2, ValidatePairs: 20000},
		{MDA: probe.MDAOptions{Retries: -1, AdaptiveBudget: -1}},
		{MDA: probe.MDAOptions{FirstTTL: 3, MaxTTL: 3}},
	}
	for _, o := range ok {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", o, err)
		}
	}
	bad := []struct {
		o    Options
		want string
	}{
		{Options{Workers: -1}, "workers"},
		{Options{CensusWorkers: -2}, "census_workers"},
		{Options{ClusterWorkers: -8}, "cluster_workers"},
		{Options{MinActive: -1}, "min_active"},
		{Options{ValidatePairs: -1}, "validate_pairs"},
		{Options{MDA: probe.MDAOptions{Confidence: 1.5}}, "confidence"},
		{Options{MDA: probe.MDAOptions{FirstTTL: 9, MaxTTL: 4}}, "first_ttl"},
	}
	for _, tc := range bad {
		err := tc.o.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) accepted", tc.o)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate(%+v) = %q, want mention of %q", tc.o, err, tc.want)
		}
	}
}

// TestValidateStreamChunk pins the StreamChunk guard rails: 0 disables
// streaming, anything up to one full /24-space chunk streams, negatives
// and unit-mistake sizes fail with an error naming the value.
func TestValidateStreamChunk(t *testing.T) {
	cases := []struct {
		n    int
		want string // "" = accept
	}{
		{0, ""},
		{1, ""},
		{64, ""},
		{4096, ""},
		{MaxStreamChunk, ""},
		{-1, "stream chunk"},
		{-5000, "stream chunk"},
		{MaxStreamChunk + 1, "exceeds"},
		{1 << 30, "exceeds"},
	}
	for _, tc := range cases {
		err := ValidateStreamChunk(tc.n)
		if tc.want == "" {
			if err != nil {
				t.Errorf("ValidateStreamChunk(%d) = %v, want nil", tc.n, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ValidateStreamChunk(%d) = %v, want mention of %q", tc.n, err, tc.want)
		}
	}
}

// TestPipelineRejectsInvalidStreamChunk: Run fails fast before building
// any stage when StreamChunk is out of range.
func TestPipelineRejectsInvalidStreamChunk(t *testing.T) {
	_, p := testPipeline(t, 100)
	p.StreamChunk = -3
	if _, err := p.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "stream chunk") {
		t.Fatalf("Run with StreamChunk=-3: err = %v, want stream-chunk validation error", err)
	}
	p.StreamChunk = MaxStreamChunk + 1
	if _, err := p.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("Run with StreamChunk over max: err = %v, want stream-chunk validation error", err)
	}
}

// TestOptionsCanonical pins the cache-key equivalence classes: worker
// counts never split a key (the §4d determinism contract makes them pure
// scheduling), implicit defaults match their explicit spellings, and the
// negative sentinels collapse.
func TestOptionsCanonical(t *testing.T) {
	equal := [][2]Options{
		{{Workers: 1}, {Workers: 8, CensusWorkers: 3, ClusterWorkers: 2}},
		{{}, {MinActive: 4}},
		{{}, {MDA: probe.MDAOptions{FirstTTL: 1, MaxTTL: 32, Confidence: 0.95, MaxFlows: 64, Retries: 2}}},
		{{MDA: probe.MDAOptions{Retries: -1}}, {MDA: probe.MDAOptions{Retries: -7}}},
		// A non-adaptive run never consults the budget.
		{{MDA: probe.MDAOptions{AdaptiveBudget: 9}}, {MDA: probe.MDAOptions{AdaptiveBudget: -1}}},
		{{}, DefaultOptions()},
	}
	for _, pair := range equal {
		a, _ := pair[0].CanonicalJSON()
		b, _ := pair[1].CanonicalJSON()
		if !bytes.Equal(a, b) {
			t.Errorf("canonical forms differ:\n%+v -> %s\n%+v -> %s", pair[0], a, pair[1], b)
		}
	}
	distinct := [][2]Options{
		{{}, {SkipClustering: true}},
		{{}, {MinActive: 5}},
		{{}, {ValidatePairs: 20000}},
		{{}, {MDA: probe.MDAOptions{Adaptive: true}}},
		{{MDA: probe.MDAOptions{Adaptive: true}}, {MDA: probe.MDAOptions{Adaptive: true, AdaptiveBudget: 9}}},
		{{}, {MDA: probe.MDAOptions{Retries: -1}}},
	}
	for _, pair := range distinct {
		a, _ := pair[0].CanonicalJSON()
		b, _ := pair[1].CanonicalJSON()
		if bytes.Equal(a, b) {
			t.Errorf("distinct behaviours share a canonical form: %+v vs %+v -> %s", pair[0], pair[1], a)
		}
	}
	// Idempotence: canonicalizing a canonical form is the identity.
	for _, o := range []Options{{}, {MDA: probe.MDAOptions{Retries: -3, Adaptive: true, AdaptiveBudget: -2}}} {
		c := o.Canonical()
		if c != c.Canonical() {
			t.Errorf("Canonical not idempotent: %+v -> %+v -> %+v", o, c, c.Canonical())
		}
	}
}

// TestPipelineRejectsInvalidOptions: Run fails fast on options Validate
// rejects, instead of letting a negative worker count silently act like
// the auto value.
func TestPipelineRejectsInvalidOptions(t *testing.T) {
	_, p := testPipeline(t, 100)
	p.Workers = -1
	if _, err := p.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "workers") {
		t.Fatalf("Run with Workers=-1: err = %v, want options validation error", err)
	}
}
