package core

import (
	"context"
	"testing"

	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/probe"
)

// Failure injection: the pipeline must degrade gracefully — never panic,
// never fabricate verdicts — when the network behaves badly.

func runHostile(t *testing.T, mutate func(*netsim.Config)) *Output {
	t.Helper()
	cfg := netsim.DefaultConfig(400)
	cfg.BigBlockScale = 0.02
	mutate(&cfg)
	w, err := netsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := &Pipeline{
		Net:     probe.NewSimNetwork(w),
		Scanner: w,
		Blocks:  w.Blocks(),
		Seed:    11,
	}
	out, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHostileRateLimiting(t *testing.T) {
	// Heavy ICMP rate limiting: many probes vanish, wildcards abound.
	out := runHostile(t, func(c *netsim.Config) { c.PRateLimit = 0.45 })
	sum := out.Campaign.Summary()
	if sum.Total == 0 {
		t.Fatal("nothing measured")
	}
	// Rate limiting hides last hops; verdicts shift toward the
	// not-analyzable classes but the pipeline completes.
	notAnalyzable := sum.Counts[hobbit.ClassTooFewActive] + sum.Counts[hobbit.ClassUnresponsiveLastHop]
	if notAnalyzable == 0 {
		t.Error("heavy rate limiting should produce not-analyzable blocks")
	}
}

func TestHostileChurn(t *testing.T) {
	// Severe availability churn: most census responders are gone at
	// probe time.
	out := runHostile(t, func(c *netsim.Config) {
		c.PersistProb = 0.30
		c.PersistProbLow = 0.10
	})
	sum := out.Campaign.Summary()
	// High-activity blocks survive 30% persistence (enough hosts
	// remain), but the too-few class must grow well past its normal
	// share and verdicts must stay sound.
	tooFew := float64(sum.Counts[hobbit.ClassTooFewActive])
	if tooFew/float64(sum.Total) < 0.15 {
		t.Errorf("severe churn should inflate the too-few class, got %.0f%%",
			100*tooFew/float64(sum.Total))
	}
	if sum.Measurable() == 0 {
		t.Error("severe churn should not zero out measurability")
	}
}

func TestHostileDarkRouters(t *testing.T) {
	// Half the transit routers never answer: traces are full of
	// wildcards, yet last-hop discovery still functions for responsive
	// last hops.
	out := runHostile(t, func(c *netsim.Config) { c.PRouterUnresponsive = 0.5 })
	if out.Campaign.Summary().Homogeneous() == 0 {
		t.Error("dark transit routers should not kill homogeneity detection")
	}
}

func TestHostileAllLastHopsDark(t *testing.T) {
	// Every aggregate hides its last-hop routers: the entire measurable
	// universe collapses into the unresponsive-last-hop class.
	out := runHostile(t, func(c *netsim.Config) {
		c.PUnresponsiveLastHop = 1.0
		c.PHeterogeneous = 0 // hetero mini-pops stay responsive otherwise
		c.BigBlocks = nil    // planted aggregates are never dark
	})
	sum := out.Campaign.Summary()
	if sum.Counts[hobbit.ClassSameLastHop]+sum.Counts[hobbit.ClassNonHierarchical] > sum.Total/20 {
		t.Errorf("dark last hops should leave almost nothing homogeneous: %+v", sum.Counts)
	}
	if len(out.Final) != len(out.Aggregates) && len(out.Aggregates) == 0 {
		t.Error("aggregation of nothing should be empty, not broken")
	}
}

func TestHostileLossyEcho(t *testing.T) {
	// One in five echo replies lost: ping retries and MDA retries must
	// carry the measurement.
	out := runHostile(t, func(c *netsim.Config) { c.PPingLoss = 0.2 })
	sum := out.Campaign.Summary()
	if sum.Measurable() == 0 {
		t.Error("lossy echo should not zero out measurability")
	}
}

func TestHostileUniformTTL255(t *testing.T) {
	// Every host uses default TTL 255: hop-count inference leans on a
	// single bucket and halving still terminates.
	out := runHostile(t, func(c *netsim.Config) { c.TTLWeights = [3]float64{0, 0, 1} })
	if out.Campaign.Summary().Measurable() == 0 {
		t.Error("uniform TTLs should not break hop inference")
	}
}
