package core

import (
	"encoding/json"
	"fmt"

	"github.com/hobbitscan/hobbit/internal/probe"
)

// Options are the serializable knobs of a Pipeline run — everything a
// remote caller may legitimately choose, and nothing that names local
// resources (probing surfaces, telemetry sinks, terminator callbacks stay
// on Pipeline). The struct is the request-body schema of the hobbitd
// campaign API and, in canonical form, the options part of its result
// cache key; JSON field names are therefore part of the v1 wire contract.
//
// The zero value means "paper defaults everywhere": worker counts follow
// GOMAXPROCS, MinActive is 4, MDA probing uses the Section 4 operating
// parameters, ValidatePairs reprobes every pair, and clustering runs.
type Options struct {
	// Workers bounds measurement concurrency (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// CensusWorkers bounds the census sweep (0 = GOMAXPROCS, 1 =
	// serial). The dataset and census counters are byte-identical for
	// every value: workers fill per-block bitmaps into indexed slots and
	// the merge applies them in block order.
	CensusWorkers int `json:"census_workers"`
	// ClusterWorkers bounds the post-campaign stages — similarity-graph
	// construction, MCL expansion, and reprobe validation (0 =
	// GOMAXPROCS, 1 = serial). Output is byte-identical for every value:
	// the stages shard index spaces and merge results in index order.
	ClusterWorkers int `json:"cluster_workers"`
	// MDA tunes the per-destination MDA runs.
	MDA probe.MDAOptions `json:"mda"`
	// MinActive is the census/probe-time eligibility threshold (0 uses
	// the paper's 4).
	MinActive int `json:"min_active"`
	// ValidatePairs bounds reprobed pairs per cluster (the paper uses
	// 20,000; 0 means all pairs).
	ValidatePairs int `json:"validate_pairs"`
	// SkipClustering stops after identical-set aggregation.
	SkipClustering bool `json:"skip_clustering"`
}

// DefaultOptions returns the paper's operating point with every implicit
// default written out: the value a zero Options behaves as (worker counts
// stay 0 = GOMAXPROCS because they are scheduling hints, not behaviour).
func DefaultOptions() Options {
	return Options{
		MDA:           probe.MDAOptions{}.Canonical(),
		MinActive:     4,
		ValidatePairs: 0, // all pairs
	}
}

// Validate rejects option values the pipeline would otherwise misread.
// Worker counts must be non-negative: a negative count used to flow into
// the pools and silently behave like the auto value instead of the serial
// run the caller probably wanted. The error names the offending field.
func (o Options) Validate() error {
	for _, f := range []struct {
		name  string
		value int
	}{
		{"workers", o.Workers},
		{"census_workers", o.CensusWorkers},
		{"cluster_workers", o.ClusterWorkers},
	} {
		if f.value < 0 {
			return fmt.Errorf("core: options: %s must be >= 0 (0 = GOMAXPROCS), got %d", f.name, f.value)
		}
	}
	if o.MinActive < 0 {
		return fmt.Errorf("core: options: min_active must be >= 0 (0 = default 4), got %d", o.MinActive)
	}
	if o.ValidatePairs < 0 {
		return fmt.Errorf("core: options: validate_pairs must be >= 0 (0 = all pairs), got %d", o.ValidatePairs)
	}
	if o.MDA.Confidence < 0 || o.MDA.Confidence >= 1 {
		return fmt.Errorf("core: options: mda.confidence must be in [0, 1), got %v", o.MDA.Confidence)
	}
	if o.MDA.FirstTTL > 0 && o.MDA.MaxTTL > 0 && o.MDA.FirstTTL > o.MDA.MaxTTL {
		return fmt.Errorf("core: options: mda.first_ttl %d exceeds mda.max_ttl %d", o.MDA.FirstTTL, o.MDA.MaxTTL)
	}
	return nil
}

// MaxStreamChunk bounds Pipeline.StreamChunk. The cap is a sanity rail,
// not a tuning knob: one chunk of 2^20 /24s already covers the full
// routable IPv4 space, so anything larger is a unit mistake (bytes,
// addresses) that would silently degenerate into a materialized run
// with one giant buffer.
const MaxStreamChunk = 1 << 20

// ValidateStreamChunk rejects StreamChunk values the pipeline would
// misread: negative chunks (the caller probably wanted 0 = materialized)
// and chunks beyond MaxStreamChunk. 0 is valid and disables streaming.
func ValidateStreamChunk(n int) error {
	if n < 0 {
		return fmt.Errorf("core: stream chunk must be >= 0 (0 = materialized run), got %d", n)
	}
	if n > MaxStreamChunk {
		return fmt.Errorf("core: stream chunk %d exceeds max %d (one chunk already spans the IPv4 /24 space)", n, MaxStreamChunk)
	}
	return nil
}

// Canonical maps every Options value onto one representative per
// behaviour class. Worker counts are zeroed — the parallel-stage
// determinism contract (DESIGN.md §4d) guarantees output is byte-identical
// at any worker count, so they must never split a cache — implicit
// defaults become explicit, and the MDA options collapse via
// probe.MDAOptions.Canonical. Two Options with equal Canonical forms
// drive behaviourally identical runs over the same surface.
func (o Options) Canonical() Options {
	o.Workers, o.CensusWorkers, o.ClusterWorkers = 0, 0, 0
	o.MDA = o.MDA.Canonical()
	if o.MinActive == 0 {
		o.MinActive = 4
	}
	return o
}

// CanonicalJSON renders the canonical form as compact JSON with every
// field present (no omitempty anywhere in the schema), so equal behaviour
// classes serialize to equal bytes — the options half of hobbitd's result
// cache key.
func (o Options) CanonicalJSON() ([]byte, error) {
	return json.Marshal(o.Canonical())
}
