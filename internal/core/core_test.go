package core

import (
	"testing"

	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/probe"
)

func testPipeline(t *testing.T, n int) (*netsim.World, *Pipeline) {
	t.Helper()
	cfg := netsim.DefaultConfig(n)
	cfg.BigBlockScale = 0.02
	w, err := netsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, &Pipeline{
		Net:     probe.NewSimNetwork(w),
		Scanner: w,
		Blocks:  w.Blocks(),
		Seed:    7,
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline is slow")
	}
	w, p := testPipeline(t, 1200)
	out, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Eligible) == 0 {
		t.Fatal("no eligible blocks")
	}
	sum := out.Campaign.Summary()
	if sum.Total != len(out.Eligible) {
		t.Fatalf("campaign covered %d of %d", sum.Total, len(out.Eligible))
	}
	if len(out.Aggregates) == 0 || len(out.Aggregates) > sum.Homogeneous() {
		t.Errorf("aggregates = %d of %d homogeneous", len(out.Aggregates), sum.Homogeneous())
	}
	if out.Clustering == nil {
		t.Fatal("clustering skipped unexpectedly")
	}
	// Final list is never longer than the aggregate list.
	if len(out.Final) > len(out.Aggregates) {
		t.Errorf("final %d > aggregates %d", len(out.Final), len(out.Aggregates))
	}
	// Conservation: final blocks cover exactly the aggregated /24s.
	total24 := 0
	for _, b := range out.Aggregates {
		total24 += b.Size()
	}
	final24 := 0
	for _, b := range out.Final {
		final24 += b.Size()
	}
	if total24 != final24 {
		t.Errorf("/24 conservation broken: %d -> %d", total24, final24)
	}
	// Validated clusters must merge (when any exist).
	merged := 0
	for id, v := range out.Validations {
		if v.Homogeneous {
			merged++
		}
		_ = id
	}
	if merged > 0 && len(out.Final) >= len(out.Aggregates) {
		t.Error("validated clusters did not reduce the block count")
	}
	// True aggregates of the world should mostly survive as single
	// final blocks: spot-check one multi-/24 pop.
	pops := w.BigBlockPops()
	if egi := pops["egi"]; len(egi) > 0 {
		blocks := w.AggregateBlocks(egi[0])
		// Count how many final blocks the pop's measured /24s are
		// spread across.
		owner := make(map[int]bool)
		for _, b := range blocks {
			for _, fb := range out.Final {
				for _, m := range fb.Blocks24 {
					if m == b {
						owner[fb.ID] = true
					}
				}
			}
		}
		if len(owner) > len(blocks) {
			t.Errorf("egi pop fragmented into %d final blocks", len(owner))
		}
	}
}

func TestPipelineSkipClustering(t *testing.T) {
	_, p := testPipeline(t, 300)
	p.SkipClustering = true
	out, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Clustering != nil || out.Validations != nil {
		t.Error("clustering artifacts present despite skip")
	}
	if len(out.Final) != len(out.Aggregates) {
		t.Error("final should equal aggregates when skipping")
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := (&Pipeline{}).Run(); err == nil {
		t.Error("missing Net/Scanner should error")
	}
	w, _ := testPipeline(t, 100)
	p := &Pipeline{Net: probe.NewSimNetwork(w), Scanner: w}
	if _, err := p.Run(); err == nil {
		t.Error("missing blocks should error")
	}
}
