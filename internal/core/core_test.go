package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

func testPipeline(t *testing.T, n int) (*netsim.World, *Pipeline) {
	t.Helper()
	cfg := netsim.DefaultConfig(n)
	cfg.BigBlockScale = 0.02
	w, err := netsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, &Pipeline{
		Net:     probe.NewSimNetwork(w),
		Scanner: w,
		Blocks:  w.Blocks(),
		Seed:    7,
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline is slow")
	}
	w, p := testPipeline(t, 1200)
	out, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Eligible) == 0 {
		t.Fatal("no eligible blocks")
	}
	sum := out.Campaign.Summary()
	if sum.Total != len(out.Eligible) {
		t.Fatalf("campaign covered %d of %d", sum.Total, len(out.Eligible))
	}
	if len(out.Aggregates) == 0 || len(out.Aggregates) > sum.Homogeneous() {
		t.Errorf("aggregates = %d of %d homogeneous", len(out.Aggregates), sum.Homogeneous())
	}
	if out.Clustering == nil {
		t.Fatal("clustering skipped unexpectedly")
	}
	// Final list is never longer than the aggregate list.
	if len(out.Final) > len(out.Aggregates) {
		t.Errorf("final %d > aggregates %d", len(out.Final), len(out.Aggregates))
	}
	// Conservation: final blocks cover exactly the aggregated /24s.
	total24 := 0
	for _, b := range out.Aggregates {
		total24 += b.Size()
	}
	final24 := 0
	for _, b := range out.Final {
		final24 += b.Size()
	}
	if total24 != final24 {
		t.Errorf("/24 conservation broken: %d -> %d", total24, final24)
	}
	// Validated clusters must merge (when any exist).
	merged := 0
	for id, v := range out.Validations {
		if v.Homogeneous {
			merged++
		}
		_ = id
	}
	if merged > 0 && len(out.Final) >= len(out.Aggregates) {
		t.Error("validated clusters did not reduce the block count")
	}
	// True aggregates of the world should mostly survive as single
	// final blocks: spot-check one multi-/24 pop.
	pops := w.BigBlockPops()
	if egi := pops["egi"]; len(egi) > 0 {
		blocks := w.AggregateBlocks(egi[0])
		// Count how many final blocks the pop's measured /24s are
		// spread across.
		owner := make(map[int]bool)
		for _, b := range blocks {
			for _, fb := range out.Final {
				for _, m := range fb.Blocks24 {
					if m == b {
						owner[fb.ID] = true
					}
				}
			}
		}
		if len(owner) > len(blocks) {
			t.Errorf("egi pop fragmented into %d final blocks", len(owner))
		}
	}
}

func TestPipelineSkipClustering(t *testing.T) {
	_, p := testPipeline(t, 300)
	p.SkipClustering = true
	out, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Clustering != nil || out.Validations != nil {
		t.Error("clustering artifacts present despite skip")
	}
	if len(out.Final) != len(out.Aggregates) {
		t.Error("final should equal aggregates when skipping")
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := (&Pipeline{}).Run(context.Background()); err == nil {
		t.Error("missing Net/Scanner should error")
	}
	w, _ := testPipeline(t, 100)
	p := &Pipeline{Net: probe.NewSimNetwork(w), Scanner: w}
	if _, err := p.Run(context.Background()); err == nil {
		t.Error("missing blocks should error")
	}
}

func TestPipelineCancellation(t *testing.T) {
	_, p := testPipeline(t, 400)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first stage boundary
	out, err := p.Run(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out == nil || out.Dataset == nil {
		t.Fatal("partial output lost on cancellation")
	}
	// No measurement happened, but the partial artifacts are coherent.
	if out.Campaign != nil && out.Campaign.Summary().Total != 0 {
		t.Errorf("cancelled run still measured %d blocks", out.Campaign.Summary().Total)
	}
	if len(out.Final) != 0 {
		t.Error("cancelled run produced final blocks")
	}
}

func TestPipelineMidCampaignCancellation(t *testing.T) {
	_, p := testPipeline(t, 400)
	p.Workers = 2
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	// Cancel from inside the campaign, after a handful of blocks.
	p.Progress = telemetry.SinkFunc(func(ev telemetry.ProgressEvent) {
		if n++; n == 5 {
			cancel()
		}
	})
	out, err := p.Run(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	sum := out.Campaign.Summary()
	if sum.Total == 0 {
		t.Error("mid-campaign cancellation lost the partial result")
	}
	if sum.Total == len(out.Eligible) {
		t.Error("cancellation did not stop the campaign early")
	}
}

// TestPipelineTelemetryDeterministic runs two same-seed pipelines over two
// same-seed worlds and requires byte-identical counter snapshots (timings
// excluded): the telemetry layer doubles as a regression check on
// measurement load.
func TestPipelineTelemetryDeterministic(t *testing.T) {
	snap := func() []byte {
		_, p := testPipeline(t, 300)
		p.Telemetry = telemetry.NewRegistry()
		p.Net = probe.Instrument(p.Net, p.Telemetry, StageMeasure)
		if _, err := p.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		j, err := p.Telemetry.MarshalCounters()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	j1, j2 := snap(), snap()
	if !bytes.Equal(j1, j2) {
		t.Errorf("same-seed counter snapshots differ:\n%s\n%s", j1, j2)
	}
}

// TestPipelineOutputDeterministic is the determinism regression check the
// lint suite exists to protect: full same-seed pipeline runs over
// same-seed worlds must serialize to byte-identical JSON — block lists,
// cluster validations, everything an operator would diff between runs —
// no matter how the work was sharded. It compares a serial
// (ClusterWorkers=1) run against parallel (ClusterWorkers=8) runs, which
// checks both cross-configuration equality and that the parallel path is
// self-deterministic.
func TestPipelineOutputDeterministic(t *testing.T) {
	run := func(clusterWorkers int) []byte {
		_, p := testPipeline(t, 300)
		p.Workers = 4 // concurrency must not leak into the result
		p.ClusterWorkers = clusterWorkers
		out, err := p.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		j, err := json.Marshal(struct {
			Eligible    interface{}
			Aggregates  interface{}
			Validations interface{}
			Validated   interface{}
			Final       interface{}
		}{out.Eligible, out.Aggregates, out.Validations, out.Validated, out.Final})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	serial := run(1)
	parallel1, parallel2 := run(8), run(8)
	if !bytes.Equal(serial, parallel1) {
		t.Errorf("serial (ClusterWorkers=1) and parallel (ClusterWorkers=8) outputs differ:\n%.400s\n%.400s",
			serial, parallel1)
	}
	if !bytes.Equal(parallel1, parallel2) {
		t.Errorf("same-seed parallel pipeline outputs differ:\n%.400s\n%.400s", parallel1, parallel2)
	}
}

// TestPipelineTelemetryCoverage checks that one instrumented run populates
// every stage span and the load counters of each stage.
func TestPipelineTelemetryCoverage(t *testing.T) {
	_, p := testPipeline(t, 300)
	reg := telemetry.NewRegistry()
	p.Telemetry = reg
	p.Net = probe.Instrument(p.Net, reg, StageMeasure)
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	stages := make(map[string]bool)
	for _, s := range snap.Stages {
		if s.Running {
			t.Errorf("stage %s still running after Run returned", s.Name)
		}
		stages[s.Name] = true
	}
	for _, want := range []string{StageCensus, StageMeasure, StageAggregate, StageCluster, StageValidate} {
		if !stages[want] {
			t.Errorf("no span recorded for stage %s", want)
		}
	}
	for _, c := range []string{
		"census.scan_pings", "census.responders", "census.eligible_blocks",
		"campaign.blocks_measured",
		"probe.measure.pings", "probe.measure.probes",
		"aggregate.blocks_out", "cluster.components",
	} {
		if snap.Counters[c] == 0 {
			t.Errorf("counter %s is zero", c)
		}
	}
	// Reprobe load is attributed to the validate stage (when any cluster
	// needed validation at this scale).
	if snap.Counters["validate.pairs_checked"] > 0 && snap.Counters["probe.validate.probes"] == 0 {
		t.Error("validation reprobes not attributed to the validate stage")
	}
	if snap.Histograms["campaign.probed_per_block"].Count == 0 {
		t.Error("probed_per_block histogram empty")
	}
	if snap.Counters["campaign.blocks_measured"] != snap.Counters["census.eligible_blocks"] {
		t.Errorf("measured %d blocks of %d eligible",
			snap.Counters["campaign.blocks_measured"], snap.Counters["census.eligible_blocks"])
	}
}

// lowConfNet scripts a two-/24 universe for the graceful-degradation
// path: every address answers pings (reply TTL 56, so the inferred walk
// starts at hop 7) and echoes at hop 12 behind a single per-block
// last-hop router at hop 11, making both blocks measure homogeneous.
// Addresses in the faulted block additionally lose every probing window
// at hop 7 — exactly where the walk starts, so the per-flow windows
// there all die in a row and each MDA run degrades; a small adaptive
// budget then exhausts, while the default budget absorbs it. The type is
// stateless, hence safe for any worker count, and doubles as the census
// scanner (everything is active).
type lowConfNet struct {
	faulted iputil.Block24
}

func (n *lowConfNet) ScanPing(iputil.Addr) bool { return true }

func (n *lowConfNet) Ping(iputil.Addr, int) (probe.PingResult, bool) {
	return probe.PingResult{RespTTL: 56}, true
}

func (n *lowConfNet) Probe(dst iputil.Addr, ttl int, flowID uint16, salt uint32) probe.Result {
	faulted := dst.Block24() == n.faulted
	switch {
	case faulted && ttl == 7:
		return probe.Result{}
	case ttl >= 12:
		return probe.Result{Kind: probe.EchoReply}
	case ttl == 11:
		lh := iputil.Addr(0x0a000001)
		if faulted {
			lh = 0x0b000001
		}
		return probe.Result{Kind: probe.TTLExceeded, From: lh}
	default:
		return probe.Result{Kind: probe.TTLExceeded, From: 0x63000000 + iputil.Addr(ttl)}
	}
}

// TestPipelineLowConfidenceExclusion pins the graceful-degradation
// contract end to end: a block whose homogeneous verdict rests on
// budget-exhausted measurements lands in Output.LowConfidence and stays
// out of aggregation (and everything downstream), while the same block
// measured with enough budget aggregates normally.
func TestPipelineLowConfidenceExclusion(t *testing.T) {
	clean := iputil.Addr(0x0a000100).Block24()
	faulted := iputil.Addr(0x0a000200).Block24()
	net := &lowConfNet{faulted: faulted}
	run := func(budget int) (*Output, *telemetry.Registry) {
		t.Helper()
		reg := telemetry.NewRegistry()
		p := &Pipeline{
			Net:       net,
			Scanner:   net,
			Blocks:    []iputil.Block24{clean, faulted},
			Seed:      7,
			Options:   Options{MDA: probe.MDAOptions{Adaptive: true, AdaptiveBudget: budget}},
			Telemetry: reg,
		}
		out, err := p.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return out, reg
	}

	// Tiny budget: the dead hop drains it on every probed address, so
	// the verdict is homogeneous but low-confidence.
	out, reg := run(4)
	br := out.Campaign.Blocks[faulted]
	if br == nil || !br.Class.Homogeneous() {
		t.Fatalf("faulted block did not measure homogeneous: %+v", br)
	}
	if !br.LowConfidence() || br.BudgetExhausted == 0 {
		t.Fatalf("faulted block not low-confidence: %+v", br)
	}
	if len(out.LowConfidence) != 1 || out.LowConfidence[0] != faulted {
		t.Fatalf("Output.LowConfidence = %v, want [%v]", out.LowConfidence, faulted)
	}
	for _, lists := range [][]*aggregate.Block{out.Aggregates, out.Final} {
		for _, b := range lists {
			for _, m := range b.Blocks24 {
				if m == faulted {
					t.Fatal("low-confidence block leaked into aggregation")
				}
			}
		}
	}
	if len(out.Aggregates) != 1 || out.Aggregates[0].Blocks24[0] != clean {
		t.Fatalf("aggregates = %+v, want the clean block alone", out.Aggregates)
	}
	if got := reg.Counter("aggregate.low_confidence_excluded").Value(); got != 1 {
		t.Errorf("aggregate.low_confidence_excluded = %d, want 1", got)
	}

	// Ample budget (the default 32): the same faults degrade the runs but
	// never exhaust them, so the block aggregates like any other.
	out, reg = run(0)
	br = out.Campaign.Blocks[faulted]
	if br.Degraded == 0 || br.BudgetExhausted != 0 || br.LowConfidence() {
		t.Fatalf("default-budget run: %+v, want degraded but not exhausted", br)
	}
	if len(out.LowConfidence) != 0 {
		t.Errorf("Output.LowConfidence = %v, want empty", out.LowConfidence)
	}
	if len(out.Aggregates) != 2 {
		t.Errorf("aggregates = %d blocks, want both", len(out.Aggregates))
	}
	if got := reg.Counter("aggregate.low_confidence_excluded").Value(); got != 0 {
		t.Errorf("aggregate.low_confidence_excluded = %d, want 0", got)
	}
}
