package confidence

import "testing"

func TestCellStatsConfidence(t *testing.T) {
	if c := (CellStats{}).Confidence(); c != 0 {
		t.Errorf("empty cell confidence = %v, want 0", c)
	}
	if c := (CellStats{Successes: 3, Total: 4}).Confidence(); c != 0.75 {
		t.Errorf("3/4 cell confidence = %v, want 0.75", c)
	}
}

func TestEnoughHonorsLevel(t *testing.T) {
	tbl := &Table{
		cells:      map[Cell]CellStats{{Cardinality: 2, Probed: 8}: {Successes: 9, Total: 10}},
		MinSamples: 1,
	}
	// Default level is 0.95: a 0.9 cell is not enough.
	if tbl.Enough(2, 8) {
		t.Error("0.9 confidence cleared the default 0.95 level")
	}
	tbl.Level = 0.85
	if !tbl.Enough(2, 8) {
		t.Error("0.9 confidence failed an explicit 0.85 level")
	}
	// Absent and under-sampled cells always report false, which makes
	// Hobbit probe exhaustively.
	if tbl.Enough(3, 8) {
		t.Error("absent cell reported enough")
	}
	tbl.MinSamples = 100
	if tbl.Enough(2, 8) {
		t.Error("under-sampled cell reported enough")
	}
}

// TestDefaultBuilder pins the paper's parameters and exercises the
// full-budget branch of the depiction threshold: with the whole 16,588
// sample budget the 16,588-point rule applies unchanged.
func TestDefaultBuilder(t *testing.T) {
	b := DefaultBuilder(7)
	if b.Samples != 16588 || b.MinSubset != 4 || b.Seed != 7 {
		t.Fatalf("DefaultBuilder = %+v", b)
	}
	if got := minSamplesFor(b.Samples); got != 16588 {
		t.Errorf("minSamplesFor(full budget) = %d, want 16588", got)
	}
	if got := minSamplesFor(100); got != 50 {
		t.Errorf("minSamplesFor(100) = %d, want 50", got)
	}
	if got := minSamplesFor(1); got != 1 {
		t.Errorf("minSamplesFor(1) = %d, want 1", got)
	}

	// A default-parameter Build over a single observation stays cheap —
	// the per-block draw cap bounds the work — and must populate cells
	// from the 4-subset up to the observation's size.
	tbl, err := b.Build([]BlockObservation{synthObservation(0x020000, 3, 24)})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.MinSamples != 16588 {
		t.Errorf("full-budget table MinSamples = %d, want 16588", tbl.MinSamples)
	}
	if s := tbl.Stats(Cell{Cardinality: 3, Probed: 4}); s.Total == 0 {
		t.Error("default Build left the (3,4) cell empty")
	}
}

func TestBuildRejectsDegenerateObservations(t *testing.T) {
	// Cardinality-1 blocks are governed by the 6-probe rule, not the
	// table; a corpus of only those cannot build one.
	if _, err := (Builder{Samples: 10}).Build([]BlockObservation{synthObservation(0x030000, 1, 12)}); err == nil {
		t.Fatal("Build accepted a corpus with no cardinality >= 2 observations")
	}
}
