package confidence

import (
	"testing"

	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/rng"
)

// synthObservation builds a homogeneous block observation with k last-hop
// groups and n addresses assigned by hashing (as per-destination load
// balancing would).
func synthObservation(block uint32, k, n int) BlockObservation {
	b := iputil.Block24(block)
	groups := make([]hobbit.Group, k)
	for gi := range groups {
		groups[gi].LastHop = iputil.Addr(0x64400000 + uint32(gi))
	}
	for i := 0; i < n; i++ {
		a := b.Addr(1 + i*(254/n))
		gi := rng.Intn(k, 99, uint64(a))
		groups[gi].Addrs = append(groups[gi].Addrs, a)
	}
	out := BlockObservation{Block: b}
	for _, g := range groups {
		if len(g.Addrs) > 0 {
			iputil.SortAddrs(g.Addrs)
			out.Groups = append(out.Groups, g)
		}
	}
	return out
}

func buildTestTable(t *testing.T) *Table {
	t.Helper()
	var obs []BlockObservation
	for i := 0; i < 60; i++ {
		obs = append(obs, synthObservation(0x010000+uint32(i), 2+i%4, 40))
	}
	b := Builder{Samples: 400, MaxProbed: 30, Seed: 7}
	tbl, err := b.Build(obs)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestBuildProducesMonotoneConfidence(t *testing.T) {
	tbl := buildTestTable(t)
	cells := tbl.Cells()
	if len(cells) == 0 {
		t.Fatal("no populated cells")
	}
	// Confidence must broadly increase with probed count at fixed
	// cardinality (allowing sampling noise at adjacent cells) — the
	// paper's Figure 4 trend along the x axis.
	for _, card := range []int{2, 3, 4, 5} {
		low, lok := tbl.Confidence(card, 5)
		high, hok := tbl.Confidence(card, 25)
		if !lok || !hok {
			continue
		}
		if high < low-0.05 {
			t.Errorf("cardinality %d: confidence(25)=%v < confidence(5)=%v", card, high, low)
		}
	}
	// At small probe counts, higher cardinality means lower confidence
	// (groups degenerate toward hierarchical singletons) — the paper's
	// trend along the y axis, visible where cardinality approaches the
	// probe count.
	c3, ok3 := tbl.Confidence(3, 5)
	c5, ok5 := tbl.Confidence(5, 5)
	if ok3 && ok5 && c5 > c3+0.1 {
		t.Errorf("at 5 probes confidence should fall with cardinality: card3=%v card5=%v", c3, c5)
	}
}

func TestCardinalityTwoPlateau(t *testing.T) {
	// A statically-judged cardinality-2 block is hierarchical whenever
	// one group owns both extremes, so its confidence plateaus near 1/2
	// no matter how many addresses are probed. This is why the 5.9%
	// "different but hierarchical" bucket is a known mixture: Hobbit's
	// sequential early-stop — not the static test — rescues most K=2
	// homogeneous blocks.
	tbl := buildTestTable(t)
	c, ok := tbl.Confidence(2, 28)
	if !ok {
		t.Fatal("cell <2,28> missing")
	}
	if c < 0.3 || c > 0.7 {
		t.Errorf("confidence(2, 28) = %v, want the ~0.5 plateau", c)
	}
	// Enough must therefore be false: Hobbit probes all actives of
	// hierarchical-looking cardinality-2 blocks.
	if tbl.Enough(2, 28) {
		t.Error("cardinality-2 cells must not satisfy the 95% level")
	}
}

func TestConfidenceHighAtManyProbes(t *testing.T) {
	tbl := buildTestTable(t)
	c, ok := tbl.Confidence(5, 28)
	if !ok {
		t.Fatal("cell <5,28> missing")
	}
	if c < 0.85 {
		t.Errorf("confidence(5, 28) = %v, want >= 0.85", c)
	}
}

func TestEnoughRespectsLevelAndAbsence(t *testing.T) {
	tbl := buildTestTable(t)
	// An absent cell must never be Enough (Hobbit then probes all).
	if tbl.Enough(40, 4) {
		t.Error("absent cell reported Enough")
	}
	// A high-confidence cell is Enough at 0.95.
	if c, ok := tbl.Confidence(2, 28); ok && c >= 0.95 && !tbl.Enough(2, 28) {
		t.Error("high-confidence cell not Enough")
	}
	// Raising the level flips it.
	strict := *tbl
	strict.Level = 0.9999
	if strict.Enough(2, 28) {
		if c, _ := strict.Confidence(2, 28); c < 0.9999 {
			t.Error("strict level ignored")
		}
	}
}

func TestMinSamplesGate(t *testing.T) {
	obs := []BlockObservation{synthObservation(0x020000, 3, 30)}
	b := Builder{Samples: 16588, MaxProbed: 10, MaxPerBlock: 8, Seed: 1}
	tbl, err := b.Build(obs)
	if err != nil {
		t.Fatal(err)
	}
	// Only 8 draws per cell against a 16,588 minimum: nothing depicted.
	if got := tbl.Cells(); len(got) != 0 {
		t.Errorf("under-sampled cells depicted: %v", got)
	}
	// But the raw stats are retained.
	if s := tbl.Stats(Cell{Cardinality: 3, Probed: 4}); s.Total != 8 {
		t.Errorf("raw stats = %+v", s)
	}
}

func TestBuildRejectsNoUsableObservations(t *testing.T) {
	obs := []BlockObservation{synthObservation(0x030000, 1, 20)}
	if _, err := (Builder{Samples: 10}).Build(obs); err == nil {
		t.Error("cardinality-1-only input should error")
	}
}

func TestBuilderDeterministic(t *testing.T) {
	obs := []BlockObservation{
		synthObservation(0x040000, 3, 36),
		synthObservation(0x050000, 3, 36),
	}
	b := Builder{Samples: 100, MaxProbed: 12, Seed: 5}
	t1, err1 := b.Build(obs)
	t2, err2 := b.Build(obs)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for _, c := range t1.Cells() {
		if t1.Stats(c) != t2.Stats(c) {
			t.Fatalf("cell %v differs across builds", c)
		}
	}
}

func TestTableAsTerminator(t *testing.T) {
	tbl := buildTestTable(t)
	var term hobbit.Terminator = tbl
	// Small probe counts at cardinality 2 must not be Enough: with 4-5
	// probes over 2 groups hierarchy-by-chance is common.
	if term.Enough(2, 4) {
		if c, _ := tbl.Confidence(2, 4); c >= 0.95 {
			t.Skip("world produced unusually high low-probe confidence")
		}
		t.Error("4 probes at cardinality 2 should not satisfy 95%")
	}
}

func TestSubsetJudgeSingleGroupRule(t *testing.T) {
	// A subset falling entirely into one group is only a success at 6+
	// probes (the single-last-hop rule).
	flat := make([]flatAddr, 12)
	for i := range flat {
		flat[i] = flatAddr{addr: iputil.Addr(0x0a000000 + uint32(i)), group: 0}
	}
	b := Builder{Seed: 3}.withDefaults()
	if b.judgeSubset(flat, 1, 4, 0, 0) {
		t.Error("4-address single-group subset should fail")
	}
	if !b.judgeSubset(flat, 1, 6, 0, 0) {
		t.Error("6-address single-group subset should succeed")
	}
}
