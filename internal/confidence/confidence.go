// Package confidence builds and serves the empirical confidence table of
// Section 3.2 / Figure 4: for each <cardinality, number of probed
// addresses> pair, the probability that Hobbit recognizes a homogeneous
// /24 when it probes only that many destinations.
//
// Like the paper, the table is computed from measured data rather than a
// closed form: given fully-probed homogeneous blocks, random combinations
// of their destinations are re-judged with Hobbit's hierarchy test, and
// the per-cell success ratio becomes the confidence. Cells with fewer than
// MinSamples observations carry no value (the paper requires 16,588 sample
// points per depicted cell).
package confidence

import (
	"fmt"
	"sort"

	"github.com/hobbitscan/hobbit/internal/hobbit"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/rng"
)

// Cell identifies one <cardinality, probed> bucket.
type Cell struct {
	Cardinality int
	Probed      int
}

// CellStats carries the tally of one cell.
type CellStats struct {
	Successes int
	Total     int
}

// Confidence is the success ratio.
func (s CellStats) Confidence() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Successes) / float64(s.Total)
}

// Table is the built confidence surface. It implements hobbit.Terminator.
type Table struct {
	cells map[Cell]CellStats
	// MinSamples is the minimum observations a cell needs to carry a
	// value.
	MinSamples int
	// Level is the confidence level Enough requires (default 0.95).
	Level float64
}

// Confidence returns the confidence at a cell; ok is false when the cell
// has insufficient samples.
func (t *Table) Confidence(cardinality, probed int) (float64, bool) {
	s, found := t.cells[Cell{Cardinality: cardinality, Probed: probed}]
	if !found || s.Total < t.MinSamples {
		return 0, false
	}
	return s.Confidence(), true
}

// Enough implements hobbit.Terminator: probing may stop once the cell has
// a value at or above the level. Absent cells report false, which makes
// Hobbit probe all active addresses, exactly as Section 3.5 prescribes.
func (t *Table) Enough(cardinality, probed int) bool {
	level := t.Level
	if level == 0 {
		level = 0.95
	}
	c, ok := t.Confidence(cardinality, probed)
	return ok && c >= level
}

// Cells returns all populated cells sorted by (cardinality, probed), for
// rendering the Figure 4 matrix.
func (t *Table) Cells() []Cell {
	out := make([]Cell, 0, len(t.cells))
	for c, s := range t.cells {
		if s.Total >= t.MinSamples {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cardinality != out[j].Cardinality {
			return out[i].Cardinality < out[j].Cardinality
		}
		return out[i].Probed < out[j].Probed
	})
	return out
}

// Stats returns the raw tally of a cell (including under-sampled ones).
func (t *Table) Stats(c Cell) CellStats { return t.cells[c] }

var _ hobbit.Terminator = (*Table)(nil)

// BlockObservation is the full grouping of one homogeneous /24: every
// responsive address with its last-hop router, from exhaustive probing.
type BlockObservation struct {
	Block  iputil.Block24
	Groups []hobbit.Group
}

// Cardinality is the number of distinct last-hop routers in the full
// observation.
func (o BlockObservation) Cardinality() int { return len(o.Groups) }

// flatten returns (addr, group index) pairs.
func (o BlockObservation) flatten() []flatAddr {
	var out []flatAddr
	for gi, g := range o.Groups {
		for _, a := range g.Addrs {
			out = append(out, flatAddr{addr: a, group: gi})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

type flatAddr struct {
	addr  iputil.Addr
	group int
}

// Builder computes a Table from fully-probed homogeneous blocks.
type Builder struct {
	// Samples is the target number of sample points per cell (the paper
	// uses 16,588 for 99%/1% bounds).
	Samples int
	// MaxProbed bounds the subset sizes tabulated (the paper plots up
	// to 50).
	MaxProbed int
	// MaxCardinality bounds the cardinality axis (the paper plots up to
	// 40).
	MaxCardinality int
	// MaxPerBlock caps how many subsets are drawn from a single block
	// per subset size, so scarce cardinalities don't degenerate to
	// resampling one block.
	MaxPerBlock int
	// MinSubset is the smallest subset size (Hobbit needs 4 addresses).
	MinSubset int
	// Seed drives the deterministic subset draws.
	Seed uint64
}

// DefaultBuilder mirrors the paper's parameters with a practical per-block
// cap.
func DefaultBuilder(seed uint64) Builder {
	return Builder{
		Samples:        16588,
		MaxProbed:      50,
		MaxCardinality: 40,
		MaxPerBlock:    256,
		MinSubset:      4,
		Seed:           seed,
	}
}

func (b Builder) withDefaults() Builder {
	if b.Samples <= 0 {
		b.Samples = 16588
	}
	if b.MaxProbed <= 0 {
		b.MaxProbed = 50
	}
	if b.MaxCardinality <= 0 {
		b.MaxCardinality = 40
	}
	if b.MaxPerBlock <= 0 {
		b.MaxPerBlock = 256
	}
	if b.MinSubset < 4 {
		b.MinSubset = 4
	}
	return b
}

// Build tabulates the success ratio of Hobbit's hierarchy test over random
// destination combinations. Only blocks with cardinality >= 2 contribute:
// single-last-hop blocks are governed by the 6-probe rule, not this table.
func (b Builder) Build(obs []BlockObservation) (*Table, error) {
	b = b.withDefaults()
	blocksPerCard := make(map[int]int)
	for _, o := range obs {
		k := o.Cardinality()
		if k >= 2 && k <= b.MaxCardinality {
			blocksPerCard[k]++
		}
	}
	if len(blocksPerCard) == 0 {
		return nil, fmt.Errorf("confidence: no observations with cardinality >= 2")
	}

	t := &Table{
		cells:      make(map[Cell]CellStats),
		MinSamples: minSamplesFor(b.Samples),
		Level:      0.95,
	}
	for oi, o := range obs {
		k := o.Cardinality()
		if k < 2 || k > b.MaxCardinality {
			continue
		}
		flat := o.flatten()
		if len(flat) < b.MinSubset {
			continue
		}
		// Spread the per-cell sample budget across the blocks that
		// share this cardinality.
		draws := (b.Samples + blocksPerCard[k] - 1) / blocksPerCard[k]
		if draws > b.MaxPerBlock {
			draws = b.MaxPerBlock
		}
		maxN := len(flat)
		if maxN > b.MaxProbed {
			maxN = b.MaxProbed
		}
		for n := b.MinSubset; n <= maxN; n++ {
			cell := Cell{Cardinality: k, Probed: n}
			for d := 0; d < draws; d++ {
				ok := b.judgeSubset(flat, len(o.Groups), n, uint64(oi), uint64(d))
				s := t.cells[cell]
				s.Total++
				if ok {
					s.Successes++
				}
				t.cells[cell] = s
			}
		}
	}
	return t, nil
}

// judgeSubset draws a deterministic random n-subset and applies Hobbit's
// homogeneity determination to the partial grouping.
func (b Builder) judgeSubset(flat []flatAddr, numGroups, n int, blockKey, drawKey uint64) bool {
	// Partial Fisher-Yates over a copied index slice.
	idx := make([]int, len(flat))
	for i := range idx {
		idx[i] = i
	}
	members := make([][]iputil.Addr, numGroups)
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(flat)-i, b.Seed, blockKey, uint64(n), drawKey, uint64(i))
		idx[i], idx[j] = idx[j], idx[i]
		fa := flat[idx[i]]
		members[fa.group] = append(members[fa.group], fa.addr)
	}
	groups := make([]hobbit.Group, 0, numGroups)
	for gi, addrs := range members {
		if len(addrs) > 0 {
			groups = append(groups, hobbit.Group{LastHop: iputil.Addr(gi), Addrs: addrs})
		}
	}
	if len(groups) == 1 {
		// All sampled addresses share a last hop: Hobbit would judge
		// homogeneous once the 6-probe rule is met.
		return n >= 6
	}
	return hobbit.NonHierarchical(groups)
}

// minSamplesFor scales the paper's depiction threshold with the configured
// budget: the full budget keeps the 16,588-point rule, smaller test
// budgets require proportionally fewer.
func minSamplesFor(samples int) int {
	if samples >= 16588 {
		return 16588
	}
	min := samples / 2
	if min < 1 {
		min = 1
	}
	return min
}
