package rng

import (
	"math"
	"testing"
)

func TestMixDeterministic(t *testing.T) {
	a := Mix(1, 2, 3)
	b := Mix(1, 2, 3)
	if a != b {
		t.Fatal("Mix is not deterministic")
	}
	if Mix(1, 2, 3) == Mix(1, 3, 2) {
		t.Error("Mix should be order-sensitive")
	}
	if Mix(1, 2) == Mix(2, 2) {
		t.Error("Mix should depend on seed")
	}
}

func TestFloat64Range(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		v := Float64(42, i)
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Uniformish(t *testing.T) {
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += Float64(7, uint64(i))
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		counts[Intn(5, 9, uint64(i))]++
	}
	for k, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("Intn bucket %d = %d, want ~10000", k, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	Intn(0, 1)
}

func TestBool(t *testing.T) {
	hits := 0
	for i := 0; i < 100000; i++ {
		if Bool(0.25, 3, uint64(i)) {
			hits++
		}
	}
	got := float64(hits) / 100000
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("Bool(0.25) rate = %v", got)
	}
}

func TestNormMoments(t *testing.T) {
	var sum, sumsq float64
	n := 100000
	for i := 0; i < n; i++ {
		v := Norm(10, 2, 5, uint64(i))
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Norm mean = %v", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("Norm stddev = %v", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		v := Exp(3, 11, uint64(i))
		if v < 0 {
			t.Fatalf("Exp negative: %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-3) > 0.1 {
		t.Errorf("Exp mean = %v, want ~3", mean)
	}
}

func TestWeightedChoice(t *testing.T) {
	weights := []float64{1, 3}
	counts := make([]int, 2)
	for i := 0; i < 40000; i++ {
		counts[WeightedChoice(weights, 13, uint64(i))]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weighted ratio = %v, want ~3", ratio)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty WeightedChoice should panic")
		}
	}()
	WeightedChoice(nil, 1)
}
