// Package rng provides deterministic, order-independent randomness for the
// simulator. Unlike a sequential PRNG, every draw is a pure function of a
// seed and a tuple of keys, so the simulated Internet answers a probe the
// same way regardless of when or in what order probes are sent — the same
// property the real network has (routers hash header fields; they do not
// keep per-prober state).
package rng

import "math"

// Mix combines a seed with a sequence of keys into a well-distributed
// 64-bit value using splitmix64 finalization steps.
func Mix(seed uint64, keys ...uint64) uint64 {
	z := seed
	for _, k := range keys {
		z ^= k + 0x9e3779b97f4a7c15
		z = splitmix(z)
	}
	return splitmix(z)
}

func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 maps a mixed value to [0, 1).
func Float64(seed uint64, keys ...uint64) float64 {
	return float64(Mix(seed, keys...)>>11) / (1 << 53)
}

// Intn maps a mixed value to [0, n). It panics if n <= 0.
func Intn(n int, seed uint64, keys ...uint64) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(Mix(seed, keys...) % uint64(n))
}

// Bool returns true with probability p.
func Bool(p float64, seed uint64, keys ...uint64) bool {
	return Float64(seed, keys...) < p
}

// Norm returns a draw from a normal distribution with the given mean and
// standard deviation, via the Box-Muller transform over two derived
// uniforms.
func Norm(mean, stddev float64, seed uint64, keys ...uint64) float64 {
	base := Mix(seed, keys...)
	u1 := float64(splitmix(base)>>11) / (1 << 53)
	u2 := float64(splitmix(base+1)>>11) / (1 << 53)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Exp returns a draw from an exponential distribution with the given mean.
func Exp(mean float64, seed uint64, keys ...uint64) float64 {
	u := Float64(seed, keys...)
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// WeightedChoice picks an index into weights proportionally to the weight
// values. It panics if weights is empty or sums to zero or less.
func WeightedChoice(weights []float64, seed uint64, keys ...uint64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("rng: WeightedChoice with empty or zero weights")
	}
	target := Float64(seed, keys...) * total
	for i, w := range weights {
		target -= w
		if target < 0 {
			return i
		}
	}
	return len(weights) - 1
}
