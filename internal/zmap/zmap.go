// Package zmap reproduces the role of the ZMap ICMP Echo Request census in
// the paper: a full sweep of the address space recording which addresses
// answered, and the /24 selection criteria built on it (at least four
// active addresses with every /26 covered, Section 3.3).
package zmap

import (
	"context"
	"math/bits"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/parallel"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

// Scanner answers a census-time echo request. netsim.World satisfies this
// with its scan-epoch behaviour; a live deployment would wrap a raw-socket
// pinger. Implementations must be safe for concurrent ScanPing calls:
// ScanWith fans the sweep out over a worker pool.
type Scanner interface {
	ScanPing(a iputil.Addr) bool
}

// Dataset is the result of a census sweep: a 256-bit activity bitmap per
// /24 block.
type Dataset struct {
	active map[iputil.Block24]*[4]uint64
}

// NewDataset returns an empty dataset for incremental recording.
func NewDataset() *Dataset {
	return &Dataset{active: make(map[iputil.Block24]*[4]uint64)}
}

// Scan sweeps every address of the given blocks through the scanner and
// records responders.
func Scan(s Scanner, blocks []iputil.Block24) *Dataset {
	return ScanObserved(s, blocks, nil)
}

// ScanObserved is Scan with census-load accounting: it records the echo
// requests sent, the responders found, and the blocks with any activity
// under "census.…" counters in reg (nil reg keeps the plain behaviour).
func ScanObserved(s Scanner, blocks []iputil.Block24, reg *telemetry.Registry) *Dataset {
	return ScanWith(s, blocks, ScanOptions{Workers: 1, Telemetry: reg})
}

// ScanOptions configures a census sweep.
type ScanOptions struct {
	// Workers bounds the sweep's concurrency (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// Telemetry receives the "census.…" counters; nil disables them.
	Telemetry *telemetry.Registry
}

// ScanWith sweeps the blocks over a worker pool. Each worker fills the
// bitmap of the blocks it claims into an index-addressed slot; the slots
// are then merged — and the census counters applied — serially in block
// order, so the dataset and every counter are byte-identical for any
// worker count (TestScanWorkersIdentical pins this).
func ScanWith(s Scanner, blocks []iputil.Block24, opts ScanOptions) *Dataset {
	reg := opts.Telemetry
	scanPings := reg.Counter("census.scan_pings")
	responders := reg.Counter("census.responders")
	activeBlocks := reg.Counter("census.active_blocks")
	activePerBlock := reg.Histogram("census.active_per_block", []int64{4, 16, 64, 256})

	bms := make([][4]uint64, len(blocks))
	pool := parallel.Pool{Workers: opts.Workers, Telemetry: reg, Stage: "census"}
	// The background context is deliberate: a census is one bounded sweep
	// with no caller-visible cancellation surface.
	_ = pool.ForEach(context.Background(), len(blocks), func(i int) {
		b := blocks[i]
		for j := 0; j < 256; j++ {
			if s.ScanPing(b.Addr(j)) {
				bms[i][j>>6] |= 1 << uint(j&63)
			}
		}
	})

	d := NewDataset()
	for i, b := range blocks {
		scanPings.Add(256)
		active := bits.OnesCount64(bms[i][0]) + bits.OnesCount64(bms[i][1]) +
			bits.OnesCount64(bms[i][2]) + bits.OnesCount64(bms[i][3])
		if active > 0 {
			cp := bms[i]
			d.active[b] = &cp
			responders.Add(int64(active))
			activeBlocks.Inc()
			activePerBlock.Observe(int64(active))
		}
	}
	return d
}

// Equal reports whether two datasets record exactly the same responders.
func (d *Dataset) Equal(o *Dataset) bool {
	if len(d.active) != len(o.active) {
		return false
	}
	for b, bm := range d.active {
		obm, ok := o.active[b]
		if !ok || *bm != *obm {
			return false
		}
	}
	return true
}

// Record marks a single address as active, for building datasets by hand.
func (d *Dataset) Record(a iputil.Addr) {
	b := a.Block24()
	bm, ok := d.active[b]
	if !ok {
		bm = new([4]uint64)
		d.active[b] = bm
	}
	i := a.Low8()
	bm[i>>6] |= 1 << uint(i&63)
}

// Active reports whether the address answered the census.
func (d *Dataset) Active(a iputil.Addr) bool {
	bm, ok := d.active[a.Block24()]
	if !ok {
		return false
	}
	i := a.Low8()
	return bm[i>>6]&(1<<uint(i&63)) != 0
}

// ActiveCount returns the number of census responders in the block.
func (d *Dataset) ActiveCount(b iputil.Block24) int {
	bm, ok := d.active[b]
	if !ok {
		return 0
	}
	return bits.OnesCount64(bm[0]) + bits.OnesCount64(bm[1]) +
		bits.OnesCount64(bm[2]) + bits.OnesCount64(bm[3])
}

// Actives returns the census responders of a block in ascending order.
func (d *Dataset) Actives(b iputil.Block24) []iputil.Addr {
	bm, ok := d.active[b]
	if !ok {
		return nil
	}
	out := make([]iputil.Addr, 0, d.ActiveCount(b))
	for i := 0; i < 256; i++ {
		if bm[i>>6]&(1<<uint(i&63)) != 0 {
			out = append(out, b.Addr(i))
		}
	}
	return out
}

// ActivesBy26 splits a block's census responders by their /26, the
// grouping the destination-selection strategy probes round-robin.
func (d *Dataset) ActivesBy26(b iputil.Block24) [4][]iputil.Addr {
	var out [4][]iputil.Addr
	for _, a := range d.Actives(b) {
		q := a.Block26()
		out[q] = append(out[q], a)
	}
	return out
}

// TotalActive returns the number of census responders across all blocks.
func (d *Dataset) TotalActive() int {
	total := 0
	for b := range d.active {
		total += d.ActiveCount(b)
	}
	return total
}

// Eligible reports whether the block meets Section 3.3's selection
// criteria: at least minActive census responders overall and at least one
// in every /26.
func (d *Dataset) Eligible(b iputil.Block24, minActive int) bool {
	bm, ok := d.active[b]
	if !ok {
		return false
	}
	count := 0
	for q := 0; q < 4; q++ {
		qbits := bits.OnesCount64(bm[q])
		if qbits == 0 {
			return false
		}
		count += qbits
	}
	return count >= minActive
}

// EligibleBlocks filters blocks by the selection criteria, preserving
// order.
func (d *Dataset) EligibleBlocks(blocks []iputil.Block24, minActive int) []iputil.Block24 {
	out := make([]iputil.Block24, 0, len(blocks))
	for _, b := range blocks {
		if d.Eligible(b, minActive) {
			out = append(out, b)
		}
	}
	return out
}
