package zmap

import (
	"context"
	"reflect"
	"testing"

	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

// TestStreamMatchesScanWith pins the streaming half of the census
// determinism contract: the merged chunks of a Stream — and every census
// counter — must be byte-identical to a materialized ScanWith over the
// same world, at any worker count and chunk size, including chunk sizes
// that do not divide the block count.
func TestStreamMatchesScanWith(t *testing.T) {
	cfg := netsim.DefaultConfig(300)
	cfg.BigBlockScale = 0.02
	w, err := netsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	regWant := telemetry.NewRegistry()
	want := ScanWith(w, w.Blocks(), ScanOptions{Workers: 4, Telemetry: regWant})
	snapWant := regWant.Snapshot()

	for _, tc := range []struct {
		name      string
		workers   int
		chunkSize int
	}{
		{"workers=1", 1, 64},
		{"workers=8", 8, 64},
		{"odd-chunk", 8, 37},
		{"one-chunk", 8, 100000},
		{"defaults", 0, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := telemetry.NewRegistry()
			got := Collect(Stream(context.Background(), w, w.Blocks(), StreamOptions{
				Workers:   tc.workers,
				ChunkSize: tc.chunkSize,
				Telemetry: reg,
			}))
			if !got.Equal(want) || !want.Equal(got) {
				t.Fatal("streamed dataset differs from materialized ScanWith")
			}
			snap := reg.Snapshot()
			if !reflect.DeepEqual(snap.Counters, snapWant.Counters) {
				t.Errorf("counters differ:\nstream: %v\nsweep:  %v", snap.Counters, snapWant.Counters)
			}
			if !reflect.DeepEqual(snap.Histograms, snapWant.Histograms) {
				t.Errorf("histograms differ:\nstream: %v\nsweep:  %v", snap.Histograms, snapWant.Histograms)
			}
		})
	}
}

// TestStreamChunksInOrder checks the chunk contract itself: contiguous
// block-ordered runs covering the input exactly once.
func TestStreamChunksInOrder(t *testing.T) {
	cfg := netsim.DefaultConfig(120)
	cfg.BigBlockScale = 0.02
	w := netsim.MustNew(cfg)
	blocks := w.Blocks()
	next := 0
	for c := range Stream(context.Background(), w, blocks, StreamOptions{Workers: 8, ChunkSize: 16}) {
		if c.Start != next {
			t.Fatalf("chunk starts at %d, want %d", c.Start, next)
		}
		for i, b := range c.Blocks {
			if b != blocks[next+i] {
				t.Fatalf("chunk block %d = %v, want %v", next+i, b, blocks[next+i])
			}
		}
		next += len(c.Blocks)
	}
	if next != len(blocks) {
		t.Fatalf("chunks covered %d blocks, want %d", next, len(blocks))
	}
}

// TestStreamCancel checks that an abandoned consumer does not wedge the
// sweep: cancellation closes the channel after at most the in-flight
// window, with no goroutine left blocked (the -race run would catch a
// leaked worker via the test's world outliving it).
func TestStreamCancel(t *testing.T) {
	cfg := netsim.DefaultConfig(200)
	cfg.BigBlockScale = 0.02
	w := netsim.MustNew(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	ch := Stream(ctx, w, w.Blocks(), StreamOptions{Workers: 4, ChunkSize: 8})
	if _, ok := <-ch; !ok {
		t.Fatal("stream closed before any chunk")
	}
	cancel()
	for range ch {
	}
}

// TestStreamEmpty: a zero-block sweep closes immediately.
func TestStreamEmpty(t *testing.T) {
	ch := Stream(context.Background(), bitmapScanner{}, nil, StreamOptions{})
	if _, ok := <-ch; ok {
		t.Fatal("empty stream emitted a chunk")
	}
}
