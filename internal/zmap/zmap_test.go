package zmap

import (
	"testing"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

// bitmapScanner is a hand-built scanner for unit tests.
type bitmapScanner map[iputil.Addr]bool

func (s bitmapScanner) ScanPing(a iputil.Addr) bool { return s[a] }

func b24(s string) iputil.Block24 { return iputil.MustParseBlock24(s) }

func TestScanRecordsActives(t *testing.T) {
	blk := b24("1.2.3.0")
	s := bitmapScanner{
		blk.Addr(0):   true,
		blk.Addr(63):  true,
		blk.Addr(64):  true,
		blk.Addr(255): true,
	}
	d := Scan(s, []iputil.Block24{blk, b24("9.9.9.0")})
	if d.ActiveCount(blk) != 4 {
		t.Fatalf("ActiveCount = %d", d.ActiveCount(blk))
	}
	if !d.Active(blk.Addr(63)) || d.Active(blk.Addr(1)) {
		t.Error("Active bitmap wrong")
	}
	if d.ActiveCount(b24("9.9.9.0")) != 0 {
		t.Error("empty block should have no actives")
	}
	got := d.Actives(blk)
	want := []iputil.Addr{blk.Addr(0), blk.Addr(63), blk.Addr(64), blk.Addr(255)}
	if len(got) != len(want) {
		t.Fatalf("Actives = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Actives[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if d.TotalActive() != 4 {
		t.Errorf("TotalActive = %d", d.TotalActive())
	}
}

func TestActivesBy26(t *testing.T) {
	blk := b24("1.2.3.0")
	s := bitmapScanner{
		blk.Addr(5):   true, // /26 #0
		blk.Addr(70):  true, // /26 #1
		blk.Addr(130): true, // /26 #2
		blk.Addr(200): true, // /26 #3
		blk.Addr(201): true, // /26 #3
	}
	d := Scan(s, []iputil.Block24{blk})
	by := d.ActivesBy26(blk)
	if len(by[0]) != 1 || len(by[1]) != 1 || len(by[2]) != 1 || len(by[3]) != 2 {
		t.Errorf("ActivesBy26 = %v", by)
	}
}

func TestEligible(t *testing.T) {
	blk := b24("1.2.3.0")
	// Three /26s covered, four actives: not eligible (missing /26).
	s := bitmapScanner{
		blk.Addr(5): true, blk.Addr(70): true,
		blk.Addr(130): true, blk.Addr(131): true,
	}
	d := Scan(s, []iputil.Block24{blk})
	if d.Eligible(blk, 4) {
		t.Error("block missing a /26 should not be eligible")
	}
	// Cover the fourth /26.
	s[blk.Addr(200)] = true
	d = Scan(s, []iputil.Block24{blk})
	if !d.Eligible(blk, 4) {
		t.Error("block with all /26s and 5 actives should be eligible")
	}
	if d.Eligible(blk, 6) {
		t.Error("minActive=6 should reject 5 actives")
	}
	if d.Eligible(b24("8.8.8.0"), 1) {
		t.Error("unscanned block should not be eligible")
	}
}

func TestRecord(t *testing.T) {
	d := NewDataset()
	a := iputil.MustParseAddr("4.4.4.77")
	d.Record(a)
	if !d.Active(a) || d.ActiveCount(a.Block24()) != 1 {
		t.Error("Record/Active broken")
	}
}

func TestScanWorld(t *testing.T) {
	cfg := netsim.DefaultConfig(400)
	cfg.BigBlockScale = 0.02
	w, err := netsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := Scan(w, w.Blocks())
	eligible := d.EligibleBlocks(w.Blocks(), 4)
	if len(eligible) == 0 {
		t.Fatal("no eligible blocks in world")
	}
	// High-activity blocks dominate; eligibility should be substantial
	// but not total (low-activity blocks fail the /26 criterion).
	frac := float64(len(eligible)) / float64(len(w.Blocks()))
	if frac < 0.4 || frac > 0.95 {
		t.Errorf("eligible fraction = %v", frac)
	}
	// Dataset agrees with the world's scan-time truth.
	for _, b := range eligible[:10] {
		for _, a := range d.Actives(b) {
			if !w.ScanActive(a) {
				t.Fatalf("dataset active %v not scan-active in world", a)
			}
		}
	}
}

// TestScanWorkersIdentical pins the parallel census determinism contract:
// the dataset and every census counter must be byte-identical for any
// worker count.
func TestScanWorkersIdentical(t *testing.T) {
	cfg := netsim.DefaultConfig(300)
	cfg.BigBlockScale = 0.02
	w, err := netsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg1 := telemetry.NewRegistry()
	reg8 := telemetry.NewRegistry()
	d1 := ScanWith(w, w.Blocks(), ScanOptions{Workers: 1, Telemetry: reg1})
	d8 := ScanWith(w, w.Blocks(), ScanOptions{Workers: 8, Telemetry: reg8})
	if !d1.Equal(d8) {
		t.Fatal("Workers=1 and Workers=8 datasets differ")
	}
	if !d8.Equal(d1) {
		t.Fatal("Equal is not symmetric")
	}
	s1, s8 := reg1.Snapshot(), reg8.Snapshot()
	for _, name := range []string{"census.scan_pings", "census.responders", "census.active_blocks"} {
		if s1.Counters[name] != s8.Counters[name] {
			t.Errorf("%s: Workers=1 %d != Workers=8 %d", name, s1.Counters[name], s8.Counters[name])
		}
	}
	// And the pool default (GOMAXPROCS) agrees too.
	if !d1.Equal(ScanWith(w, w.Blocks(), ScanOptions{})) {
		t.Error("Workers=0 dataset differs")
	}
}

func TestDatasetEqual(t *testing.T) {
	a, b := NewDataset(), NewDataset()
	if !a.Equal(b) {
		t.Error("empty datasets must be equal")
	}
	a.Record(iputil.MustParseAddr("1.2.3.4"))
	if a.Equal(b) || b.Equal(a) {
		t.Error("datasets with different blocks must differ")
	}
	b.Record(iputil.MustParseAddr("1.2.3.5"))
	if a.Equal(b) {
		t.Error("datasets with different bitmaps must differ")
	}
	b2 := NewDataset()
	b2.Record(iputil.MustParseAddr("1.2.3.4"))
	if !a.Equal(b2) {
		t.Error("identical recordings must be equal")
	}
}
