package zmap

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

// Chunk is one block-ordered slice of a streaming census: the blocks it
// covers (a contiguous run of the sweep's input) and the activity
// recorded for them. Start is the index of Blocks[0] in the input slice.
type Chunk struct {
	Start  int
	Blocks []iputil.Block24
	Data   *Dataset
}

// StreamOptions configures a streaming census sweep.
type StreamOptions struct {
	// Workers bounds the sweep's concurrency (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// ChunkSize is the number of blocks per emitted chunk (0 = 1024).
	ChunkSize int
	// Window bounds the chunks in flight — claimed by a worker but not
	// yet received by the consumer (0 = 2× workers, minimum 2). The
	// sweep's peak memory is one Dataset per in-flight chunk, so the
	// window is what keeps a million-block census from materializing.
	Window int
	// Telemetry receives the "census.…" counters; nil disables them.
	Telemetry *telemetry.Registry
}

func (o StreamOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o StreamOptions) chunkSize() int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	return 1024
}

func (o StreamOptions) window(workers int) int {
	w := o.Window
	if w <= 0 {
		w = 2 * workers
	}
	if w < 2 {
		w = 2
	}
	return w
}

// Stream sweeps the blocks like ScanWith but emits the dataset as
// block-ordered chunks over the returned channel instead of materializing
// the full sweep. Workers claim chunk indices from a shared cursor and
// scan into index-addressed slots; a single emitter then applies the
// census counters and sends each chunk strictly in input order, so the
// concatenated chunks — and every counter — are byte-identical to a
// ScanWith over the same blocks at any worker count
// (TestStreamMatchesScanWith pins this).
//
// A worker may only claim a chunk after taking a window token, and the
// emitter returns the token once the consumer has received the chunk, so
// at most Window chunk datasets exist at a time: a slow consumer stalls
// the sweep instead of buffering it.
//
// The channel is closed when the sweep completes or ctx is cancelled;
// on cancellation the already-scanned prefix may be partially emitted.
func Stream(ctx context.Context, s Scanner, blocks []iputil.Block24, opts StreamOptions) <-chan Chunk {
	out := make(chan Chunk)
	go func() {
		defer close(out)
		n := len(blocks)
		if n == 0 {
			return
		}
		cs := opts.chunkSize()
		nc := (n + cs - 1) / cs
		workers := opts.workers()
		if workers > nc {
			workers = nc
		}

		slots := make([]*Dataset, nc)
		ready := make([]chan struct{}, nc)
		for i := range ready {
			ready[i] = make(chan struct{})
		}
		// gate holds one token per in-flight chunk; workers must place a
		// token before claiming a chunk and the emitter removes it after
		// the consumer receives the chunk.
		gate := make(chan struct{}, opts.window(workers))
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					select {
					case gate <- struct{}{}:
					case <-ctx.Done():
						return
					}
					i := int(cursor.Add(1)) - 1
					if i >= nc {
						return
					}
					lo := i * cs
					hi := lo + cs
					if hi > n {
						hi = n
					}
					slots[i] = scanChunk(s, blocks[lo:hi])
					close(ready[i])
				}
			}()
		}
		defer wg.Wait()

		reg := opts.Telemetry
		scanPings := reg.Counter("census.scan_pings")
		responders := reg.Counter("census.responders")
		activeBlocks := reg.Counter("census.active_blocks")
		activePerBlock := reg.Histogram("census.active_per_block", []int64{4, 16, 64, 256})
		for i := 0; i < nc; i++ {
			select {
			case <-ready[i]:
			case <-ctx.Done():
				return
			}
			d := slots[i]
			slots[i] = nil
			lo := i * cs
			hi := lo + cs
			if hi > n {
				hi = n
			}
			chunkBlocks := blocks[lo:hi]
			for _, b := range chunkBlocks {
				scanPings.Add(256)
				if active := d.ActiveCount(b); active > 0 {
					responders.Add(int64(active))
					activeBlocks.Inc()
					activePerBlock.Observe(int64(active))
				}
			}
			select {
			case out <- Chunk{Start: lo, Blocks: chunkBlocks, Data: d}:
				<-gate
			case <-ctx.Done():
				return
			}
		}
		// Match the pool accounting of a completed ScanWith fan-out, so
		// a streamed and a materialized census leave identical telemetry
		// snapshots. Cancelled sweeps return above and, like cancelled
		// ForEach runs, go uncounted.
		reg.Counter("census.parallel_items").Add(int64(n))
		reg.Counter("census.parallel_runs").Inc()
	}()
	return out
}

// scanChunk sweeps one contiguous run of blocks serially into a fresh
// dataset — the per-chunk unit of work a Stream worker performs.
func scanChunk(s Scanner, blocks []iputil.Block24) *Dataset {
	d := NewDataset()
	for _, b := range blocks {
		var bm [4]uint64
		for j := 0; j < 256; j++ {
			if s.ScanPing(b.Addr(j)) {
				bm[j>>6] |= 1 << uint(j&63)
			}
		}
		if bm != ([4]uint64{}) {
			cp := bm
			d.active[b] = &cp
		}
	}
	return d
}

// MergeChunk folds a streamed chunk into the dataset. Chunks of one
// stream cover disjoint blocks, so merging every chunk of a sweep (in any
// order) reproduces the ScanWith dataset exactly.
func (d *Dataset) MergeChunk(c Chunk) {
	for _, b := range c.Blocks {
		if bm, ok := c.Data.active[b]; ok {
			d.active[b] = bm
		}
	}
}

// Collect drains a stream into one dataset — the materializing consumer,
// used where the streamed and swept forms must be interchangeable.
func Collect(ch <-chan Chunk) *Dataset {
	d := NewDataset()
	for c := range ch {
		d.MergeChunk(c)
	}
	return d
}
