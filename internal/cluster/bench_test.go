package cluster

import (
	"fmt"
	"testing"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/graph"
	"github.com/hobbitscan/hobbit/internal/iputil"
)

// benchAggregates builds n aggregates in small families (the clusterable
// mass a real campaign produces) plus a singleton tail.
func benchAggregates(n int) []*aggregate.Block {
	var blocks []*aggregate.Block
	f := 0
	for len(blocks) < n {
		fam := starvedFamily(5, 8, uint32(f)*0x1000)
		for _, b := range fam {
			if len(blocks) >= n {
				break
			}
			b.ID = len(blocks)
			blocks = append(blocks, b)
		}
		f++
	}
	return blocks
}

// BenchmarkGraphBuild compares the two similarity-graph constructions
// over the same aggregates: the barrier path (BuildGraphWorkers shards
// the O(n·candidates) pair scan over a pool) against the incremental
// path (one Observe per aggregate growing the graph through the
// inverted index, seal machinery included, MCL pool never started). The
// adjacency lists are identical by contract (TestStreamerMatchesBarrier);
// this leg pins the cost of getting them.
func BenchmarkGraphBuild(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		blocks := benchAggregates(n)
		b.Run(fmt.Sprintf("barrier-%dk", n/1000), func(b *testing.B) {
			b.ReportAllocs()
			var edges int
			for i := 0; i < b.N; i++ {
				g := BuildGraphWorkers(blocks, 8)
				edges = g.NumEdges()
			}
			b.ReportMetric(float64(edges), "edges")
		})
		b.Run(fmt.Sprintf("incremental-%dk", n/1000), func(b *testing.B) {
			b.ReportAllocs()
			var edges int
			for i := 0; i < b.N; i++ {
				// A bare Streamer with no worker pool: dispatch parks
				// sealed jobs on pending (nil channel, non-blocking), so
				// the leg measures graph growth and seal snapshots, not
				// MCL.
				s := &Streamer{
					p:       &Pipeline{Seed: 1},
					g:       graph.New(0),
					posting: make(map[iputil.Addr][]int),
					jobs:    make(map[int]*mclJob),
				}
				for _, blk := range blocks {
					s.Observe(blk, true)
				}
				edges = s.g.NumEdges()
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}
