package cluster

import (
	"sort"
	"strings"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/graph"
)

// Rolling is the epoch-over-epoch form of the streaming clusterer: one
// persistent Streamer whose graph is repaired by key diffs — aggregates
// that vanished since the previous epoch are retracted, new ones
// observed — so each epoch's clustering costs work proportional to the
// churned components, not the universe.
//
// The headline contract (DESIGN.md §4j) is byte-identity: Epoch returns
// exactly the Result a from-scratch Pipeline.Run would produce on the
// same aggregate list. Two mechanisms carry it. First, the epoch's
// aggregates arrive in campaign order, so their positions ARE the
// vertex ids a from-scratch run would assign ("ranks"); components are
// assembled in rank order even though the persistent graph numbers
// vertices in arrival-across-epochs order. Second, MCL is not assumed
// permutation-equivariant — floating-point summation order differs
// under vertex reorderings — so a component's clustering is reused only
// on a signature hit, where the signature is the member key list in
// subgraph vertex order: a hit proves the cached MCL ran on the
// bit-identical subgraph a from-scratch run would build. Misses
// recompute on the worker pool over a canonically reconstructed
// subgraph (edges added in the lexicographic order graph.Subgraph
// produces over an ascending member list).
type Rolling struct {
	s *Streamer
	// vert maps a live aggregate key to its persistent vertex; keyOf is
	// the inverse ("" for tombstones).
	vert  map[string]int
	keyOf []string
	// sig caches component sweep jobs by ordered-member-key signature;
	// rebuilt each epoch from the components actually present, so
	// vanished components do not accumulate.
	sig map[string]*mclJob
}

// EpochStats reports one Epoch call's incremental work.
type EpochStats struct {
	// Added and Retracted count the aggregate-key diff fed to the graph.
	Added, Retracted int
	// Components is the epoch's component count; Reused of them hit the
	// signature cache and Recomputed ran MCL (the dirty ones).
	Components, Reused, Recomputed int
	// DeltaEdges counts similarity edges inserted this epoch.
	DeltaEdges int
}

// Rolling starts a persistent epoch clusterer over the pipeline's
// configuration. Callers feed it one Epoch per aggregation replay and
// must end it with Close; the embedded streamer's quiet-window sealing
// is disabled (Epoch dispatches canonical per-component jobs itself).
func (p *Pipeline) Rolling() *Rolling {
	s := p.Stream()
	s.sealDisabled = true
	return &Rolling{
		s:    s,
		vert: make(map[string]int),
		sig:  make(map[string]*mclJob),
	}
}

// Epoch repairs the clustering to match the given aggregate list — the
// epoch's aggregates in campaign order, as aggregate.Builder.Finish
// returns them — and returns the epoch's Result plus the incremental
// work accounting. The first call bootstraps (everything is new); later
// calls cost O(churned components). Aggregate keys must be unique
// within the list, which Builder guarantees by construction (it merges
// blocks by key).
func (r *Rolling) Epoch(aggs []*aggregate.Block) (*Result, EpochStats) {
	s := r.s
	var stats EpochStats
	edges0 := s.deltaEdges

	keys := make([]string, len(aggs))
	cur := make(map[string]*aggregate.Block, len(aggs))
	for i, b := range aggs {
		keys[i] = aggregate.Key(b.LastHops)
		cur[keys[i]] = b
	}

	// Retract vanished keys in ascending vertex order (any fixed order
	// works — retraction rebuilds from the surviving edge set — but a
	// deterministic one keeps internal counters replayable).
	var gone []int
	for k, v := range r.vert {
		if _, ok := cur[k]; !ok {
			gone = append(gone, v)
		}
	}
	sort.Ints(gone)
	for _, v := range gone {
		delete(r.vert, r.keyOf[v])
		r.keyOf[v] = ""
		s.Retract(v)
		stats.Retracted++
	}

	// Observe new keys in rank order; refresh surviving vertices' block
	// pointers so retired epochs' member slices can be collected.
	for i, b := range aggs {
		if v, ok := r.vert[keys[i]]; ok {
			s.blocks[v] = b
			continue
		}
		v := s.Observe(b, true)
		r.vert[keys[i]] = v
		for len(r.keyOf) <= v {
			r.keyOf = append(r.keyOf, "")
		}
		r.keyOf[v] = keys[i]
		stats.Added++
	}
	stats.DeltaEdges = s.deltaEdges - edges0

	// Components in canonical order: sweep ranks ascending, group by
	// root on first sight — exactly the ascending-vertex sweep a
	// from-scratch Finish runs, because from-scratch ids are ranks.
	rootIndex := make(map[int]int)
	var roots []int
	memberRanks := make(map[int][]int)
	for i := range aggs {
		rt := s.find(r.vert[keys[i]])
		if _, ok := rootIndex[rt]; !ok {
			rootIndex[rt] = len(roots)
			roots = append(roots, rt)
		}
		memberRanks[rt] = append(memberRanks[rt], i)
	}
	stats.Components = len(roots)

	// Resolve each multi-vertex component's sweep job: a signature hit
	// reuses the cached canonical clustering, a miss dispatches a
	// canonical recompute to the (still running) worker pool.
	newSig := make(map[string]*mclJob, len(roots))
	jobs := make([]*mclJob, len(roots))
	for ci, rt := range roots {
		ranks := memberRanks[rt]
		if len(ranks) < 2 {
			continue
		}
		var b strings.Builder
		for _, rk := range ranks {
			b.WriteString(keys[rk])
			b.WriteByte('\n')
		}
		sigKey := b.String()
		if job, ok := r.sig[sigKey]; ok {
			jobs[ci] = job
			newSig[sigKey] = job
			stats.Reused++
			continue
		}
		job := r.canonicalJob(ranks, keys)
		jobs[ci] = job
		newSig[sigKey] = job
		stats.Recomputed++
		s.jobsWG.Add(1)
		s.jobCh <- job
	}
	s.jobsWG.Wait()
	r.sig = newSig

	// Merge exactly as Finish does: global median over the full graph
	// (the persistent graph's edge multiset equals the from-scratch
	// one), deferred sweep, assembly in component order — except member
	// lookups go through ranks into this epoch's aggregate list, never
	// through the persistent streamer's stale block pointers.
	res := &Result{SweepScores: make(map[float64]float64), Components: len(roots)}
	median, hasEdges := s.g.MedianWeight()
	bestIdx := s.p.mergeSweep(res, jobs, median, hasEdges)
	clustered := make([]bool, len(aggs))
	for ci := range roots {
		job := jobs[ci]
		if job == nil {
			continue
		}
		ranks := memberRanks[roots[ci]]
		for _, cl := range job.clusterings[bestIdx] {
			if len(cl) < 2 {
				continue
			}
			c := &Cluster{ID: len(res.Clusters)}
			for _, v := range cl {
				c.Members = append(c.Members, aggs[ranks[v]])
				clustered[ranks[v]] = true
			}
			res.Clusters = append(res.Clusters, c)
		}
	}
	for i, b := range aggs {
		if !clustered[i] {
			res.Unclustered = append(res.Unclustered, b)
		}
	}
	return res, stats
}

// Close joins the worker pool; the Rolling is dead afterwards.
func (r *Rolling) Close() { r.s.Abort() }

// canonicalJob builds a component's sweep job over the canonical
// (rank-ordered) member list: sub vertex i is ranks[i], and edges enter
// the subgraph in lexicographic (i, j) order — the order graph.Subgraph
// produces over an ascending member list, which is what MCL's bitwise
// determinism keys on.
func (r *Rolling) canonicalJob(ranks []int, keys []string) *mclJob {
	s := r.s
	members := make([]int, len(ranks))
	idx := make(map[int]int, len(ranks))
	for i, rk := range ranks {
		v := r.vert[keys[rk]]
		members[i] = v
		idx[v] = i
	}
	type subEdge struct {
		i, j int
		w    float64
	}
	var edges []subEdge
	for i, v := range members {
		for _, e := range s.g.Neighbors(v) {
			if j, ok := idx[e.To]; ok && i < j {
				edges = append(edges, subEdge{i: i, j: j, w: e.Weight})
			}
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].i != edges[b].i {
			return edges[a].i < edges[b].i
		}
		return edges[a].j < edges[b].j
	})
	sub := graph.New(len(members))
	for _, e := range edges {
		sub.AddEdge(e.i, e.j, e.w)
	}
	return &mclJob{members: members, sub: sub}
}
