package cluster

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/graph"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/mcl"
)

// sealHorizon is the quiet window, in Observe calls, after which a
// component untouched by any aggregate delta is optimistically sealed and
// its MCL runs dispatched. The horizon is counted on the single-threaded
// Observe sequence — never on wall clock, chunk boundaries, or worker
// scheduling — so which components seal early (and therefore every seal
// counter) is a pure function of the observed delta sequence. A component
// a later delta does touch after sealing is invalidated and re-clustered,
// so the horizon trades duplicated MCL work against pipeline overlap
// without ever affecting output (DESIGN.md §4i).
const sealHorizon = 256

// mclJob is one sealed component's clustering work unit: MCL at every
// sweep inflation over a subgraph snapshot taken at seal time. Results
// are read only after the worker pool is joined, and only for jobs that
// were never invalidated, so the snapshot is immutable for the job's
// lifetime.
type mclJob struct {
	// members are the component's vertices, ascending; sub is the induced
	// subgraph over them (sub vertex i == members[i]).
	members []int
	sub     *graph.Graph
	// canceled stops unfinished inflations early when a later delta
	// invalidated the seal; the results of a canceled job are never read,
	// so the flag only reclaims wasted work.
	canceled atomic.Bool
	// clusterings[k] is the MCL output at inflations[k]; intraBelow[k]
	// and intraTotal[k] count this component's intra-cluster edges below
	// the (deferred) global median and in total. The weights are kept
	// sorted so the below-median count is a binary search at Finish,
	// after the full graph's median is known.
	clusterings [][][]int
	intra       [][]float64
}

// Streamer is the incremental form of Pipeline.Run: aggregate deltas are
// observed one at a time as a campaign emits them, the similarity graph
// grows through a last-hop inverted index (candidate edges touch only
// vertices sharing a hop, never all pairs), and connected components that
// stay quiet for sealHorizon deltas are clustered on a worker pool while
// later deltas are still arriving. Finish drains the remainder and merges
// per-component results in component order, producing a Result
// byte-identical to the barrier path at any worker count and any delta
// chunking (TestStreamerMatchesBarrier pins this).
//
// Observe and Finish/Abort must run on one goroutine; only the MCL jobs
// are concurrent.
type Streamer struct {
	p *Pipeline

	g      *graph.Graph
	blocks []*aggregate.Block
	// posting is the last-hop inverted index: hop -> vertices whose
	// aggregate's set contains it, ascending (vertices are created in
	// ascending order and appended at creation).
	posting map[iputil.Addr][]int
	cand    []int

	// Union-find over vertices with member chains: head/tail/link thread
	// each root's member list without per-component slices.
	parent []int
	size   []int
	head   []int
	tail   []int
	link   []int

	// lastTouch[r] is the Observe sequence of root r's last structural
	// change; sealQueue replays touch events FIFO so trySeal only
	// examines components whose quiet window elapsed.
	seq       int
	lastTouch []int
	sealQueue []sealEvent
	qhead     int

	// jobs holds the valid early-sealed jobs by root; allJobs every job
	// ever dispatched (for Abort). pending buffers jobs the bounded
	// channel could not accept without blocking the Observe path.
	jobs    map[int]*mclJob
	allJobs []*mclJob
	pending []*mclJob

	jobCh chan *mclJob
	wg    sync.WaitGroup
	// jobsWG counts dispatched-but-unfinished jobs, so the rolling epoch
	// clusterer can await a batch without closing the pool the way
	// Finish does.
	jobsWG sync.WaitGroup

	// sealDisabled turns off the quiet-window seal machinery: the
	// rolling clusterer drives MCL through canonical per-component jobs
	// instead (see epoch.go), so speculative internal-order seals would
	// only burn workers.
	sealDisabled bool

	deltaEdges    int
	invalidations int
	retractions   int
	closed        bool
}

type sealEvent struct {
	root int
	seq  int
}

// Stream returns a Streamer over the pipeline's configuration with its
// MCL worker pool started. Callers feed it with Observe and must end it
// with exactly one Finish (normal completion) or Abort (error path), both
// of which join the pool.
func (p *Pipeline) Stream() *Streamer {
	s := &Streamer{
		p:       p,
		g:       graph.New(0),
		posting: make(map[iputil.Addr][]int),
		jobs:    make(map[int]*mclJob),
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtimeWorkers()
	}
	s.jobCh = make(chan *mclJob, 2*workers)
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer s.wg.Done()
			for j := range s.jobCh {
				s.runJob(j)
				s.jobsWG.Done()
			}
		}()
	}
	return s
}

// Observe folds one aggregate delta into the stream: blk is the aggregate
// a kept campaign result landed in and isNew whether that result created
// it (aggregate.Builder.Add's return values). A new aggregate becomes a
// vertex whose edges are resolved through the inverted index — its
// last-hop set is final at creation, so the edge set never needs
// revisiting — while a repeat only ages the quiet windows: member lists
// grow after creation, but no edge weight depends on them. It returns
// the created vertex id (-1 for a repeat), which the rolling epoch
// clusterer records; batch callers ignore it.
func (s *Streamer) Observe(blk *aggregate.Block, isNew bool) int {
	s.seq++
	vertex := -1
	if isNew {
		v := s.g.AddVertex()
		vertex = v
		s.blocks = append(s.blocks, blk)
		s.parent = append(s.parent, v)
		s.size = append(s.size, 1)
		s.head = append(s.head, v)
		s.tail = append(s.tail, v)
		s.link = append(s.link, -1)
		s.lastTouch = append(s.lastTouch, 0)

		// Candidate neighbors: every earlier vertex sharing a last hop,
		// deduplicated in ascending order — the same pair set, scored
		// with the same Similarity calls, as the barrier build; and
		// because earlier vertices gain their larger neighbors in vertex
		// creation order, the adjacency lists come out identical too.
		cand := s.cand[:0]
		for _, lh := range blk.LastHops {
			cand = append(cand, s.posting[lh]...)
			s.posting[lh] = append(s.posting[lh], v)
		}
		sort.Ints(cand)
		prev := -1
		for _, j := range cand {
			if j == prev {
				continue
			}
			prev = j
			w := aggregate.Similarity(s.blocks[j].LastHops, blk.LastHops)
			if w > 0 {
				s.g.AddEdge(j, v, w)
				s.deltaEdges++
				s.union(j, v)
			}
		}
		s.cand = cand[:0]
		r := s.find(v)
		s.lastTouch[r] = s.seq
		if !s.sealDisabled {
			s.sealQueue = append(s.sealQueue, sealEvent{root: r, seq: s.seq})
		}
	}
	if !s.sealDisabled {
		s.trySeal()
		s.drainPending(false)
	}
	return vertex
}

// Retract removes a previously observed aggregate from the stream: its
// vertex leaves the inverted index and the graph, and — because cutting
// a vertex can split its component — the survivors' union-find state is
// rebuilt from the remaining edges. Retracting a vertex a sealed job
// covered invalidates the seal, exactly like a structural union would.
// Tombstoned ids are never reused; a key that reappears in a later
// epoch becomes a fresh vertex.
func (s *Streamer) Retract(v int) {
	if v < 0 || v >= len(s.blocks) || s.blocks[v] == nil {
		return
	}
	s.seq++
	s.retractions++
	blk := s.blocks[v]
	r := s.find(v)
	s.invalidate(r)

	// Surviving members of the component, ascending.
	members := make([]int, 0, s.size[r]-1)
	for u := s.head[r]; u != -1; u = s.link[u] {
		if u != v {
			members = append(members, u)
		}
	}
	sort.Ints(members)

	// Drop v from the posting lists (order-preserving, so they stay
	// ascending) and from the graph, then tombstone it: a dead singleton
	// whose lastTouch no queued seal event can match.
	for _, lh := range blk.LastHops {
		row := s.posting[lh]
		k := 0
		for _, u := range row {
			if u != v {
				row[k] = u
				k++
			}
		}
		if k == 0 {
			delete(s.posting, lh)
		} else {
			s.posting[lh] = row[:k]
		}
	}
	s.g.RemoveVertex(v)
	s.blocks[v] = nil
	s.parent[v] = v
	s.size[v] = 1
	s.head[v], s.tail[v], s.link[v] = v, v, -1
	s.lastTouch[v] = s.seq

	// Rebuild the survivors: reset to singletons, then re-union along
	// the remaining edges in ascending member order. The resulting roots
	// depend only on the surviving edge set, never on the order the
	// component originally grew, so a retraction replays identically.
	for _, u := range members {
		s.parent[u] = u
		s.size[u] = 1
		s.head[u], s.tail[u], s.link[u] = u, u, -1
	}
	for _, u := range members {
		for _, e := range s.g.Neighbors(u) {
			if e.To > u {
				s.union(u, e.To)
			}
		}
	}
	// Every surviving root re-enters the quiet-window race.
	for _, u := range members {
		ru := s.find(u)
		if s.lastTouch[ru] == s.seq {
			continue
		}
		s.lastTouch[ru] = s.seq
		if !s.sealDisabled {
			s.sealQueue = append(s.sealQueue, sealEvent{root: ru, seq: s.seq})
		}
	}
	if !s.sealDisabled {
		s.trySeal()
		s.drainPending(false)
	}
}

func (s *Streamer) find(x int) int {
	for s.parent[x] != x {
		s.parent[x] = s.parent[s.parent[x]]
		x = s.parent[x]
	}
	return x
}

// union merges the components of a and b, invalidating any early seal on
// either side: a sealed component a later delta touches was clustered on
// a stale snapshot, so its job is canceled and the merged component
// re-enters the quiet-window race.
func (s *Streamer) union(a, b int) {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return
	}
	s.invalidate(ra)
	s.invalidate(rb)
	if s.size[ra] < s.size[rb] || (s.size[ra] == s.size[rb] && ra > rb) {
		ra, rb = rb, ra
	}
	s.parent[rb] = ra
	s.size[ra] += s.size[rb]
	s.link[s.tail[ra]] = s.head[rb]
	s.tail[ra] = s.tail[rb]
}

func (s *Streamer) invalidate(root int) {
	if job, ok := s.jobs[root]; ok {
		job.canceled.Store(true)
		delete(s.jobs, root)
		s.invalidations++
	}
}

// trySeal seals every component whose newest structural change is at
// least sealHorizon Observe calls old: its members are snapshotted in
// ascending order, the induced subgraph is copied (the live graph keeps
// growing underneath), and the job is handed to the pool. Singleton
// components never need MCL and are left for Finish.
func (s *Streamer) trySeal() {
	for s.qhead < len(s.sealQueue) {
		ev := s.sealQueue[s.qhead]
		if ev.seq > s.seq-sealHorizon {
			break
		}
		s.qhead++
		r := ev.root
		if s.find(r) != r || s.lastTouch[r] != ev.seq || s.size[r] < 2 {
			continue
		}
		if _, ok := s.jobs[r]; ok {
			continue
		}
		job := s.makeJob(r)
		s.jobs[r] = job
		s.dispatch(job, false)
	}
	// Reclaim the consumed prefix once it dominates the queue.
	if s.qhead > 1024 && s.qhead*2 >= len(s.sealQueue) {
		s.sealQueue = append(s.sealQueue[:0], s.sealQueue[s.qhead:]...)
		s.qhead = 0
	}
}

// makeJob snapshots root's component: sorted members and the induced
// subgraph, both extracted on the Observe goroutine so jobs never read
// the growing graph.
func (s *Streamer) makeJob(root int) *mclJob {
	members := make([]int, 0, s.size[root])
	for v := s.head[root]; v != -1; v = s.link[v] {
		members = append(members, v)
	}
	sort.Ints(members)
	sub, _ := s.g.Subgraph(members)
	return &mclJob{members: members, sub: sub}
}

// dispatch hands a job to the pool. On the Observe path (block=false) a
// full channel parks the job on pending instead of stalling the
// pipeline; Finish retries with block=true.
func (s *Streamer) dispatch(job *mclJob, block bool) {
	s.allJobs = append(s.allJobs, job)
	s.jobsWG.Add(1)
	if block {
		s.jobCh <- job
		return
	}
	select {
	case s.jobCh <- job:
	default:
		s.pending = append(s.pending, job)
	}
}

// drainPending opportunistically moves parked jobs onto the channel.
func (s *Streamer) drainPending(block bool) {
	for len(s.pending) > 0 {
		if block {
			s.jobCh <- s.pending[0]
		} else {
			select {
			case s.jobCh <- s.pending[0]:
			default:
				return
			}
		}
		s.pending = s.pending[1:]
	}
}

// runJob executes one component's sweep work on a pool worker: MCL at
// every candidate inflation, keeping the clustering and the sorted
// intra-cluster edge weights. Scoring against the global median — the
// only cross-component input — is deferred to Finish, which is what lets
// a component cluster before the last delta lands without changing the
// sweep's outcome.
func (s *Streamer) runJob(j *mclJob) {
	if j.canceled.Load() {
		return
	}
	s.computeJob(j)
}

// computeJob fills the job's per-inflation clusterings and sorted
// intra-cluster weights; shared by the pool workers and the rolling
// clusterer's inline canonical recomputes.
func (s *Streamer) computeJob(j *mclJob) {
	infl := s.p.inflations()
	j.clusterings = make([][][]int, len(infl))
	j.intra = make([][]float64, len(infl))
	cid := make([]int, j.sub.Len())
	for k, inf := range infl {
		if j.canceled.Load() {
			return
		}
		clusters := mcl.Cluster(j.sub, s.p.mclOpts(inf))
		j.clusterings[k] = clusters
		for id, cl := range clusters {
			for _, v := range cl {
				cid[v] = id
			}
		}
		var ws []float64
		for v := 0; v < j.sub.Len(); v++ {
			for _, e := range j.sub.Neighbors(v) {
				if v < e.To && cid[v] == cid[e.To] {
					ws = append(ws, e.Weight)
				}
			}
		}
		sort.Float64s(ws)
		j.intra[k] = ws
	}
}

// mergeSweep is the deferred inflation sweep shared by Finish and the
// rolling epoch clusterer: the barrier path's objective — the fraction
// of intra-cluster edges below the global median — decomposes into
// per-component integer counts, summed here over the jobs in component
// order (nil slots are singleton components with no MCL work). It fills
// res.SweepScores and res.ChosenInflation and returns the winning
// inflation's index, with exactly the barrier path's tie-breaking.
func (p *Pipeline) mergeSweep(res *Result, jobs []*mclJob, median float64, hasEdges bool) int {
	infl := p.inflations()
	best := infl[0]
	bestScore := 2.0
	for k, inf := range infl {
		score := 0.0
		if hasEdges {
			below, total := 0, 0
			for _, job := range jobs {
				if job == nil {
					continue
				}
				ws := job.intra[k]
				below += sort.SearchFloat64s(ws, median)
				total += len(ws)
			}
			if total == 0 {
				score = 1
			} else {
				score = float64(below) / float64(total)
			}
		}
		res.SweepScores[inf] = score
		if score < bestScore {
			bestScore = score
			best = inf
		}
	}
	res.ChosenInflation = best
	bestIdx := 0
	for k, inf := range infl {
		if inf == best {
			bestIdx = k
		}
	}
	return bestIdx
}

// Abort cancels outstanding work and joins the worker pool without
// producing a result; the error paths of a cancelled run use it so no
// goroutine outlives the pipeline. Safe to call after Finish (no-op)
// and on a nil receiver (run shapes that skip clustering never start
// the stage).
func (s *Streamer) Abort() {
	if s == nil {
		return
	}
	if s.closed {
		return
	}
	s.closed = true
	for _, j := range s.allJobs {
		j.canceled.Store(true)
	}
	// Parked jobs never reach a worker; release their jobsWG slots so
	// the counter stays balanced.
	for range s.pending {
		s.jobsWG.Done()
	}
	s.pending = nil
	close(s.jobCh)
	s.wg.Wait()
}

// Finish seals every remaining component, joins the pool, and merges the
// per-component results in component order (components ordered by their
// smallest vertex, exactly as graph.Components yields them): the global
// median is computed once over the full graph, each component's sweep
// contribution is merged as integer counts, the winning inflation is
// chosen with the barrier path's tie-breaking, and clusters are emitted
// in component order with sequential IDs. Every merge input is either
// computed on the Observe goroutine or read from a joined job, so the
// result — including all counters — is identical at any worker count.
func (s *Streamer) Finish() *Result {
	s.closed = true
	sealedEarly := len(s.jobs)

	// Component order: ascending vertex sweep, grouping by root on first
	// sight — the order graph.Components produces. Retracted vertices
	// are tombstones and contribute nothing.
	n := len(s.blocks)
	live := 0
	rootIndex := make(map[int]int, n)
	var roots []int
	multi := 0
	for v := 0; v < n; v++ {
		if s.blocks[v] == nil {
			continue
		}
		live++
		r := s.find(v)
		if _, ok := rootIndex[r]; ok {
			continue
		}
		rootIndex[r] = len(roots)
		roots = append(roots, r)
		if s.size[r] >= 2 {
			multi++
		}
	}
	// Drain: late components (and invalidated re-runs) get their jobs
	// now; the pool is still hot, so the tail parallelizes too.
	for _, r := range roots {
		if s.size[r] < 2 {
			continue
		}
		if _, ok := s.jobs[r]; !ok {
			job := s.makeJob(r)
			s.jobs[r] = job
			s.dispatch(job, true)
		}
	}
	s.drainPending(true)
	close(s.jobCh)
	s.wg.Wait()

	res := &Result{SweepScores: make(map[float64]float64), Components: len(roots)}

	// Deferred sweep merge over the per-component jobs in component
	// order; nil slots (singletons) contribute nothing.
	jobs := make([]*mclJob, len(roots))
	for i, r := range roots {
		jobs[i] = s.jobs[r]
	}
	median, hasEdges := s.g.MedianWeight()
	bestIdx := s.p.mergeSweep(res, jobs, median, hasEdges)

	// Assembly in component order: the stored clustering at the winning
	// inflation is the same [][]int a fresh MCL run would return (MCL is
	// deterministic on an identical subgraph), so reusing it skips the
	// barrier path's extra final run per component.
	clustered := make([]bool, n)
	for _, job := range jobs {
		if job == nil {
			continue
		}
		for _, cl := range job.clusterings[bestIdx] {
			if len(cl) < 2 {
				continue
			}
			c := &Cluster{ID: len(res.Clusters)}
			for _, v := range cl {
				gv := job.members[v]
				c.Members = append(c.Members, s.blocks[gv])
				clustered[gv] = true
			}
			res.Clusters = append(res.Clusters, c)
		}
	}
	for i, b := range s.blocks {
		if b != nil && !clustered[i] {
			res.Unclustered = append(res.Unclustered, b)
		}
	}

	reg := s.p.Telemetry
	reg.Counter("cluster.aggregates_in").Add(int64(live))
	reg.Counter("cluster.graph_edges").Add(int64(s.g.NumEdges()))
	reg.Counter("cluster.components").Add(int64(len(roots)))
	reg.Counter("cluster.multi_components").Add(int64(multi))
	reg.Counter("cluster.clusters").Add(int64(len(res.Clusters)))
	reg.Counter("cluster.unclustered").Add(int64(len(res.Unclustered)))
	reg.Gauge("cluster.chosen_inflation_milli").Set(int64(res.ChosenInflation * 1000))
	// Streaming-overlap telemetry (all deterministic: derived from the
	// Observe sequence, never from scheduling): how many components were
	// early-sealed and survived, how many edges arrived as deltas, how
	// many seals a later delta invalidated, and the fraction of MCL work
	// dispatched before the final delta landed.
	reg.Counter("cluster.sealed_components").Add(int64(sealedEarly))
	reg.Counter("cluster.graph_delta_edges").Add(int64(s.deltaEdges))
	reg.Counter("cluster.seal_invalidations").Add(int64(s.invalidations))
	overlap := int64(0)
	if len(s.jobs) > 0 {
		overlap = int64(1000 * sealedEarly / len(s.jobs))
	}
	reg.Gauge("cluster.overlap_ratio_milli").Set(overlap)
	return res
}
