package cluster

import (
	"reflect"
	"testing"

	"github.com/hobbitscan/hobbit/internal/aggregate"
)

// TestStreamerAbortAfterFinish is the double-terminate regression: the
// pipeline's error paths call Abort unconditionally, including after a
// successful Finish already joined the pool. A second termination must
// be a strict no-op — not a second drain, not a close of the closed job
// channel.
func TestStreamerAbortAfterFinish(t *testing.T) {
	blocks := starvedFamily(4, 8, 0x100000)
	p := &Pipeline{Seed: 2, Workers: 2}
	s := p.Stream()
	for _, b := range blocks {
		s.Observe(b, true)
	}
	res := s.Finish()
	if res == nil || len(res.Clusters) == 0 {
		t.Fatal("Finish produced no clusters")
	}
	s.Abort() // must not panic or block
	s.Abort() // and stays idempotent

	// Abort then Abort on a never-finished streamer is equally safe.
	s2 := p.Stream()
	s2.Observe(blocks[0], true)
	s2.Abort()
	s2.Abort()

	// And the documented nil-receiver shape.
	var s3 *Streamer
	s3.Abort()
}

// TestRetractMatchesFreshStream pins the retraction oracle: after any
// observe/retract interleaving, Finish must equal a fresh stream over
// the surviving blocks in their original observation order. Survivor
// internal ids are a monotone bijection onto the fresh run's ids and
// RemoveVertex preserves ascending adjacency, so every downstream
// artifact — components, MCL input ordering, sweep scores — lines up.
func TestRetractMatchesFreshStream(t *testing.T) {
	var blocks []*aggregate.Block
	blocks = append(blocks, starvedFamily(4, 10, 0x100000)...)
	blocks = append(blocks, starvedFamily(5, 8, 0x200000)...)
	for i := 0; i < 6; i++ {
		blocks = append(blocks, agg(100+i, 0x300000+uint32(i)*4, 1, 0xdead0000+uint32(i)))
	}

	// Retract a mix: mid-component vertices (splitting risk), a
	// singleton, the first and last vertex, plus no-op shapes (double
	// retract, out of range).
	drop := map[int]bool{0: true, 3: true, 7: true, 11: true, 19: true, len(blocks) - 1: true}
	p := &Pipeline{Seed: 9, Workers: 4}
	s := p.Stream()
	for i, b := range blocks {
		s.Observe(b, true)
		if i == 12 {
			// Interleave: retract some already-observed vertices mid-stream.
			s.Retract(3)
			s.Retract(7)
			s.Retract(7) // tombstone: no-op
		}
	}
	for v := range drop {
		s.Retract(v)
	}
	s.Retract(-1)          // out of range: no-op
	s.Retract(len(blocks)) // out of range: no-op
	got := s.Finish()

	var survivors []*aggregate.Block
	for i, b := range blocks {
		if !drop[i] {
			survivors = append(survivors, b)
		}
	}
	want := (&Pipeline{Seed: 9, Workers: 1}).Run(survivors)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("retracted stream differs from fresh stream over survivors:\n got %+v\nwant %+v", got, want)
	}
}

// rollingEpochBlocks builds epoch e's aggregate list from a fixed pool:
// static families keep their membership, churning families rotate one
// member out per epoch, and each epoch contributes a few fresh
// singletons. The same *Block pointers recur across epochs for stable
// keys, as the monitor's per-epoch aggregation replay recurs results
// for unchanged blocks.
func rollingEpochBlocks(pool [][]*aggregate.Block, singles []*aggregate.Block, e int) []*aggregate.Block {
	var out []*aggregate.Block
	for f, fam := range pool {
		churning := f%3 == 0
		for i, b := range fam {
			if churning && i == e%len(fam) {
				continue
			}
			out = append(out, b)
		}
	}
	// Epoch-local singletons: a sliding window over the single pool.
	for i := 0; i < 4; i++ {
		out = append(out, singles[(e*2+i)%len(singles)])
	}
	return out
}

// TestRollingMatchesFromScratch is the cluster-layer half of the
// monitoring contract: every Epoch result must be deeply identical to a
// from-scratch run over the same aggregate list, while later epochs
// reuse the untouched components' cached MCL.
func TestRollingMatchesFromScratch(t *testing.T) {
	// count == k so every family member has a distinct last-hop key:
	// Epoch requires key-unique lists, as aggregate.Builder produces.
	var pool [][]*aggregate.Block
	for f := 0; f < 9; f++ {
		pool = append(pool, starvedFamily(6, 6, uint32(f+1)*0x10000))
	}
	var singles []*aggregate.Block
	for i := 0; i < 24; i++ {
		singles = append(singles, agg(500+i, 0x700000+uint32(i)*4, 1, 0xabc0000+uint32(i)))
	}

	for _, workers := range []int{1, 4} {
		roll := (&Pipeline{Seed: 11, Workers: workers}).Rolling()
		for e := 0; e < 5; e++ {
			aggs := rollingEpochBlocks(pool, singles, e)
			got, stats := roll.Epoch(aggs)
			want := (&Pipeline{Seed: 11, Workers: 1}).Run(aggs)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d epoch %d: rolling result differs from from-scratch", workers, e)
			}
			if e == 0 {
				if stats.Added != len(aggs) || stats.Retracted != 0 {
					t.Errorf("bootstrap stats: %+v", stats)
				}
				continue
			}
			if stats.Reused == 0 {
				t.Errorf("workers=%d epoch %d: no component reused (%+v)", workers, e, stats)
			}
			if stats.Recomputed >= stats.Components {
				t.Errorf("workers=%d epoch %d: every component recomputed (%+v)", workers, e, stats)
			}
			if stats.Added == 0 && stats.Retracted == 0 {
				t.Errorf("workers=%d epoch %d: churn generator produced no churn", workers, e)
			}
		}
		roll.Close()
	}
}

// TestRollingKeyReappears covers the tombstone-id path: a key retracted
// in one epoch and reintroduced later must come back as a fresh vertex
// and still match from-scratch.
func TestRollingKeyReappears(t *testing.T) {
	fam := starvedFamily(6, 6, 0x40000)
	roll := (&Pipeline{Seed: 7, Workers: 2}).Rolling()
	defer roll.Close()
	epochs := [][]*aggregate.Block{
		fam,      // all present
		fam[:4],  // two retracted
		fam[2:],  // two reappear, two others gone
		fam,      // all back
		fam[1:2], // collapse to a singleton
		fam,      // and back again
	}
	for e, aggs := range epochs {
		got, _ := roll.Epoch(aggs)
		want := (&Pipeline{Seed: 7, Workers: 1}).Run(aggs)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("epoch %d: rolling result differs from from-scratch", e)
		}
	}
}
