// Package cluster implements Section 6: aggregating /24 blocks whose
// observed last-hop sets are similar but not identical. It models
// identical-set aggregates as vertices of a weighted similarity graph
// (score |A∩B| / max(|A|,|B|)), pre-splits the graph into connected
// components, runs MCL per component with an inflation parameter chosen by
// the paper's sweep objective, screens clusters with a similarity-
// distribution rule, and validates them by reprobing.
package cluster

import (
	"context"
	"runtime"
	"sort"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/graph"
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/mcl"
	"github.com/hobbitscan/hobbit/internal/parallel"
	"github.com/hobbitscan/hobbit/internal/rng"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

// Cluster is one MCL output group over identical-set aggregates.
type Cluster struct {
	ID      int
	Members []*aggregate.Block
}

// Size24 returns the total member size in /24 blocks.
func (c *Cluster) Size24() int {
	total := 0
	for _, m := range c.Members {
		total += m.Size()
	}
	return total
}

// Blocks24 returns all member /24s sorted.
func (c *Cluster) Blocks24() []iputil.Block24 {
	var out []iputil.Block24
	for _, m := range c.Members {
		out = append(out, m.Blocks24...)
	}
	iputil.SortBlocks(out)
	return out
}

// BuildGraph constructs the similarity graph over aggregates: vertices are
// the identical-set aggregates (the Section 6.3 pre-merge of weight-1
// edges), edges connect aggregates with overlapping last-hop sets,
// weighted by the similarity score. Aggregates with disjoint sets get no
// edge. BuildGraph runs serially; BuildGraphWorkers shards it.
func BuildGraph(blocks []*aggregate.Block) *graph.Graph {
	return BuildGraphWorkers(blocks, 1)
}

// BuildGraphWorkers is BuildGraph with the pairwise similarity
// computation sharded over the given worker count (0 = GOMAXPROCS). Each
// vertex independently resolves its higher-indexed candidate neighbors
// through the shared inverted index and scores them; the per-vertex edge
// lists are then merged into the graph in vertex order, so the adjacency
// lists — and everything downstream — are identical for every worker
// count.
func BuildGraphWorkers(blocks []*aggregate.Block, workers int) *graph.Graph {
	return buildGraph(blocks, parallel.Pool{Workers: workers})
}

// halfEdge is one scored candidate pair (i, to) with i < to.
type halfEdge struct {
	to int
	w  float64
}

func buildGraph(blocks []*aggregate.Block, pool parallel.Pool) *graph.Graph {
	g := graph.New(len(blocks))
	// Inverted index: last hop -> aggregate ids, ascending (built in
	// block order).
	posting := make(map[iputil.Addr][]int)
	for i, b := range blocks {
		for _, lh := range b.LastHops {
			posting[lh] = append(posting[lh], i)
		}
	}
	// Shard: vertex i scores each distinct j > i sharing a last hop.
	rows, _ := parallel.Map(context.Background(), pool, len(blocks), func(i int) []halfEdge {
		var cand []int
		for _, lh := range blocks[i].LastHops {
			for _, j := range posting[lh] {
				if j > i {
					cand = append(cand, j)
				}
			}
		}
		sort.Ints(cand)
		row := make([]halfEdge, 0, len(cand))
		prev := -1
		for _, j := range cand {
			if j == prev {
				continue
			}
			prev = j
			row = append(row, halfEdge{to: j, w: aggregate.Similarity(blocks[i].LastHops, blocks[j].LastHops)})
		}
		return row
	})
	// Ordered merge: edges enter the graph in (i, j) order regardless of
	// which worker scored them.
	for i, row := range rows {
		for _, e := range row {
			g.AddEdge(i, e.to, e.w)
		}
	}
	return g
}

// Pipeline configures the clustering run.
type Pipeline struct {
	// Inflations are the sweep candidates; empty uses a standard range.
	Inflations []float64
	// MCL carries the remaining MCL options (inflation is overridden by
	// the sweep).
	MCL mcl.Options
	// Seed drives deterministic pair sampling during validation.
	Seed uint64
	// Workers bounds the concurrency of graph construction and of the
	// MCL rounds (0 = GOMAXPROCS, 1 = serial). The result is identical
	// for every worker count (see the parallel package's determinism
	// contract).
	Workers int
	// Telemetry receives "cluster.…" counters and gauges; nil disables
	// it.
	Telemetry *telemetry.Registry
}

// Result is the output of Run.
type Result struct {
	// Clusters are the multi-aggregate MCL groups, ordered by first
	// member.
	Clusters []*Cluster
	// Unclustered are aggregates left in singleton groups.
	Unclustered []*aggregate.Block
	// ChosenInflation is the sweep winner; SweepScores maps each
	// candidate to its objective (lower is better).
	ChosenInflation float64
	SweepScores     map[float64]float64
	// Components is the number of connected components processed.
	Components int
}

func (p *Pipeline) inflations() []float64 {
	if len(p.Inflations) > 0 {
		return p.Inflations
	}
	return []float64{1.4, 1.8, 2.0, 2.4, 3.0}
}

// Run executes the full Section 6.3-6.4 procedure. It is the batch form
// of the streaming clusterer: every aggregate is observed as a fresh
// delta and the stream is finished immediately, which routes the whole
// run — incremental graph build, per-component MCL on the worker pool,
// deferred sweep merge — through the same code the pipelined campaign
// drives one result at a time. runBarrier is the executable reference
// the streamer is tested against.
func (p *Pipeline) Run(blocks []*aggregate.Block) *Result {
	s := p.Stream()
	for _, b := range blocks {
		s.Observe(b, true)
	}
	return s.Finish()
}

// runtimeWorkers is the auto worker count (Workers == 0).
func runtimeWorkers() int { return runtime.GOMAXPROCS(0) }

// runBarrier is the original stage-barrier implementation — build the
// full graph, split into components, sweep, cluster — kept as the
// specification the streaming path must reproduce byte for byte
// (TestStreamerMatchesBarrier); it emits the barrier-era counters only.
func (p *Pipeline) runBarrier(blocks []*aggregate.Block) *Result {
	pool := parallel.Pool{Workers: p.Workers, Telemetry: p.Telemetry, Stage: "cluster"}
	g := buildGraph(blocks, pool)
	comps := g.Components()

	// Only components with >= 2 vertices need MCL.
	var multi [][]int
	var singles []int
	for _, c := range comps {
		if len(c) >= 2 {
			multi = append(multi, c)
		} else {
			singles = append(singles, c...)
		}
	}

	res := &Result{SweepScores: make(map[float64]float64), Components: len(comps)}

	// Parameter sweep: minimize the fraction of intra-cluster edges
	// whose weight is below the median of all edge weights.
	median, hasEdges := g.MedianWeight()
	best := p.inflations()[0]
	bestScore := 2.0
	for _, inf := range p.inflations() {
		score := 0.0
		if hasEdges {
			score = p.sweepObjective(g, multi, inf, median)
		}
		res.SweepScores[inf] = score
		if score < bestScore {
			bestScore = score
			best = inf
		}
	}
	res.ChosenInflation = best

	// Final clustering at the chosen inflation.
	opts := p.mclOpts(best)
	clustered := make(map[int]bool)
	for _, comp := range multi {
		sub, back := g.Subgraph(comp)
		for _, cl := range mcl.Cluster(sub, opts) {
			if len(cl) < 2 {
				continue
			}
			c := &Cluster{ID: len(res.Clusters)}
			for _, v := range cl {
				c.Members = append(c.Members, blocks[back[v]])
				clustered[back[v]] = true
			}
			res.Clusters = append(res.Clusters, c)
		}
	}
	for i, b := range blocks {
		if !clustered[i] {
			res.Unclustered = append(res.Unclustered, b)
		}
	}
	_ = singles

	reg := p.Telemetry
	reg.Counter("cluster.aggregates_in").Add(int64(len(blocks)))
	reg.Counter("cluster.graph_edges").Add(int64(g.NumEdges()))
	reg.Counter("cluster.components").Add(int64(len(comps)))
	reg.Counter("cluster.multi_components").Add(int64(len(multi)))
	reg.Counter("cluster.clusters").Add(int64(len(res.Clusters)))
	reg.Counter("cluster.unclustered").Add(int64(len(res.Unclustered)))
	// Gauges are int64; store the inflation scaled by 1000.
	reg.Gauge("cluster.chosen_inflation_milli").Set(int64(best * 1000))
	return res
}

// mclOpts derives the per-run MCL options: the sweep's inflation wins,
// and the pipeline's worker bound applies unless the caller pinned one on
// MCL directly.
func (p *Pipeline) mclOpts(inflation float64) mcl.Options {
	opts := p.MCL
	opts.Inflation = inflation
	if opts.Workers == 0 {
		opts.Workers = p.Workers
	}
	return opts
}

// sweepObjective runs MCL at one inflation and scores it: the fraction of
// intra-cluster edges with weight below the global median.
func (p *Pipeline) sweepObjective(g *graph.Graph, comps [][]int, inflation, median float64) float64 {
	opts := p.mclOpts(inflation)
	below, total := 0, 0
	for _, comp := range comps {
		sub, _ := g.Subgraph(comp)
		clusters := mcl.Cluster(sub, opts)
		// Map vertex -> cluster id within this component.
		cid := make([]int, sub.Len())
		for id, cl := range clusters {
			for _, v := range cl {
				cid[v] = id
			}
		}
		for v := 0; v < sub.Len(); v++ {
			for _, e := range sub.Neighbors(v) {
				if v < e.To && cid[v] == cid[e.To] {
					total++
					if e.Weight < median {
						below++
					}
				}
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(below) / float64(total)
}

// SimilarityDistribution returns the weighted distribution of pairwise
// /24 similarity scores within a cluster: pairs inside one aggregate score
// 1, pairs across aggregates score the aggregate similarity, each weighted
// by the number of /24 pairs it represents. Returned as (score, weight)
// samples.
func (c *Cluster) SimilarityDistribution() (scores []float64, weights []float64) {
	for i, a := range c.Members {
		if n := a.Size(); n >= 2 {
			scores = append(scores, 1.0)
			weights = append(weights, float64(n*(n-1)/2))
		}
		for j := i + 1; j < len(c.Members); j++ {
			b := c.Members[j]
			scores = append(scores, aggregate.Similarity(a.LastHops, b.LastHops))
			weights = append(weights, float64(a.Size()*b.Size()))
		}
	}
	return scores, weights
}

// weightedQuantile computes the q-quantile of a weighted sample.
func weightedQuantile(scores, weights []float64, q float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	type sw struct{ s, w float64 }
	items := make([]sw, len(scores))
	var total float64
	for i := range scores {
		items[i] = sw{s: scores[i], w: weights[i]}
		total += weights[i]
	}
	sort.Slice(items, func(i, j int) bool { return items[i].s < items[j].s })
	target := q * total
	var cum float64
	for _, it := range items {
		cum += it.w
		if cum >= target {
			return it.s
		}
	}
	return items[len(items)-1].s
}

// Rule parameters: our instantiation of the paper's manually-built rule
// over the within-cluster similarity distribution (Section 6.6 describes
// the rule's existence and quality but not its constants).
const (
	ruleMedianMin = 0.85
	ruleFloorMin  = 0.25
)

// MatchesRule applies the screening rule: the weighted median pairwise
// similarity must be high and no pair may fall below a floor.
func (c *Cluster) MatchesRule() bool {
	scores, weights := c.SimilarityDistribution()
	if len(scores) == 0 {
		return false
	}
	med := weightedQuantile(scores, weights, 0.5)
	min := scores[0]
	for _, s := range scores {
		if s < min {
			min = s
		}
	}
	return med >= ruleMedianMin && min >= ruleFloorMin
}

// Reprober supplies the Section 6.5 validation measurements: the
// exhaustively-observed last-hop set of a /24, or nil when it cannot be
// measured.
type Reprober interface {
	Reprobe(b iputil.Block24) []iputil.Addr
}

// Validation is the outcome of reprobing one cluster.
type Validation struct {
	PairsChecked   int
	IdenticalPairs int
	// Homogeneous is true when every checked pair had identical sets —
	// the paper's strict criterion.
	Homogeneous bool
	// Reprobed is the number of member /24s that yielded a last-hop
	// set; ModalShare is the fraction of them agreeing on the most
	// common set. Availability churn leaves a few members with
	// incomplete sets even in a truly homogeneous cluster, so callers
	// may accept clusters with a dominant modal set.
	Reprobed   int
	ModalShare float64
}

// Acceptance thresholds for the modal-set relaxation: enough reprobed
// members that a 90% modal share cannot come from a cluster that wrongly
// merged two aggregates, yet loose enough to tolerate availability churn.
const (
	acceptMinReprobed = 4
	acceptModalShare  = 0.9
)

// Passes reports whether the validation outcome accepts the cluster for
// merging: the paper's strict all-pairs-identical criterion, or a
// dominant modal set — at least acceptMinReprobed members reprobed with
// at least acceptModalShare of them agreeing on one last-hop set.
func (v Validation) Passes() bool {
	return v.Homogeneous || (v.Reprobed >= acceptMinReprobed && v.ModalShare >= acceptModalShare)
}

// Ratio is the fraction of identical pairs (Figure 9's metric).
func (v Validation) Ratio() float64 {
	if v.PairsChecked == 0 {
		return 0
	}
	return float64(v.IdenticalPairs) / float64(v.PairsChecked)
}

// Validate reprobes up to maxPairs /24 pairs of the cluster (all pairs if
// fewer) with the exhaustive strategy and checks last-hop set identity.
func Validate(c *Cluster, rp Reprober, maxPairs int, seed uint64) Validation {
	blocks := c.Blocks24()
	if len(blocks) < 2 {
		return Validation{}
	}
	sets := make(map[iputil.Block24]string)
	lookup := func(b iputil.Block24) (string, bool) {
		if k, ok := sets[b]; ok {
			return k, k != ""
		}
		lhs := rp.Reprobe(b)
		if len(lhs) == 0 {
			sets[b] = ""
			return "", false
		}
		iputil.SortAddrs(lhs)
		k := aggregate.Key(lhs)
		sets[b] = k
		return k, true
	}

	var v Validation
	totalPairs := len(blocks) * (len(blocks) - 1) / 2
	if maxPairs <= 0 || maxPairs > totalPairs {
		maxPairs = totalPairs
	}
	checkPair := func(a, b iputil.Block24) {
		ka, oka := lookup(a)
		kb, okb := lookup(b)
		if !oka || !okb {
			return
		}
		v.PairsChecked++
		if ka == kb {
			v.IdenticalPairs++
		}
	}
	if maxPairs == totalPairs {
		for i := 0; i < len(blocks); i++ {
			for j := i + 1; j < len(blocks); j++ {
				checkPair(blocks[i], blocks[j])
			}
		}
	} else {
		for d := 0; d < maxPairs; d++ {
			i := rng.Intn(len(blocks), seed, uint64(c.ID), uint64(d), 0)
			j := rng.Intn(len(blocks)-1, seed, uint64(c.ID), uint64(d), 1)
			if j >= i {
				j++
			}
			checkPair(blocks[i], blocks[j])
		}
	}
	v.Homogeneous = v.PairsChecked > 0 && v.IdenticalPairs == v.PairsChecked

	// Modal-set agreement across the reprobed members.
	counts := make(map[string]int)
	for _, k := range sets {
		if k != "" {
			counts[k]++
			v.Reprobed++
		}
	}
	modal := 0
	for _, n := range counts {
		if n > modal {
			modal = n
		}
	}
	if v.Reprobed > 0 {
		v.ModalShare = float64(modal) / float64(v.Reprobed)
	}
	return v
}

// ApplyValidated produces the final aggregate list: validated clusters
// merge into one block (union of members and of last-hop sets); members
// of unvalidated clusters and unclustered aggregates pass through. This
// realizes the Section 6.6 final results and the Figure 10 "after"
// distribution.
func ApplyValidated(res *Result, validated map[int]bool) []*aggregate.Block {
	return ApplyValidatedInterned(res, validated, nil)
}

// ApplyValidatedInterned is ApplyValidated drawing merged last-hop sets
// from the given interner (nil keeps per-block storage): a union set that
// was already interned — typically because several validated clusters
// merge onto the same routers — aliases the existing canonical slice
// instead of holding its own copy.
func ApplyValidatedInterned(res *Result, validated map[int]bool, in *aggregate.Interner) []*aggregate.Block {
	var out []*aggregate.Block
	taken := make(map[*aggregate.Block]bool)
	for _, c := range res.Clusters {
		if !validated[c.ID] {
			continue
		}
		merged := &aggregate.Block{}
		lhSet := make(map[iputil.Addr]struct{})
		for _, m := range c.Members {
			taken[m] = true
			merged.Blocks24 = append(merged.Blocks24, m.Blocks24...)
			for _, lh := range m.LastHops {
				lhSet[lh] = struct{}{}
			}
		}
		iputil.SortBlocks(merged.Blocks24)
		for lh := range lhSet {
			merged.LastHops = append(merged.LastHops, lh)
		}
		iputil.SortAddrs(merged.LastHops)
		if in != nil {
			merged.LastHops, _ = in.Intern(merged.LastHops)
		}
		out = append(out, merged)
	}
	for _, c := range res.Clusters {
		if validated[c.ID] {
			continue
		}
		for _, m := range c.Members {
			if !taken[m] {
				out = append(out, m)
			}
		}
	}
	out = append(out, res.Unclustered...)
	for i, b := range out {
		b.ID = i
	}
	return out
}
