package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/hobbitscan/hobbit/internal/aggregate"
)

// fuzzPool is the deterministic aggregate universe the fuzzer draws
// observations from: overlapping families (dense components), plus
// singletons with private last hops. Observing past the end cycles, so
// long inputs re-observe the same block pointers as fresh vertices —
// legal at the streamer layer, which never keys on aggregate identity.
func fuzzPool() []*aggregate.Block {
	var pool []*aggregate.Block
	pool = append(pool, starvedFamily(5, 5, 0x10000)...)
	pool = append(pool, starvedFamily(4, 4, 0x20000)...)
	pool = append(pool, starvedFamily(6, 6, 0x30000)...)
	for i := 0; i < 6; i++ {
		pool = append(pool, agg(900+i, 0x500000+uint32(i)*4, 1, 0xfee10000+uint32(i)))
	}
	return pool
}

// FuzzStreamerRetract interleaves Observe and Retract under fuzzer
// control and holds the retraction oracle: no interleaving may panic,
// and Finish must converge to exactly the Result a from-scratch run
// over the surviving blocks produces. Each input byte is one op:
// low bytes observe the next pool aggregate as new, mid bytes retract
// a fuzzer-chosen vertex (tombstone and out-of-range retracts are
// legal no-ops), high bytes re-observe an existing aggregate, which
// only ages the quiet-window seal race.
func FuzzStreamerRetract(f *testing.F) {
	f.Add([]byte("ab"))
	f.Add([]byte("abcdefgh\x85\x90abcd\xf0\xf1\x92ab\x80"))
	f.Add(bytes.Repeat([]byte("aaaa\x9b\xe2"), 80)) // long: crosses the seal horizon
	f.Add([]byte("\x81\xff"))                       // retract/re-observe before any observe
	f.Fuzz(func(t *testing.T, data []byte) {
		pool := fuzzPool()
		s := (&Pipeline{Seed: 5, Workers: 2}).Stream()
		var observed []*aggregate.Block
		var alive []bool
		next := 0
		for _, op := range data {
			switch {
			case op < 0x70:
				b := pool[next%len(pool)]
				next++
				s.Observe(b, true)
				observed = append(observed, b)
				alive = append(alive, true)
			case op < 0xc0:
				// Mod over len+1 so the one-past-the-end no-op retract is
				// reachable too.
				if len(observed) > 0 {
					v := int(op) % (len(observed) + 1)
					s.Retract(v)
					if v < len(observed) {
						alive[v] = false
					}
				} else {
					s.Retract(int(op))
				}
			default:
				if len(observed) > 0 {
					s.Observe(observed[int(op)%len(observed)], false)
				}
			}
		}
		got := s.Finish()

		var survivors []*aggregate.Block
		for i, b := range observed {
			if alive[i] {
				survivors = append(survivors, b)
			}
		}
		want := (&Pipeline{Seed: 5, Workers: 1}).Run(survivors)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("interleaving of %d ops (%d survivors of %d) diverged from fresh run",
				len(data), len(survivors), len(observed))
		}
	})
}
