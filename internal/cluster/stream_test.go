package cluster

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"testing"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

// streamerRun drives a Streamer the way the core pipeline does: one
// Observe per kept campaign result, in order. reobserveEvery > 0
// additionally replays an already-created aggregate every few deltas
// (isNew=false — a later /24 landing in an existing aggregate), which
// ages the quiet windows differently without changing the graph.
func streamerRun(p *Pipeline, blocks []*aggregate.Block, reobserveEvery int) *Result {
	s := p.Stream()
	for i, b := range blocks {
		s.Observe(b, true)
		if reobserveEvery > 0 && i%reobserveEvery == reobserveEvery-1 {
			s.Observe(blocks[i/2], false)
		}
	}
	return s.Finish()
}

// streamBlocks builds an input large enough that components actually
// seal early (well past sealHorizon observes): many small families plus
// a few singleton loners.
func streamBlocks(t *testing.T) []*aggregate.Block {
	t.Helper()
	var blocks []*aggregate.Block
	for f := 0; f < 60; f++ {
		blocks = append(blocks, starvedFamily(5, 10, uint32(f)*0x10000)...)
	}
	for i := 0; i < 8; i++ {
		blocks = append(blocks, agg(0, 0x800000+uint32(i)*4, 1, 0xbeef0000+uint32(i)))
	}
	for i, b := range blocks {
		b.ID = i
	}
	if len(blocks) <= 2*sealHorizon {
		t.Fatalf("input too small to exercise early sealing: %d observes", len(blocks))
	}
	return blocks
}

// TestStreamerMatchesBarrier is the tentpole determinism contract at the
// cluster layer: the incremental build + per-component overlap path must
// produce a Result deeply identical to the barrier path — same clusters
// in the same order, same sweep scores, same chosen inflation — at any
// worker count and under re-observation traffic.
func TestStreamerMatchesBarrier(t *testing.T) {
	blocks := streamBlocks(t)
	want := (&Pipeline{Seed: 3}).runBarrier(blocks)
	if len(want.Clusters) < 2 {
		t.Fatalf("barrier baseline found only %d clusters", len(want.Clusters))
	}
	for _, workers := range []int{1, 8} {
		for _, re := range []int{0, 3} {
			reg := telemetry.NewRegistry()
			p := &Pipeline{Seed: 3, Workers: workers, Telemetry: reg}
			got := streamerRun(p, blocks, re)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d reobserve=%d: streamed result differs from barrier", workers, re)
			}
			snap := reg.Snapshot()
			if snap.Counters["cluster.sealed_components"] == 0 {
				t.Errorf("workers=%d reobserve=%d: no component sealed early — the stream never overlapped", workers, re)
			}
			if snap.Counters["cluster.graph_delta_edges"] != snap.Counters["cluster.graph_edges"] {
				t.Errorf("workers=%d reobserve=%d: delta edges %d != graph edges %d",
					workers, re,
					snap.Counters["cluster.graph_delta_edges"], snap.Counters["cluster.graph_edges"])
			}
		}
	}
}

// TestStreamerSealInvalidation pins the re-clustering rule: a delta that
// touches an early-sealed component cancels its job, the merged component
// re-enters the quiet-window race, and the final result is still the
// barrier one. The seal counters are part of the contract — they derive
// from the Observe sequence, not from scheduling.
func TestStreamerSealInvalidation(t *testing.T) {
	var blocks []*aggregate.Block
	// A two-aggregate family that will go quiet and seal.
	blocks = append(blocks,
		agg(0, 0x100000, 1, 1, 2, 3),
		agg(1, 0x100100, 1, 1, 2, 3))
	// Disjoint singletons age its window past the horizon.
	for i := 0; i < sealHorizon+8; i++ {
		blocks = append(blocks, agg(2+i, 0x200000+uint32(i)*4, 1, 0x9990000+uint32(i)))
	}
	// A late joiner shares hops with the sealed family: invalidation.
	blocks = append(blocks, agg(900, 0x300000, 1, 2, 3, 4))
	// More singletons let the merged component seal again before Finish.
	for i := 0; i < sealHorizon+8; i++ {
		blocks = append(blocks, agg(1000+i, 0x400000+uint32(i)*4, 1, 0x8880000+uint32(i)))
	}

	want := (&Pipeline{Seed: 1}).runBarrier(blocks)
	reg := telemetry.NewRegistry()
	p := &Pipeline{Seed: 1, Workers: 4, Telemetry: reg}
	got := streamerRun(p, blocks, 0)
	if !reflect.DeepEqual(got, want) {
		t.Error("result after invalidation differs from barrier")
	}
	snap := reg.Snapshot()
	if n := snap.Counters["cluster.seal_invalidations"]; n != 1 {
		t.Errorf("seal_invalidations = %d, want 1", n)
	}
	// The re-sealed merged component is the only multi-vertex one.
	if n := snap.Counters["cluster.sealed_components"]; n != 1 {
		t.Errorf("sealed_components = %d, want 1 (re-seal after invalidation)", n)
	}
	if len(got.Clusters) != 1 || len(got.Clusters[0].Members) != 3 {
		t.Errorf("merged family not clustered together: %+v", got.Clusters)
	}
}

// TestSweepComponentDeterminism pins the per-component sweep rewrite on
// its two degenerate shapes — a graph of nothing but singletons (no MCL
// work at all) and one giant component (all MCL work in a single job) —
// asserting byte-identical results between a serial and an 8-worker run,
// and between both and the barrier path.
func TestSweepComponentDeterminism(t *testing.T) {
	singles := make([]*aggregate.Block, 0, 50)
	for i := 0; i < 50; i++ {
		singles = append(singles, agg(i, uint32(i)*0x1000, 1+i%3, 0xaaa0000+uint32(i)))
	}
	giant := starvedFamily(6, 150, 0x500000)
	for i, b := range giant {
		b.ID = i
	}
	for name, blocks := range map[string][]*aggregate.Block{
		"all-singletons":      singles,
		"one-giant-component": giant,
	} {
		t.Run(name, func(t *testing.T) {
			want := (&Pipeline{Seed: 5}).runBarrier(blocks)
			serial := streamerRun(&Pipeline{Seed: 5, Workers: 1}, blocks, 0)
			sharded := streamerRun(&Pipeline{Seed: 5, Workers: 8}, blocks, 0)
			for label, got := range map[string]*Result{"serial": serial, "workers=8": sharded} {
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: result differs from barrier", label)
				}
			}
			// Byte-level check on the serialized artifacts, sweep scores
			// included: DeepEqual tolerates nothing, but the byte form is
			// what downstream caches and goldens compare. SweepScores is
			// keyed by float64, which encoding/json refuses, so it rides
			// along as a sorted pair list.
			marshal := func(r *Result) []byte {
				type pair struct{ K, V float64 }
				sweeps := make([]pair, 0, len(r.SweepScores))
				for k, v := range r.SweepScores {
					sweeps = append(sweeps, pair{k, v})
				}
				sort.Slice(sweeps, func(i, j int) bool { return sweeps[i].K < sweeps[j].K })
				j, err := json.Marshal(struct {
					Clusters        []*Cluster
					Unclustered     []*aggregate.Block
					ChosenInflation float64
					Sweeps          []pair
					Components      int
				}{r.Clusters, r.Unclustered, r.ChosenInflation, sweeps, r.Components})
				if err != nil {
					t.Fatal(err)
				}
				return j
			}
			if !bytes.Equal(marshal(serial), marshal(sharded)) {
				t.Error("serial and sharded runs serialize to different bytes")
			}
		})
	}
}
