package cluster

import (
	"reflect"
	"testing"

	"github.com/hobbitscan/hobbit/internal/aggregate"
	"github.com/hobbitscan/hobbit/internal/iputil"
)

// agg builds an aggregate block with the given /24 count and last-hop set
// drawn from a universe of router addresses.
func agg(id int, base uint32, n24 int, lastHops ...uint32) *aggregate.Block {
	b := &aggregate.Block{ID: id}
	for i := 0; i < n24; i++ {
		b.Blocks24 = append(b.Blocks24, iputil.Block24(base+uint32(i)))
	}
	for _, lh := range lastHops {
		b.LastHops = append(b.LastHops, iputil.Addr(lh))
	}
	iputil.SortAddrs(b.LastHops)
	return b
}

// starvedFamily builds aggregates that are partial views of one true
// last-hop set, each missing a different element. The hop universe is
// derived from base so different families stay disjoint.
func starvedFamily(k int, count int, base uint32) []*aggregate.Block {
	full := make([]uint32, k)
	for i := range full {
		full[i] = 0x64400000 + base + uint32(i)
	}
	var out []*aggregate.Block
	for c := 0; c < count; c++ {
		var hops []uint32
		for i, lh := range full {
			if i == c%k {
				continue // drop one element
			}
			hops = append(hops, lh)
		}
		out = append(out, agg(c, base+uint32(c)*4, 1+c%3, hops...))
	}
	return out
}

func TestBuildGraphEdges(t *testing.T) {
	blocks := []*aggregate.Block{
		agg(0, 0x010000, 1, 1, 2, 3),
		agg(1, 0x020000, 1, 3, 4), // shares hop 3 with 0: sim 1/3
		agg(2, 0x030000, 1, 9),    // disjoint: no edge
	}
	g := BuildGraph(blocks)
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	found := false
	for _, e := range g.Neighbors(0) {
		if e.To == 1 && e.Weight > 0.33 && e.Weight < 0.34 {
			found = true
		}
	}
	if !found {
		t.Error("similarity edge 0-1 missing or mis-weighted")
	}
}

// TestBuildGraphWorkersIdentical is the graph half of the PR's
// determinism contract: the sharded construction must produce adjacency
// lists identical to the serial one, vertex by vertex, for several worker
// counts and input shapes.
func TestBuildGraphWorkersIdentical(t *testing.T) {
	var blocks []*aggregate.Block
	for f := 0; f < 6; f++ {
		blocks = append(blocks, starvedFamily(5, 20, uint32(f)*0x10000)...)
	}
	for i, b := range blocks {
		b.ID = i
	}
	serial := BuildGraphWorkers(blocks, 1)
	for _, workers := range []int{0, 2, 8} {
		sharded := BuildGraphWorkers(blocks, workers)
		if sharded.Len() != serial.Len() || sharded.NumEdges() != serial.NumEdges() {
			t.Fatalf("workers=%d: graph shape differs (%d/%d vertices, %d/%d edges)",
				workers, sharded.Len(), serial.Len(), sharded.NumEdges(), serial.NumEdges())
		}
		for v := 0; v < serial.Len(); v++ {
			if !reflect.DeepEqual(serial.Neighbors(v), sharded.Neighbors(v)) {
				t.Fatalf("workers=%d: adjacency of vertex %d differs:\n%v\n%v",
					workers, v, serial.Neighbors(v), sharded.Neighbors(v))
			}
		}
	}
}

func TestPipelineRecoversStarvedFamily(t *testing.T) {
	// Two separate families of partial observations plus a loner; MCL
	// must group each family and leave the loner unclustered.
	blocks := append(starvedFamily(8, 10, 0x100000), starvedFamily(6, 8, 0x200000)...)
	for i, b := range blocks {
		b.ID = i
	}
	loner := agg(len(blocks), 0x300000, 2, 0x7777)
	blocks = append(blocks, loner)

	p := &Pipeline{Seed: 3}
	res := p.Run(blocks)
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(res.Clusters))
	}
	sizes := []int{len(res.Clusters[0].Members), len(res.Clusters[1].Members)}
	if sizes[0]+sizes[1] != 18 {
		t.Errorf("cluster member counts = %v", sizes)
	}
	if len(res.Unclustered) != 1 || res.Unclustered[0] != loner {
		t.Errorf("unclustered = %d", len(res.Unclustered))
	}
	if res.ChosenInflation == 0 {
		t.Error("no inflation chosen")
	}
	if len(res.SweepScores) == 0 {
		t.Error("sweep scores missing")
	}
	// Families must not mix: all members of a cluster share the family
	// base.
	for _, c := range res.Clusters {
		base := c.Members[0].Blocks24[0] >> 16
		for _, m := range c.Members {
			if m.Blocks24[0]>>16 != base {
				t.Errorf("cluster mixes families")
			}
		}
	}
}

func TestSimilarityDistributionAndRule(t *testing.T) {
	family := starvedFamily(8, 6, 0x100000)
	c := &Cluster{ID: 0, Members: family}
	scores, weights := c.SimilarityDistribution()
	if len(scores) == 0 || len(scores) != len(weights) {
		t.Fatal("empty distribution")
	}
	// Family members share 6 of at most 7 hops: similarities >= 6/7.
	if !c.MatchesRule() {
		t.Error("high-similarity family should match the rule")
	}
	// A cluster with one weak member must fail the floor.
	weak := append(append([]*aggregate.Block(nil), family...), agg(99, 0x900000, 1, 0x64400000))
	cWeak := &Cluster{ID: 1, Members: weak}
	if cWeak.MatchesRule() {
		t.Error("cluster with a weak member should fail the rule")
	}
	// Empty cluster: no match.
	if (&Cluster{}).MatchesRule() {
		t.Error("empty cluster should not match")
	}
}

func TestWeightedQuantile(t *testing.T) {
	scores := []float64{0.1, 0.5, 0.9}
	weights := []float64{1, 1, 8}
	if got := weightedQuantile(scores, weights, 0.5); got != 0.9 {
		t.Errorf("weighted median = %v, want 0.9", got)
	}
	if got := weightedQuantile(scores, weights, 0.05); got != 0.1 {
		t.Errorf("weighted q05 = %v, want 0.1", got)
	}
	if got := weightedQuantile(nil, nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}

// mapReprober serves canned last-hop sets.
type mapReprober map[iputil.Block24][]iputil.Addr

func (m mapReprober) Reprobe(b iputil.Block24) []iputil.Addr { return m[b] }

func TestValidate(t *testing.T) {
	a := agg(0, 0x100000, 2, 1, 2)
	b := agg(1, 0x200000, 1, 1, 2)
	c := &Cluster{ID: 0, Members: []*aggregate.Block{a, b}}
	full := []iputil.Addr{1, 2}
	rp := mapReprober{}
	for _, blk := range c.Blocks24() {
		rp[blk] = full
	}
	v := Validate(c, rp, 0, 1)
	if !v.Homogeneous || v.Ratio() != 1 {
		t.Errorf("validation = %+v", v)
	}
	if v.PairsChecked != 3 {
		t.Errorf("PairsChecked = %d, want all 3", v.PairsChecked)
	}

	// One member reprobes to a different set: not homogeneous.
	rp[a.Blocks24[0]] = []iputil.Addr{1, 2, 3}
	v = Validate(c, rp, 0, 1)
	if v.Homogeneous || v.Ratio() == 1 {
		t.Errorf("validation should fail: %+v", v)
	}

	// Unmeasurable members are skipped.
	rp[a.Blocks24[0]] = nil
	v = Validate(c, rp, 0, 1)
	if v.PairsChecked != 1 {
		t.Errorf("PairsChecked = %d, want 1 (only b0-b1 pair)", v.PairsChecked)
	}

	// Sampled pairs bounded by maxPairs.
	for _, blk := range c.Blocks24() {
		rp[blk] = full
	}
	v = Validate(c, rp, 2, 1)
	if v.PairsChecked > 2 {
		t.Errorf("sampling exceeded maxPairs: %d", v.PairsChecked)
	}

	// Degenerate single-/24 cluster.
	if got := Validate(&Cluster{Members: []*aggregate.Block{agg(3, 0x400000, 1, 5)}}, rp, 0, 1); got.PairsChecked != 0 {
		t.Errorf("single-block validation = %+v", got)
	}
}

func TestValidateModalShare(t *testing.T) {
	// Four blocks: three agree on one set, one reprobes to a partial
	// set. Strict homogeneity fails but the modal share is 3/4.
	members := []*aggregate.Block{
		agg(0, 0x100000, 1, 1, 2, 3),
		agg(1, 0x200000, 1, 1, 2, 3),
		agg(2, 0x300000, 1, 1, 2, 3),
		agg(3, 0x400000, 1, 1, 2),
	}
	c := &Cluster{ID: 0, Members: members}
	full := []iputil.Addr{1, 2, 3}
	rp := mapReprober{}
	for i, m := range members {
		if i < 3 {
			rp[m.Blocks24[0]] = full
		} else {
			rp[m.Blocks24[0]] = []iputil.Addr{1, 2}
		}
	}
	v := Validate(c, rp, 0, 1)
	if v.Homogeneous {
		t.Error("strict criterion should fail with a dissenting member")
	}
	if v.Reprobed != 4 {
		t.Errorf("Reprobed = %d", v.Reprobed)
	}
	if v.ModalShare != 0.75 {
		t.Errorf("ModalShare = %v, want 0.75", v.ModalShare)
	}
	// All agreeing: modal share 1 and strict homogeneity.
	rp[members[3].Blocks24[0]] = full
	v = Validate(c, rp, 0, 1)
	if !v.Homogeneous || v.ModalShare != 1 {
		t.Errorf("uniform cluster = %+v", v)
	}
}

func TestPipelineDeterministic(t *testing.T) {
	blocks1 := starvedFamily(6, 8, 0x100000)
	blocks2 := starvedFamily(6, 8, 0x100000)
	p := &Pipeline{Seed: 2}
	r1 := p.Run(blocks1)
	r2 := p.Run(blocks2)
	if len(r1.Clusters) != len(r2.Clusters) || r1.ChosenInflation != r2.ChosenInflation {
		t.Fatal("pipeline nondeterministic")
	}
	for i := range r1.Clusters {
		if len(r1.Clusters[i].Members) != len(r2.Clusters[i].Members) {
			t.Fatal("cluster memberships differ")
		}
	}
}

// TestValidationPasses pins the acceptance rule's boundary: strict
// homogeneity always passes; otherwise both the reprobed floor (>= 4) and
// the modal-share floor (>= 0.9) must hold.
func TestValidationPasses(t *testing.T) {
	cases := []struct {
		name string
		v    Validation
		want bool
	}{
		{name: "strict-homogeneous", v: Validation{Homogeneous: true, PairsChecked: 3, IdenticalPairs: 3}, want: true},
		{name: "strict-beats-low-modal", v: Validation{Homogeneous: true, Reprobed: 2, ModalShare: 0.5}, want: true},
		{name: "modal-at-both-floors", v: Validation{Reprobed: 4, ModalShare: 0.9}, want: true},
		{name: "modal-above-floors", v: Validation{Reprobed: 10, ModalShare: 0.95}, want: true},
		{name: "reprobed-below-floor", v: Validation{Reprobed: 3, ModalShare: 1.0}, want: false},
		{name: "reprobed-just-below-both-floors", v: Validation{Reprobed: 3, ModalShare: 0.9}, want: false},
		{name: "modal-share-below-floor", v: Validation{Reprobed: 10, ModalShare: 0.8999}, want: false},
		{name: "modal-just-below-at-reprobed-floor", v: Validation{Reprobed: 4, ModalShare: 0.8999}, want: false},
		{name: "zero-value", v: Validation{}, want: false},
		{name: "pairs-differ-no-modal", v: Validation{PairsChecked: 5, IdenticalPairs: 4, Reprobed: 4, ModalShare: 0.75}, want: false},
	}
	for _, tc := range cases {
		if got := tc.v.Passes(); got != tc.want {
			t.Errorf("%s: Passes() = %v, want %v (%+v)", tc.name, got, tc.want, tc.v)
		}
	}
}

// TestApplyValidatedTable drives ApplyValidated over a two-cluster result
// with every accept/reject combination, checking merge counts, pass-
// through of rejected members, and /24 conservation.
func TestApplyValidatedTable(t *testing.T) {
	build := func() *Result {
		famA := starvedFamily(4, 4, 0x100000)
		famB := starvedFamily(4, 4, 0x200000)
		loner := agg(99, 0x300000, 2, 0x9999)
		all := append(append(append([]*aggregate.Block(nil), famA...), famB...), loner)
		for i, b := range all {
			b.ID = i
		}
		p := &Pipeline{Seed: 1}
		res := p.Run(all)
		if len(res.Clusters) != 2 {
			t.Fatalf("clusters = %d, want 2", len(res.Clusters))
		}
		return res
	}
	size24 := func(blocks []*aggregate.Block) int {
		total := 0
		for _, b := range blocks {
			total += b.Size()
		}
		return total
	}
	res := build()
	inputBlocks := len(res.Clusters[0].Members) + len(res.Clusters[1].Members) + len(res.Unclustered)
	input24 := size24(res.Clusters[0].Members) + size24(res.Clusters[1].Members) + size24(res.Unclustered)
	cases := []struct {
		name      string
		validated map[int]bool
		want      int // expected final block count
	}{
		{name: "none", validated: map[int]bool{}, want: inputBlocks},
		{name: "nil-map", validated: nil, want: inputBlocks},
		{name: "first-only", validated: map[int]bool{res.Clusters[0].ID: true},
			want: inputBlocks - len(res.Clusters[0].Members) + 1},
		{name: "second-only", validated: map[int]bool{res.Clusters[1].ID: true},
			want: inputBlocks - len(res.Clusters[1].Members) + 1},
		{name: "explicit-false-is-reject", validated: map[int]bool{res.Clusters[0].ID: false},
			want: inputBlocks},
		{name: "both", validated: map[int]bool{res.Clusters[0].ID: true, res.Clusters[1].ID: true},
			want: inputBlocks - len(res.Clusters[0].Members) - len(res.Clusters[1].Members) + 2},
	}
	for _, tc := range cases {
		out := ApplyValidated(res, tc.validated)
		if len(out) != tc.want {
			t.Errorf("%s: %d final blocks, want %d", tc.name, len(out), tc.want)
		}
		if got := size24(out); got != input24 {
			t.Errorf("%s: /24 conservation broken: %d -> %d", tc.name, input24, got)
		}
		for i, b := range out {
			if b.ID != i {
				t.Errorf("%s: ID %d at index %d", tc.name, b.ID, i)
			}
		}
	}
}

func TestApplyValidated(t *testing.T) {
	fam := starvedFamily(4, 4, 0x100000)
	loner := agg(9, 0x300000, 1, 0x9999)
	p := &Pipeline{Seed: 1}
	res := p.Run(append(append([]*aggregate.Block(nil), fam...), loner))
	if len(res.Clusters) != 1 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	before := len(fam) + 1

	// Not validated: nothing merges.
	out := ApplyValidated(res, map[int]bool{})
	if len(out) != before {
		t.Errorf("unvalidated apply = %d blocks, want %d", len(out), before)
	}

	// Validated: the family merges into one block.
	out = ApplyValidated(res, map[int]bool{res.Clusters[0].ID: true})
	want := before - len(res.Clusters[0].Members) + 1
	if len(out) != want {
		t.Fatalf("validated apply = %d blocks, want %d", len(out), want)
	}
	merged := out[0]
	size := 0
	for _, m := range res.Clusters[0].Members {
		size += m.Size()
	}
	if merged.Size() != size {
		t.Errorf("merged size = %d, want %d", merged.Size(), size)
	}
	// Union of last hops: the family spans all 4 routers.
	if len(merged.LastHops) != 4 {
		t.Errorf("merged last hops = %v", merged.LastHops)
	}
	// IDs reassigned densely.
	for i, b := range out {
		if b.ID != i {
			t.Errorf("ID %d at index %d", b.ID, i)
		}
	}
}
