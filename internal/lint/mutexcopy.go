package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerMutexCopy flags by-value copies of structs that contain sync
// primitives. A copied mutex is a fork of the lock state: both copies
// unlock independently and the guarded invariant silently evaporates —
// exactly the kind of bug the campaign's shared telemetry registry would
// surface only under -race, far from the copy site.
var AnalyzerMutexCopy = &Analyzer{
	Name: "mutex-copy",
	Doc: "flag by-value receivers, parameters, results, assignments, and " +
		"range variables of struct types containing sync primitives; " +
		"locks must be shared by pointer, never forked by copy",
	Run: runMutexCopy,
}

func runMutexCopy(p *Pass) {
	report := p.Reportf
	memo := map[types.Type]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(p, x, memo, report)
			case *ast.AssignStmt:
				for _, rhs := range x.Rhs {
					if copiesLock(p, rhs, memo) {
						report(rhs.Pos(), "assignment copies a %s by value; it contains a sync "+
							"primitive — share it by pointer", typeLabel(p.TypeOf(rhs)))
					}
				}
			case *ast.RangeStmt:
				if x.Value != nil {
					if t := p.TypeOf(x.Value); t != nil && hasLock(t, memo) {
						report(x.Value.Pos(), "range copies each %s element by value; it contains a "+
							"sync primitive — iterate by index or store pointers", typeLabel(t))
					}
				}
			}
			return true
		})
	}
}

func checkFuncSig(p *Pass, fd *ast.FuncDecl, memo map[types.Type]bool, report func(pos token.Pos, format string, args ...any)) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if hasLock(t, memo) {
				report(field.Type.Pos(), "%s %s is passed by value and contains a sync primitive; "+
					"use a pointer", what, typeLabel(t))
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
	check(fd.Type.Results, "result")
}

// copiesLock reports whether evaluating the expression copies an existing
// lock-bearing value. Construction (composite literals, function calls)
// is fine; reading a variable, field, element, or dereference is a copy.
func copiesLock(p *Pass, e ast.Expr, memo map[types.Type]bool) bool {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return false
	}
	t := p.TypeOf(e)
	return t != nil && hasLock(t, memo)
}

// hasLock reports whether the type (or anything it embeds) is a sync
// primitive that must not be copied after first use.
func hasLock(t types.Type, memo map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	if v, ok := memo[t]; ok {
		return v
	}
	memo[t] = false // cycle guard
	result := false
	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
				result = true
			}
		}
		if !result {
			result = hasLock(u.Underlying(), memo)
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasLock(u.Field(i).Type(), memo) {
				result = true
				break
			}
		}
	case *types.Array:
		result = hasLock(u.Elem(), memo)
	}
	memo[t] = result
	return result
}

func typeLabel(t types.Type) string {
	if t == nil {
		return "value"
	}
	return t.String()
}
