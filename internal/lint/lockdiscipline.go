package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerLockDiscipline forbids blocking work while a sync.Mutex or
// sync.RWMutex is held. The daemon's handlers and the world pool hold
// short critical sections around in-memory state; a channel operation,
// network I/O, or a pipeline run inside one turns every other waiter
// into a convoy — and, when the blocking work needs the same lock to
// make progress (the SSE event log waking subscribers, the limiter
// releasing a slot), into a deadlock. The tracker is intra-procedural
// and linear: Lock()/RLock() on a resolved sync primitive marks it held,
// Unlock()/RUnlock() releases it, `defer mu.Unlock()` holds it for the
// rest of the function, and every statement in between is screened for
// blocking shapes. Closure bodies are separate functions with no lock
// held (the tracker does not chase captured locks across the boundary).
var AnalyzerLockDiscipline = &Analyzer{
	Name: "lock-discipline",
	Doc: "forbid blocking operations — channel sends/receives, selects, " +
		"net/http I/O, time.Sleep, and long-running calls such as Wait, " +
		"Acquire, or Pipeline.Run — between a sync.Mutex/RWMutex Lock and " +
		"its Unlock; critical sections must stay short and in-memory",
	Run: runLockDiscipline,
}

// blockingPkgs are import paths whose calls are assumed to block on the
// outside world.
var blockingPkgs = map[string]bool{
	"net":      true,
	"net/http": true,
	"os/exec":  true,
}

// blockingNames are method/function names that mark long-running or
// synchronizing work regardless of package: joining a pool, acquiring a
// slot, running a pipeline, serving a listener.
var blockingNames = map[string]bool{
	"Wait":           true,
	"Acquire":        true,
	"Run":            true,
	"Serve":          true,
	"ListenAndServe": true,
	"Shutdown":       true,
	"Sleep":          true,
	"Join":           true,
}

func runLockDiscipline(p *Pass) {
	df := p.Facts()
	for _, fi := range df.funcs {
		checkLockedBody(p, fi)
	}
}

// checkLockedBody walks one function body linearly, tracking the set of
// held sync primitives by object identity.
func checkLockedBody(p *Pass, fi *funcInfo) {
	if fi.body == nil {
		return
	}
	held := map[types.Object]*ast.CallExpr{} // lock object -> Lock call site
	walkLinear(fi.body, func(st ast.Stmt) {
		switch x := st.(type) {
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held until return; any
			// other defer is teardown code that runs outside the walk.
			return
		case *ast.SendStmt:
			reportHeld(p, held, x.Pos(), "channel send")
			return
		case *ast.SelectStmt:
			reportHeld(p, held, x.Pos(), "select")
			return
		case *ast.ExprStmt, *ast.AssignStmt, *ast.GoStmt, *ast.ReturnStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.LabeledStmt, *ast.BlockStmt, *ast.TypeSwitchStmt, *ast.BranchStmt, *ast.CaseClause, *ast.CommClause, *ast.EmptyStmt:
			// Headers and simple statements are screened expression-wise
			// below; nested bodies arrive as their own statements.
		}
		screenStmt(p, held, st)
	})
}

// screenStmt updates the held set from lock/unlock calls in st's own
// expressions (not nested blocks) and reports blocking shapes.
func screenStmt(p *Pass, held map[types.Object]*ast.CallExpr, st ast.Stmt) {
	shallowExprs(st, func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			switch x := n.(type) {
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					reportHeld(p, held, x.Pos(), "channel receive")
				}
			case *ast.CallExpr:
				screenCall(p, held, x)
			}
			return true
		})
	})
}

// screenCall classifies one call: a lock transition, a blocking call, or
// neither.
func screenCall(p *Pass, held map[types.Object]*ast.CallExpr, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	obj := receiverBase(p, sel.X)
	if obj != nil && isMutexType(objType(obj)) {
		switch name {
		case "Lock", "RLock":
			held[obj] = call
		case "Unlock", "RUnlock":
			delete(held, obj)
		}
		return
	}
	if len(held) == 0 {
		return
	}
	if pkg := calleePkgPath(p, call); pkg != "" && blockingPkgs[pkg] {
		reportHeld(p, held, call.Pos(), "call into "+pkg)
		return
	}
	if blockingNames[name] {
		// time.Sleep and friends resolve through the package path too,
		// but the name list also catches methods (Limiter.Acquire,
		// Pipeline.Run, WaitGroup.Wait) on any receiver.
		reportHeld(p, held, call.Pos(), name+"()")
	}
}

// calleePkgPath resolves the defining package of the called function or
// method, or "" when unknown.
func calleePkgPath(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if p.Info == nil {
		return ""
	}
	if s, ok := p.Info.Selections[sel]; ok {
		if f := s.Obj(); f != nil && f.Pkg() != nil {
			return f.Pkg().Path()
		}
		return ""
	}
	// Package-level function: pkg.Func.
	if obj := p.ObjectOf(sel.Sel); obj != nil && obj.Pkg() != nil {
		return obj.Pkg().Path()
	}
	return ""
}

// reportHeld emits one finding per blocking site, naming the oldest held
// lock.
func reportHeld(p *Pass, held map[types.Object]*ast.CallExpr, pos token.Pos, what string) {
	if len(held) == 0 {
		return
	}
	var lock types.Object
	var lockCall *ast.CallExpr
	for obj, call := range held {
		if lockCall == nil || call.Pos() < lockCall.Pos() {
			lock, lockCall = obj, call
		}
	}
	p.Reportf(pos, "%s while %s is locked (since line %d); release the lock before blocking, "+
		"or justify with //lint:ignore lock-discipline <reason>",
		what, lock.Name(), p.Fset.Position(lockCall.Pos()).Line)
}

// shallowExprs invokes fn on the expressions belonging to st itself —
// not those of statements nested inside its blocks, which walkLinear
// delivers separately.
func shallowExprs(st ast.Stmt, fn func(ast.Expr)) {
	switch x := st.(type) {
	case *ast.ExprStmt:
		fn(x.X)
	case *ast.SendStmt:
		fn(x.Chan)
		fn(x.Value)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			fn(e)
		}
		for _, e := range x.Lhs {
			fn(e)
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			fn(e)
		}
	case *ast.IfStmt:
		if x.Init != nil {
			shallowExprs(x.Init, fn)
		}
		fn(x.Cond)
	case *ast.ForStmt:
		if x.Init != nil {
			shallowExprs(x.Init, fn)
		}
		if x.Cond != nil {
			fn(x.Cond)
		}
		if x.Post != nil {
			shallowExprs(x.Post, fn)
		}
	case *ast.RangeStmt:
		fn(x.X)
	case *ast.SwitchStmt:
		if x.Init != nil {
			shallowExprs(x.Init, fn)
		}
		if x.Tag != nil {
			fn(x.Tag)
		}
	case *ast.IncDecStmt:
		fn(x.X)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						fn(e)
					}
				}
			}
		}
	case *ast.GoStmt:
		// The launch itself does not block; only its arguments are
		// evaluated in the critical section.
		for _, e := range x.Call.Args {
			fn(e)
		}
	}
}
