package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerCtxPropagation keeps the cancellation chain unbroken: a
// function that already has a context — a context.Context parameter, or
// an *http.Request whose Context() carries the client's lifetime — must
// thread it into every call that accepts one. Passing
// context.Background(), context.TODO(), or nil instead silently detaches
// the callee from the caller's deadline and cancellation: exactly the
// hobbitd regression class where a handler's pipeline run survives the
// client disconnect it was supposed to die with. PR 1 made the pipeline
// context-aware and PR 6 tied synchronous campaigns to r.Context(); this
// analyzer keeps new call sites honest. Each finding carries a suggested
// fix substituting the in-scope context, applied by hobbitlint -fix.
var AnalyzerCtxPropagation = &Analyzer{
	Name: "ctx-propagation",
	Doc: "in functions that have a context.Context parameter (or an " +
		"*http.Request), flag context.Background(), context.TODO(), and " +
		"nil passed to a callee that accepts a context.Context; the " +
		"in-scope context must flow through so cancellation and deadlines " +
		"keep propagating",
	Run: runCtxPropagation,
}

func runCtxPropagation(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			src := contextSource(p, fd)
			if src == "" {
				continue
			}
			checkCtxArgs(p, f, fd.Body, src)
		}
	}
}

// contextSource returns the expression that yields the function's
// context — the first context.Context parameter's name, or
// "<req>.Context()" for an *http.Request parameter — or "" when the
// function has no context of its own.
func contextSource(p *Pass, fd *ast.FuncDecl) string {
	if fd.Type.Params == nil {
		return ""
	}
	reqName := ""
	for _, field := range fd.Type.Params.List {
		t := p.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isContextType(t) {
			for _, name := range field.Names {
				if name.Name != "_" {
					return name.Name
				}
			}
		}
		if reqName == "" && isHTTPRequestPtr(t) {
			for _, name := range field.Names {
				if name.Name != "_" {
					reqName = name.Name
				}
			}
		}
	}
	if reqName != "" {
		return reqName + ".Context()"
	}
	return ""
}

// isHTTPRequestPtr reports whether t is *net/http.Request.
func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// checkCtxArgs walks the body (closures included — they capture the same
// context) and screens every call's context-typed argument slots.
func checkCtxArgs(p *Pass, f *ast.File, body ast.Node, src string) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sig := calleeSignature(p, call)
		if sig == nil {
			return true
		}
		for i, arg := range call.Args {
			if i >= sig.Params().Len() && !sig.Variadic() {
				break
			}
			idx := i
			if idx >= sig.Params().Len() {
				idx = sig.Params().Len() - 1
			}
			if !isContextType(sig.Params().At(idx).Type()) {
				continue
			}
			if detached := detachedCtx(p, f, arg); detached != "" {
				p.Report(Finding{
					Pos: arg.Pos(),
					Message: "call discards the in-scope context by passing " + detached +
						"; thread " + src + " (or a context derived from it) so cancellation " +
						"and deadlines propagate, or justify with //lint:ignore ctx-propagation <reason>",
					Fixes: []SuggestedFix{{
						Message: "pass " + src,
						Edits:   []TextEdit{{Pos: arg.Pos(), End: arg.End(), NewText: src}},
					}},
				})
			}
		}
		return true
	})
}

// detachedCtx classifies an argument expression that severs the context
// chain: a fresh context.Background()/context.TODO() or a nil literal.
// Anything else — the ctx itself, a derived WithTimeout/WithCancel, a
// stored field — is accepted.
func detachedCtx(p *Pass, f *ast.File, arg ast.Expr) string {
	switch x := ast.Unparen(arg).(type) {
	case *ast.CallExpr:
		if pkg, fn := p.PkgFuncCall(f, x); pkg == "context" && (fn == "Background" || fn == "TODO") {
			return "context." + fn + "()"
		}
	case *ast.Ident:
		if x.Name == "nil" {
			if obj := p.ObjectOf(x); obj == nil || obj.Pkg() == nil {
				return "a nil context"
			}
		}
	}
	return ""
}
