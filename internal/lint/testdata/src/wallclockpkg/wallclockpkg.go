// Package wallclockpkg is a lint fixture: wall-clock reads in a package
// that is neither telemetry, a cmd, nor the raw-socket backend.
package wallclockpkg

import "time"

// Stamp reads the wall clock: flagged.
func Stamp() time.Time {
	return time.Now()
}

// Elapsed measures real time: flagged.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// Fixed uses an absolute constant instant: not flagged.
func Fixed() time.Time {
	return time.Unix(0, 0)
}
