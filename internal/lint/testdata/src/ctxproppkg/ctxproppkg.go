// Package ctxproppkg is a lint fixture for ctx-propagation: functions
// that already have a context (a ctx parameter, or an *http.Request)
// must thread it into every ctx-accepting call. Each finding carries a
// suggested fix; fixed.golden is the -fix output the round-trip test
// pins.
package ctxproppkg

import (
	"context"
	"net/http"
	"time"
)

// Detached passes a fresh Background to the callee even though the
// caller has ctx: flagged, fix substitutes ctx.
func Detached(ctx context.Context, n int) error {
	return doWork(context.Background(), n)
}

// NilCtx severs the chain with a nil context: flagged, fix substitutes
// ctx.
func NilCtx(ctx context.Context, key string) error {
	return store(nil, key)
}

// InClosure detaches inside a closure that captures ctx: flagged — the
// closure runs under the same lifetime.
func InClosure(ctx context.Context) func() error {
	return func() error {
		return doWork(context.TODO(), 0)
	}
}

// Handler has no ctx parameter but owns an *http.Request; the request
// context carries the client's lifetime: flagged, fix substitutes
// r.Context().
func Handler(w http.ResponseWriter, r *http.Request) {
	_ = doWork(context.Background(), 1)
}

// Threaded passes the caller's context straight through, and Derived
// passes a context derived from it: both clean.
func Threaded(ctx context.Context) error {
	return doWork(ctx, 2)
}

func Derived(ctx context.Context) error {
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return doWork(tctx, 3)
}

// NoCtx has no context of its own, so Background is its only honest
// choice: clean.
func NoCtx(n int) error {
	return doWork(context.Background(), n)
}

func doWork(ctx context.Context, n int) error     { return ctx.Err() }
func store(ctx context.Context, key string) error { return nil }
