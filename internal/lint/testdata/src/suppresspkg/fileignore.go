package suppresspkg

//lint:file-ignore wallclock this whole file measures real elapsed time

import "time"

// Elapsed is covered by the file-wide suppression: no finding.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
