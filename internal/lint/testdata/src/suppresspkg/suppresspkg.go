// Package suppresspkg is a lint fixture for the directive syntax:
// a well-formed //lint:ignore silences the finding on the next line,
// a reason-less directive is itself reported (and silences nothing).
package suppresspkg

import "time"

// Stamp is suppressed by a well-formed directive: no finding.
func Stamp() time.Time {
	//lint:ignore wallclock fixture demonstrates the suppression syntax
	return time.Now()
}

// Bad carries a directive without a reason: the directive is reported
// as lint-directive and the wallclock finding still fires.
func Bad() time.Time {
	//lint:ignore wallclock
	return time.Now()
}
