package suppresspkg

import (
	"context"
	"time"
)

// Busy triggers two analyzers on one line — ctx-propagation (a detached
// Background despite the ctx parameter) and wallclock (time.Now) — and
// both are excused by a stacked standalone directive group above it.
func Busy(ctx context.Context) time.Time {
	//lint:ignore ctx-propagation fixture stacks two directives over one line
	//lint:ignore wallclock fixture stacks two directives over one line
	return compute(context.Background(), time.Now())
}

// Trailing uses the inline form: the directive sits on the offending
// line itself.
func Trailing() time.Time {
	return time.Now() //lint:ignore wallclock inline trailing directive form
}

func compute(ctx context.Context, t time.Time) time.Time { return t }
