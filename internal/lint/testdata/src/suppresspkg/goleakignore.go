package suppresspkg

// A file-wide directive silences a dataflow analyzer for the whole
// file: the unjoined launch below is excused.
//lint:file-ignore goroutine-leak fixture detaches one goroutine on purpose

// Detach launches a goroutine nothing joins; the file-ignore covers it.
func Detach() {
	go func() {
		select {}
	}()
}
