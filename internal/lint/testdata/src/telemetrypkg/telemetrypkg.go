// Package telemetrypkg is a lint fixture: metric registrations that
// violate (and follow) the stage.metric_name convention.
package telemetrypkg

import "github.com/hobbitscan/hobbit/internal/telemetry"

// Register exercises literal and concatenated metric names.
func Register(reg *telemetry.Registry, stage string) {
	reg.Counter("census.scan_pings").Inc()         // ok
	reg.Counter("scanpings").Inc()                 // flagged: single segment
	reg.Gauge("census/responders").Set(1)          // flagged: slash separator
	reg.Histogram("probe."+stage+".pings", nil)    // ok: dotted fragments
	reg.Counter("probe/" + stage + "/pings").Inc() // flagged: slash fragment
	reg.Counter("probe_" + stage).Inc()            // flagged: no dot anywhere

	// Deep dotted names with underscored metrics (the degraded-probing
	// counters) satisfy the convention.
	reg.Counter("probe." + stage + ".degraded_windows").Inc() // ok
	reg.Counter("campaign.low_confidence_blocks").Inc()       // ok
}
