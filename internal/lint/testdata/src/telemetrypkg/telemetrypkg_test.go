package telemetrypkg

import "testing"

// fakeReg checks the syntactic fallback: test files carry no type info,
// so any Counter/Gauge/Histogram receiver is held to the convention.
type fakeReg struct{}

func (fakeReg) Counter(name string) int { return 0 }

func TestNames(t *testing.T) {
	var r fakeReg
	if r.Counter("bad/name") != 0 { // flagged via syntactic fallback
		t.Fatal("unreachable")
	}
}
