// Package randpkg is a lint fixture: math/rand global state and
// wall-clock seeding, plus the sanctioned constant-seeded form.
package randpkg

import (
	"math/rand"
	"time"
)

// Draw uses the shared global generator: flagged.
func Draw() int {
	return rand.Intn(10)
}

// Seeded builds a generator from the wall clock: flagged (and the
// time.Now read itself trips the wallclock analyzer).
func Seeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// Constant is the sanctioned form: a locally seeded generator.
func Constant() *rand.Rand {
	return rand.New(rand.NewSource(42))
}
