// Package goleakpkg is a lint fixture for goroutine-leak: goroutines
// outside every join/cancellation pattern, the WaitGroup worker-pool
// idiom, ctx-cancellable launches, and the dataflow refinement — a
// deferred Done() only sanctions the goroutine when the same WaitGroup
// object is Wait-ed somewhere in the package.
package goleakpkg

import (
	"context"
	"sync"
)

// Fire spawns goroutines nothing ever joins: both flagged.
func Fire() {
	go background()
	go func() {
		background()
	}()
}

// Pool is the sanctioned idiom: workers defer wg.Done, the dispatcher
// owns wg.Wait. Neither is flagged.
func Pool(n int) {
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			background()
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	<-done
}

// CtxArg threads the caller's context into the goroutine as an
// argument: ctx-cancellable, not flagged.
func CtxArg(ctx context.Context) {
	go watch(ctx)
}

// CtxCapture selects on the captured context's Done channel:
// ctx-cancellable, not flagged.
func CtxCapture(ctx context.Context) {
	go func() {
		select {
		case <-ctx.Done():
		default:
		}
	}()
}

// DoneNeverWaited defers Done() on a WaitGroup no function in the
// package ever Waits on — the join evidence is fake, so the launch is
// flagged with the dataflow-specific reason.
func DoneNeverWaited() {
	var orphan sync.WaitGroup
	orphan.Add(1)
	go func() {
		defer orphan.Done()
		background()
	}()
}

func watch(ctx context.Context) { <-ctx.Done() }

func background() {}
