// Package lockpkg is a lint fixture for lock-discipline: blocking
// operations — channel traffic, selects, net/http I/O, named
// long-running calls — inside a mutex critical section are flagged;
// sections that release the lock first, and closures (fresh scope, no
// lock held), are clean.
package lockpkg

import (
	"net/http"
	"sync"
	"time"
)

type server struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	subs []chan int
	url  string
}

// SendLocked sends on a channel while mu is held: flagged.
func (s *server) SendLocked(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ch := range s.subs {
		ch <- v
	}
}

// SelectLocked selects while mu is held: flagged.
func (s *server) SelectLocked(stop chan struct{}) {
	s.mu.Lock()
	select {
	case <-stop:
	default:
	}
	s.mu.Unlock()
}

// ReceiveLocked blocks on a channel receive under an RLock: flagged.
func (s *server) ReceiveLocked(in chan int) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return <-in
}

// FetchLocked performs net/http I/O inside the critical section:
// flagged.
func (s *server) FetchLocked() (*http.Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return http.Get(s.url)
}

// SleepLocked parks the goroutine with the lock held: flagged.
func (s *server) SleepLocked() {
	s.mu.Lock()
	time.Sleep(time.Millisecond)
	s.mu.Unlock()
}

// WaitLocked joins a pool while holding the lock: flagged (Wait is a
// blocking name on any receiver).
func (s *server) WaitLocked(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait()
}

// UnlockFirst copies the subscriber list under the lock and blocks only
// after releasing it: clean.
func (s *server) UnlockFirst(v int) {
	s.mu.Lock()
	subs := append([]chan int(nil), s.subs...)
	s.mu.Unlock()
	for _, ch := range subs {
		ch <- v
	}
}

// ClosureScope launches the blocking work in a goroutine closure: the
// closure is its own function with no lock held, so only the snapshot
// under the lock is screened. Clean.
func (s *server) ClosureScope(v int, wg *sync.WaitGroup) {
	s.mu.Lock()
	subs := append([]chan int(nil), s.subs...)
	s.mu.Unlock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, ch := range subs {
			ch <- v
		}
	}()
	wg.Wait()
}
