// Package apicompatpkg is a lint fixture for api-compat: its
// compat.lock freezes StatusV1 correctly (clean), freezes DriftedV1
// with Count as int (the source now says int64: drift), and freezes
// RemovedV1 (no longer declared: deletion); UnfrozenV1 is declared but
// absent from the lock.
package apicompatpkg

// StatusV1 matches its frozen block exactly: clean.
type StatusV1 struct {
	State string `json:"state"`
	Code  int    `json:"code"`
}

// DriftedV1 froze Count as int; the retype to int64 below is a wire
// break and is flagged.
type DriftedV1 struct {
	Name  string    `json:"name"`
	Count int64     `json:"count"`
	Extra ExtraInfo `json:"extra"`
}

// ExtraInfo is an unversioned module-local struct: its fields are
// expanded inline under DriftedV1 in the lock, so drift here would trip
// the gate too.
type ExtraInfo struct {
	Note string `json:"note"`
}

// UnfrozenV1 is declared but not frozen in compat.lock: flagged.
type UnfrozenV1 struct {
	ID string `json:"id"`
}
