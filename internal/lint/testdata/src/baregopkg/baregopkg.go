// Package baregopkg is a lint fixture: goroutines outside the
// WaitGroup worker-pool pattern, plus the pattern itself.
package baregopkg

import "sync"

// Fire spawns goroutines nothing ever joins: both flagged.
func Fire() {
	go background()
	go func() {
		background()
	}()
}

// Pool is the sanctioned idiom: workers defer wg.Done, the dispatcher
// owns wg.Wait. Neither is flagged.
func Pool(n int) {
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			background()
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	<-done
}

func background() {}
