// Package mutexcopypkg is a lint fixture: by-value copies of a struct
// carrying a sync primitive, plus the sanctioned pointer forms.
package mutexcopypkg

import "sync"

// Guarded embeds a mutex, so every by-value copy forks the lock state.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// ByValue takes the struct by value: flagged (parameter).
func ByValue(g Guarded) int {
	return g.n
}

// Get has a by-value receiver: flagged (receiver).
func (g Guarded) Get() int {
	return g.n
}

// Clone dereferences into a copy: flagged (assignment).
func Clone(src *Guarded) int {
	cp := *src
	return cp.n
}

// Sum ranges by value over lock-bearing elements: flagged (range).
func Sum(gs []Guarded) int {
	total := 0
	for _, g := range gs {
		total += g.n
	}
	return total
}

// Read shares by pointer: not flagged.
func Read(g *Guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}
