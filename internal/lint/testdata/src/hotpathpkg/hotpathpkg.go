// Package hotpathpkg is a lint fixture: allocation sources inside
// functions marked //hobbit:hotpath, plus the unannotated and suppressed
// forms that stay silent.
package hotpathpkg

import "hash/fnv"

// HotHash builds a hasher per call inside a declared hot path: flagged.
//
//hobbit:hotpath
func HotHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// HotBytes converts a string per call inside a declared hot path: flagged.
//
//hobbit:hotpath
func HotBytes(s string) int {
	return len([]byte(s))
}

// BuildHash is the sanctioned build-time form: no annotation, no finding.
func BuildHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// HotSuppressed shows the escape hatch for a deliberate exception.
//
//hobbit:hotpath
func HotSuppressed(s string) int {
	//lint:ignore hotpath-alloc cold error branch, never taken per probe
	b := []byte(s)
	return len(b)
}

// HotMap builds a map per call inside a declared hot path: flagged.
//
//hobbit:hotpath
func HotMap(keys []int) int {
	seen := make(map[int]bool, len(keys))
	for _, k := range keys {
		seen[k] = true
	}
	return len(seen)
}

// BuildMap is the sanctioned build-time form: no annotation, no finding.
func BuildMap(n int) map[int]int {
	return make(map[int]int, n)
}

// HotSlice shows that make([]T, n) and make(chan T) stay silent inside a
// hot path — only the map form is categorically wrong there.
//
//hobbit:hotpath
func HotSlice(n int) int {
	buf := make([]int, n)
	ch := make(chan int, 1)
	ch <- len(buf)
	return <-ch
}

// HotMapSuppressed shows the escape hatch for a deliberate map.
//
//hobbit:hotpath
func HotMapSuppressed(n int) int {
	//lint:ignore hotpath-alloc cold init branch, runs once per engine
	m := make(map[int]int, n)
	return len(m)
}

// HotClean is a hot path with no allocation sources: no finding.
//
//hobbit:hotpath
func HotClean(x uint64) uint64 {
	return x * 0x9e3779b97f4a7c15
}
