// Package hotpathpkg is a lint fixture: allocation sources inside
// functions marked //hobbit:hotpath, plus the unannotated and suppressed
// forms that stay silent.
package hotpathpkg

import "hash/fnv"

// HotHash builds a hasher per call inside a declared hot path: flagged.
//
//hobbit:hotpath
func HotHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// HotBytes converts a string per call inside a declared hot path: flagged.
//
//hobbit:hotpath
func HotBytes(s string) int {
	return len([]byte(s))
}

// BuildHash is the sanctioned build-time form: no annotation, no finding.
func BuildHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// HotSuppressed shows the escape hatch for a deliberate exception.
//
//hobbit:hotpath
func HotSuppressed(s string) int {
	//lint:ignore hotpath-alloc cold error branch, never taken per probe
	b := []byte(s)
	return len(b)
}

// HotClean is a hot path with no allocation sources: no finding.
//
//hobbit:hotpath
func HotClean(x uint64) uint64 {
	return x * 0x9e3779b97f4a7c15
}
