// Package stalepkg is a lint fixture for stale-suppression: a directive
// that suppresses nothing is itself a finding, a typo'd analyzer name
// can never suppress anything, and a deliberate
// //lint:ignore stale-suppression directive excuses a known-dormant one.
package stalepkg

import "time"

// Stamp keeps one live suppression for contrast: the directive is used,
// so it is not reported.
func Stamp() time.Time {
	//lint:ignore wallclock fixture keeps one live suppression for contrast
	return time.Now()
}

// Calm carries a directive over a line with no wallclock finding:
// the directive is stale and reported.
func Calm() int {
	//lint:ignore wallclock nothing on the next line reads the clock
	return 42
}

// Typo names an analyzer that does not exist: reported with the
// unknown-analyzer message.
func Typo() int {
	//lint:ignore wallclocks the analyzer name has a typo
	return 7
}

// Excused stacks a stale-suppression directive over a dormant one: the
// dormant wallclock directive suppresses nothing, but the meta
// directive excuses it, so neither is reported.
func Excused() int {
	//lint:ignore stale-suppression kept dormant while the caller migrates off the clock
	//lint:ignore wallclock the migration will reintroduce time.Now here
	return 9
}
