package stalepkg

// The file-wide directive below suppresses nothing in this file: stale,
// reported once at the directive.
//lint:file-ignore hotpath-alloc nothing in this file is a hot path

func helper() int { return 1 }
