// Package goleaklauncherpkg is a lint fixture for the launcher-owns-the-
// join recognition: named worker functions launched by a function that
// calls wg.Add and wg.Wait (internal/parallel's ForEach shape) are
// sanctioned; named launches nothing joins are flagged.
package goleaklauncherpkg

import "sync"

// PoolLaunch mirrors parallel.Pool.ForEach: the launcher registers every
// worker up front and joins them before returning. The named launches are
// not flagged.
func PoolLaunch(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go worker(&wg)
	}
	wg.Wait()
}

// FireNamed launches a named function nothing joins: flagged.
func FireNamed() {
	go leak()
}

// AddWithoutWait registers workers but never joins them: still flagged —
// Add alone is not a join.
func AddWithoutWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
}

// NestedLauncher joins in the outer function while the launch happens in
// an inner closure: flagged — the innermost enclosing function must own
// the join for the lifetime to be visible.
func NestedLauncher() {
	var wg sync.WaitGroup
	wg.Add(1)
	func() {
		go worker(&wg)
	}()
	wg.Wait()
}

func worker(wg *sync.WaitGroup) { wg.Done() }

func leak() {}
