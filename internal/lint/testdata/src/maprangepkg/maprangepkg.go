// Package maprangepkg is a lint fixture: order-sensitive sinks fed from
// randomized map iteration, plus the recognized-safe forms.
package maprangepkg

import (
	"fmt"
	"sort"
)

// Collect appends map keys without sorting: flagged.
func Collect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// CollectSorted sorts right after the loop: not flagged.
func CollectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Print writes output in map order: flagged.
func Print(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// LocalOnly appends to a per-iteration local: not flagged.
func LocalOnly(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		cp := append([]int(nil), vs...)
		total += len(cp)
	}
	return total
}

// Reindex stores into another map (keyed, order-free): not flagged.
func Reindex(m map[string][]int) map[string][]int {
	out := map[string][]int{}
	for k, vs := range m {
		out[k] = append([]int(nil), vs...)
	}
	return out
}
