// Package ctxlooppkg is a lint fixture: long-running loops inside
// context-aware functions, with and without cancellation checks.
package ctxlooppkg

import "context"

// Forever never consults ctx: flagged.
func Forever(ctx context.Context) {
	for {
		work()
	}
}

// Polite checks ctx.Err each iteration: not flagged.
func Polite(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		work()
	}
}

// Drain ranges over a channel; closing it propagates shutdown: not
// flagged.
func Drain(ctx context.Context, ch <-chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// Sends blocks on channel sends without a ctx.Done case: flagged.
func Sends(ctx context.Context, ch chan<- int) {
	for i := 0; i < 100; i++ {
		ch <- i
	}
}

// Blocking does per-iteration blocking work without checking ctx:
// flagged.
func Blocking(ctx context.Context, items []int) {
	for range items {
		Process()
	}
}

func work() {}

// Process stands in for a blocking measurement call.
func Process() {}
