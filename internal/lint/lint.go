// Package lint is a Hobbit-specific static-analysis suite built directly
// on the standard library's go/parser, go/ast, and go/types (the repo's
// zero-dependency rule keeps golang.org/x/tools out). Its analyzers
// machine-check the invariants the reproduction depends on — same-seed
// runs must stay byte-identical — so regressions like global math/rand
// state, output fed from unsorted map iteration, or wall-clock reads in
// algorithm paths fail the tier-1 gate instead of waiting for review.
//
// A finding can be silenced in place with a directive comment on, or
// immediately above, the offending line:
//
//	//lint:ignore <analyzer-name> <reason>
//
// or for a whole file (used sparingly, e.g. the raw-socket backend):
//
//	//lint:file-ignore <analyzer-name> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// Diagnostic is one finding, rendered as "file:line: [name] message".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	// Doc is the one-paragraph description DESIGN.md mirrors.
	Doc string
	// Run inspects the package and reports findings.
	Run func(p *Pass, report func(pos token.Pos, format string, args ...any))
}

// Pass hands one loaded package to an analyzer.
type Pass struct {
	Fset *token.FileSet
	// Path is the package import path; ModulePath the enclosing module.
	Path       string
	ModulePath string
	// Files are type-checked non-test files; TestFiles are parsed-only
	// _test.go files (Info does not cover them).
	Files     []*ast.File
	TestFiles []*ast.File
	Pkg       *types.Package
	Info      *types.Info
}

// TypeOf returns the type of an expression, or nil when unknown (test
// files, unresolved code).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// PkgFuncCall resolves a call of the form pkg.Func to the imported
// package's path and the function name. Type information is used when
// available; otherwise (test files) the file's import table resolves the
// package identifier syntactically. It returns "", "" for anything else.
func (p *Pass) PkgFuncCall(f *ast.File, call *ast.CallExpr) (pkgPath, funcName string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if obj := p.ObjectOf(id); obj != nil {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path(), sel.Sel.Name
		}
		return "", ""
	}
	// Syntactic fallback: match the identifier against the import table.
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		} else {
			name = path[strings.LastIndex(path, "/")+1:]
		}
		if name == id.Name {
			return path, sel.Sel.Name
		}
	}
	return "", ""
}

// Suite is the default analyzer set, in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		AnalyzerNondetermRand,
		AnalyzerNondetermMapRange,
		AnalyzerWallclock,
		AnalyzerCtxLoop,
		AnalyzerTelemetryNames,
		AnalyzerMutexCopy,
		AnalyzerBareGo,
		AnalyzerHotpathAlloc,
	}
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics (suppressions applied), sorted by position.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		pass := &Pass{
			Fset:       l.Fset,
			Path:       pkg.Path,
			ModulePath: l.ModulePath,
			Files:      pkg.Files,
			TestFiles:  pkg.TestFiles,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
		}
		sup := newSuppressions(l.Fset, append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...))
		diags = append(diags, sup.malformed...)
		for _, a := range analyzers {
			a := a
			report := func(pos token.Pos, format string, args ...any) {
				position := l.Fset.Position(pos)
				if sup.suppressed(a.Name, position) {
					return
				}
				diags = append(diags, Diagnostic{
					Pos:      position,
					Analyzer: a.Name,
					Message:  fmt.Sprintf(format, args...),
				})
			}
			a.Run(pass, report)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// suppressions indexes //lint:ignore and //lint:file-ignore directives.
type suppressions struct {
	// lines maps file -> analyzer -> suppressed lines.
	lines map[string]map[string]map[int]bool
	// files maps file -> analyzer suppressed for the whole file.
	files     map[string]map[string]bool
	malformed []Diagnostic
}

func newSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{
		lines: map[string]map[string]map[int]bool{},
		files: map[string]map[string]bool{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				var fileWide bool
				switch {
				case strings.HasPrefix(text, "lint:ignore"):
					text = strings.TrimPrefix(text, "lint:ignore")
				case strings.HasPrefix(text, "lint:file-ignore"):
					text = strings.TrimPrefix(text, "lint:file-ignore")
					fileWide = true
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "lint-directive",
						Message:  "malformed lint directive: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				name := fields[0]
				if fileWide {
					byName := s.files[pos.Filename]
					if byName == nil {
						byName = map[string]bool{}
						s.files[pos.Filename] = byName
					}
					byName[name] = true
					continue
				}
				byName := s.lines[pos.Filename]
				if byName == nil {
					byName = map[string]map[int]bool{}
					s.lines[pos.Filename] = byName
				}
				if byName[name] == nil {
					byName[name] = map[int]bool{}
				}
				// The directive covers its own line and the next one, so
				// it works both trailing and standalone-above.
				end := fset.Position(c.End()).Line
				byName[name][end] = true
				byName[name][end+1] = true
			}
		}
	}
	return s
}

func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	if s.files[pos.Filename][analyzer] {
		return true
	}
	return s.lines[pos.Filename][analyzer][pos.Line]
}
