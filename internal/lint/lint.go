// Package lint is a Hobbit-specific static-analysis suite built directly
// on the standard library's go/parser, go/ast, and go/types (the repo's
// zero-dependency rule keeps golang.org/x/tools out). Its analyzers
// machine-check the invariants the reproduction depends on — same-seed
// runs must stay byte-identical, goroutines must be joined or
// cancellable, locks must never be held across blocking work, and the
// versioned wire format must stay frozen — so regressions fail the
// tier-1 gate instead of waiting for review.
//
// Beyond the original per-statement pattern matchers, the suite carries a
// lightweight intra-procedural dataflow layer (dataflow.go): CFG-free
// def-use over the AST, resolved through go/types, giving analyzers
// object identity ("is this the same WaitGroup that is Waited on?"),
// linear lock-held tracking, and callee signatures.
//
// A finding can be silenced in place with a directive comment on, or
// immediately above, the offending line:
//
//	//lint:ignore <analyzer-name> <reason>
//
// or for a whole file (used sparingly, e.g. the raw-socket backend):
//
//	//lint:file-ignore <analyzer-name> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
// Standalone directives stack: a comment group made of several directive
// lines covers the statement after the group, so one line can be excused
// from more than one analyzer. A directive that suppresses nothing is
// itself reported (stale-suppression), keeping the sweep honest as
// analyzers evolve.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// TextEdit is one replacement of a source range.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// SuggestedFix is a mechanically safe rewrite that resolves a finding;
// cmd/hobbitlint -fix applies them and gofmts the result.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// Finding is what an analyzer reports: a position, a message, and any
// suggested fixes. Pass.Reportf covers the common fix-less case.
type Finding struct {
	Pos     token.Pos
	Message string
	Fixes   []SuggestedFix
}

// Diagnostic is one surviving finding, rendered as
// "file:line: [name] message".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fixes    []SuggestedFix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	// Doc is the one-paragraph description DESIGN.md mirrors.
	Doc string
	// Run inspects the package and reports findings through
	// Pass.Report/Pass.Reportf.
	Run func(p *Pass)
}

// Pass hands one loaded package to an analyzer.
type Pass struct {
	Fset *token.FileSet
	// Path is the package import path; Dir its directory; ModulePath the
	// enclosing module.
	Path       string
	Dir        string
	ModulePath string
	// Files are type-checked non-test files; TestFiles are parsed-only
	// _test.go files (Info does not cover them).
	Files     []*ast.File
	TestFiles []*ast.File
	Pkg       *types.Package
	Info      *types.Info

	// analyzer and report are wired by the driver before each Run.
	analyzer string
	report   func(Finding)
	// facts is the lazily built dataflow index shared by the analyzers of
	// one pass (see dataflow.go).
	facts *dataFacts
}

// Report emits a finding for the currently running analyzer.
func (p *Pass) Report(f Finding) { p.report(f) }

// Reportf emits a fix-less finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of an expression, or nil when unknown (test
// files, unresolved code).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// PkgFuncCall resolves a call of the form pkg.Func to the imported
// package's path and the function name. Type information is used when
// available; otherwise (test files) the file's import table resolves the
// package identifier syntactically. It returns "", "" for anything else.
func (p *Pass) PkgFuncCall(f *ast.File, call *ast.CallExpr) (pkgPath, funcName string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if obj := p.ObjectOf(id); obj != nil {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path(), sel.Sel.Name
		}
		return "", ""
	}
	// Syntactic fallback: match the identifier against the import table.
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		} else {
			name = path[strings.LastIndex(path, "/")+1:]
		}
		if name == id.Name {
			return path, sel.Sel.Name
		}
	}
	return "", ""
}

// Suite is the default analyzer set, in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		AnalyzerNondetermRand,
		AnalyzerNondetermMapRange,
		AnalyzerWallclock,
		AnalyzerCtxLoop,
		AnalyzerTelemetryNames,
		AnalyzerMutexCopy,
		AnalyzerGoroutineLeak,
		AnalyzerHotpathAlloc,
		AnalyzerLockDiscipline,
		AnalyzerCtxPropagation,
		AnalyzerAPICompat,
	}
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics (suppressions applied, stale directives reported), sorted
// by (file, line, column, analyzer, message) so multi-analyzer runs are
// byte-stable for CI diffing.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		pass := &Pass{
			Fset:       l.Fset,
			Path:       pkg.Path,
			Dir:        pkg.Dir,
			ModulePath: l.ModulePath,
			Files:      pkg.Files,
			TestFiles:  pkg.TestFiles,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
		}
		sup := newSuppressions(l.Fset, append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...))
		diags = append(diags, sup.malformed...)
		for _, a := range analyzers {
			pass.analyzer = a.Name
			pass.report = func(f Finding) {
				position := l.Fset.Position(f.Pos)
				if sup.suppressed(pass.analyzer, position) {
					return
				}
				diags = append(diags, Diagnostic{
					Pos:      position,
					Analyzer: pass.analyzer,
					Message:  f.Message,
					Fixes:    f.Fixes,
				})
			}
			a.Run(pass)
		}
		diags = append(diags, sup.stale(analyzers)...)
	}
	sortDiagnostics(diags)
	return diags
}

// sortDiagnostics orders by (file, line, column, analyzer, message): a
// total order, so equal-position findings from different analyzers — or
// the same analyzer reporting twice on one expression — always render in
// the same sequence.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// directive is one parsed //lint:ignore or //lint:file-ignore comment.
type directive struct {
	pos      token.Position
	start    token.Pos // comment extent, for the deletion fix
	end      token.Pos
	analyzer string
	fileWide bool
	used     bool
}

// suppressions indexes the directives of one package.
type suppressions struct {
	// lines maps file -> analyzer -> line -> directive covering it.
	lines map[string]map[string]map[int]*directive
	// files maps file -> analyzer -> file-wide directive.
	files      map[string]map[string]*directive
	directives []*directive
	malformed  []Diagnostic
}

func newSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{
		lines: map[string]map[string]map[int]*directive{},
		files: map[string]map[string]*directive{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			// Standalone directives stack: every directive in the group
			// covers through the line after the whole group, so several
			// analyzers can be excused above one statement.
			groupEnd := fset.Position(cg.End()).Line
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				var fileWide bool
				switch {
				case strings.HasPrefix(text, "lint:file-ignore"):
					text = strings.TrimPrefix(text, "lint:file-ignore")
					fileWide = true
				case strings.HasPrefix(text, "lint:ignore"):
					text = strings.TrimPrefix(text, "lint:ignore")
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "lint-directive",
						Message:  "malformed lint directive: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				d := &directive{
					pos:      pos,
					start:    c.Pos(),
					end:      c.End(),
					analyzer: fields[0],
					fileWide: fileWide,
				}
				s.directives = append(s.directives, d)
				if fileWide {
					byName := s.files[pos.Filename]
					if byName == nil {
						byName = map[string]*directive{}
						s.files[pos.Filename] = byName
					}
					byName[d.analyzer] = d
					continue
				}
				byName := s.lines[pos.Filename]
				if byName == nil {
					byName = map[string]map[int]*directive{}
					s.lines[pos.Filename] = byName
				}
				if byName[d.analyzer] == nil {
					byName[d.analyzer] = map[int]*directive{}
				}
				// The directive covers its own line (trailing form), the
				// rest of its comment group (stacked directives), and the
				// line after the group (standalone-above form).
				for line := pos.Line; line <= groupEnd+1; line++ {
					if byName[d.analyzer][line] == nil {
						byName[d.analyzer][line] = d
					}
				}
			}
		}
	}
	return s
}

func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	if d := s.files[pos.Filename][analyzer]; d != nil {
		d.used = true
		return true
	}
	if d := s.lines[pos.Filename][analyzer][pos.Line]; d != nil {
		d.used = true
		return true
	}
	return false
}

// stale reports every well-formed directive that suppressed nothing in
// this run. Directives naming an analyzer outside the run's set are
// reported too — a typo in the name would otherwise silence nothing,
// forever, invisibly. The suggested fix deletes the directive.
func (s *suppressions) stale(analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{"lint-directive": true, "stale-suppression": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, d := range s.directives {
		if d.used {
			continue
		}
		msg := fmt.Sprintf("directive suppresses no %s finding; delete it or fix the justification", d.analyzer)
		if !known[d.analyzer] {
			msg = fmt.Sprintf("directive names unknown analyzer %q and can never suppress anything", d.analyzer)
		}
		if s.suppressed("stale-suppression", d.pos) {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      d.pos,
			Analyzer: "stale-suppression",
			Message:  msg,
			Fixes: []SuggestedFix{{
				Message: "delete the stale directive",
				Edits:   []TextEdit{{Pos: d.start, End: d.end}},
			}},
		})
	}
	return diags
}
