package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerNondetermMapRange flags `range` over a map whose body feeds
// order-sensitive sinks — appends to a slice, writes to an output stream,
// or feeds a hash/encoder. Go randomizes map iteration order on purpose,
// so any of those turns a same-seed run into different bytes. The
// canonical fixes: iterate a sorted key slice, or sort the collected
// result immediately after the loop (which the analyzer recognizes).
var AnalyzerNondetermMapRange = &Analyzer{
	Name: "nondeterm-maprange",
	Doc: "flag map iteration that appends to slices, writes output, or " +
		"feeds hashes/encoders without sorting; map order is randomized, " +
		"so such loops make output bytes nondeterministic",
	Run: runNondetermMapRange,
}

// sortFollowDistance is how many statements after the range loop a sort of
// the collected slice may appear and still count as the fix.
const sortFollowDistance = 3

func runNondetermMapRange(p *Pass) {
	report := p.Reportf
	for _, f := range p.Files {
		inspectBlocks(f, func(list []ast.Stmt) {
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapType(p.TypeOf(rs.X)) {
					continue
				}
				checkMapRange(p, f, rs, list[i+1:], report)
			}
		})
	}
}

// inspectBlocks visits every statement list in the file, giving the
// callback enough context to see what follows each statement.
func inspectBlocks(f *ast.File, visit func(list []ast.Stmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.BlockStmt:
			visit(b.List)
		case *ast.CaseClause:
			visit(b.Body)
		case *ast.CommClause:
			visit(b.Body)
		}
		return true
	})
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRange(p *Pass, f *ast.File, rs *ast.RangeStmt, following []ast.Stmt, report func(pos token.Pos, format string, args ...any)) {
	// Collect order-sensitive sinks in the loop body.
	var appendTargets []string
	outputSink := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(s.Lhs) == 1 {
					if target := appendTarget(p, rs, s.Lhs[0]); target != "" {
						appendTargets = append(appendTargets, target)
					}
				}
			}
		case *ast.CallExpr:
			if name := outputCallName(p, f, s); name != "" && outputSink == "" {
				outputSink = name
			}
		}
		return true
	})

	if outputSink != "" {
		report(rs.Pos(), "map iteration order is randomized; %s inside this range writes "+
			"output in that order — iterate sorted keys instead", outputSink)
		return
	}
	for _, target := range appendTargets {
		if sortedAfter(p, f, target, following) {
			continue
		}
		report(rs.Pos(), "map iteration order is randomized; appending to %s inside this range "+
			"yields a nondeterministic order — sort %s afterwards or iterate sorted keys", target, target)
		return
	}
}

// appendTarget decides whether an append destination is order-sensitive
// and returns its rendered form. Order does not matter for variables
// declared inside the loop body (fresh each iteration) or for values
// stored into a map (keyed, not ordered).
func appendTarget(p *Pass, rs *ast.RangeStmt, lhs ast.Expr) string {
	switch t := lhs.(type) {
	case *ast.Ident:
		if obj := p.ObjectOf(t); obj != nil && rs.Pos() <= obj.Pos() && obj.Pos() <= rs.End() {
			return "" // loop-local accumulator
		}
		return t.Name
	case *ast.IndexExpr:
		if isMapType(p.TypeOf(t.X)) {
			return "" // map write: keyed, order-free
		}
		return types.ExprString(t)
	default:
		return types.ExprString(lhs)
	}
}

// outputCallName recognizes calls that emit bytes whose order matters:
// fmt printing, io/buffer writes, encoders, and hash feeds.
func outputCallName(p *Pass, f *ast.File, call *ast.CallExpr) string {
	if pkg, fn := p.PkgFuncCall(f, call); pkg == "fmt" {
		switch fn {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return "fmt." + fn
		}
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode", "Sum":
		return "." + sel.Sel.Name
	}
	return ""
}

// sortedAfter reports whether one of the next few statements sorts the
// collected slice: sort.*/slices.* calls, or any helper whose name starts
// with "Sort" (the repo's sorted-keys helpers, iputil.SortAddrs and
// friends), mentioning the target expression.
func sortedAfter(p *Pass, f *ast.File, target string, following []ast.Stmt) bool {
	limit := sortFollowDistance
	if len(following) < limit {
		limit = len(following)
	}
	for _, stmt := range following[:limit] {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isSortCall(p, f, call) {
				return true
			}
			for _, arg := range call.Args {
				if exprMentions(arg, target) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func isSortCall(p *Pass, f *ast.File, call *ast.CallExpr) bool {
	pkg, fn := p.PkgFuncCall(f, call)
	if pkg == "sort" || pkg == "slices" {
		switch fn {
		case "Sort", "SortFunc", "SortStableFunc", "Stable",
			"Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return true
		}
		return false
	}
	return strings.HasPrefix(calleeName(call), "Sort")
}

// exprMentions reports whether the expression contains the rendered
// target, either as a bare identifier or as a selector path.
func exprMentions(arg ast.Expr, target string) bool {
	found := false
	ast.Inspect(arg, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.Ident:
			if x.Name == target {
				found = true
			}
		case *ast.SelectorExpr:
			if types.ExprString(x) == target {
				found = true
			}
		}
		return !found
	})
	return found
}
