package lint

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the fixture expected.txt files")

// TestFixtures runs the full analyzer suite over every fixture package
// under testdata/src and compares the rendered diagnostics against the
// package's expected.txt golden. Regenerate goldens with
//
//	go test ./internal/lint -run TestFixtures -update
func TestFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			pkgs, err := loader.Load(filepath.Join("internal", "lint", dir))
			if err != nil {
				t.Fatal(err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("loaded %d packages, want 1", len(pkgs))
			}
			for _, terr := range pkgs[0].TypeErrors {
				t.Errorf("fixture does not type-check: %v", terr)
			}
			var got bytes.Buffer
			for _, d := range Run(loader, pkgs, Suite()) {
				fmt.Fprintf(&got, "%s:%d: [%s] %s\n",
					filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
			}
			golden := filepath.Join(dir, "expected.txt")
			if *update {
				if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s",
					golden, got.String(), want)
			}
		})
	}
}

// TestSuiteNames pins the analyzer set: DESIGN.md documents one
// subsection per name, and tier1.sh gates on all of them.
func TestSuiteNames(t *testing.T) {
	want := []string{
		"nondeterm-rand", "nondeterm-maprange", "wallclock",
		"ctx-loop", "telemetry-names", "mutex-copy", "bare-go",
		"hotpath-alloc",
	}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}
