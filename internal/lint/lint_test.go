package lint

import (
	"bytes"
	"flag"
	"fmt"
	"go/format"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the fixture expected.txt files")

// TestFixtures runs the full analyzer suite over every fixture package
// under testdata/src and compares the rendered diagnostics against the
// package's expected.txt golden. Regenerate goldens with
//
//	go test ./internal/lint -run TestFixtures -update
func TestFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			pkgs, err := loader.Load(filepath.Join("internal", "lint", dir))
			if err != nil {
				t.Fatal(err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("loaded %d packages, want 1", len(pkgs))
			}
			for _, terr := range pkgs[0].TypeErrors {
				t.Errorf("fixture does not type-check: %v", terr)
			}
			var got bytes.Buffer
			for _, d := range Run(loader, pkgs, Suite()) {
				fmt.Fprintf(&got, "%s:%d: [%s] %s\n",
					filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
			}
			golden := filepath.Join(dir, "expected.txt")
			if *update {
				if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s",
					golden, got.String(), want)
			}
		})
	}
}

// TestSuiteNames pins the analyzer set: DESIGN.md documents one
// subsection per name, and tier1.sh gates on all of them.
func TestSuiteNames(t *testing.T) {
	want := []string{
		"nondeterm-rand", "nondeterm-maprange", "wallclock",
		"ctx-loop", "telemetry-names", "mutex-copy", "goroutine-leak",
		"hotpath-alloc", "lock-discipline", "ctx-propagation",
		"api-compat",
	}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}

// TestFixRoundTrip applies every suggested fix from the ctxproppkg
// fixture and compares the rewritten file against fixed.golden. The
// golden is gofmt-clean and ApplyFixes formats its output, so the
// comparison also proves -fix writes gofmt-clean files.
func TestFixRoundTrip(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("internal", "lint", "testdata", "src", "ctxproppkg")
	pkgs, err := loader.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(loader, pkgs, Suite())
	if FixableCount(diags) == 0 {
		t.Fatal("ctxproppkg produced no fixable diagnostics")
	}
	fixed, err := ApplyFixes(loader.Fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 1 {
		t.Fatalf("fixes touch %d files, want 1", len(fixed))
	}
	want, err := os.ReadFile(filepath.Join("testdata", "src", "ctxproppkg", "fixed.golden"))
	if err != nil {
		t.Fatal(err)
	}
	for file, got := range fixed {
		if formatted, err := format.Source(got); err != nil || !bytes.Equal(formatted, got) {
			t.Errorf("fixed %s is not gofmt-clean (format err: %v)", file, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("fixed %s differs from fixed.golden\n--- got ---\n%s--- want ---\n%s",
				file, got, want)
		}
	}
}

// TestSortDiagnostics pins the total order Run emits — (file, line,
// column, analyzer, message) — so multi-analyzer output stays
// byte-stable for CI diffing no matter the order analyzers report in.
func TestSortDiagnostics(t *testing.T) {
	mk := func(file string, line, col int, analyzer, msg string) Diagnostic {
		return Diagnostic{
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Analyzer: analyzer,
			Message:  msg,
		}
	}
	want := []Diagnostic{
		mk("a.go", 3, 1, "wallclock", "x"),
		mk("a.go", 5, 2, "ctx-propagation", "x"),
		mk("a.go", 5, 2, "lock-discipline", "a"),
		mk("a.go", 5, 2, "lock-discipline", "b"),
		mk("a.go", 5, 9, "api-compat", "x"),
		mk("b.go", 1, 1, "wallclock", "x"),
	}
	// Feed the worst case: fully reversed.
	got := make([]Diagnostic, len(want))
	for i, d := range want {
		got[len(want)-1-i] = d
	}
	sortDiagnostics(got)
	for i := range want {
		if got[i].Pos != want[i].Pos || got[i].Analyzer != want[i].Analyzer || got[i].Message != want[i].Message {
			t.Fatalf("position %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestTreeClean runs the full suite over the whole module and demands
// zero findings: every suppression must be live and justified, and
// every compat.lock must match its package. Because this is a plain go
// test, a lint regression fails tier-1 even where tier1.sh isn't run.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.Path, terr)
		}
	}
	for _, d := range Run(loader, pkgs, Suite()) {
		t.Errorf("%s", d.String())
	}
}
