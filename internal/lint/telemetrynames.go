package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// AnalyzerTelemetryNames enforces the metric naming convention for
// telemetry registrations: dotted snake_case with a stage prefix
// ("census.scan_pings", "probe.measure.pings"). Snapshot JSON sorts by
// metric name, so a consistent, stable spelling is what keeps same-seed
// snapshot diffs readable and regression-comparable across PRs.
var AnalyzerTelemetryNames = &Analyzer{
	Name: "telemetry-names",
	Doc: "enforce the stage.metric_name snake-case convention for " +
		"Counter/Gauge/Histogram registrations so snapshot diffs stay " +
		"stable and greppable",
	Run: runTelemetryNames,
}

// metricNameRE is the full-name convention: at least two dot-separated
// snake_case segments, each starting with a letter.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)

// metricFragmentRE constrains the literal parts of concatenated names
// ("probe." + stage + ".pings"): only the convention's alphabet.
var metricFragmentRE = regexp.MustCompile(`^[a-z0-9_.]+$`)

func runTelemetryNames(p *Pass) {
	report := p.Reportf
	for _, f := range append(append([]*ast.File{}, p.Files...), p.TestFiles...) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Counter", "Gauge", "Histogram":
			default:
				return true
			}
			if !isRegistryRecv(p, sel.X) {
				return true
			}
			checkMetricName(call.Args[0], sel.Sel.Name, report)
			return true
		})
	}
}

// isRegistryRecv reports whether the receiver expression is a
// *telemetry.Registry. In test files (no type info) any receiver counts;
// the method-name triple is distinctive enough there.
func isRegistryRecv(p *Pass, recv ast.Expr) bool {
	t := p.TypeOf(recv)
	if t == nil {
		return true
	}
	s := strings.TrimPrefix(t.String(), "*")
	return strings.HasSuffix(s, "/internal/telemetry.Registry")
}

func checkMetricName(arg ast.Expr, kind string, report func(pos token.Pos, format string, args ...any)) {
	switch e := arg.(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return
		}
		name, err := strconv.Unquote(e.Value)
		if err != nil {
			return
		}
		if !metricNameRE.MatchString(name) {
			report(e.Pos(), "%s name %q violates the stage.metric_name convention "+
				"(dotted snake_case, e.g. \"census.scan_pings\")", kind, name)
		}
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return
		}
		sawDot := false
		for _, lit := range literalFragments(e) {
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				continue
			}
			if !metricFragmentRE.MatchString(name) {
				report(lit.Pos(), "%s name fragment %q violates the stage.metric_name convention "+
					"(dotted snake_case)", kind, name)
				return
			}
			if strings.Contains(name, ".") {
				sawDot = true
			}
		}
		if !sawDot {
			report(e.Pos(), "%s name built without a '.' separator; the convention is "+
				"stage.metric_name", kind)
		}
	}
}

// literalFragments collects the string literals of a concatenation chain.
func literalFragments(e ast.Expr) []*ast.BasicLit {
	switch x := e.(type) {
	case *ast.BasicLit:
		if x.Kind == token.STRING {
			return []*ast.BasicLit{x}
		}
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			return append(literalFragments(x.X), literalFragments(x.Y)...)
		}
	}
	return nil
}
