package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// AnalyzerCtxLoop keeps cancellation honored: a function that accepts a
// context.Context promises its callers responsiveness, so its long-running
// loops (and those of the closures it spawns) must consult the context.
// PR 1 threaded ctx through the pipeline precisely so a cancelled run
// stops between blocks; a new worker loop that forgets the check silently
// revokes that guarantee.
//
// Heuristic for "long-running": the loop is infinite, performs raw
// channel sends/receives, or calls an operation whose name marks blocking
// measurement work (Measure*, Probe*, Scan*, Wait, Read…). Loops ranging
// over a channel are exempt — closing the channel propagates shutdown.
var AnalyzerCtxLoop = &Analyzer{
	Name: "ctx-loop",
	Doc: "require a ctx.Err()/ctx.Done() check inside long-running loops " +
		"of functions that accept a context.Context, so cancellation " +
		"keeps working as worker loops are added",
	Run: runCtxLoop,
}

// blockingCallRE marks callee names that plausibly block or do unbounded
// work per iteration.
var blockingCallRE = regexp.MustCompile(`^(Measure|Probe|Ping|Scan|Reprobe|Exchange|Dial|Accept|Acquire|Wait|Sleep|Recv|Receive|Read|Write|Flush|Run|Do|Process|Handle)`)

func runCtxLoop(p *Pass) {
	report := p.Reportf
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxVars := contextParams(p, fd)
			if len(ctxVars) == 0 {
				continue
			}
			checkLoopsIn(p, fd.Body, ctxVars, report)
		}
	}
}

// contextParams returns the context.Context parameter objects of the
// function, resolved through the type checker.
func contextParams(p *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	vars := map[types.Object]bool{}
	if fd.Type.Params == nil {
		return vars
	}
	for _, field := range fd.Type.Params.List {
		t := p.TypeOf(field.Type)
		if t == nil || t.String() != "context.Context" {
			continue
		}
		for _, name := range field.Names {
			if obj := p.ObjectOf(name); obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// checkLoopsIn walks a function (or closure) body, examining every loop.
// Closures are followed because goroutines spawned with the captured ctx
// inherit the same obligation.
func checkLoopsIn(p *Pass, body ast.Node, ctxVars map[types.Object]bool, report func(pos token.Pos, format string, args ...any)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.ForStmt:
			checkLoop(p, loop, loop.Body, loop.Cond == nil, ctxVars, report)
		case *ast.RangeStmt:
			if t := p.TypeOf(loop.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					return true
				}
			}
			checkLoop(p, loop, loop.Body, false, ctxVars, report)
		}
		return true
	})
}

func checkLoop(p *Pass, loop ast.Node, body *ast.BlockStmt, infinite bool, ctxVars map[types.Object]bool, report func(pos token.Pos, format string, args ...any)) {
	usesCtx := false
	blocking := ""
	hasChanOp := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			// Spawning a goroutine (or arming a defer) is not work the
			// loop iteration blocks on; the goroutine's own loops are
			// examined separately.
			return false
		case *ast.Ident:
			if obj := p.ObjectOf(x); obj != nil && ctxVars[obj] {
				usesCtx = true
			}
		case *ast.SendStmt:
			hasChanOp = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				hasChanOp = true
			}
		case *ast.CallExpr:
			if blocking == "" {
				if name := calleeName(x); name != "" && blockingCallRE.MatchString(name) {
					blocking = name
				}
			}
		}
		return true
	})
	if usesCtx {
		return
	}
	switch {
	case infinite:
		report(loop.Pos(), "infinite loop in a context-aware function never checks the context; "+
			"add a ctx.Err()/ctx.Done() check per iteration")
	case hasChanOp:
		report(loop.Pos(), "loop in a context-aware function blocks on channel operations without a "+
			"ctx.Done() case; cancellation would hang here")
	case blocking != "":
		report(loop.Pos(), "loop in a context-aware function does blocking work (%s) without checking "+
			"ctx.Err()/ctx.Done(); cancellation stalls until the loop ends", blocking)
	}
}

// calleeName extracts the called function or method name.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
