package lint

import (
	"go/ast"
	"go/token"
)

// AnalyzerBareGo flags `go` statements whose goroutine is not visibly
// joined. The repo's concurrency idiom is the WaitGroup-managed worker
// pool (hobbit.Campaign.Run): every spawned goroutine either defers
// wg.Done() or owns the pool shutdown (calls wg.Wait()). A bare `go`
// outside that pattern has unbounded lifetime — it can outlive the
// pipeline run, keep writing telemetry after a snapshot, or leak under
// test — so it must either adopt the pattern or carry an explicit
// //lint:ignore bare-go justification.
var AnalyzerBareGo = &Analyzer{
	Name: "bare-go",
	Doc: "flag go statements outside the WaitGroup worker-pool pattern " +
		"(defer wg.Done() in the goroutine, or the goroutine owns " +
		"wg.Wait()); unjoined goroutines have unbounded lifetime",
	Run: runBareGo,
}

func runBareGo(p *Pass, report func(pos token.Pos, format string, args ...any)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok && joinsPool(lit.Body) {
				return true
			}
			report(g.Pos(), "bare go statement outside the worker-pool pattern; goroutine lifetime "+
				"is unbounded — defer wg.Done() inside it, make it own wg.Wait(), or justify "+
				"with //lint:ignore bare-go <reason>")
			return true
		})
	}
}

// joinsPool reports whether the goroutine body participates in a joined
// pool: it defers a .Done() (worker) or calls .Wait() (pool owner /
// dispatcher that drains the workers before exiting).
func joinsPool(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if selCallNamed(x.Call, "Done") {
				found = true
				return false
			}
			// A deferred closure may hold the teardown sequence.
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok && containsCallNamed(lit.Body, "Wait") {
				found = true
				return false
			}
		case *ast.CallExpr:
			if selCallNamed(x, "Wait") {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

func selCallNamed(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name
}

func containsCallNamed(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && selCallNamed(call, name) {
			found = true
		}
		return !found
	})
	return found
}
