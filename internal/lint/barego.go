package lint

import (
	"go/ast"
	"go/token"
)

// AnalyzerBareGo flags `go` statements whose goroutine is not visibly
// joined. The repo's concurrency idioms are the WaitGroup-managed worker
// pool (hobbit.Campaign.Run, internal/parallel): every spawned goroutine
// either defers wg.Done(), owns the pool shutdown (calls wg.Wait()), or
// is a named worker launched by a function that itself registers and
// joins the pool (wg.Add before the launches, wg.Wait after — the shape
// of parallel.Pool.ForEach). A bare `go` outside those patterns has
// unbounded lifetime — it can outlive the pipeline run, keep writing
// telemetry after a snapshot, or leak under test — so it must either
// adopt a pattern or carry an explicit //lint:ignore bare-go
// justification.
var AnalyzerBareGo = &Analyzer{
	Name: "bare-go",
	Doc: "flag go statements outside the WaitGroup worker-pool patterns " +
		"(defer wg.Done() in the goroutine, the goroutine owns wg.Wait(), " +
		"or a named worker whose launcher calls wg.Add and wg.Wait); " +
		"unjoined goroutines have unbounded lifetime",
	Run: runBareGo,
}

func runBareGo(p *Pass, report func(pos token.Pos, format string, args ...any)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				if joinsPool(lit.Body) {
					return true
				}
			} else if body := enclosingFuncBody(f, g.Pos()); body != nil && ownsJoin(body) {
				// A named worker (go claim(...)) cannot show its defer
				// wg.Done() at the launch site; the launcher owning both
				// ends of the join is the visible evidence instead.
				return true
			}
			report(g.Pos(), "bare go statement outside the worker-pool pattern; goroutine lifetime "+
				"is unbounded — defer wg.Done() inside it, make it own wg.Wait(), launch it from "+
				"a function that calls wg.Add and wg.Wait, or justify "+
				"with //lint:ignore bare-go <reason>")
			return true
		})
	}
}

// enclosingFuncBody returns the innermost function body containing pos.
func enclosingFuncBody(f *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch d := n.(type) {
		case *ast.FuncDecl:
			body = d.Body
		case *ast.FuncLit:
			body = d.Body
		default:
			return true
		}
		if body != nil && body.Pos() <= pos && pos < body.End() {
			best = body
		}
		return true
	})
	return best
}

// ownsJoin reports whether the launcher body both registers workers
// (calls .Add) and joins them (calls .Wait) — the launcher-owns-the-join
// pool shape internal/parallel uses for its named worker launches.
func ownsJoin(body *ast.BlockStmt) bool {
	return containsCallNamed(body, "Add") && containsCallNamed(body, "Wait")
}

// joinsPool reports whether the goroutine body participates in a joined
// pool: it defers a .Done() (worker) or calls .Wait() (pool owner /
// dispatcher that drains the workers before exiting).
func joinsPool(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if selCallNamed(x.Call, "Done") {
				found = true
				return false
			}
			// A deferred closure may hold the teardown sequence.
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok && containsCallNamed(lit.Body, "Wait") {
				found = true
				return false
			}
		case *ast.CallExpr:
			if selCallNamed(x, "Wait") {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

func selCallNamed(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name
}

func containsCallNamed(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && selCallNamed(call, name) {
			found = true
		}
		return !found
	})
	return found
}
