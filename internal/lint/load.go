package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed, and (when possible) type-checked package
// directory, the unit the analyzers operate on.
type Package struct {
	// Path is the import path (derived from the module path and the
	// directory, so packages under testdata get a path too).
	Path string
	// Dir is the absolute directory.
	Dir string
	// Files are the build-constrained non-test files, parsed with
	// comments.
	Files []*ast.File
	// TestFiles are the package's _test.go files. They are parsed but not
	// type-checked; analyzers that inspect them fall back to syntactic
	// resolution.
	TestFiles []*ast.File
	// Types and Info carry the type-checker results for Files. Types is
	// nil for test-only packages.
	Types *types.Package
	Info  *types.Info
	// TypeErrors are non-fatal type-checking problems (the analyzers
	// still run on whatever was resolved).
	TypeErrors []error
}

// Loader loads module packages with the standard library toolchain only:
// go/parser for syntax, go/types for semantics, and one `go list -export`
// invocation to locate compiled export data for dependencies (the stdlib
// replacement for golang.org/x/tools/go/packages).
type Loader struct {
	// ModuleRoot is the directory holding go.mod; ModulePath its module
	// declaration.
	ModuleRoot string
	ModulePath string

	Fset *token.FileSet

	exports map[string]string // import path -> export data file
	gc      types.Importer    // shared so all packages see one type identity per path
}

// NewLoader locates the enclosing module starting from dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module declaration in %s/go.mod", root)
	}
	l := &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		Fset:       token.NewFileSet(),
		exports:    map[string]string{},
	}
	// One importer for the loader's lifetime: the gc importer caches the
	// packages it reads, so every analyzed package resolves a given import
	// path to the same *types.Package and cross-package type identities
	// hold.
	l.gc = importer.ForCompiler(l.Fset, "gc", func(p string) (io.ReadCloser, error) {
		f, ok := l.exports[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(f)
	})
	return l, nil
}

// Load expands the given package patterns ("./...", "dir/...", plain
// directories) relative to the loader's module root, parses every matched
// package, and type-checks the non-test files.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	importSet := map[string]bool{}
	for _, dir := range dirs {
		p, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue
		}
		for _, f := range append(append([]*ast.File{}, p.Files...), p.TestFiles...) {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil || path == "unsafe" || path == "C" {
					continue
				}
				importSet[path] = true
			}
		}
		pkgs = append(pkgs, p)
	}
	if err := l.ensureExports(importSet); err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		l.typeCheck(p)
	}
	return pkgs, nil
}

// expand turns patterns into package directories. The `...` wildcard walks
// subdirectories, skipping hidden directories and — unless the pattern
// itself points inside one — testdata trees, matching the go tool's
// behaviour.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(l.ModuleRoot, root)
		}
		root = filepath.Clean(root)
		fi, err := os.Stat(root)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", pat, err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("lint: %s is not a directory", pat)
		}
		if !recursive {
			add(root)
			continue
		}
		inTestdata := strings.Contains(root+string(filepath.Separator), string(filepath.Separator)+"testdata"+string(filepath.Separator))
		err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if !inTestdata && name == "testdata" {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses the buildable Go files of one directory. It returns nil
// when the directory holds no Go package.
func (l *Loader) parseDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	p := &Package{Dir: dir, Path: l.importPath(dir)}
	pkgName := ""
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if ok, err := ctxt.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if strings.HasSuffix(name, "_test.go") {
			p.TestFiles = append(p.TestFiles, f)
			continue
		}
		// A directory holds one non-test package; ignore stray files of
		// another package (e.g. tooling artifacts) rather than failing.
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name == pkgName {
			p.Files = append(p.Files, f)
		}
	}
	if len(p.Files) == 0 && len(p.TestFiles) == 0 {
		return nil, nil
	}
	return p, nil
}

// importPath derives the import path of a directory under the module root.
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Export     string
}

// ensureExports runs `go list -export` once for every import path the
// parsed sources mention that is not yet resolved, building the
// path -> export-data map the type-checker imports through.
func (l *Loader) ensureExports(imports map[string]bool) error {
	var missing []string
	for path := range imports {
		if _, ok := l.exports[path]; !ok {
			missing = append(missing, path)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export"}, missing...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleRoot
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("lint: go list -export: %v\n%s", err, errb.String())
	}
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

// Import implements types.Importer over the export-data map.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return l.gc.Import(path)
}

// typeCheck resolves types for the package's non-test files. Errors are
// recorded, not fatal: analyzers still run over the syntax, with type
// information for whatever did resolve.
func (l *Loader) typeCheck(p *Package) {
	if len(p.Files) == 0 {
		return
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	pkg, _ := conf.Check(p.Path, l.Fset, p.Files, info)
	p.Types = pkg
	p.Info = info
}
