package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerHotpathAlloc keeps declared probe hot paths off the allocator.
// A function opts in by carrying a `//hobbit:hotpath` directive in its doc
// comment (the probe primitives in internal/netsim and the MCL expansion
// kernels in internal/mcl do); inside such a function, constructing an
// FNV hasher (fnv.New* escapes to the heap through the hash.Hash
// interface), converting a string to []byte (a copying allocation), or
// building a map with make (a guaranteed heap allocation whose buckets
// regrow on every call) is reported. All three showed up as per-call
// allocations in profiles — the hasher and byte forms in the original
// rttProfile, the per-column map in the pre-CSR MCL expansion — and are
// the exact regressions the zero-alloc contract, asserted by
// testing.AllocsPerRun, would otherwise only catch at test time.
// Build-time helpers stay unannotated and may allocate freely; a
// deliberate exception inside a hot path uses
// //lint:ignore hotpath-alloc <reason>.
var AnalyzerHotpathAlloc = &Analyzer{
	Name: "hotpath-alloc",
	Doc: "forbid fnv.New* constructors, []byte(string) conversions, and " +
		"make(map) inside functions marked //hobbit:hotpath; precompute " +
		"hashes and byte forms at build time and replace per-call maps " +
		"with reused slices so the hot path stays allocation-free",
	Run: runHotpathAlloc,
}

// hotpathDirective is the doc-comment marker declaring a function part of
// the probe hot path.
const hotpathDirective = "//hobbit:hotpath"

func runHotpathAlloc(p *Pass) {
	report := p.Reportf
	// Hot paths are product code; test files cannot opt in.
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pkg, fn := p.PkgFuncCall(f, call); pkg == "hash/fnv" && strings.HasPrefix(fn, "New") {
					report(call.Pos(), "fnv.%s allocates a hasher inside hot-path %s; precompute the hash at World build time", fn, name)
					return true
				}
				if isStringToBytes(p, call) {
					report(call.Pos(), "[]byte(string) conversion allocates inside hot-path %s; precompute the byte form at World build time", name)
				}
				if isMakeMap(p, call) {
					report(call.Pos(), "make(map) allocates inside hot-path %s; index into a reused slice or hoist the map into persistent scratch state", name)
				}
				return true
			})
		}
	}
}

// isHotpath reports whether the function's doc comment carries the
// hobbit:hotpath directive.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

// isMakeMap reports whether the call is the make builtin producing a
// map type. Shadowed user-defined make functions resolve to a non-builtin
// object and are left alone, as are make([]T, n) and make(chan T) —
// slices back reusable buffers and channels never sit on a per-probe
// path, so only the map form is a categorical hot-path mistake.
func isMakeMap(p *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, ok := p.ObjectOf(id).(*types.Builtin); !ok {
		return false
	}
	t := p.TypeOf(call)
	if t == nil {
		return false
	}
	_, ok = t.Underlying().(*types.Map)
	return ok
}

// isStringToBytes reports whether the call is a []byte(s) conversion from
// a string-typed operand. Without type information the argument's kind is
// unknown and nothing is reported.
func isStringToBytes(p *Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	at, ok := ast.Unparen(call.Fun).(*ast.ArrayType)
	if !ok || at.Len != nil {
		return false
	}
	if elt, ok := at.Elt.(*ast.Ident); !ok || elt.Name != "byte" {
		return false
	}
	t := p.TypeOf(call.Args[0])
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
