package lint

import (
	"fmt"
	"go/format"
	"go/token"
	"os"
	"sort"
)

// ApplyFixes applies every suggested fix carried by diags to the source
// files and returns the new, gofmt-formatted content per file path.
// Overlapping edits within one file are resolved first-wins (later,
// conflicting fixes are dropped — rerunning the linter offers them
// again on clean positions). Files are not written; the caller decides
// (cmd/hobbitlint -fix writes, tests compare).
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) (map[string][]byte, error) {
	type edit struct {
		off, end int
		newText  string
	}
	byFile := map[string][]edit{}
	for _, d := range diags {
		for _, fix := range d.Fixes {
			for _, e := range fix.Edits {
				if !e.Pos.IsValid() || !e.End.IsValid() || e.End < e.Pos {
					return nil, fmt.Errorf("lint: invalid edit range in fix %q", fix.Message)
				}
				pos := fset.Position(e.Pos)
				end := fset.Position(e.End)
				if pos.Filename != end.Filename {
					return nil, fmt.Errorf("lint: fix %q spans files", fix.Message)
				}
				byFile[pos.Filename] = append(byFile[pos.Filename], edit{off: pos.Offset, end: end.Offset, newText: e.NewText})
			}
		}
	}
	out := map[string][]byte{}
	for file, edits := range byFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].off != edits[j].off {
				return edits[i].off < edits[j].off
			}
			return edits[i].end < edits[j].end
		})
		var buf []byte
		last := 0
		for _, e := range edits {
			if e.off < last {
				continue // overlaps an already-applied edit: first wins
			}
			if e.end > len(src) {
				return nil, fmt.Errorf("lint: edit past end of %s", file)
			}
			buf = append(buf, src[last:e.off]...)
			buf = append(buf, e.newText...)
			last = e.end
		}
		buf = append(buf, src[last:]...)
		formatted, err := format.Source(buf)
		if err != nil {
			// A fix must never produce unparsable code; surface it
			// loudly rather than writing a broken file.
			return nil, fmt.Errorf("lint: fixes for %s produce invalid Go: %v", file, err)
		}
		out[file] = formatted
	}
	return out, nil
}

// FixableCount reports how many diagnostics carry at least one fix.
func FixableCount(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if len(d.Fixes) > 0 {
			n++
		}
	}
	return n
}
