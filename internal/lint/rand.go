package lint

import (
	"go/ast"
)

// globalRandFuncs are the math/rand (and v2) package-level functions that
// draw from shared global state: call order across goroutines decides the
// values, so concurrency scheduling leaks into results.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32N": true, "Int64N": true,
	"UintN": true, "Uint32N": true, "Uint64N": true,
}

// AnalyzerNondetermRand forbids math/rand global state and wall-clock
// seeding. The simulator's randomness must be a pure function of the run
// seed (internal/rng keys every draw), so the same seed replays the same
// world regardless of goroutine scheduling; math/rand's package-level
// functions and time-seeded sources both break that.
var AnalyzerNondetermRand = &Analyzer{
	Name: "nondeterm-rand",
	Doc: "forbid math/rand package-level functions everywhere and " +
		"time-seeded rand sources; deterministic paths draw through " +
		"internal/rng or a constant-seeded local *rand.Rand",
	Run: runNondetermRand,
}

func runNondetermRand(p *Pass) {
	report := p.Reportf
	// internal/rng is the sanctioned randomness layer and internal/netsim
	// constructs its worlds from a locally seeded generator; both stay
	// subject to the time-seeding check but may touch math/rand freely.
	allowGlobal := p.Path == p.ModulePath+"/internal/rng" ||
		p.Path == p.ModulePath+"/internal/netsim"
	for _, f := range append(append([]*ast.File{}, p.Files...), p.TestFiles...) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, fn := p.PkgFuncCall(f, call)
			if pkg != "math/rand" && pkg != "math/rand/v2" {
				return true
			}
			if globalRandFuncs[fn] && !allowGlobal {
				report(call.Pos(), "rand.%s draws from math/rand's shared global state; "+
					"use internal/rng keyed draws or a locally seeded *rand.Rand", fn)
				return true
			}
			if (fn == "New" || fn == "NewSource" || fn == "NewPCG" || fn == "NewChaCha8") && wallClockSeeded(p, f, call) {
				report(call.Pos(), "rand.%s seeded from the wall clock is unreproducible; "+
					"derive the seed from the run configuration", fn)
			}
			return true
		})
	}
}

// wallClockSeeded reports whether any argument of the call reads the wall
// clock (time.Now and friends) to build the seed.
func wallClockSeeded(p *Pass, f *ast.File, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, fn := p.PkgFuncCall(f, inner); pkg == "time" && (fn == "Now" || fn == "Since" || fn == "Until") {
				found = true
				return false
			}
			return true
		})
	}
	return found
}
