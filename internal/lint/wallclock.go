package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// AnalyzerWallclock forbids wall-clock reads outside the places that
// legitimately measure elapsed real time. Snapshots of a same-seed run
// must be byte-identical (telemetry.MarshalCounters is a regression
// check), so algorithm paths must never branch on or record time.Now.
//
// Allowlisted:
//   - internal/telemetry: the one place wall-clock state lives (spans),
//     kept out of deterministic snapshots by design;
//   - cmd/*: operator-facing binaries may report elapsed time;
//   - internal/probe/icmp_linux.go: the raw-socket backend computes real
//     socket deadlines against the live network — there is no replayable
//     run to protect there (see the file's header comment).
var AnalyzerWallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Since/time.Until outside internal/telemetry, " +
		"cmd/*, and the raw-socket probe backend; wall-clock reads in " +
		"algorithm paths break replayable snapshots",
	Run: runWallclock,
}

// wallclockAllowedFiles are individual files (module-relative, slash
// separated) excepted from the check.
var wallclockAllowedFiles = map[string]bool{
	// The live ICMP backend derives kernel socket deadlines from the real
	// clock; it probes the actual Internet, where replayability is
	// impossible by construction, and it stays off every simulated path.
	"internal/probe/icmp_linux.go": true,
}

func runWallclock(p *Pass) {
	report := p.Reportf
	if p.Path == p.ModulePath+"/internal/telemetry" ||
		strings.HasPrefix(p.Path, p.ModulePath+"/cmd/") {
		return
	}
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if rel := moduleRelative(p, name); wallclockAllowedFiles[rel] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, fn := p.PkgFuncCall(f, call); pkg == "time" && (fn == "Now" || fn == "Since" || fn == "Until") {
				report(call.Pos(), "time.%s in an algorithm path breaks same-seed replayability; "+
					"time through telemetry spans or accept a clock from the caller", fn)
			}
			return true
		})
	}
}

// moduleRelative renders a file position path relative to the module root
// guess embedded in the package path, tolerating both absolute and
// already-relative positions.
func moduleRelative(p *Pass, filename string) string {
	filename = filepath.ToSlash(filename)
	// The package path tail identifies the directory; join with the base
	// name so per-file allowlists are stable however the loader was
	// invoked.
	if rel, ok := strings.CutPrefix(p.Path, p.ModulePath+"/"); ok {
		return rel + "/" + filepath.Base(filename)
	}
	return filepath.Base(filename)
}
