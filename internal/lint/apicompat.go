package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
)

// AnalyzerAPICompat freezes the versioned wire format. A package that
// declares exported V<n> structs (internal/api's RunSummaryV1 family)
// checks in a compat.lock file describing their exact exported shape —
// field names, JSON tags, and types, with module-local struct fields
// (core.Options, telemetry.Snapshot) expanded transitively, since their
// fields are wire format too. The analyzer re-renders the shape on every
// run and diffs it against the lock: a deleted field, a retyped field,
// or an edited JSON tag is a wire break and fails tier-1 — complementing
// the golden files, which only pin bytes for the values a test happens
// to produce. Deliberate, additive v1 extensions (new omitempty fields,
// per DESIGN.md §4g) regenerate the lock with
// `go run ./cmd/hobbitlint -write-compat <pkg>`, so the diff shows up in
// review next to the code change.
var AnalyzerAPICompat = &Analyzer{
	Name: "api-compat",
	Doc: "diff the exported shape of a package's versioned (V<n>) wire " +
		"structs — field names, JSON tags, types, module structs expanded " +
		"— against its checked-in compat.lock; any drift is a wire-format " +
		"break until the lock is deliberately regenerated with " +
		"hobbitlint -write-compat",
	Run: runAPICompat,
}

// CompatLockFile is the per-package freeze file the analyzer diffs
// against.
const CompatLockFile = "compat.lock"

// versionedTypeRE matches wire-struct names: an exported name with a
// version suffix.
var versionedTypeRE = regexp.MustCompile(`V[0-9]+$`)

func runAPICompat(p *Pass) {
	shape := compatShape(p)
	lockPath := filepath.Join(p.Dir, CompatLockFile)
	data, err := os.ReadFile(lockPath)
	if err != nil {
		if len(shape.order) > 0 {
			p.Reportf(shape.pos[shape.order[0]], "package declares versioned wire structs (%s) but has no %s; "+
				"freeze the shape with `go run ./cmd/hobbitlint -write-compat %s`",
				strings.Join(shape.order, ", "), CompatLockFile, p.Path)
		}
		return
	}
	want := parseCompatLock(string(data))
	regen := fmt.Sprintf("if the change is a deliberate additive v1 extension, regenerate with "+
		"`go run ./cmd/hobbitlint -write-compat %s`", p.Path)
	for _, name := range shape.order {
		got := shape.blocks[name]
		frozen, ok := want.blocks[name]
		if !ok {
			p.Reportf(shape.pos[name], "wire struct %s is not frozen in %s; %s", name, CompatLockFile, regen)
			continue
		}
		if diff := firstShapeDiff(frozen, got); diff != "" {
			p.Reportf(shape.pos[name], "wire shape of %s drifted from %s (%s); this breaks the frozen v1 format — %s",
				name, CompatLockFile, diff, regen)
		}
	}
	for _, name := range want.order {
		if _, ok := shape.blocks[name]; !ok {
			p.Reportf(p.packagePos(), "wire struct %s is frozen in %s but no longer declared; "+
				"deleting a v1 type breaks clients — %s", name, CompatLockFile, regen)
		}
	}
}

// packagePos returns a stable position for package-level findings: the
// package clause of the first file.
func (p *Pass) packagePos() token.Pos {
	if len(p.Files) > 0 {
		return p.Files[0].Name.Pos()
	}
	return token.NoPos
}

// firstShapeDiff returns a human description of the first line where the
// frozen and current shapes disagree, or "".
func firstShapeDiff(frozen, got []string) string {
	for i := 0; i < len(frozen) || i < len(got); i++ {
		switch {
		case i >= len(frozen):
			return fmt.Sprintf("new line %q", strings.TrimSpace(got[i]))
		case i >= len(got):
			return fmt.Sprintf("missing line %q", strings.TrimSpace(frozen[i]))
		case frozen[i] != got[i]:
			return fmt.Sprintf("frozen %q, now %q", strings.TrimSpace(frozen[i]), strings.TrimSpace(got[i]))
		}
	}
	return ""
}

// compatBlocks is a rendered or parsed shape: one block of indented
// field lines per versioned type.
type compatBlocks struct {
	order  []string
	blocks map[string][]string
	pos    map[string]token.Pos
}

// compatShape renders the package's current wire shape.
func compatShape(p *Pass) compatBlocks {
	out := compatBlocks{blocks: map[string][]string{}, pos: map[string]token.Pos{}}
	if p.Pkg == nil {
		return out
	}
	scope := p.Pkg.Scope()
	locked := map[string]bool{}
	var names []string
	for _, name := range scope.Names() {
		obj, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !obj.Exported() || !versionedTypeRE.MatchString(name) {
			continue
		}
		if _, ok := obj.Type().Underlying().(*types.Struct); !ok {
			continue
		}
		locked[name] = true
		names = append(names, name)
	}
	sort.Strings(names)
	typePos := typeSpecPositions(p)
	for _, name := range names {
		obj := scope.Lookup(name)
		st := obj.Type().Underlying().(*types.Struct)
		var lines []string
		renderStruct(p, st, 1, map[*types.Named]bool{}, locked, &lines)
		out.order = append(out.order, name)
		out.blocks[name] = lines
		if pos, ok := typePos[name]; ok {
			out.pos[name] = pos
		} else {
			out.pos[name] = p.packagePos()
		}
	}
	return out
}

// typeSpecPositions maps declared type names to their AST positions.
func typeSpecPositions(p *Pass) map[string]token.Pos {
	out := map[string]token.Pos{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok {
					out[ts.Name.Name] = ts.Name.Pos()
				}
			}
		}
	}
	return out
}

// renderStruct appends one indented line per exported field. Fields
// whose type is (or contains, behind pointers/slices/maps) a struct
// defined in this module are expanded recursively: their fields are wire
// format too, and a drift there must trip the gate even though the edit
// happened in another package. Types locked at top level in this package
// are referenced by name, not re-expanded.
func renderStruct(p *Pass, st *types.Struct, depth int, seen map[*types.Named]bool, locked map[string]bool, out *[]string) {
	indent := strings.Repeat("  ", depth)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		line := indent + f.Name() + " " + typeLabelRel(p, f.Type())
		if jsonTag := reflect.StructTag(st.Tag(i)).Get("json"); jsonTag != "" {
			line += " `json:\"" + jsonTag + "\"`"
		}
		if inner := expandable(p, f.Type(), seen, locked); inner != nil {
			line += ":"
			*out = append(*out, line)
			named := inner
			seen[named] = true
			renderStruct(p, named.Underlying().(*types.Struct), depth+1, seen, locked, out)
			delete(seen, named)
			continue
		}
		*out = append(*out, line)
	}
}

// expandable unwraps pointers, slices, and map values looking for a
// module-defined named struct worth inlining.
func expandable(p *Pass, t types.Type, seen map[*types.Named]bool, locked map[string]bool) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Slice:
			t = x.Elem()
		case *types.Map:
			t = x.Elem()
		case *types.Named:
			obj := x.Obj()
			if obj == nil || obj.Pkg() == nil {
				return nil
			}
			if !strings.HasPrefix(obj.Pkg().Path(), p.ModulePath) {
				return nil
			}
			if obj.Pkg() == p.Pkg && locked[obj.Name()] {
				return nil // has its own top-level block
			}
			if seen[x] {
				return nil
			}
			if _, ok := x.Underlying().(*types.Struct); !ok {
				return nil
			}
			return x
		default:
			return nil
		}
	}
}

// typeLabelRel renders a type with package-name qualifiers (core.Options,
// not the full import path) and none for the package under analysis.
func typeLabelRel(p *Pass, t types.Type) string {
	return types.TypeString(t, func(other *types.Package) string {
		if other == p.Pkg {
			return ""
		}
		return other.Name()
	})
}

// parseCompatLock splits a lock file into per-type blocks. Lines
// starting with '#' and blank lines are commentary.
func parseCompatLock(data string) compatBlocks {
	out := compatBlocks{blocks: map[string][]string{}}
	current := ""
	for _, line := range strings.Split(data, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#") || strings.TrimSpace(line) == "" {
			continue
		}
		if !strings.HasPrefix(line, " ") {
			current = strings.TrimSuffix(strings.TrimSpace(line), ":")
			out.order = append(out.order, current)
			continue
		}
		if current != "" {
			out.blocks[current] = append(out.blocks[current], strings.TrimRight(line, " \t"))
		}
	}
	return out
}

// CompatLock renders the package's current wire shape as the full
// compat.lock file content, or "" when the package declares no versioned
// structs. cmd/hobbitlint -write-compat writes it.
func CompatLock(p *Pass) string {
	shape := compatShape(p)
	if len(shape.order) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("# hobbitlint api-compat lock: the frozen wire shape of this package's\n")
	b.WriteString("# exported V<n> structs (field names, JSON tags, types; module structs\n")
	b.WriteString("# expanded). Any drift fails the tier-1 gate. For a deliberate additive\n")
	b.WriteString("# v1 extension, regenerate with:\n")
	b.WriteString("#\n")
	b.WriteString(fmt.Sprintf("#   go run ./cmd/hobbitlint -write-compat %s\n", p.Path))
	b.WriteString("#\n")
	for _, name := range shape.order {
		b.WriteString(name + ":\n")
		for _, line := range shape.blocks[name] {
			b.WriteString(line + "\n")
		}
	}
	return b.String()
}

// PassFor builds a bare analysis pass over one loaded package, for
// tooling (like -write-compat) that needs package facts outside Run.
func (l *Loader) PassFor(pkg *Package) *Pass {
	return &Pass{
		Fset:       l.Fset,
		Path:       pkg.Path,
		Dir:        pkg.Dir,
		ModulePath: l.ModulePath,
		Files:      pkg.Files,
		TestFiles:  pkg.TestFiles,
		Pkg:        pkg.Types,
		Info:       pkg.Info,
	}
}
