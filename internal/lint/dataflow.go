package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the suite's lightweight intra-procedural dataflow layer:
// CFG-free def-use over the AST, resolved through go/types. It gives the
// concurrency analyzers what pure syntax cannot — object identity (the
// WaitGroup that is Add-ed must be the one that is Wait-ed), receiver
// types (a Lock on a sync.Mutex, not on anything named Lock), and callee
// signatures (which argument slot of a call is a context.Context).
// Statements are visited in source order; control flow is approximated
// linearly, which under-reports branchy code rather than inventing
// findings.

// funcInfo is one analyzed function: a declaration or a literal, with its
// innermost enclosing function (nil for declarations).
type funcInfo struct {
	node   ast.Node // *ast.FuncDecl or *ast.FuncLit
	body   *ast.BlockStmt
	parent *funcInfo
}

// methodUse is one resolved receiver-method call: wg.Done(),
// s.mu.Lock(), ... The receiver base is the types.Object of the deepest
// identifier or field in the receiver chain, giving a stable identity for
// both locals (wg) and fields (s.wg — the field object).
type methodUse struct {
	obj  types.Object
	name string
	call *ast.CallExpr
	fn   *funcInfo // innermost enclosing function
}

// dataFacts is the per-package def-use index, built once per pass and
// shared by every dataflow analyzer.
type dataFacts struct {
	funcs []*funcInfo
	// methodUses lists every resolved receiver-method call in p.Files, in
	// source order.
	methodUses []methodUse
	// usesByObj groups them by receiver identity.
	usesByObj map[types.Object][]methodUse
}

// Facts builds (or returns) the dataflow index for the pass.
func (p *Pass) Facts() *dataFacts {
	if p.facts != nil {
		return p.facts
	}
	df := &dataFacts{usesByObj: map[types.Object][]methodUse{}}
	for _, f := range p.Files {
		walkFuncs(f, nil, &df.funcs)
	}
	for _, fi := range df.funcs {
		collectMethodUses(p, fi, df)
	}
	p.facts = df
	return df
}

// walkFuncs collects every function declaration and literal under n with
// parent links, in source order.
func walkFuncs(n ast.Node, parent *funcInfo, out *[]*funcInfo) {
	switch x := n.(type) {
	case *ast.File:
		for _, d := range x.Decls {
			walkFuncs(d, parent, out)
		}
		return
	case *ast.FuncDecl:
		fi := &funcInfo{node: x, body: x.Body, parent: parent}
		*out = append(*out, fi)
		if x.Body != nil {
			walkChildren(x.Body, fi, out)
		}
		return
	case *ast.FuncLit:
		fi := &funcInfo{node: x, body: x.Body, parent: parent}
		*out = append(*out, fi)
		if x.Body != nil {
			walkChildren(x.Body, fi, out)
		}
		return
	}
	walkChildren(n, parent, out)
}

// walkChildren recurses into n's children looking for nested functions.
func walkChildren(n ast.Node, parent *funcInfo, out *[]*funcInfo) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || c == n {
			return true
		}
		switch x := c.(type) {
		case *ast.FuncLit:
			fi := &funcInfo{node: x, body: x.Body, parent: parent}
			*out = append(*out, fi)
			if x.Body != nil {
				walkChildren(x.Body, fi, out)
			}
			return false
		case *ast.FuncDecl: // cannot nest, but be safe
			walkFuncs(x, parent, out)
			return false
		}
		return true
	})
}

// collectMethodUses records every receiver-method call whose receiver
// base resolves, attributed to its innermost enclosing function.
func collectMethodUses(p *Pass, fi *funcInfo, df *dataFacts) {
	if fi.body == nil {
		return
	}
	ast.Inspect(fi.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != fi.node {
			return false // owned by the nested funcInfo
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := receiverBase(p, sel.X)
		if obj == nil {
			return true
		}
		use := methodUse{obj: obj, name: sel.Sel.Name, call: call, fn: fi}
		df.methodUses = append(df.methodUses, use)
		df.usesByObj[obj] = append(df.usesByObj[obj], use)
		return true
	})
}

// receiverBase resolves a receiver expression to a stable object
// identity: the variable for `wg`, the field object for `s.wg` (shared by
// every instance of the struct — close enough for package-level
// "somebody joins this" evidence), through parens, derefs, and
// addresses.
func receiverBase(p *Pass, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return p.ObjectOf(x)
	case *ast.SelectorExpr:
		return p.ObjectOf(x.Sel)
	case *ast.StarExpr:
		return receiverBase(p, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return receiverBase(p, x.X)
		}
	case *ast.IndexExpr:
		return receiverBase(p, x.X)
	}
	return nil
}

// enclosing returns the innermost funcInfo whose body contains pos.
func (df *dataFacts) enclosing(pos token.Pos) *funcInfo {
	var best *funcInfo
	for _, fi := range df.funcs {
		if fi.body != nil && fi.body.Pos() <= pos && pos < fi.body.End() {
			if best == nil || (fi.body.Pos() >= best.body.Pos() && fi.body.End() <= best.body.End()) {
				best = fi
			}
		}
	}
	return best
}

// usesIn returns fi's own method calls named name on obj (nested
// functions excluded — they have their own entries).
func (df *dataFacts) usesIn(fi *funcInfo, obj types.Object, name string) []methodUse {
	var out []methodUse
	for _, u := range df.usesByObj[obj] {
		if u.fn == fi && u.name == name {
			out = append(out, u)
		}
	}
	return out
}

// anyUse reports whether any function in the package calls name on obj.
func (df *dataFacts) anyUse(obj types.Object, name string) bool {
	for _, u := range df.usesByObj[obj] {
		if u.name == name {
			return true
		}
	}
	return false
}

// Type tests ----------------------------------------------------------

// isSyncType reports whether t (after pointer unwrap) is sync.<name>.
func isSyncType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

func isWaitGroup(t types.Type) bool { return isSyncType(t, "WaitGroup") }

func isMutexType(t types.Type) bool {
	return isSyncType(t, "Mutex") || isSyncType(t, "RWMutex")
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// calleeSignature resolves the called function's signature, or nil.
func calleeSignature(p *Pass, call *ast.CallExpr) *types.Signature {
	t := p.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	return sig
}

// walkLinear visits the statements of body in source order, recursing
// into nested blocks (if/else, for, switch, select cases) but not into
// function literals; fn sees every statement exactly once. This is the
// CFG-free spine the lock tracker rides: later statements are treated as
// sequentially after earlier ones, branches as straight-line code.
func walkLinear(body *ast.BlockStmt, fn func(ast.Stmt)) {
	if body == nil {
		return
	}
	for _, st := range body.List {
		walkLinearStmt(st, fn)
	}
}

func walkLinearStmt(st ast.Stmt, fn func(ast.Stmt)) {
	fn(st)
	switch x := st.(type) {
	case *ast.BlockStmt:
		walkLinear(x, fn)
	case *ast.IfStmt:
		walkLinear(x.Body, fn)
		if x.Else != nil {
			walkLinearStmt(x.Else, fn)
		}
	case *ast.ForStmt:
		walkLinear(x.Body, fn)
	case *ast.RangeStmt:
		walkLinear(x.Body, fn)
	case *ast.SwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					walkLinearStmt(s, fn)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					walkLinearStmt(s, fn)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				for _, s := range cc.Body {
					walkLinearStmt(s, fn)
				}
			}
		}
	case *ast.LabeledStmt:
		walkLinearStmt(x.Stmt, fn)
	}
}
