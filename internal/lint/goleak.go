package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerGoroutineLeak flags `go` statements whose goroutine neither
// reaches a join nor is cancellable. It generalizes the earlier
// syntactic bare-go rule with def-use facts: the WaitGroup a goroutine
// defers Done() on must actually be Wait-ed somewhere in the package
// (same object, not just any call named Wait), a launcher sanctioning a
// named worker must Add and Wait on the same WaitGroup, and a launch
// that threads a context.Context into the goroutine is accepted as
// ctx-cancellable (ctx-loop and ctx-propagation police the body). A
// goroutine outside every pattern has unbounded lifetime — it can
// outlive the pipeline run, keep writing telemetry after a snapshot, or
// leak under test — so it must adopt one or carry an explicit
// //lint:ignore goroutine-leak justification.
var AnalyzerGoroutineLeak = &Analyzer{
	Name: "goroutine-leak",
	Doc: "flag go statements whose goroutine is neither joined (defer " +
		"wg.Done() on a WaitGroup some function Waits on, the goroutine " +
		"owns wg.Wait(), or the launcher Adds and Waits on the same " +
		"WaitGroup) nor ctx-cancellable (a context.Context flows into the " +
		"launch); unjoined, uncancellable goroutines have unbounded lifetime",
	Run: runGoroutineLeak,
}

func runGoroutineLeak(p *Pass) {
	df := p.Facts()
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if why := goLeakVerdict(p, df, g); why != "" {
				p.Reportf(g.Pos(), "goroutine is neither joined nor ctx-cancellable (%s); "+
					"defer wg.Done() on a Waited WaitGroup, own wg.Wait(), launch from a "+
					"function that Adds and Waits on the same WaitGroup, thread a "+
					"context.Context into it, or justify with //lint:ignore goroutine-leak <reason>", why)
			}
			return true
		})
	}
}

// goLeakVerdict returns "" when the launch is sanctioned, else a short
// reason fragment for the report.
func goLeakVerdict(p *Pass, df *dataFacts, g *ast.GoStmt) string {
	// Ctx-cancellable launch: a context.Context value flows into the
	// goroutine as a call argument.
	for _, arg := range g.Call.Args {
		if isContextType(p.TypeOf(arg)) {
			return ""
		}
	}
	launcher := df.enclosing(g.Pos())

	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		var body *funcInfo
		for _, fi := range df.funcs {
			if fi.node == lit {
				body = fi
				break
			}
		}
		if body != nil {
			switch verdictForBody(p, df, body) {
			case sanctioned:
				return ""
			case doneNeverWaited:
				return "it defers Done() on a WaitGroup nothing in this package Waits on"
			}
		}
	}
	// Launcher-owns-the-join, refined: Add and Wait on the *same*
	// WaitGroup object in the launching function's own body.
	if launcher != nil && launcherJoins(p, df, launcher) {
		return ""
	}
	return "no join or context reaches it"
}

type bodyVerdict int

const (
	unsanctioned bodyVerdict = iota
	sanctioned
	doneNeverWaited
)

// verdictForBody inspects a goroutine literal's body (including its
// nested closures and defers) for join or cancellation evidence.
func verdictForBody(p *Pass, df *dataFacts, body *funcInfo) bodyVerdict {
	verdict := unsanctioned
	ast.Inspect(body.body, func(n ast.Node) bool {
		if verdict == sanctioned {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := receiverBase(p, sel.X)
			switch sel.Sel.Name {
			case "Done":
				if obj != nil && isWaitGroup(objType(obj)) {
					if df.anyUse(obj, "Wait") {
						verdict = sanctioned
					} else if verdict == unsanctioned {
						verdict = doneNeverWaited
					}
				} else if obj != nil && isContextType(objType(obj)) {
					// <-ctx.Done() style cancellation check.
					verdict = sanctioned
				} else if obj == nil && p.Info == nil {
					// No type info (shouldn't happen for p.Files): fall
					// back to the old syntactic acceptance.
					verdict = sanctioned
				}
			case "Err":
				if obj != nil && isContextType(objType(obj)) {
					verdict = sanctioned
				}
			case "Wait":
				if obj == nil || isWaitGroup(objType(obj)) {
					// The goroutine owns the pool shutdown (dispatcher
					// shape: defer func(){ close(in); wg.Wait(); ... }).
					verdict = sanctioned
				}
			}
		case *ast.Ident:
			// Any use of a captured context.Context (select on
			// ctx.Done(), passing ctx onward) marks the body cancellable.
			if obj := p.ObjectOf(x); obj != nil && isContextType(objType(obj)) {
				verdict = sanctioned
			}
		}
		return verdict != sanctioned
	})
	return verdict
}

// launcherJoins reports whether fi's own body calls Add and Wait on the
// same WaitGroup object — the parallel.Pool.ForEach shape that makes a
// named worker's lifetime visible at the launch site.
func launcherJoins(p *Pass, df *dataFacts, fi *funcInfo) bool {
	for _, u := range df.methodUses {
		if u.fn != fi || u.name != "Add" {
			continue
		}
		if !isWaitGroup(objType(u.obj)) && p.Info != nil {
			continue
		}
		if len(df.usesIn(fi, u.obj, "Wait")) > 0 {
			return true
		}
	}
	return false
}

// objType returns the object's type, or nil.
func objType(obj types.Object) types.Type {
	if obj == nil {
		return nil
	}
	return obj.Type()
}
