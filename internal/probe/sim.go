package probe

import (
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/netsim"
)

// SimNetwork adapts a netsim.World to the Network interface.
type SimNetwork struct {
	World *netsim.World
}

// NewSimNetwork wraps a simulated world as a probing surface.
func NewSimNetwork(w *netsim.World) *SimNetwork { return &SimNetwork{World: w} }

// Ping implements Network.
func (s *SimNetwork) Ping(dst iputil.Addr, seq int) (PingResult, bool) {
	r, ok := s.World.Ping(dst, seq)
	if !ok {
		return PingResult{}, false
	}
	return PingResult{RespTTL: r.RespTTL, RTT: r.RTT}, true
}

// Probe implements Network.
func (s *SimNetwork) Probe(dst iputil.Addr, ttl int, flowID uint16, salt uint32) Result {
	return convertReply(s.World.Probe(dst, ttl, flowID, salt))
}

func convertReply(r netsim.ProbeReply) Result {
	switch r.Kind {
	case netsim.TTLExceeded:
		return Result{Kind: TTLExceeded, From: r.From, RTT: r.RTT}
	case netsim.EchoReply:
		return Result{Kind: EchoReply, RTT: r.RTT}
	default:
		return Result{}
	}
}

// VantageNetwork adapts one vantage point of a simulated world to the
// Network interface, for multi-vantage measurement (Section 6.1).
type VantageNetwork struct {
	Vantage *netsim.Vantage
}

// NewVantageNetwork wraps a vantage as a probing surface.
func NewVantageNetwork(v *netsim.Vantage) *VantageNetwork {
	return &VantageNetwork{Vantage: v}
}

// Ping implements Network.
func (s *VantageNetwork) Ping(dst iputil.Addr, seq int) (PingResult, bool) {
	r, ok := s.Vantage.Ping(dst, seq)
	if !ok {
		return PingResult{}, false
	}
	return PingResult{RespTTL: r.RespTTL, RTT: r.RTT}, true
}

// Probe implements Network.
func (s *VantageNetwork) Probe(dst iputil.Addr, ttl int, flowID uint16, salt uint32) Result {
	return convertReply(s.Vantage.Probe(dst, ttl, flowID, salt))
}
