//go:build linux

// One raw ICMP socket carries every exchange, so the mutex must span the
// send/receive round trip: interleaved writers would cross-match replies.
// Serialized live I/O is the backend's documented contract.
//lint:file-ignore lock-discipline the single raw socket serializes send/receive exchanges by design

package probe

import (
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"sync"
	"syscall"
	"time"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

// ICMPNetwork is a raw-socket backend implementing Network against the
// live IPv4 Internet using only the standard library. It requires
// CAP_NET_RAW (or root) and is provided for operators reproducing the
// study against real targets; the laboratory pipeline uses SimNetwork.
//
// Flow identifiers are encoded in the ICMP checksum-affecting payload the
// way Paris traceroute keeps per-flow hashes stable: the ICMP identifier
// carries the flow ID so per-flow load balancers hash probes of one flow
// identically.
type ICMPNetwork struct {
	mu      sync.Mutex
	conn    net.PacketConn
	rawFD   int
	ident   uint16
	Timeout time.Duration
}

// NewICMPNetwork opens a raw ICMP socket. The caller must have
// CAP_NET_RAW.
func NewICMPNetwork() (*ICMPNetwork, error) {
	conn, err := net.ListenPacket("ip4:icmp", "0.0.0.0")
	if err != nil {
		return nil, fmt.Errorf("probe: opening raw ICMP socket: %w", err)
	}
	n := &ICMPNetwork{
		conn:    conn,
		rawFD:   -1,
		ident:   uint16(os.Getpid() & 0xffff),
		Timeout: 2 * time.Second,
	}
	if ipc, ok := conn.(*net.IPConn); ok {
		if sc, err := ipc.SyscallConn(); err == nil {
			sc.Control(func(fd uintptr) { n.rawFD = int(fd) })
		}
	}
	return n, nil
}

// Close releases the socket.
func (n *ICMPNetwork) Close() error { return n.conn.Close() }

func (n *ICMPNetwork) setTTL(ttl int) error {
	if n.rawFD < 0 {
		return fmt.Errorf("probe: raw fd unavailable for IP_TTL")
	}
	return syscall.SetsockoptInt(n.rawFD, syscall.IPPROTO_IP, syscall.IP_TTL, ttl)
}

// echoRequest builds an ICMP echo request whose identifier is the flow ID
// (kept constant per flow so per-flow hashes are stable) and whose
// sequence number carries the salt.
func echoRequest(ident, seq uint16) []byte {
	msg := make([]byte, 8+8)
	msg[0] = 8 // echo request
	binary.BigEndian.PutUint16(msg[4:], ident)
	binary.BigEndian.PutUint16(msg[6:], seq)
	copy(msg[8:], "hobbit!!")
	csum := icmpChecksum(msg)
	binary.BigEndian.PutUint16(msg[2:], csum)
	return msg
}

func icmpChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// parseReply interprets a received datagram, stripping the IPv4 header if
// the kernel delivered it, and classifies echo replies and TTL-exceeded
// messages. It returns the sender-visible TTL of the outer IP header when
// available.
func parseReply(buf []byte) (kind Kind, ipTTL int, ident, seq uint16, from iputil.Addr, ok bool) {
	// Strip an IPv4 header if present (raw sockets deliver it).
	if len(buf) >= 20 && buf[0]>>4 == 4 {
		ihl := int(buf[0]&0x0f) * 4
		if ihl >= 20 && len(buf) > ihl {
			ipTTL = int(buf[8])
			buf = buf[ihl:]
		}
	}
	if len(buf) < 8 {
		return 0, 0, 0, 0, 0, false
	}
	switch buf[0] {
	case 0: // echo reply
		return EchoReply, ipTTL, binary.BigEndian.Uint16(buf[4:]), binary.BigEndian.Uint16(buf[6:]), 0, true
	case 11: // time exceeded: payload holds the original IP header + 8 bytes
		inner := buf[8:]
		if len(inner) >= 20 && inner[0]>>4 == 4 {
			ihl := int(inner[0]&0x0f) * 4
			if len(inner) >= ihl+8 {
				orig := inner[ihl:]
				return TTLExceeded, ipTTL, binary.BigEndian.Uint16(orig[4:]), binary.BigEndian.Uint16(orig[6:]), 0, true
			}
		}
		return TTLExceeded, ipTTL, 0, 0, 0, true
	}
	return 0, 0, 0, 0, 0, false
}

// Ping implements Network against the live network.
func (n *ICMPNetwork) Ping(dst iputil.Addr, seq int) (PingResult, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.setTTL(64); err != nil {
		return PingResult{}, false
	}
	return n.exchangeEcho(dst, n.ident, uint16(seq))
}

func (n *ICMPNetwork) exchangeEcho(dst iputil.Addr, ident, seq uint16) (PingResult, bool) {
	o := dst.Octets()
	addr := &net.IPAddr{IP: net.IPv4(o[0], o[1], o[2], o[3])}
	start := time.Now()
	if _, err := n.conn.WriteTo(echoRequest(ident, seq), addr); err != nil {
		return PingResult{}, false
	}
	// One absolute deadline, set once: the kernel enforces it for every
	// read, and the loop condition uses monotonic elapsed time instead of
	// re-reading the wall clock per iteration.
	n.conn.SetReadDeadline(start.Add(n.Timeout))
	buf := make([]byte, 1500)
	for time.Since(start) < n.Timeout {
		nr, _, err := n.conn.ReadFrom(buf)
		if err != nil {
			return PingResult{}, false
		}
		kind, ipTTL, rid, rseq, _, ok := parseReply(buf[:nr])
		if !ok || kind != EchoReply || rid != ident || rseq != seq {
			continue
		}
		return PingResult{RespTTL: ipTTL, RTT: time.Since(start)}, true
	}
	return PingResult{}, false
}

// Probe implements Network against the live network.
func (n *ICMPNetwork) Probe(dst iputil.Addr, ttl int, flowID uint16, salt uint32) Result {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.setTTL(ttl); err != nil {
		return Result{}
	}
	o := dst.Octets()
	addr := &net.IPAddr{IP: net.IPv4(o[0], o[1], o[2], o[3])}
	seq := uint16(salt)
	start := time.Now()
	if _, err := n.conn.WriteTo(echoRequest(flowID, seq), addr); err != nil {
		return Result{}
	}
	// Same single-deadline pattern as exchangeEcho: kernel-enforced
	// absolute deadline, monotonic elapsed-time loop bound.
	n.conn.SetReadDeadline(start.Add(n.Timeout))
	buf := make([]byte, 1500)
	for time.Since(start) < n.Timeout {
		nr, peer, err := n.conn.ReadFrom(buf)
		if err != nil {
			return Result{}
		}
		kind, _, rid, rseq, _, ok := parseReply(buf[:nr])
		if !ok || rid != flowID || rseq != seq {
			continue
		}
		switch kind {
		case EchoReply:
			return Result{Kind: EchoReply, RTT: time.Since(start)}
		case TTLExceeded:
			var from iputil.Addr
			if ipa, isIP := peer.(*net.IPAddr); isIP {
				if v4 := ipa.IP.To4(); v4 != nil {
					from = iputil.Addr(uint32(v4[0])<<24 | uint32(v4[1])<<16 | uint32(v4[2])<<8 | uint32(v4[3]))
				}
			}
			return Result{Kind: TTLExceeded, From: from, RTT: time.Since(start)}
		}
	}
	return Result{}
}
