package probe

import (
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/trace"
)

// MDAOptions configures a multipath-detection run. The struct is part of
// the serializable request schema (core.Options embeds it into campaign
// submissions), so every field carries a stable snake_case JSON name.
type MDAOptions struct {
	// FirstTTL is the TTL of the first probed hop (1 = full traceroute).
	FirstTTL int `json:"first_ttl"`
	// MaxTTL bounds the probed path length.
	MaxTTL int `json:"max_ttl"`
	// Confidence is the per-hop enumeration confidence (default 0.95).
	Confidence float64 `json:"confidence"`
	// MaxFlows caps the number of distinct flow identifiers used per
	// hop, bounding the probing cost at wide load-balancers.
	MaxFlows int `json:"max_flows"`
	// Retries is how many extra probes to send when one goes
	// unanswered, before recording an unresponsive hop. Zero uses the
	// default (2); pass a negative value for single-shot probing.
	Retries int `json:"retries"`
	// Adaptive enables fault-adaptive escalation: once a probing window
	// looks faulted (degradedStreak consecutive windows lost even after
	// the normal retries), later windows get extra retransmissions,
	// paid from a capped budget. Disabled by default; runs with it off
	// behave bit-identically to runs before the option existed.
	Adaptive bool `json:"adaptive"`
	// AdaptiveBudget caps the total escalated retransmissions one MDA
	// run may spend after it turns degraded. Zero uses the default
	// (32); pass a negative value for no escalation headroom (windows
	// are still marked degraded, and exhaustion reports immediately).
	AdaptiveBudget int `json:"adaptive_budget"`
}

// Canonical maps every MDAOptions value onto one representative per
// behaviour class: zero fields become the explicit defaults withDefaults
// would apply, and the negative sentinels (Retries, AdaptiveBudget)
// collapse to -1. Two option values with equal Canonical() forms produce
// bit-identical measurements over the same surface, which is what lets a
// result cache key on the canonical form. Unlike withDefaults, Canonical
// is idempotent and preserves the sentinel/zero distinction.
func (o MDAOptions) Canonical() MDAOptions {
	if o.FirstTTL <= 0 {
		o.FirstTTL = 1
	}
	if o.MaxTTL <= 0 {
		o.MaxTTL = 32
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.95
	}
	if o.MaxFlows <= 0 {
		o.MaxFlows = 64
	}
	if o.Retries == 0 {
		o.Retries = 2
	} else if o.Retries < 0 {
		o.Retries = -1
	}
	switch {
	case !o.Adaptive:
		// The budget is consulted only by adaptive runs; folding it away
		// here widens cache hits without changing behaviour.
		o.AdaptiveBudget = 0
	case o.AdaptiveBudget == 0:
		o.AdaptiveBudget = 32
	case o.AdaptiveBudget < 0:
		o.AdaptiveBudget = -1
	}
	return o
}

// withDefaults fills zero fields with the paper's operating parameters.
func (o MDAOptions) withDefaults() MDAOptions {
	if o.FirstTTL <= 0 {
		o.FirstTTL = 1
	}
	if o.MaxTTL <= 0 {
		o.MaxTTL = 32
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.95
	}
	if o.MaxFlows <= 0 {
		o.MaxFlows = 64
	}
	if o.Retries == 0 {
		o.Retries = 2
	} else if o.Retries < 0 {
		o.Retries = 0
	}
	if o.AdaptiveBudget == 0 {
		o.AdaptiveBudget = 32
	} else if o.AdaptiveBudget < 0 {
		o.AdaptiveBudget = 0
	}
	return o
}

// degradedStreak is how many consecutive fully-lost probing windows mark
// an MDA run as degraded.
const degradedStreak = 3

// adaptiveEscalation is how many extra retransmissions a degraded run
// adds per window, budget permitting.
const adaptiveEscalation = 2

// MDAResult is the outcome of one Paris-traceroute MDA run toward a
// destination.
type MDAResult struct {
	// FirstTTL echoes the starting TTL of the run; paths cover hops
	// [FirstTTL, DestTTL-1].
	FirstTTL int
	// DestReached reports whether any probe elicited an echo reply.
	DestReached bool
	// DestTTL is the TTL at which the destination answered.
	DestTTL int
	// Paths enumerates the distinct per-flow load-balanced paths
	// discovered (hop sequences from FirstTTL up to the last-hop
	// router).
	Paths *trace.PathSet
	// Degraded reports that the run crossed the consecutive-loss
	// threshold and (with Adaptive set) escalated its retries.
	Degraded bool
	// BudgetExhausted reports that a degraded run wanted to escalate
	// but had spent its whole AdaptiveBudget; the remaining windows ran
	// with normal retries only, so the result deserves less confidence.
	BudgetExhausted bool
}

// ImmediateEcho reports whether the destination answered at the starting
// TTL itself, i.e. the run saw no router hop at all — the signature of an
// overestimated first_ttl.
func (r MDAResult) ImmediateEcho() bool {
	return r.DestReached && r.DestTTL == r.FirstTTL
}

// MDA runs the multipath detection algorithm toward dst: at each hop it
// varies the flow identifier and sends probes until the stopping rule for
// the number of interfaces seen is satisfied, then advances, building the
// set of per-flow paths. Per-destination load-balanced paths cannot be
// enumerated this way — they are what Hobbit infers across destinations.
func MDA(net Network, dst iputil.Addr, opts MDAOptions) MDAResult {
	opts = opts.withDefaults()
	res := MDAResult{FirstTTL: opts.FirstTTL}

	// hops[i][f] is the interface flow f observed at TTL FirstTTL+i.
	var hopRows [][]trace.Hop
	var salt uint32
	retryObs, _ := net.(ProbeRetryObserver)
	degObs, _ := net.(DegradedObserver)
	// failStreak counts consecutive windows lost even after every retry;
	// crossing degradedStreak turns the adaptive escalation on. budget is
	// the escalated-retransmission allowance left once degraded.
	failStreak := 0
	budget := opts.AdaptiveBudget
	probeOnce := func(ttl int, flow uint16) Result {
		maxAttempts := opts.Retries
		if opts.Adaptive && res.Degraded {
			extra := adaptiveEscalation
			if extra > budget {
				extra = budget
			}
			maxAttempts += extra
		}
		for attempt := 0; ; attempt++ {
			salt++
			if attempt > 0 && retryObs != nil {
				retryObs.RecordProbeRetry()
			}
			if attempt > opts.Retries {
				// An escalated retransmission, paid from the budget.
				budget--
				if degObs != nil {
					degObs.RecordDegradedRetry()
				}
			}
			r := net.Probe(dst, ttl, flow, salt)
			if r.Kind != NoReply {
				failStreak = 0
				return r
			}
			if attempt < maxAttempts {
				continue
			}
			failStreak++
			if opts.Adaptive {
				if !res.Degraded && failStreak >= degradedStreak {
					res.Degraded = true
					if degObs != nil {
						degObs.RecordDegradedWindow()
					}
				}
				if res.Degraded && budget == 0 && !res.BudgetExhausted {
					res.BudgetExhausted = true
					if degObs != nil {
						degObs.RecordDegradedExhausted()
					}
				}
			}
			return r
		}
	}

	// seen collects the distinct interfaces observed at the current TTL;
	// a reused slice with a linear scan beats a per-TTL map at the small
	// fan-outs real load balancers have, and keeps the driver off the
	// allocator.
	var seenBuf [16]iputil.Addr
	maxFlowsUsed := 0
	for ttl := opts.FirstTTL; ttl <= opts.MaxTTL; ttl++ {
		row := make([]trace.Hop, 0, 8)
		seen := seenBuf[:0]
		echo := false
		for probed := 0; ; probed++ {
			need := StoppingPoint(len(seen), opts.Confidence)
			if probed >= need || probed >= opts.MaxFlows {
				break
			}
			r := probeOnce(ttl, uint16(probed))
			switch r.Kind {
			case EchoReply:
				echo = true
			case TTLExceeded:
				row = append(row, trace.R(r.From))
				if !containsAddr(seen, r.From) {
					seen = append(seen, r.From)
				}
			default:
				row = append(row, trace.Star)
			}
			if echo {
				break
			}
		}
		if echo {
			res.DestReached = true
			res.DestTTL = ttl
			break
		}
		if len(row) > maxFlowsUsed {
			maxFlowsUsed = len(row)
		}
		hopRows = append(hopRows, row)
	}

	// Assemble per-flow paths over the hops before the destination. A
	// flow that was not probed at some hop (the stopping rule was met
	// with fewer probes there) is filled in so every enumerated path is
	// complete.
	res.Paths = trace.NewPathSet()
	if len(hopRows) == 0 {
		return res
	}
	// One scratch path is refilled per flow; PathSet.Add clones only the
	// paths it actually keeps, so duplicate flows cost no allocation.
	scratch := make(trace.Path, len(hopRows))
	for f := 0; f < maxFlowsUsed; f++ {
		for i, row := range hopRows {
			if f < len(row) {
				scratch[i] = row[f]
				continue
			}
			r := probeOnce(opts.FirstTTL+i, uint16(f))
			switch r.Kind {
			case TTLExceeded:
				scratch[i] = trace.R(r.From)
			default:
				scratch[i] = trace.Star
			}
		}
		res.Paths.Add(scratch)
	}
	return res
}

// containsAddr reports whether a holds x; the MDA hot loop uses it instead
// of a map because per-hop interface counts are small.
func containsAddr(a []iputil.Addr, x iputil.Addr) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}
