//go:build linux

package probe

import (
	"testing"
)

// TestNewICMPNetwork exercises socket setup without probing anyone: with
// CAP_NET_RAW the socket opens and TTL manipulation works; without it the
// constructor fails cleanly.
func TestNewICMPNetwork(t *testing.T) {
	n, err := NewICMPNetwork()
	if err != nil {
		t.Skipf("raw sockets unavailable (no CAP_NET_RAW): %v", err)
	}
	defer n.Close()
	if n.rawFD < 0 {
		t.Error("raw fd not captured")
	}
	for _, ttl := range []int{1, 64, 255} {
		if err := n.setTTL(ttl); err != nil {
			t.Errorf("setTTL(%d): %v", ttl, err)
		}
	}
}

func TestEchoRequestWellFormed(t *testing.T) {
	msg := echoRequest(0xbeef, 42)
	if len(msg) != 16 {
		t.Fatalf("message length = %d", len(msg))
	}
	if msg[0] != 8 || msg[1] != 0 {
		t.Error("not an echo request")
	}
	if icmpChecksum(msg) != 0 {
		t.Error("checksum does not verify")
	}
}

func TestParseReplyTimeExceeded(t *testing.T) {
	// A time-exceeded message quoting the original echo request.
	orig := echoRequest(0x1234, 9)
	inner := append([]byte{
		0x45, 0, 0, 28, 0, 0, 0, 0, 1, 1, 0, 0, // quoted IPv4 header
		10, 0, 0, 1, 192, 0, 2, 1,
	}, orig[:8]...)
	te := append([]byte{11, 0, 0, 0, 0, 0, 0, 0}, inner...)
	outer := append([]byte{
		0x45, 0, 0, 60, 0, 0, 0, 0, 61, 1, 0, 0, // outer IPv4 header, TTL 61
		203, 0, 113, 1, 10, 0, 0, 1,
	}, te...)
	kind, ipTTL, ident, seq, _, ok := parseReply(outer)
	if !ok || kind != TTLExceeded {
		t.Fatalf("parse = kind %v ok %v", kind, ok)
	}
	if ipTTL != 61 {
		t.Errorf("outer TTL = %d", ipTTL)
	}
	if ident != 0x1234 || seq != 9 {
		t.Errorf("quoted probe = %x/%d", ident, seq)
	}
	// A truncated time-exceeded still classifies without the quote.
	kind, _, ident, _, _, ok = parseReply(append([]byte{11, 0, 0, 0, 0, 0, 0, 0}, 0x45))
	if !ok || kind != TTLExceeded || ident != 0 {
		t.Errorf("truncated TE = kind %v ident %x ok %v", kind, ident, ok)
	}
	// Unknown ICMP types do not parse.
	if _, _, _, _, _, ok := parseReply([]byte{13, 0, 0, 0, 0, 0, 0, 0}); ok {
		t.Error("timestamp request should not parse")
	}
}
