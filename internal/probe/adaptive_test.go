package probe

import (
	"testing"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

// faultyNet answers like scriptedNet but drops every TTL-exceeded reply
// at hops in [faultLo, faultHi], modeling a storm-darkened span. It
// counts probes so tests can see escalation happen, and implements the
// observer interfaces to record what the prober reports.
type faultyNet struct {
	dist             int
	respTTL          int
	lastHop          iputil.Addr
	midBase          iputil.Addr
	faultLo, faultHi int
	probes           int
	retries          int
	degWindows       int
	degRetries       int
	degExhausted     int
}

func (s *faultyNet) Ping(dst iputil.Addr, seq int) (PingResult, bool) {
	return PingResult{RespTTL: s.respTTL}, true
}

func (s *faultyNet) Probe(dst iputil.Addr, ttl int, flowID uint16, salt uint32) Result {
	s.probes++
	switch {
	case ttl >= s.faultLo && ttl <= s.faultHi:
		return Result{}
	case ttl >= s.dist:
		return Result{Kind: EchoReply}
	case ttl == s.dist-1:
		return Result{Kind: TTLExceeded, From: s.lastHop}
	default:
		return Result{Kind: TTLExceeded, From: s.midBase + iputil.Addr(ttl)}
	}
}

func (s *faultyNet) RecordProbeRetry()        { s.retries++ }
func (s *faultyNet) RecordDegradedWindow()    { s.degWindows++ }
func (s *faultyNet) RecordDegradedRetry()     { s.degRetries++ }
func (s *faultyNet) RecordDegradedExhausted() { s.degExhausted++ }

// TestAdaptiveOffIdentical pins that the Adaptive option defaulting off
// changes nothing: same replies, same probe count, no degraded flags.
func TestAdaptiveOffIdentical(t *testing.T) {
	mk := func() *faultyNet {
		return &faultyNet{dist: 8, respTTL: 56, lastHop: 0x64000001, midBase: 0x63000000, faultLo: 3, faultHi: 5}
	}
	off := mk()
	resOff := MDA(off, 1, MDAOptions{FirstTTL: 1, MaxTTL: 12})
	if resOff.Degraded || resOff.BudgetExhausted {
		t.Fatalf("degradation flagged with Adaptive off: %+v", resOff)
	}
	if off.degWindows+off.degRetries+off.degExhausted != 0 {
		t.Fatalf("degradation observed with Adaptive off")
	}

	// An adaptive run over a fault-free network is also bit-identical:
	// the streak never forms, so no escalation path is taken.
	clean, cleanAdaptive := mk(), mk()
	clean.faultLo, clean.faultHi = -1, -1
	cleanAdaptive.faultLo, cleanAdaptive.faultHi = -1, -1
	r1 := MDA(clean, 1, MDAOptions{FirstTTL: 1, MaxTTL: 12})
	r2 := MDA(cleanAdaptive, 1, MDAOptions{FirstTTL: 1, MaxTTL: 12, Adaptive: true})
	if clean.probes != cleanAdaptive.probes {
		t.Errorf("adaptive run sent %d probes on a clean network, plain run %d", cleanAdaptive.probes, clean.probes)
	}
	if r1.DestTTL != r2.DestTTL || r1.Degraded != r2.Degraded || r2.Degraded {
		t.Errorf("clean adaptive run diverged: %+v vs %+v", r1, r2)
	}
}

// TestAdaptiveEscalates pins the degradation state machine: a span of
// dead hops long enough to cross the streak threshold marks the run
// degraded, and subsequent windows spend escalated retries from the
// budget (visible as extra probes relative to the non-adaptive run).
func TestAdaptiveEscalates(t *testing.T) {
	mk := func() *faultyNet {
		return &faultyNet{dist: 12, respTTL: 52, lastHop: 0x64000001, midBase: 0x63000000, faultLo: 2, faultHi: 9}
	}
	plain, adaptive := mk(), mk()
	MDA(plain, 1, MDAOptions{FirstTTL: 1, MaxTTL: 16})
	res := MDA(adaptive, 1, MDAOptions{FirstTTL: 1, MaxTTL: 16, Adaptive: true})
	if !res.Degraded {
		t.Fatal("eight dead hops did not mark the run degraded")
	}
	if adaptive.degWindows != 1 {
		t.Errorf("degraded window recorded %d times, want 1", adaptive.degWindows)
	}
	if adaptive.degRetries == 0 {
		t.Error("no escalated retries recorded")
	}
	if adaptive.probes <= plain.probes {
		t.Errorf("adaptive run sent %d probes, plain %d — escalation invisible", adaptive.probes, plain.probes)
	}
	// Escalated retries are a subset of all retries.
	if adaptive.degRetries > adaptive.retries {
		t.Errorf("degraded retries %d exceed total retries %d", adaptive.degRetries, adaptive.retries)
	}
}

// TestAdaptiveBudgetExhausts pins the cap: with a tiny budget the run
// stops escalating, reports exhaustion exactly once, and never spends
// more than the budget.
func TestAdaptiveBudgetExhausts(t *testing.T) {
	n := &faultyNet{dist: 12, respTTL: 52, lastHop: 0x64000001, midBase: 0x63000000, faultLo: 2, faultHi: 9}
	res := MDA(n, 1, MDAOptions{FirstTTL: 1, MaxTTL: 16, Adaptive: true, AdaptiveBudget: 3})
	if !res.Degraded {
		t.Fatal("run not degraded")
	}
	if !res.BudgetExhausted {
		t.Fatal("budget of 3 across eight dead hops not exhausted")
	}
	if n.degRetries != 3 {
		t.Errorf("spent %d escalated retries, budget was 3", n.degRetries)
	}
	if n.degExhausted != 1 {
		t.Errorf("exhaustion recorded %d times, want 1", n.degExhausted)
	}

	// A negative budget means no escalation headroom at all: degraded
	// and exhausted are still reported, but no escalated retry fires.
	n2 := &faultyNet{dist: 12, respTTL: 52, lastHop: 0x64000001, midBase: 0x63000000, faultLo: 2, faultHi: 9}
	res2 := MDA(n2, 1, MDAOptions{FirstTTL: 1, MaxTTL: 16, Adaptive: true, AdaptiveBudget: -1})
	if !res2.Degraded || !res2.BudgetExhausted {
		t.Fatalf("zero-headroom run: %+v", res2)
	}
	if n2.degRetries != 0 {
		t.Errorf("zero-headroom run spent %d escalated retries", n2.degRetries)
	}
}

// TestFindLastHopsPropagatesDegradation pins that the halving loop ORs
// degradation flags across its MDA runs into the LastHopResult.
func TestFindLastHopsPropagatesDegradation(t *testing.T) {
	// respTTL 56 -> estimate 8 -> firstTTL 7, right at the start of the
	// dead span [7, 10]: the walk loses four consecutive windows before
	// the clean hop at 11 and the echo at 12, so the MDA run degrades
	// and (with a tiny budget) exhausts — and both flags must survive
	// into the LastHopResult.
	n := &faultyNet{dist: 12, respTTL: 56, lastHop: 0x64000001, midBase: 0x63000000, faultLo: 7, faultHi: 10}
	res := FindLastHops(n, 1, MDAOptions{Adaptive: true, AdaptiveBudget: 4})
	if !res.Degraded {
		t.Fatalf("degradation lost by FindLastHops: %+v", res)
	}
	if !res.BudgetExhausted {
		t.Fatalf("exhaustion lost by FindLastHops: %+v", res)
	}
}

// TestInstrumentedDegradedCounters pins the telemetry surface: the
// degraded_* counters appear under the active stage and the flat totals
// add up.
func TestInstrumentedDegradedCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	inner := &faultyNet{dist: 12, respTTL: 52, lastHop: 0x64000001, midBase: 0x63000000, faultLo: 2, faultHi: 9}
	net := Instrument(inner, reg, "measure")
	MDA(net, 1, MDAOptions{FirstTTL: 1, MaxTTL: 16, Adaptive: true, AdaptiveBudget: 5})
	if net.DegradedWindows() != 1 {
		t.Errorf("DegradedWindows = %d, want 1", net.DegradedWindows())
	}
	if net.DegradedRetries() != 5 {
		t.Errorf("DegradedRetries = %d, want the whole budget of 5", net.DegradedRetries())
	}
	if net.DegradedExhausted() != 1 {
		t.Errorf("DegradedExhausted = %d, want 1", net.DegradedExhausted())
	}
	for name, want := range map[string]int64{
		"probe.measure.degraded_windows":   1,
		"probe.measure.degraded_retries":   5,
		"probe.measure.degraded_exhausted": 1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}
