package probe

import (
	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/trace"
)

// LastHopResult is the outcome of discovering a destination's last-hop
// router(s), Section 3.4's procedure.
type LastHopResult struct {
	// Responded reports whether the destination answered echo probes at
	// all; when false nothing else is meaningful.
	Responded bool
	// LastHops are the distinct responsive last-hop router interfaces
	// observed across the enumerated per-flow paths.
	LastHops []iputil.Addr
	// Unresponsive reports that at least one path ended at a router
	// that never answered (the "Unresponsive last-hop" category when no
	// LastHops were found at all).
	Unresponsive bool
	// DestTTL is the hop distance at which the destination answered.
	DestTTL int
	// Paths holds the enumerated path suffixes for diagnostics.
	Paths *trace.PathSet
	// Degraded reports that at least one underlying MDA run crossed the
	// consecutive-loss threshold (see MDAOptions.Adaptive).
	Degraded bool
	// BudgetExhausted reports that at least one underlying MDA run
	// spent its whole adaptive escalation budget; the measurement is
	// complete but deserves less confidence.
	BudgetExhausted bool
}

// pingAttempts is how many echo probes to try before declaring a
// destination unresponsive.
const pingAttempts = 3

// FindLastHops identifies the last-hop router(s) of dst efficiently: it
// infers a starting TTL from the destination's echo-reply TTL, runs
// Paris-traceroute MDA from there, and halves the starting TTL whenever
// the destination answers immediately (an overestimate), per Section 3.4.
func FindLastHops(net Network, dst iputil.Addr, opts MDAOptions) LastHopResult {
	opts = opts.withDefaults()

	var ping PingResult
	ok := false
	for seq := 0; seq < pingAttempts && !ok; seq++ {
		ping, ok = net.Ping(dst, seq)
	}
	if !ok {
		return LastHopResult{}
	}

	firstTTL := HopEstimate(ping.RespTTL) - 1
	if firstTTL < 1 {
		firstTTL = 1
	}
	if firstTTL > opts.MaxTTL {
		firstTTL = opts.MaxTTL
	}

	// Degradation accumulates across the halving loop's MDA runs: a
	// retrace that went fine does not launder an earlier faulted walk.
	degraded, exhausted := false, false
	for {
		opts.FirstTTL = firstTTL
		res := MDA(net, dst, opts)
		degraded = degraded || res.Degraded
		exhausted = exhausted || res.BudgetExhausted
		switch {
		case res.ImmediateEcho() && firstTTL > 1:
			// Overestimate: the destination answered before any
			// router hop was seen. Halve and retry.
			firstTTL /= 2
			continue
		case !res.DestReached && firstTTL > 1:
			// The walk from firstTTL never reached the
			// destination; distrust the inference entirely and
			// retrace from the source.
			firstTTL = 1
			continue
		case !res.DestReached:
			// A full trace could not reach the destination: it
			// stopped answering mid-measurement.
			return LastHopResult{Degraded: degraded, BudgetExhausted: exhausted}
		}
		out := LastHopResult{
			Responded:       true,
			DestTTL:         res.DestTTL,
			Paths:           res.Paths,
			Degraded:        degraded,
			BudgetExhausted: exhausted,
		}
		out.LastHops, out.Unresponsive = res.Paths.LastHops()
		return out
	}
}
