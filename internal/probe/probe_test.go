package probe

import (
	"testing"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

func simWorld(t *testing.T, n int) (*netsim.World, *SimNetwork) {
	return simWorldCfg(t, n, nil)
}

func simWorldCfg(t *testing.T, n int, mutate func(*netsim.Config)) (*netsim.World, *SimNetwork) {
	t.Helper()
	cfg := netsim.DefaultConfig(n)
	cfg.BigBlockScale = 0.02
	if mutate != nil {
		mutate(&cfg)
	}
	w, err := netsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, NewSimNetwork(w)
}

// findResponsive returns responsive addresses of a homogeneous block with
// the wanted last-hop cardinality (0 = any) and responsive last hops.
func findBlock(t *testing.T, w *netsim.World, wantK int) (iputil.Block24, []iputil.Addr) {
	t.Helper()
	for _, b := range w.Blocks() {
		if hom, _ := w.TrueHomogeneous(b); !hom {
			continue
		}
		if w.UnresponsiveLastHop(b) {
			continue
		}
		if wantK != 0 && w.TrueLastHopCardinality(b) != wantK {
			continue
		}
		var addrs []iputil.Addr
		for i := 1; i < 255; i++ {
			if a := b.Addr(i); w.RespondsNow(a) {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) >= 8 {
			return b, addrs
		}
	}
	t.Fatalf("no suitable block with K=%d", wantK)
	return 0, nil
}

func TestInferDefaultTTL(t *testing.T) {
	cases := []struct{ resp, want int }{
		{10, 64}, {63, 64}, {64, 128}, {120, 128},
		{128, 192}, {191, 192}, {192, 255}, {250, 255},
	}
	for _, c := range cases {
		if got := InferDefaultTTL(c.resp); got != c.want {
			t.Errorf("InferDefaultTTL(%d) = %d, want %d", c.resp, got, c.want)
		}
	}
	if got := HopEstimate(54); got != 10 {
		t.Errorf("HopEstimate(54) = %d, want 10", got)
	}
}

func TestStoppingPointTable(t *testing.T) {
	// The published 95% MDA stopping points.
	want := []int{6, 11, 16, 21, 27, 33, 38, 44, 51, 57}
	for k := 1; k <= len(want); k++ {
		if got := StoppingPoint(k, 0.95); got != want[k-1] {
			t.Errorf("StoppingPoint(%d) = %d, want %d", k, got, want[k-1])
		}
	}
	// k=0 behaves like k=1 (still need 6 probes to call a hop single).
	if StoppingPoint(0, 0.95) != 6 {
		t.Error("StoppingPoint(0) should equal StoppingPoint(1)")
	}
	// Invalid confidence falls back to 95%.
	if StoppingPoint(1, 0) != 6 || StoppingPoint(1, 1.5) != 6 {
		t.Error("confidence fallback broken")
	}
	// Higher confidence needs more probes.
	if StoppingPoint(1, 0.99) <= StoppingPoint(1, 0.95) {
		t.Error("99% confidence should need more probes than 95%")
	}
}

func TestMDAFullTrace(t *testing.T) {
	w, net := simWorld(t, 600)
	_, addrs := findBlock(t, w, 0)
	dst := addrs[0]
	res := MDA(net, dst, MDAOptions{})
	if !res.DestReached {
		t.Fatal("destination not reached")
	}
	if res.Paths.Len() == 0 {
		t.Fatal("no paths enumerated")
	}
	// Every enumerated path ends at a true last hop (or a wildcard).
	trueLH, _ := w.TrueLastHops(dst)
	lhSet := map[iputil.Addr]struct{}{}
	for _, lh := range trueLH {
		lhSet[lh] = struct{}{}
	}
	for _, p := range res.Paths.Paths() {
		if len(p) != res.DestTTL-1 {
			t.Fatalf("path length %d, want %d", len(p), res.DestTTL-1)
		}
		if a, ok := p.LastHop(); ok {
			if _, isTrue := lhSet[a]; !isTrue {
				t.Fatalf("path ends at %v, not a true last hop %v", a, trueLH)
			}
		}
	}
	// Per-flow diversity should surface more than one distinct path for
	// a world with fanout 4 (paths differ at the core diamond).
	if res.Paths.Len() < 2 {
		t.Errorf("MDA found %d paths, expected >= 2 with per-flow fanout", res.Paths.Len())
	}
}

func TestMDAImmediateEcho(t *testing.T) {
	w, net := simWorld(t, 300)
	_, addrs := findBlock(t, w, 0)
	dst := addrs[0]
	full := MDA(net, dst, MDAOptions{})
	if !full.DestReached {
		t.Fatal("destination not reached")
	}
	// Probing from the destination distance itself must yield an
	// immediate echo and no hops.
	res := MDA(net, dst, MDAOptions{FirstTTL: full.DestTTL})
	if !res.ImmediateEcho() {
		t.Fatalf("expected immediate echo at firstTTL=%d", full.DestTTL)
	}
	if res.Paths.Len() != 0 {
		t.Errorf("immediate echo should enumerate no paths, got %d", res.Paths.Len())
	}
	// Starting one hop earlier sees exactly the last hop.
	res = MDA(net, dst, MDAOptions{FirstTTL: full.DestTTL - 1})
	if res.ImmediateEcho() || !res.DestReached {
		t.Fatal("one-hop-short MDA should reach after one row")
	}
	for _, p := range res.Paths.Paths() {
		if len(p) != 1 {
			t.Fatalf("suffix path length = %d, want 1", len(p))
		}
	}
}

func TestMDAUnresponsiveDestination(t *testing.T) {
	w, net := simWorld(t, 300)
	// Find an inactive address in a routed block.
	var dst iputil.Addr
	for _, b := range w.Blocks() {
		for i := 1; i < 255; i++ {
			if a := b.Addr(i); !w.RespondsNow(a) {
				dst = a
				break
			}
		}
		if dst != 0 {
			break
		}
	}
	res := MDA(net, dst, MDAOptions{MaxTTL: 14})
	if res.DestReached {
		t.Fatal("unresponsive destination reached")
	}
	if res.Paths.Len() == 0 {
		t.Error("router hops should still be enumerated")
	}
}

func TestFindLastHopsMatchesTruth(t *testing.T) {
	w, net := simWorld(t, 800)
	for _, wantK := range []int{1, 2} {
		blk, addrs := findBlock(t, w, wantK)
		trueLH, _ := w.TrueLastHops(addrs[0])
		found := map[iputil.Addr]struct{}{}
		for _, a := range addrs[:6] {
			res := FindLastHops(net, a, MDAOptions{})
			if !res.Responded {
				t.Fatalf("responsive %v did not respond", a)
			}
			if len(res.LastHops) == 0 {
				if res.Unresponsive {
					continue
				}
				t.Fatalf("addr %v: no last hops", a)
			}
			// An address sees one last hop, or two when the pop is
			// flow-divergent; all must be in the planted truth.
			if len(res.LastHops) > 2 {
				t.Fatalf("addr %v: %d last hops", a, len(res.LastHops))
			}
			for _, got := range res.LastHops {
				lhOK := false
				for _, lh := range trueLH {
					if got == lh {
						lhOK = true
					}
				}
				if !lhOK {
					t.Fatalf("block %v addr %v: last hop %v not in truth %v (K=%d)",
						blk, a, got, trueLH, wantK)
				}
				found[got] = struct{}{}
			}
		}
		if wantK == 1 && len(found) > 1 {
			t.Errorf("K=1 block yielded %d distinct last hops", len(found))
		}
	}
}

func TestFindLastHopsUnresponsiveDest(t *testing.T) {
	w, net := simWorld(t, 300)
	var dst iputil.Addr
	for _, b := range w.Blocks() {
		for i := 1; i < 255; i++ {
			if a := b.Addr(i); !w.RespondsNow(a) {
				dst = a
				break
			}
		}
		if dst != 0 {
			break
		}
	}
	res := FindLastHops(net, dst, MDAOptions{})
	if res.Responded {
		t.Error("unresponsive destination should not respond")
	}
}

func TestFindLastHopsUnresponsiveLastHop(t *testing.T) {
	w, net := simWorld(t, 1200)
	var target iputil.Addr
	for _, b := range w.Blocks() {
		if !w.UnresponsiveLastHop(b) {
			continue
		}
		for i := 1; i < 255; i++ {
			if a := b.Addr(i); w.RespondsNow(a) {
				target = a
				break
			}
		}
		if target != 0 {
			break
		}
	}
	if target == 0 {
		t.Skip("no responsive host behind an unresponsive last hop")
	}
	res := FindLastHops(net, target, MDAOptions{})
	if !res.Responded {
		t.Fatal("destination should respond")
	}
	if len(res.LastHops) != 0 || !res.Unresponsive {
		t.Errorf("expected unresponsive last hop, got hops=%v unresp=%v",
			res.LastHops, res.Unresponsive)
	}
}

func TestInstrumented(t *testing.T) {
	_, net := simWorld(t, 100)
	reg := telemetry.NewRegistry()
	c := Instrument(net, reg, "measure")
	dst := iputil.MustParseAddr("1.0.0.1")
	c.Ping(dst, 0)
	c.Ping(dst, 1) // a retry: seq > 0
	c.Probe(dst, 3, 1, 1)
	c.Probe(dst, 4, 1, 2)
	c.RecordProbeRetry()
	if c.Pings() != 2 || c.Probes() != 2 {
		t.Errorf("counts = %d pings, %d probes", c.Pings(), c.Probes())
	}
	if c.PingRetries() != 1 || c.ProbeRetries() != 1 {
		t.Errorf("retries = %d ping, %d probe", c.PingRetries(), c.ProbeRetries())
	}

	// Per-stage attribution: switching stages moves new probes to fresh
	// counters while the flat totals keep accumulating.
	c.SetStage("validate")
	if c.Stage() != "validate" {
		t.Errorf("stage = %q", c.Stage())
	}
	c.Probe(dst, 5, 1, 3)
	snap := reg.Snapshot()
	want := map[string]int64{
		"probe.measure.pings":         2,
		"probe.measure.ping_retries":  1,
		"probe.measure.probes":        2,
		"probe.measure.probe_retries": 1,
		"probe.validate.probes":       1,
	}
	for name, n := range want {
		if snap.Counters[name] != n {
			t.Errorf("%s = %d, want %d", name, snap.Counters[name], n)
		}
	}
	if c.Probes() != 3 {
		t.Errorf("flat probe total = %d, want 3", c.Probes())
	}
}

func TestNewCounterNoRegistry(t *testing.T) {
	_, net := simWorld(t, 100)
	c := NewCounter(net)
	dst := iputil.MustParseAddr("1.0.0.1")
	c.Ping(dst, 0)
	c.Probe(dst, 3, 1, 1)
	if c.Pings() != 1 || c.Probes() != 1 {
		t.Errorf("counts = %d pings, %d probes", c.Pings(), c.Probes())
	}
}

// TestMDAReportsRetries drives MDA over a lossy network and checks that
// retransmissions reach the instrumented wrapper.
func TestMDAReportsRetries(t *testing.T) {
	w, _ := simWorldCfg(t, 200, func(c *netsim.Config) { c.PRateLimit = 0.3 })
	c := Instrument(NewSimNetwork(w), telemetry.NewRegistry(), "measure")
	probed := 0
	for _, b := range w.Blocks() {
		for i := 1; i < 255 && probed < 40; i++ {
			if a := b.Addr(i); w.RespondsNow(a) {
				MDA(c, a, MDAOptions{})
				probed++
			}
		}
		if probed >= 40 {
			break
		}
	}
	if c.Probes() == 0 {
		t.Fatal("no probes recorded")
	}
	if c.ProbeRetries() == 0 {
		t.Error("rate-limited network produced no recorded retries")
	}
	if c.ProbeRetries() >= c.Probes() {
		t.Errorf("retries %d should be a strict subset of probes %d",
			c.ProbeRetries(), c.Probes())
	}
}

func TestMDAOptionsDefaults(t *testing.T) {
	o := MDAOptions{}.withDefaults()
	if o.FirstTTL != 1 || o.MaxTTL != 32 || o.Confidence != 0.95 || o.MaxFlows != 64 || o.Retries != 2 {
		t.Errorf("defaults = %+v", o)
	}
	o = MDAOptions{FirstTTL: 5, MaxTTL: 10, Confidence: 0.99, MaxFlows: 8, Retries: 1}.withDefaults()
	if o.FirstTTL != 5 || o.MaxTTL != 10 || o.Confidence != 0.99 || o.MaxFlows != 8 || o.Retries != 1 {
		t.Errorf("explicit options clobbered: %+v", o)
	}
}

func TestParseReplyUnitsViaSim(t *testing.T) {
	// The raw-socket backend is not exercised against the live network
	// in tests, but its reply parser is pure and testable.
	msg := echoRequest(0x1234, 7)
	if icmpChecksum(msg) != 0 {
		t.Error("checksum of checksummed message should be zero")
	}
	kind, _, ident, seq, _, ok := parseReply(append([]byte{
		0x45, 0, 0, 28, 0, 0, 0, 0, 57, 1, 0, 0, // IPv4 header (TTL 57)
		10, 0, 0, 1, 10, 0, 0, 2,
	}, replyFrom(msg)...))
	if !ok || kind != EchoReply || ident != 0x1234 || seq != 7 {
		t.Errorf("parseReply = kind=%v ident=%x seq=%d ok=%v", kind, ident, seq, ok)
	}
	if _, _, _, _, _, ok := parseReply([]byte{1, 2, 3}); ok {
		t.Error("short buffer should not parse")
	}
}

// replyFrom converts an echo request into the matching echo reply bytes.
func replyFrom(req []byte) []byte {
	out := append([]byte(nil), req...)
	out[0] = 0 // echo reply
	out[2], out[3] = 0, 0
	c := icmpChecksum(out)
	out[2] = byte(c >> 8)
	out[3] = byte(c)
	return out
}
