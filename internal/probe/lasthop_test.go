package probe

import (
	"testing"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

// scriptedNet is a hand-built Network for exercising the first_ttl
// inference and halving logic in isolation: one destination at a fixed
// distance behind a known last hop, with a configurable echo-reply TTL.
type scriptedNet struct {
	dist     int // TTL at which the destination answers
	respTTL  int // TTL field of the echo reply
	lastHop  iputil.Addr
	midBase  iputil.Addr
	probeLog []int // TTLs probed, in order
}

func (s *scriptedNet) Ping(dst iputil.Addr, seq int) (PingResult, bool) {
	return PingResult{RespTTL: s.respTTL}, true
}

func (s *scriptedNet) Probe(dst iputil.Addr, ttl int, flowID uint16, salt uint32) Result {
	s.probeLog = append(s.probeLog, ttl)
	switch {
	case ttl >= s.dist:
		return Result{Kind: EchoReply}
	case ttl == s.dist-1:
		return Result{Kind: TTLExceeded, From: s.lastHop}
	default:
		return Result{Kind: TTLExceeded, From: s.midBase + iputil.Addr(ttl)}
	}
}

func TestFindLastHopsExactEstimate(t *testing.T) {
	// defaultTTL 64, reverse distance = forward distance = 10:
	// respTTL 54 -> estimate 10 -> first_ttl 9 = the last-hop position.
	n := &scriptedNet{dist: 10, respTTL: 54, lastHop: 0x64000001, midBase: 0x63000000}
	res := FindLastHops(n, 1, MDAOptions{})
	if !res.Responded || len(res.LastHops) != 1 || res.LastHops[0] != n.lastHop {
		t.Fatalf("result = %+v", res)
	}
	if res.DestTTL != 10 {
		t.Errorf("DestTTL = %d", res.DestTTL)
	}
	// Efficiency: no probe below the inferred starting TTL.
	for _, ttl := range n.probeLog {
		if ttl < 9 {
			t.Fatalf("probed ttl %d below first_ttl 9", ttl)
		}
	}
}

func TestFindLastHopsOverestimateHalves(t *testing.T) {
	// Reverse path is 4 hops longer than the forward path: respTTL 50
	// -> estimate 14 -> first_ttl 13 >= dist 10 -> immediate echo ->
	// halve to 6 and walk forward.
	n := &scriptedNet{dist: 10, respTTL: 50, lastHop: 0x64000001, midBase: 0x63000000}
	res := FindLastHops(n, 1, MDAOptions{})
	if !res.Responded || len(res.LastHops) != 1 || res.LastHops[0] != n.lastHop {
		t.Fatalf("result = %+v", res)
	}
	// The halving must actually have happened: some probe at TTL <= 7.
	halved := false
	for _, ttl := range n.probeLog {
		if ttl <= 7 {
			halved = true
		}
	}
	if !halved {
		t.Errorf("no halved probe observed: %v", n.probeLog)
	}
}

func TestFindLastHopsUnderestimateWalks(t *testing.T) {
	// Reverse path shorter: estimate 7 -> first_ttl 6 -> MDA walks
	// through intermediate routers to the last hop ("find some more
	// routers than the last hop").
	n := &scriptedNet{dist: 10, respTTL: 57, lastHop: 0x64000001, midBase: 0x63000000}
	res := FindLastHops(n, 1, MDAOptions{})
	if !res.Responded {
		t.Fatal("did not respond")
	}
	// The paths include the intermediate routers, but the last hop is
	// still the true one.
	if len(res.LastHops) != 1 || res.LastHops[0] != n.lastHop {
		t.Fatalf("last hops = %v", res.LastHops)
	}
	if res.Paths.Len() == 0 || len(res.Paths.Paths()[0]) < 3 {
		t.Errorf("expected a multi-hop suffix, got %v", res.Paths.Paths())
	}
}

// deadAfterPing answers pings but never answers probes (a destination that
// died mid-measurement).
type deadAfterPing struct{}

func (deadAfterPing) Ping(iputil.Addr, int) (PingResult, bool) { return PingResult{RespTTL: 54}, true }
func (deadAfterPing) Probe(iputil.Addr, int, uint16, uint32) Result {
	return Result{}
}

func TestFindLastHopsDiesMidMeasurement(t *testing.T) {
	res := FindLastHops(deadAfterPing{}, 1, MDAOptions{MaxTTL: 12})
	if res.Responded {
		t.Errorf("dest that never echoes should not count as responded: %+v", res)
	}
}
