package probe

import (
	"testing"
	"testing/quick"
)

func TestInferDefaultTTLProperties(t *testing.T) {
	f := func(raw uint8) bool {
		resp := int(raw)
		def := InferDefaultTTL(resp)
		switch def {
		case 64, 128, 192, 255:
		default:
			return false
		}
		// The inferred default is always at or above the response, so
		// hop estimates are non-negative.
		if HopEstimate(resp) < 0 {
			return false
		}
		// Hop estimates stay within a plausible bucket width.
		return HopEstimate(resp) <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Error(err)
	}
}

func TestStoppingPointMonotone(t *testing.T) {
	// More interfaces seen -> more probes required; higher confidence
	// -> more probes required.
	prev := 0
	for k := 1; k <= 32; k++ {
		n := StoppingPoint(k, 0.95)
		if n <= prev {
			t.Fatalf("StoppingPoint not strictly increasing at k=%d: %d <= %d", k, n, prev)
		}
		prev = n
		if StoppingPoint(k, 0.99) < n {
			t.Fatalf("higher confidence needs no fewer probes at k=%d", k)
		}
	}
}
