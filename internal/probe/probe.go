// Package probe implements the measurement primitives of the paper's
// toolchain: ICMP echo probing with TTL-based hop-count inference
// (Section 3.4), Paris-traceroute MDA — the multipath detection algorithm
// that enumerates per-flow load-balanced paths with per-hop statistical
// stopping rules — and the last-hop discovery procedure with first_ttl
// halving.
//
// Probers operate against the Network interface, satisfied by the netsim
// adapter (SimNetwork) for laboratory runs and by the raw-socket backend
// (ICMPNetwork) on a privileged host.
package probe

import (
	"math"
	"sync/atomic"
	"time"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

// Kind classifies a probe outcome.
type Kind int

// Probe outcomes.
const (
	NoReply Kind = iota
	TTLExceeded
	EchoReply
)

// Result is the outcome of one TTL-limited probe.
type Result struct {
	Kind Kind
	// From is the router interface that sent a TTL-exceeded message.
	From iputil.Addr
	// RTT of the reply, when one arrived.
	RTT time.Duration
}

// PingResult is the outcome of one echo request.
type PingResult struct {
	// RespTTL is the TTL field of the received echo reply, from which
	// the destination's default TTL and hop distance are inferred.
	RespTTL int
	RTT     time.Duration
}

// Network is the probing surface: it answers echo requests and TTL-limited
// probes. flowID selects the per-flow load-balanced path (the header
// fields Paris traceroute keeps constant or varies); salt distinguishes
// retransmissions so rate-limited losses are independent across retries.
type Network interface {
	Ping(dst iputil.Addr, seq int) (PingResult, bool)
	Probe(dst iputil.Addr, ttl int, flowID uint16, salt uint32) Result
}

// Counter wraps a Network and counts probes, for the measurement-load
// accounting the paper reports (64.45M destinations probed).
type Counter struct {
	Net    Network
	pings  atomic.Int64
	probes atomic.Int64
}

// NewCounter wraps net with probe accounting.
func NewCounter(net Network) *Counter { return &Counter{Net: net} }

// Ping implements Network.
func (c *Counter) Ping(dst iputil.Addr, seq int) (PingResult, bool) {
	c.pings.Add(1)
	return c.Net.Ping(dst, seq)
}

// Probe implements Network.
func (c *Counter) Probe(dst iputil.Addr, ttl int, flowID uint16, salt uint32) Result {
	c.probes.Add(1)
	return c.Net.Probe(dst, ttl, flowID, salt)
}

// Pings returns the number of echo requests sent.
func (c *Counter) Pings() int64 { return c.pings.Load() }

// Probes returns the number of TTL-limited probes sent.
func (c *Counter) Probes() int64 { return c.probes.Load() }

// InferDefaultTTL buckets a received echo-reply TTL into the assumed
// default TTL of the destination host, per Section 3.4: < 64 → 64,
// 64..127 → 128, 128..191 → 192, and ≥ 192 → 255.
func InferDefaultTTL(respTTL int) int {
	switch {
	case respTTL < 64:
		return 64
	case respTTL < 128:
		return 128
	case respTTL < 192:
		return 192
	default:
		return 255
	}
}

// HopEstimate infers the hop count between the source and the destination
// from a received echo-reply TTL (default TTL minus received TTL). The
// estimate equals the reverse-path length and may be off when forward and
// reverse paths differ; the last-hop finder's halving loop corrects for
// overestimates.
func HopEstimate(respTTL int) int {
	return InferDefaultTTL(respTTL) - respTTL
}

// mda95Table holds the published 95%-confidence MDA stopping points for
// k = 1..16 seen interfaces, as shipped with Paris traceroute.
var mda95Table = []int{6, 11, 16, 21, 27, 33, 38, 44, 51, 57, 63, 70, 76, 83, 90, 96}

// StoppingPoint returns the number of probes that must be answered by at
// most k distinct next-hop interfaces to rule out a (k+1)-th interface at
// the given confidence level, following the MDA analysis the paper relies
// on (6 probes rule out a second interface at 95%). At 95% it uses the
// published Paris-traceroute table; other confidence levels use the
// closed-form bound.
func StoppingPoint(k int, confidence float64) int {
	if k < 1 {
		k = 1
	}
	alpha := 1 - confidence
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	if math.Abs(alpha-0.05) < 1e-9 && k <= len(mda95Table) {
		return mda95Table[k-1]
	}
	// Smallest n with (k+1) * (k/(k+1))^n < alpha.
	ratio := float64(k) / float64(k+1)
	n := math.Log(alpha/float64(k+1)) / math.Log(ratio)
	return int(math.Ceil(n))
}
