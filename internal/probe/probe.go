// Package probe implements the measurement primitives of the paper's
// toolchain: ICMP echo probing with TTL-based hop-count inference
// (Section 3.4), Paris-traceroute MDA — the multipath detection algorithm
// that enumerates per-flow load-balanced paths with per-hop statistical
// stopping rules — and the last-hop discovery procedure with first_ttl
// halving.
//
// Probers operate against the Network interface, satisfied by the netsim
// adapter (SimNetwork) for laboratory runs and by the raw-socket backend
// (ICMPNetwork) on a privileged host.
package probe

import (
	"math"
	"sync/atomic"
	"time"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

// Kind classifies a probe outcome.
type Kind int

// Probe outcomes.
const (
	NoReply Kind = iota
	TTLExceeded
	EchoReply
)

// Result is the outcome of one TTL-limited probe.
type Result struct {
	Kind Kind
	// From is the router interface that sent a TTL-exceeded message.
	From iputil.Addr
	// RTT of the reply, when one arrived.
	RTT time.Duration
}

// PingResult is the outcome of one echo request.
type PingResult struct {
	// RespTTL is the TTL field of the received echo reply, from which
	// the destination's default TTL and hop distance are inferred.
	RespTTL int
	RTT     time.Duration
}

// Network is the probing surface: it answers echo requests and TTL-limited
// probes. flowID selects the per-flow load-balanced path (the header
// fields Paris traceroute keeps constant or varies); salt distinguishes
// retransmissions so rate-limited losses are independent across retries.
type Network interface {
	Ping(dst iputil.Addr, seq int) (PingResult, bool)
	Probe(dst iputil.Addr, ttl int, flowID uint16, salt uint32) Result
}

// Instrumented wraps a Network with the measurement-load accounting the
// paper reports (64.45M destinations probed): echo requests, TTL-limited
// probes, and retransmissions, both as flat totals and — when a telemetry
// registry is attached — as per-stage counters ("probe.<stage>.pings",
// "probe.<stage>.probes", "probe.<stage>.ping_retries",
// "probe.<stage>.probe_retries"), so census, measurement, and reprobe
// validation load stay attributable after a run.
//
// Instrumented is safe for concurrent use whenever the wrapped Network is;
// SetStage may be called between pipeline stages but not concurrently with
// in-flight probes of the old stage.
type Instrumented struct {
	net   Network
	reg   *telemetry.Registry
	stage atomic.Pointer[stageCounters]

	pings        atomic.Int64
	probes       atomic.Int64
	pingRetries  atomic.Int64
	probeRetries atomic.Int64

	degradedWindows   atomic.Int64
	degradedRetries   atomic.Int64
	degradedExhausted atomic.Int64
}

// stageCounters caches the per-stage registry handles so hot-path probes
// do not take the registry lock.
type stageCounters struct {
	name              string
	pings             *telemetry.Counter
	probes            *telemetry.Counter
	pingRetries       *telemetry.Counter
	probeRetries      *telemetry.Counter
	degradedWindows   *telemetry.Counter
	degradedRetries   *telemetry.Counter
	degradedExhausted *telemetry.Counter
}

// Instrument wraps net with probe accounting attributed to the given
// stage. A nil registry keeps the flat totals only.
func Instrument(net Network, reg *telemetry.Registry, stage string) *Instrumented {
	n := &Instrumented{net: net, reg: reg}
	n.SetStage(stage)
	return n
}

// NewCounter wraps net with flat probe accounting and no registry — the
// historical Counter behaviour, kept for call sites that only want totals.
func NewCounter(net Network) *Instrumented { return Instrument(net, nil, "") }

// SetStage switches the stage new probes are attributed to.
func (n *Instrumented) SetStage(stage string) {
	sc := &stageCounters{name: stage}
	if n.reg != nil {
		sc.pings = n.reg.Counter("probe." + stage + ".pings")
		sc.probes = n.reg.Counter("probe." + stage + ".probes")
		sc.pingRetries = n.reg.Counter("probe." + stage + ".ping_retries")
		sc.probeRetries = n.reg.Counter("probe." + stage + ".probe_retries")
		sc.degradedWindows = n.reg.Counter("probe." + stage + ".degraded_windows")
		sc.degradedRetries = n.reg.Counter("probe." + stage + ".degraded_retries")
		sc.degradedExhausted = n.reg.Counter("probe." + stage + ".degraded_exhausted")
	}
	n.stage.Store(sc)
}

// Stage returns the stage probes are currently attributed to.
func (n *Instrumented) Stage() string { return n.stage.Load().name }

// Ping implements Network. A seq greater than zero marks a retry of an
// unanswered echo request (see FindLastHops' attempt loop).
func (n *Instrumented) Ping(dst iputil.Addr, seq int) (PingResult, bool) {
	n.pings.Add(1)
	sc := n.stage.Load()
	sc.pings.Inc()
	if seq > 0 {
		n.pingRetries.Add(1)
		sc.pingRetries.Inc()
	}
	return n.net.Ping(dst, seq)
}

// Probe implements Network.
func (n *Instrumented) Probe(dst iputil.Addr, ttl int, flowID uint16, salt uint32) Result {
	n.probes.Add(1)
	n.stage.Load().probes.Inc()
	return n.net.Probe(dst, ttl, flowID, salt)
}

// RecordProbeRetry implements ProbeRetryObserver: MDA reports each
// retransmission of an unanswered TTL-limited probe here (the probe itself
// also passes through Probe, so retries are a subset of the probe total,
// mirroring how ping retries relate to the ping total).
func (n *Instrumented) RecordProbeRetry() {
	n.probeRetries.Add(1)
	n.stage.Load().probeRetries.Inc()
}

// RecordDegradedWindow implements DegradedObserver: an MDA run crossed
// the consecutive-loss threshold and turned its escalation on.
func (n *Instrumented) RecordDegradedWindow() {
	n.degradedWindows.Add(1)
	n.stage.Load().degradedWindows.Inc()
}

// RecordDegradedRetry implements DegradedObserver: one escalated
// retransmission was spent from an adaptive budget (also counted by
// RecordProbeRetry, as every retransmission is).
func (n *Instrumented) RecordDegradedRetry() {
	n.degradedRetries.Add(1)
	n.stage.Load().degradedRetries.Inc()
}

// RecordDegradedExhausted implements DegradedObserver: a degraded run
// ran out of escalation budget.
func (n *Instrumented) RecordDegradedExhausted() {
	n.degradedExhausted.Add(1)
	n.stage.Load().degradedExhausted.Inc()
}

// DegradedWindows returns how many MDA runs turned degraded.
func (n *Instrumented) DegradedWindows() int64 { return n.degradedWindows.Load() }

// DegradedRetries returns how many retransmissions were escalations.
func (n *Instrumented) DegradedRetries() int64 { return n.degradedRetries.Load() }

// DegradedExhausted returns how many runs exhausted their budget.
func (n *Instrumented) DegradedExhausted() int64 { return n.degradedExhausted.Load() }

// Pings returns the number of echo requests sent.
func (n *Instrumented) Pings() int64 { return n.pings.Load() }

// Probes returns the number of TTL-limited probes sent.
func (n *Instrumented) Probes() int64 { return n.probes.Load() }

// PingRetries returns how many echo requests were retries.
func (n *Instrumented) PingRetries() int64 { return n.pingRetries.Load() }

// ProbeRetries returns how many TTL-limited probes were retransmissions.
func (n *Instrumented) ProbeRetries() int64 { return n.probeRetries.Load() }

// ProbeRetryObserver is implemented by Networks that want to know when a
// prober retransmits an unanswered TTL-limited probe; retries are
// indistinguishable from fresh probes at the Probe call itself (salt is a
// free-running nonce), so the prober reports them explicitly.
type ProbeRetryObserver interface {
	RecordProbeRetry()
}

// DegradedObserver is implemented by Networks that want the adaptive
// prober's degradation signals: a window crossing the loss threshold, an
// escalated retransmission, and a budget running dry (see MDAOptions
// .Adaptive). Instrumented surfaces them as probe.<stage>.degraded_*
// counters.
type DegradedObserver interface {
	RecordDegradedWindow()
	RecordDegradedRetry()
	RecordDegradedExhausted()
}

// InferDefaultTTL buckets a received echo-reply TTL into the assumed
// default TTL of the destination host, per Section 3.4: < 64 → 64,
// 64..127 → 128, 128..191 → 192, and ≥ 192 → 255.
func InferDefaultTTL(respTTL int) int {
	switch {
	case respTTL < 64:
		return 64
	case respTTL < 128:
		return 128
	case respTTL < 192:
		return 192
	default:
		return 255
	}
}

// HopEstimate infers the hop count between the source and the destination
// from a received echo-reply TTL (default TTL minus received TTL). The
// estimate equals the reverse-path length and may be off when forward and
// reverse paths differ; the last-hop finder's halving loop corrects for
// overestimates.
func HopEstimate(respTTL int) int {
	return InferDefaultTTL(respTTL) - respTTL
}

// mda95Table holds the published 95%-confidence MDA stopping points for
// k = 1..16 seen interfaces, as shipped with Paris traceroute.
var mda95Table = []int{6, 11, 16, 21, 27, 33, 38, 44, 51, 57, 63, 70, 76, 83, 90, 96}

// StoppingPoint returns the number of probes that must be answered by at
// most k distinct next-hop interfaces to rule out a (k+1)-th interface at
// the given confidence level, following the MDA analysis the paper relies
// on (6 probes rule out a second interface at 95%). At 95% it uses the
// published Paris-traceroute table; other confidence levels use the
// closed-form bound.
func StoppingPoint(k int, confidence float64) int {
	if k < 1 {
		k = 1
	}
	alpha := 1 - confidence
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	if math.Abs(alpha-0.05) < 1e-9 && k <= len(mda95Table) {
		return mda95Table[k-1]
	}
	// Smallest n with (k+1) * (k/(k+1))^n < alpha.
	ratio := float64(k) / float64(k+1)
	n := math.Log(alpha/float64(k+1)) / math.Log(ratio)
	return int(math.Ceil(n))
}
