// Package faultplan provides deterministic, time-phased fault injection
// for netsim worlds: declarative plans composed of scheduled events that
// key off the world's epoch counter and a seeded hash, so any plan
// replays bit-identically — across runs, worker counts, and probe
// orders.
//
// A Plan is a list of Events, each active over an inclusive epoch window
// [From, To]. Compile validates the plan and produces a Schedule, an
// immutable netsim.FaultView whose answers are pure functions of
// (plan, epoch, query): no clocks, no mutable state, no allocation on
// the query path. DESIGN.md §4f documents the contract.
package faultplan

import (
	"fmt"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/rng"
)

// Kind enumerates the event taxonomy.
type Kind int

// Event kinds.
const (
	// Blackhole withdraws the route entry covering Event.Prefix: echo
	// replies stop and TTL-exceeded replies stop past the backbone core.
	Blackhole Kind = iota
	// RateStorm scopes a bursty ICMP rate-limit storm to the pop
	// Event.Pop: TTL-exceeded drop probability rises by Event.Severity
	// on paths toward its addresses, pulsing with Event.Duty.
	RateStorm
	// RouteFlap remaps the last-hop choices of the /24 Event.Block with
	// a fresh per-epoch hash key, so the observed last-hop partition
	// churns mid-campaign.
	RouteFlap
	// Congestion inflates loss for probes sent from Event.Vantage
	// (or every vantage when Vantage < 0) by Event.Severity.
	Congestion
)

var kindNames = [...]string{"blackhole", "rate-storm", "route-flap", "congestion"}

// String returns the kind's stable lowercase name.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Event is one scheduled fault. Which scope and magnitude fields matter
// depends on Kind; Validate rejects combinations that don't.
type Event struct {
	Kind Kind
	// From and To bound the active epoch window, inclusive on both
	// ends. From <= To and From >= 0 are required.
	From, To int
	// Prefix scopes a Blackhole (any length; a /24 or finer withdraws
	// part of one block, a coarser prefix takes out many).
	Prefix iputil.Prefix
	// Pop scopes a RateStorm.
	Pop int32
	// Block scopes a RouteFlap.
	Block iputil.Block24
	// Vantage scopes a Congestion event; negative means every vantage.
	Vantage int
	// Severity is the additive probability boost for RateStorm and
	// Congestion events, in [0, 1].
	Severity float64
	// Duty is the fraction of active epochs a RateStorm actually fires
	// in (bursty storms come and go); 0 and 1 both mean "every epoch
	// in the window". The burst draw is keyed per (plan salt, event,
	// epoch), so it replays.
	Duty float64
}

// active reports whether the event's window covers the epoch.
func (e *Event) active(epoch int) bool {
	return epoch >= e.From && epoch <= e.To
}

// Plan is a declarative fault schedule.
type Plan struct {
	// Name labels the plan in telemetry and test output.
	Name string
	// Salt seeds the plan's burst and flap draws; two plans with equal
	// events but different salts flap to different last-hop maps.
	Salt uint64
	// Events are the scheduled faults; order is irrelevant to behavior.
	Events []Event
}

// Validate checks every event's window, scope, and magnitudes.
func (p *Plan) Validate() error {
	for i := range p.Events {
		e := &p.Events[i]
		if e.From < 0 || e.To < e.From {
			return fmt.Errorf("faultplan: event %d (%s): bad epoch window [%d, %d]", i, e.Kind, e.From, e.To)
		}
		if e.Severity < 0 || e.Severity > 1 {
			return fmt.Errorf("faultplan: event %d (%s): severity %v outside [0, 1]", i, e.Kind, e.Severity)
		}
		if e.Duty < 0 || e.Duty > 1 {
			return fmt.Errorf("faultplan: event %d (%s): duty %v outside [0, 1]", i, e.Kind, e.Duty)
		}
		switch e.Kind {
		case Blackhole:
			if e.Prefix.Len < 0 || e.Prefix.Len > 32 {
				return fmt.Errorf("faultplan: event %d (blackhole): prefix length %d outside [0, 32]", i, e.Prefix.Len)
			}
		case RateStorm:
			if e.Pop < 0 {
				return fmt.Errorf("faultplan: event %d (rate-storm): negative pop %d", i, e.Pop)
			}
			if e.Severity == 0 {
				return fmt.Errorf("faultplan: event %d (rate-storm): zero severity", i)
			}
		case RouteFlap:
			// Any block value is a valid scope.
		case Congestion:
			if e.Severity == 0 {
				return fmt.Errorf("faultplan: event %d (congestion): zero severity", i)
			}
		default:
			return fmt.Errorf("faultplan: event %d: unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// Compile validates the plan and freezes it into a Schedule.
func (p *Plan) Compile() (*Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{name: p.Name, salt: p.Salt}
	s.events = append(s.events, p.Events...)
	for i := range s.events {
		e := &s.events[i]
		switch e.Kind {
		case Blackhole:
			s.blackholes = append(s.blackholes, i)
		case RateStorm:
			s.storms = append(s.storms, i)
		case RouteFlap:
			s.flaps = append(s.flaps, i)
		case Congestion:
			s.congestion = append(s.congestion, i)
		}
	}
	return s, nil
}

// MustCompile compiles the plan and panics on validation errors;
// intended for tests and the built-in plans.
func MustCompile(p *Plan) *Schedule {
	s, err := p.Compile()
	if err != nil {
		panic(err)
	}
	return s
}

// saltBurst keys the per-epoch burst draw of a RateStorm.
const saltBurst = 0xfb01

// saltFlap keys the per-epoch last-hop remap of a RouteFlap.
const saltFlap = 0xfb02

// Schedule is a compiled, immutable Plan implementing netsim.FaultView.
// All query methods are pure, allocation-free, and safe for concurrent
// use; they scan per-kind index lists, which stay short in practice
// (plans describe scenarios, not packet traces).
type Schedule struct {
	name   string
	salt   uint64
	events []Event
	// Per-kind indexes into events.
	blackholes []int
	storms     []int
	flaps      []int
	congestion []int
}

// Name returns the plan's label.
func (s *Schedule) Name() string { return s.name }

// Events returns a copy of the compiled event list.
func (s *Schedule) Events() []Event {
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Blackholed implements netsim.FaultView.
//
//hobbit:hotpath
func (s *Schedule) Blackholed(epoch int, dst iputil.Addr) bool {
	for _, i := range s.blackholes {
		e := &s.events[i]
		if e.active(epoch) && e.Prefix.Contains(dst) {
			return true
		}
	}
	return false
}

// stormFiring reports whether the storm event bursts this epoch: always
// within its window at Duty 0 or 1, otherwise by a seeded draw keyed per
// (salt, event, epoch).
func (s *Schedule) stormFiring(i int, e *Event, epoch int) bool {
	if !e.active(epoch) {
		return false
	}
	if e.Duty == 0 || e.Duty == 1 {
		return true
	}
	return rng.Bool(e.Duty, s.salt, uint64(i), uint64(epoch), saltBurst)
}

// RateBoost implements netsim.FaultView. Overlapping storms on one pop
// stack additively; netsim caps the combined probability at 1.
//
//hobbit:hotpath
func (s *Schedule) RateBoost(epoch int, popID int32) float64 {
	var boost float64
	for _, i := range s.storms {
		e := &s.events[i]
		if e.Pop == popID && s.stormFiring(i, e, epoch) {
			boost += e.Severity
		}
	}
	return boost
}

// LossBoost implements netsim.FaultView.
//
//hobbit:hotpath
func (s *Schedule) LossBoost(epoch int, vantage int) float64 {
	var boost float64
	for _, i := range s.congestion {
		e := &s.events[i]
		if e.active(epoch) && (e.Vantage < 0 || e.Vantage == vantage) {
			boost += e.Severity
		}
	}
	return boost
}

// FlapKey implements netsim.FaultView. The key mixes (salt, event,
// epoch) so the remap churns every epoch of the window; when several
// flaps cover one block the lowest-indexed active event wins, keeping
// the answer order-independent.
//
//hobbit:hotpath
func (s *Schedule) FlapKey(epoch int, b iputil.Block24) (uint64, bool) {
	for _, i := range s.flaps {
		e := &s.events[i]
		if e.active(epoch) && e.Block == b {
			return rng.Mix(s.salt, uint64(i), uint64(epoch), saltFlap), true
		}
	}
	return 0, false
}
