package faultplan

import (
	"reflect"
	"testing"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/netsim"
)

func TestEpochDeltaScopes(t *testing.T) {
	blk := iputil.MustParseBlock24("10.1.2.0/24")
	pfx := iputil.MustParsePrefix("10.2.0.0/16")
	s := MustCompile(&Plan{
		Name: "delta",
		Salt: 1,
		Events: []Event{
			{Kind: RouteFlap, From: 2, To: 5, Block: blk},
			{Kind: Blackhole, From: 2, To: 5, Prefix: pfx},
			{Kind: RateStorm, From: 2, To: 5, Pop: 9, Severity: 0.5, Duty: 1},
			{Kind: Congestion, From: 8, To: 9, Vantage: 0, Severity: 0.3},
		},
	})

	if d := s.EpochDelta(3, 3); !reflect.DeepEqual(d, netsim.RouteDelta{}) {
		t.Fatalf("equal epochs: %+v, want empty", d)
	}
	// Fully outside every window: nothing changes.
	if d := s.EpochDelta(6, 7); !reflect.DeepEqual(d, netsim.RouteDelta{}) {
		t.Fatalf("outside windows: %+v, want empty", d)
	}
	// Inside the shared window: the flap re-draws every epoch, but the
	// blackhole and full-duty storm answer identically at both epochs.
	d := s.EpochDelta(3, 4)
	if !reflect.DeepEqual(d.Blocks, []iputil.Block24{blk}) || d.Prefixes != nil || d.Pops != nil || d.All {
		t.Fatalf("inside window: %+v, want only the flapped block", d)
	}
	// Across the window edge: everything toggles.
	d = s.EpochDelta(5, 6)
	if !reflect.DeepEqual(d.Blocks, []iputil.Block24{blk}) ||
		!reflect.DeepEqual(d.Prefixes, []iputil.Prefix{pfx}) ||
		!reflect.DeepEqual(d.Pops, []int32{9}) || d.All {
		t.Fatalf("window edge: %+v, want flap + prefix + pop", d)
	}
	// A congestion toggle is vantage-global: delta degrades to All.
	if d := s.EpochDelta(7, 8); !d.All {
		t.Fatalf("congestion onset: %+v, want All", d)
	}
}

func TestEpochDeltaBurstyStorm(t *testing.T) {
	s := MustCompile(&Plan{
		Name:   "bursty",
		Salt:   3,
		Events: []Event{{Kind: RateStorm, From: 0, To: 1 << 20, Pop: 4, Severity: 0.5, Duty: 0.5}},
	})
	// At duty 0.5 the firing draw must differ across some adjacent epoch
	// pair, and EpochDelta must mark the pop exactly when it does.
	toggled := false
	for e := 0; e < 32; e++ {
		want := s.stormFiring(0, &s.events[0], e) != s.stormFiring(0, &s.events[0], e+1)
		d := s.EpochDelta(e, e+1)
		got := len(d.Pops) == 1 && d.Pops[0] == 4
		if got != want {
			t.Fatalf("epochs (%d,%d): delta pop marked=%v, firing toggled=%v", e, e+1, got, want)
		}
		toggled = toggled || want
	}
	if !toggled {
		t.Fatal("bursty storm never toggled in 32 epochs")
	}
}

func TestChurnBuiltinDelta(t *testing.T) {
	w := testWorld(t)
	s, err := CompileBuiltin("churn", w)
	if err != nil {
		t.Fatal(err)
	}
	blocks, all := w2delta(t, w, s, 0, 1)
	if all {
		t.Fatal("churn delta degraded to all")
	}
	if len(blocks) == 0 {
		t.Fatal("churn plan changed no blocks between epochs 0 and 1")
	}
	if len(blocks) >= len(w.Blocks()) {
		t.Fatalf("churn delta covers the whole universe (%d of %d)", len(blocks), len(w.Blocks()))
	}
}

func w2delta(t *testing.T, w *netsim.World, s *Schedule, e1, e2 int) ([]iputil.Block24, bool) {
	t.Helper()
	w.SetFaults(s)
	defer w.SetFaults(nil)
	return w.EpochDelta(e1, e2)
}
