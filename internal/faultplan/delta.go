package faultplan

import (
	"github.com/hobbitscan/hobbit/internal/netsim"
)

// EpochDelta implements netsim.DeltaView: it names the scopes whose
// fault answers can differ between epochs e1 and e2, which is exactly
// the event list filtered by window membership and burst draws.
//
//   - A congestion event active in one epoch but not the other changes
//     the vantage's loss floor, which perturbs every measurement: the
//     delta degrades to All.
//   - A route flap active in either epoch marks its block: FlapKey
//     mixes the epoch into the remap key, so an active flap re-draws
//     the block's last-hop partition every epoch even when the window
//     covers both.
//   - A blackhole marks its prefix only when the window boundary falls
//     between the epochs (active(e1) != active(e2)); inside the window
//     the withdrawal answers identically.
//   - A rate storm marks its pop when the firing draw differs — window
//     edges and, for bursty storms (Duty in (0, 1)), the per-epoch
//     seeded burst toggle.
//
// The result is a conservative superset of the blocks whose
// measurements actually change; netsim.World.EpochDelta expands it
// against the block universe.
func (s *Schedule) EpochDelta(e1, e2 int) netsim.RouteDelta {
	var d netsim.RouteDelta
	if e1 == e2 {
		return d
	}
	for _, i := range s.congestion {
		e := &s.events[i]
		if e.active(e1) != e.active(e2) {
			d.All = true
			return d
		}
	}
	for _, i := range s.flaps {
		e := &s.events[i]
		if e.active(e1) || e.active(e2) {
			d.Blocks = append(d.Blocks, e.Block)
		}
	}
	for _, i := range s.blackholes {
		e := &s.events[i]
		if e.active(e1) != e.active(e2) {
			d.Prefixes = append(d.Prefixes, e.Prefix)
		}
	}
	for _, i := range s.storms {
		e := &s.events[i]
		if s.stormFiring(i, e, e1) != s.stormFiring(i, e, e2) {
			d.Pops = append(d.Pops, e.Pop)
		}
	}
	return d
}

// Schedule must keep satisfying the monitoring mode's delta interface.
var _ netsim.DeltaView = (*Schedule)(nil)
