package faultplan

import (
	"reflect"
	"testing"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/netsim"
)

func block(s string) iputil.Block24 {
	a, err := iputil.ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a.Block24()
}

func TestValidate(t *testing.T) {
	valid := Plan{Name: "ok", Events: []Event{
		{Kind: Blackhole, From: 0, To: 2, Prefix: iputil.PrefixOf(0x01020300, 24)},
		{Kind: RateStorm, From: 1, To: 1, Pop: 3, Severity: 0.5, Duty: 0.5},
		{Kind: RouteFlap, From: 0, To: 9, Block: block("1.2.3.0")},
		{Kind: Congestion, From: 0, To: 0, Vantage: -1, Severity: 0.1},
	}}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	cases := []struct {
		name string
		ev   Event
	}{
		{"negative from", Event{Kind: RouteFlap, From: -1, To: 2}},
		{"inverted window", Event{Kind: RouteFlap, From: 3, To: 1}},
		{"severity above one", Event{Kind: Congestion, Severity: 1.5}},
		{"negative severity", Event{Kind: Congestion, Severity: -0.1}},
		{"duty above one", Event{Kind: RateStorm, Severity: 0.5, Duty: 2}},
		{"bad prefix length", Event{Kind: Blackhole, Prefix: iputil.Prefix{Len: 40}}},
		{"negative pop", Event{Kind: RateStorm, Pop: -1, Severity: 0.5}},
		{"zero-severity storm", Event{Kind: RateStorm, Pop: 1}},
		{"zero-severity congestion", Event{Kind: Congestion}},
		{"unknown kind", Event{Kind: Kind(42)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Plan{Events: []Event{tc.ev}}
			if err := p.Validate(); err == nil {
				t.Errorf("event %+v accepted", tc.ev)
			}
			if _, err := p.Compile(); err == nil {
				t.Errorf("event %+v compiled", tc.ev)
			}
		})
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile accepted an invalid plan")
		}
	}()
	MustCompile(&Plan{Events: []Event{{Kind: Kind(-1)}}})
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Blackhole: "blackhole", RateStorm: "rate-storm",
		RouteFlap: "route-flap", Congestion: "congestion",
		Kind(99): "kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestBlackholeWindow(t *testing.T) {
	b := block("10.0.1.0")
	s := MustCompile(&Plan{Events: []Event{
		{Kind: Blackhole, From: 2, To: 4, Prefix: iputil.PrefixOf(b.Addr(0), 24)},
	}})
	inside := b.Addr(7)
	outside := block("10.0.2.0").Addr(7)
	for epoch := 0; epoch < 7; epoch++ {
		want := epoch >= 2 && epoch <= 4
		if got := s.Blackholed(epoch, inside); got != want {
			t.Errorf("epoch %d: Blackholed(inside) = %v, want %v", epoch, got, want)
		}
		if s.Blackholed(epoch, outside) {
			t.Errorf("epoch %d: address outside the prefix blackholed", epoch)
		}
	}
}

func TestRateBoostStacksAndBursts(t *testing.T) {
	s := MustCompile(&Plan{Salt: 1, Events: []Event{
		{Kind: RateStorm, From: 0, To: 9, Pop: 5, Severity: 0.3, Duty: 1},
		{Kind: RateStorm, From: 0, To: 9, Pop: 5, Severity: 0.2, Duty: 1},
		{Kind: RateStorm, From: 0, To: 9, Pop: 6, Severity: 0.4, Duty: 1},
	}})
	if got := s.RateBoost(3, 5); got != 0.5 {
		t.Errorf("stacked boost = %v, want 0.5", got)
	}
	if got := s.RateBoost(3, 6); got != 0.4 {
		t.Errorf("boost = %v, want 0.4", got)
	}
	if got := s.RateBoost(3, 7); got != 0 {
		t.Errorf("unstormed pop boosted by %v", got)
	}
	if got := s.RateBoost(10, 5); got != 0 {
		t.Errorf("boost outside window = %v", got)
	}

	// A duty-cycled storm must fire on some epochs and skip others, and
	// replay identically.
	bursty := MustCompile(&Plan{Salt: 2, Events: []Event{
		{Kind: RateStorm, From: 0, To: 499, Pop: 1, Severity: 0.5, Duty: 0.5},
	}})
	on, off := 0, 0
	for epoch := 0; epoch < 500; epoch++ {
		got := bursty.RateBoost(epoch, 1)
		if got != 0 && got != 0.5 {
			t.Fatalf("epoch %d: boost %v is neither 0 nor severity", epoch, got)
		}
		if got == 0.5 {
			on++
		} else {
			off++
		}
		if again := bursty.RateBoost(epoch, 1); again != got {
			t.Fatalf("epoch %d: burst draw not stable (%v then %v)", epoch, got, again)
		}
	}
	if on == 0 || off == 0 {
		t.Errorf("duty-0.5 storm fired %d/500 epochs; want a genuine burst pattern", on)
	}
}

func TestLossBoostVantageScope(t *testing.T) {
	s := MustCompile(&Plan{Events: []Event{
		{Kind: Congestion, From: 0, To: 5, Vantage: 1, Severity: 0.2},
		{Kind: Congestion, From: 3, To: 3, Vantage: -1, Severity: 0.1},
	}})
	if got := s.LossBoost(0, 1); got != 0.2 {
		t.Errorf("vantage 1 boost = %v, want 0.2", got)
	}
	if got := s.LossBoost(0, 0); got != 0 {
		t.Errorf("vantage 0 boosted by %v", got)
	}
	if got := s.LossBoost(3, 0); got != 0.1 {
		t.Errorf("all-vantage boost = %v, want 0.1", got)
	}
	if got := s.LossBoost(3, 1); got < 0.3-1e-12 || got > 0.3+1e-12 {
		t.Errorf("stacked boost = %v, want 0.3", got)
	}
	if got := s.LossBoost(6, 1); got != 0 {
		t.Errorf("boost outside window = %v", got)
	}
}

func TestFlapKeyChurnsPerEpoch(t *testing.T) {
	b := block("192.168.1.0")
	s := MustCompile(&Plan{Salt: 3, Events: []Event{
		{Kind: RouteFlap, From: 1, To: 3, Block: b},
	}})
	if _, ok := s.FlapKey(0, b); ok {
		t.Error("flap active before its window")
	}
	if _, ok := s.FlapKey(4, b); ok {
		t.Error("flap active after its window")
	}
	if _, ok := s.FlapKey(2, block("192.168.2.0")); ok {
		t.Error("flap active for another block")
	}
	k1, ok1 := s.FlapKey(1, b)
	k2, ok2 := s.FlapKey(2, b)
	if !ok1 || !ok2 {
		t.Fatal("flap inactive inside its window")
	}
	if k1 == k2 {
		t.Error("flap key did not churn across epochs")
	}
	if again, _ := s.FlapKey(1, b); again != k1 {
		t.Error("flap key not stable within an epoch")
	}
	// Distinct salts must remap differently (plan identity matters).
	other := MustCompile(&Plan{Salt: 4, Events: []Event{
		{Kind: RouteFlap, From: 1, To: 3, Block: b},
	}})
	if k, _ := other.FlapKey(1, b); k == k1 {
		t.Error("different plan salts produced the same flap key")
	}
}

func TestScheduleAccessors(t *testing.T) {
	p := &Plan{Name: "n", Events: []Event{{Kind: RouteFlap, From: 0, To: 1}}}
	s := MustCompile(p)
	if s.Name() != "n" {
		t.Errorf("Name() = %q", s.Name())
	}
	evs := s.Events()
	if !reflect.DeepEqual(evs, p.Events) {
		t.Errorf("Events() = %+v, want %+v", evs, p.Events)
	}
	// The copy must be detached from the schedule.
	evs[0].To = 99
	if s.events[0].To != 1 {
		t.Error("Events() aliases the schedule's own slice")
	}
}

func testWorld(t *testing.T) *netsim.World {
	t.Helper()
	cfg := netsim.DefaultConfig(120)
	cfg.BigBlockScale = 0.02
	w, err := netsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuiltins(t *testing.T) {
	w := testWorld(t)
	for _, name := range BuiltinNames() {
		p, err := Builtin(name, w)
		if err != nil {
			t.Fatalf("Builtin(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("plan name %q, want %q", p.Name, name)
		}
		if name != "baseline" && len(p.Events) == 0 {
			t.Errorf("built-in %q derived no events", name)
		}
		if _, err := p.Compile(); err != nil {
			t.Errorf("built-in %q does not compile: %v", name, err)
		}
		// Derivation is deterministic in the world.
		again, err := Builtin(name, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, again) {
			t.Errorf("built-in %q not deterministic", name)
		}
	}
	if _, err := Builtin("no-such-plan", w); err == nil {
		t.Error("unknown built-in accepted")
	}
	if _, err := CompileBuiltin("no-such-plan", w); err == nil {
		t.Error("CompileBuiltin accepted unknown name")
	}
	if _, err := CompileBuiltin("blackhole", w); err != nil {
		t.Errorf("CompileBuiltin(blackhole): %v", err)
	}
}
