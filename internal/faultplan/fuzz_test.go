package faultplan

import (
	"encoding/binary"
	"testing"

	"github.com/hobbitscan/hobbit/internal/iputil"
)

// decodeEvents deterministically turns fuzz bytes into an event list,
// deliberately covering invalid shapes too (negative windows, overlong
// prefixes, out-of-range severities) so Compile's rejection paths fuzz
// alongside the accepted ones.
func decodeEvents(data []byte) []Event {
	const eventBytes = 16
	n := len(data) / eventBytes
	if n > 64 {
		n = 64
	}
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		c := data[i*eventBytes : (i+1)*eventBytes]
		from := int(int8(c[1])) // negative froms exercise validation
		e := Event{
			Kind:     Kind(int(c[0]%6) - 1), // includes two invalid kinds
			From:     from,
			To:       from + int(int8(c[2])),
			Pop:      int32(int8(c[3])),
			Vantage:  int(int8(c[4])) % 4,
			Severity: float64(c[5]) / 128, // up to 2.0 ⇒ some invalid
			Duty:     float64(c[6]) / 200,
			Prefix: iputil.Prefix{
				Base: iputil.Addr(binary.LittleEndian.Uint32(c[7:11])),
				Len:  int(c[11]%40) - 2, // includes invalid lengths
			},
			Block: iputil.Addr(binary.LittleEndian.Uint32(c[12:16])).Block24(),
		}
		// Prefix bases must be aligned for Contains to mean anything;
		// leave some unaligned on purpose (Compile must still not panic).
		if c[11]%2 == 0 && e.Prefix.Len >= 0 && e.Prefix.Len <= 32 {
			e.Prefix.Base &= e.Prefix.Mask()
		}
		events = append(events, e)
	}
	return events
}

// FuzzPlanSchedule checks the schedule's safety contract over arbitrary
// event sequences: compiling never panics; compiled schedules never let
// an event fire outside its epoch window; and every answer replays
// identically for a fixed plan.
func FuzzPlanSchedule(f *testing.F) {
	f.Add([]byte{}, uint64(0))
	f.Add(make([]byte, 16), uint64(1))
	f.Add([]byte{
		1, 0, 3, 5, 0, 60, 100, 0, 1, 2, 3, 24, 9, 8, 7, 6,
		3, 2, 2, 1, 1, 30, 50, 4, 4, 4, 4, 26, 1, 2, 3, 4,
	}, uint64(0x40bb17))
	f.Fuzz(func(t *testing.T, data []byte, salt uint64) {
		events := decodeEvents(data)
		plan := &Plan{Name: "fuzz", Salt: salt, Events: events}
		s, err := plan.Compile() // must not panic, ever
		if err != nil {
			return
		}
		twin := MustCompile(plan)

		// Probe a grid of epochs and scopes around every event's window.
		addrs := []iputil.Addr{0, 0x01020304, 0xfffffffe}
		for _, e := range events {
			addrs = append(addrs, e.Prefix.Base, e.Block.Addr(3))
		}
		for _, e := range events {
			for _, epoch := range []int{e.From - 1, e.From, e.To, e.To + 1, 0, 1000000} {
				if epoch < 0 {
					continue
				}
				inWindow := epoch >= e.From && epoch <= e.To
				for _, a := range addrs {
					got := s.Blackholed(epoch, a)
					if got != twin.Blackholed(epoch, a) {
						t.Fatalf("Blackholed(%d, %v) does not replay", epoch, a)
					}
					if got && !s.anyActive(epoch, Blackhole) {
						t.Fatalf("blackhole fired at epoch %d with no active event", epoch)
					}
					key, ok := s.FlapKey(epoch, a.Block24())
					key2, ok2 := twin.FlapKey(epoch, a.Block24())
					if ok != ok2 || key != key2 {
						t.Fatalf("FlapKey(%d, %v) does not replay", epoch, a.Block24())
					}
					if ok && !s.anyActive(epoch, RouteFlap) {
						t.Fatalf("flap fired at epoch %d with no active event", epoch)
					}
				}
				for _, pop := range []int32{e.Pop, 0, 127} {
					b := s.RateBoost(epoch, pop)
					if b != twin.RateBoost(epoch, pop) {
						t.Fatalf("RateBoost(%d, %d) does not replay", epoch, pop)
					}
					if b != 0 && !s.anyActive(epoch, RateStorm) {
						t.Fatalf("storm boosted at epoch %d with no active event", epoch)
					}
					if b < 0 {
						t.Fatalf("negative rate boost %v", b)
					}
				}
				for _, v := range []int{e.Vantage, -1, 0, 3} {
					b := s.LossBoost(epoch, v)
					if b != twin.LossBoost(epoch, v) {
						t.Fatalf("LossBoost(%d, %d) does not replay", epoch, v)
					}
					if b != 0 && !s.anyActive(epoch, Congestion) {
						t.Fatalf("congestion boosted at epoch %d with no active event", epoch)
					}
					if b < 0 {
						t.Fatalf("negative loss boost %v", b)
					}
				}
				// An event entirely alone must be silent outside its
				// own window — the sharpest form of the no-fire rule.
				single := MustCompile(&Plan{Salt: salt, Events: []Event{e}})
				if !inWindow {
					for _, a := range addrs {
						if single.Blackholed(epoch, a) {
							t.Fatalf("lone blackhole fired outside [%d, %d] at %d", e.From, e.To, epoch)
						}
						if _, ok := single.FlapKey(epoch, a.Block24()); ok {
							t.Fatalf("lone flap fired outside [%d, %d] at %d", e.From, e.To, epoch)
						}
					}
					if single.RateBoost(epoch, e.Pop) != 0 {
						t.Fatalf("lone storm fired outside [%d, %d] at %d", e.From, e.To, epoch)
					}
					if single.LossBoost(epoch, e.Vantage) != 0 {
						t.Fatalf("lone congestion fired outside [%d, %d] at %d", e.From, e.To, epoch)
					}
				}
			}
		}
	})
}

// anyActive reports whether any event of the kind covers the epoch;
// test-only helper backing the fuzz no-fire property.
func (s *Schedule) anyActive(epoch int, k Kind) bool {
	for i := range s.events {
		if s.events[i].Kind == k && s.events[i].active(epoch) {
			return true
		}
	}
	return false
}
