package faultplan

import (
	"fmt"
	"sort"

	"github.com/hobbitscan/hobbit/internal/iputil"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/rng"
)

// Built-in plans: one canonical scenario per event kind, plus a clean
// baseline. Scopes are drawn deterministically from the world itself
// (its block universe, pop map, and seed), so a given (world, name)
// pair always yields the same plan — the accuracy harness and the
// -fault-plan CLI flag both rely on that.

// Builtin scope fractions and magnitudes. Moderate severities: the
// point of the harness is that inference survives adversity, so the
// scenarios must hurt without flattening the signal entirely.
const (
	builtinWindowFrom = 0 // active from the clean baseline epoch
	builtinWindowTo   = 2 // recovered by SetEpoch(3)

	blackholeFrac = 0.04 // fraction of /24s withdrawn
	stormPopFrac  = 0.25 // fraction of pops under a rate storm
	stormSeverity = 0.60 // additive TTL-exceeded drop probability
	flapFrac      = 0.10 // fraction of /24s with flapping last hops
	congSeverity  = 0.30 // additive loss for the affected vantage

	// The churn plan never recovers: the monitoring mode advances fault
	// epochs indefinitely, so its windows are effectively unbounded.
	churnWindowTo = 1 << 20
	churnFlapFrac = 0.04 // fraction of /24s flapping every epoch
	churnPopFrac  = 0.06 // fraction of pops under a bursty storm
	churnDuty     = 0.50 // storms toggle roughly every other epoch
)

// Salts for the deterministic scope draws.
const (
	saltPickBlackhole = 0xb1
	saltPickStorm     = 0xb2
	saltPickFlap      = 0xb3
	saltPickChurn     = 0xb4
)

// BuiltinNames lists the built-in plan names in canonical order.
func BuiltinNames() []string {
	return []string{"baseline", "blackhole", "rate-storm", "flap", "congestion", "churn"}
}

// Builtin derives the named built-in plan from the world. Unknown names
// return an error listing the valid set.
func Builtin(name string, w *netsim.World) (*Plan, error) {
	seed := w.Config().Seed
	p := &Plan{Name: name, Salt: rng.Mix(seed, 0xfa17)}
	switch name {
	case "baseline":
		// No events: the control arm of every harness comparison.
	case "blackhole":
		for _, b := range w.Blocks() {
			if rng.Bool(blackholeFrac, seed, uint64(b), saltPickBlackhole) {
				p.Events = append(p.Events, Event{
					Kind:   Blackhole,
					From:   builtinWindowFrom,
					To:     builtinWindowTo,
					Prefix: iputil.PrefixOf(b.Addr(0), 24),
				})
			}
		}
	case "rate-storm":
		for _, popID := range worldPops(w) {
			if rng.Bool(stormPopFrac, seed, uint64(popID), saltPickStorm) {
				p.Events = append(p.Events, Event{
					Kind:     RateStorm,
					From:     builtinWindowFrom,
					To:       builtinWindowTo,
					Pop:      popID,
					Severity: stormSeverity,
					Duty:     1,
				})
			}
		}
	case "flap":
		for _, b := range w.Blocks() {
			if rng.Bool(flapFrac, seed, uint64(b), saltPickFlap) {
				p.Events = append(p.Events, Event{
					Kind:  RouteFlap,
					From:  builtinWindowFrom,
					To:    builtinWindowTo,
					Block: b,
				})
			}
		}
	case "congestion":
		// Vantage 0 is the one the pipeline probes from.
		p.Events = append(p.Events, Event{
			Kind:     Congestion,
			From:     builtinWindowFrom,
			To:       builtinWindowTo,
			Vantage:  0,
			Severity: congSeverity,
		})
	case "churn":
		// The continuous-monitoring scenario: a minority of blocks flap
		// every epoch (FlapKey re-draws per epoch inside the window) and
		// a few pops ride bursty rate storms that toggle between epochs,
		// with no recovery horizon. Unlike the single-kind scenarios this
		// one is built for EpochDelta: each epoch's changed set is small
		// relative to the universe, so the monitor's selective reprobe
		// has something to prove.
		for _, b := range w.Blocks() {
			if rng.Bool(churnFlapFrac, seed, uint64(b), saltPickChurn) {
				p.Events = append(p.Events, Event{
					Kind:  RouteFlap,
					From:  builtinWindowFrom,
					To:    churnWindowTo,
					Block: b,
				})
			}
		}
		for _, popID := range worldPops(w) {
			if rng.Bool(churnPopFrac, seed, uint64(popID), saltPickChurn) {
				p.Events = append(p.Events, Event{
					Kind:     RateStorm,
					From:     builtinWindowFrom,
					To:       churnWindowTo,
					Pop:      popID,
					Severity: stormSeverity,
					Duty:     churnDuty,
				})
			}
		}
	default:
		return nil, fmt.Errorf("faultplan: unknown built-in plan %q (have %v)", name, BuiltinNames())
	}
	return p, nil
}

// CompileBuiltin derives and compiles the named built-in plan.
func CompileBuiltin(name string, w *netsim.World) (*Schedule, error) {
	p, err := Builtin(name, w)
	if err != nil {
		return nil, err
	}
	return p.Compile()
}

// worldPops returns the sorted distinct pop ids serving the world's
// blocks (sorted so event order — and thus plan equality — is stable).
func worldPops(w *netsim.World) []int32 {
	seen := make(map[int32]bool)
	var pops []int32
	for _, b := range w.Blocks() {
		for i := 0; i < 256; i++ {
			id, ok := w.PopOfAddr(b.Addr(i))
			if ok && !seen[id] {
				seen[id] = true
				pops = append(pops, id)
			}
		}
	}
	sort.Slice(pops, func(i, j int) bool { return pops[i] < pops[j] })
	return pops
}
