package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	var c CDF
	if c.At(1) != 0 {
		t.Error("empty CDF At should be 0")
	}
	c.AddAll([]float64{1, 2, 3, 4})
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	if got := c.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %v", got)
	}
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %v, want 0.5 (inclusive)", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v", got)
	}
	if got := c.Median(); got != 2 {
		t.Errorf("Median = %v", got)
	}
	if got := c.Mean(); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if c.Min() != 1 || c.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", c.Min(), c.Max())
	}
}

func TestCDFQuantileEdges(t *testing.T) {
	var c CDF
	c.AddAll([]float64{5})
	if c.Quantile(0) != 5 || c.Quantile(1) != 5 || c.Quantile(0.5) != 5 {
		t.Error("singleton quantiles should all be 5")
	}
	defer func() {
		if recover() == nil {
			t.Error("Quantile of empty CDF should panic")
		}
	}()
	(&CDF{}).Quantile(0.5)
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var c CDF
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				c.Add(v)
			}
		}
		if c.N() == 0 {
			return true
		}
		prev := -1.0
		for _, p := range c.Points(16) {
			if p.Y < prev-1e-12 {
				return false
			}
			prev = p.Y
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFAddAfterQuery(t *testing.T) {
	var c CDF
	c.Add(2)
	_ = c.At(2) // force sort
	c.Add(1)    // must re-sort lazily
	if got := c.Min(); got != 1 {
		t.Errorf("Min after late Add = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 1, 2, 5, 5, 5, 17} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(5) != 3 {
		t.Errorf("Count(5) = %d", h.Count(5))
	}
	if got := h.Values(); len(got) != 4 || got[0] != 1 || got[3] != 17 {
		t.Errorf("Values = %v", got)
	}
	if h.CountAtLeast(5) != 4 {
		t.Errorf("CountAtLeast(5) = %d", h.CountAtLeast(5))
	}
}

func TestHistogramPowBuckets(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 1, 2, 3, 4, 7, 8, 1024, 0, -3} {
		h.Add(v)
	}
	got := h.PowBuckets()
	want := map[int]int{0: 2, 1: 2, 2: 2, 3: 1, 10: 1}
	if len(got) != len(want) {
		t.Fatalf("PowBuckets = %v", got)
	}
	for _, bc := range got {
		if want[bc.Exp] != bc.Count {
			t.Errorf("bucket 2^%d = %d, want %d", bc.Exp, bc.Count, want[bc.Exp])
		}
	}
}

func TestSampleSizePaperValue(t *testing.T) {
	// The paper: 99% confidence, 1% margin, 50% proportion -> 16,588.
	n, err := SampleSize(0.99, 0.01, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 16588 {
		t.Errorf("SampleSize = %d, want 16588", n)
	}
}

func TestSampleSizeErrors(t *testing.T) {
	if _, err := SampleSize(0.87, 0.01, 0.5); err == nil {
		t.Error("unsupported confidence should error")
	}
	if _, err := SampleSize(0.99, 0, 0.5); err == nil {
		t.Error("zero margin should error")
	}
	if _, err := SampleSize(0.99, 0.01, 1.5); err == nil {
		t.Error("out-of-range proportion should error")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(1, 4); got != "25.0%" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Ratio(1, 0); got != "n/a" {
		t.Errorf("Ratio div-by-zero = %q", got)
	}
}

func TestRenderCDF(t *testing.T) {
	var c CDF
	if got := c.RenderCDF(8); got != "(empty)" {
		t.Errorf("empty render = %q", got)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		c.Add(rng.Float64())
	}
	s := []rune(c.RenderCDF(12))
	if len(s) != 12 {
		t.Errorf("render width = %d", len(s))
	}
}
