// Package stats provides the small statistical toolkit used by the Hobbit
// pipeline and its evaluation harness: empirical CDFs, histograms,
// percentiles, and the Cochran sample-size computation the paper uses to
// size its combination samples (16,588 points for a 99% confidence level
// and 1% margin of error).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples. The
// zero value is ready to use.
type CDF struct {
	samples []float64
	sorted  bool
}

// Add appends one sample.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// AddAll appends many samples.
func (c *CDF) AddAll(vs []float64) {
	c.samples = append(c.samples, vs...)
	c.sorted = false
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.samples) }

func (c *CDF) sortSamples() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// At returns P(X <= v), the fraction of samples less than or equal to v.
// It returns 0 for an empty CDF.
func (c *CDF) At(v float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sortSamples()
	i := sort.SearchFloat64s(c.samples, v)
	// Advance past equal samples so that At is inclusive.
	for i < len(c.samples) && c.samples[i] == v {
		i++
	}
	return float64(i) / float64(len(c.samples))
}

// Quantile returns the q-th quantile (0 <= q <= 1) using the nearest-rank
// method. It panics on an empty CDF.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		panic("stats: Quantile of empty CDF")
	}
	c.sortSamples()
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	rank := int(math.Ceil(q*float64(len(c.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c.samples[rank]
}

// Median returns the 0.5 quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Mean returns the arithmetic mean, or 0 for an empty CDF.
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// Min returns the smallest sample. It panics on an empty CDF.
func (c *CDF) Min() float64 {
	if len(c.samples) == 0 {
		panic("stats: Min of empty CDF")
	}
	c.sortSamples()
	return c.samples[0]
}

// Max returns the largest sample. It panics on an empty CDF.
func (c *CDF) Max() float64 {
	if len(c.samples) == 0 {
		panic("stats: Max of empty CDF")
	}
	c.sortSamples()
	return c.samples[len(c.samples)-1]
}

// Points renders the CDF as n evenly spaced (x, P(X<=x)) pairs between the
// minimum and maximum sample, suitable for plotting a figure series. For an
// empty CDF it returns nil.
func (c *CDF) Points(n int) []Point {
	if len(c.samples) == 0 || n <= 0 {
		return nil
	}
	c.sortSamples()
	lo, hi := c.samples[0], c.samples[len(c.samples)-1]
	pts := make([]Point, 0, n)
	if n == 1 || lo == hi {
		return append(pts, Point{X: hi, Y: 1})
	}
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		x := lo + float64(i)*step
		pts = append(pts, Point{X: x, Y: c.At(x)})
	}
	return pts
}

// Point is one (x, y) sample of a rendered distribution series.
type Point struct{ X, Y float64 }

// Histogram counts integer-valued observations, used for the size
// distributions of Figures 5 and 10.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add increments the count of value v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// Count returns the number of observations equal to v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the total number of observations.
func (h *Histogram) Total() int { return h.total }

// Values returns the observed values in ascending order.
func (h *Histogram) Values() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// CountAtLeast returns the number of observations >= v.
func (h *Histogram) CountAtLeast(v int) int {
	n := 0
	for val, c := range h.counts {
		if val >= v {
			n += c
		}
	}
	return n
}

// PowBuckets groups counts into power-of-two buckets [2^k, 2^(k+1)) and
// returns (bucket exponent, count) pairs in ascending order, matching the
// log-scaled x axes of Figures 5 and 10. Values < 1 are ignored.
func (h *Histogram) PowBuckets() []BucketCount {
	buckets := make(map[int]int)
	for v, c := range h.counts {
		if v < 1 {
			continue
		}
		k := 0
		for (1 << (k + 1)) <= v {
			k++
		}
		buckets[k] += c
	}
	ks := make([]int, 0, len(buckets))
	for k := range buckets {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	out := make([]BucketCount, 0, len(ks))
	for _, k := range ks {
		out = append(out, BucketCount{Exp: k, Count: buckets[k]})
	}
	return out
}

// BucketCount is the count of observations in the bucket [2^Exp, 2^(Exp+1)).
type BucketCount struct {
	Exp   int
	Count int
}

// zForConfidence maps the confidence levels the paper's sampling reference
// (Thompson, "Sampling") tabulates to standard normal critical values.
var zForConfidence = map[float64]float64{
	0.90:  1.6448536,
	0.95:  1.9599640,
	0.99:  2.5758293,
	0.999: 3.2905267,
}

// SampleSize computes the Cochran sample size for estimating a proportion:
// n = z^2 p(1-p) / e^2, for confidence level conf (one of .90/.95/.99/.999),
// margin of error e, and proportion estimate p, assuming infinite
// population. The paper's parameters (99%, 1%, 0.5) yield 16,588.
func SampleSize(conf, margin, proportion float64) (int, error) {
	z, ok := zForConfidence[conf]
	if !ok {
		return 0, fmt.Errorf("stats: unsupported confidence level %v", conf)
	}
	if margin <= 0 || margin >= 1 {
		return 0, fmt.Errorf("stats: margin of error %v out of range", margin)
	}
	if proportion < 0 || proportion > 1 {
		return 0, fmt.Errorf("stats: proportion %v out of range", proportion)
	}
	n := z * z * proportion * (1 - proportion) / (margin * margin)
	return int(math.Ceil(n)), nil
}

// Ratio formats a/b as a percentage string for report tables, guarding
// against division by zero.
func Ratio(a, b int) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(a)/float64(b))
}

// RenderCDF renders a compact ASCII sparkline of the CDF between its min
// and max, for terminal reports. Width is the number of columns.
func (c *CDF) RenderCDF(width int) string {
	pts := c.Points(width)
	if pts == nil {
		return "(empty)"
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, p := range pts {
		idx := int(p.Y * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
