package iputil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if p.Base != MustParseAddr("10.0.0.0") || p.Len != 8 {
		t.Fatalf("ParsePrefix = %+v", p)
	}
	if p.String() != "10.0.0.0/8" {
		t.Errorf("String = %q", p.String())
	}
	for _, bad := range []string{"10.0.0.1/8", "10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "x/8"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("192.0.2.128/25")
	if !p.Contains(MustParseAddr("192.0.2.200")) {
		t.Error("should contain .200")
	}
	if p.Contains(MustParseAddr("192.0.2.100")) {
		t.Error("should not contain .100")
	}
	if p.First() != MustParseAddr("192.0.2.128") || p.Last() != MustParseAddr("192.0.2.255") {
		t.Errorf("First/Last = %v/%v", p.First(), p.Last())
	}
	if p.Size() != 128 {
		t.Errorf("Size = %d", p.Size())
	}
}

func TestPrefixHierarchy(t *testing.T) {
	parent := MustParsePrefix("10.0.0.0/8")
	child := MustParsePrefix("10.1.0.0/16")
	sibling := MustParsePrefix("11.0.0.0/8")
	if !parent.ContainsPrefix(child) {
		t.Error("parent should contain child")
	}
	if child.ContainsPrefix(parent) {
		t.Error("child should not contain parent")
	}
	if !parent.Overlaps(child) || !child.Overlaps(parent) {
		t.Error("parent/child should overlap")
	}
	if parent.Overlaps(sibling) {
		t.Error("siblings should not overlap")
	}
}

func TestPrefixOfCanonical(t *testing.T) {
	f := func(a uint32, n uint8) bool {
		ln := int(n % 33)
		p := PrefixOf(Addr(a), ln)
		return p.Contains(Addr(a)) || ln == 0 && p.Contains(Addr(a)) // /0 contains all
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// /0 contains everything.
	if !PrefixOf(0, 0).Contains(0xffffffff) {
		t.Error("/0 should contain 255.255.255.255")
	}
}

func TestRangeOf(t *testing.T) {
	addrs := []Addr{
		MustParseAddr("10.0.0.9"),
		MustParseAddr("10.0.0.3"),
		MustParseAddr("10.0.0.200"),
	}
	r := RangeOf(addrs)
	if r.Lo != MustParseAddr("10.0.0.3") || r.Hi != MustParseAddr("10.0.0.200") {
		t.Fatalf("RangeOf = %v", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("RangeOf(empty) should panic")
		}
	}()
	RangeOf(nil)
}

func TestRangeHierarchical(t *testing.T) {
	mk := func(lo, hi int) Range {
		base := MustParseAddr("10.0.0.0")
		return Range{Lo: base + Addr(lo), Hi: base + Addr(hi)}
	}
	cases := []struct {
		a, b Range
		want bool
	}{
		{mk(0, 10), mk(11, 20), true},  // disjoint siblings
		{mk(0, 100), mk(10, 20), true}, // inclusion
		{mk(10, 20), mk(0, 100), true}, // inclusion reversed
		{mk(0, 15), mk(10, 20), false}, // partial overlap -> non-hierarchical
		{mk(10, 20), mk(0, 15), false}, // partial overlap reversed
		{mk(5, 5), mk(5, 5), true},     // identical singletons include each other
		{mk(0, 20), mk(20, 40), false}, // share a single endpoint: overlap, no inclusion
		{mk(0, 20), mk(0, 40), true},   // shared lo endpoint: inclusion
	}
	for i, c := range cases {
		if got := c.a.Hierarchical(c.b); got != c.want {
			t.Errorf("case %d: Hierarchical(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
		if got := c.b.Hierarchical(c.a); got != c.want {
			t.Errorf("case %d (sym): Hierarchical(%v, %v) = %v, want %v", i, c.b, c.a, got, c.want)
		}
	}
}

func TestEnclosingPrefix(t *testing.T) {
	addrs := []Addr{MustParseAddr("10.0.0.2"), MustParseAddr("10.0.0.125")}
	p := EnclosingPrefix(addrs)
	if p != MustParsePrefix("10.0.0.0/25") {
		t.Errorf("EnclosingPrefix = %v, want 10.0.0.0/25", p)
	}
	one := EnclosingPrefix([]Addr{MustParseAddr("10.0.0.7")})
	if one != MustParsePrefix("10.0.0.7/32") {
		t.Errorf("singleton EnclosingPrefix = %v", one)
	}
	// The paper's example: .129-.254 is enclosed by .128/25.
	hi := EnclosingPrefix([]Addr{MustParseAddr("10.0.0.129"), MustParseAddr("10.0.0.254")})
	if hi != MustParsePrefix("10.0.0.128/25") {
		t.Errorf("upper half EnclosingPrefix = %v", hi)
	}
}

func TestEnclosingPrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(8)
		addrs := make([]Addr, n)
		base := Addr(rng.Uint32())
		for j := range addrs {
			addrs[j] = base + Addr(rng.Intn(256))
		}
		p := EnclosingPrefix(addrs)
		for _, a := range addrs {
			if !p.Contains(a) {
				t.Fatalf("enclosing prefix %v does not contain %v", p, a)
			}
		}
		// Minimality: the prefix one bit longer cannot contain all addresses
		// unless all addresses are equal and p is /32.
		if p.Len < 32 {
			narrower := PrefixOf(addrs[0], p.Len+1)
			all := true
			for _, a := range addrs {
				if !narrower.Contains(a) {
					all = false
					break
				}
			}
			if all {
				t.Fatalf("enclosing prefix %v is not minimal for %v", p, addrs)
			}
		}
	}
}

func TestSorting(t *testing.T) {
	addrs := []Addr{3, 1, 2}
	SortAddrs(addrs)
	if addrs[0] != 1 || addrs[2] != 3 {
		t.Errorf("SortAddrs = %v", addrs)
	}
	blocks := []Block24{9, 4, 6}
	SortBlocks(blocks)
	if blocks[0] != 4 || blocks[2] != 9 {
		t.Errorf("SortBlocks = %v", blocks)
	}
}
