package iputil

import "testing"

func FuzzParseAddr(f *testing.F) {
	for _, seed := range []string{
		"0.0.0.0", "255.255.255.255", "192.0.2.1", "1.2.3", "1..2.3",
		"256.1.1.1", "01.2.3.4", "a.b.c.d", "", "1.2.3.4.5", "-1.2.3.4",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		if err != nil {
			return
		}
		// Anything that parses must round-trip exactly.
		back, err := ParseAddr(a.String())
		if err != nil || back != a {
			t.Fatalf("round trip failed for %q -> %v", s, a)
		}
	})
}

func FuzzParsePrefix(f *testing.F) {
	for _, seed := range []string{
		"10.0.0.0/8", "192.0.2.0/24", "0.0.0.0/0", "1.2.3.4/32",
		"10.0.0.1/8", "10.0.0.0/33", "10.0.0.0/-1", "/8", "10.0.0.0/",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		if p.Len < 0 || p.Len > 32 {
			t.Fatalf("accepted invalid length %d from %q", p.Len, s)
		}
		if !p.Contains(p.First()) || !p.Contains(p.Last()) {
			t.Fatalf("prefix %v does not contain its own bounds", p)
		}
		back, err := ParsePrefix(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip failed for %q -> %v", s, p)
		}
	})
}
