package iputil

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// Prefix is an IPv4 CIDR prefix: a base address and a mask length. The base
// is always kept canonical (host bits zero).
type Prefix struct {
	Base Addr
	Len  int
}

// MustParsePrefix parses CIDR notation and panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses CIDR notation such as "10.0.0.0/8". The base address
// must be aligned to the prefix length.
func ParsePrefix(s string) (Prefix, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return Prefix{}, fmt.Errorf("iputil: missing '/' in prefix %q", s)
	}
	a, err := ParseAddr(s[:i])
	if err != nil {
		return Prefix{}, err
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil || n < 0 || n > 32 {
		return Prefix{}, fmt.Errorf("iputil: invalid prefix length in %q", s)
	}
	p := Prefix{Base: a, Len: n}
	if p.Base != p.Mask()&a {
		return Prefix{}, fmt.Errorf("iputil: %q has host bits set", s)
	}
	return p, nil
}

// PrefixOf returns the length-n prefix containing a.
func PrefixOf(a Addr, n int) Prefix {
	p := Prefix{Len: n}
	p.Base = a & p.Mask()
	return p
}

// Mask returns the netmask of the prefix as an address value.
func (p Prefix) Mask() Addr {
	if p.Len <= 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - uint(p.Len)))
}

// Contains reports whether a lies within the prefix.
func (p Prefix) Contains(a Addr) bool { return a&p.Mask() == p.Base }

// ContainsPrefix reports whether q is entirely within p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return p.Len <= q.Len && p.Contains(q.Base)
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.ContainsPrefix(q) || q.ContainsPrefix(p)
}

// First returns the lowest address of the prefix.
func (p Prefix) First() Addr { return p.Base }

// Last returns the highest address of the prefix.
func (p Prefix) Last() Addr { return p.Base | ^p.Mask() }

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() int {
	return 1 << (32 - uint(p.Len))
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return p.Base.String() + "/" + strconv.Itoa(p.Len)
}

// Range is an inclusive span of addresses [Lo, Hi]. The paper represents
// each last-hop-router group by the range from its numerically smallest to
// largest member; the hierarchy test operates on these ranges.
type Range struct {
	Lo, Hi Addr
}

// RangeOf computes the enclosing range of a non-empty address set and
// panics if addrs is empty.
func RangeOf(addrs []Addr) Range {
	if len(addrs) == 0 {
		panic("iputil: RangeOf of empty set")
	}
	r := Range{Lo: addrs[0], Hi: addrs[0]}
	for _, a := range addrs[1:] {
		if a < r.Lo {
			r.Lo = a
		}
		if a > r.Hi {
			r.Hi = a
		}
	}
	return r
}

// Contains reports whether a lies within the range.
func (r Range) Contains(a Addr) bool { return r.Lo <= a && a <= r.Hi }

// ContainsRange reports whether s lies entirely within r.
func (r Range) ContainsRange(s Range) bool { return r.Lo <= s.Lo && s.Hi <= r.Hi }

// Disjoint reports whether the two ranges share no address.
func (r Range) Disjoint(s Range) bool { return r.Hi < s.Lo || s.Hi < r.Lo }

// Hierarchical reports whether the pair relationship is hierarchical in the
// paper's sense: mutually disjoint (siblings) or one includes the other
// (parent/child). A partially overlapping pair is non-hierarchical, which
// Hobbit interprets as evidence of load-balancing rather than distinct
// route entries.
func (r Range) Hierarchical(s Range) bool {
	return r.Disjoint(s) || r.ContainsRange(s) || s.ContainsRange(r)
}

// String renders the range as "lo-hi".
func (r Range) String() string { return r.Lo.String() + "-" + r.Hi.String() }

// EnclosingPrefix returns the smallest CIDR prefix that contains every
// address in the set; this is the "subnet whose network prefix is the
// longest common prefix of the addresses within the group" used by the
// aligned-groups heterogeneity criterion.
func EnclosingPrefix(addrs []Addr) Prefix {
	if len(addrs) == 0 {
		panic("iputil: EnclosingPrefix of empty set")
	}
	r := RangeOf(addrs)
	if r.Lo == r.Hi {
		return Prefix{Base: r.Lo, Len: 32}
	}
	n := bits.LeadingZeros32(uint32(r.Lo) ^ uint32(r.Hi))
	return PrefixOf(r.Lo, n)
}

// SortAddrs sorts a slice of addresses in ascending numeric order.
func SortAddrs(addrs []Addr) {
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
}

// SortBlocks sorts a slice of /24 blocks in ascending numeric order.
func SortBlocks(blocks []Block24) {
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
}
