package iputil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"192.0.2.1", 0xc0000201, true},
		{"10.1.2.3", 0x0a010203, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"-1.0.0.1", 0, false},
		{"01.2.3.4", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
		{"1..2.3", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, uint32(got), uint32(c.want))
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		back, err := ParseAddr(addr.String())
		return err == nil && back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrAccessors(t *testing.T) {
	a := MustParseAddr("192.0.2.197")
	if got := a.Block24(); got != MustParseBlock24("192.0.2.0/24") {
		t.Errorf("Block24 = %v", got)
	}
	if got := a.Block26(); got != 3 { // .197 is in .192/26
		t.Errorf("Block26 = %d, want 3", got)
	}
	if got := a.Block31(); got != MustParseAddr("192.0.2.196") {
		t.Errorf("Block31 = %v", got)
	}
	if got := a.Low8(); got != 197 {
		t.Errorf("Low8 = %d", got)
	}
	if got := a.Octets(); got != [4]byte{192, 0, 2, 197} {
		t.Errorf("Octets = %v", got)
	}
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"0.0.0.0", "128.0.0.0", 0},
		{"10.0.0.0", "10.0.0.0", 32},
		{"10.0.0.0", "10.0.0.1", 31},
		{"10.0.0.0", "10.0.1.0", 23},
		{"192.0.2.0", "192.0.3.0", 23},
		{"192.0.2.0", "193.0.2.0", 7},
	}
	for _, c := range cases {
		got := CommonPrefixLen(MustParseAddr(c.a), MustParseAddr(c.b))
		if got != c.want {
			t.Errorf("CommonPrefixLen(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCommonPrefixLenSymmetric(t *testing.T) {
	f := func(a, b uint32) bool {
		return CommonPrefixLen(Addr(a), Addr(b)) == CommonPrefixLen(Addr(b), Addr(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlock24(t *testing.T) {
	b := MustParseBlock24("198.51.100.0/24")
	if b.Base() != MustParseAddr("198.51.100.0") {
		t.Errorf("Base = %v", b.Base())
	}
	if b.Addr(255) != MustParseAddr("198.51.100.255") {
		t.Errorf("Addr(255) = %v", b.Addr(255))
	}
	if !b.Contains(MustParseAddr("198.51.100.77")) {
		t.Error("Contains failed for in-block address")
	}
	if b.Contains(MustParseAddr("198.51.101.0")) {
		t.Error("Contains succeeded for out-of-block address")
	}
	if b.String() != "198.51.100.0/24" {
		t.Errorf("String = %q", b.String())
	}
}

func TestParseBlock24Errors(t *testing.T) {
	for _, in := range []string{"1.2.3.4", "1.2.3.0/25", "1.2.3/24", "garbage"} {
		if _, err := ParseBlock24(in); err == nil {
			t.Errorf("ParseBlock24(%q) unexpectedly succeeded", in)
		}
	}
	if got := MustParseBlock24("1.2.3.0"); got.String() != "1.2.3.0/24" {
		t.Errorf("bare base parse = %v", got)
	}
}

func TestCommonPrefixLen24(t *testing.T) {
	a := MustParseBlock24("10.0.0.0/24")
	if got := CommonPrefixLen24(a, a); got != 24 {
		t.Errorf("identical blocks LCP = %d, want 24", got)
	}
	b := MustParseBlock24("10.0.1.0/24")
	if got := CommonPrefixLen24(a, b); got != 23 {
		t.Errorf("adjacent blocks LCP = %d, want 23", got)
	}
	c := MustParseBlock24("128.0.0.0/24")
	if got := CommonPrefixLen24(a, c); got != 0 {
		t.Errorf("far blocks LCP = %d, want 0", got)
	}
}

func TestCommonPrefixLen24MatchesAddrLCP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Block24(rng.Uint32() >> 8)
		b := Block24(rng.Uint32() >> 8)
		want := CommonPrefixLen(a.Base(), b.Base())
		if want > 24 {
			want = 24
		}
		if got := CommonPrefixLen24(a, b); got != want {
			t.Fatalf("CommonPrefixLen24(%v, %v) = %d, want %d", a, b, got, want)
		}
	}
}
