// Package iputil provides compact IPv4 address and prefix arithmetic used
// throughout the Hobbit measurement pipeline: /24 and /26 block keys,
// longest-common-prefix math, address ranges, and parsing/formatting.
//
// Addresses are represented as host-order uint32 values (Addr) rather than
// net.IP so that they can be used as map keys, sorted, and manipulated with
// plain integer arithmetic in the hot paths of the simulator and the
// classifier.
package iputil

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// MustParseAddr parses a dotted-decimal IPv4 address and panics on error.
// It is intended for constants in tests and table-driven fixtures.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// ParseAddr parses a dotted-decimal IPv4 address.
func ParseAddr(s string) (Addr, error) {
	var a uint32
	rest := s
	for i := 0; i < 4; i++ {
		var part string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("iputil: invalid IPv4 address %q", s)
			}
			part, rest = rest[:dot], rest[dot+1:]
		} else {
			part = rest
		}
		if part == "" || len(part) > 3 {
			return 0, fmt.Errorf("iputil: invalid IPv4 address %q", s)
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("iputil: invalid IPv4 address %q", s)
		}
		// Reject leading zeros such as "01" to stay strict like netip.
		if len(part) > 1 && part[0] == '0' {
			return 0, fmt.Errorf("iputil: invalid IPv4 address %q (leading zero)", s)
		}
		a = a<<8 | uint32(v)
	}
	return Addr(a), nil
}

// String renders the address in dotted-decimal notation.
func (a Addr) String() string {
	var b strings.Builder
	b.Grow(15)
	for shift := 24; shift >= 0; shift -= 8 {
		if shift != 24 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(int(a >> uint(shift) & 0xff)))
	}
	return b.String()
}

// Octets returns the four dotted-decimal octets of the address.
func (a Addr) Octets() [4]byte {
	return [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

// Block24 returns the /24 block containing a.
func (a Addr) Block24() Block24 { return Block24(a >> 8) }

// Block26 returns the index (0..3) of the /26 within a's /24.
func (a Addr) Block26() int { return int(a >> 6 & 0x3) }

// Block31 returns the base address of the /31 containing a.
func (a Addr) Block31() Addr { return a &^ 1 }

// Low8 returns the host octet of the address within its /24.
func (a Addr) Low8() int { return int(a & 0xff) }

// CommonPrefixLen returns the length of the longest common prefix of a and
// b, between 0 and 32.
func CommonPrefixLen(a, b Addr) int {
	if a == b {
		return 32
	}
	return bits.LeadingZeros32(uint32(a) ^ uint32(b))
}

// Block24 identifies an IPv4 /24 block by its upper 24 bits. It is the
// primary unit of measurement in the paper.
type Block24 uint32

// MustParseBlock24 parses "a.b.c.0/24" (or just "a.b.c.0") into a Block24
// and panics on error.
func MustParseBlock24(s string) Block24 {
	b, err := ParseBlock24(s)
	if err != nil {
		panic(err)
	}
	return b
}

// ParseBlock24 parses a /24 block written either as a bare base address
// ("192.0.2.0") or CIDR notation ("192.0.2.0/24").
func ParseBlock24(s string) (Block24, error) {
	if i := strings.IndexByte(s, '/'); i >= 0 {
		if s[i+1:] != "24" {
			return 0, fmt.Errorf("iputil: %q is not a /24", s)
		}
		s = s[:i]
	}
	a, err := ParseAddr(s)
	if err != nil {
		return 0, err
	}
	if a&0xff != 0 {
		return 0, fmt.Errorf("iputil: %q is not /24-aligned", s)
	}
	return a.Block24(), nil
}

// Base returns the lowest address of the block (the .0 address).
func (b Block24) Base() Addr { return Addr(b) << 8 }

// Addr returns the address at host offset i (0..255) within the block.
func (b Block24) Addr(i int) Addr { return Addr(b)<<8 | Addr(i&0xff) }

// Contains reports whether address a lies in the block.
func (b Block24) Contains(a Addr) bool { return a.Block24() == b }

// String renders the block in CIDR notation, e.g. "192.0.2.0/24".
func (b Block24) String() string { return b.Base().String() + "/24" }

// CommonPrefixLen24 returns the longest common prefix length of two /24
// blocks measured in block bits, i.e. in the range 0..24 where 24 means the
// blocks are identical. This is the adjacency metric of Figure 7, which the
// paper describes over 24-bit prefixes (lengths 0..23 for distinct blocks).
func CommonPrefixLen24(a, b Block24) int {
	if a == b {
		return 24
	}
	return bits.LeadingZeros32((uint32(a) ^ uint32(b)) << 8)
}
