// Monitoring-mode scale legs: BenchmarkMonitorEpoch pins the cost of
// one incremental epoch at 100k blocks under the churn plan — the
// sublinearity gate behind DESIGN.md §4j (reprobes proportional to the
// churned blocks, never the universe) — and TestMonitorScaleNightly is
// the schedule-only 100k-block monitoring session, gating per-epoch
// wall clock against the bootstrap and dumping per-epoch telemetry
// snapshots for the nightly artifacts.
//
// Run with: go test -run xxx -bench '^BenchmarkMonitorEpoch$' -benchtime=1x -count=3 -benchmem .
package hobbit

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/faultplan"
	"github.com/hobbitscan/hobbit/internal/monitor"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

// monitorHeapCeiling bounds the monitoring session's peak heap: the
// per-block result cache plus the persistent similarity graph are
// inherent state (linear in the universe), but an epoch step must not
// rematerialize from-scratch intermediates on top of them.
const monitorHeapCeiling = 512 << 20

var (
	monitorOnce  sync.Once
	monitorWorld *netsim.World
	monitorErr   error
)

// monitorLab builds the monitoring benchmarks' own churn-faulted world.
// It is deliberately separate from scaleLab: the monitor pins the
// world's fault epoch, and the shared scale world must stay unmutated
// for the other legs.
func monitorLab(tb testing.TB) *netsim.World {
	tb.Helper()
	monitorOnce.Do(func() {
		cfg := netsim.DefaultConfig(scaleBlocks)
		cfg.BigBlockScale = 0.05
		monitorWorld, monitorErr = netsim.New(cfg)
		if monitorErr != nil {
			return
		}
		var sched *faultplan.Schedule
		sched, monitorErr = faultplan.CompileBuiltin("churn", monitorWorld)
		if monitorErr == nil {
			monitorWorld.SetFaults(sched)
		}
	})
	if monitorErr != nil {
		tb.Fatal(monitorErr)
	}
	return monitorWorld
}

func monitorPipeline(w *netsim.World, reg *telemetry.Registry) *core.Pipeline {
	return &core.Pipeline{
		Net:       probe.NewSimNetwork(w),
		Scanner:   w,
		Blocks:    w.Blocks(),
		Seed:      7,
		Telemetry: reg,
		Options: core.Options{
			Workers:        8,
			CensusWorkers:  8,
			ClusterWorkers: 8,
			ValidatePairs:  100,
		},
	}
}

// BenchmarkMonitorEpoch times one incremental epoch of a 100k-block
// monitoring session under route churn. The bootstrap (a full
// census-and-measure pass) runs outside the timer; every timed
// iteration advances one epoch. The leg fails outright if any epoch
// degrades to a full reprobe — the metric being gated is that reprobes
// track the churned set, not the universe.
func BenchmarkMonitorEpoch(b *testing.B) {
	w := monitorLab(b)

	b.Run(fmt.Sprintf("epoch-%dk-blocks", scaleBlocks/1000), func(b *testing.B) {
		mon := &monitor.Monitor{Pipeline: monitorPipeline(w, nil), Source: &monitor.WorldSource{W: w}}
		defer mon.Close()
		defer w.SetFaultEpoch(-1)
		boot, err := mon.Step(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		eligible := len(boot.Output.Eligible)
		if eligible == 0 {
			b.Fatal("bootstrap found no eligible blocks")
		}

		b.ReportAllocs()
		runtime.GC()
		hp := trackHeapPeak()
		b.ResetTimer()
		var reprobed, changed int
		for i := 0; i < b.N; i++ {
			rep, err := mon.Step(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if rep.All || rep.Reprobed >= eligible {
				b.Fatalf("epoch %d reprobed %d of %d eligible — not incremental", rep.Epoch, rep.Reprobed, eligible)
			}
			reprobed += rep.Reprobed
			changed += rep.Changed
		}
		b.StopTimer()
		guardHeap(b, hp.Stop(), monitorHeapCeiling)
		b.ReportMetric(float64(reprobed)/float64(b.N), "reprobed-blocks")
		b.ReportMetric(float64(changed)/float64(b.N), "changed-blocks")
		b.ReportMetric(float64(eligible), "eligible-blocks")
	})
}

// TestMonitorScaleNightly is the schedule-only monitoring session: 100k
// blocks, churn plan, 8 post-bootstrap epochs. It gates the monitoring
// promise in wall-clock terms — every incremental epoch must cost less
// than 20% of the from-scratch bootstrap — and writes one telemetry
// snapshot per epoch into HOBBIT_MONITOR_NIGHTLY_DIR for the nightly
// artifact upload. Gated behind HOBBIT_MONITOR_NIGHTLY=1; per-PR CI
// covers the same path at small scale through the harness matrix.
func TestMonitorScaleNightly(t *testing.T) {
	if os.Getenv("HOBBIT_MONITOR_NIGHTLY") != "1" {
		t.Skip("nightly monitoring session; set HOBBIT_MONITOR_NIGHTLY=1 to run")
	}
	dir := os.Getenv("HOBBIT_MONITOR_NIGHTLY_DIR")
	if dir == "" {
		dir = t.TempDir()
	}
	const epochs = 8

	w := monitorLab(t)
	reg := telemetry.NewRegistry()
	mon := &monitor.Monitor{Pipeline: monitorPipeline(w, reg), Source: &monitor.WorldSource{W: w}}
	defer mon.Close()
	defer w.SetFaultEpoch(-1)

	start := time.Now()
	boot, err := mon.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	bootstrap := time.Since(start)
	eligible := len(boot.Output.Eligible)
	t.Logf("bootstrap: %v, %d eligible blocks", bootstrap, eligible)
	writeEpochSnapshot(t, dir, reg, boot, bootstrap)

	budget := bootstrap / 5
	for e := 1; e <= epochs; e++ {
		start = time.Now()
		rep, err := mon.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		wall := time.Since(start)
		writeEpochSnapshot(t, dir, reg, rep, wall)
		t.Logf("epoch %d: %v wall, %d changed, %d reprobed, cluster %+v, val %d/%d reused",
			rep.Epoch, wall, rep.Changed, rep.Reprobed, rep.Cluster, rep.ValReused, rep.ValReused+rep.ValRecomputed)
		if rep.All || rep.Reprobed >= eligible {
			t.Errorf("epoch %d reprobed %d of %d eligible — not incremental", rep.Epoch, rep.Reprobed, eligible)
		}
		if wall >= budget {
			t.Errorf("epoch %d wall %v exceeds 20%% of bootstrap (%v)", rep.Epoch, wall, budget)
		}
	}
}

// writeEpochSnapshot dumps one epoch's accounting plus the cumulative
// counter state as monitor-epoch-N.json in dir.
func writeEpochSnapshot(t *testing.T, dir string, reg *telemetry.Registry, rep *monitor.EpochReport, wall time.Duration) {
	t.Helper()
	counters, err := reg.MarshalCounters()
	if err != nil {
		t.Fatal(err)
	}
	snap := map[string]any{
		"epoch":          rep.Epoch,
		"wall_ms":        wall.Milliseconds(),
		"all":            rep.All,
		"changed":        rep.Changed,
		"reprobed":       rep.Reprobed,
		"cluster":        rep.Cluster,
		"val_reused":     rep.ValReused,
		"val_recomputed": rep.ValRecomputed,
		"final_blocks":   len(rep.Output.Final),
		"counters":       json.RawMessage(counters),
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("monitor-epoch-%d.json", rep.Epoch))
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}
