// Command benchdiff compares two `go test -bench` result sets and fails
// when any benchmark regresses. It is the CI gate that keeps the
// BENCH_*.json baselines honest: the bench job reruns the suite and
// benchdiff exits non-zero if any benchmark's ns/op, B/op, or allocs/op
// grew beyond the allowed fraction over the checked-in baseline.
//
// Usage:
//
//	benchdiff [-max-regress F] [-max-regress-bytes F] [-max-regress-allocs F]
//	          [-write FILE] OLD [NEW]
//
// OLD and NEW are each either raw `go test -bench` output or a JSON file
// previously produced by -write (detected by content, not extension).
// With both OLD and NEW, benchdiff prints a comparison and exits 1 on
// regression. With only OLD and -write, it converts OLD to the JSON
// baseline format — how BENCH_<pr>.json baselines are produced.
//
// Repeated runs of the same benchmark (go test -count=N) keep the
// per-metric minimum, not the mean: the minimum is the least-noise
// estimate of a benchmark's true cost, because scheduler and cache
// interference only ever add time. CI therefore runs every bench job
// with -count=3, and baselines must be refreshed the same way so both
// sides of the comparison are minima over equal sample counts:
//
//	go test -run xxx -bench=. -benchtime=1x -count=3 -benchmem . > bench.txt
//	go run ./cmd/benchdiff -write BENCH_4.json bench.txt
//
// (Same procedure for BENCH_SCALE.json, with -bench '^BenchmarkScale$'
// and the bench.txt from the scale job.)
//
// All three metrics are gated. B/op and allocs/op additionally enforce a
// zero-baseline rule: a benchmark whose baseline is allocation-free must
// stay allocation-free — any growth from zero is a regression, since a
// fractional threshold over zero would allow anything. Baselines must
// therefore be recorded with -benchmem, as the CI bench job does.
// Benchmarks present in only one input are reported but never fail the
// run (suites grow; baselines are refreshed by the PR that grows them).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's parsed result. Repeated runs of the same
// benchmark keep the per-metric minimum (see the package comment).
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	runs        int
}

// File is the JSON baseline shape.
type File struct {
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

func main() {
	var (
		maxRegress = flag.Float64("max-regress", 0.20, "maximum allowed fractional ns/op growth before failing (0.20 = +20%)")
		maxBytes   = flag.Float64("max-regress-bytes", 0.20, "maximum allowed fractional B/op growth (zero baselines allow no growth at all)")
		maxAllocs  = flag.Float64("max-regress-allocs", 0.20, "maximum allowed fractional allocs/op growth (zero baselines allow no growth at all)")
		write      = flag.String("write", "", "write the last input's parsed results to this JSON file")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress F] [-max-regress-bytes F] [-max-regress-allocs F] [-write FILE] OLD [NEW]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 || flag.NArg() > 2 {
		flag.Usage()
		os.Exit(2)
	}

	sets := make([]map[string]Metrics, flag.NArg())
	for i, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		if sets[i], err = Parse(data); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}
	if *write != "" {
		if err := writeJSON(*write, sets[len(sets)-1]); err != nil {
			fatal(err)
		}
	}
	if flag.NArg() == 2 {
		report := Compare(sets[0], sets[1], Limits{NsPerOp: *maxRegress, BytesPerOp: *maxBytes, AllocsPerOp: *maxAllocs})
		fmt.Print(report.String())
		if len(report.Regressions) > 0 {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

// Parse reads either raw `go test -bench` output or the JSON baseline
// format, detected by content.
func Parse(data []byte) (map[string]Metrics, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		var f File
		if err := json.Unmarshal(trimmed, &f); err != nil {
			return nil, err
		}
		if f.Benchmarks == nil {
			return nil, fmt.Errorf("JSON input has no \"benchmarks\" object")
		}
		return f.Benchmarks, nil
	}
	return parseBenchText(data)
}

type rawLine struct {
	name         string
	ns, bpo, apo float64
}

// parseBenchText extracts benchmark lines of the form
//
//	BenchmarkName-8   100   123.4 ns/op   45 B/op   6 allocs/op   1.5 extra/unit
//
// When every benchmark in the file carries the same trailing -N marker —
// the GOMAXPROCS suffix go test appends on multi-core hosts — it is
// stripped, so baselines recorded at GOMAXPROCS=1 (no suffix) line up with
// CI runs at GOMAXPROCS=N. A trailing -N that varies across lines is part
// of real sub-benchmark names (workers-1, samples-1000) and is kept.
func parseBenchText(data []byte) (map[string]Metrics, error) {
	var lines []rawLine
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: some other Benchmark… line
		}
		// Value/unit pairs follow the iteration count.
		l := rawLine{name: fields[0]}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				l.ns, seen = v, true
			case "B/op":
				l.bpo = v
			case "allocs/op":
				l.apo = v
			}
		}
		if seen {
			lines = append(lines, l)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	suffix := commonProcSuffix(lines)
	out := make(map[string]Metrics)
	for _, l := range lines {
		name := strings.TrimSuffix(l.name, suffix)
		m, ok := out[name]
		if !ok {
			m = Metrics{NsPerOp: l.ns, BytesPerOp: l.bpo, AllocsPerOp: l.apo}
		} else {
			m.NsPerOp = math.Min(m.NsPerOp, l.ns)
			m.BytesPerOp = math.Min(m.BytesPerOp, l.bpo)
			m.AllocsPerOp = math.Min(m.AllocsPerOp, l.apo)
		}
		m.runs++
		out[name] = m
	}
	return out, nil
}

// commonProcSuffix returns the trailing "-N" shared by every benchmark
// name in the run, or "" when the lines disagree (then any trailing
// number is a sub-benchmark name, not the GOMAXPROCS marker).
func commonProcSuffix(lines []rawLine) string {
	var suffix string
	for i, l := range lines {
		j := strings.LastIndex(l.name, "-")
		if j < 0 {
			return ""
		}
		if _, err := strconv.Atoi(l.name[j+1:]); err != nil {
			return ""
		}
		if s := l.name[j:]; i == 0 {
			suffix = s
		} else if s != suffix {
			return ""
		}
	}
	return suffix
}

// Delta is one compared (benchmark, metric) pair.
type Delta struct {
	Name     string
	Metric   string // "ns/op", "B/op", or "allocs/op"
	Old, New float64
}

// Ratio is New/Old (1.0 = unchanged; 0 when Old is 0).
func (d Delta) Ratio() float64 {
	if d.Old == 0 {
		return 0
	}
	return d.New / d.Old
}

// Limits holds the per-metric fractional growth allowances.
type Limits struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
}

// Report is the outcome of a comparison.
type Report struct {
	Regressions []Delta // any metric grew beyond its threshold
	Compared    []Delta // ns/op of every benchmark present in both sets
	OnlyOld     []string
	OnlyNew     []string
	Limits      Limits
}

// Compare evaluates new against old. A benchmark regresses when any gated
// metric grew by more than its fractional limit — and, for B/op and
// allocs/op, when a zero baseline grew at all: zero-alloc paths are a
// contract, and a fractional threshold over zero would allow anything.
func Compare(old, new map[string]Metrics, lim Limits) Report {
	r := Report{Limits: lim}
	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n, ok := new[name]
		if !ok {
			r.OnlyOld = append(r.OnlyOld, name)
			continue
		}
		o := old[name]
		r.Compared = append(r.Compared, Delta{Name: name, Metric: "ns/op", Old: o.NsPerOp, New: n.NsPerOp})
		checks := []struct {
			metric    string
			old, new  float64
			limit     float64
			gateZeros bool
		}{
			{"ns/op", o.NsPerOp, n.NsPerOp, lim.NsPerOp, false},
			{"B/op", o.BytesPerOp, n.BytesPerOp, lim.BytesPerOp, true},
			{"allocs/op", o.AllocsPerOp, n.AllocsPerOp, lim.AllocsPerOp, true},
		}
		for _, c := range checks {
			grew := (c.old > 0 && c.new > c.old*(1+c.limit)) ||
				(c.gateZeros && c.old == 0 && c.new > 0)
			if grew {
				r.Regressions = append(r.Regressions, Delta{Name: name, Metric: c.metric, Old: c.old, New: c.new})
			}
		}
	}
	for name := range new {
		if _, ok := old[name]; !ok {
			r.OnlyNew = append(r.OnlyNew, name)
		}
	}
	sort.Strings(r.OnlyNew)
	return r
}

// limitFor returns the allowance that applied to the delta's metric.
func (r Report) limitFor(metric string) float64 {
	switch metric {
	case "B/op":
		return r.Limits.BytesPerOp
	case "allocs/op":
		return r.Limits.AllocsPerOp
	default:
		return r.Limits.NsPerOp
	}
}

// String renders the report for the CI log: regressions first, then the
// full comparison, then coverage differences.
func (r Report) String() string {
	var b strings.Builder
	for _, d := range r.Regressions {
		if d.Old == 0 {
			fmt.Fprintf(&b, "REGRESSION %-60s %14.1f -> %14.1f %s (zero baseline must not grow)\n",
				d.Name, d.Old, d.New, d.Metric)
			continue
		}
		fmt.Fprintf(&b, "REGRESSION %-60s %14.1f -> %14.1f %s (%.2fx > allowed %.2fx)\n",
			d.Name, d.Old, d.New, d.Metric, d.Ratio(), 1+r.limitFor(d.Metric))
	}
	for _, d := range r.Compared {
		fmt.Fprintf(&b, "ok         %-60s %14.1f -> %14.1f ns/op (%.2fx)\n", d.Name, d.Old, d.New, d.Ratio())
	}
	for _, name := range r.OnlyOld {
		fmt.Fprintf(&b, "only-old   %s\n", name)
	}
	for _, name := range r.OnlyNew {
		fmt.Fprintf(&b, "only-new   %s\n", name)
	}
	fmt.Fprintf(&b, "%d compared, %d regressions\n", len(r.Compared), len(r.Regressions))
	return b.String()
}

// writeJSON writes the parsed set in the JSON baseline format with sorted
// keys (json.Marshal sorts map keys) and a trailing newline.
func writeJSON(path string, set map[string]Metrics) error {
	data, err := json.MarshalIndent(File{Benchmarks: set}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
