// Command benchdiff compares two `go test -bench` result sets and fails
// when any benchmark regresses. It is the CI gate that keeps the
// BENCH_*.json baselines honest: the bench job reruns the suite and
// benchdiff exits non-zero if any benchmark's ns/op grew beyond the
// allowed fraction over the checked-in baseline.
//
// Usage:
//
//	benchdiff [-max-regress F] [-write FILE] OLD [NEW]
//
// OLD and NEW are each either raw `go test -bench` output or a JSON file
// previously produced by -write (detected by content, not extension).
// With both OLD and NEW, benchdiff prints a comparison and exits 1 on
// regression. With only OLD and -write, it converts OLD to the JSON
// baseline format — how BENCH_<pr>.json baselines are produced:
//
//	go test -bench=. -benchtime=1x -benchmem . > bench.txt
//	go run ./cmd/benchdiff -write BENCH_3.json bench.txt
//
// Only ns/op is gated; bytes/op and allocs/op are carried in the JSON for
// human inspection. Benchmarks present in only one input are reported but
// never fail the run (suites grow; baselines are refreshed by the PR that
// grows them).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's parsed result. Repeated runs of the same
// benchmark average their values.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	runs        int
}

// File is the JSON baseline shape.
type File struct {
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

func main() {
	var (
		maxRegress = flag.Float64("max-regress", 0.20, "maximum allowed fractional ns/op growth before failing (0.20 = +20%)")
		write      = flag.String("write", "", "write the last input's parsed results to this JSON file")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress F] [-write FILE] OLD [NEW]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 || flag.NArg() > 2 {
		flag.Usage()
		os.Exit(2)
	}

	sets := make([]map[string]Metrics, flag.NArg())
	for i, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		if sets[i], err = Parse(data); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}
	if *write != "" {
		if err := writeJSON(*write, sets[len(sets)-1]); err != nil {
			fatal(err)
		}
	}
	if flag.NArg() == 2 {
		report := Compare(sets[0], sets[1], *maxRegress)
		fmt.Print(report.String())
		if len(report.Regressions) > 0 {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

// Parse reads either raw `go test -bench` output or the JSON baseline
// format, detected by content.
func Parse(data []byte) (map[string]Metrics, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		var f File
		if err := json.Unmarshal(trimmed, &f); err != nil {
			return nil, err
		}
		if f.Benchmarks == nil {
			return nil, fmt.Errorf("JSON input has no \"benchmarks\" object")
		}
		return f.Benchmarks, nil
	}
	return parseBenchText(data)
}

type rawLine struct {
	name         string
	ns, bpo, apo float64
}

// parseBenchText extracts benchmark lines of the form
//
//	BenchmarkName-8   100   123.4 ns/op   45 B/op   6 allocs/op   1.5 extra/unit
//
// When every benchmark in the file carries the same trailing -N marker —
// the GOMAXPROCS suffix go test appends on multi-core hosts — it is
// stripped, so baselines recorded at GOMAXPROCS=1 (no suffix) line up with
// CI runs at GOMAXPROCS=N. A trailing -N that varies across lines is part
// of real sub-benchmark names (workers-1, samples-1000) and is kept.
func parseBenchText(data []byte) (map[string]Metrics, error) {
	var lines []rawLine
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: some other Benchmark… line
		}
		// Value/unit pairs follow the iteration count.
		l := rawLine{name: fields[0]}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				l.ns, seen = v, true
			case "B/op":
				l.bpo = v
			case "allocs/op":
				l.apo = v
			}
		}
		if seen {
			lines = append(lines, l)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	suffix := commonProcSuffix(lines)
	out := make(map[string]Metrics)
	for _, l := range lines {
		name := strings.TrimSuffix(l.name, suffix)
		m := out[name]
		m.NsPerOp = (m.NsPerOp*float64(m.runs) + l.ns) / float64(m.runs+1)
		m.BytesPerOp = (m.BytesPerOp*float64(m.runs) + l.bpo) / float64(m.runs+1)
		m.AllocsPerOp = (m.AllocsPerOp*float64(m.runs) + l.apo) / float64(m.runs+1)
		m.runs++
		out[name] = m
	}
	return out, nil
}

// commonProcSuffix returns the trailing "-N" shared by every benchmark
// name in the run, or "" when the lines disagree (then any trailing
// number is a sub-benchmark name, not the GOMAXPROCS marker).
func commonProcSuffix(lines []rawLine) string {
	var suffix string
	for i, l := range lines {
		j := strings.LastIndex(l.name, "-")
		if j < 0 {
			return ""
		}
		if _, err := strconv.Atoi(l.name[j+1:]); err != nil {
			return ""
		}
		if s := l.name[j:]; i == 0 {
			suffix = s
		} else if s != suffix {
			return ""
		}
	}
	return suffix
}

// Delta is one compared benchmark.
type Delta struct {
	Name     string
	Old, New float64 // ns/op
}

// Ratio is New/Old (1.0 = unchanged; 0 when Old is 0).
func (d Delta) Ratio() float64 {
	if d.Old == 0 {
		return 0
	}
	return d.New / d.Old
}

// Report is the outcome of a comparison.
type Report struct {
	Regressions []Delta // ns/op grew beyond the threshold
	Compared    []Delta // every benchmark present in both sets
	OnlyOld     []string
	OnlyNew     []string
	MaxRegress  float64
}

// Compare evaluates new against old: any benchmark whose ns/op grew by
// more than maxRegress (fractional) is a regression.
func Compare(old, new map[string]Metrics, maxRegress float64) Report {
	r := Report{MaxRegress: maxRegress}
	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n, ok := new[name]
		if !ok {
			r.OnlyOld = append(r.OnlyOld, name)
			continue
		}
		d := Delta{Name: name, Old: old[name].NsPerOp, New: n.NsPerOp}
		r.Compared = append(r.Compared, d)
		if d.Old > 0 && d.New > d.Old*(1+maxRegress) {
			r.Regressions = append(r.Regressions, d)
		}
	}
	for name := range new {
		if _, ok := old[name]; !ok {
			r.OnlyNew = append(r.OnlyNew, name)
		}
	}
	sort.Strings(r.OnlyNew)
	return r
}

// String renders the report for the CI log: regressions first, then the
// full comparison, then coverage differences.
func (r Report) String() string {
	var b strings.Builder
	for _, d := range r.Regressions {
		fmt.Fprintf(&b, "REGRESSION %-60s %14.1f -> %14.1f ns/op (%.2fx > allowed %.2fx)\n",
			d.Name, d.Old, d.New, d.Ratio(), 1+r.MaxRegress)
	}
	for _, d := range r.Compared {
		fmt.Fprintf(&b, "ok         %-60s %14.1f -> %14.1f ns/op (%.2fx)\n", d.Name, d.Old, d.New, d.Ratio())
	}
	for _, name := range r.OnlyOld {
		fmt.Fprintf(&b, "only-old   %s\n", name)
	}
	for _, name := range r.OnlyNew {
		fmt.Fprintf(&b, "only-new   %s\n", name)
	}
	fmt.Fprintf(&b, "%d compared, %d regressions\n", len(r.Compared), len(r.Regressions))
	return b.String()
}

// writeJSON writes the parsed set in the JSON baseline format with sorted
// keys (json.Marshal sorts map keys) and a trailing newline.
func writeJSON(path string, set map[string]Metrics) error {
	data, err := json.MarshalIndent(File{Benchmarks: set}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
