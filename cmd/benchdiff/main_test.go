package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: github.com/hobbitscan/hobbit
cpu: Test CPU
BenchmarkAlpha-8         	     100	    1000.0 ns/op	     512 B/op	       8 allocs/op
BenchmarkBeta/workers-1-8	      50	    2000.0 ns/op
BenchmarkBeta/workers-8-8	      50	     500.0 ns/op
BenchmarkAlpha-8         	     100	    3000.0 ns/op	     256 B/op	       4 allocs/op
PASS
ok  	github.com/hobbitscan/hobbit	1.234s
`

func TestParseBenchText(t *testing.T) {
	set, err := Parse([]byte(benchText))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(set), set)
	}
	// The duplicated Alpha runs keep the per-metric minimum, and the -8
	// suffix is stripped.
	alpha, ok := set["BenchmarkAlpha"]
	if !ok {
		t.Fatal("BenchmarkAlpha missing (suffix not stripped?)")
	}
	if alpha.NsPerOp != 1000 || alpha.BytesPerOp != 256 || alpha.AllocsPerOp != 4 {
		t.Errorf("Alpha reduced to %+v, want minima 1000 ns / 256 B / 4 allocs", alpha)
	}
	if got := set["BenchmarkBeta/workers-1"].NsPerOp; got != 2000 {
		t.Errorf("Beta/workers-1 ns/op = %v, want 2000", got)
	}
	if got := set["BenchmarkBeta/workers-8"].NsPerOp; got != 500 {
		t.Errorf("Beta/workers-8 ns/op = %v, want 500", got)
	}
}

func TestParseJSONRoundTrip(t *testing.T) {
	set, err := Parse([]byte(benchText))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := writeJSON(path, set); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(set) {
		t.Fatalf("round trip lost benchmarks: %d -> %d", len(set), len(back))
	}
	for name, m := range set {
		if b := back[name]; math.Abs(b.NsPerOp-m.NsPerOp) > 1e-9 {
			t.Errorf("%s ns/op %v -> %v", name, m.NsPerOp, b.NsPerOp)
		}
	}
	// The file is stable, valid JSON with the documented shape.
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Benchmarks == nil {
		t.Fatal("written file lacks benchmarks object")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte("no benchmarks here\n")); err == nil {
		t.Error("want error for input without benchmark lines")
	}
	if _, err := Parse([]byte(`{"not_benchmarks": {}}`)); err == nil {
		t.Error("want error for JSON without benchmarks key")
	}
	if _, err := Parse([]byte(`{broken`)); err == nil {
		t.Error("want error for malformed JSON")
	}
}

func TestCompare(t *testing.T) {
	old := map[string]Metrics{
		"BenchmarkStable":  {NsPerOp: 1000},
		"BenchmarkFaster":  {NsPerOp: 1000},
		"BenchmarkSlower":  {NsPerOp: 1000},
		"BenchmarkAtLimit": {NsPerOp: 1000},
		"BenchmarkGone":    {NsPerOp: 1000},
	}
	new := map[string]Metrics{
		"BenchmarkStable":  {NsPerOp: 1000},
		"BenchmarkFaster":  {NsPerOp: 400},
		"BenchmarkSlower":  {NsPerOp: 1201}, // +20.1% > 20% threshold
		"BenchmarkAtLimit": {NsPerOp: 1200}, // exactly +20% passes
		"BenchmarkNew":     {NsPerOp: 99},
	}
	r := Compare(old, new, Limits{NsPerOp: 0.20, BytesPerOp: 0.20, AllocsPerOp: 0.20})
	if len(r.Regressions) != 1 || r.Regressions[0].Name != "BenchmarkSlower" {
		t.Errorf("regressions = %+v, want exactly BenchmarkSlower", r.Regressions)
	}
	if len(r.Compared) != 4 {
		t.Errorf("compared %d benchmarks, want 4", len(r.Compared))
	}
	// Coverage drift is reported but never a regression.
	if len(r.OnlyOld) != 1 || r.OnlyOld[0] != "BenchmarkGone" {
		t.Errorf("OnlyOld = %v", r.OnlyOld)
	}
	if len(r.OnlyNew) != 1 || r.OnlyNew[0] != "BenchmarkNew" {
		t.Errorf("OnlyNew = %v", r.OnlyNew)
	}
	out := r.String()
	if !strings.Contains(out, "REGRESSION BenchmarkSlower") {
		t.Errorf("report missing regression line:\n%s", out)
	}
	if !strings.Contains(out, "4 compared, 1 regressions") {
		t.Errorf("report missing summary line:\n%s", out)
	}
}

func TestCompareNoRegressionsAgainstSelf(t *testing.T) {
	set, err := Parse([]byte(benchText))
	if err != nil {
		t.Fatal(err)
	}
	r := Compare(set, set, Limits{NsPerOp: 0.20, BytesPerOp: 0.20, AllocsPerOp: 0.20})
	if len(r.Regressions) != 0 {
		t.Errorf("self-comparison regressed: %+v", r.Regressions)
	}
	if len(r.OnlyOld)+len(r.OnlyNew) != 0 {
		t.Errorf("self-comparison drifted: %v %v", r.OnlyOld, r.OnlyNew)
	}
}

// TestCompareMemoryMetrics pins the B/op and allocs/op gates, including
// the zero-baseline rule: a benchmark recorded allocation-free must stay
// allocation-free.
func TestCompareMemoryMetrics(t *testing.T) {
	old := map[string]Metrics{
		"BenchmarkBytes":    {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkAllocs":   {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkZero":     {NsPerOp: 100},
		"BenchmarkZeroOK":   {NsPerOp: 100},
		"BenchmarkShrink":   {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkMultiBad": {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
	}
	new := map[string]Metrics{
		"BenchmarkBytes":    {NsPerOp: 100, BytesPerOp: 1300, AllocsPerOp: 10}, // +30% B/op
		"BenchmarkAllocs":   {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 13}, // +30% allocs/op
		"BenchmarkZero":     {NsPerOp: 100, BytesPerOp: 16, AllocsPerOp: 1},    // grew from zero
		"BenchmarkZeroOK":   {NsPerOp: 100},                                    // stayed zero
		"BenchmarkShrink":   {NsPerOp: 100, BytesPerOp: 100, AllocsPerOp: 1},   // improvements pass
		"BenchmarkMultiBad": {NsPerOp: 200, BytesPerOp: 2000, AllocsPerOp: 20}, // all three regress
	}
	r := Compare(old, new, Limits{NsPerOp: 0.20, BytesPerOp: 0.20, AllocsPerOp: 0.20})
	got := map[string]bool{}
	for _, d := range r.Regressions {
		got[d.Name+" "+d.Metric] = true
	}
	want := []string{
		"BenchmarkBytes B/op",
		"BenchmarkAllocs allocs/op",
		"BenchmarkZero B/op",
		"BenchmarkZero allocs/op",
		"BenchmarkMultiBad ns/op",
		"BenchmarkMultiBad B/op",
		"BenchmarkMultiBad allocs/op",
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing regression %q in %+v", w, r.Regressions)
		}
	}
	if len(r.Regressions) != len(want) {
		t.Errorf("got %d regressions, want %d: %+v", len(r.Regressions), len(want), r.Regressions)
	}
	// Compared stays one ns/op delta per benchmark regardless of how many
	// metrics regressed, so the summary count means "benchmarks".
	if len(r.Compared) != 6 {
		t.Errorf("compared %d benchmarks, want 6", len(r.Compared))
	}
	out := r.String()
	if !strings.Contains(out, "zero baseline must not grow") {
		t.Errorf("report does not explain the zero-baseline rule:\n%s", out)
	}
	if !strings.Contains(out, "6 compared, 7 regressions") {
		t.Errorf("report missing summary line:\n%s", out)
	}
}

// TestParseSingleProcNames pins the GOMAXPROCS=1 case: go test appends no
// -N suffix, so sub-benchmark names that happen to end in a number
// (workers-1, samples-1000) must survive intact rather than being
// mistaken for the proc marker and merged together.
func TestParseSingleProcNames(t *testing.T) {
	const text = `BenchmarkPlain      	     100	    1000.0 ns/op
BenchmarkBeta/workers-1	      50	    2000.0 ns/op
BenchmarkBeta/workers-8	      50	     500.0 ns/op
BenchmarkTable/samples-1000	      10	    9000.0 ns/op
`
	set, err := Parse([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"BenchmarkPlain",
		"BenchmarkBeta/workers-1",
		"BenchmarkBeta/workers-8",
		"BenchmarkTable/samples-1000",
	} {
		if _, ok := set[want]; !ok {
			t.Errorf("%s missing; got %v", want, set)
		}
	}
	if len(set) != 4 {
		t.Errorf("parsed %d benchmarks, want 4", len(set))
	}
}

// TestProcSuffixCrossMatch checks the property the CI gate depends on: a
// baseline recorded at GOMAXPROCS=1 compares cleanly against a run at
// GOMAXPROCS=8, because the uniform -8 marker is stripped.
func TestProcSuffixCrossMatch(t *testing.T) {
	const oneCore = "BenchmarkBeta/workers-1	50	2000.0 ns/op\nBenchmarkPlain	100	1000.0 ns/op\n"
	const eightCore = "BenchmarkBeta/workers-1-8	50	2000.0 ns/op\nBenchmarkPlain-8	100	1000.0 ns/op\n"
	old, err := Parse([]byte(oneCore))
	if err != nil {
		t.Fatal(err)
	}
	new, err := Parse([]byte(eightCore))
	if err != nil {
		t.Fatal(err)
	}
	r := Compare(old, new, Limits{NsPerOp: 0.20, BytesPerOp: 0.20, AllocsPerOp: 0.20})
	if len(r.Compared) != 2 || len(r.OnlyOld)+len(r.OnlyNew) != 0 {
		t.Errorf("cross-GOMAXPROCS names did not line up: %+v", r)
	}
}
