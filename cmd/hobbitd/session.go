package main

import (
	"context"
	"sync"

	"github.com/hobbitscan/hobbit/internal/api"
	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

// session is one campaign submission: the normalized request, the live
// state machine, the progress event log feeding SSE subscribers, and —
// once terminal — the result bytes. All mutable state sits behind mu;
// the done channel closes exactly once when the session reaches a
// terminal state, so waiters (result?wait=1, the load test) can block
// without polling.
type session struct {
	id       string
	world    api.WorldSpecV1
	opts     core.Options
	cacheKey string
	// monitorEpochs > 0 makes this a monitoring session: the runner
	// bootstraps, then steps the fault epoch this many times on a private
	// world (the monitor mutates the world's fault epoch, so it never
	// shares a pooled one).
	monitorEpochs int

	events *eventLog
	// reg is the session-scoped telemetry registry
	// (/v1/campaigns/{id}/metrics); the campaign writes into it while
	// running, so snapshots taken mid-run show live counters.
	reg  *telemetry.Registry
	done chan struct{}

	mu       sync.Mutex
	cancel   context.CancelFunc
	state    string
	cacheHit bool
	created  int64
	started  int64
	finished int64
	result   []byte
	errMsg   string
}

func newSession(id string, world api.WorldSpecV1, opts core.Options, key string, monitorEpochs int, createdMS int64) *session {
	return &session{
		id:            id,
		world:         world,
		opts:          opts,
		cacheKey:      key,
		monitorEpochs: monitorEpochs,
		events:        newEventLog(),
		reg:           telemetry.NewRegistry(),
		done:          make(chan struct{}),
		state:         api.StateQueued,
		created:       createdMS,
	}
}

// view renders the session resource.
func (s *session) view() api.SessionV1 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return api.SessionV1{
		ID:             s.id,
		State:          s.state,
		CacheHit:       s.cacheHit,
		World:          s.world,
		Options:        s.opts,
		CreatedUnixMS:  s.created,
		StartedUnixMS:  s.started,
		FinishedUnixMS: s.finished,
		Error:          s.errMsg,
	}
}

// setCancel installs the run's cancel func once the run context exists
// (after admission, so DELETE must synchronize with it).
func (s *session) setCancel(fn context.CancelFunc) {
	s.mu.Lock()
	s.cancel = fn
	s.mu.Unlock()
}

// abort cancels the session's run context, if it has one yet. Cancelling
// a finished (or not-yet-started) run is a harmless no-op.
func (s *session) abort() {
	s.mu.Lock()
	fn := s.cancel
	s.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// setRunning transitions queued -> running.
func (s *session) setRunning(nowMS int64) {
	s.mu.Lock()
	s.state = api.StateRunning
	s.started = nowMS
	s.mu.Unlock()
}

// finish moves the session to a terminal state, records the outcome, and
// releases every waiter: the done channel closes and the event log stops
// accepting events, so SSE streams emit their final "done" event.
func (s *session) finish(state string, result []byte, errMsg string, nowMS int64) {
	s.mu.Lock()
	s.state = state
	s.result = result
	s.errMsg = errMsg
	s.finished = nowMS
	s.mu.Unlock()
	s.events.close()
	close(s.done)
}

// terminal reports whether the session has finished, and with what.
func (s *session) terminal() (state string, result []byte, errMsg string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case api.StateDone, api.StateFailed, api.StateCancelled:
		return s.state, s.result, s.errMsg, true
	}
	return s.state, nil, "", false
}

// eventLog is the bounded progress buffer between one campaign and any
// number of SSE subscribers. Appends come from the campaign's collector
// goroutine; reads come from handler goroutines. Subscribers replay the
// retained history and then park on the wake channel, which append and
// close rotate — a broadcast without per-subscriber bookkeeping, so an
// SSE client that disconnects leaks nothing.
type eventLog struct {
	// every thins the stream: only events with Done%every == 0 — plus
	// each stage's first and last — are retained, bounding memory and
	// SSE volume on big campaigns (0 = keep all).
	every int

	mu     sync.Mutex
	events []api.ProgressEventV1
	closed bool
	wake   chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{wake: make(chan struct{})}
}

// append records one progress event (subject to thinning) and wakes
// subscribers. Events after close are dropped: the campaign's collector
// may still be draining when cancellation finishes the session.
func (l *eventLog) append(ev api.ProgressEventV1) {
	if l.every > 1 && ev.Done%l.every != 0 && ev.Done != ev.Total && ev.Done != 1 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.events = append(l.events, ev)
	close(l.wake)
	l.wake = make(chan struct{})
}

// close seals the log and wakes subscribers one final time. Idempotent.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.wake)
	l.wake = make(chan struct{})
}

// snapshot returns the events at index >= from, whether the log is
// sealed, and a channel that closes on the next append or close. The
// subscriber loop is: drain, then park on wake (or the client's context).
func (l *eventLog) snapshot(from int) (evs []api.ProgressEventV1, closed bool, wake <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < len(l.events) {
		evs = l.events[from:len(l.events):len(l.events)]
	}
	return evs, l.closed, l.wake
}
