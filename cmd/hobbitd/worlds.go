package main

import (
	"context"
	"fmt"

	"sync"

	"github.com/hobbitscan/hobbit/internal/api"
	"github.com/hobbitscan/hobbit/internal/faultplan"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

// worldKey identifies one immutable world configuration. Fault plan and
// epoch are part of the key, not mutable state: netsim.World.SetFaults
// and SetEpoch invalidate routes wholesale and are not safe to flip under
// live probing, so the pool builds a separate world per adversity view
// and every session sharing a key probes an identical, frozen surface —
// the property the determinism contract (and the result cache) rests on.
type worldKey struct {
	blocks    int
	scale     float64
	seed      uint64
	faultPlan string
	epoch     int
}

func keyOf(spec api.WorldSpecV1) worldKey {
	return worldKey{
		blocks:    spec.Blocks,
		scale:     spec.Scale,
		seed:      spec.Seed,
		faultPlan: spec.FaultPlan,
		epoch:     spec.Epoch,
	}
}

// worldEntry is one pooled world. ready closes when the build finishes
// (successfully or not); refs counts sessions currently probing it, so
// eviction never tears a world out from under a run.
type worldEntry struct {
	key     worldKey
	ready   chan struct{}
	world   *netsim.World
	err     error
	refs    int
	lastUse int64
}

// worldPool caches built worlds up to a bound, evicting the
// least-recently-used idle entry. World construction is expensive (it is
// the reason the daemon exists), so concurrent requests for the same key
// share one build: the first acquirer constructs while later ones wait on
// ready.
type worldPool struct {
	max int
	reg *telemetry.Registry

	mu      sync.Mutex
	seq     int64
	entries map[worldKey]*worldEntry
}

func newWorldPool(max int, reg *telemetry.Registry) *worldPool {
	if max < 1 {
		max = 1
	}
	return &worldPool{max: max, reg: reg, entries: make(map[worldKey]*worldEntry)}
}

// acquire returns the world for key, building it on first use, and a
// release func the caller must invoke when its run no longer touches the
// world. Waiting on another goroutine's in-flight build honors ctx.
func (p *worldPool) acquire(ctx context.Context, key worldKey) (*netsim.World, func(), error) {
	p.mu.Lock()
	e, ok := p.entries[key]
	if ok {
		e.refs++
		p.seq++
		e.lastUse = p.seq
		p.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			p.release(e)
			return nil, nil, ctx.Err()
		}
		if e.err != nil {
			p.release(e)
			return nil, nil, e.err
		}
		p.reg.Counter("serve.worlds_reused").Inc()
		return e.world, func() { p.release(e) }, nil
	}
	e = &worldEntry{key: key, ready: make(chan struct{}), refs: 1}
	p.seq++
	e.lastUse = p.seq
	p.entries[key] = e
	p.evictLocked()
	p.mu.Unlock()

	e.world, e.err = buildWorld(key)
	close(e.ready)
	if e.err != nil {
		// A failed build must not poison the key: drop the entry so a
		// later request can retry.
		p.mu.Lock()
		delete(p.entries, key)
		p.mu.Unlock()
		return nil, nil, e.err
	}
	p.reg.Counter("serve.worlds_built").Inc()
	return e.world, func() { p.release(e) }, nil
}

func (p *worldPool) release(e *worldEntry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e.refs--
	p.evictLocked()
}

// evictLocked drops least-recently-used idle entries until the pool fits
// its bound. Entries still referenced (or still building) are never
// evicted, so the bound is soft under extreme key diversity: correctness
// over strictness.
func (p *worldPool) evictLocked() {
	for len(p.entries) > p.max {
		var victim *worldEntry
		for _, e := range p.entries {
			if e.refs > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(p.entries, victim.key)
		p.reg.Counter("serve.worlds_evicted").Inc()
	}
}

// buildWorld constructs the immutable world a key names: the synthetic
// universe, plus the compiled fault schedule and the epoch pinned at
// build time.
func buildWorld(key worldKey) (*netsim.World, error) {
	cfg := netsim.DefaultConfig(key.blocks)
	cfg.BigBlockScale = key.scale
	cfg.Seed = key.seed
	w, err := netsim.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("building world: %w", err)
	}
	if key.faultPlan != "" {
		sched, err := faultplan.CompileBuiltin(key.faultPlan, w)
		if err != nil {
			return nil, err
		}
		w.SetFaults(sched)
	}
	if key.epoch != 0 {
		w.SetEpoch(key.epoch)
	}
	return w, nil
}
