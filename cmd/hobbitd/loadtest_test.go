package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/hobbitscan/hobbit/internal/api"
)

// TestLoadConcurrentClients is the CI load gate (env-gated so `go test
// ./...` stays fast): N clients hammer one daemon with synchronous
// campaign submissions drawn from a small seed set — after the first
// round the cache serves most of them — and the run fails on any
// request error or a p99 latency above the ceiling.
//
// Enable with HOBBITD_LOADTEST=1; tune with HOBBITD_LOADTEST_CLIENTS,
// HOBBITD_LOADTEST_REQUESTS (per client), and HOBBITD_LOADTEST_P99_MS.
// HOBBITD_LOADTEST_SNAPSHOT=FILE additionally writes the daemon's final
// /v1/metrics telemetry snapshot to FILE — the nightly scale job uploads
// it as a CI artifact next to the latency log.
func TestLoadConcurrentClients(t *testing.T) {
	if os.Getenv("HOBBITD_LOADTEST") == "" {
		t.Skip("set HOBBITD_LOADTEST=1 to run the load gate")
	}
	clients := envInt("HOBBITD_LOADTEST_CLIENTS", 16)
	requests := envInt("HOBBITD_LOADTEST_REQUESTS", 8)
	p99Ceiling := time.Duration(envInt("HOBBITD_LOADTEST_P99_MS", 5000)) * time.Millisecond
	const seeds = 4

	_, ts := newTestServer(t, nil)

	// Warm the cache serially so the measured phase exercises the steady
	// state: concurrent clients racing mostly-hit requests.
	for seed := uint64(0); seed < seeds; seed++ {
		resp, sess := postCampaign(t, ts, submitBody(seed, func(r *api.SubmitRequestV1) { r.Wait = true }))
		resp.Body.Close()
		if sess.State != api.StateDone {
			t.Fatalf("warmup seed %d ended %s: %s", seed, sess.State, sess.Error)
		}
	}

	latencies := make([][]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				seed := uint64((c + i) % seeds)
				start := time.Now()
				resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json",
					submitBody(seed, func(r *api.SubmitRequestV1) { r.Wait = true }))
				if err != nil {
					errs[c] = err
					return
				}
				sess := decodeJSON[api.SessionV1](t, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || sess.State != api.StateDone {
					errs[c] = fmt.Errorf("request %d/%d: %s, session %s: %s", c, i, resp.Status, sess.State, sess.Error)
					return
				}
				latencies[c] = append(latencies[c], time.Since(start))
			}
		}(c)
	}
	wg.Wait()

	var all []time.Duration
	for c := range latencies {
		if errs[c] != nil {
			t.Errorf("client %d failed: %v", c, errs[c])
		}
		all = append(all, latencies[c]...)
	}
	if t.Failed() {
		return
	}
	if want := clients * requests; len(all) != want {
		t.Fatalf("completed %d requests, want %d", len(all), want)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p50 := all[len(all)/2]
	p99 := all[(len(all)*99)/100]
	t.Logf("load: %d requests, p50 %v, p99 %v, max %v", len(all), p50, p99, all[len(all)-1])
	if p99 > p99Ceiling {
		t.Errorf("p99 latency %v exceeds ceiling %v", p99, p99Ceiling)
	}

	c := counters(t, ts)
	if c["serve.cache_hits"] == 0 {
		t.Error("load run never hit the cache")
	}
	t.Logf("load: cache hits %d, misses %d, probes %d",
		c["serve.cache_hits"], c["serve.cache_misses"], c["serve.probes_total"])

	if path := os.Getenv("HOBBITD_LOADTEST_SNAPSHOT"); path != "" {
		writeSnapshot(t, ts, path)
	}
}

// writeSnapshot saves the daemon's /v1/metrics response — the full
// telemetry snapshot after the load run — verbatim to path.
func writeSnapshot(t *testing.T, ts *httptest.Server, path string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %s: %s", resp.Status, data)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("load: telemetry snapshot written to %s", path)
}

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}
