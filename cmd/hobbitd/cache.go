package main

import (
	"encoding/json"
	"sync"

	"github.com/hobbitscan/hobbit/internal/api"
	"github.com/hobbitscan/hobbit/internal/core"
)

// cacheKey canonicalizes a (world, options, monitor_epochs) triple into
// the string the result cache keys on. The world spec arrives already
// normalized (defaults applied), and the options collapse via
// core.Options.Canonical, so every request that would produce
// bit-identical measurements — any worker counts, implicit or explicit
// defaults — lands on the same key. Monitoring sessions key separately
// per epoch count (their summary carries the whole epoch history), but
// the omitempty keeps every pre-monitoring key byte-identical to what it
// was. This is the determinism contract of DESIGN.md §4g: same key, same
// bytes, zero probes.
func cacheKey(world api.WorldSpecV1, opts core.Options, monitorEpochs int) (string, error) {
	b, err := json.Marshal(struct {
		World         api.WorldSpecV1 `json:"world"`
		Options       core.Options    `json:"options"`
		MonitorEpochs int             `json:"monitor_epochs,omitempty"`
	}{world, opts.Canonical(), monitorEpochs})
	return string(b), err
}

// resultCache maps canonical campaign keys to the exact result bytes the
// first run produced. Entries are immutable; a bounded LRU keeps the hot
// keys ("millions of users" ask the same few questions) and evicts cold
// ones.
type resultCache struct {
	max int

	mu      sync.Mutex
	entries map[string][]byte
	order   []string // LRU: front is coldest
}

func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{max: max, entries: make(map[string][]byte)}
}

// get returns the cached result bytes and refreshes the key's recency.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.entries[key]
	if ok {
		c.touchLocked(key)
	}
	return b, ok
}

// put stores the result bytes for key, evicting the coldest entries to
// stay within the bound. A concurrent duplicate run (two identical
// campaigns admitted before either finished) writes the same bytes, so
// last-write-wins is safe.
func (c *resultCache) put(key string, result []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok {
		c.order = append(c.order, key)
	}
	c.entries[key] = result
	c.touchLocked(key)
	for len(c.entries) > c.max {
		cold := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, cold)
	}
}

// touchLocked moves key to the warm end of the LRU order.
func (c *resultCache) touchLocked(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
			return
		}
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
