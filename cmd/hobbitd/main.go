// Command hobbitd serves Hobbit measurement campaigns over a versioned
// HTTP API (/v1). The daemon owns a pool of immutable simulated worlds
// and a result cache keyed on the canonical (world, options) pair, so a
// campaign any client already paid for is answered byte-identically
// without sending a single probe. See README.md "Serving" for the
// walkthrough and DESIGN.md §4g for the versioning and determinism
// contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"github.com/hobbitscan/hobbit/internal/api"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		log.SetFlags(0)
		log.Fatalf("hobbitd: %v", err)
	}
}

// run is the testable entry point: parse flags, bind the listener,
// serve until the context (signals, or the test's cancel) ends, then
// shut down gracefully — drain in-flight requests, cancel campaigns,
// join the runners.
func run(args []string, logw *os.File) error {
	fs := flag.NewFlagSet("hobbitd", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", "127.0.0.1:8347", "listen address")
		defaultBlocks = fs.Int("default-blocks", 2000, "universe size when a request omits world.blocks")
		defaultScale  = fs.Float64("default-scale", 0.25, "aggregate scale when a request omits world.scale")
		maxBlocks     = fs.Int("max-blocks", 100000, "per-request universe ceiling")
		maxCampaigns  = fs.Int("max-campaigns", 0, "concurrent campaign bound (0 = GOMAXPROCS)")
		maxWorlds     = fs.Int("max-worlds", 4, "worlds kept warm")
		maxResults    = fs.Int("max-results", 256, "cached results kept")
		maxSessions   = fs.Int("max-sessions", 1024, "sessions retained")
		maxMonitor    = fs.Int("max-monitor-epochs", 64, "ceiling on monitor_epochs per submission")
		runTimeout    = fs.Duration("run-timeout", 10*time.Minute, "default per-campaign deadline")
		maxTimeout    = fs.Duration("max-timeout", 30*time.Minute, "ceiling on requested timeout_ms")
		progressEvery = fs.Int("progress-every", 0, "thin SSE progress to every Nth block (0 = all)")
	)
	fs.SetOutput(logw)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(logw, "hobbitd: ", log.LstdFlags)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := newServer(serverConfig{
		DefaultWorld:     api.WorldSpecV1{Blocks: *defaultBlocks, Scale: *defaultScale},
		MaxBlocks:        *maxBlocks,
		MaxCampaigns:     *maxCampaigns,
		MaxWorlds:        *maxWorlds,
		MaxResults:       *maxResults,
		MaxSessions:      *maxSessions,
		MaxMonitorEpochs: *maxMonitor,
		RunTimeout:       *runTimeout,
		MaxTimeout:       *maxTimeout,
		ProgressEvery: func() int {
			if *progressEvery < 0 {
				return 0
			}
			return *progressEvery
		}(),
		Now: time.Now,
	})
	defer srv.Close()

	// Bind synchronously so "address in use" is a startup error, not a
	// lost goroutine log line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", *addr, err)
	}
	hs := &http.Server{Handler: srv}

	var wg sync.WaitGroup
	errc := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	logger.Printf("serving /%s on http://%s", api.Version, ln.Addr())

	var serveErr error
	select {
	case <-ctx.Done():
		logger.Printf("signal received; draining")
	case serveErr = <-errc:
	}

	// Graceful shutdown: stop accepting, give in-flight requests a
	// bounded window, then force-close. Campaigns are cancelled by
	// srv.Close (deferred) via the server context.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		_ = hs.Close()
	}
	wg.Wait()
	return serveErr
}
