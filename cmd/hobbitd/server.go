package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/hobbitscan/hobbit/internal/api"
	"github.com/hobbitscan/hobbit/internal/core"
	"github.com/hobbitscan/hobbit/internal/faultplan"
	"github.com/hobbitscan/hobbit/internal/monitor"
	"github.com/hobbitscan/hobbit/internal/netsim"
	"github.com/hobbitscan/hobbit/internal/parallel"
	"github.com/hobbitscan/hobbit/internal/probe"
	"github.com/hobbitscan/hobbit/internal/telemetry"
)

// serverConfig bounds the daemon: how big a requested universe may be,
// how many campaigns run at once (the parallel.Limiter), how many worlds
// and results stay warm, and how long one run may take. The zero value
// of any field falls back to the listed default.
type serverConfig struct {
	// DefaultWorld fills the blocks/scale a submission omits.
	DefaultWorld api.WorldSpecV1
	// MaxBlocks is the per-request universe ceiling.
	MaxBlocks int
	// MaxCampaigns bounds concurrently *running* campaigns (0 =
	// GOMAXPROCS); submissions beyond it queue on the limiter.
	MaxCampaigns int
	// MaxWorlds bounds the world pool.
	MaxWorlds int
	// MaxResults bounds the result cache.
	MaxResults int
	// MaxSessions bounds retained sessions; once every retained session
	// is still unfinished, further submissions are rejected 429.
	MaxSessions int
	// MaxMonitorEpochs caps monitor_epochs on a submission: a monitoring
	// session holds a campaign slot (and a private world) for its whole
	// epoch loop, so the daemon bounds how long that can be.
	MaxMonitorEpochs int
	// RunTimeout is the default per-campaign deadline; MaxTimeout caps
	// what a request's timeout_ms may raise it to.
	RunTimeout time.Duration
	MaxTimeout time.Duration
	// ProgressEvery thins the SSE progress stream to every Nth block
	// (plus first and last); 0 keeps every event.
	ProgressEvery int
	// Now is the clock (tests inject a fake; main passes time.Now).
	Now func() time.Time
}

func (c serverConfig) withDefaults() serverConfig {
	if c.DefaultWorld.Blocks == 0 {
		c.DefaultWorld.Blocks = 2000
	}
	if c.DefaultWorld.Scale == 0 {
		c.DefaultWorld.Scale = 0.25
	}
	if c.MaxBlocks == 0 {
		c.MaxBlocks = 100000
	}
	if c.MaxWorlds == 0 {
		c.MaxWorlds = 4
	}
	if c.MaxResults == 0 {
		c.MaxResults = 256
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 1024
	}
	if c.MaxMonitorEpochs == 0 {
		c.MaxMonitorEpochs = 64
	}
	if c.RunTimeout == 0 {
		c.RunTimeout = 10 * time.Minute
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 30 * time.Minute
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// server is the hobbitd HTTP service: versioned campaign sessions over a
// pool of shared worlds, with a canonical-key result cache in front of
// the pipeline.
type server struct {
	cfg     serverConfig
	reg     *telemetry.Registry
	limiter *parallel.Limiter
	worlds  *worldPool
	cache   *resultCache
	mux     *http.ServeMux

	// ctx parents every asynchronous campaign; Close cancels it and
	// joins the runner goroutines through wg.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	sessions map[string]*session
	order    []string
	nextID   int
	draining bool
}

func newServer(cfg serverConfig) *server {
	cfg = cfg.withDefaults()
	reg := telemetry.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	s := &server{
		cfg:      cfg,
		reg:      reg,
		limiter:  parallel.NewLimiter(cfg.MaxCampaigns),
		worlds:   newWorldPool(cfg.MaxWorlds, reg),
		cache:    newResultCache(cfg.MaxResults),
		mux:      http.NewServeMux(),
		ctx:      ctx,
		cancel:   cancel,
		sessions: make(map[string]*session),
	}
	s.routes()
	return s
}

func (s *server) routes() {
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/campaigns", s.handleList)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/metrics", s.handleSessionMetrics)
	s.mux.Handle("GET /v1/metrics", s.reg)
	s.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "api": api.Version})
	})
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		api.WriteError(w, http.StatusNotFound, api.CodeNotFound,
			fmt.Sprintf("no route %s %s under /%s/", r.Method, r.URL.Path, api.Version))
	})
}

// ServeHTTP makes the server mountable (httptest, main's http.Server).
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close drains the server: new submissions are refused, every
// asynchronous campaign's context is cancelled, and the runner
// goroutines are joined. Safe to call more than once.
func (s *server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

func (s *server) nowMS() int64 {
	return s.cfg.Now().UnixMilli()
}

// normalize applies the world-spec defaults and validates the whole
// request. It returns the normalized spec/options pair — the request's
// cache identity — or a client error.
func (s *server) normalize(req *api.SubmitRequestV1) error {
	w := &req.World
	if w.Blocks == 0 {
		w.Blocks = s.cfg.DefaultWorld.Blocks
	}
	if w.Scale == 0 {
		w.Scale = s.cfg.DefaultWorld.Scale
	}
	if w.Blocks < 0 || w.Blocks > s.cfg.MaxBlocks {
		return fmt.Errorf("world.blocks must be in [1, %d], got %d", s.cfg.MaxBlocks, w.Blocks)
	}
	if w.Scale < 0 || w.Scale > 1 {
		return fmt.Errorf("world.scale must be in (0, 1], got %v", w.Scale)
	}
	if w.Epoch < 0 {
		return fmt.Errorf("world.epoch must be >= 0, got %d", w.Epoch)
	}
	if w.FaultPlan != "" {
		if !knownPlan(w.FaultPlan) {
			return fmt.Errorf("unknown world.fault_plan %q (have %v)", w.FaultPlan, faultplan.BuiltinNames())
		}
		// Fault plans imply adaptive probing, exactly like cmd/hobbit
		// -fault-plan; folding the implication in before the cache key is
		// computed keeps the two spellings on one key.
		req.Options.MDA.Adaptive = true
	}
	if req.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0, got %d", req.TimeoutMS)
	}
	if req.MonitorEpochs < 0 {
		return fmt.Errorf("monitor_epochs must be >= 0, got %d", req.MonitorEpochs)
	}
	if req.MonitorEpochs > s.cfg.MaxMonitorEpochs {
		return fmt.Errorf("monitor_epochs must be <= %d, got %d", s.cfg.MaxMonitorEpochs, req.MonitorEpochs)
	}
	return req.Options.Validate()
}

func knownPlan(name string) bool {
	for _, n := range faultplan.BuiltinNames() {
		if n == name {
			return true
		}
	}
	return false
}

// timeout resolves the effective run deadline for a request.
func (s *server) timeout(req api.SubmitRequestV1) time.Duration {
	d := s.cfg.RunTimeout
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// handleSubmit is POST /v1/campaigns: validate, consult the result
// cache, and either finish the session instantly (hit), run it inline
// (wait: true, tied to the request context), or hand it to a runner
// goroutine (async, tied to the server context).
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req api.SubmitRequestV1
	if err := dec.Decode(&req); err != nil {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "decoding request: "+err.Error())
		return
	}
	if err := s.normalize(&req); err != nil {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	key, err := cacheKey(req.World, req.Options, req.MonitorEpochs)
	if err != nil {
		api.WriteError(w, http.StatusInternalServerError, api.CodeBadRequest, err.Error())
		return
	}

	sess, err := s.admit(req, key)
	if err != nil {
		if errors.Is(err, errDraining) {
			api.WriteError(w, http.StatusServiceUnavailable, api.CodeShuttingDown, err.Error())
		} else {
			api.WriteError(w, http.StatusTooManyRequests, api.CodeOverloaded, err.Error())
		}
		return
	}
	s.reg.Counter("serve.sessions_submitted").Inc()

	if cached, ok := s.cache.get(key); ok {
		// Cache hit: the session is born terminal, result bytes included,
		// and not a single probe is sent.
		s.reg.Counter("serve.cache_hits").Inc()
		sess.mu.Lock()
		sess.cacheHit = true
		sess.mu.Unlock()
		sess.finish(api.StateDone, cached, "", s.nowMS())
		writeJSON(w, http.StatusOK, sess.view())
		return
	}
	s.reg.Counter("serve.cache_misses").Inc()

	if req.Wait {
		// Synchronous: the campaign lives and dies with this request —
		// a client disconnect cancels r.Context() and aborts the run via
		// core.Pipeline's context awareness.
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req))
		sess.setCancel(cancel)
		defer cancel()
		s.runSession(ctx, sess)
		writeJSON(w, http.StatusOK, sess.view())
		return
	}

	ctx, cancel := context.WithTimeout(s.ctx, s.timeout(req))
	sess.setCancel(cancel)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		s.runSession(ctx, sess)
	}()
	writeJSON(w, http.StatusAccepted, sess.view())
}

var errDraining = errors.New("server is shutting down")

// admit registers a new session, evicting old finished sessions to stay
// within the retention bound; when every retained session is still live,
// the server is genuinely overloaded and the submission is refused.
func (s *server) admit(req api.SubmitRequestV1, key string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errDraining
	}
	for len(s.sessions) >= s.cfg.MaxSessions {
		evicted := false
		for i, id := range s.order {
			if _, _, _, terminal := s.sessions[id].terminal(); terminal {
				delete(s.sessions, id)
				s.order = append(s.order[:i:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return nil, fmt.Errorf("all %d retained sessions are still running", len(s.sessions))
		}
	}
	s.nextID++
	id := fmt.Sprintf("c-%d", s.nextID)
	sess := newSession(id, req.World, req.Options, key, req.MonitorEpochs, s.nowMS())
	sess.events.every = s.cfg.ProgressEvery
	s.sessions[id] = sess
	s.order = append(s.order, id)
	return sess, nil
}

// runSession executes one campaign: wait for a limiter slot, acquire the
// world, run the context-aware pipeline, publish the result, and warm
// the cache. Every exit path finishes the session exactly once.
func (s *server) runSession(ctx context.Context, sess *session) {
	if err := s.limiter.Acquire(ctx); err != nil {
		s.finishErr(sess, err)
		return
	}
	defer s.limiter.Release()
	s.reg.Gauge("serve.campaigns_running").Set(int64(s.limiter.InUse()))
	defer func() { s.reg.Gauge("serve.campaigns_running").Set(int64(s.limiter.InUse() - 1)) }()
	sess.setRunning(s.nowMS())

	var world *netsim.World
	if sess.monitorEpochs > 0 {
		// A monitoring session advances the world's fault epoch as it
		// steps — mutable state no concurrent session may observe — so it
		// builds a private world instead of borrowing from the pool.
		var err error
		world, err = buildWorld(keyOf(sess.world))
		if err != nil {
			s.finishErr(sess, err)
			return
		}
		s.reg.Counter("serve.monitor_worlds_built").Inc()
	} else {
		var release func()
		var err error
		world, release, err = s.worlds.acquire(ctx, keyOf(sess.world))
		if err != nil {
			s.finishErr(sess, err)
			return
		}
		defer release()
	}

	net := probe.Instrument(probe.NewSimNetwork(world), sess.reg, core.StageMeasure)
	p := &core.Pipeline{
		Net:       net,
		Scanner:   world,
		Blocks:    world.Blocks(),
		Seed:      sess.world.Seed,
		Options:   sess.opts,
		Telemetry: sess.reg,
		Progress: telemetry.SinkFunc(func(ev telemetry.ProgressEvent) {
			sess.events.append(copyProgress(ev))
		}),
	}
	var out *core.Output
	var monSum *api.MonitorSummaryV1
	if sess.monitorEpochs > 0 {
		mon := &monitor.Monitor{Pipeline: p, Source: &monitor.WorldSource{W: world}}
		defer mon.Close()
		reps, err := mon.Run(ctx, sess.monitorEpochs+1)
		if err != nil {
			s.finishErr(sess, err)
			return
		}
		s.reg.Counter("serve.monitor_epochs").Add(int64(len(reps)))
		monSum = api.BuildMonitorSummaryV1(reps)
		out = reps[len(reps)-1].Output
	} else {
		var err error
		out, err = p.Run(ctx)
		if err != nil {
			s.finishErr(sess, err)
			return
		}
	}

	summary := api.BuildRunSummaryV1(len(world.Blocks()), sess.world.FaultPlan, out, net, sess.reg)
	summary.Monitor = monSum
	var buf bytes.Buffer
	if err := api.EncodeRunSummaryV1(&buf, summary); err != nil {
		s.finishErr(sess, err)
		return
	}
	s.cache.put(sess.cacheKey, buf.Bytes())
	s.reg.Counter("serve.campaigns_completed").Inc()
	s.reg.Counter("serve.probes_total").Add(net.Probes())
	s.reg.Counter("serve.pings_total").Add(net.Pings())
	sess.finish(api.StateDone, buf.Bytes(), "", s.nowMS())
}

// finishErr maps a run error to its terminal state: context errors mean
// the client (or a deadline) cancelled; anything else failed.
func (s *server) finishErr(sess *session, err error) {
	state := api.StateFailed
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		state = api.StateCancelled
		s.reg.Counter("serve.campaigns_cancelled").Inc()
	} else {
		s.reg.Counter("serve.campaigns_failed").Inc()
	}
	sess.finish(state, nil, err.Error(), s.nowMS())
}

// copyProgress converts a telemetry event to wire form with its class map
// deep-copied: the campaign mutates one shared map between emissions, and
// the event log outlives the emission.
func copyProgress(ev telemetry.ProgressEvent) api.ProgressEventV1 {
	out := api.Progress(ev)
	out.Classes = nil
	if len(ev.Classes) > 0 {
		classes := make(map[string]int, len(ev.Classes))
		for k, v := range ev.Classes {
			classes[k] = v
		}
		out.Classes = classes
	}
	return out
}

func (s *server) lookup(w http.ResponseWriter, r *http.Request) *session {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "no campaign session "+id)
	}
	return sess
}

// handleList is GET /v1/campaigns: every retained session, oldest first.
func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	list := api.SessionListV1{Sessions: make([]api.SessionV1, 0, len(s.order))}
	sessions := make([]*session, 0, len(s.order))
	for _, id := range s.order {
		sessions = append(sessions, s.sessions[id])
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		list.Sessions = append(list.Sessions, sess.view())
	}
	writeJSON(w, http.StatusOK, list)
}

// handleStatus is GET /v1/campaigns/{id}.
func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if sess := s.lookup(w, r); sess != nil {
		writeJSON(w, http.StatusOK, sess.view())
	}
}

// handleCancel is DELETE /v1/campaigns/{id}: cancel the session's
// context (a no-op once terminal) and report the current view.
func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	sess.abort()
	writeJSON(w, http.StatusOK, sess.view())
}

// handleResult is GET /v1/campaigns/{id}/result: the RunSummaryV1 bytes
// of a done session, replayed verbatim from the session (and therefore,
// on a cache hit, verbatim from the first run). ?wait=1 blocks until the
// session terminates or the client goes away.
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-sess.done:
		case <-r.Context().Done():
			return
		}
	}
	state, result, errMsg, terminal := sess.terminal()
	switch {
	case !terminal:
		api.WriteError(w, http.StatusConflict, api.CodeNotDone,
			fmt.Sprintf("session %s is %s; poll again or pass ?wait=1", sess.id, state))
	case state != api.StateDone:
		api.WriteError(w, http.StatusConflict, api.CodeRunFailed,
			fmt.Sprintf("session %s %s: %s", sess.id, state, errMsg))
	default:
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(result)
	}
}

// handleEvents is GET /v1/campaigns/{id}/events: the live progress
// stream as Server-Sent Events. The full retained history replays first
// (subscribing late loses nothing), then events stream as the campaign
// measures; the stream closes with one final "done" event carrying the
// terminal session resource. A disconnected client just stops reading —
// its context ends the loop.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		api.WriteError(w, http.StatusInternalServerError, api.CodeBadRequest, "response writer cannot stream")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	next := 0
	for {
		evs, closed, wake := sess.events.snapshot(next)
		for _, ev := range evs {
			if err := writeSSE(w, "progress", ev); err != nil {
				return
			}
		}
		if len(evs) > 0 {
			next += len(evs)
			flusher.Flush()
		}
		if closed {
			_ = writeSSE(w, "done", sess.view())
			flusher.Flush()
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE writes one Server-Sent Event with a JSON data payload.
func writeSSE(w http.ResponseWriter, event string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// handleSessionMetrics is GET /v1/campaigns/{id}/metrics: the session's
// own telemetry registry (per-stage spans, probe counters, histograms),
// live while the campaign runs.
func (s *server) handleSessionMetrics(w http.ResponseWriter, r *http.Request) {
	if sess := s.lookup(w, r); sess != nil {
		sess.reg.ServeHTTP(w, r)
	}
}

// writeJSON writes an indented JSON body (the same rendering every other
// v1 payload uses).
func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(payload)
}
